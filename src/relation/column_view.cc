#include "src/relation/column_view.h"

#include "src/common/status.h"

namespace mrtheta {

namespace {

// Binds one side's raw column pointer into the predicate fields.
struct BoundColumn {
  ValueType type;
  const int64_t* i64 = nullptr;
  const double* f64 = nullptr;
  const std::string* str = nullptr;
};

BoundColumn Bind(const Relation& rel, int col) {
  BoundColumn out{rel.schema().column(col).type};
  switch (out.type) {
    case ValueType::kInt64:
      out.i64 = ColumnView<int64_t>::Of(rel, col).data();
      break;
    case ValueType::kDouble:
      out.f64 = ColumnView<double>::Of(rel, col).data();
      break;
    case ValueType::kString:
      out.str = ColumnView<std::string>::Of(rel, col).data();
      break;
  }
  return out;
}

}  // namespace

CompiledPredicate CompiledPredicate::Compile(const JoinCondition& cond,
                                             const Relation& lhs_rel,
                                             const Relation& rhs_rel) {
  CompiledPredicate p;
  p.op_ = cond.op;
  p.offset_ = cond.offset;

  const BoundColumn l = Bind(lhs_rel, cond.lhs.column);
  const BoundColumn r = Bind(rhs_rel, cond.rhs.column);
  p.lhs_i64_ = l.i64;
  p.lhs_f64_ = l.f64;
  p.lhs_str_ = l.str;
  p.rhs_i64_ = r.i64;
  p.rhs_f64_ = r.f64;
  p.rhs_str_ = r.str;

  const bool l_string = l.type == ValueType::kString;
  const bool r_string = r.type == ValueType::kString;
  MRTHETA_CHECK(l_string == r_string && "string vs numeric join condition");
  if (l_string || r_string) {
    MRTHETA_CHECK(cond.offset == 0.0 && "offset on string comparison");
    p.domain_ = Domain::kString;
    return p;
  }
  const int64_t int_offset = static_cast<int64_t>(cond.offset);
  if (l.type == ValueType::kInt64 && r.type == ValueType::kInt64 &&
      static_cast<double>(int_offset) == cond.offset) {
    p.domain_ = Domain::kInt64;
    p.offset_i64_ = int_offset;
  } else {
    p.domain_ = Domain::kDouble;
  }
  return p;
}

}  // namespace mrtheta
