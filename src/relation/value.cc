#include "src/relation/value.h"

#include "src/common/status.h"

#include <cstdio>

namespace mrtheta {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  MRTHETA_DCHECK(is_numeric() == other.is_numeric() &&
                 "comparing string against numeric value");
  if (is_numeric()) {
    // Compare in the int64 domain when both sides are integers to avoid
    // double rounding on large keys.
    if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
      const int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  const int c = AsString().compare(other.AsString());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return AsString();
  }
  return {};
}

}  // namespace mrtheta
