#ifndef MRTHETA_RELATION_COLUMN_VIEW_H_
#define MRTHETA_RELATION_COLUMN_VIEW_H_

#include <cstdint>

#include "src/common/status.h"
#include <string>

#include "src/relation/predicate.h"
#include "src/relation/relation.h"

namespace mrtheta {

/// \brief Non-owning typed view of one relation column.
///
/// The view borrows the column's backing array; the relation must outlive
/// it and must not be appended to while the view is alive. Join kernels use
/// views to read cells without the per-access std::variant dispatch of
/// Relation::Get.
template <typename T>
class ColumnView {
 public:
  ColumnView() = default;
  ColumnView(const T* data, int64_t size) : data_(data), size_(size) {}

  /// View of column `col` of `rel`; the column's storage type must be T
  /// (asserted — callers dispatch on the schema type first).
  static ColumnView<T> Of(const Relation& rel, int col) {
    const std::vector<T>* v = rel.TryColumn<T>(col);
    MRTHETA_DCHECK(v != nullptr && "column storage type mismatch");
    return ColumnView<T>(v->data(), static_cast<int64_t>(v->size()));
  }

  bool valid() const { return data_ != nullptr; }
  int64_t size() const { return size_; }
  const T* data() const { return data_; }
  const T& operator[](int64_t i) const { return data_[i]; }

 private:
  const T* data_ = nullptr;
  int64_t size_ = 0;
};

/// Evaluates l op r for a totally ordered operand type.
template <typename T>
inline bool EvalThetaTyped(const T& l, ThetaOp op, const T& r) {
  switch (op) {
    case ThetaOp::kLt:
      return l < r;
    case ThetaOp::kLe:
      return l <= r;
    case ThetaOp::kEq:
      return l == r;
    case ThetaOp::kGe:
      return l >= r;
    case ThetaOp::kGt:
      return l > r;
    case ThetaOp::kNe:
      return l != r;
  }
  return false;
}

/// \brief One join condition with all type dispatch resolved up front.
///
/// Compile() inspects the operand column types once and pins the comparison
/// domain (int64 / double / string) plus raw column pointers; Eval() then
/// reads both cells and compares with no Value boxing, no variant access
/// and no schema lookups. This is the per-tuple-pair fast path every join
/// kernel runs on.
///
/// Domain rules (matching EvalTheta's numeric/string semantics, with the
/// reducers' historical int64 fast path for integral offsets):
///  - int64 vs int64 with an integral offset  -> int64 comparison;
///  - any other numeric pairing               -> double comparison;
///  - string vs string (offset must be 0)     -> lexicographic comparison.
/// String-vs-numeric conditions are a programming error (the query
/// validator rejects them; asserted here).
class CompiledPredicate {
 public:
  enum class Domain { kInt64, kDouble, kString };

  /// Compiles `cond` against the relations holding its lhs / rhs columns.
  /// Both relations must outlive the predicate.
  static CompiledPredicate Compile(const JoinCondition& cond,
                                   const Relation& lhs_rel,
                                   const Relation& rhs_rel);

  Domain domain() const { return domain_; }
  ThetaOp op() const { return op_; }

  /// Evaluates (lhs[lhs_row] + offset) op rhs[rhs_row].
  bool Eval(int64_t lhs_row, int64_t rhs_row) const {
    switch (domain_) {
      case Domain::kInt64:
        return EvalThetaTyped(lhs_i64_[lhs_row] + offset_i64_, op_,
                              rhs_i64_[rhs_row]);
      case Domain::kDouble:
        return EvalThetaTyped(LhsDouble(lhs_row) + offset_, op_,
                              RhsDouble(rhs_row));
      case Domain::kString:
        return EvalThetaTyped(lhs_str_[lhs_row], op_, rhs_str_[rhs_row]);
    }
    return false;
  }

  /// Typed key accessors for the sort kernels. The left key folds the
  /// condition offset in, so key comparison alone decides the predicate:
  /// (lhs + offset) op rhs  ==  LhsKey op RhsKey.
  int64_t LhsKeyInt(int64_t row) const {
    return lhs_i64_[row] + offset_i64_;
  }
  int64_t RhsKeyInt(int64_t row) const { return rhs_i64_[row]; }
  double LhsKeyDouble(int64_t row) const { return LhsDouble(row) + offset_; }
  double RhsKeyDouble(int64_t row) const { return RhsDouble(row); }
  const std::string& LhsKeyString(int64_t row) const {
    return lhs_str_[row];
  }
  const std::string& RhsKeyString(int64_t row) const {
    return rhs_str_[row];
  }

 private:
  double LhsDouble(int64_t row) const {
    return lhs_i64_ != nullptr ? static_cast<double>(lhs_i64_[row])
                               : lhs_f64_[row];
  }
  double RhsDouble(int64_t row) const {
    return rhs_i64_ != nullptr ? static_cast<double>(rhs_i64_[row])
                               : rhs_f64_[row];
  }

  Domain domain_ = Domain::kInt64;
  ThetaOp op_ = ThetaOp::kEq;
  double offset_ = 0.0;
  int64_t offset_i64_ = 0;
  const int64_t* lhs_i64_ = nullptr;
  const int64_t* rhs_i64_ = nullptr;
  const double* lhs_f64_ = nullptr;
  const double* rhs_f64_ = nullptr;
  const std::string* lhs_str_ = nullptr;
  const std::string* rhs_str_ = nullptr;
};

}  // namespace mrtheta

#endif  // MRTHETA_RELATION_COLUMN_VIEW_H_
