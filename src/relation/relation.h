#ifndef MRTHETA_RELATION_RELATION_H_
#define MRTHETA_RELATION_RELATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/status.h"
#include "src/relation/schema.h"
#include "src/relation/value.h"

namespace mrtheta {

/// \brief Columnar in-memory relation.
///
/// Two sizes coexist on purpose:
///  - the *physical* row count: tuples actually materialized in memory and
///    joined by the executors (laptop scale);
///  - the *logical* row count: the on-cluster cardinality this relation
///    represents in an experiment (e.g. "500 GB of call records").
///
/// Executors compute exact answers over physical rows; the simulator and the
/// cost model consume logical sizes. By default logical == physical, so
/// small programs need not care. Experiments call `set_logical_rows()` after
/// generating a representative sample (see DESIGN.md §1).
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  int64_t num_rows() const { return num_rows_; }

  /// Logical (represented) cardinality; >= 0. Defaults to num_rows().
  int64_t logical_rows() const {
    return logical_rows_ >= 0 ? logical_rows_ : num_rows_;
  }
  void set_logical_rows(int64_t rows) {
    logical_rows_ = rows;
    Touch();
  }

  /// Content-state identifier: drawn from a process-wide monotonic counter
  /// at construction and re-drawn after every mutation (appends, SetCell,
  /// set_logical_rows). Two observations of the same generation on the
  /// same object therefore saw identical content, and no two distinct
  /// content states — even across objects whose addresses the allocator
  /// recycled — ever share a (pointer, generation) pair. Copies keep the
  /// source's generation on purpose: they hold the same content, so
  /// derived artifacts (cached statistics) remain valid for them.
  uint64_t generation() const { return generation_; }

  /// Logical serialized size in bytes = logical_rows * avg_row_bytes.
  int64_t logical_bytes() const {
    return logical_rows() * schema_.avg_row_bytes();
  }
  /// Physical serialized size in bytes (what executors actually move).
  int64_t physical_bytes() const {
    return num_rows_ * schema_.avg_row_bytes();
  }

  /// Appends one row; the value count and types must match the schema
  /// (checked in debug builds; Status on arity mismatch).
  Status AppendRow(const std::vector<Value>& row);

  /// Typed fast-path appenders for generators (all-int64 schemas).
  void AppendIntRow(const std::vector<int64_t>& row);

  /// Appends every row of `other` (column-at-a-time, no Value boxing).
  /// Column count and types must match this relation's schema.
  Status AppendRows(const Relation& other);

  /// Overwrites one cell in place; the value's type must match the column
  /// (row/col bounds and type checked). In-place mutation bumps
  /// generation() so cached derived state (e.g. a session's statistics)
  /// can detect it even though num_rows() is unchanged.
  Status SetCell(int64_t row, int col, const Value& v);

  /// Cell accessors.
  Value Get(int64_t row, int col) const;
  int64_t GetInt(int64_t row, int col) const {
    return std::get<std::vector<int64_t>>(cols_[col])[row];
  }
  double GetDouble(int64_t row, int col) const;
  const std::string& GetString(int64_t row, int col) const {
    return std::get<std::vector<std::string>>(cols_[col])[row];
  }

  /// Raw columnar access: the backing vector of column `col` when its
  /// storage type is T, nullptr otherwise. The pointer stays valid for the
  /// relation's lifetime (columns are never reallocated after reads begin,
  /// but callers must not hold it across appends).
  template <typename T>
  const std::vector<T>* TryColumn(int col) const {
    return std::get_if<std::vector<T>>(&cols_[col]);
  }

  /// Returns a relation with the same schema containing the given rows.
  Relation Slice(const std::vector<int64_t>& row_indices) const;

  /// Renders up to `limit` rows for debugging.
  std::string ToString(int64_t limit = 10) const;

 private:
  using ColumnData = std::variant<std::vector<int64_t>, std::vector<double>,
                                  std::vector<std::string>>;

  /// Next value of the process-wide generation counter (atomic).
  static uint64_t NextGeneration();
  void Touch() { generation_ = NextGeneration(); }

  std::string name_;
  Schema schema_;
  std::vector<ColumnData> cols_;
  int64_t num_rows_ = 0;
  int64_t logical_rows_ = -1;
  uint64_t generation_ = NextGeneration();
};

/// Shared-ownership handle used across the planner/executor pipeline.
using RelationPtr = std::shared_ptr<const Relation>;

}  // namespace mrtheta

#endif  // MRTHETA_RELATION_RELATION_H_
