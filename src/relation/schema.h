#ifndef MRTHETA_RELATION_SCHEMA_H_
#define MRTHETA_RELATION_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/relation/value.h"

namespace mrtheta {

/// Descriptor of one column: a name and a type. `avg_width` is the average
/// serialized width in bytes used for I/O accounting (defaults: 8 for
/// numerics, 16 for strings).
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt64;
  int avg_width = 8;

  ColumnDef() = default;
  ColumnDef(std::string n, ValueType t)
      : name(std::move(n)),
        type(t),
        avg_width(t == ValueType::kString ? 16 : 8) {}
  ColumnDef(std::string n, ValueType t, int width)
      : name(std::move(n)), type(t), avg_width(width) {}
};

/// \brief Ordered list of columns; owns name→index resolution and row-width
/// accounting used by the simulator's I/O model.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column with the given name, or kNotFound.
  StatusOr<int> FindColumn(const std::string& name) const;

  /// Average serialized bytes per row (sum of column widths + per-record
  /// framing overhead).
  int64_t avg_row_bytes() const;

  /// "name:type" comma-joined, for debugging.
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace mrtheta

#endif  // MRTHETA_RELATION_SCHEMA_H_
