#ifndef MRTHETA_RELATION_SCHEMA_H_
#define MRTHETA_RELATION_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/relation/value.h"

namespace mrtheta {

/// Per-record framing overhead (key length, delimiters) of the serialized
/// form; matches the flat text/sequence-file layout Hadoop jobs consume.
/// Shared by Schema::avg_row_bytes() and the pruned-width accounting
/// (PrunedRowBytes in src/exec/join_side.h).
inline constexpr int64_t kRecordOverheadBytes = 4;

/// Descriptor of one column: a name and a type. `avg_width` is the average
/// serialized width in bytes used for I/O accounting (defaults: 8 for
/// numerics, 16 for strings).
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt64;
  int avg_width = 8;

  ColumnDef() = default;
  ColumnDef(std::string n, ValueType t)
      : name(std::move(n)),
        type(t),
        avg_width(t == ValueType::kString ? 16 : 8) {}
  ColumnDef(std::string n, ValueType t, int width)
      : name(std::move(n)), type(t), avg_width(width) {}
};

/// \brief Ordered list of columns; owns name→index resolution and row-width
/// accounting used by the simulator's I/O model.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column with the given name, or kNotFound.
  StatusOr<int> FindColumn(const std::string& name) const;

  /// Average serialized bytes per row (sum of column widths + per-record
  /// framing overhead).
  int64_t avg_row_bytes() const;

  /// "name:type" comma-joined, for debugging.
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

/// \brief Minimal payload of one relation at a point of a plan DAG: the
/// columns (ascending, unique) an intermediate must carry for every
/// not-yet-applied condition plus the query's projection
/// (docs/EXECUTOR.md "Column pruning"). An empty `columns` list means the
/// relation rides along as a bare record ID (e.g. only a later rid-merge
/// needs it).
struct RequiredColumns {
  int base = -1;
  std::vector<int> columns;
};

/// Serialized payload bytes of the selected columns of `schema`: record
/// framing plus the columns' widths, floored at 8 bytes (the record ID a
/// fully-pruned tuple still ships).
int64_t PrunedRowBytes(const Schema& schema, const std::vector<int>& columns);

/// Entry for `base` in `required`, or nullptr. An empty `required` vector
/// means pruning is off (full-width accounting).
const RequiredColumns* FindRequired(const std::vector<RequiredColumns>& required,
                                    int base);

}  // namespace mrtheta

#endif  // MRTHETA_RELATION_SCHEMA_H_
