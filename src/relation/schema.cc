#include "src/relation/schema.h"

namespace mrtheta {

namespace {
// Per-record framing overhead (key length, delimiters) in the serialized
// form; matches the flat text/sequence-file layout Hadoop jobs consume.
constexpr int64_t kRecordOverheadBytes = 4;
}  // namespace

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

StatusOr<int> Schema::FindColumn(const std::string& name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

int64_t Schema::avg_row_bytes() const {
  int64_t total = kRecordOverheadBytes;
  for (const auto& c : columns_) total += c.avg_width;
  return total;
}

std::string Schema::ToString() const {
  std::string out;
  for (int i = 0; i < num_columns(); ++i) {
    if (i) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeName(columns_[i].type);
  }
  return out;
}

}  // namespace mrtheta
