#include "src/relation/schema.h"

namespace mrtheta {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

StatusOr<int> Schema::FindColumn(const std::string& name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

int64_t Schema::avg_row_bytes() const {
  int64_t total = kRecordOverheadBytes;
  for (const auto& c : columns_) total += c.avg_width;
  return total;
}

int64_t PrunedRowBytes(const Schema& schema, const std::vector<int>& columns) {
  int64_t total = kRecordOverheadBytes;
  for (int c : columns) total += schema.column(c).avg_width;
  // A fully-pruned tuple still ships its record ID.
  return std::max<int64_t>(total, 8);
}

const RequiredColumns* FindRequired(
    const std::vector<RequiredColumns>& required, int base) {
  for (const RequiredColumns& rc : required) {
    if (rc.base == base) return &rc;
  }
  return nullptr;
}

std::string Schema::ToString() const {
  std::string out;
  for (int i = 0; i < num_columns(); ++i) {
    if (i) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeName(columns_[i].type);
  }
  return out;
}

}  // namespace mrtheta
