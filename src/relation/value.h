#ifndef MRTHETA_RELATION_VALUE_H_
#define MRTHETA_RELATION_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace mrtheta {

/// Column data types supported by the relational substrate. The paper's
/// workloads (mobile call records, TPC-H) only need integers, decimals and
/// short strings.
enum class ValueType {
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeName(ValueType t);

/// \brief A single dynamically-typed cell value.
///
/// Value is a thin wrapper over std::variant with total-order comparison
/// semantics: numeric types compare numerically across int64/double; strings
/// compare lexicographically; comparing a string against a number is a
/// programming error (checked by the query validator, asserted here).
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  ValueType type() const {
    switch (v_.index()) {
      case 0:
        return ValueType::kInt64;
      case 1:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_numeric() const { return v_.index() <= 1; }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const {
    return v_.index() == 0 ? static_cast<double>(std::get<int64_t>(v_))
                           : std::get<double>(v_);
  }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Three-way comparison: -1, 0, +1. Both values must be comparable
  /// (numeric vs numeric, or string vs string).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }

  /// Renders the value for debugging and result printing.
  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace mrtheta

#endif  // MRTHETA_RELATION_VALUE_H_
