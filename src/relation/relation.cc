#include "src/relation/relation.h"

#include "src/common/status.h"

#include <atomic>

namespace mrtheta {

uint64_t Relation::NextGeneration() {
  // Starts at 1 so 0 can act as a "never observed" sentinel in caches.
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Relation::Relation(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  cols_.reserve(schema_.num_columns());
  for (const auto& c : schema_.columns()) {
    switch (c.type) {
      case ValueType::kInt64:
        cols_.emplace_back(std::vector<int64_t>{});
        break;
      case ValueType::kDouble:
        cols_.emplace_back(std::vector<double>{});
        break;
      case ValueType::kString:
        cols_.emplace_back(std::vector<std::string>{});
        break;
    }
  }
}

Status Relation::AppendRow(const std::vector<Value>& row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " != schema arity " +
                                   std::to_string(schema_.num_columns()));
  }
  for (int c = 0; c < schema_.num_columns(); ++c) {
    switch (schema_.column(c).type) {
      case ValueType::kInt64:
        std::get<std::vector<int64_t>>(cols_[c]).push_back(row[c].AsInt());
        break;
      case ValueType::kDouble:
        std::get<std::vector<double>>(cols_[c]).push_back(row[c].AsDouble());
        break;
      case ValueType::kString:
        std::get<std::vector<std::string>>(cols_[c]).push_back(
            row[c].AsString());
        break;
    }
  }
  ++num_rows_;
  Touch();
  return Status::OK();
}

void Relation::AppendIntRow(const std::vector<int64_t>& row) {
  MRTHETA_DCHECK(static_cast<int>(row.size()) == schema_.num_columns());
  for (int c = 0; c < schema_.num_columns(); ++c) {
    std::get<std::vector<int64_t>>(cols_[c]).push_back(row[c]);
  }
  ++num_rows_;
  Touch();
}

Status Relation::AppendRows(const Relation& other) {
  if (other.schema_.num_columns() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "AppendRows arity mismatch: " +
        std::to_string(other.schema_.num_columns()) + " vs " +
        std::to_string(schema_.num_columns()));
  }
  for (int c = 0; c < schema_.num_columns(); ++c) {
    if (other.schema_.column(c).type != schema_.column(c).type) {
      return Status::InvalidArgument("AppendRows type mismatch in column " +
                                     std::to_string(c));
    }
  }
  // Column-at-a-time bulk append: no per-cell Value boxing. Self-append
  // would read a vector while inserting into it (UB); double via a copy.
  if (&other == this) {
    const Relation copy = other;
    return AppendRows(copy);
  }
  for (int c = 0; c < schema_.num_columns(); ++c) {
    std::visit(
        [&](const auto& src) {
          auto& dst = std::get<std::decay_t<decltype(src)>>(cols_[c]);
          dst.insert(dst.end(), src.begin(), src.end());
        },
        other.cols_[c]);
  }
  num_rows_ += other.num_rows_;
  Touch();
  return Status::OK();
}

Status Relation::SetCell(int64_t row, int col, const Value& v) {
  if (col < 0 || col >= schema_.num_columns()) {
    return Status::OutOfRange("SetCell column out of range");
  }
  if (row < 0 || row >= num_rows_) {
    return Status::OutOfRange("SetCell row out of range");
  }
  const ValueType type = schema_.column(col).type;
  const bool compatible =
      (type == ValueType::kString && v.type() == ValueType::kString) ||
      (type == ValueType::kDouble && v.is_numeric()) ||
      (type == ValueType::kInt64 && v.type() == ValueType::kInt64);
  if (!compatible) {
    return Status::InvalidArgument("SetCell value type mismatch in column " +
                                   std::to_string(col));
  }
  switch (type) {
    case ValueType::kInt64:
      std::get<std::vector<int64_t>>(cols_[col])[row] = v.AsInt();
      break;
    case ValueType::kDouble:
      std::get<std::vector<double>>(cols_[col])[row] = v.AsDouble();
      break;
    case ValueType::kString:
      std::get<std::vector<std::string>>(cols_[col])[row] = v.AsString();
      break;
  }
  Touch();
  return Status::OK();
}

Value Relation::Get(int64_t row, int col) const {
  switch (schema_.column(col).type) {
    case ValueType::kInt64:
      return Value(GetInt(row, col));
    case ValueType::kDouble:
      return Value(std::get<std::vector<double>>(cols_[col])[row]);
    case ValueType::kString:
      return Value(GetString(row, col));
  }
  return Value();
}

double Relation::GetDouble(int64_t row, int col) const {
  if (schema_.column(col).type == ValueType::kInt64) {
    return static_cast<double>(GetInt(row, col));
  }
  return std::get<std::vector<double>>(cols_[col])[row];
}

Relation Relation::Slice(const std::vector<int64_t>& row_indices) const {
  Relation out(name_, schema_);
  // Column-at-a-time gather: no per-cell Value boxing.
  for (int c = 0; c < schema_.num_columns(); ++c) {
    std::visit(
        [&](const auto& src) {
          auto& dst = std::get<std::decay_t<decltype(src)>>(out.cols_[c]);
          dst.reserve(row_indices.size());
          for (int64_t r : row_indices) dst.push_back(src[r]);
        },
        cols_[c]);
  }
  out.num_rows_ = static_cast<int64_t>(row_indices.size());
  return out;
}

std::string Relation::ToString(int64_t limit) const {
  std::string out = name_ + "(" + schema_.ToString() + "), " +
                    std::to_string(num_rows_) + " rows\n";
  const int64_t n = std::min<int64_t>(limit, num_rows_);
  for (int64_t r = 0; r < n; ++r) {
    out += "  ";
    for (int c = 0; c < schema_.num_columns(); ++c) {
      if (c) out += " | ";
      out += Get(r, c).ToString();
    }
    out += "\n";
  }
  if (n < num_rows_) out += "  ...\n";
  return out;
}

}  // namespace mrtheta
