#include "src/relation/predicate.h"

#include "src/common/status.h"

#include <cstdio>

namespace mrtheta {

const char* ThetaOpName(ThetaOp op) {
  switch (op) {
    case ThetaOp::kLt:
      return "<";
    case ThetaOp::kLe:
      return "<=";
    case ThetaOp::kEq:
      return "=";
    case ThetaOp::kGe:
      return ">=";
    case ThetaOp::kGt:
      return ">";
    case ThetaOp::kNe:
      return "<>";
  }
  return "?";
}

ThetaOp FlipOp(ThetaOp op) {
  switch (op) {
    case ThetaOp::kLt:
      return ThetaOp::kGt;
    case ThetaOp::kLe:
      return ThetaOp::kGe;
    case ThetaOp::kEq:
      return ThetaOp::kEq;
    case ThetaOp::kGe:
      return ThetaOp::kLe;
    case ThetaOp::kGt:
      return ThetaOp::kLt;
    case ThetaOp::kNe:
      return ThetaOp::kNe;
  }
  return op;
}

bool IsInequality(ThetaOp op) { return op != ThetaOp::kEq; }

bool EvalTheta(const Value& lhs, ThetaOp op, const Value& rhs, double offset) {
  if (lhs.is_numeric()) {
    if (offset == 0.0 && lhs.type() == ValueType::kInt64 &&
        rhs.type() == ValueType::kInt64) {
      return EvalThetaInt(lhs.AsInt(), op, rhs.AsInt(), 0);
    }
    return EvalThetaDouble(lhs.AsDouble(), op, rhs.AsDouble(), offset);
  }
  MRTHETA_DCHECK(offset == 0.0 && "offset on string comparison");
  const int cmp = lhs.Compare(rhs);
  switch (op) {
    case ThetaOp::kLt:
      return cmp < 0;
    case ThetaOp::kLe:
      return cmp <= 0;
    case ThetaOp::kEq:
      return cmp == 0;
    case ThetaOp::kGe:
      return cmp >= 0;
    case ThetaOp::kGt:
      return cmp > 0;
    case ThetaOp::kNe:
      return cmp != 0;
  }
  return false;
}

std::string SelectionFilter::ToString() const {
  char buf[160];
  if (offset == 0.0) {
    std::snprintf(buf, sizeof(buf), "R%d.c%d %s %s", col.relation, col.column,
                  ThetaOpName(op), literal.ToString().c_str());
  } else {
    std::snprintf(buf, sizeof(buf), "R%d.c%d%+g %s %s", col.relation,
                  col.column, offset, ThetaOpName(op),
                  literal.ToString().c_str());
  }
  return buf;
}

JoinCondition JoinCondition::OrientedFor(int relation) const {
  MRTHETA_CHECK(relation == lhs.relation || relation == rhs.relation);
  if (relation == lhs.relation) return *this;
  // (lhs + offset) op rhs   ⇔   rhs flip(op) (lhs + offset)
  //                         ⇔   (rhs + (-offset)) flip(op) lhs
  JoinCondition out;
  out.lhs = rhs;
  out.rhs = lhs;
  out.op = FlipOp(op);
  out.offset = -offset;
  out.id = id;
  return out;
}

std::string JoinCondition::ToString() const {
  char buf[128];
  if (offset == 0.0) {
    std::snprintf(buf, sizeof(buf), "R%d.c%d %s R%d.c%d", lhs.relation,
                  lhs.column, ThetaOpName(op), rhs.relation, rhs.column);
  } else {
    std::snprintf(buf, sizeof(buf), "R%d.c%d%+g %s R%d.c%d", lhs.relation,
                  lhs.column, offset, ThetaOpName(op), rhs.relation,
                  rhs.column);
  }
  return buf;
}

}  // namespace mrtheta
