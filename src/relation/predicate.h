#ifndef MRTHETA_RELATION_PREDICATE_H_
#define MRTHETA_RELATION_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/relation/value.h"

namespace mrtheta {

/// The theta comparison functions the paper supports:
/// θ ∈ {<, <=, =, >=, >, <>}  (Section 2.2).
enum class ThetaOp {
  kLt,
  kLe,
  kEq,
  kGe,
  kGt,
  kNe,
};

const char* ThetaOpName(ThetaOp op);

/// Returns the operator with sides swapped: a θ b  ⇔  b θ' a.
ThetaOp FlipOp(ThetaOp op);

/// True for every operator except equality — the paper's "inequality
/// functions" column of Tables 2 and 3.
bool IsInequality(ThetaOp op);

/// Evaluates (lhs + offset) op rhs. For string operands offset must be 0.
bool EvalTheta(const Value& lhs, ThetaOp op, const Value& rhs,
               double offset = 0.0);

/// Typed fast path used by the join inner loops (int64 columns).
inline bool EvalThetaInt(int64_t lhs, ThetaOp op, int64_t rhs,
                         int64_t offset) {
  const int64_t l = lhs + offset;
  switch (op) {
    case ThetaOp::kLt:
      return l < rhs;
    case ThetaOp::kLe:
      return l <= rhs;
    case ThetaOp::kEq:
      return l == rhs;
    case ThetaOp::kGe:
      return l >= rhs;
    case ThetaOp::kGt:
      return l > rhs;
    case ThetaOp::kNe:
      return l != rhs;
  }
  return false;
}

/// Typed fast path for double operands: (lhs + offset) op rhs. The one
/// place the double operator semantics live — EvalTheta and the compiled
/// map-side filters both evaluate through it.
inline bool EvalThetaDouble(double lhs, ThetaOp op, double rhs,
                            double offset) {
  const double l = lhs + offset;
  switch (op) {
    case ThetaOp::kLt:
      return l < rhs;
    case ThetaOp::kLe:
      return l <= rhs;
    case ThetaOp::kEq:
      return l == rhs;
    case ThetaOp::kGe:
      return l >= rhs;
    case ThetaOp::kGt:
      return l > rhs;
    case ThetaOp::kNe:
      return l != rhs;
  }
  return false;
}

/// Reference to "column `column` of the `relation`-th relation of the query".
struct ColumnRef {
  int relation = 0;
  int column = 0;

  bool operator==(const ColumnRef&) const = default;
};

/// \brief A single-relation selection σ: (col + offset) op literal.
///
/// Selections are pushed below the first shuffle: executors evaluate them
/// map-side on base-relation rows, so filtered tuples are never shipped to
/// a reducer (docs/EXECUTOR.md "Selection pushdown"). String columns
/// support only offset-free = / <> against a string literal.
struct SelectionFilter {
  ColumnRef col;
  ThetaOp op = ThetaOp::kEq;
  Value literal;
  double offset = 0.0;

  /// Evaluates the predicate on one cell value of the column.
  bool Eval(const Value& v) const { return EvalTheta(v, op, literal, offset); }

  std::string ToString() const;
};

/// \brief One join condition θ_k: (lhs.col + offset) op rhs.col, connecting
/// two distinct relations of a query.
///
/// `offset` supports the paper's band predicates, e.g. the flight scenario's
/// `FI1.at + L.l1 < FI2.dt` and the mobile benchmark's `t1.d + 3 > t3.d`.
struct JoinCondition {
  ColumnRef lhs;
  ThetaOp op = ThetaOp::kEq;
  ColumnRef rhs;
  double offset = 0.0;

  /// Identifier θ_k within the owning query; assigned by Query::AddCondition.
  int id = -1;

  /// The same condition expressed with `relation` as the left side.
  /// Requires relation ∈ {lhs.relation, rhs.relation}.
  JoinCondition OrientedFor(int relation) const;

  std::string ToString() const;
};

}  // namespace mrtheta

#endif  // MRTHETA_RELATION_PREDICATE_H_
