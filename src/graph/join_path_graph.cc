#include "src/graph/join_path_graph.h"

#include <algorithm>
#include <map>

namespace mrtheta {

std::string JobCandidate::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < thetas.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(thetas[i]);
  }
  out += "} over R{";
  for (size_t i = 0; i < relations.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(relations[i]);
  }
  out += "} w=" + std::to_string(weight) +
         " s=" + std::to_string(schedule_slots);
  return out;
}

namespace {

struct Trail {
  uint32_t edge_mask = 0;   // over edge indices in G_J
  std::vector<int> edges;   // edge indices in traversal order
  std::vector<int> vertices;  // visited vertices (with repeats), |edges|+1
  int start = 0;
  int end = 0;
};

// Enumerates every trail (no-edge-repeating path) of G_J, grouped by hop
// count, keeping the first traversal found for each distinct edge set.
std::vector<std::vector<Trail>> EnumerateTrails(const JoinGraph& g,
                                                int max_hops) {
  std::vector<std::vector<Trail>> by_length(max_hops + 1);
  std::map<uint32_t, bool> seen;  // edge_mask -> recorded

  // Iterative DFS with explicit stack to bound recursion depth.
  struct Frame {
    int vertex;
    uint32_t mask;
    std::vector<int> edges;
    std::vector<int> vertices;
  };
  for (int s = 0; s < g.num_vertices(); ++s) {
    std::vector<Frame> stack;
    stack.push_back({s, 0u, {}, {s}});
    while (!stack.empty()) {
      Frame f = std::move(stack.back());
      stack.pop_back();
      if (!f.edges.empty()) {
        if (!seen[f.mask]) {
          seen[f.mask] = true;
          Trail t;
          t.edge_mask = f.mask;
          t.edges = f.edges;
          t.vertices = f.vertices;
          t.start = s;
          t.end = f.vertex;
          by_length[static_cast<int>(f.edges.size())].push_back(
              std::move(t));
        }
      }
      if (static_cast<int>(f.edges.size()) >= max_hops) continue;
      for (int e : g.IncidentEdges(f.vertex)) {
        if (f.mask & (1u << e)) continue;
        const auto& edge = g.edge(e);
        const int next = edge.u == f.vertex ? edge.v : edge.u;
        Frame nf = f;
        nf.vertex = next;
        nf.mask |= 1u << e;
        nf.edges.push_back(e);
        nf.vertices.push_back(next);
        stack.push_back(std::move(nf));
      }
    }
  }
  return by_length;
}

}  // namespace

StatusOr<std::vector<JobCandidate>> BuildJoinPathGraph(
    const JoinGraph& graph, const CandidateCostFn& cost_fn,
    const JoinPathGraphOptions& options, JoinPathGraphStats* stats) {
  if (graph.num_edges() > 20) {
    return Status::InvalidArgument(
        "join graphs with more than 20 conditions are not supported");
  }
  if (graph.num_edges() == 0) {
    return Status::InvalidArgument("join graph has no conditions");
  }
  if (!cost_fn) {
    return Status::InvalidArgument("cost_fn must be provided");
  }
  const int max_hops = options.max_hops > 0
                           ? std::min(options.max_hops, graph.num_edges())
                           : graph.num_edges();

  JoinPathGraphStats local_stats;
  JoinPathGraphStats& st = stats ? *stats : local_stats;

  const auto by_length = EnumerateTrails(graph, max_hops);

  // WL: reported candidates sorted ascending by weight. Stored as indices
  // into `reported`.
  std::vector<JobCandidate> reported;
  std::vector<int> wl;  // sorted by reported[i].weight ascending
  std::vector<uint32_t> pruned_masks;

  auto theta_mask_of = [&](const Trail& t) {
    uint32_t mask = 0;
    for (int e : t.edges) mask |= 1u << graph.edge(e).theta_id;
    return mask;
  };

  for (int len = 1; len <= max_hops; ++len) {
    for (const Trail& trail : by_length[len]) {
      ++st.trails_enumerated;
      const uint32_t tmask = theta_mask_of(trail);

      // Lemma 2: any pruned candidate whose conditions are a subset of this
      // trail's conditions disqualifies it outright.
      if (options.enable_pruning) {
        bool lemma2 = false;
        for (uint32_t pm : pruned_masks) {
          if ((pm & tmask) == pm) {
            lemma2 = true;
            break;
          }
        }
        if (lemma2) {
          ++st.pruned_by_lemma2;
          continue;
        }
      }

      JobCandidate cand;
      cand.theta_mask = tmask;
      for (int e : trail.edges) cand.thetas.push_back(graph.edge(e).theta_id);
      for (int v : trail.vertices) {
        if (std::find(cand.relations.begin(), cand.relations.end(), v) ==
            cand.relations.end()) {
          cand.relations.push_back(v);
        }
      }
      cand.endpoint_u = trail.start;
      cand.endpoint_v = trail.end;
      const CandidateCost cost = cost_fn(cand.thetas, cand.relations);
      cand.weight = cost.weight;
      cand.schedule_slots = cost.schedule_slots;

      // Lemma 1: scan WL ascending; greedily collect strictly-cheaper
      // reported candidates that add coverage of cand's conditions. If they
      // cover it with total slot demand <= cand's, cand is substitutable.
      bool lemma1 = false;
      if (options.enable_pruning) {
        uint32_t covered = 0;
        int slots_sum = 0;
        for (int idx : wl) {
          const JobCandidate& other = reported[idx];
          if (other.weight >= cand.weight) break;  // WL is sorted
          const uint32_t gain = cand.theta_mask & other.theta_mask & ~covered;
          if (gain == 0) continue;
          covered |= other.theta_mask;
          slots_sum += other.schedule_slots;
          if ((covered & cand.theta_mask) == cand.theta_mask) break;
        }
        lemma1 = (covered & cand.theta_mask) == cand.theta_mask &&
                 slots_sum <= cand.schedule_slots;
      }
      if (lemma1) {
        ++st.pruned_by_lemma1;
        pruned_masks.push_back(cand.theta_mask);
        continue;
      }

      // Report: insert into WL keeping ascending weight order.
      const int new_idx = static_cast<int>(reported.size());
      reported.push_back(std::move(cand));
      const auto pos = std::lower_bound(
          wl.begin(), wl.end(), reported[new_idx].weight,
          [&](int idx, double w) { return reported[idx].weight < w; });
      wl.insert(pos, new_idx);
      ++st.reported;
    }
  }

  // Return in ascending-weight order (the WL order).
  std::vector<JobCandidate> result;
  result.reserve(wl.size());
  for (int idx : wl) result.push_back(std::move(reported[idx]));
  return result;
}

}  // namespace mrtheta
