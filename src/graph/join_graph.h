#ifndef MRTHETA_GRAPH_JOIN_GRAPH_H_
#define MRTHETA_GRAPH_JOIN_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace mrtheta {

/// One edge of the join graph G_J: join condition θ`theta_id` connecting
/// relations `u` and `v` (Definition 1). Parallel edges are allowed — each
/// θ function is its own edge.
struct JoinGraphEdge {
  int u = 0;
  int v = 0;
  int theta_id = 0;
};

/// \brief The paper's join graph G_J = ⟨V, E, L⟩: vertices are relations,
/// edges are join conditions (a multigraph).
class JoinGraph {
 public:
  explicit JoinGraph(int num_vertices) : adjacency_(num_vertices) {}

  int num_vertices() const { return static_cast<int>(adjacency_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const std::vector<JoinGraphEdge>& edges() const { return edges_; }
  const JoinGraphEdge& edge(int i) const { return edges_[i]; }

  /// Adds the edge for condition `theta_id` between u and v (u != v).
  Status AddEdge(int u, int v, int theta_id);

  /// Edge indices incident to vertex v.
  const std::vector<int>& IncidentEdges(int v) const {
    return adjacency_[v];
  }

  /// Degree of vertex v (parallel edges counted).
  int Degree(int v) const { return static_cast<int>(adjacency_[v].size()); }

  /// True when every vertex is reachable from vertex 0 (queries must have
  /// connected join graphs).
  bool IsConnected() const;

  /// Eulerian trail exists iff connected with 0 or 2 odd-degree vertices;
  /// a circuit (the E(G_JP) of Fig. 1) iff all degrees are even.
  bool HasEulerianTrail() const;
  bool HasEulerianCircuit() const;

  std::string ToString() const;

 private:
  std::vector<JoinGraphEdge> edges_;
  std::vector<std::vector<int>> adjacency_;  // vertex -> incident edge ids
};

}  // namespace mrtheta

#endif  // MRTHETA_GRAPH_JOIN_GRAPH_H_
