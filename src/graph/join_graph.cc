#include "src/graph/join_graph.h"

#include <vector>

namespace mrtheta {

Status JoinGraph::AddEdge(int u, int v, int theta_id) {
  if (u == v) {
    return Status::InvalidArgument("self-loop join edges are not allowed");
  }
  if (u < 0 || u >= num_vertices() || v < 0 || v >= num_vertices()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  const int idx = num_edges();
  edges_.push_back({u, v, theta_id});
  adjacency_[u].push_back(idx);
  adjacency_[v].push_back(idx);
  return Status::OK();
}

bool JoinGraph::IsConnected() const {
  if (num_vertices() == 0) return true;
  std::vector<bool> seen(num_vertices(), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int visited = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int e : adjacency_[v]) {
      const int w = edges_[e].u == v ? edges_[e].v : edges_[e].u;
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        stack.push_back(w);
      }
    }
  }
  return visited == num_vertices();
}

bool JoinGraph::HasEulerianTrail() const {
  if (!IsConnected()) return false;
  int odd = 0;
  for (int v = 0; v < num_vertices(); ++v) {
    if (Degree(v) % 2 == 1) ++odd;
  }
  return odd == 0 || odd == 2;
}

bool JoinGraph::HasEulerianCircuit() const {
  if (!IsConnected()) return false;
  for (int v = 0; v < num_vertices(); ++v) {
    if (Degree(v) % 2 == 1) return false;
  }
  return true;
}

std::string JoinGraph::ToString() const {
  std::string out = "G_J{";
  for (int i = 0; i < num_edges(); ++i) {
    if (i) out += ", ";
    out += "θ" + std::to_string(edges_[i].theta_id) + ":R" +
           std::to_string(edges_[i].u) + "-R" + std::to_string(edges_[i].v);
  }
  out += "}";
  return out;
}

}  // namespace mrtheta
