#ifndef MRTHETA_GRAPH_JOIN_PATH_GRAPH_H_
#define MRTHETA_GRAPH_JOIN_PATH_GRAPH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/join_graph.h"

namespace mrtheta {

/// \brief One edge e' of the join-path graph G'_JP: a no-edge-repeating path
/// (trail) in G_J, i.e. a candidate MapReduce job MRJ(e') that evaluates all
/// the θ conditions on the trail in one job (Definition 3).
struct JobCandidate {
  /// The trail's condition ids l'(e'), as a bitmask over θ ids (<= 31
  /// conditions per query) and as an ordered list along the trail.
  uint32_t theta_mask = 0;
  std::vector<int> thetas;
  /// Distinct relations on the trail, in first-visit order — the dimensions
  /// of the partition hyper-cube S.
  std::vector<int> relations;
  /// Trail endpoints in G_J.
  int endpoint_u = 0;
  int endpoint_v = 0;
  /// w(e'): minimum estimated evaluation time (seconds).
  double weight = 0.0;
  /// s(e'): the scheduling information — the reduce-task count achieving
  /// w(e') (the paper's RN(MRJ)).
  int schedule_slots = 1;

  int num_conditions() const { return static_cast<int>(thetas.size()); }
  std::string ToString() const;
};

/// Cost oracle supplied by the planner: returns (w, s) for evaluating the
/// given condition set over the given distinct relations with one MRJ.
struct CandidateCost {
  double weight = 0.0;
  int schedule_slots = 1;
};
using CandidateCostFn = std::function<CandidateCost(
    const std::vector<int>& thetas, const std::vector<int>& relations)>;

/// Options bounding the G'_JP construction.
struct JoinPathGraphOptions {
  /// Maximum trail length (hop count); 0 = all edges of G_J.
  int max_hops = 0;
  /// Disable Lemma 1/2 pruning (for the ablation benchmark).
  bool enable_pruning = true;
};

/// Statistics reported by BuildJoinPathGraph (exercised in tests and the
/// plan-explorer example).
struct JoinPathGraphStats {
  int trails_enumerated = 0;
  int pruned_by_lemma1 = 0;
  int pruned_by_lemma2 = 0;
  int reported = 0;
};

/// \brief Algorithm 2: constructs the pruned join-path graph G'_JP.
///
/// Enumerates trails of increasing hop count L between every vertex pair
/// (each trail identified by its condition *set* — traversal order does not
/// change the MRJ). A sorted work list WL (ascending w) supports the Lemma 1
/// test: a candidate is dropped when some already-reported collection of
/// cheaper candidates covers its conditions with no greater slot demand.
/// Lemma 2 then transitively drops every enumerated superset of a dropped
/// candidate.
StatusOr<std::vector<JobCandidate>> BuildJoinPathGraph(
    const JoinGraph& graph, const CandidateCostFn& cost_fn,
    const JoinPathGraphOptions& options = {},
    JoinPathGraphStats* stats = nullptr);

}  // namespace mrtheta

#endif  // MRTHETA_GRAPH_JOIN_PATH_GRAPH_H_
