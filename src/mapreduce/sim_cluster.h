#ifndef MRTHETA_MAPREDUCE_SIM_CLUSTER_H_
#define MRTHETA_MAPREDUCE_SIM_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/mapreduce/cluster_config.h"
#include "src/mapreduce/job.h"
#include "src/mapreduce/job_runner.h"
#include "src/mapreduce/sim_engine.h"

namespace mrtheta {

/// Everything known about one executed job: the exact result, the measured
/// volumes, and the simulated wall-clock timing.
struct JobRunResult {
  std::shared_ptr<Relation> output;
  JobMeasurement metrics;
  SimJobResult timing;
  SimTime duration = 0;  ///< finish - release (standalone: == makespan)
};

/// \brief The simulated cluster: executes MapReduce jobs exactly over
/// physical tuples while advancing a simulated clock per the I/O + network
/// cost model (DESIGN.md §1).
class SimCluster {
 public:
  explicit SimCluster(ClusterConfig config) : config_(config) {}

  const ClusterConfig& config() const { return config_; }
  ClusterConfig* mutable_config() { return &config_; }

  /// Runs one job standalone (whole cluster available).
  StatusOr<JobRunResult> RunJob(const MapReduceJobSpec& spec) const;

  /// Translates a measured job into the DES representation, applying the
  /// ground-truth timing model:
  ///   map  : t_M = SI/m · C1_read + α·SI/m · p(α·SI/m)           (Eq. 1)
  ///   copy : bytes_r · C2 + m · h(n) connection overhead          (Eq. 3)
  ///   reduce: bytes_r · C1_merge + comparisons/rate + out · C1_w  (Eq. 5)
  SimJobSpec BuildSimJob(const MapReduceJobSpec& spec,
                         const JobMeasurement& metrics,
                         std::vector<int> deps = {}) const;

  /// Number of map tasks a job with the given logical input needs.
  int NumMapTasks(int64_t input_bytes_logical) const;

 private:
  ClusterConfig config_;
};

}  // namespace mrtheta

#endif  // MRTHETA_MAPREDUCE_SIM_CLUSTER_H_
