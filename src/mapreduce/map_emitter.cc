#include <algorithm>
#include <new>
#include <stdexcept>
#include <utility>

#include "src/mapreduce/job.h"
#include "src/obs/trace.h"

namespace mrtheta {

CombineFn MakeDedupCombiner() {
  return [](std::vector<MapOutputRecord>& records) {
    // Order-preserving first-occurrence scan. Row slices are small (a few
    // records), so the quadratic scan beats hashing — and preserving emit
    // order is what keeps duplicate-free runs byte-identical.
    size_t out = 0;
    for (size_t i = 0; i < records.size(); ++i) {
      const MapOutputRecord& r = records[i];
      bool duplicate = false;
      for (size_t j = 0; j < out && !duplicate; ++j) {
        const MapOutputRecord& k = records[j];
        duplicate = k.key == r.key && k.tag == r.tag && k.row == r.row &&
                    k.rec_id == r.rec_id && k.bytes == r.bytes;
      }
      if (!duplicate) records[out++] = r;
    }
    records.resize(out);
  };
}

MapEmitter& MapEmitter::operator=(MapEmitter&& other) noexcept {
  if (this != &other) {
    Clear();  // return our pages to the budget before adopting other's
    pages_ = std::move(other.pages_);
    last_page_records_ = other.last_page_records_;
    size_ = other.size_;
    spilled_records_ = other.spilled_records_;
    row_mark_ = other.row_mark_;
    status_ = std::move(other.status_);
    partition_ = std::move(other.partition_);
    num_reduce_tasks_ = other.num_reduce_tasks_;
    combine_ = std::move(other.combine_);
    combine_buf_ = std::move(other.combine_buf_);
    spill_limit_bytes_ = other.spill_limit_bytes_;
    spill_dir_ = other.spill_dir_;
    spill_file_ = std::move(other.spill_file_);
    spilled_bytes_ = other.spilled_bytes_;
    other.pages_.clear();
    other.last_page_records_ = 0;
    other.size_ = 0;
    other.spilled_records_ = 0;
    other.row_mark_ = 0;
    other.spill_file_.reset();
    other.spilled_bytes_ = 0;
  }
  return *this;
}

void MapEmitter::Reserve(size_t records) {
  if (!status_.ok()) return;
  try {
    pages_.reserve(records / static_cast<size_t>(kRecordsPerPage) + 1);
  } catch (const std::bad_alloc&) {
    status_ = Status::ResourceExhausted(
        "map emit reservation for " + std::to_string(records) +
        " records failed");
  } catch (const std::length_error&) {
    status_ = Status::ResourceExhausted(
        "map emit reservation for " + std::to_string(records) +
        " records exceeds the page table's limit");
  }
}

bool MapEmitter::AddPage() {
  StatusOr<MemoryBudget::PagePtr> page = MemoryBudget::Global().AcquirePage();
  if (!page.ok()) {
    status_ = page.status();
    return false;
  }
  try {
    pages_.push_back(*std::move(page));
  } catch (const std::bad_alloc&) {
    MemoryBudget::Global().ReleasePage(*std::move(page));
    status_ = Status::ResourceExhausted("map emit page table growth failed");
    return false;
  }
  last_page_records_ = 0;
  return true;
}

void MapEmitter::EndRow() {
  if (!status_.ok()) return;
  if (combine_ && size_ > row_mark_) ApplyCombine();
  if (status_.ok() && spill_dir_ != nullptr &&
      MemoryBudget::Global().OverBudget(spill_limit_bytes_)) {
    SpillFullPages();
  }
  row_mark_ = size_;
}

void MapEmitter::ApplyCombine() {
  // The row's slice is entirely in memory: spills happen only at row
  // boundaries, so spilled_records_ <= row_mark_ always holds.
  const int64_t begin_mem = row_mark_ - spilled_records_;
  const int64_t end_mem = size_ - spilled_records_;
  combine_buf_.clear();
  try {
    combine_buf_.reserve(static_cast<size_t>(end_mem - begin_mem));
    for (int64_t i = begin_mem; i < end_mem; ++i) {
      combine_buf_.push_back(
          PageRecords(pages_[i / kRecordsPerPage])[i % kRecordsPerPage]);
    }
    combine_(combine_buf_);
  } catch (const std::bad_alloc&) {
    status_ = Status::ResourceExhausted("map-side combine buffer failed");
    return;
  }
  // Truncate the in-memory tail back to the row start (a full trailing
  // page counts as "kept" so Emit's all-but-last-full invariant holds)...
  const size_t keep_pages = static_cast<size_t>(
      (begin_mem + kRecordsPerPage - 1) / kRecordsPerPage);
  while (pages_.size() > keep_pages) {
    MemoryBudget::Global().ReleasePage(std::move(pages_.back()));
    pages_.pop_back();
  }
  last_page_records_ =
      pages_.empty() ? 0
                     : begin_mem - static_cast<int64_t>(pages_.size() - 1) *
                                       kRecordsPerPage;
  size_ = row_mark_;
  // ...and re-append the combined records. Re-partitioned through Emit so
  // a combiner that rewrites keys cannot leave stale targets behind.
  for (const MapOutputRecord& rec : combine_buf_) {
    Emit(rec.key, rec.tag, rec.row, rec.rec_id, rec.bytes);
  }
  combine_buf_.clear();
}

void MapEmitter::SpillFullPages() {
  // Full pages are everything except a trailing partial page. Spilling
  // whole pages at a row boundary can never split a combine slice.
  size_t full = pages_.size();
  if (full > 0 && last_page_records_ < kRecordsPerPage) --full;
  if (full == 0) return;
  if (!spill_file_.has_value()) {
    StatusOr<SpillFile> file = SpillFile::Create(*spill_dir_);
    if (!file.ok()) {
      status_ = file.status();
      return;
    }
    spill_file_ = *std::move(file);
  }
  TraceSpan span("spill-write", "mem");
  int64_t flushed = 0;
  for (size_t i = 0; i < full; ++i) {
    const int64_t bytes =
        kRecordsPerPage * static_cast<int64_t>(sizeof(MapOutputRecord));
    Status s = spill_file_->Append(pages_[i].get(), bytes);
    if (!s.ok()) {
      status_ = std::move(s);
      break;
    }
    flushed += bytes;
    spilled_records_ += kRecordsPerPage;
    MemoryBudget::Global().ReleasePage(std::move(pages_[i]));
  }
  spilled_bytes_ += flushed;
  if (span.enabled()) span.Arg("bytes", flushed);
  // Drop the flushed prefix (pages_[i] are null up to the failure point).
  size_t kept = 0;
  for (size_t i = 0; i < pages_.size(); ++i) {
    if (pages_[i] != nullptr) pages_[kept++] = std::move(pages_[i]);
  }
  pages_.resize(kept);
  if (pages_.empty()) last_page_records_ = 0;
}

Status MapEmitter::ForEach(
    const std::function<void(const MapOutputRecord&)>& fn) {
  if (!status_.ok()) return status_;
  if (spill_file_.has_value()) {
    MRTHETA_RETURN_IF_ERROR(spill_file_->Finish());
    StatusOr<SpillFile::Reader> reader =
        spill_file_->OpenReader(0, spill_file_->bytes_written());
    if (!reader.ok()) return reader.status();
    MapOutputRecord buffer[512];
    for (;;) {
      StatusOr<int64_t> got =
          reader->Read(buffer, static_cast<int64_t>(sizeof(buffer)));
      if (!got.ok()) return got.status();
      if (*got == 0) break;
      const int64_t count =
          *got / static_cast<int64_t>(sizeof(MapOutputRecord));
      for (int64_t i = 0; i < count; ++i) fn(buffer[i]);
    }
  }
  for (size_t p = 0; p < pages_.size(); ++p) {
    const int64_t count =
        p + 1 == pages_.size() ? last_page_records_ : kRecordsPerPage;
    const MapOutputRecord* recs = PageRecords(pages_[p]);
    for (int64_t i = 0; i < count; ++i) fn(recs[i]);
  }
  return Status::OK();
}

void MapEmitter::Clear() {
  for (MemoryBudget::PagePtr& page : pages_) {
    MemoryBudget::Global().ReleasePage(std::move(page));
  }
  pages_.clear();
  last_page_records_ = 0;
  size_ = 0;
  spilled_records_ = 0;
  row_mark_ = 0;
  status_ = Status::OK();
  partition_ = nullptr;
  num_reduce_tasks_ = 0;
  combine_ = nullptr;
  combine_buf_.clear();
  spill_limit_bytes_ = 0;
  spill_dir_ = nullptr;
  spill_file_.reset();
  spilled_bytes_ = 0;
}

}  // namespace mrtheta
