#include "src/mapreduce/sim_engine.h"

#include <algorithm>
#include <queue>

namespace mrtheta {

namespace {

enum class EventKind {
  kJobRelease,
  kJobStart,
  kMapFinish,
  kReduceReady,
  kReduceFinish,
};

struct Event {
  SimTime time = 0;
  uint64_t seq = 0;  // FIFO tie-break for determinism
  EventKind kind = EventKind::kJobRelease;
  int job = 0;
  int task = 0;

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

struct ReadyTask {
  SimTime ready_time = 0;
  uint64_t seq = 0;
  bool is_reduce = false;
  int job = 0;
  int task = 0;
};

struct JobState {
  int maps_remaining = 0;
  int reduces_remaining = 0;
  int deps_remaining = 0;
  bool released = false;
  SimJobResult result;
};

}  // namespace

StatusOr<SimReport> RunSimulation(const ClusterConfig& config,
                                  const std::vector<SimJobSpec>& jobs) {
  if (config.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  for (const auto& j : jobs) {
    if (j.num_map_tasks < 1) {
      return Status::InvalidArgument("job '" + j.name +
                                     "' needs >= 1 map task");
    }
    if (j.reduces.empty()) {
      return Status::InvalidArgument("job '" + j.name +
                                     "' needs >= 1 reduce task");
    }
    for (int d : j.deps) {
      if (d < 0 || d >= static_cast<int>(jobs.size())) {
        return Status::InvalidArgument("job '" + j.name +
                                       "' has dep out of range");
      }
    }
  }

  const int num_jobs = static_cast<int>(jobs.size());
  std::vector<JobState> state(num_jobs);
  std::vector<std::vector<int>> dependents(num_jobs);
  for (int i = 0; i < num_jobs; ++i) {
    state[i].maps_remaining = jobs[i].num_map_tasks;
    state[i].reduces_remaining = static_cast<int>(jobs[i].reduces.size());
    state[i].deps_remaining = static_cast<int>(jobs[i].deps.size());
    for (int d : jobs[i].deps) dependents[d].push_back(i);
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  uint64_t seq = 0;
  // Ready queue: FIFO by (ready_time, seq).
  auto ready_cmp = [](const ReadyTask& a, const ReadyTask& b) {
    if (a.ready_time != b.ready_time) return a.ready_time > b.ready_time;
    return a.seq > b.seq;
  };
  std::priority_queue<ReadyTask, std::vector<ReadyTask>, decltype(ready_cmp)>
      ready(ready_cmp);

  int free_slots = config.num_workers;
  SimTime makespan = 0;

  for (int i = 0; i < num_jobs; ++i) {
    if (state[i].deps_remaining == 0) {
      events.push({0, seq++, EventKind::kJobRelease, i, 0});
    }
  }

  auto dispatch = [&](SimTime now) {
    while (free_slots > 0 && !ready.empty() &&
           ready.top().ready_time <= now) {
      const ReadyTask t = ready.top();
      ready.pop();
      --free_slots;
      if (t.is_reduce) {
        const SimTime dur = jobs[t.job].reduces[t.task].compute;
        events.push(
            {now + dur, seq++, EventKind::kReduceFinish, t.job, t.task});
      } else {
        events.push({now + jobs[t.job].map_task_duration, seq++,
                     EventKind::kMapFinish, t.job, t.task});
      }
    }
  };

  int jobs_finished = 0;
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    const SimTime now = ev.time;
    JobState& js = state[ev.job];
    switch (ev.kind) {
      case EventKind::kJobRelease: {
        js.released = true;
        js.result.release = now;
        events.push({now + jobs[ev.job].startup, seq++, EventKind::kJobStart,
                     ev.job, 0});
        break;
      }
      case EventKind::kJobStart: {
        for (int t = 0; t < jobs[ev.job].num_map_tasks; ++t) {
          ready.push({now, seq++, /*is_reduce=*/false, ev.job, t});
        }
        break;
      }
      case EventKind::kMapFinish: {
        ++free_slots;
        if (js.result.first_map_done < 0) js.result.first_map_done = now;
        if (--js.maps_remaining == 0) {
          js.result.maps_done = now;
          // Shuffle overlap credit: copying could run during the map phase
          // after the first wave's outputs appeared.
          const SimTime overlap = now - js.result.first_map_done;
          const auto& reduces = jobs[ev.job].reduces;
          for (int r = 0; r < static_cast<int>(reduces.size()); ++r) {
            const SimTime fetch =
                FromSeconds(static_cast<double>(reduces[r].fetch_bytes) *
                            config.SecPerByteNet()) +
                reduces[r].fetch_overhead;
            const SimTime after = std::max<SimTime>(0, fetch - overlap);
            events.push({now + after, seq++, EventKind::kReduceReady, ev.job,
                         r});
          }
        }
        break;
      }
      case EventKind::kReduceReady: {
        ready.push({now, seq++, /*is_reduce=*/true, ev.job, ev.task});
        break;
      }
      case EventKind::kReduceFinish: {
        ++free_slots;
        if (--js.reduces_remaining == 0) {
          const SimTime done = now + jobs[ev.job].cleanup;
          js.result.finish = done;
          makespan = std::max(makespan, done);
          ++jobs_finished;
          for (int dep : dependents[ev.job]) {
            if (--state[dep].deps_remaining == 0) {
              events.push({done, seq++, EventKind::kJobRelease, dep, 0});
            }
          }
        }
        break;
      }
    }
    dispatch(now);
  }

  if (jobs_finished != num_jobs) {
    return Status::FailedPrecondition(
        "dependency cycle: not all jobs finished");
  }

  SimReport report;
  report.makespan = makespan;
  for (int i = 0; i < num_jobs; ++i) report.jobs.push_back(state[i].result);
  return report;
}

}  // namespace mrtheta
