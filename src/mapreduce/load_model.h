#ifndef MRTHETA_MAPREDUCE_LOAD_MODEL_H_
#define MRTHETA_MAPREDUCE_LOAD_MODEL_H_

#include <cstdint>

#include "src/common/units.h"
#include "src/mapreduce/cluster_config.h"

namespace mrtheta {

/// \brief Data-loading time models behind Fig. 11.
///
/// Loading is not a MapReduce job (each DataNode ingests from local disk),
/// so it gets its own small analytic model:
///  - plain HDFS upload: parallel ingest across data nodes, replication
///    pipelined over the network;
///  - Hive load: plain upload plus SerDe/metastore overhead (per-volume
///    factor + fixed cost);
///  - our method: plain upload plus the sampling scan and the statistics +
///    index construction the planner needs (Sec. 6.3: "a little more time
///    consuming for the data uploading process", comparable to Hive at
///    large volumes).
struct LoadModel {
  int num_data_nodes = 12;
  double ingest_mb_per_sec_per_node = 11.5;  ///< effective local write rate
  double hive_overhead_factor = 1.06;        ///< SerDe re-encode cost
  SimTime hive_fixed = FromSeconds(45);      ///< metastore setup
  double sampling_fraction = 0.05;           ///< our sampling scan
  double index_factor = 1.09;                ///< stat/index build per byte
  SimTime ours_fixed = FromSeconds(70);      ///< stats aggregation

  SimTime PlainUpload(const ClusterConfig& cfg, int64_t bytes) const;
  SimTime HiveLoad(const ClusterConfig& cfg, int64_t bytes) const;
  SimTime OurLoad(const ClusterConfig& cfg, int64_t bytes) const;
};

}  // namespace mrtheta

#endif  // MRTHETA_MAPREDUCE_LOAD_MODEL_H_
