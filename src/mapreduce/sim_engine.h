#ifndef MRTHETA_MAPREDUCE_SIM_ENGINE_H_
#define MRTHETA_MAPREDUCE_SIM_ENGINE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/mapreduce/cluster_config.h"

namespace mrtheta {

/// One reduce task in the simulation: shuffle volume plus compute time.
struct SimReduceTask {
  int64_t fetch_bytes = 0;    ///< logical bytes copied over the network
  SimTime fetch_overhead = 0; ///< connection-serving overhead (q-driven)
  SimTime compute = 0;        ///< merge + comparisons + output write
};

/// \brief One MapReduce job as the discrete-event engine sees it.
///
/// Map tasks are uniform (the paper's even-input-partition assumption);
/// reduce tasks are individual so key skew shows up in the makespan.
struct SimJobSpec {
  std::string name;
  int num_map_tasks = 1;
  SimTime map_task_duration = 0;
  std::vector<SimReduceTask> reduces;
  /// Fixed startup latency between the job's release and its first map
  /// task becoming runnable (JVM/scheduling overhead).
  SimTime startup = 0;
  /// Serial commit tail after the last reduce task (output promotion).
  SimTime cleanup = 0;
  /// Indices of jobs (within the same RunSimulation call) that must fully
  /// finish before this job's map tasks may start.
  std::vector<int> deps;
};

/// Timing of one simulated job.
struct SimJobResult {
  SimTime release = 0;         ///< when deps were satisfied
  SimTime first_map_done = -1;
  SimTime maps_done = 0;       ///< end of the map phase
  SimTime finish = 0;          ///< last reduce task completion
};

/// Outcome of a whole simulation run.
struct SimReport {
  std::vector<SimJobResult> jobs;
  SimTime makespan = 0;
};

/// \brief Runs the discrete-event simulation of `jobs` over a cluster with
/// `config.num_workers` slots (each runs one Map or Reduce task at a time).
///
/// Modeling choices (see DESIGN.md):
///  - All of a job's map tasks become ready at release; waves emerge from
///    slot contention. Ready tasks are served FIFO by ready time.
///  - Shuffle copying overlaps the map phase (Hadoop copier threads): a
///    reduce task's data is ready at
///      maps_done + max(0, fetch_time − (maps_done − first_map_done)),
///    which reproduces both cases of the paper's Eq. (6).
///  - A reduce task occupies a slot only for its compute part.
StatusOr<SimReport> RunSimulation(const ClusterConfig& config,
                                  const std::vector<SimJobSpec>& jobs);

}  // namespace mrtheta

#endif  // MRTHETA_MAPREDUCE_SIM_ENGINE_H_
