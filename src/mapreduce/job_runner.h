#ifndef MRTHETA_MAPREDUCE_JOB_RUNNER_H_
#define MRTHETA_MAPREDUCE_JOB_RUNNER_H_

#include <memory>

#include "src/common/status.h"
#include "src/mapreduce/job.h"

namespace mrtheta {

/// Result of physically executing a job: the exact output relation (with
/// logical cardinality attached) plus the measurements the simulator needs.
struct PhysicalJobResult {
  std::shared_ptr<Relation> output;
  JobMeasurement metrics;
};

/// \brief Executes the Map, shuffle and Reduce phases of `spec` faithfully
/// over the physical tuples, single-threaded and deterministic.
///
/// Semantics follow Hadoop: map over every input record, partition map
/// output by key, sort each reduce task's records by key (ties broken by
/// (tag, row) for stability), invoke reduce once per key group, concatenate
/// reduce outputs in task order.
StatusOr<PhysicalJobResult> RunJobPhysically(const MapReduceJobSpec& spec);

}  // namespace mrtheta

#endif  // MRTHETA_MAPREDUCE_JOB_RUNNER_H_
