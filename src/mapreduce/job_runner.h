#ifndef MRTHETA_MAPREDUCE_JOB_RUNNER_H_
#define MRTHETA_MAPREDUCE_JOB_RUNNER_H_

#include <memory>

#include "src/common/status.h"
#include "src/mapreduce/job.h"

namespace mrtheta {

/// Result of physically executing a job: the exact output relation (with
/// logical cardinality attached) plus the measurements the simulator needs.
/// `spill_bytes`/`spill_files` count shuffle bytes/files spilled to disk
/// under a memory budget — observability only, deliberately *not* part of
/// JobMeasurement: simulated metrics must stay byte-identical with or
/// without spilling (docs/MEMORY.md).
struct PhysicalJobResult {
  std::shared_ptr<Relation> output;
  JobMeasurement metrics;
  int64_t spill_bytes = 0;
  int64_t spill_files = 0;
};

/// \brief Executes the Map, shuffle and Reduce phases of `spec` faithfully
/// over the physical tuples, single-threaded and deterministic.
///
/// Semantics follow Hadoop: map over every input record, partition map
/// output by key, sort each reduce task's records by key (ties broken by
/// (tag, row) for stability), invoke reduce once per key group, concatenate
/// reduce outputs in task order.
///
/// This runner never spills: budgeted executions route through the
/// parallel runner (even at one thread), which owns the spill machinery.
StatusOr<PhysicalJobResult> RunJobPhysically(const MapReduceJobSpec& spec);

/// \brief Runs one reduce task: sorts `records` in place by (key, tag,
/// row), groups by key, invokes spec.reduce per group into `output`, and
/// returns the task's charged comparisons — or the first emit error, with
/// its code preserved (kResourceExhausted for allocation failures).
///
/// `presorted` skips the sort when the caller's records already arrive in
/// (key, tag, row) order — the spill merge path (ShuffleSpool) produces
/// exactly that order, so re-sorting would be pure waste. Safe because
/// comparator ties are identical records by the emit contract, making the
/// sorted sequence unique for observable purposes.
///
/// Idempotent per attempt: the sort is stable under re-sorting and emits
/// go to the caller's (fresh, task-private) output relation, so the
/// fault-tolerant runner can re-execute a failed task against the same
/// record vector and commit only the successful attempt.
///
/// Shared by the sequential runner and the parallel runner
/// (src/runtime/parallel_job_runner.cc) — one implementation is what keeps
/// their outputs byte-identical (docs/RUNTIME.md determinism contract).
StatusOr<double> RunReduceTask(const MapReduceJobSpec& spec,
                               std::vector<MapOutputRecord>& records,
                               Relation* output, bool presorted = false);

}  // namespace mrtheta

#endif  // MRTHETA_MAPREDUCE_JOB_RUNNER_H_
