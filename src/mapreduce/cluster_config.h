#ifndef MRTHETA_MAPREDUCE_CLUSTER_CONFIG_H_
#define MRTHETA_MAPREDUCE_CLUSTER_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/common/units.h"

namespace mrtheta {

/// \brief Configuration of the simulated shared-nothing cluster.
///
/// Mirrors the paper's test bed (Sec. 6.1): 13 nodes / 104 cores / 10 GbE,
/// Hadoop-0.20 with the Table 1 parameter set, TestDFSIO-measured disk rates
/// (write 14.69 MB/s, read 74.26 MB/s per task). The cost-model constants
/// C1/C2 and the p(·)/q(·) behaviours are *derived* from these hardware
/// numbers; the cost model in src/cost re-fits them from observed job runs
/// exactly as the paper does, so the fit is meaningful.
struct ClusterConfig {
  /// kP: number of processing units that can each run one Map or Reduce
  /// task at a time (the paper's experiments use <=96 and <=64).
  int num_workers = 96;

  // ---- Table 1: Hadoop parameters ----
  int64_t block_size = 64 * kMiB;          ///< fs.blocksize
  int64_t io_sort_bytes = 512 * kMiB;      ///< io.sort.mb
  double io_sort_spill_percent = 0.9;      ///< io.sort.spill.percentage
  int replication = 3;                     ///< dfs.replication

  // ---- Measured I/O characteristics (TestDFSIO, Sec. 6.1) ----
  double disk_read_mb_per_sec = 74.26;
  double disk_write_mb_per_sec = 14.69;
  double network_mb_per_sec = 300.0;  ///< effective per-flow shuffle rate

  /// Fixed per-job startup/teardown latency (JVM spin-up, task scheduling;
  /// Hadoop-0.20 era — cf. the ~30 s floor of Fig. 6(d)). Cascades of many
  /// small jobs pay it repeatedly — one of the paper's motivations for
  /// single-MRJ evaluation.
  double job_startup_sec = 25.0;
  /// Row-at-a-time text SerDe throughput for Hive/Pig-style jobs (their
  /// pipelines parse and re-serialize every record; YSmart generates
  /// native code and avoids most of it — see [23]).
  double text_serde_mb_per_sec = 60.0;
  /// Width inflation of text-serialized intermediates vs binary.
  double text_width_factor = 1.6;
  /// Serial job-commit cost per reduce output file (the JobTracker-era
  /// OutputCommitter renames outputs one by one): small jobs with many
  /// reducers pay a visible fixed tail, producing Fig. 6's inflection and
  /// Fig. 7(a)'s volume-dependent best kR.
  double commit_sec_per_reduce = 0.6;
  /// Reduce outputs are written to HDFS with `replication` copies; the
  /// pipeline makes the effective write this many times slower.
  double OutputWriteSecPerByte() const {
    return SecPerByteWrite() * replication;
  }

  // ---- CPU model ----
  /// Join comparisons a reduce task evaluates per second ("most of the CPU
  /// time for join processing is spent on simple comparison and counting").
  double comparisons_per_sec = 250e6;
  /// Whether the simulated clock charges reduce-side comparison CPU. The
  /// paper's cost model is I/O-only (Sec. 4: "system I/O cost dominates the
  /// total execution time"; Eq. 5 has no CPU term), so the default is
  /// false — comparisons are still *measured* and drive Eq. 10's workload
  /// factor. Enable for the CPU-cost ablation.
  bool charge_comparison_cpu = false;

  // ---- Ground-truth p/q behaviour (hidden from the cost model's fit) ----
  /// Base spill cost factor p0 in seconds/byte; p grows when a map task's
  /// output exceeds the sort buffer and needs extra spill/merge passes.
  double spill_base_sec_per_byte = 1.0 / (80.0 * kMiB);
  /// Base per-connection overhead q0 in seconds; q grows superlinearly in
  /// the number of reduce connections a map output must serve.
  double conn_overhead_base_sec = 0.03;
  /// Connection count at which q's superlinear growth kicks in.
  double conn_knee = 32.0;

  // ---- Derived helpers ----
  double SecPerByteRead() const {
    return 1.0 / (disk_read_mb_per_sec * kMiB);
  }
  double SecPerByteWrite() const {
    return 1.0 / (disk_write_mb_per_sec * kMiB);
  }
  double SecPerByteNet() const { return 1.0 / (network_mb_per_sec * kMiB); }

  /// Ground-truth p: spill cost (sec/byte of map output) for a map task
  /// producing `map_output_bytes_per_task`. Extra spill passes are incurred
  /// once the output exceeds the usable sort buffer.
  double SpillSecPerByte(double map_output_bytes_per_task) const {
    const double usable =
        static_cast<double>(io_sort_bytes) * io_sort_spill_percent;
    double passes = 1.0;
    if (map_output_bytes_per_task > usable) {
      passes += map_output_bytes_per_task / usable - 1.0;
    }
    return spill_base_sec_per_byte * passes;
  }

  /// Ground-truth q: seconds of overhead for a map task serving `n` reduce
  /// connections ("rapid growth of q while n gets larger" — quadratic past
  /// the knee, where connection churn dominates).
  double ConnOverheadSec(int n) const {
    const double nd = static_cast<double>(n);
    const double excess = nd / conn_knee;
    return conn_overhead_base_sec * nd * (1.0 + excess * excess);
  }

  std::string ToString() const;
};

}  // namespace mrtheta

#endif  // MRTHETA_MAPREDUCE_CLUSTER_CONFIG_H_
