#include "src/mapreduce/job_runner.h"

#include <algorithm>
#include <cmath>
#include <new>

#include "src/obs/trace.h"

namespace mrtheta {

namespace {
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Rewraps a task-internal error with job context, preserving its code so
/// kResourceExhausted survives to the caller (admission control and tests
/// key on the code, not the message).
Status WrapTaskError(const std::string& what, const MapReduceJobSpec& spec,
                     const Status& cause) {
  return Status::WithCode(cause.code(), what + " in job '" + spec.name +
                                            "': " + cause.message());
}
}  // namespace

int HashPartition(int64_t key, int num_reduce_tasks) {
  return static_cast<int>(Mix64(static_cast<uint64_t>(key)) %
                          static_cast<uint64_t>(num_reduce_tasks));
}

void ReduceCollector::Emit(const std::vector<Value>& row) {
  if (!status_.ok()) return;  // latch the first error, drop the rest
  try {
    Status s = output_->AppendRow(row);
    if (!s.ok()) {
      status_ = std::move(s);
      return;
    }
  } catch (const std::bad_alloc&) {
    status_ = Status::ResourceExhausted("reduce output row append failed");
    return;
  }
  ++rows_emitted_;
}

int64_t JobMeasurement::MaxReduceInputBytes() const {
  int64_t mx = 0;
  for (int64_t b : reduce_input_bytes_logical) mx = std::max(mx, b);
  return mx;
}

StatusOr<double> RunReduceTask(const MapReduceJobSpec& spec,
                               std::vector<MapOutputRecord>& records,
                               Relation* output, bool presorted) {
  const int num_tags = static_cast<int>(spec.inputs.size());
  if (!presorted) {
    std::sort(records.begin(), records.end(),
              [](const MapOutputRecord& a, const MapOutputRecord& b) {
                if (a.key != b.key) return a.key < b.key;
                if (a.tag != b.tag) return a.tag < b.tag;
                return a.row < b.row;
              });
  }
  ReduceCollector collector(output);
  size_t i = 0;
  while (i < records.size()) {
    size_t j = i;
    while (j < records.size() && records[j].key == records[i].key) ++j;
    std::vector<std::vector<const MapOutputRecord*>> by_tag(num_tags);
    for (size_t k = i; k < j; ++k) {
      by_tag[records[k].tag].push_back(&records[k]);
    }
    ReduceContext ctx;
    ctx.key = records[i].key;
    ctx.by_tag = &by_tag;
    ctx.inputs = &spec.inputs;
    spec.reduce(ctx, collector);
    if (!collector.status().ok()) {
      return WrapTaskError("reduce emit failed", spec, collector.status());
    }
    i = j;
  }
  return collector.comparisons();
}

StatusOr<PhysicalJobResult> RunJobPhysically(const MapReduceJobSpec& spec) {
  if (spec.inputs.empty()) {
    return Status::InvalidArgument("job '" + spec.name + "' has no inputs");
  }
  if (!spec.map || !spec.reduce) {
    return Status::InvalidArgument("job '" + spec.name +
                                   "' is missing map or reduce function");
  }
  if (spec.num_reduce_tasks < 1) {
    return Status::InvalidArgument("num_reduce_tasks must be >= 1");
  }

  PhysicalJobResult result;
  result.output =
      std::make_shared<Relation>(spec.output_name, spec.output_schema);
  JobMeasurement& m = result.metrics;

  // ---- Map phase ----
  TraceSpan map_phase("map-phase", "runtime");
  if (map_phase.enabled()) map_phase.Arg("job", spec.name);
  const int n = spec.num_reduce_tasks;
  const PartitionFn& partition =
      spec.partition ? spec.partition : PartitionFn(HashPartition);
  MapEmitter emitter;
  emitter.SetPartitioner(partition, n);
  if (spec.combine) emitter.set_combine(spec.combine);
  {
    double expected_records = 0.0;
    for (int tag = 0; tag < static_cast<int>(spec.inputs.size()); ++tag) {
      expected_records +=
          static_cast<double>(spec.inputs[tag].relation->num_rows()) *
          spec.EmitsPerRow(tag);
    }
    emitter.Reserve(static_cast<size_t>(expected_records));
  }
  for (int tag = 0; tag < static_cast<int>(spec.inputs.size()); ++tag) {
    const Relation& rel = *spec.inputs[tag].relation;
    m.input_bytes_logical += rel.logical_bytes();
    m.input_bytes_physical += rel.physical_bytes();
    for (int64_t row = 0; row < rel.num_rows(); ++row) {
      spec.map(tag, rel, row, emitter);
      emitter.EndRow();
    }
  }
  if (!emitter.status().ok()) {
    return WrapTaskError("map emit failed", spec, emitter.status());
  }
  m.map_output_records_physical = emitter.size();
  map_phase.End();

  // ---- Shuffle: route by the emit-time target, charge logical bytes ----
  TraceSpan shuffle_phase("shuffle-merge", "runtime");
  if (shuffle_phase.enabled()) shuffle_phase.Arg("job", spec.name);
  std::vector<std::vector<MapOutputRecord>> task_records(n);
  std::vector<double> task_bytes(n, 0.0);
  double map_out_bytes = 0.0;
  Status walk = emitter.ForEach([&](const MapOutputRecord& rec) {
    const double scaled_bytes =
        static_cast<double>(rec.bytes) * spec.inputs[rec.tag].scale;
    task_bytes[rec.target] += scaled_bytes;
    map_out_bytes += scaled_bytes;
    task_records[rec.target].push_back(rec);
  });
  if (!walk.ok()) return WrapTaskError("shuffle walk failed", spec, walk);
  result.spill_bytes = emitter.spilled_bytes();
  result.spill_files = emitter.spill_files();
  emitter.Clear();
  m.map_output_bytes_logical = static_cast<int64_t>(map_out_bytes);
  m.reduce_input_bytes_logical.resize(n);
  for (int t = 0; t < n; ++t) {
    m.reduce_input_bytes_logical[t] = static_cast<int64_t>(task_bytes[t]);
  }

  shuffle_phase.End();

  // ---- Reduce phase: per task, sort by key then group ----
  TraceSpan reduce_phase("reduce-phase", "runtime");
  if (reduce_phase.enabled()) {
    reduce_phase.Arg("job", spec.name).Arg("tasks", static_cast<int64_t>(n));
  }
  m.reduce_comparisons_logical.assign(n, 0.0);
  for (int t = 0; t < n; ++t) {
    TraceSpan task_span("reduce-task", "runtime");
    if (task_span.enabled()) {
      task_span.Arg("job", spec.name).Arg("task", static_cast<int64_t>(t));
    }
    StatusOr<double> comparisons =
        RunReduceTask(spec, task_records[t], result.output.get());
    if (!comparisons.ok()) return comparisons.status();
    m.reduce_comparisons_logical[t] = *comparisons;
  }
  reduce_phase.End();

  // ---- Output accounting ----
  m.output_rows_physical = result.output->num_rows();
  m.output_rows_logical =
      static_cast<double>(m.output_rows_physical) * spec.output_row_scale;
  // Guard against llround overflow on extreme extrapolations.
  const double capped_rows =
      std::min(m.output_rows_logical, 4.0e18);
  result.output->set_logical_rows(
      static_cast<int64_t>(std::llround(capped_rows)));
  m.output_bytes_logical = result.output->logical_bytes();
  return result;
}

}  // namespace mrtheta
