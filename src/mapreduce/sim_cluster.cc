#include "src/mapreduce/sim_cluster.h"

#include <algorithm>
#include <cmath>

namespace mrtheta {

int SimCluster::NumMapTasks(int64_t input_bytes_logical) const {
  const int64_t m =
      (input_bytes_logical + config_.block_size - 1) / config_.block_size;
  return static_cast<int>(std::max<int64_t>(1, m));
}

SimJobSpec SimCluster::BuildSimJob(const MapReduceJobSpec& spec,
                                   const JobMeasurement& metrics,
                                   std::vector<int> deps) const {
  SimJobSpec sim;
  sim.name = spec.name;
  sim.deps = std::move(deps);

  const double si = static_cast<double>(metrics.input_bytes_logical);
  const int m = NumMapTasks(metrics.input_bytes_logical);
  sim.num_map_tasks = m;

  // ---- Map task duration (Eq. 1) ----
  const double serde =
      spec.text_serde ? 1.0 / (config_.text_serde_mb_per_sec * kMiB) : 0.0;
  const double width_factor =
      spec.text_serde ? config_.text_width_factor : 1.0;
  const double in_per_task = si / m;
  const double out_per_task = width_factor *
      static_cast<double>(metrics.map_output_bytes_logical) / m;
  const double t_m =
      in_per_task * (config_.SecPerByteRead() + serde) +
      out_per_task * config_.SpillSecPerByte(out_per_task);
  sim.map_task_duration = FromSeconds(t_m);

  // ---- Reduce tasks ----
  const int n = static_cast<int>(metrics.reduce_input_bytes_logical.size());
  const double out_bytes_per_reduce = width_factor *
      static_cast<double>(metrics.output_bytes_logical) / std::max(1, n);
  // Per-fetch connection overhead: each reduce task fetches from every map
  // task; serving cost per connection grows with the job's reducer count.
  const double per_fetch_overhead_sec = config_.ConnOverheadSec(n) / n;
  sim.reduces.reserve(n);
  for (int r = 0; r < n; ++r) {
    SimReduceTask task;
    const double bytes_r = width_factor *
        static_cast<double>(metrics.reduce_input_bytes_logical[r]);
    task.fetch_bytes = static_cast<int64_t>(bytes_r);
    task.fetch_overhead = FromSeconds(m * per_fetch_overhead_sec);
    const double comps_r =
        (!config_.charge_comparison_cpu ||
         metrics.reduce_comparisons_logical.empty())
            ? 0.0
            : metrics.reduce_comparisons_logical[r];
    const double compute_sec = bytes_r * (config_.SecPerByteRead() + serde) +
                               comps_r / config_.comparisons_per_sec +
                               out_bytes_per_reduce *
                                   config_.OutputWriteSecPerByte();
    task.compute = FromSeconds(compute_sec);
    sim.reduces.push_back(task);
  }
  sim.startup = FromSeconds(config_.job_startup_sec);
  sim.cleanup = FromSeconds(config_.commit_sec_per_reduce * n);
  return sim;
}

StatusOr<JobRunResult> SimCluster::RunJob(const MapReduceJobSpec& spec) const {
  StatusOr<PhysicalJobResult> phys = RunJobPhysically(spec);
  if (!phys.ok()) return phys.status();

  JobRunResult result;
  result.output = phys->output;
  result.metrics = phys->metrics;

  const SimJobSpec sim = BuildSimJob(spec, phys->metrics);
  StatusOr<SimReport> report = RunSimulation(config_, {sim});
  if (!report.ok()) return report.status();
  result.timing = report->jobs[0];
  result.duration = report->makespan;
  return result;
}

}  // namespace mrtheta
