#include "src/mapreduce/load_model.h"

namespace mrtheta {

SimTime LoadModel::PlainUpload(const ClusterConfig& cfg, int64_t bytes) const {
  (void)cfg;
  const double aggregate_rate =
      ingest_mb_per_sec_per_node * num_data_nodes * kMiB;  // bytes/sec
  return FromSeconds(static_cast<double>(bytes) / aggregate_rate);
}

SimTime LoadModel::HiveLoad(const ClusterConfig& cfg, int64_t bytes) const {
  return static_cast<SimTime>(hive_overhead_factor *
                              static_cast<double>(PlainUpload(cfg, bytes))) +
         hive_fixed;
}

SimTime LoadModel::OurLoad(const ClusterConfig& cfg, int64_t bytes) const {
  const SimTime plain = PlainUpload(cfg, bytes);
  // Sampling scan reads a fraction of the data at the aggregate disk read
  // rate; statistics/index construction costs a per-byte factor on top of
  // the upload itself.
  const double read_rate =
      cfg.disk_read_mb_per_sec * num_data_nodes * kMiB;  // bytes/sec
  const SimTime sampling = FromSeconds(
      sampling_fraction * static_cast<double>(bytes) / read_rate);
  return static_cast<SimTime>(index_factor * static_cast<double>(plain)) +
         sampling + ours_fixed;
}

}  // namespace mrtheta
