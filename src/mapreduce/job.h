#ifndef MRTHETA_MAPREDUCE_JOB_H_
#define MRTHETA_MAPREDUCE_JOB_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/relation/relation.h"

namespace mrtheta {

/// One record emitted by a Map task: a partition key plus a *reference* to a
/// physical tuple (tag = which input, row = row index). `rec_id` carries the
/// tuple's logical global ID (the paper's randomly assigned GlobalID) and
/// `bytes` the serialized size charged to the shuffle.
struct MapOutputRecord {
  int64_t key = 0;
  int32_t tag = 0;
  int64_t row = 0;
  int64_t rec_id = 0;
  int64_t bytes = 0;
};

/// Collects Map outputs. Map functions call Emit once per (key, record).
class MapEmitter {
 public:
  void Emit(int64_t key, int32_t tag, int64_t row, int64_t rec_id,
            int64_t bytes) {
    records_.push_back({key, tag, row, rec_id, bytes});
  }

  /// Capacity hint: grows the record buffer to hold at least `records`
  /// entries up front. Runners call this with the builder's per-row emit
  /// estimate (MapReduceJobSpec::map_emits_per_row) times the input size,
  /// cutting the log(n) reallocation-and-copy passes of a large shuffle.
  void Reserve(size_t records) { records_.reserve(records); }

  std::vector<MapOutputRecord>& records() { return records_; }

 private:
  std::vector<MapOutputRecord> records_;
};

/// Collects Reduce outputs and CPU accounting.
class ReduceCollector {
 public:
  explicit ReduceCollector(Relation* output) : output_(output) {}

  /// Appends one result row to the job's output relation. A failed append
  /// (schema mismatch — a builder bug) latches the first error and turns
  /// subsequent Emits into no-ops; runners surface it as the task's
  /// Status. This used to be an assert(), i.e. silently ignored under
  /// NDEBUG Release builds.
  void Emit(const std::vector<Value>& row);

  /// Charges `n` *logical* tuple-pair comparisons to the current reduce
  /// task; drives the simulated CPU time of the task.
  void AddComparisons(double n) { comparisons_ += n; }

  double comparisons() const { return comparisons_; }
  int64_t rows_emitted() const { return rows_emitted_; }
  /// First append error, or OK.
  const Status& status() const { return status_; }

 private:
  Relation* output_;
  double comparisons_ = 0;
  int64_t rows_emitted_ = 0;
  Status status_;
};

/// One input of a job. `scale` = logical_rows / physical_rows for this
/// input; executors use it to convert measured physical volumes into the
/// logical volumes the simulator clocks.
struct JobInput {
  RelationPtr relation;
  double scale = 1.0;

  int64_t logical_bytes() const { return relation->logical_bytes(); }
};

/// Context handed to the reduce function for one key group.
struct ReduceContext {
  int64_t key = 0;
  /// Records of this key group, partitioned by input tag (stable row order).
  const std::vector<std::vector<const MapOutputRecord*>>* by_tag = nullptr;
  /// The job's inputs, for tuple access by (tag, row).
  const std::vector<JobInput>* inputs = nullptr;

  const Relation& relation(int tag) const {
    return *(*inputs)[tag].relation;
  }
  const std::vector<const MapOutputRecord*>& records(int tag) const {
    return (*by_tag)[tag];
  }
};

/// Map function: invoked once per physical row of every input.
using MapFn = std::function<void(int tag, const Relation& rel, int64_t row,
                                 MapEmitter& out)>;

/// Reduce function: invoked once per distinct key, keys in ascending order.
using ReduceFn = std::function<void(const ReduceContext& ctx,
                                    ReduceCollector& out)>;

/// Partitioner: maps a key to a reduce task in [0, num_reduce_tasks).
using PartitionFn = std::function<int(int64_t key, int num_reduce_tasks)>;

/// Default partitioner: mixed hash modulo n (Hadoop's HashPartitioner).
int HashPartition(int64_t key, int num_reduce_tasks);

/// \brief Complete specification of one MapReduce job (MRJ).
struct MapReduceJobSpec {
  std::string name;
  std::vector<JobInput> inputs;
  MapFn map;
  ReduceFn reduce;
  /// RN(MRJ): the user-specified reduce task count — the scheduling
  /// parameter the paper optimizes.
  int num_reduce_tasks = 1;
  PartitionFn partition;  ///< defaults to HashPartition when null
  Schema output_schema;
  std::string output_name = "out";
  /// Multiplier that converts physical output rows to logical output rows
  /// (the β-extrapolation rule; see DESIGN.md §1).
  double output_row_scale = 1.0;
  /// True for Hive/Pig-style jobs: pay text-SerDe parse/serialize costs and
  /// text-width-inflated intermediates (ClusterConfig::text_serde_*).
  bool text_serde = false;
  /// Reduce-side join kernel this job is *eligible* to run (see
  /// JoinKernelName in src/exec/theta_kernels.h) — observability only.
  /// Qualifying reduce groups use it; groups below the job's
  /// sort-kernel min-pairs gate always take the generic nested loop.
  std::string kernel = "generic";
  /// Expected Emit calls per input row, one entry per input (empty = 1.0
  /// for every input). Builders fill this from their replication factors so
  /// runners can pre-size MapEmitter buffers; a hint only — correctness
  /// never depends on it.
  std::vector<double> map_emits_per_row;

  double EmitsPerRow(int tag) const {
    return tag < static_cast<int>(map_emits_per_row.size())
               ? map_emits_per_row[tag]
               : 1.0;
  }
};

/// Physical + logical measurements of one executed job. All `*_logical`
/// volumes are what the simulator clocks; physical fields exist for tests.
struct JobMeasurement {
  int64_t input_bytes_logical = 0;
  int64_t input_bytes_physical = 0;
  int64_t map_output_bytes_logical = 0;
  int64_t map_output_records_physical = 0;
  std::vector<int64_t> reduce_input_bytes_logical;   // per reduce task
  std::vector<double> reduce_comparisons_logical;    // per reduce task
  int64_t output_rows_physical = 0;
  double output_rows_logical = 0;
  int64_t output_bytes_logical = 0;

  int64_t MaxReduceInputBytes() const;
};

}  // namespace mrtheta

#endif  // MRTHETA_MAPREDUCE_JOB_H_
