#ifndef MRTHETA_MAPREDUCE_JOB_H_
#define MRTHETA_MAPREDUCE_JOB_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/mem/memory_budget.h"
#include "src/mem/spill.h"
#include "src/relation/relation.h"

namespace mrtheta {

/// One record emitted by a Map task: a partition key plus a *reference* to a
/// physical tuple (tag = which input, row = row index). `rec_id` carries the
/// tuple's logical global ID (the paper's randomly assigned GlobalID) and
/// `bytes` the serialized size charged to the shuffle. `target` is the
/// record's reduce task, computed at emit time by the emitter's partitioner
/// (it fills what used to be struct padding, so records stay 40 bytes and
/// can be spilled to disk as raw POD).
struct MapOutputRecord {
  int64_t key = 0;
  int32_t tag = 0;
  int32_t target = 0;
  int64_t row = 0;
  int64_t rec_id = 0;
  int64_t bytes = 0;
};

/// Optional map-side combiner (docs/MEMORY.md): invoked once per input row
/// on the slice of records that row emitted, in emit order; it may drop,
/// rewrite or reorder records in place. The row boundary is the only
/// combine scope that is invariant across thread counts, split shapes and
/// budgets, which is what keeps combined runs deterministic.
using CombineFn = std::function<void(std::vector<MapOutputRecord>&)>;

/// Order-preserving duplicate elimination: keeps the first occurrence of
/// each fully identical record in a row's slice. The safe default
/// combiner — on specs that never emit duplicate records it is a no-op,
/// so outputs *and metrics* stay byte-identical with it enabled.
CombineFn MakeDedupCombiner();

/// Partitioner: maps a key to a reduce task in [0, num_reduce_tasks).
using PartitionFn = std::function<int(int64_t key, int num_reduce_tasks)>;

/// Default partitioner: mixed hash modulo n (Hadoop's HashPartitioner).
int HashPartition(int64_t key, int num_reduce_tasks);

/// \brief Collects Map outputs into fixed-size KV pages owned by the
/// process MemoryBudget, optionally flushing full pages to a spill file
/// when the budget is exceeded (docs/MEMORY.md).
///
/// Map functions call Emit once per (key, record); runners call EndRow()
/// after each input row (the combine/spill boundary) and stream the
/// records back in emit order with ForEach(). All failures — page
/// allocation, reservation, spill I/O, a partitioner out of range — latch
/// into status() and turn subsequent Emits into no-ops; runners surface
/// the latched status as the task's Status (kResourceExhausted for memory,
/// matching the hardened ReduceCollector::Emit) instead of aborting on
/// bad_alloc.
class MapEmitter {
 public:
  static constexpr int64_t kRecordsPerPage =
      MemoryBudget::kPageBytes / static_cast<int64_t>(sizeof(MapOutputRecord));

  MapEmitter() = default;
  MapEmitter(const MapEmitter&) = delete;
  MapEmitter& operator=(const MapEmitter&) = delete;
  MapEmitter(MapEmitter&& other) noexcept = default;
  MapEmitter& operator=(MapEmitter&& other) noexcept;
  ~MapEmitter() { Clear(); }

  /// Sets the partitioner evaluated at emit time; every record's `target`
  /// is its reduce task in [0, num_reduce_tasks). Must be called before
  /// the first Emit (runners do).
  void SetPartitioner(PartitionFn partition, int num_reduce_tasks) {
    partition_ = std::move(partition);
    num_reduce_tasks_ = num_reduce_tasks;
  }

  /// Installs the per-row combiner applied by EndRow(); null disables.
  void set_combine(CombineFn combine) { combine_ = std::move(combine); }

  /// Arms spilling: once the global budget's in-use bytes exceed
  /// `limit_bytes`, EndRow() flushes full pages to a file in `dir` (not
  /// owned; must outlive the emitter). Never armed = pure in-memory.
  void EnableSpill(int64_t limit_bytes, SpillDirectory* dir) {
    spill_limit_bytes_ = limit_bytes;
    spill_dir_ = dir;
  }

  void Emit(int64_t key, int32_t tag, int64_t row, int64_t rec_id,
            int64_t bytes) {
    if (!status_.ok()) return;
    int32_t target = 0;
    if (num_reduce_tasks_ > 0) {
      const int t = partition_(key, num_reduce_tasks_);
      if (t < 0 || t >= num_reduce_tasks_) {
        status_ = Status::Internal("partitioner returned task out of range");
        return;
      }
      target = t;
    }
    if (pages_.empty() || last_page_records_ == kRecordsPerPage) {
      if (!AddPage()) return;  // latched
    }
    MapOutputRecord* rec =
        PageRecords(pages_.back()) + last_page_records_++;
    rec->key = key;
    rec->tag = tag;
    rec->target = target;
    rec->row = row;
    rec->rec_id = rec_id;
    rec->bytes = bytes;
    ++size_;
  }

  /// Capacity hint: pre-sizes the page table for at least `records`
  /// entries. Advisory — a failed reservation latches kResourceExhausted
  /// into status() (surfaced as the task's Status) instead of aborting.
  void Reserve(size_t records);

  /// Row boundary: applies the combiner to the records the row emitted,
  /// then (when spilling is armed and the budget is exceeded) flushes
  /// full pages to disk. Runners call it after every spec.map invocation.
  void EndRow();

  /// Streams every record in emit order — the spilled prefix from disk,
  /// then the in-memory pages. Returns the latched status (or a read
  /// error) without invoking `fn` when the emitter is poisoned.
  Status ForEach(const std::function<void(const MapOutputRecord&)>& fn);

  /// Records emitted (post-combine), spilled or resident.
  int64_t size() const { return size_; }

  /// First latched error, or OK.
  const Status& status() const { return status_; }

  /// Bytes flushed to the spill file so far (0 = never spilled).
  int64_t spilled_bytes() const { return spilled_bytes_; }
  /// Spill files created by this emitter (0 or 1).
  int64_t spill_files() const { return spill_file_.has_value() ? 1 : 0; }

  /// Releases every page to the budget, removes the spill file, and
  /// resets the emitter to freshly constructed state (partitioner,
  /// combiner and spill arming included).
  void Clear();

 private:
  static MapOutputRecord* PageRecords(const MemoryBudget::PagePtr& page) {
    return reinterpret_cast<MapOutputRecord*>(page.get());
  }

  bool AddPage();       // latches on failure
  void ApplyCombine();  // combine_ over [row_mark_, size_)
  void SpillFullPages();

  std::vector<MemoryBudget::PagePtr> pages_;
  /// Records in pages_.back(); every earlier page is full. 0 iff empty.
  int64_t last_page_records_ = 0;
  int64_t size_ = 0;
  int64_t spilled_records_ = 0;  ///< prefix of emit order now on disk
  int64_t row_mark_ = 0;         ///< size() when the current row began
  Status status_;

  PartitionFn partition_;
  int num_reduce_tasks_ = 0;
  CombineFn combine_;
  std::vector<MapOutputRecord> combine_buf_;  // scratch for one row slice

  int64_t spill_limit_bytes_ = 0;
  SpillDirectory* spill_dir_ = nullptr;
  std::optional<SpillFile> spill_file_;
  int64_t spilled_bytes_ = 0;
};

/// Collects Reduce outputs and CPU accounting.
class ReduceCollector {
 public:
  explicit ReduceCollector(Relation* output) : output_(output) {}

  /// Appends one result row to the job's output relation. A failed append
  /// — schema mismatch (a builder bug) or an allocation failure
  /// (kResourceExhausted) — latches the first error and turns subsequent
  /// Emits into no-ops; runners surface it as the task's Status. This
  /// used to be an assert(), i.e. silently ignored under NDEBUG Release
  /// builds, and an abort on bad_alloc.
  void Emit(const std::vector<Value>& row);

  /// Charges `n` *logical* tuple-pair comparisons to the current reduce
  /// task; drives the simulated CPU time of the task.
  void AddComparisons(double n) { comparisons_ += n; }

  double comparisons() const { return comparisons_; }
  int64_t rows_emitted() const { return rows_emitted_; }
  /// First append error, or OK.
  const Status& status() const { return status_; }

 private:
  Relation* output_;
  double comparisons_ = 0;
  int64_t rows_emitted_ = 0;
  Status status_;
};

/// One input of a job. `scale` = logical_rows / physical_rows for this
/// input; executors use it to convert measured physical volumes into the
/// logical volumes the simulator clocks.
struct JobInput {
  RelationPtr relation;
  double scale = 1.0;

  int64_t logical_bytes() const { return relation->logical_bytes(); }
};

/// Context handed to the reduce function for one key group.
struct ReduceContext {
  int64_t key = 0;
  /// Records of this key group, partitioned by input tag (stable row order).
  const std::vector<std::vector<const MapOutputRecord*>>* by_tag = nullptr;
  /// The job's inputs, for tuple access by (tag, row).
  const std::vector<JobInput>* inputs = nullptr;

  const Relation& relation(int tag) const {
    return *(*inputs)[tag].relation;
  }
  const std::vector<const MapOutputRecord*>& records(int tag) const {
    return (*by_tag)[tag];
  }
};

/// Map function: invoked once per physical row of every input.
using MapFn = std::function<void(int tag, const Relation& rel, int64_t row,
                                 MapEmitter& out)>;

/// Reduce function: invoked once per distinct key, keys in ascending order.
using ReduceFn = std::function<void(const ReduceContext& ctx,
                                    ReduceCollector& out)>;

/// \brief Complete specification of one MapReduce job (MRJ).
struct MapReduceJobSpec {
  std::string name;
  std::vector<JobInput> inputs;
  MapFn map;
  ReduceFn reduce;
  /// RN(MRJ): the user-specified reduce task count — the scheduling
  /// parameter the paper optimizes.
  int num_reduce_tasks = 1;
  PartitionFn partition;  ///< defaults to HashPartition when null
  /// Optional map-side combiner, applied per input row (see CombineFn).
  /// Null = no combining. Executors set it from PlanJob::map_side_combine.
  CombineFn combine;
  Schema output_schema;
  std::string output_name = "out";
  /// Multiplier that converts physical output rows to logical output rows
  /// (the β-extrapolation rule; see DESIGN.md §1).
  double output_row_scale = 1.0;
  /// True for Hive/Pig-style jobs: pay text-SerDe parse/serialize costs and
  /// text-width-inflated intermediates (ClusterConfig::text_serde_*).
  bool text_serde = false;
  /// Reduce-side join kernel this job is *eligible* to run (see
  /// JoinKernelName in src/exec/theta_kernels.h) — observability only.
  /// Qualifying reduce groups use it; groups below the job's
  /// sort-kernel min-pairs gate always take the generic nested loop.
  std::string kernel = "generic";
  /// Expected Emit calls per input row, one entry per input (empty = 1.0
  /// for every input). Builders fill this from their replication factors so
  /// runners can pre-size MapEmitter buffers; a hint only — correctness
  /// never depends on it.
  std::vector<double> map_emits_per_row;

  double EmitsPerRow(int tag) const {
    return tag < static_cast<int>(map_emits_per_row.size())
               ? map_emits_per_row[tag]
               : 1.0;
  }
};

/// Physical + logical measurements of one executed job. All `*_logical`
/// volumes are what the simulator clocks; physical fields exist for tests.
struct JobMeasurement {
  int64_t input_bytes_logical = 0;
  int64_t input_bytes_physical = 0;
  int64_t map_output_bytes_logical = 0;
  int64_t map_output_records_physical = 0;
  std::vector<int64_t> reduce_input_bytes_logical;   // per reduce task
  std::vector<double> reduce_comparisons_logical;    // per reduce task
  int64_t output_rows_physical = 0;
  double output_rows_logical = 0;
  int64_t output_bytes_logical = 0;

  int64_t MaxReduceInputBytes() const;
};

}  // namespace mrtheta

#endif  // MRTHETA_MAPREDUCE_JOB_H_
