#include "src/mapreduce/cluster_config.h"

#include <cstdio>

namespace mrtheta {

std::string ClusterConfig::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "ClusterConfig{workers=%d block=%s sort=%s spill%%=%.2f "
                "repl=%d read=%.2fMB/s write=%.2fMB/s net=%.1fMB/s}",
                num_workers, FormatBytes(block_size).c_str(),
                FormatBytes(io_sort_bytes).c_str(), io_sort_spill_percent,
                replication, disk_read_mb_per_sec, disk_write_mb_per_sec,
                network_mb_per_sec);
  return buf;
}

}  // namespace mrtheta
