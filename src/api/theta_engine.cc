#include "src/api/theta_engine.h"

#include <algorithm>
#include <chrono>
#include <system_error>
#include <thread>

#include "src/common/units.h"
#include "src/obs/trace.h"

namespace mrtheta {

namespace {

/// Full plan-cache key: the query's canonical structure plus the
/// generation of every input in query-index order. Generations come from a
/// never-reused process-wide counter re-drawn on every mutation
/// (src/relation/relation.h), so a key match alone proves "same structure
/// over the same content" — no relation pointers needed, and a mutated
/// input invalidates by mismatch rather than by explicit eviction.
std::string PlanCacheKey(const Query& query) {
  std::string key = query.StructureKey();
  key += "|g";
  for (const RelationPtr& rel : query.relations()) {
    key += ":" + std::to_string(rel->generation());
  }
  return key;
}

}  // namespace

std::string PlanReport::ToString() const {
  std::string out = plan.ToString();
  out += "planned with statistics:\n";
  for (size_t i = 0; i < stats.size(); ++i) {
    out += "  R" + std::to_string(i) + ": logical " +
           FormatBytes(stats[i].logical_bytes) + " (" +
           std::to_string(stats[i].logical_rows) + " rows, " +
           std::to_string(stats[i].columns.size()) + " columns)\n";
  }
  return out;
}

ThetaEngine::ThetaEngine(EngineOptions options)
    : options_(std::move(options)),
      cluster_(options_.cluster),
      pool_(std::max(1, options_.executor.num_threads)) {}

ThetaEngine::~ThetaEngine() {
  MutexLock lock(&mu_);
  while (inflight_submissions_ != 0) idle_cv_.Wait(&mu_);
}

Status ThetaEngine::EnsureReadyLocked() {
  if (initialized_) return init_status_;
  initialized_ = true;
  init_status_ = options_.Validate();
  if (!init_status_.ok()) return init_status_;
  // Calibration probes need one free map wave, so the campaign runs on a
  // throwaway cluster at calibration_workers width; the fitted parameters
  // are kP-independent (see bench/bench_util.cc's original Harness).
  ClusterConfig calibration_config = options_.cluster;
  if (options_.calibration_workers > 0) {
    calibration_config.num_workers = options_.calibration_workers;
  }
  const SimCluster calibration_cluster(calibration_config);
  StatusOr<CalibrationReport> report =
      CalibrateCostModel(calibration_cluster, options_.calibration);
  if (!report.ok()) {
    init_status_ = report.status();
    return init_status_;
  }
  registry_.GetCounter("engine_calibrations")->Increment();
  calibration_ = std::make_unique<CalibrationReport>(*std::move(report));
  planner_ = std::make_unique<Planner>(&cluster_, calibration_->params,
                                       options_.planner);
  return Status::OK();
}

std::vector<TableStats> ThetaEngine::StatsForLocked(const Query& query) {
  // Sweep entries whose relation died since the last pass: without the old
  // pinning, a dead entry's address could be handed to a future Relation,
  // and the cache must never answer for a corpse.
  for (auto it = stats_cache_.begin(); it != stats_cache_.end();) {
    if (it->second.alive.expired()) {
      it = stats_cache_.erase(it);
      registry_.GetCounter("engine_stats_evictions")->Increment();
    } else {
      ++it;
    }
  }
  std::vector<TableStats> stats;
  stats.reserve(query.relations().size());
  for (const RelationPtr& rel : query.relations()) {
    auto it = stats_cache_.find(rel.get());
    // Fresh iff the cached generation matches: Relation::generation() is
    // re-drawn from a never-reused process-wide counter on every mutation
    // (including in-place cell edits that keep num_rows constant) and at
    // construction, so a match alone proves the entry describes exactly
    // this live relation's current content — even an entry left behind by
    // a dead relation at a recycled address necessarily carries a
    // different generation. The weak_ptr exists for the sweep above, not
    // for this check.
    const bool fresh = it != stats_cache_.end() &&
                       it->second.generation == rel->generation();
    if (!fresh) {
      CachedStats entry;
      entry.alive = rel;
      entry.generation = rel->generation();
      entry.stats = planner_->CollectStatsForRelation(*rel);
      registry_.GetCounter("engine_stats_builds")->Increment();
      it = stats_cache_.insert_or_assign(rel.get(), std::move(entry)).first;
    } else {
      registry_.GetCounter("engine_stats_cache_hits")->Increment();
    }
    stats.push_back(it->second.stats);
  }
  return stats;
}

StatusOr<CalibrationReport> ThetaEngine::Calibration() {
  MutexLock lock(&mu_);
  MRTHETA_RETURN_IF_ERROR(EnsureReadyLocked());
  return *calibration_;
}

StatusOr<ThetaEngine::PlannedQuery> ThetaEngine::PlanForExecution(
    const Query& query) {
  MRTHETA_RETURN_IF_ERROR(query.Validate());
  MutexLock lock(&mu_);
  MRTHETA_RETURN_IF_ERROR(EnsureReadyLocked());
  PlannedQuery out;
  const bool cache_on = options_.plan_cache_capacity > 0;
  std::string key;
  if (cache_on) {
    key = PlanCacheKey(query);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second.lru_it);
      registry_.GetCounter("engine_plan_cache_hits")->Increment();
      out.plan = it->second.plan;
      out.stats = it->second.stats;
      out.cache_hit = true;
      return out;
    }
    registry_.GetCounter("engine_plan_cache_misses")->Increment();
  }
  out.stats = StatsForLocked(query);
  StatusOr<QueryPlan> plan = planner_->Plan(query, out.stats);
  if (!plan.ok()) return plan.status();
  registry_.GetCounter("engine_plans")->Increment();
  out.plan = std::make_shared<const QueryPlan>(*std::move(plan));
  // The whole miss path — lookup, stats, plan, insert — runs under one mu_
  // hold, so N concurrent submissions of one brand-new shape cost exactly
  // one planner run and N-1 hits; hit/miss counters stay deterministic
  // under any Submit interleaving.
  if (cache_on) InsertPlanLocked(key, out.plan, out.stats);
  return out;
}

StatusOr<ThetaEngine::PlannedQuery> ThetaEngine::PlanPinnedOrExecution(
    const Query& query, const std::shared_ptr<const QueryPlan>& pinned,
    const std::string& pinned_key) {
  // A fresh pin needs no lock: the key match proves the pinned plan was
  // chosen for exactly this content, and the pin keeps it alive
  // independently of LRU eviction. A mismatch (some input mutated since
  // Prepare) falls through to the shared cache path.
  if (pinned != nullptr && PlanCacheKey(query) == pinned_key) {
    registry_.GetCounter("engine_plan_cache_hits")->Increment();
    PlannedQuery out;
    out.plan = pinned;
    out.cache_hit = true;
    return out;
  }
  return PlanForExecution(query);
}

void ThetaEngine::InsertPlanLocked(const std::string& key,
                                   std::shared_ptr<const QueryPlan> plan,
                                   std::vector<TableStats> stats) {
  plan_lru_.push_front(key);
  plan_cache_.insert_or_assign(
      key, PlanCacheEntry{std::move(plan), std::move(stats),
                          plan_lru_.begin()});
  while (static_cast<int>(plan_cache_.size()) >
         options_.plan_cache_capacity) {
    plan_cache_.erase(plan_lru_.back());
    plan_lru_.pop_back();
    registry_.GetCounter("engine_plan_cache_evictions")->Increment();
  }
}

StatusOr<QueryResult> ThetaEngine::ExecuteResolved(
    const Query& query, const PlannedQuery& planned,
    const CancellationToken* token) {
  ExecutorOptions opts = options_.executor;
  opts.cancel_token = token;
  if (options_.per_query_threads > 0) {
    opts.num_threads = std::min(opts.num_threads, options_.per_query_threads);
  }
  StatusOr<QueryResult> result =
      ExecutePlan(query, *planned.plan, opts, options_.execution_seed);
  if (result.ok()) result->set_plan_cache_hit(planned.cache_hit);
  return result;
}

StatusOr<QueryPlan> ThetaEngine::PlanQuery(const Query& query) {
  StatusOr<PlannedQuery> planned = PlanForExecution(query);
  if (!planned.ok()) return planned.status();
  return *planned->plan;
}

StatusOr<PlanReport> ThetaEngine::Explain(const Query& query) {
  StatusOr<PlannedQuery> planned = PlanForExecution(query);
  if (!planned.ok()) return planned.status();
  PlanReport report;
  report.plan = *planned->plan;
  report.stats = planned->stats;
  return report;
}

StatusOr<QueryResult> ThetaEngine::Execute(const Query& query) {
  StatusOr<PlannedQuery> planned = PlanForExecution(query);
  if (!planned.ok()) return planned.status();
  return ExecuteResolved(query, *planned, nullptr);
}

StatusOr<QueryResult> ThetaEngine::Execute(const QueryBuilder& builder) {
  StatusOr<Query> query = builder.Build();
  if (!query.ok()) return query.status();
  return Execute(*query);
}

StatusOr<QueryProfile> ThetaEngine::ExplainAnalyze(const Query& query) {
  StatusOr<QueryResult> result = Execute(query);
  if (!result.ok()) return result.status();
  return result->profile();
}

StatusOr<QueryProfile> ThetaEngine::ExplainAnalyze(
    const QueryBuilder& builder) {
  StatusOr<Query> query = builder.Build();
  if (!query.ok()) return query.status();
  return ExplainAnalyze(*query);
}

std::future<StatusOr<QueryResult>> ThetaEngine::Submit(Query query) {
  return SubmitInternal(std::move(query), nullptr, std::string());
}

std::future<StatusOr<QueryResult>> ThetaEngine::SubmitInternal(
    Query query, std::shared_ptr<const QueryPlan> pinned,
    std::string pinned_key) {
  auto promise = std::make_shared<std::promise<StatusOr<QueryResult>>>();
  std::future<StatusOr<QueryResult>> future = promise->get_future();
  // Each submission carries its own cancellation token, registered so
  // CancelInflight can stop it; the execution honors the token at job and
  // task boundaries (and in the admission wait). The thread owns a
  // shared_ptr, so the registry's entries are alive by construction.
  auto token = std::make_shared<CancellationToken>();
  // Admission decision, synchronously in the caller's thread: admit when a
  // slot is free and nobody is queued ahead (FIFO), queue up to
  // max_queue_depth, reject beyond that — a rejected future is already
  // resolved when Submit returns, so rejection behaviour is deterministic
  // regardless of coordination-thread scheduling.
  bool admitted = false;
  bool queued = false;
  uint64_t ticket = 0;
  {
    MutexLock lock(&mu_);
    if (options_.max_inflight_queries > 0) {
      if (admitted_queries_ < options_.max_inflight_queries &&
          admission_queue_.empty()) {
        ++admitted_queries_;
        admitted = true;
      } else if (static_cast<int>(admission_queue_.size()) <
                 options_.max_queue_depth) {
        ticket = next_ticket_++;
        admission_queue_.push_back(ticket);
        queued = true;
      } else {
        registry_.GetCounter("engine_admission_rejections")->Increment();
        promise->set_value(Status::ResourceExhausted(
            "Submit rejected: max_inflight_queries=" +
            std::to_string(options_.max_inflight_queries) +
            " queries in flight and the admission queue is full "
            "(max_queue_depth=" + std::to_string(options_.max_queue_depth) +
            ")"));
        return future;
      }
    }
    ++inflight_submissions_;
    inflight_tokens_.push_back(token);
  }
  auto deregister = [this, raw = token.get()] {
    MutexLock lock(&mu_);
    --inflight_submissions_;
    for (auto it = inflight_tokens_.begin(); it != inflight_tokens_.end();
         ++it) {
      if (it->get() == raw) {
        inflight_tokens_.erase(it);
        break;
      }
    }
    idle_cv_.NotifyAll();
  };
  // A detached coordination thread, not std::async: the returned future
  // must not block on destruction. The destructor's drain keeps `this`
  // alive for the thread's whole Execute; after the notify the thread
  // touches only its own locals (notifying under the lock so the
  // destructor cannot win the race and free the condition variable
  // mid-notify).
  try {
    std::thread([this, promise, token, deregister, admitted, queued, ticket,
                 q = std::move(query), pinned = std::move(pinned),
                 key = std::move(pinned_key)]() mutable {
      bool holds_slot = admitted;
      StatusOr<QueryResult> result = [&]() -> StatusOr<QueryResult> {
        TraceSpan span("submit", "engine");
        if (queued) {
          Status admit = WaitForAdmission(ticket, token.get());
          if (!admit.ok()) return admit;
          holds_slot = true;
        }
        return ExecuteCancellable(q, pinned, key, token.get());
      }();
      if (holds_slot) ReleaseAdmission();
      deregister();
      promise->set_value(std::move(result));
    }).detach();
  } catch (const std::system_error& e) {
    // Thread exhaustion: undo the admission and in-flight bookkeeping (or
    // the destructor's drain would wait forever) and fail the submission.
    if (admitted) ReleaseAdmission();
    if (queued) {
      MutexLock lock(&mu_);
      for (auto it = admission_queue_.begin(); it != admission_queue_.end();
           ++it) {
        if (*it == ticket) {
          admission_queue_.erase(it);
          break;
        }
      }
      admission_cv_.NotifyAll();
    }
    deregister();
    promise->set_value(
        Status::ResourceExhausted(std::string("Submit could not start a "
                                              "coordination thread: ") +
                                  e.what()));
  }
  return future;
}

Status ThetaEngine::WaitForAdmission(uint64_t ticket,
                                     const CancellationToken* token) {
  TraceSpan span("admission-wait", "engine");
  const auto start = std::chrono::steady_clock::now();
  mu_.Lock();
  while (!((token != nullptr && token->cancelled()) ||
           (admitted_queries_ < options_.max_inflight_queries &&
            !admission_queue_.empty() &&
            admission_queue_.front() == ticket))) {
    admission_cv_.Wait(&mu_);
  }
  if (token != nullptr && token->cancelled()) {
    for (auto it = admission_queue_.begin(); it != admission_queue_.end();
         ++it) {
      if (*it == ticket) {
        admission_queue_.erase(it);
        break;
      }
    }
    // The queue front may have changed; wake the remaining waiters.
    admission_cv_.NotifyAll();
    mu_.Unlock();
    return Status::Cancelled(
        "submission cancelled while queued for admission");
  }
  admission_queue_.pop_front();
  ++admitted_queries_;
  // With max_inflight_queries > 1, further slots may be free for the new
  // queue front.
  admission_cv_.NotifyAll();
  mu_.Unlock();
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  span.Arg("waited_seconds", waited);
  registry_.GetHistogram("engine_queue_wait_seconds", {}, 1e-6)
      ->Record(waited);
  return Status::OK();
}

void ThetaEngine::ReleaseAdmission() {
  MutexLock lock(&mu_);
  --admitted_queries_;
  admission_cv_.NotifyAll();
}

void ThetaEngine::CancelInflight() {
  MutexLock lock(&mu_);
  for (const std::shared_ptr<CancellationToken>& token : inflight_tokens_) {
    token->Cancel();
  }
  // Queued submissions wait on admission_cv_ with a cancellation check in
  // the predicate; wake them so they resolve promptly with kCancelled.
  admission_cv_.NotifyAll();
}

StatusOr<QueryResult> ThetaEngine::ExecuteCancellable(
    const Query& query, const std::shared_ptr<const QueryPlan>& pinned,
    const std::string& pinned_key, const CancellationToken* token) {
  StatusOr<PlannedQuery> planned =
      PlanPinnedOrExecution(query, pinned, pinned_key);
  if (!planned.ok()) return planned.status();
  return ExecuteResolved(query, *planned, token);
}

std::future<StatusOr<QueryResult>> ThetaEngine::Submit(
    const QueryBuilder& builder) {
  StatusOr<Query> query = builder.Build();
  if (!query.ok()) {
    std::promise<StatusOr<QueryResult>> failed;
    failed.set_value(query.status());
    return failed.get_future();
  }
  return Submit(*std::move(query));
}

StatusOr<PreparedQuery> ThetaEngine::Prepare(const Query& query) {
  StatusOr<PlannedQuery> planned = PlanForExecution(query);
  if (!planned.ok()) return planned.status();
  PreparedQuery prepared;
  prepared.engine_ = this;
  prepared.query_ = query;
  prepared.plan_ = planned->plan;
  prepared.cache_key_ = PlanCacheKey(query);
  return prepared;
}

StatusOr<PreparedQuery> ThetaEngine::Prepare(const QueryBuilder& builder) {
  StatusOr<Query> query = builder.Build();
  if (!query.ok()) return query.status();
  return Prepare(*query);
}

StatusOr<QueryResult> PreparedQuery::Execute() const {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition(
        "PreparedQuery is empty (default-constructed); obtain one from "
        "ThetaEngine::Prepare");
  }
  StatusOr<ThetaEngine::PlannedQuery> planned =
      engine_->PlanPinnedOrExecution(query_, plan_, cache_key_);
  if (!planned.ok()) return planned.status();
  return engine_->ExecuteResolved(query_, *planned, nullptr);
}

std::future<StatusOr<QueryResult>> PreparedQuery::Submit() const {
  if (engine_ == nullptr) {
    std::promise<StatusOr<QueryResult>> failed;
    failed.set_value(Status::FailedPrecondition(
        "PreparedQuery is empty (default-constructed); obtain one from "
        "ThetaEngine::Prepare"));
    return failed.get_future();
  }
  return engine_->SubmitInternal(query_, plan_, cache_key_);
}

StatusOr<QueryProfile> PreparedQuery::ExplainAnalyze() const {
  StatusOr<QueryResult> result = Execute();
  if (!result.ok()) return result.status();
  return result->profile();
}

StatusOr<QueryResult> ThetaEngine::ExecutePlan(const Query& query,
                                               const QueryPlan& plan) {
  return ExecutePlan(query, plan, options_.executor,
                     options_.execution_seed);
}

StatusOr<QueryResult> ThetaEngine::ExecutePlan(
    const Query& query, const QueryPlan& plan,
    const ExecutorOptions& executor_options, uint64_t seed) {
  // Executing a caller-provided plan needs no calibration — only valid
  // options. This keeps baseline-plan execution possible on a cold engine.
  MRTHETA_RETURN_IF_ERROR(options_.Validate());
  TraceSpan span("execute", "engine");
  // Collect the fault accounting through the executor's out-param rather
  // than from ExecutionResult::fault_report: the out-param is published on
  // *every* exit path, so failed and cancelled executions (which return no
  // result at all) still report the faults they absorbed — previously
  // those were silently dropped and the session counters under-reported.
  FaultReport fault_report;
  ExecutorOptions opts = executor_options;
  opts.fault_report = &fault_report;
  // Session memory budget (docs/MEMORY.md): an explicit per-call value
  // wins; otherwise the engine option applies (and 0 falls through to the
  // $MRTHETA_MEM_BUDGET process default inside the executor).
  if (opts.mem_budget_bytes == 0) {
    opts.mem_budget_bytes = options_.mem_budget_bytes;
  }
  const Executor executor(&cluster_, opts);
  StatusOr<ExecutionResult> result =
      executor.ExecuteOn(pool_, query, plan, seed);
  AddFaultReportToRegistry(fault_report);
  if (executor_options.fault_report != nullptr) {
    executor_options.fault_report->Merge(fault_report);
  }
  if (!result.ok()) {
    registry_.GetCounter("engine_failed_executions")->Increment();
    return result.status();
  }
  registry_.GetCounter("engine_executions")->Increment();
  registry_.GetHistogram("engine_execution_seconds", {}, 1e-6)
      ->Record(result->measured_seconds);
  registry_.GetCounter("engine_spill_bytes")->Add(result->spill_bytes);
  registry_.GetCounter("engine_spill_files")->Add(result->spill_files);
  registry_.GetGauge("engine_peak_mem_bytes")->Set(result->peak_mem_bytes);
  return QueryResult(*std::move(result));
}

void ThetaEngine::AddFaultReportToRegistry(const FaultReport& report) const {
  registry_.GetCounter("engine_injected_faults")->Add(report.injected_faults);
  registry_.GetCounter("engine_task_retries")->Add(report.task_retries);
  registry_.GetCounter("engine_task_retries", {{"phase", "map"}})
      ->Add(report.map_task_retries);
  registry_.GetCounter("engine_task_retries", {{"phase", "reduce"}})
      ->Add(report.reduce_task_retries);
  registry_.GetCounter("engine_speculative_launches")
      ->Add(report.speculative_launches);
  registry_.GetGauge("engine_wasted_task_seconds")
      ->Add(report.wasted_task_seconds);
}

EngineMetrics ThetaEngine::metrics() const {
  EngineMetrics m;
  m.calibrations = registry_.GetCounter("engine_calibrations")->value();
  m.stats_builds = registry_.GetCounter("engine_stats_builds")->value();
  m.stats_cache_hits =
      registry_.GetCounter("engine_stats_cache_hits")->value();
  m.stats_evictions = registry_.GetCounter("engine_stats_evictions")->value();
  m.plans = registry_.GetCounter("engine_plans")->value();
  m.plan_cache_hits =
      registry_.GetCounter("engine_plan_cache_hits")->value();
  m.plan_cache_misses =
      registry_.GetCounter("engine_plan_cache_misses")->value();
  m.plan_cache_evictions =
      registry_.GetCounter("engine_plan_cache_evictions")->value();
  m.admission_rejections =
      registry_.GetCounter("engine_admission_rejections")->value();
  m.executions = registry_.GetCounter("engine_executions")->value();
  m.failed_executions =
      registry_.GetCounter("engine_failed_executions")->value();
  m.injected_faults = registry_.GetCounter("engine_injected_faults")->value();
  m.task_retries = registry_.GetCounter("engine_task_retries")->value();
  m.speculative_launches =
      registry_.GetCounter("engine_speculative_launches")->value();
  m.wasted_task_seconds =
      registry_.GetGauge("engine_wasted_task_seconds")->value();
  m.spill_bytes = registry_.GetCounter("engine_spill_bytes")->value();
  m.spill_files = registry_.GetCounter("engine_spill_files")->value();
  m.peak_mem_bytes = static_cast<int64_t>(
      registry_.GetGauge("engine_peak_mem_bytes")->value());
  return m;
}

}  // namespace mrtheta
