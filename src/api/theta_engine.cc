#include "src/api/theta_engine.h"

#include <algorithm>
#include <system_error>
#include <thread>

#include "src/common/units.h"

namespace mrtheta {

std::string PlanReport::ToString() const {
  std::string out = plan.ToString();
  out += "planned with statistics:\n";
  for (size_t i = 0; i < stats.size(); ++i) {
    out += "  R" + std::to_string(i) + ": logical " +
           FormatBytes(stats[i].logical_bytes) + " (" +
           std::to_string(stats[i].logical_rows) + " rows, " +
           std::to_string(stats[i].columns.size()) + " columns)\n";
  }
  return out;
}

ThetaEngine::ThetaEngine(EngineOptions options)
    : options_(std::move(options)),
      cluster_(options_.cluster),
      pool_(std::max(1, options_.executor.num_threads)) {}

ThetaEngine::~ThetaEngine() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return inflight_submissions_ == 0; });
}

Status ThetaEngine::EnsureReadyLocked() {
  if (initialized_) return init_status_;
  initialized_ = true;
  init_status_ = options_.Validate();
  if (!init_status_.ok()) return init_status_;
  // Calibration probes need one free map wave, so the campaign runs on a
  // throwaway cluster at calibration_workers width; the fitted parameters
  // are kP-independent (see bench/bench_util.cc's original Harness).
  ClusterConfig calibration_config = options_.cluster;
  if (options_.calibration_workers > 0) {
    calibration_config.num_workers = options_.calibration_workers;
  }
  const SimCluster calibration_cluster(calibration_config);
  StatusOr<CalibrationReport> report =
      CalibrateCostModel(calibration_cluster, options_.calibration);
  if (!report.ok()) {
    init_status_ = report.status();
    return init_status_;
  }
  ++metrics_.calibrations;
  calibration_ = std::make_unique<CalibrationReport>(*std::move(report));
  planner_ = std::make_unique<Planner>(&cluster_, calibration_->params,
                                       options_.planner);
  return Status::OK();
}

std::vector<TableStats> ThetaEngine::StatsForLocked(const Query& query) {
  // Sweep entries whose relation died since the last pass: without the old
  // pinning, a dead entry's address could be handed to a future Relation,
  // and the cache must never answer for a corpse.
  for (auto it = stats_cache_.begin(); it != stats_cache_.end();) {
    if (it->second.alive.expired()) {
      it = stats_cache_.erase(it);
      ++metrics_.stats_evictions;
    } else {
      ++it;
    }
  }
  std::vector<TableStats> stats;
  stats.reserve(query.relations().size());
  for (const RelationPtr& rel : query.relations()) {
    auto it = stats_cache_.find(rel.get());
    // Fresh iff the cached generation matches: Relation::generation() is
    // re-drawn from a never-reused process-wide counter on every mutation
    // (including in-place cell edits that keep num_rows constant) and at
    // construction, so a match alone proves the entry describes exactly
    // this live relation's current content — even an entry left behind by
    // a dead relation at a recycled address necessarily carries a
    // different generation. The weak_ptr exists for the sweep above, not
    // for this check.
    const bool fresh = it != stats_cache_.end() &&
                       it->second.generation == rel->generation();
    if (!fresh) {
      CachedStats entry;
      entry.alive = rel;
      entry.generation = rel->generation();
      entry.stats = planner_->CollectStatsForRelation(*rel);
      ++metrics_.stats_builds;
      it = stats_cache_.insert_or_assign(rel.get(), std::move(entry)).first;
    } else {
      ++metrics_.stats_cache_hits;
    }
    stats.push_back(it->second.stats);
  }
  return stats;
}

StatusOr<CalibrationReport> ThetaEngine::Calibration() {
  std::lock_guard<std::mutex> lock(mu_);
  MRTHETA_RETURN_IF_ERROR(EnsureReadyLocked());
  return *calibration_;
}

StatusOr<QueryPlan> ThetaEngine::PlanQuery(const Query& query) {
  MRTHETA_RETURN_IF_ERROR(query.Validate());
  std::lock_guard<std::mutex> lock(mu_);
  MRTHETA_RETURN_IF_ERROR(EnsureReadyLocked());
  const std::vector<TableStats> stats = StatsForLocked(query);
  StatusOr<QueryPlan> plan = planner_->Plan(query, stats);
  if (plan.ok()) ++metrics_.plans;
  return plan;
}

StatusOr<PlanReport> ThetaEngine::Explain(const Query& query) {
  MRTHETA_RETURN_IF_ERROR(query.Validate());
  std::lock_guard<std::mutex> lock(mu_);
  MRTHETA_RETURN_IF_ERROR(EnsureReadyLocked());
  PlanReport report;
  report.stats = StatsForLocked(query);
  StatusOr<QueryPlan> plan = planner_->Plan(query, report.stats);
  if (!plan.ok()) return plan.status();
  ++metrics_.plans;
  report.plan = *std::move(plan);
  return report;
}

StatusOr<QueryResult> ThetaEngine::Execute(const Query& query) {
  StatusOr<QueryPlan> plan = PlanQuery(query);
  if (!plan.ok()) return plan.status();
  return ExecutePlan(query, *plan);
}

StatusOr<QueryResult> ThetaEngine::Execute(const QueryBuilder& builder) {
  StatusOr<Query> query = builder.Build();
  if (!query.ok()) return query.status();
  return Execute(*query);
}

std::future<StatusOr<QueryResult>> ThetaEngine::Submit(Query query) {
  auto promise = std::make_shared<std::promise<StatusOr<QueryResult>>>();
  std::future<StatusOr<QueryResult>> future = promise->get_future();
  // Each submission carries its own cancellation token, registered so
  // CancelInflight can stop it; the execution honors the token at job and
  // task boundaries. The thread owns a shared_ptr, so the registry's
  // entries are alive by construction.
  auto token = std::make_shared<CancellationToken>();
  auto deregister = [this, raw = token.get()] {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_submissions_;
    for (auto it = inflight_tokens_.begin(); it != inflight_tokens_.end();
         ++it) {
      if (it->get() == raw) {
        inflight_tokens_.erase(it);
        break;
      }
    }
    idle_cv_.notify_all();
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++inflight_submissions_;
    inflight_tokens_.push_back(token);
  }
  // A detached coordination thread, not std::async: the returned future
  // must not block on destruction. The destructor's drain keeps `this`
  // alive for the thread's whole Execute; after the notify the thread
  // touches only its own locals (notifying under the lock so the
  // destructor cannot win the race and free the condition variable
  // mid-notify).
  try {
    std::thread([this, promise, token, deregister,
                 q = std::move(query)]() mutable {
      StatusOr<QueryResult> result = ExecuteCancellable(q, token.get());
      deregister();
      promise->set_value(std::move(result));
    }).detach();
  } catch (const std::system_error& e) {
    // Thread exhaustion: undo the in-flight bookkeeping (or the
    // destructor's drain would wait forever) and fail the submission.
    deregister();
    promise->set_value(
        Status::ResourceExhausted(std::string("Submit could not start a "
                                              "coordination thread: ") +
                                  e.what()));
  }
  return future;
}

void ThetaEngine::CancelInflight() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::shared_ptr<CancellationToken>& token : inflight_tokens_) {
    token->Cancel();
  }
}

StatusOr<QueryResult> ThetaEngine::ExecuteCancellable(
    const Query& query, const CancellationToken* token) {
  StatusOr<QueryPlan> plan = PlanQuery(query);
  if (!plan.ok()) return plan.status();
  ExecutorOptions opts = options_.executor;
  opts.cancel_token = token;
  return ExecutePlan(query, *plan, opts, options_.execution_seed);
}

std::future<StatusOr<QueryResult>> ThetaEngine::Submit(
    const QueryBuilder& builder) {
  StatusOr<Query> query = builder.Build();
  if (!query.ok()) {
    std::promise<StatusOr<QueryResult>> failed;
    failed.set_value(query.status());
    return failed.get_future();
  }
  return Submit(*std::move(query));
}

StatusOr<QueryResult> ThetaEngine::ExecutePlan(const Query& query,
                                               const QueryPlan& plan) {
  return ExecutePlan(query, plan, options_.executor,
                     options_.execution_seed);
}

StatusOr<QueryResult> ThetaEngine::ExecutePlan(
    const Query& query, const QueryPlan& plan,
    const ExecutorOptions& executor_options, uint64_t seed) {
  // Executing a caller-provided plan needs no calibration — only valid
  // options. This keeps baseline-plan execution possible on a cold engine.
  MRTHETA_RETURN_IF_ERROR(options_.Validate());
  const Executor executor(&cluster_, executor_options);
  StatusOr<ExecutionResult> result =
      executor.ExecuteOn(pool_, query, plan, seed);
  if (!result.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++metrics_.failed_executions;
    return result.status();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++metrics_.executions;
    metrics_.injected_faults += result->fault_report.injected_faults;
    metrics_.task_retries += result->fault_report.task_retries;
    metrics_.speculative_launches += result->fault_report.speculative_launches;
    metrics_.wasted_task_seconds += result->fault_report.wasted_task_seconds;
  }
  return QueryResult(*std::move(result));
}

EngineMetrics ThetaEngine::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

}  // namespace mrtheta
