#include "src/api/theta_engine.h"

#include <algorithm>
#include <system_error>
#include <thread>

#include "src/common/units.h"
#include "src/obs/trace.h"

namespace mrtheta {

std::string PlanReport::ToString() const {
  std::string out = plan.ToString();
  out += "planned with statistics:\n";
  for (size_t i = 0; i < stats.size(); ++i) {
    out += "  R" + std::to_string(i) + ": logical " +
           FormatBytes(stats[i].logical_bytes) + " (" +
           std::to_string(stats[i].logical_rows) + " rows, " +
           std::to_string(stats[i].columns.size()) + " columns)\n";
  }
  return out;
}

ThetaEngine::ThetaEngine(EngineOptions options)
    : options_(std::move(options)),
      cluster_(options_.cluster),
      pool_(std::max(1, options_.executor.num_threads)) {}

ThetaEngine::~ThetaEngine() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return inflight_submissions_ == 0; });
}

Status ThetaEngine::EnsureReadyLocked() {
  if (initialized_) return init_status_;
  initialized_ = true;
  init_status_ = options_.Validate();
  if (!init_status_.ok()) return init_status_;
  // Calibration probes need one free map wave, so the campaign runs on a
  // throwaway cluster at calibration_workers width; the fitted parameters
  // are kP-independent (see bench/bench_util.cc's original Harness).
  ClusterConfig calibration_config = options_.cluster;
  if (options_.calibration_workers > 0) {
    calibration_config.num_workers = options_.calibration_workers;
  }
  const SimCluster calibration_cluster(calibration_config);
  StatusOr<CalibrationReport> report =
      CalibrateCostModel(calibration_cluster, options_.calibration);
  if (!report.ok()) {
    init_status_ = report.status();
    return init_status_;
  }
  registry_.GetCounter("engine_calibrations")->Increment();
  calibration_ = std::make_unique<CalibrationReport>(*std::move(report));
  planner_ = std::make_unique<Planner>(&cluster_, calibration_->params,
                                       options_.planner);
  return Status::OK();
}

std::vector<TableStats> ThetaEngine::StatsForLocked(const Query& query) {
  // Sweep entries whose relation died since the last pass: without the old
  // pinning, a dead entry's address could be handed to a future Relation,
  // and the cache must never answer for a corpse.
  for (auto it = stats_cache_.begin(); it != stats_cache_.end();) {
    if (it->second.alive.expired()) {
      it = stats_cache_.erase(it);
      registry_.GetCounter("engine_stats_evictions")->Increment();
    } else {
      ++it;
    }
  }
  std::vector<TableStats> stats;
  stats.reserve(query.relations().size());
  for (const RelationPtr& rel : query.relations()) {
    auto it = stats_cache_.find(rel.get());
    // Fresh iff the cached generation matches: Relation::generation() is
    // re-drawn from a never-reused process-wide counter on every mutation
    // (including in-place cell edits that keep num_rows constant) and at
    // construction, so a match alone proves the entry describes exactly
    // this live relation's current content — even an entry left behind by
    // a dead relation at a recycled address necessarily carries a
    // different generation. The weak_ptr exists for the sweep above, not
    // for this check.
    const bool fresh = it != stats_cache_.end() &&
                       it->second.generation == rel->generation();
    if (!fresh) {
      CachedStats entry;
      entry.alive = rel;
      entry.generation = rel->generation();
      entry.stats = planner_->CollectStatsForRelation(*rel);
      registry_.GetCounter("engine_stats_builds")->Increment();
      it = stats_cache_.insert_or_assign(rel.get(), std::move(entry)).first;
    } else {
      registry_.GetCounter("engine_stats_cache_hits")->Increment();
    }
    stats.push_back(it->second.stats);
  }
  return stats;
}

StatusOr<CalibrationReport> ThetaEngine::Calibration() {
  std::lock_guard<std::mutex> lock(mu_);
  MRTHETA_RETURN_IF_ERROR(EnsureReadyLocked());
  return *calibration_;
}

StatusOr<QueryPlan> ThetaEngine::PlanQuery(const Query& query) {
  MRTHETA_RETURN_IF_ERROR(query.Validate());
  std::lock_guard<std::mutex> lock(mu_);
  MRTHETA_RETURN_IF_ERROR(EnsureReadyLocked());
  const std::vector<TableStats> stats = StatsForLocked(query);
  StatusOr<QueryPlan> plan = planner_->Plan(query, stats);
  if (plan.ok()) registry_.GetCounter("engine_plans")->Increment();
  return plan;
}

StatusOr<PlanReport> ThetaEngine::Explain(const Query& query) {
  MRTHETA_RETURN_IF_ERROR(query.Validate());
  std::lock_guard<std::mutex> lock(mu_);
  MRTHETA_RETURN_IF_ERROR(EnsureReadyLocked());
  PlanReport report;
  report.stats = StatsForLocked(query);
  StatusOr<QueryPlan> plan = planner_->Plan(query, report.stats);
  if (!plan.ok()) return plan.status();
  registry_.GetCounter("engine_plans")->Increment();
  report.plan = *std::move(plan);
  return report;
}

StatusOr<QueryResult> ThetaEngine::Execute(const Query& query) {
  StatusOr<QueryPlan> plan = PlanQuery(query);
  if (!plan.ok()) return plan.status();
  return ExecutePlan(query, *plan);
}

StatusOr<QueryResult> ThetaEngine::Execute(const QueryBuilder& builder) {
  StatusOr<Query> query = builder.Build();
  if (!query.ok()) return query.status();
  return Execute(*query);
}

StatusOr<QueryProfile> ThetaEngine::ExplainAnalyze(const Query& query) {
  StatusOr<QueryResult> result = Execute(query);
  if (!result.ok()) return result.status();
  return result->profile();
}

StatusOr<QueryProfile> ThetaEngine::ExplainAnalyze(
    const QueryBuilder& builder) {
  StatusOr<Query> query = builder.Build();
  if (!query.ok()) return query.status();
  return ExplainAnalyze(*query);
}

std::future<StatusOr<QueryResult>> ThetaEngine::Submit(Query query) {
  auto promise = std::make_shared<std::promise<StatusOr<QueryResult>>>();
  std::future<StatusOr<QueryResult>> future = promise->get_future();
  // Each submission carries its own cancellation token, registered so
  // CancelInflight can stop it; the execution honors the token at job and
  // task boundaries. The thread owns a shared_ptr, so the registry's
  // entries are alive by construction.
  auto token = std::make_shared<CancellationToken>();
  auto deregister = [this, raw = token.get()] {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_submissions_;
    for (auto it = inflight_tokens_.begin(); it != inflight_tokens_.end();
         ++it) {
      if (it->get() == raw) {
        inflight_tokens_.erase(it);
        break;
      }
    }
    idle_cv_.notify_all();
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++inflight_submissions_;
    inflight_tokens_.push_back(token);
  }
  // A detached coordination thread, not std::async: the returned future
  // must not block on destruction. The destructor's drain keeps `this`
  // alive for the thread's whole Execute; after the notify the thread
  // touches only its own locals (notifying under the lock so the
  // destructor cannot win the race and free the condition variable
  // mid-notify).
  try {
    std::thread([this, promise, token, deregister,
                 q = std::move(query)]() mutable {
      StatusOr<QueryResult> result = [&]() -> StatusOr<QueryResult> {
        TraceSpan span("submit", "engine");
        return ExecuteCancellable(q, token.get());
      }();
      deregister();
      promise->set_value(std::move(result));
    }).detach();
  } catch (const std::system_error& e) {
    // Thread exhaustion: undo the in-flight bookkeeping (or the
    // destructor's drain would wait forever) and fail the submission.
    deregister();
    promise->set_value(
        Status::ResourceExhausted(std::string("Submit could not start a "
                                              "coordination thread: ") +
                                  e.what()));
  }
  return future;
}

void ThetaEngine::CancelInflight() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::shared_ptr<CancellationToken>& token : inflight_tokens_) {
    token->Cancel();
  }
}

StatusOr<QueryResult> ThetaEngine::ExecuteCancellable(
    const Query& query, const CancellationToken* token) {
  StatusOr<QueryPlan> plan = PlanQuery(query);
  if (!plan.ok()) return plan.status();
  ExecutorOptions opts = options_.executor;
  opts.cancel_token = token;
  return ExecutePlan(query, *plan, opts, options_.execution_seed);
}

std::future<StatusOr<QueryResult>> ThetaEngine::Submit(
    const QueryBuilder& builder) {
  StatusOr<Query> query = builder.Build();
  if (!query.ok()) {
    std::promise<StatusOr<QueryResult>> failed;
    failed.set_value(query.status());
    return failed.get_future();
  }
  return Submit(*std::move(query));
}

StatusOr<QueryResult> ThetaEngine::ExecutePlan(const Query& query,
                                               const QueryPlan& plan) {
  return ExecutePlan(query, plan, options_.executor,
                     options_.execution_seed);
}

StatusOr<QueryResult> ThetaEngine::ExecutePlan(
    const Query& query, const QueryPlan& plan,
    const ExecutorOptions& executor_options, uint64_t seed) {
  // Executing a caller-provided plan needs no calibration — only valid
  // options. This keeps baseline-plan execution possible on a cold engine.
  MRTHETA_RETURN_IF_ERROR(options_.Validate());
  TraceSpan span("execute", "engine");
  // Collect the fault accounting through the executor's out-param rather
  // than from ExecutionResult::fault_report: the out-param is published on
  // *every* exit path, so failed and cancelled executions (which return no
  // result at all) still report the faults they absorbed — previously
  // those were silently dropped and the session counters under-reported.
  FaultReport fault_report;
  ExecutorOptions opts = executor_options;
  opts.fault_report = &fault_report;
  const Executor executor(&cluster_, opts);
  StatusOr<ExecutionResult> result =
      executor.ExecuteOn(pool_, query, plan, seed);
  AddFaultReportToRegistry(fault_report);
  if (executor_options.fault_report != nullptr) {
    executor_options.fault_report->Merge(fault_report);
  }
  if (!result.ok()) {
    registry_.GetCounter("engine_failed_executions")->Increment();
    return result.status();
  }
  registry_.GetCounter("engine_executions")->Increment();
  registry_.GetHistogram("engine_execution_seconds", {}, 1e-6)
      ->Record(result->measured_seconds);
  return QueryResult(*std::move(result));
}

void ThetaEngine::AddFaultReportToRegistry(const FaultReport& report) const {
  registry_.GetCounter("engine_injected_faults")->Add(report.injected_faults);
  registry_.GetCounter("engine_task_retries")->Add(report.task_retries);
  registry_.GetCounter("engine_task_retries", {{"phase", "map"}})
      ->Add(report.map_task_retries);
  registry_.GetCounter("engine_task_retries", {{"phase", "reduce"}})
      ->Add(report.reduce_task_retries);
  registry_.GetCounter("engine_speculative_launches")
      ->Add(report.speculative_launches);
  registry_.GetGauge("engine_wasted_task_seconds")
      ->Add(report.wasted_task_seconds);
}

EngineMetrics ThetaEngine::metrics() const {
  EngineMetrics m;
  m.calibrations = registry_.GetCounter("engine_calibrations")->value();
  m.stats_builds = registry_.GetCounter("engine_stats_builds")->value();
  m.stats_cache_hits =
      registry_.GetCounter("engine_stats_cache_hits")->value();
  m.stats_evictions = registry_.GetCounter("engine_stats_evictions")->value();
  m.plans = registry_.GetCounter("engine_plans")->value();
  m.executions = registry_.GetCounter("engine_executions")->value();
  m.failed_executions =
      registry_.GetCounter("engine_failed_executions")->value();
  m.injected_faults = registry_.GetCounter("engine_injected_faults")->value();
  m.task_retries = registry_.GetCounter("engine_task_retries")->value();
  m.speculative_launches =
      registry_.GetCounter("engine_speculative_launches")->value();
  m.wasted_task_seconds =
      registry_.GetGauge("engine_wasted_task_seconds")->value();
  return m;
}

}  // namespace mrtheta
