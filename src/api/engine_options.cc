#include "src/api/engine_options.h"

namespace mrtheta {

Status EngineOptions::Validate() const {
  if (cluster.num_workers < 1) {
    return Status::InvalidArgument("cluster.num_workers must be >= 1");
  }
  if (cluster.block_size < 1) {
    return Status::InvalidArgument("cluster.block_size must be >= 1");
  }
  if (calibration_workers < 0) {
    return Status::InvalidArgument("calibration_workers must be >= 0");
  }
  if (executor.num_threads < 1) {
    return Status::InvalidArgument("executor.num_threads must be >= 1");
  }
  if (executor.sort_kernel_min_pairs < 0) {
    return Status::InvalidArgument(
        "executor.sort_kernel_min_pairs must be >= 0");
  }
  if (planner.lambda < 0.0 || planner.lambda > 1.0) {
    return Status::InvalidArgument("planner.lambda must be in [0, 1]");
  }
  if (planner.max_reduce_tasks < 0) {
    return Status::InvalidArgument("planner.max_reduce_tasks must be >= 0");
  }
  if (planner.stats.sample_size < 1) {
    return Status::InvalidArgument("planner.stats.sample_size must be >= 1");
  }
  if (planner.stats.histogram_bins < 1) {
    return Status::InvalidArgument(
        "planner.stats.histogram_bins must be >= 1");
  }
  if (calibration.probe_input_bytes < 1) {
    return Status::InvalidArgument(
        "calibration.probe_input_bytes must be >= 1");
  }
  MRTHETA_RETURN_IF_ERROR(executor.fault_plan.Validate());
  MRTHETA_RETURN_IF_ERROR(executor.retry.Validate());
  MRTHETA_RETURN_IF_ERROR(executor.speculation.Validate());
  return Status::OK();
}

std::string EngineOptions::ToString() const {
  std::string out = "EngineOptions{" + cluster.ToString();
  out += ", threads=" + std::to_string(executor.num_threads);
  out += ", seed=" + std::to_string(execution_seed);
  out += ", calibration_workers=" + std::to_string(calibration_workers);
  if (executor.fault_plan.enabled()) {
    out += ", " + executor.fault_plan.ToString();
  }
  out += "}";
  return out;
}

}  // namespace mrtheta
