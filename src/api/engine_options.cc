#include "src/api/engine_options.h"

namespace mrtheta {

Status EngineOptions::Validate() const {
  if (cluster.num_workers < 1) {
    return Status::InvalidArgument("cluster.num_workers must be >= 1");
  }
  if (cluster.block_size < 1) {
    return Status::InvalidArgument("cluster.block_size must be >= 1");
  }
  if (calibration_workers < 0) {
    return Status::InvalidArgument("calibration_workers must be >= 0");
  }
  if (executor.num_threads < 1) {
    return Status::InvalidArgument("executor.num_threads must be >= 1");
  }
  if (executor.sort_kernel_min_pairs < 0) {
    return Status::InvalidArgument(
        "executor.sort_kernel_min_pairs must be >= 0");
  }
  if (planner.lambda < 0.0 || planner.lambda > 1.0) {
    return Status::InvalidArgument("planner.lambda must be in [0, 1]");
  }
  if (planner.max_reduce_tasks < 0) {
    return Status::InvalidArgument("planner.max_reduce_tasks must be >= 0");
  }
  if (planner.stats.sample_size < 1) {
    return Status::InvalidArgument("planner.stats.sample_size must be >= 1");
  }
  if (planner.stats.histogram_bins < 1) {
    return Status::InvalidArgument(
        "planner.stats.histogram_bins must be >= 1");
  }
  if (calibration.probe_input_bytes < 1) {
    return Status::InvalidArgument(
        "calibration.probe_input_bytes must be >= 1");
  }
  if (plan_cache_capacity < 0) {
    return Status::InvalidArgument("plan_cache_capacity must be >= 0");
  }
  if (max_inflight_queries < 0) {
    return Status::InvalidArgument("max_inflight_queries must be >= 0");
  }
  if (max_queue_depth < 0) {
    return Status::InvalidArgument("max_queue_depth must be >= 0");
  }
  if (per_query_threads < 0) {
    return Status::InvalidArgument("per_query_threads must be >= 0");
  }
  if (mem_budget_bytes < 0) {
    return Status::InvalidArgument("mem_budget_bytes must be >= 0");
  }
  if (executor.mem_budget_bytes < 0) {
    return Status::InvalidArgument("executor.mem_budget_bytes must be >= 0");
  }
  MRTHETA_RETURN_IF_ERROR(executor.fault_plan.Validate());
  MRTHETA_RETURN_IF_ERROR(executor.retry.Validate());
  MRTHETA_RETURN_IF_ERROR(executor.speculation.Validate());
  return Status::OK();
}

std::string EngineOptions::ToString() const {
  std::string out = "EngineOptions{" + cluster.ToString();
  out += ", threads=" + std::to_string(executor.num_threads);
  out += ", seed=" + std::to_string(execution_seed);
  out += ", calibration_workers=" + std::to_string(calibration_workers);
  out += ", plan_cache_capacity=" + std::to_string(plan_cache_capacity);
  if (max_inflight_queries > 0) {
    out += ", max_inflight_queries=" + std::to_string(max_inflight_queries);
    out += ", max_queue_depth=" + std::to_string(max_queue_depth);
  }
  if (per_query_threads > 0) {
    out += ", per_query_threads=" + std::to_string(per_query_threads);
  }
  if (mem_budget_bytes > 0) {
    out += ", mem_budget=" + std::to_string(mem_budget_bytes);
  }
  if (executor.fault_plan.enabled()) {
    out += ", " + executor.fault_plan.ToString();
  }
  out += "}";
  return out;
}

}  // namespace mrtheta
