#ifndef MRTHETA_API_QUERY_BUILDER_H_
#define MRTHETA_API_QUERY_BUILDER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/query.h"
#include "src/relation/predicate.h"
#include "src/relation/relation.h"

namespace mrtheta {

/// One side of a builder condition: a named column reference
/// "alias.column" plus an additive constant, so band predicates read the
/// way the paper writes them: `Col("t1.d") + 3 > Col("t3.d")`.
struct ColExpr {
  std::string alias;
  std::string column;
  double offset = 0.0;
  /// The raw argument of Col(); kept for error messages.
  std::string spelled;
};

/// Parses "alias.column". A malformed reference is not an immediate error —
/// it is reported (with the original spelling) by QueryBuilder::Build.
ColExpr Col(const std::string& qualified);

inline ColExpr operator+(ColExpr col, double offset) {
  col.offset += offset;
  return col;
}
inline ColExpr operator-(ColExpr col, double offset) {
  col.offset -= offset;
  return col;
}

/// A theta comparison between two column expressions.
struct CondExpr {
  ColExpr lhs;
  ThetaOp op = ThetaOp::kEq;
  ColExpr rhs;
};

inline CondExpr operator<(ColExpr a, ColExpr b) {
  return {std::move(a), ThetaOp::kLt, std::move(b)};
}
inline CondExpr operator<=(ColExpr a, ColExpr b) {
  return {std::move(a), ThetaOp::kLe, std::move(b)};
}
inline CondExpr operator>(ColExpr a, ColExpr b) {
  return {std::move(a), ThetaOp::kGt, std::move(b)};
}
inline CondExpr operator>=(ColExpr a, ColExpr b) {
  return {std::move(a), ThetaOp::kGe, std::move(b)};
}
inline CondExpr operator==(ColExpr a, ColExpr b) {
  return {std::move(a), ThetaOp::kEq, std::move(b)};
}
inline CondExpr operator!=(ColExpr a, ColExpr b) {
  return {std::move(a), ThetaOp::kNe, std::move(b)};
}

/// A single-relation selection: a column expression compared against a
/// literal, e.g. `Col("l1.l_quantity") <= 30` or
/// `Col("p.p_name") == std::string("widget")`. Lowered by
/// QueryBuilder::Filter to a map-side predicate pushed below the first
/// shuffle (docs/EXECUTOR.md "Selection pushdown").
struct FilterExpr {
  ColExpr col;
  ThetaOp op = ThetaOp::kEq;
  Value literal;
};

inline FilterExpr operator<(ColExpr a, double v) {
  return {std::move(a), ThetaOp::kLt, Value(v)};
}
inline FilterExpr operator<=(ColExpr a, double v) {
  return {std::move(a), ThetaOp::kLe, Value(v)};
}
inline FilterExpr operator>(ColExpr a, double v) {
  return {std::move(a), ThetaOp::kGt, Value(v)};
}
inline FilterExpr operator>=(ColExpr a, double v) {
  return {std::move(a), ThetaOp::kGe, Value(v)};
}
inline FilterExpr operator==(ColExpr a, double v) {
  return {std::move(a), ThetaOp::kEq, Value(v)};
}
inline FilterExpr operator!=(ColExpr a, double v) {
  return {std::move(a), ThetaOp::kNe, Value(v)};
}
inline FilterExpr operator==(ColExpr a, std::string v) {
  return {std::move(a), ThetaOp::kEq, Value(std::move(v))};
}
inline FilterExpr operator!=(ColExpr a, std::string v) {
  return {std::move(a), ThetaOp::kNe, Value(std::move(v))};
}

/// \brief Fluent, alias-based query construction — the session-facing
/// replacement for Query's index juggling:
///
///   QueryBuilder b;
///   b.From("t1", calls).From("t2", calls2)
///    .Where(Col("t1.bt") <= Col("t2.bt") + 5)
///    .Select("t2.id");
///   StatusOr<Query> q = b.Build();
///
/// From/Where/Select record intent; Build resolves aliases and columns,
/// reports *every* structural error at once (duplicate alias, unknown
/// alias, unknown column, malformed reference — each with its spelling,
/// numbered in clause order; the Status carries the first error's code),
/// and lowers to the legacy Query — relations in From order, conditions in
/// Where order — so the planner and executor layers see exactly what a
/// hand-built Query would give them.
class QueryBuilder {
 public:
  /// Registers `relation` under `alias`. Repeating an alias is an error;
  /// the same RelationPtr under two aliases is a self-join.
  QueryBuilder& From(const std::string& alias, RelationPtr relation);

  /// Adds one theta condition (see Col / CondExpr above).
  QueryBuilder& Where(CondExpr cond);

  /// Adds a single-relation selection on `alias` (see FilterExpr above),
  /// pushed below the first shuffle by the executors:
  ///   b.Filter("l1", Col("l1.l_quantity") <= 30);
  /// The predicate's column must reference `alias` — a mismatch is
  /// reported by Build with both spellings.
  QueryBuilder& Filter(const std::string& alias, FilterExpr pred);

  /// Adds an output column "alias.column" to the projection.
  QueryBuilder& Select(const std::string& qualified);

  /// Resolves and lowers to a validated Query. Both the builder's own
  /// resolution errors and Query::Validate failures surface here.
  StatusOr<Query> Build() const;

  int num_relations() const { return static_cast<int>(froms_.size()); }
  int num_conditions() const { return static_cast<int>(wheres_.size()); }

 private:
  struct FromClause {
    std::string alias;
    RelationPtr relation;
  };

  struct FilterClause {
    std::string alias;
    FilterExpr pred;
  };

  /// Resolves `ref` to (relation index, column index) in the lowered query.
  StatusOr<ColumnRef> Resolve(const ColExpr& ref) const;

  std::vector<FromClause> froms_;
  std::vector<CondExpr> wheres_;
  std::vector<FilterClause> filters_;
  std::vector<ColExpr> selects_;
};

}  // namespace mrtheta

#endif  // MRTHETA_API_QUERY_BUILDER_H_
