#include "src/api/query_builder.h"

namespace mrtheta {

ColExpr Col(const std::string& qualified) {
  ColExpr ref;
  ref.spelled = qualified;
  const size_t dot = qualified.find('.');
  if (dot != std::string::npos && dot > 0 && dot + 1 < qualified.size() &&
      qualified.find('.', dot + 1) == std::string::npos) {
    ref.alias = qualified.substr(0, dot);
    ref.column = qualified.substr(dot + 1);
  }
  return ref;
}

QueryBuilder& QueryBuilder::From(const std::string& alias,
                                 RelationPtr relation) {
  froms_.push_back({alias, std::move(relation)});
  return *this;
}

QueryBuilder& QueryBuilder::Where(CondExpr cond) {
  wheres_.push_back(std::move(cond));
  return *this;
}

QueryBuilder& QueryBuilder::Filter(const std::string& alias,
                                   FilterExpr pred) {
  filters_.push_back({alias, std::move(pred)});
  return *this;
}

QueryBuilder& QueryBuilder::Select(const std::string& qualified) {
  selects_.push_back(Col(qualified));
  return *this;
}

StatusOr<ColumnRef> QueryBuilder::Resolve(const ColExpr& ref) const {
  if (ref.alias.empty() || ref.column.empty()) {
    return Status::InvalidArgument("malformed column reference '" +
                                   ref.spelled +
                                   "' (expected \"alias.column\")");
  }
  int relation = -1;
  for (int i = 0; i < num_relations(); ++i) {
    if (froms_[i].alias == ref.alias) {
      relation = i;
      break;
    }
  }
  if (relation < 0) {
    std::string known;
    for (const FromClause& from : froms_) {
      known += known.empty() ? from.alias : ", " + from.alias;
    }
    return Status::NotFound("unknown alias '" + ref.alias + "' in '" +
                            ref.spelled + "' (aliases in scope: " + known +
                            ")");
  }
  if (froms_[relation].relation == nullptr) {
    // The null From itself is reported by Build's structural pass; this
    // marks the reference that cannot be resolved against it.
    return Status::InvalidArgument("cannot resolve '" + ref.spelled +
                                   "': alias '" + ref.alias +
                                   "' has a null relation");
  }
  StatusOr<int> column =
      froms_[relation].relation->schema().FindColumn(ref.column);
  if (!column.ok()) {
    return Status::NotFound("unknown column '" + ref.column +
                            "' of alias '" + ref.alias + "' (relation " +
                            froms_[relation].relation->name() + ")");
  }
  ColumnRef out;
  out.relation = relation;
  out.column = *column;
  return out;
}

StatusOr<Query> QueryBuilder::Build() const {
  // Every structural and resolution error is collected before reporting,
  // so one Build round-trip surfaces everything wrong with the spec. The
  // aggregate Status carries the FIRST error's code (what callers branch
  // on) and every message, numbered, in clause order.
  std::vector<Status> errors;
  auto note = [&errors](const Status& status) { errors.push_back(status); };

  bool any_null_relation = false;
  for (int i = 0; i < num_relations(); ++i) {
    if (froms_[i].relation == nullptr) {
      any_null_relation = true;
      note(Status::InvalidArgument("alias '" + froms_[i].alias +
                                   "' has a null relation"));
    }
    for (int j = 0; j < i; ++j) {
      if (froms_[i].alias == froms_[j].alias) {
        note(Status::InvalidArgument("duplicate alias '" + froms_[i].alias +
                                     "' (every From needs its own alias; "
                                     "self-joins use distinct aliases over "
                                     "the same relation)"));
      }
    }
  }
  Query query;
  // With a null relation in scope, lowering cannot proceed (Query would
  // dereference it); column resolution against the other aliases still
  // runs below so their errors are reported in the same round.
  if (!any_null_relation) {
    for (const FromClause& from : froms_) query.AddRelation(from.relation);
  }
  for (const CondExpr& cond : wheres_) {
    StatusOr<ColumnRef> lhs = Resolve(cond.lhs);
    if (!lhs.ok()) note(lhs.status());
    StatusOr<ColumnRef> rhs = Resolve(cond.rhs);
    if (!rhs.ok()) note(rhs.status());
    if (!lhs.ok() || !rhs.ok() || any_null_relation) continue;
    // (a + oa) op (b + ob)  ⇔  (a + (oa - ob)) op b — the legacy Query
    // carries the whole band offset on the left side.
    StatusOr<int> id = query.AddCondition(
        lhs->relation, cond.lhs.column, cond.op, rhs->relation,
        cond.rhs.column, cond.lhs.offset - cond.rhs.offset);
    if (!id.ok()) note(id.status());
  }
  for (const FilterClause& filter : filters_) {
    StatusOr<ColumnRef> ref = Resolve(filter.pred.col);
    if (!ref.ok()) {
      note(ref.status());
      continue;
    }
    if (filter.pred.col.alias != filter.alias) {
      note(Status::InvalidArgument(
          "Filter(\"" + filter.alias + "\", ...) predicate references '" +
          filter.pred.col.spelled + "' (the predicate column must belong "
          "to the filtered alias)"));
      continue;
    }
    if (any_null_relation) continue;
    Status added =
        query.AddFilter(ref->relation, filter.pred.col.column,
                        filter.pred.op, filter.pred.literal,
                        filter.pred.col.offset);
    if (!added.ok()) note(added);
  }
  for (const ColExpr& sel : selects_) {
    StatusOr<ColumnRef> ref = Resolve(sel);
    if (!ref.ok()) {
      note(ref.status());
      continue;
    }
    if (any_null_relation) continue;
    Status added = query.AddOutput(ref->relation, sel.column);
    if (!added.ok()) note(added);
  }
  if (!errors.empty()) {
    if (errors.size() == 1) return errors.front();
    std::string message = "query spec has " + std::to_string(errors.size()) +
                          " errors:";
    for (size_t i = 0; i < errors.size(); ++i) {
      message += "\n  [" + std::to_string(i + 1) + "] " +
                 errors[i].message();
    }
    return Status::WithCode(errors.front().code(), std::move(message));
  }
  MRTHETA_RETURN_IF_ERROR(query.Validate());
  return query;
}

}  // namespace mrtheta
