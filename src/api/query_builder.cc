#include "src/api/query_builder.h"

namespace mrtheta {

ColExpr Col(const std::string& qualified) {
  ColExpr ref;
  ref.spelled = qualified;
  const size_t dot = qualified.find('.');
  if (dot != std::string::npos && dot > 0 && dot + 1 < qualified.size() &&
      qualified.find('.', dot + 1) == std::string::npos) {
    ref.alias = qualified.substr(0, dot);
    ref.column = qualified.substr(dot + 1);
  }
  return ref;
}

QueryBuilder& QueryBuilder::From(const std::string& alias,
                                 RelationPtr relation) {
  froms_.push_back({alias, std::move(relation)});
  return *this;
}

QueryBuilder& QueryBuilder::Where(CondExpr cond) {
  wheres_.push_back(std::move(cond));
  return *this;
}

QueryBuilder& QueryBuilder::Filter(const std::string& alias,
                                   FilterExpr pred) {
  filters_.push_back({alias, std::move(pred)});
  return *this;
}

QueryBuilder& QueryBuilder::Select(const std::string& qualified) {
  selects_.push_back(Col(qualified));
  return *this;
}

StatusOr<ColumnRef> QueryBuilder::Resolve(const ColExpr& ref) const {
  if (ref.alias.empty() || ref.column.empty()) {
    return Status::InvalidArgument("malformed column reference '" +
                                   ref.spelled +
                                   "' (expected \"alias.column\")");
  }
  int relation = -1;
  for (int i = 0; i < num_relations(); ++i) {
    if (froms_[i].alias == ref.alias) {
      relation = i;
      break;
    }
  }
  if (relation < 0) {
    std::string known;
    for (const FromClause& from : froms_) {
      known += known.empty() ? from.alias : ", " + from.alias;
    }
    return Status::NotFound("unknown alias '" + ref.alias + "' in '" +
                            ref.spelled + "' (aliases in scope: " + known +
                            ")");
  }
  StatusOr<int> column =
      froms_[relation].relation->schema().FindColumn(ref.column);
  if (!column.ok()) {
    return Status::NotFound("unknown column '" + ref.column +
                            "' of alias '" + ref.alias + "' (relation " +
                            froms_[relation].relation->name() + ")");
  }
  ColumnRef out;
  out.relation = relation;
  out.column = *column;
  return out;
}

StatusOr<Query> QueryBuilder::Build() const {
  for (int i = 0; i < num_relations(); ++i) {
    if (froms_[i].relation == nullptr) {
      return Status::InvalidArgument("alias '" + froms_[i].alias +
                                     "' has a null relation");
    }
    for (int j = 0; j < i; ++j) {
      if (froms_[i].alias == froms_[j].alias) {
        return Status::InvalidArgument("duplicate alias '" + froms_[i].alias +
                                       "' (every From needs its own alias; "
                                       "self-joins use distinct aliases over "
                                       "the same relation)");
      }
    }
  }
  Query query;
  for (const FromClause& from : froms_) query.AddRelation(from.relation);
  for (const CondExpr& cond : wheres_) {
    StatusOr<ColumnRef> lhs = Resolve(cond.lhs);
    if (!lhs.ok()) return lhs.status();
    StatusOr<ColumnRef> rhs = Resolve(cond.rhs);
    if (!rhs.ok()) return rhs.status();
    // (a + oa) op (b + ob)  ⇔  (a + (oa - ob)) op b — the legacy Query
    // carries the whole band offset on the left side.
    StatusOr<int> id = query.AddCondition(
        lhs->relation, cond.lhs.column, cond.op, rhs->relation,
        cond.rhs.column, cond.lhs.offset - cond.rhs.offset);
    if (!id.ok()) return id.status();
  }
  for (const FilterClause& filter : filters_) {
    StatusOr<ColumnRef> ref = Resolve(filter.pred.col);
    if (!ref.ok()) return ref.status();
    if (filter.pred.col.alias != filter.alias) {
      return Status::InvalidArgument(
          "Filter(\"" + filter.alias + "\", ...) predicate references '" +
          filter.pred.col.spelled + "' (the predicate column must belong "
          "to the filtered alias)");
    }
    MRTHETA_RETURN_IF_ERROR(
        query.AddFilter(ref->relation, filter.pred.col.column,
                        filter.pred.op, filter.pred.literal,
                        filter.pred.col.offset));
  }
  for (const ColExpr& sel : selects_) {
    StatusOr<ColumnRef> ref = Resolve(sel);
    if (!ref.ok()) return ref.status();
    MRTHETA_RETURN_IF_ERROR(query.AddOutput(ref->relation, sel.column));
  }
  MRTHETA_RETURN_IF_ERROR(query.Validate());
  return query;
}

}  // namespace mrtheta
