#ifndef MRTHETA_API_THETA_ENGINE_H_
#define MRTHETA_API_THETA_ENGINE_H_

#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/api/engine_options.h"
#include "src/api/query_builder.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/cost/calibration.h"
#include "src/mapreduce/sim_cluster.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/runtime/thread_pool.h"

namespace mrtheta {

/// What Explain returns: the chosen plan plus the statistics it was
/// planned with (cached per relation across the session).
struct PlanReport {
  QueryPlan plan;
  std::vector<TableStats> stats;

  std::string ToString() const;
};

/// Counters of the shared work a session amortizes. api_test pins the
/// caching contract on these: three Executes of one query cost exactly one
/// calibration and one stats build per distinct relation.
///
/// This struct is a *view*: the source of truth is the engine's
/// MetricsRegistry (metrics_registry()), which additionally carries
/// labeled per-phase retry counters and an execution-latency histogram;
/// metrics() assembles the struct from the registry for ergonomic access.
struct EngineMetrics {
  int64_t calibrations = 0;      ///< cost-model calibration campaigns run
  int64_t stats_builds = 0;      ///< per-relation TableStats computed
  int64_t stats_cache_hits = 0;  ///< per-relation TableStats reused
  int64_t stats_evictions = 0;   ///< cache entries dropped (expired relation)
  int64_t plans = 0;             ///< planner invocations (plan-cache misses)
  int64_t executions = 0;        ///< plans executed successfully
  int64_t failed_executions = 0;  ///< plans that returned a non-OK Status
  // Serving-layer accounting (docs/API.md "Serving"); the plan-cache
  // counters stay zero with plan_cache_capacity == 0, the admission ones
  // with max_inflight_queries == 0.
  int64_t plan_cache_hits = 0;    ///< executions that skipped planning+stats
  int64_t plan_cache_misses = 0;  ///< lookups that fell through to the planner
  int64_t plan_cache_evictions = 0;  ///< LRU shapes dropped at capacity
  int64_t admission_rejections = 0;  ///< Submits refused (queue depth)
  // Fault-tolerance accounting summed over the session's executions
  // (docs/RUNTIME.md "Fault tolerance"); all zero without a FaultPlan.
  int64_t injected_faults = 0;       ///< faults the FaultPlan fired
  int64_t task_retries = 0;          ///< failed task attempts retried
  int64_t speculative_launches = 0;  ///< straggler re-executions launched
  double wasted_task_seconds = 0.0;  ///< time in never-committed attempts
  // Memory accounting (docs/MEMORY.md); spill counters stay zero without
  // a memory budget.
  int64_t spill_bytes = 0;     ///< shuffle bytes spilled to disk
  int64_t spill_files = 0;     ///< spill files created
  int64_t peak_mem_bytes = 0;  ///< budget high-water mark (last execution)
};

class ThetaEngine;

/// \brief A query prepared against a ThetaEngine: the validated Query plus
/// a pinned plan out of the engine's plan cache, unifying the Query- and
/// QueryBuilder-shaped entry points behind one handle.
///
///   StatusOr<PreparedQuery> p = engine.Prepare(builder);   // plans once
///   for (...) auto result = p->Execute();                  // never re-plans
///
/// Execute/Submit/ExplainAnalyze behave exactly like the engine's own
/// overloads, except planning is skipped while the pin is *fresh*: on each
/// call the engine recomputes the cache key (structure + every input's
/// Relation::generation()); a match executes the pinned plan (counted as a
/// plan-cache hit), a mismatch — some input was mutated since Prepare —
/// transparently re-plans through the cache, so a stale handle is never
/// wrong, only slower. The pin keeps the plan alive independently of LRU
/// eviction. Handles are cheap value types (the plan is shared, the query
/// holds RelationPtr refs); the engine must outlive every handle. Thread
/// safety follows the engine's: concurrent calls on one handle are safe.
class PreparedQuery {
 public:
  PreparedQuery() = default;

  const Query& query() const { return query_; }
  /// The plan pinned at Prepare time (what a fresh Execute will run).
  const QueryPlan& plan() const { return *plan_; }

  /// Executes on the engine's runtime, skipping planning while fresh.
  StatusOr<QueryResult> Execute() const;
  /// Asynchronous Execute on the engine's shared pool; admission-controlled
  /// like every Submit (docs/API.md "Serving").
  std::future<StatusOr<QueryResult>> Submit() const;
  /// Executes and returns the per-job profile; profile.plan_cache_hit
  /// tells whether this call reused the pin.
  StatusOr<QueryProfile> ExplainAnalyze() const;

 private:
  friend class ThetaEngine;

  ThetaEngine* engine_ = nullptr;
  Query query_;
  std::shared_ptr<const QueryPlan> plan_;
  /// Cache key (structure + generations) observed at Prepare time; the
  /// freshness check compares against the current key.
  std::string cache_key_;
};

/// \brief The session facade over the paper's whole pipeline: statistics →
/// cost calibration → join-path graph → set cover → malleable schedule →
/// MapReduce execution, behind one object constructed once per session.
///
/// A ThetaEngine owns the simulated cluster, the runtime thread pool
/// (sized to options().executor.num_threads), the lazily-run cost-model
/// calibration, and a per-relation statistics cache keyed by relation
/// identity and validated by Relation::generation() (any mutation — growth
/// or in-place edits — forces a rebuild; entries for freed relations are
/// evicted) — the one-time "uploading" work of Sec. 6.3 is paid on the
/// first query and amortized across the rest of the session. On top of the
/// stats cache sits an LRU *plan* cache keyed by canonical query structure
/// + input generations, so a repeated query shape skips planning entirely,
/// and an admission policy bounding concurrent Submits (docs/API.md
/// "Serving"; EngineOptions serving knobs).
///
/// Thread safety: all entry points may be called concurrently. Submit
/// returns a future and runs the query on its own coordination thread;
/// map/reduce tasks of concurrent submissions share the engine's pool, so
/// independent plans overlap. Determinism: with the same options and
/// execution_seed, Execute and Submit produce byte-identical results at
/// every thread count and under any submission interleaving
/// (docs/API.md).
class ThetaEngine {
 public:
  explicit ThetaEngine(EngineOptions options = {});
  /// Blocks until every in-flight Submit has finished.
  ~ThetaEngine();

  ThetaEngine(const ThetaEngine&) = delete;
  ThetaEngine& operator=(const ThetaEngine&) = delete;

  const EngineOptions& options() const { return options_; }
  const SimCluster& cluster() const { return cluster_; }

  /// The cost-model calibration report (Sec. 6.2), running the probe
  /// campaign on first use and caching it for the session.
  StatusOr<CalibrationReport> Calibration();

  /// Plans `query` with session-cached calibration and statistics.
  StatusOr<QueryPlan> PlanQuery(const Query& query);

  /// Plans `query` and reports the choice without executing anything.
  StatusOr<PlanReport> Explain(const Query& query);

  /// Plans and executes `query` on the engine's runtime.
  StatusOr<QueryResult> Execute(const Query& query);
  /// Builds, plans and executes the builder's query.
  StatusOr<QueryResult> Execute(const QueryBuilder& builder);

  /// Executes `query` and returns its execution profile: per plan job,
  /// wall vs simulated time, rows/bytes at pruned widths, retries,
  /// speculation, skew routing and kernel choice (src/obs/profile.h;
  /// render with ToTable() or ToJson()). Equivalent to
  /// Execute(query)->profile() — the query runs exactly once, at full
  /// fidelity; profiling adds no second execution and perturbs nothing.
  StatusOr<QueryProfile> ExplainAnalyze(const Query& query);
  StatusOr<QueryProfile> ExplainAnalyze(const QueryBuilder& builder);

  /// Prepares a query for repeated execution: validates it, plans it once
  /// through the plan cache, and returns a handle whose
  /// Execute/Submit/ExplainAnalyze skip planning while the inputs are
  /// unmutated (see PreparedQuery). The builder overload makes Prepare the
  /// single entry point for both construction styles.
  StatusOr<PreparedQuery> Prepare(const Query& query);
  StatusOr<PreparedQuery> Prepare(const QueryBuilder& builder);

  /// Asynchronous Execute for concurrent multi-query sessions: returns
  /// immediately; the execution overlaps with other submissions on the
  /// engine's shared pool. Unlike std::async, discarding the future does
  /// NOT block — the query keeps running and the engine's destructor
  /// waits for it, so the engine must outlive the session's submissions
  /// (which it does by construction).
  ///
  /// With max_inflight_queries > 0, Submit is admission-controlled: the
  /// admit/queue/reject decision is taken synchronously in the caller's
  /// thread — at most max_inflight_queries submissions execute, the next
  /// max_queue_depth wait FIFO (queue time lands in the
  /// engine_queue_wait_seconds histogram and an "admission-wait" span),
  /// and beyond that the returned future is already resolved with
  /// kResourceExhausted. CancelInflight also cancels queued submissions.
  std::future<StatusOr<QueryResult>> Submit(Query query);
  std::future<StatusOr<QueryResult>> Submit(const QueryBuilder& builder);

  /// Cancels every in-flight Submit: each coordination thread carries a
  /// CancellationToken that its execution honors at job and task
  /// boundaries (and inside interruptible waits), so cancelled
  /// submissions resolve their futures promptly with kCancelled instead
  /// of running their remaining plan jobs. Queries submitted after this
  /// call are unaffected. Safe to call concurrently with anything,
  /// including itself.
  void CancelInflight();

  /// Executes a caller-provided plan (a baseline planner's, or a plan from
  /// Explain) with the engine's executor options and seed.
  StatusOr<QueryResult> ExecutePlan(const Query& query, const QueryPlan& plan);
  /// Same, with per-call executor options (thread sweeps, kernel gates,
  /// skew modes) and seed. The effective thread count is capped by the
  /// engine pool, i.e. min(executor_options.num_threads,
  /// options().executor.num_threads).
  StatusOr<QueryResult> ExecutePlan(const Query& query, const QueryPlan& plan,
                                    const ExecutorOptions& executor_options,
                                    uint64_t seed);

  EngineMetrics metrics() const;

  /// The session's metric store (docs/OBSERVABILITY.md): every
  /// EngineMetrics counter under an "engine_" prefix, labeled per-phase
  /// retry counters (engine_task_retries{phase="map"|"reduce"}), the
  /// wasted-attempt-seconds gauge, and an engine_execution_seconds
  /// histogram (p50/p95/p99 across the session's successful executions).
  /// Snapshot with SnapshotText/SnapshotJson or dump via --metrics-out.
  MetricsRegistry& metrics_registry() const { return registry_; }

 private:
  friend class PreparedQuery;

  /// A plan resolved for execution: through the plan cache, a fresh
  /// planner run, or a still-fresh PreparedQuery pin.
  struct PlannedQuery {
    std::shared_ptr<const QueryPlan> plan;
    std::vector<TableStats> stats;  ///< statistics the plan was chosen with
    bool cache_hit = false;         ///< planning + stats were skipped
  };

  /// Validates options and runs calibration once; caller holds mu_.
  Status EnsureReadyLocked() MRTHETA_REQUIRES(mu_);
  /// Validates `query` and resolves its plan: a plan-cache hit returns the
  /// cached plan + stats without touching the planner; a miss collects
  /// stats, plans, and inserts into the LRU cache (all under one mu_ hold,
  /// so concurrent submissions of one new shape plan it exactly once).
  StatusOr<PlannedQuery> PlanForExecution(const Query& query);
  /// Like PlanForExecution, but serves `pinned` without locking when its
  /// generation-stamped key still matches (the PreparedQuery fast path).
  StatusOr<PlannedQuery> PlanPinnedOrExecution(
      const Query& query, const std::shared_ptr<const QueryPlan>& pinned,
      const std::string& pinned_key);
  /// Inserts a freshly planned shape, evicting LRU entries beyond
  /// plan_cache_capacity; caller holds mu_.
  void InsertPlanLocked(const std::string& key,
                        std::shared_ptr<const QueryPlan> plan,
                        std::vector<TableStats> stats) MRTHETA_REQUIRES(mu_);
  /// Executes a resolved plan with engine executor options (cancellation
  /// token wired in, per_query_threads cap applied) and stamps the
  /// result's plan_cache_hit.
  StatusOr<QueryResult> ExecuteResolved(const Query& query,
                                        const PlannedQuery& planned,
                                        const CancellationToken* token);
  /// Plan + execute under a Submit coordination thread's cancellation
  /// token (engine executor options otherwise, with the per_query_threads
  /// cap applied).
  StatusOr<QueryResult> ExecuteCancellable(
      const Query& query, const std::shared_ptr<const QueryPlan>& pinned,
      const std::string& pinned_key, const CancellationToken* token);
  /// Shared Submit path: admission control + detached coordination thread.
  std::future<StatusOr<QueryResult>> SubmitInternal(
      Query query, std::shared_ptr<const QueryPlan> pinned,
      std::string pinned_key);
  /// Blocks until this ticket reaches the queue front with a free slot (or
  /// its token is cancelled); records the queue wait on admission.
  Status WaitForAdmission(uint64_t ticket, const CancellationToken* token);
  /// Frees one admission slot and wakes the queue front.
  void ReleaseAdmission();
  /// Session statistics for the query's relations, cached by relation
  /// identity; caller holds mu_.
  std::vector<TableStats> StatsForLocked(const Query& query)
      MRTHETA_REQUIRES(mu_);
  /// Adds one execution's fault accounting to the registry (total and
  /// per-phase retry counters, wasted-seconds gauge). Called on every
  /// ExecutePlan exit path — success, failure and cancellation alike.
  void AddFaultReportToRegistry(const FaultReport& report) const;

  const EngineOptions options_;
  SimCluster cluster_;
  ThreadPool pool_;

  mutable Mutex mu_;
  bool initialized_ MRTHETA_GUARDED_BY(mu_) = false;
  Status init_status_ MRTHETA_GUARDED_BY(mu_);
  std::unique_ptr<CalibrationReport> calibration_ MRTHETA_GUARDED_BY(mu_);
  /// Created once under mu_; all planner calls happen under mu_ too.
  std::unique_ptr<Planner> planner_ MRTHETA_GUARDED_BY(mu_);
  /// One cached per-relation statistics entry, keyed by relation address
  /// and validated by Relation::generation() — a process-wide monotonic
  /// counter re-drawn on every mutation. An entry is served only when the
  /// relation is still alive (weak_ptr) AND its generation matches the one
  /// observed at build time, so neither an in-place mutation at the same
  /// cardinality nor a freed relation's recycled address can ever alias a
  /// stale entry (the old (pointer, row-count) key did both). Entries are
  /// not pinned: expired ones are evicted on the next lookup pass.
  struct CachedStats {
    std::weak_ptr<const Relation> alive;
    uint64_t generation = 0;
    TableStats stats;
  };
  std::unordered_map<const Relation*, CachedStats> stats_cache_
      MRTHETA_GUARDED_BY(mu_);
  /// The session plan cache (docs/API.md "Serving"): key =
  /// Query::StructureKey() + the generation of every input in query-index
  /// order. Generations are drawn from a never-reused process-wide counter,
  /// so a key match alone proves the cached plan was chosen for exactly
  /// this structure over exactly this content — mutation invalidates by
  /// key mismatch, and dropping the relation merely strands an entry until
  /// LRU eviction (the cache stores plans and stats *values*, never
  /// relation pointers, so a stranded entry can go stale but never dangle
  /// or be wrongly served). Entries hold the stats the plan was chosen
  /// with, so Explain reports them without a rebuild.
  struct PlanCacheEntry {
    std::shared_ptr<const QueryPlan> plan;
    std::vector<TableStats> stats;
    std::list<std::string>::iterator lru_it;  ///< position in plan_lru_
  };
  /// Front = most recent.
  std::list<std::string> plan_lru_ MRTHETA_GUARDED_BY(mu_);
  std::unordered_map<std::string, PlanCacheEntry> plan_cache_
      MRTHETA_GUARDED_BY(mu_);
  // Admission control (active when options_.max_inflight_queries > 0).
  int admitted_queries_ MRTHETA_GUARDED_BY(mu_) = 0;
  uint64_t next_ticket_ MRTHETA_GUARDED_BY(mu_) = 0;
  /// FIFO tickets.
  std::deque<uint64_t> admission_queue_ MRTHETA_GUARDED_BY(mu_);
  CondVar admission_cv_;  // slot freed / queue front moved
  /// Source of truth for all session metrics; internally synchronized
  /// (handles are lock-free), so fault accounting from executor scope
  /// guards and detached Submit threads lands here without touching mu_ —
  /// which is what fixed the CancelInflight under-reporting bug. Mutable:
  /// reading metrics on a const engine still registers handles on first
  /// use.
  mutable MetricsRegistry registry_;
  int inflight_submissions_ MRTHETA_GUARDED_BY(mu_) = 0;
  /// One token per in-flight Submit, registered for CancelInflight. The
  /// coordination thread holds its own shared_ptr, so entries here are
  /// alive by construction; each is deregistered when its submission ends.
  std::vector<std::shared_ptr<CancellationToken>> inflight_tokens_
      MRTHETA_GUARDED_BY(mu_);
  CondVar idle_cv_;  // signalled when a submission ends
};

}  // namespace mrtheta

#endif  // MRTHETA_API_THETA_ENGINE_H_
