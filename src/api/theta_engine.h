#ifndef MRTHETA_API_THETA_ENGINE_H_
#define MRTHETA_API_THETA_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/api/engine_options.h"
#include "src/api/query_builder.h"
#include "src/common/status.h"
#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/cost/calibration.h"
#include "src/mapreduce/sim_cluster.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/runtime/thread_pool.h"

namespace mrtheta {

/// What Explain returns: the chosen plan plus the statistics it was
/// planned with (cached per relation across the session).
struct PlanReport {
  QueryPlan plan;
  std::vector<TableStats> stats;

  std::string ToString() const;
};

/// Counters of the shared work a session amortizes. api_test pins the
/// caching contract on these: three Executes of one query cost exactly one
/// calibration and one stats build per distinct relation.
///
/// This struct is a *view*: the source of truth is the engine's
/// MetricsRegistry (metrics_registry()), which additionally carries
/// labeled per-phase retry counters and an execution-latency histogram;
/// metrics() assembles the struct from the registry for ergonomic access.
struct EngineMetrics {
  int64_t calibrations = 0;      ///< cost-model calibration campaigns run
  int64_t stats_builds = 0;      ///< per-relation TableStats computed
  int64_t stats_cache_hits = 0;  ///< per-relation TableStats reused
  int64_t stats_evictions = 0;   ///< cache entries dropped (expired relation)
  int64_t plans = 0;             ///< queries planned
  int64_t executions = 0;        ///< plans executed successfully
  int64_t failed_executions = 0;  ///< plans that returned a non-OK Status
  // Fault-tolerance accounting summed over the session's executions
  // (docs/RUNTIME.md "Fault tolerance"); all zero without a FaultPlan.
  int64_t injected_faults = 0;       ///< faults the FaultPlan fired
  int64_t task_retries = 0;          ///< failed task attempts retried
  int64_t speculative_launches = 0;  ///< straggler re-executions launched
  double wasted_task_seconds = 0.0;  ///< time in never-committed attempts
};

/// \brief The session facade over the paper's whole pipeline: statistics →
/// cost calibration → join-path graph → set cover → malleable schedule →
/// MapReduce execution, behind one object constructed once per session.
///
/// A ThetaEngine owns the simulated cluster, the runtime thread pool
/// (sized to options().executor.num_threads), the lazily-run cost-model
/// calibration, and a per-relation statistics cache keyed by relation
/// identity and validated by Relation::generation() (any mutation — growth
/// or in-place edits — forces a rebuild; entries for freed relations are
/// evicted) — the one-time "uploading" work of Sec. 6.3 is paid on the
/// first query and amortized across the rest of the session.
///
/// Thread safety: all entry points may be called concurrently. Submit
/// returns a future and runs the query on its own coordination thread;
/// map/reduce tasks of concurrent submissions share the engine's pool, so
/// independent plans overlap. Determinism: with the same options and
/// execution_seed, Execute and Submit produce byte-identical results at
/// every thread count and under any submission interleaving
/// (docs/API.md).
class ThetaEngine {
 public:
  explicit ThetaEngine(EngineOptions options = {});
  /// Blocks until every in-flight Submit has finished.
  ~ThetaEngine();

  ThetaEngine(const ThetaEngine&) = delete;
  ThetaEngine& operator=(const ThetaEngine&) = delete;

  const EngineOptions& options() const { return options_; }
  const SimCluster& cluster() const { return cluster_; }

  /// The cost-model calibration report (Sec. 6.2), running the probe
  /// campaign on first use and caching it for the session.
  StatusOr<CalibrationReport> Calibration();

  /// Plans `query` with session-cached calibration and statistics.
  StatusOr<QueryPlan> PlanQuery(const Query& query);

  /// Plans `query` and reports the choice without executing anything.
  StatusOr<PlanReport> Explain(const Query& query);

  /// Plans and executes `query` on the engine's runtime.
  StatusOr<QueryResult> Execute(const Query& query);
  /// Builds, plans and executes the builder's query.
  StatusOr<QueryResult> Execute(const QueryBuilder& builder);

  /// Executes `query` and returns its execution profile: per plan job,
  /// wall vs simulated time, rows/bytes at pruned widths, retries,
  /// speculation, skew routing and kernel choice (src/obs/profile.h;
  /// render with ToTable() or ToJson()). Equivalent to
  /// Execute(query)->profile() — the query runs exactly once, at full
  /// fidelity; profiling adds no second execution and perturbs nothing.
  StatusOr<QueryProfile> ExplainAnalyze(const Query& query);
  StatusOr<QueryProfile> ExplainAnalyze(const QueryBuilder& builder);

  /// Asynchronous Execute for concurrent multi-query sessions: returns
  /// immediately; the execution overlaps with other submissions on the
  /// engine's shared pool. Unlike std::async, discarding the future does
  /// NOT block — the query keeps running and the engine's destructor
  /// waits for it, so the engine must outlive the session's submissions
  /// (which it does by construction).
  std::future<StatusOr<QueryResult>> Submit(Query query);
  std::future<StatusOr<QueryResult>> Submit(const QueryBuilder& builder);

  /// Cancels every in-flight Submit: each coordination thread carries a
  /// CancellationToken that its execution honors at job and task
  /// boundaries (and inside interruptible waits), so cancelled
  /// submissions resolve their futures promptly with kCancelled instead
  /// of running their remaining plan jobs. Queries submitted after this
  /// call are unaffected. Safe to call concurrently with anything,
  /// including itself.
  void CancelInflight();

  /// Executes a caller-provided plan (a baseline planner's, or a plan from
  /// Explain) with the engine's executor options and seed.
  StatusOr<QueryResult> ExecutePlan(const Query& query, const QueryPlan& plan);
  /// Same, with per-call executor options (thread sweeps, kernel gates,
  /// skew modes) and seed. The effective thread count is capped by the
  /// engine pool, i.e. min(executor_options.num_threads,
  /// options().executor.num_threads).
  StatusOr<QueryResult> ExecutePlan(const Query& query, const QueryPlan& plan,
                                    const ExecutorOptions& executor_options,
                                    uint64_t seed);

  EngineMetrics metrics() const;

  /// The session's metric store (docs/OBSERVABILITY.md): every
  /// EngineMetrics counter under an "engine_" prefix, labeled per-phase
  /// retry counters (engine_task_retries{phase="map"|"reduce"}), the
  /// wasted-attempt-seconds gauge, and an engine_execution_seconds
  /// histogram (p50/p95/p99 across the session's successful executions).
  /// Snapshot with SnapshotText/SnapshotJson or dump via --metrics-out.
  MetricsRegistry& metrics_registry() const { return registry_; }

 private:
  /// Validates options and runs calibration once; caller holds mu_.
  Status EnsureReadyLocked();
  /// Plan + execute under a Submit coordination thread's cancellation
  /// token (engine executor options otherwise).
  StatusOr<QueryResult> ExecuteCancellable(const Query& query,
                                           const CancellationToken* token);
  /// Session statistics for the query's relations, cached by relation
  /// identity; caller holds mu_.
  std::vector<TableStats> StatsForLocked(const Query& query);
  /// Adds one execution's fault accounting to the registry (total and
  /// per-phase retry counters, wasted-seconds gauge). Called on every
  /// ExecutePlan exit path — success, failure and cancellation alike.
  void AddFaultReportToRegistry(const FaultReport& report) const;

  const EngineOptions options_;
  SimCluster cluster_;
  ThreadPool pool_;

  mutable std::mutex mu_;
  bool initialized_ = false;          // guarded by mu_
  Status init_status_;                // guarded by mu_
  std::unique_ptr<CalibrationReport> calibration_;  // guarded by mu_
  std::unique_ptr<Planner> planner_;  // created once under mu_
  /// One cached per-relation statistics entry, keyed by relation address
  /// and validated by Relation::generation() — a process-wide monotonic
  /// counter re-drawn on every mutation. An entry is served only when the
  /// relation is still alive (weak_ptr) AND its generation matches the one
  /// observed at build time, so neither an in-place mutation at the same
  /// cardinality nor a freed relation's recycled address can ever alias a
  /// stale entry (the old (pointer, row-count) key did both). Entries are
  /// not pinned: expired ones are evicted on the next lookup pass.
  struct CachedStats {
    std::weak_ptr<const Relation> alive;
    uint64_t generation = 0;
    TableStats stats;
  };
  std::unordered_map<const Relation*, CachedStats>
      stats_cache_;                   // guarded by mu_
  /// Source of truth for all session metrics; internally synchronized
  /// (handles are lock-free), so fault accounting from executor scope
  /// guards and detached Submit threads lands here without touching mu_ —
  /// which is what fixed the CancelInflight under-reporting bug. Mutable:
  /// reading metrics on a const engine still registers handles on first
  /// use.
  mutable MetricsRegistry registry_;
  int inflight_submissions_ = 0;      // guarded by mu_
  /// One token per in-flight Submit, registered for CancelInflight. The
  /// coordination thread holds its own shared_ptr, so entries here are
  /// alive by construction; each is deregistered when its submission ends.
  std::vector<std::shared_ptr<CancellationToken>>
      inflight_tokens_;               // guarded by mu_
  std::condition_variable idle_cv_;   // signalled when a submission ends
};

}  // namespace mrtheta

#endif  // MRTHETA_API_THETA_ENGINE_H_
