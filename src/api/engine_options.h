#ifndef MRTHETA_API_ENGINE_OPTIONS_H_
#define MRTHETA_API_ENGINE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/cost/calibration.h"
#include "src/mapreduce/cluster_config.h"

namespace mrtheta {

/// \brief The single validated options surface of a ThetaEngine session:
/// the simulated cluster, the planner knobs, the physical executor knobs
/// and the calibration campaign, merged so callers configure one struct
/// instead of wiring four objects by hand.
///
/// Every field keeps its subsystem's default, so `ThetaEngine engine;` is
/// the paper's Table 1 test bed with the sequential reference runtime.
struct EngineOptions {
  /// The simulated shared-nothing cluster (kP workers, Table 1 parameters).
  ClusterConfig cluster;
  /// Optimizer knobs (λ, pruning, kR policy, statistics collection).
  PlannerOptions planner;
  /// Physical runtime knobs (threads, kernels, skew handling). The engine
  /// sizes its shared thread pool to `executor.num_threads`.
  ExecutorOptions executor;
  /// Cost-model calibration campaign (Sec. 6.2 probes).
  CalibrationOptions calibration;
  /// Workers of the throwaway calibration cluster: the probe campaign
  /// needs one free map wave, and the fitted parameters are kP-independent,
  /// so calibration always runs at this width regardless of
  /// `cluster.num_workers`. 0 = use `cluster.num_workers`.
  int calibration_workers = 96;
  /// Seed of Execute/Submit runs. Same seed + same options ⇒ byte-identical
  /// results across Execute and Submit (docs/API.md determinism contract).
  uint64_t execution_seed = 42;

  // --- Serving knobs (docs/API.md "Serving") ---

  /// Capacity (entries) of the session plan cache, keyed by canonical
  /// query structure + each input's Relation::generation(). A repeated
  /// query shape skips CollectStats and Planner::Plan entirely; least
  /// recently used shapes are evicted beyond this capacity. 0 disables
  /// plan caching (every Execute re-plans, the pre-serving behaviour).
  int plan_cache_capacity = 64;
  /// Maximum Submits executing concurrently; further submissions queue
  /// FIFO up to `max_queue_depth` and then are rejected with
  /// kResourceExhausted. 0 = unbounded (no admission control, the legacy
  /// behaviour). Execute is synchronous in the caller's thread and is not
  /// admission-controlled.
  int max_inflight_queries = 0;
  /// Submissions allowed to wait for admission when `max_inflight_queries`
  /// are already running; only meaningful when admission control is on.
  int max_queue_depth = 64;
  /// Per-query cap on runtime threads under Execute/Submit, so one fat
  /// query cannot monopolize the shared pool while others are admitted.
  /// 0 = no cap (each query may use the full pool). ExecutePlan with
  /// caller-provided executor options is not capped.
  int per_query_threads = 0;
  /// Session memory budget in bytes (docs/MEMORY.md): shuffle state beyond
  /// it spills to disk and is merged back, with byte-identical results.
  /// Applied to every Execute/Submit/ExecutePlan whose executor options
  /// leave mem_budget_bytes at 0; 0 defers to executor.mem_budget_bytes
  /// and then to $MRTHETA_MEM_BUDGET (the process-wide default). The
  /// `--mem-budget` flag of the examples/benches sets this field.
  int64_t mem_budget_bytes = 0;

  /// Cross-field validation; every ThetaEngine entry point fails with this
  /// status when the options are inconsistent.
  Status Validate() const;

  std::string ToString() const;
};

}  // namespace mrtheta

#endif  // MRTHETA_API_ENGINE_OPTIONS_H_
