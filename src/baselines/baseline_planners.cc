#include "src/baselines/baseline_planners.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "src/core/column_pruning.h"
#include "src/stats/selectivity.h"

namespace mrtheta {

namespace {

// Strategy hook: given the joined base set and the candidate conditions
// that connect it to a new base (or any condition for the first step),
// return the index (into `query.conditions()`) to join on next.
using PickFn = std::function<int(const std::set<int>& joined,
                                 const std::vector<int>& candidates)>;

// Reduce-count hook: given the estimated logical input bytes of the step.
using ReducersFn = std::function<int(double input_bytes)>;

bool HasOffsetFreeEq(const Query& query, const std::vector<int>& thetas) {
  for (int t : thetas) {
    const JoinCondition& c = query.conditions()[t];
    if (c.op == ThetaOp::kEq && c.offset == 0.0) return true;
  }
  return false;
}

// Builds a left-deep pairwise cascade. Conditions between the new relation
// and *any* already-joined relation are bundled into the joining step, so
// cycle-closing conditions are never left dangling.
StatusOr<QueryPlan> BuildCascade(const Query& query, const PickFn& pick,
                                 const ReducersFn& reducers,
                                 bool shared_scans, bool text_serde,
                                 const std::string& strategy) {
  MRTHETA_RETURN_IF_ERROR(query.Validate());
  QueryPlan plan;
  plan.strategy = strategy;

  std::set<int> joined;
  std::set<int> scanned;
  std::vector<bool> used(query.num_conditions(), false);
  int prev_job = -1;

  auto base_bytes = [&](int b) {
    return static_cast<double>(query.relations()[b]->logical_bytes());
  };

  while (true) {
    // Candidates: unused conditions; before the first join any condition
    // qualifies, afterwards one endpoint must be joined and one not.
    std::vector<int> candidates;
    for (int t = 0; t < query.num_conditions(); ++t) {
      if (used[t]) continue;
      const JoinCondition& c = query.conditions()[t];
      const bool l_in = joined.count(c.lhs.relation) > 0;
      const bool r_in = joined.count(c.rhs.relation) > 0;
      if (joined.empty() || (l_in != r_in)) candidates.push_back(t);
    }
    if (candidates.empty()) break;
    const int chosen = pick(joined, candidates);
    const JoinCondition& c = query.conditions()[chosen];

    PlanJob job;
    double input_bytes = 0.0;
    if (joined.empty()) {
      // First step: base × base.
      job.inputs.push_back(PlanInput::Base(c.lhs.relation));
      job.inputs.push_back(PlanInput::Base(c.rhs.relation));
      joined.insert(c.lhs.relation);
      joined.insert(c.rhs.relation);
      input_bytes =
          base_bytes(c.lhs.relation) + base_bytes(c.rhs.relation);
      if (shared_scans) {
        scanned.insert(c.lhs.relation);
        scanned.insert(c.rhs.relation);
      }
      // Bundle every condition between the two relations.
      for (int t = 0; t < query.num_conditions(); ++t) {
        if (used[t]) continue;
        const JoinCondition& o = query.conditions()[t];
        if (joined.count(o.lhs.relation) && joined.count(o.rhs.relation)) {
          job.thetas.push_back(t);
          used[t] = true;
        }
      }
    } else {
      const int new_base = joined.count(c.lhs.relation)
                               ? c.rhs.relation
                               : c.lhs.relation;
      job.inputs.push_back(PlanInput::Job(prev_job));
      job.inputs.push_back(PlanInput::Base(new_base));
      // Intermediate size is unknown at plan time; approximate it by the
      // largest base joined so far (what Pig's 1-reducer-per-GB heuristic
      // would see).
      double joined_max = 0.0;
      for (int b : joined) joined_max = std::max(joined_max, base_bytes(b));
      input_bytes = base_bytes(new_base) + joined_max;
      if (shared_scans && scanned.count(new_base)) {
        job.scan_discount_bytes =
            static_cast<int64_t>(base_bytes(new_base));
      }
      if (shared_scans) scanned.insert(new_base);
      joined.insert(new_base);
      for (int t = 0; t < query.num_conditions(); ++t) {
        if (used[t]) continue;
        const JoinCondition& o = query.conditions()[t];
        if ((o.lhs.relation == new_base &&
             joined.count(o.rhs.relation)) ||
            (o.rhs.relation == new_base &&
             joined.count(o.lhs.relation))) {
          job.thetas.push_back(t);
          used[t] = true;
        }
      }
    }

    job.kind = HasOffsetFreeEq(query, job.thetas) ? PlanJobKind::kEquiJoin
                                                  : PlanJobKind::kThetaPair;
    job.name = strategy + "-step" + std::to_string(plan.jobs.size());
    job.num_reduce_tasks = std::max(1, reducers(input_bytes));
    job.text_serde = text_serde;
    plan.jobs.push_back(std::move(job));
    prev_job = static_cast<int>(plan.jobs.size()) - 1;
  }

  if (static_cast<int>(joined.size()) != query.num_relations()) {
    return Status::Internal("cascade failed to join all relations");
  }
  // Hive/Pig/YSmart all project early (column pruning is a stock rewrite
  // in each); annotating the baselines keeps the planner comparison about
  // *planning*, with every compared system shipping equally thin tuples.
  AnnotateRequiredColumns(query, &plan);
  return plan;
}

}  // namespace

StatusOr<QueryPlan> PlanHiveStyle(const Query& query,
                                  const SimCluster& cluster) {
  const int kp = cluster.config().num_workers;
  PickFn pick = [&query](const std::set<int>&,
                         const std::vector<int>& candidates) {
    // Equality joins first (hash-join friendly), otherwise written order.
    for (int t : candidates) {
      const JoinCondition& c = query.conditions()[t];
      if (c.op == ThetaOp::kEq && c.offset == 0.0) return t;
    }
    return candidates.front();
  };
  // Hive: always max reducers.
  ReducersFn reducers = [kp](double) { return kp; };
  return BuildCascade(query, pick, reducers, /*shared_scans=*/false,
                      /*text_serde=*/true, "hive");
}

StatusOr<QueryPlan> PlanPigStyle(const Query& query,
                                 const SimCluster& cluster) {
  const int kp = cluster.config().num_workers;
  // Any sane Pig script joins on equality keys first and applies theta
  // filters afterwards, like the Hive translation; Pig differs in its
  // default parallelism: one reducer per GB of input, capped.
  PickFn pick = [&query](const std::set<int>&,
                         const std::vector<int>& candidates) {
    for (int t : candidates) {
      const JoinCondition& c = query.conditions()[t];
      if (c.op == ThetaOp::kEq && c.offset == 0.0) return t;
    }
    return candidates.front();
  };
  ReducersFn reducers = [kp](double input_bytes) {
    const int by_size = static_cast<int>(
        std::ceil(input_bytes / static_cast<double>(kGiB)));
    return std::clamp(by_size, 1, kp);
  };
  return BuildCascade(query, pick, reducers, /*shared_scans=*/false,
                      /*text_serde=*/true, "pig");
}

StatusOr<QueryPlan> PlanYSmartStyle(const Query& query,
                                    const SimCluster& cluster,
                                    const StatsOptions& stats_options) {
  const int kp = cluster.config().num_workers;
  // Statistics for selectivity-aware ordering.
  std::vector<TableStats> stats;
  stats.reserve(query.num_relations());
  for (const RelationPtr& rel : query.relations()) {
    stats.push_back(BuildTableStats(*rel, stats_options));
  }
  PickFn pick = [&query, &stats](const std::set<int>&,
                                 const std::vector<int>& candidates) {
    // Most selective condition first (smallest estimated selectivity).
    int best = candidates.front();
    double best_sel = std::numeric_limits<double>::infinity();
    for (int t : candidates) {
      const JoinCondition& c = query.conditions()[t];
      const double sel = EstimateThetaSelectivity(
          stats[c.lhs.relation].column(c.lhs.column),
          stats[c.rhs.relation].column(c.rhs.column), c.op, c.offset);
      if (sel < best_sel) {
        best_sel = sel;
        best = t;
      }
    }
    return best;
  };
  ReducersFn reducers = [kp](double) { return kp; };
  return BuildCascade(query, pick, reducers, /*shared_scans=*/true,
                      /*text_serde=*/false, "ysmart");
}

}  // namespace mrtheta
