#ifndef MRTHETA_BASELINES_BASELINE_PLANNERS_H_
#define MRTHETA_BASELINES_BASELINE_PLANNERS_H_

#include "src/common/status.h"
#include "src/core/plan.h"
#include "src/core/query.h"
#include "src/mapreduce/sim_cluster.h"
#include "src/stats/table_stats.h"

namespace mrtheta {

/// \brief Competitor planner models (Sec. 6.3 / Sec. 7). All three compile
/// the query into a cascade of pair-wise join MRJs executed by the same
/// Executor, so differences in runtime isolate the *planning* behaviour:
///
///  - Hive-style: left-deep cascade, equality joins first (hash joins),
///    inequality joins as 1-Bucket-Theta cross jobs, and "always try to
///    employ as many Reduce tasks as possible" (kR = kP regardless of
///    resource pressure).
///  - Pig-style: joins strictly in the order conditions were written;
///    Pig's default parallelism heuristic (one reducer per GB of input,
///    capped by the cluster).
///  - YSmart-style: Hive's execution machinery plus (a) selectivity-aware
///    join ordering and (b) the common-MapReduce-framework optimization —
///    repeated scans of a base relation already read by an earlier job of
///    the same query are served by one shared scan (input-correlation
///    merging), modeled as a scan-bytes discount.
StatusOr<QueryPlan> PlanHiveStyle(const Query& query,
                                  const SimCluster& cluster);

StatusOr<QueryPlan> PlanPigStyle(const Query& query,
                                 const SimCluster& cluster);

StatusOr<QueryPlan> PlanYSmartStyle(const Query& query,
                                    const SimCluster& cluster,
                                    const StatsOptions& stats_options = {});

}  // namespace mrtheta

#endif  // MRTHETA_BASELINES_BASELINE_PLANNERS_H_
