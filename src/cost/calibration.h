#ifndef MRTHETA_COST_CALIBRATION_H_
#define MRTHETA_COST_CALIBRATION_H_

#include <vector>

#include "src/common/status.h"
#include "src/cost/cost_model.h"
#include "src/mapreduce/sim_cluster.h"

namespace mrtheta {

/// Options for the calibration probe campaign.
struct CalibrationOptions {
  /// Logical input size of probe jobs. Kept within one map wave
  /// (num_workers × block_size) so phase times can be read off directly.
  int64_t probe_input_bytes = 2 * kGiB;
  /// Per-map-task output volumes at which p is probed.
  std::vector<double> p_probe_task_output_bytes = {
      4.0 * kMiB,   16.0 * kMiB,  64.0 * kMiB,  256.0 * kMiB,
      512.0 * kMiB, 1024.0 * kMiB, 2048.0 * kMiB};
  /// Reduce-task counts at which q is probed.
  std::vector<int> q_probe_reducer_counts = {1, 2, 4, 8, 16, 32, 48, 64};
};

/// Result of calibration: fitted parameters plus the raw probe series
/// (the data behind Fig. 7(b)).
struct CalibrationReport {
  CostModelParams params;
  /// p probes: per-task map output volume -> fitted p (sec/byte).
  std::vector<double> p_volumes;
  std::vector<double> p_values;
  /// q probes: reducer count -> fitted q (sec per map task serving n).
  std::vector<double> q_counts;
  std::vector<double> q_values;
};

/// \brief Learns the cost-model parameters from observed executions of an
/// "output-controllable self-join program" on the simulated cluster,
/// following the paper's methodology (Sec. 6.2):
///
///  1. a near-zero-output job isolates C1 (sequential read cost);
///  2. output-size sweeps with one reducer isolate C1_write and C2;
///  3. a reducer-count sweep isolates q(n);
///  4. a map-output sweep isolates p(volume);
///  5. a comparison-heavy job isolates the CPU comparison rate.
///
/// The fit never reads the simulator's internal constants — only job
/// timings, exactly like measuring real Hadoop runs.
StatusOr<CalibrationReport> CalibrateCostModel(
    const SimCluster& cluster, const CalibrationOptions& options = {});

/// Runs one synthetic job described directly by logical volumes (no
/// physical tuples) and returns its standalone timing. Shared by the
/// calibrator and the Fig. 6 / Fig. 7(a) benches.
struct SyntheticJobSpec {
  double input_bytes = 0.0;
  double alpha = 0.0;
  int num_reduce_tasks = 1;
  double output_bytes = 0.0;
  double comparisons = 0.0;
  /// Relative reduce-input imbalance: task i gets
  /// avg · (1 + skew · z_i) with fixed unit-variance offsets z_i.
  double skew = 0.0;
};
StatusOr<SimJobResult> RunSyntheticJob(const SimCluster& cluster,
                                       const SyntheticJobSpec& spec);

}  // namespace mrtheta

#endif  // MRTHETA_COST_CALIBRATION_H_
