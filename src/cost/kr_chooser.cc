#include "src/cost/kr_chooser.h"

#include "src/common/status.h"

#include <cmath>
#include <limits>

#include "src/hilbert/hilbert.h"

namespace mrtheta {

KrChoice ChooseKrByDelta(std::span<const double> cardinalities, int kr_max,
                         double lambda) {
  MRTHETA_CHECK(!cardinalities.empty());
  const int d = static_cast<int>(cardinalities.size());
  double sum = 0.0, product = 1.0;
  for (double c : cardinalities) {
    sum += c;
    product *= std::max(1.0, c);
  }
  KrChoice best;
  best.delta = std::numeric_limits<double>::infinity();
  for (int k = 1; k <= kr_max; ++k) {
    const double dup = ApproxDuplicationFactor(d, k);
    const double delta = lambda * sum * dup + (1.0 - lambda) * product / k;
    if (delta < best.delta) {
      best.delta = delta;
      best.kr = k;
    }
  }
  return best;
}

KrChoice ChooseKrByCost(const CostModelParams& params,
                        const ClusterConfig& cluster,
                        const std::function<JobProfile(int)>& profile_for,
                        int kr_max, int slots) {
  KrChoice best;
  best.delta = std::numeric_limits<double>::infinity();
  for (int k = 1; k <= kr_max; ++k) {
    const JobProfile profile = profile_for(k);
    const CostBreakdown cost =
        PredictJobTime(params, cluster, profile, slots);
    if (cost.total < best.delta) {
      best.delta = cost.total;
      best.kr = k;
    }
  }
  return best;
}

double PowerFit::operator()(double x) const { return a * std::pow(x, b); }

PowerFit FitPowerLaw(std::span<const double> xs, std::span<const double> ys) {
  MRTHETA_CHECK(xs.size() == ys.size() && xs.size() >= 2);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    MRTHETA_CHECK(xs[i] > 0 && ys[i] > 0);
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  PowerFit fit;
  fit.b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  fit.a = std::exp((sy - fit.b * sx) / n);
  return fit;
}

}  // namespace mrtheta
