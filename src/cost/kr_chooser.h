#ifndef MRTHETA_COST_KR_CHOOSER_H_
#define MRTHETA_COST_KR_CHOOSER_H_

#include <functional>
#include <span>
#include <vector>

#include "src/cost/cost_model.h"

namespace mrtheta {

/// Result of the Δ minimization (Eq. 10).
struct KrChoice {
  int kr = 1;
  double delta = 0.0;
};

/// \brief Chooses the reduce-task count for a chain theta-join over
/// relations with the given logical cardinalities by minimizing
///   Δ(k) = λ · Score(f, k) + (1−λ) · Π|Ri| / k            (Eq. 10)
/// where Score uses the closed-form Hilbert duplication factor
/// k^((d−1)/d) (Eq. 9). Evaluated over k ∈ [1, kr_max].
KrChoice ChooseKrByDelta(std::span<const double> cardinalities, int kr_max,
                         double lambda = 0.4);

/// Cost-model-based alternative: argmin over k of the predicted job time,
/// with `profile_for(k)` supplying the k-dependent job profile.
KrChoice ChooseKrByCost(const CostModelParams& params,
                        const ClusterConfig& cluster,
                        const std::function<JobProfile(int)>& profile_for,
                        int kr_max, int slots);

/// Least-squares power-law fit y = a·x^b in log-log space — the dashed
/// fitting curve of Fig. 7(a). Requires positive xs/ys.
struct PowerFit {
  double a = 0.0;
  double b = 0.0;
  double operator()(double x) const;
};
PowerFit FitPowerLaw(std::span<const double> xs, std::span<const double> ys);

}  // namespace mrtheta

#endif  // MRTHETA_COST_KR_CHOOSER_H_
