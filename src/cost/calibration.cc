#include "src/cost/calibration.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/obs/trace.h"

namespace mrtheta {

namespace {

// Builds the JobMeasurement a synthetic job would have produced.
JobMeasurement SynthesizeMeasurement(const SyntheticJobSpec& s) {
  JobMeasurement m;
  m.input_bytes_logical = static_cast<int64_t>(s.input_bytes);
  m.map_output_bytes_logical = static_cast<int64_t>(s.alpha * s.input_bytes);
  const int n = std::max(1, s.num_reduce_tasks);
  const double avg =
      static_cast<double>(m.map_output_bytes_logical) / n;
  m.reduce_input_bytes_logical.resize(n);
  m.reduce_comparisons_logical.assign(n, s.comparisons / n);
  for (int i = 0; i < n; ++i) {
    // Deterministic unit-variance-ish offsets alternating around 0.
    const double z = (i % 2 == 0 ? 1.0 : -1.0) *
                     (0.5 + static_cast<double>(i) / (2.0 * n));
    m.reduce_input_bytes_logical[i] = static_cast<int64_t>(
        std::max(0.0, avg * (1.0 + s.skew * z)));
  }
  m.output_bytes_logical = static_cast<int64_t>(s.output_bytes);
  return m;
}

}  // namespace

StatusOr<SimJobResult> RunSyntheticJob(const SimCluster& cluster,
                                       const SyntheticJobSpec& spec) {
  MapReduceJobSpec job;
  job.name = "synthetic";
  job.num_reduce_tasks = std::max(1, spec.num_reduce_tasks);
  const JobMeasurement m = SynthesizeMeasurement(spec);
  const SimJobSpec sim = cluster.BuildSimJob(job, m);
  StatusOr<SimReport> report = RunSimulation(cluster.config(), {sim});
  if (!report.ok()) return report.status();
  return report->jobs[0];
}

StatusOr<CalibrationReport> CalibrateCostModel(
    const SimCluster& cluster, const CalibrationOptions& options) {
  MRTHETA_TRACE_SCOPE("calibrate", "planner");
  const ClusterConfig& cfg = cluster.config();
  const double si = static_cast<double>(options.probe_input_bytes);
  const int m = cluster.NumMapTasks(options.probe_input_bytes);
  if (m > cfg.num_workers) {
    return Status::InvalidArgument(
        "probe_input_bytes must fit one map wave for phase isolation");
  }
  const double in_per_task = si / m;
  CalibrationReport report;
  CostModelParams& p = report.params;

  auto run = [&](const SyntheticJobSpec& s) -> StatusOr<double> {
    StatusOr<SimJobResult> r = RunSyntheticJob(cluster, s);
    if (!r.ok()) return r.status();
    return ToSeconds(r->finish - r->release);
  };
  auto run_phases =
      [&](const SyntheticJobSpec& s) -> StatusOr<std::pair<double, double>> {
    StatusOr<SimJobResult> r = RunSyntheticJob(cluster, s);
    if (!r.ok()) return r.status();
    return std::make_pair(ToSeconds(r->maps_done - r->release),
                          ToSeconds(r->finish - r->maps_done));
  };

  // ---- Step 1: C1_read and startup from two zero-output jobs. The map
  // phase is startup + in_per_task·C1; inputs that are block multiples all
  // have in_per_task == block_size, so the second probe is a *sub-block*
  // job whose single map task reads half a block. ----
  {
    SyntheticJobSpec s;
    s.alpha = 0.0;
    s.input_bytes = si;
    auto big = run_phases(s);
    if (!big.ok()) return big.status();
    const double small_in_per_task =
        static_cast<double>(cluster.config().block_size) / 2.0;
    s.input_bytes = small_in_per_task;
    auto small = run_phases(s);
    if (!small.ok()) return small.status();
    p.c1_read_sec_per_byte =
        std::max(0.0, (big->first - small->first) /
                          (in_per_task - small_in_per_task));
    p.job_startup_sec =
        std::max(0.0, big->first - in_per_task * p.c1_read_sec_per_byte);
  }

  // ---- Step 2: q(n) and the per-reduce commit cost from zero-output
  // probes at two input sizes. Post-map time = m·q(n)/n + commit·n; the
  // q part scales with the map count, the commit part does not, so the
  // m-sweep separates them. ----
  {
    double commit_sum = 0.0;
    int commit_count = 0;
    std::vector<int> counts = options.q_probe_reducer_counts;
    if (std::find(counts.begin(), counts.end(), 1) == counts.end()) {
      counts.insert(counts.begin(), 1);
    }
    for (int n : counts) {
      if (n > cfg.num_workers) continue;
      SyntheticJobSpec s;
      s.alpha = 0.0;
      s.num_reduce_tasks = n;
      s.input_bytes = si;
      auto full = run_phases(s);
      if (!full.ok()) return full.status();
      s.input_bytes = si / 2;
      auto half = run_phases(s);
      if (!half.ok()) return half.status();
      const int m_half = cluster.NumMapTasks(static_cast<int64_t>(si / 2));
      const double q_n = std::max(
          0.0, (full->second - half->second) * n / (m - m_half));
      report.q_counts.push_back(static_cast<double>(n));
      report.q_values.push_back(q_n);
      const double commit =
          std::max(0.0, (full->second - m * q_n / n) / n);
      commit_sum += commit;
      ++commit_count;
    }
    p.q_conn = PiecewiseLinear(report.q_counts, report.q_values);
    p.commit_sec_per_reduce =
        commit_count > 0 ? commit_sum / commit_count : 0.0;
  }

  // ---- Step 3: C2 from an output-size sweep with one reducer (constant
  // overheads cancel in the slope). ----
  {
    const double b1 = 0.1 * si, b2 = 0.5 * si;
    SyntheticJobSpec s;
    s.input_bytes = si;
    s.num_reduce_tasks = 1;
    s.alpha = b1 / si;
    auto r1 = run_phases(s);
    if (!r1.ok()) return r1.status();
    s.alpha = b2 / si;
    auto r2 = run_phases(s);
    if (!r2.ok()) return r2.status();
    const double slope = (r2->second - r1->second) / (b2 - b1);
    p.c2_net_sec_per_byte = std::max(0.0, slope - p.c1_read_sec_per_byte);
  }

  // ---- Step 4: C1_write from an output-bytes sweep ----
  {
    SyntheticJobSpec s;
    s.input_bytes = si;
    s.num_reduce_tasks = 1;
    s.alpha = 0.1;
    s.output_bytes = 0.0;
    auto r1 = run(s);
    if (!r1.ok()) return r1.status();
    s.output_bytes = 0.5 * si;
    auto r2 = run(s);
    if (!r2.ok()) return r2.status();
    p.c1_write_sec_per_byte =
        std::max(0.0, (*r2 - *r1) / s.output_bytes);
  }

  // ---- Step 5: p(volume) sweep ----
  {
    for (double s_out : options.p_probe_task_output_bytes) {
      SyntheticJobSpec s;
      s.input_bytes = si;
      s.num_reduce_tasks = 1;
      s.alpha = s_out * m / si;
      auto phases = run_phases(s);
      if (!phases.ok()) return phases.status();
      const double t_m = phases->first - p.job_startup_sec;
      const double fitted =
          (t_m - in_per_task * p.c1_read_sec_per_byte) / s_out;
      report.p_volumes.push_back(s_out);
      report.p_values.push_back(std::max(0.0, fitted));
    }
    p.p_spill = PiecewiseLinear(report.p_volumes, report.p_values);
  }

  // ---- Step 6: comparison rate ----
  {
    SyntheticJobSpec s;
    s.input_bytes = si;
    s.num_reduce_tasks = 1;
    s.alpha = 0.1;
    auto base = run(s);
    if (!base.ok()) return base.status();
    s.comparisons = 1e9;
    auto loaded = run(s);
    if (!loaded.ok()) return loaded.status();
    const double delta = *loaded - *base;
    // When the cluster does not charge comparison CPU (the paper's
    // I/O-dominated model), the probe shows no slowdown and the CPU term
    // drops out of the fitted model entirely.
    p.comparisons_per_sec = delta > 1e-6
                                ? s.comparisons / delta
                                : std::numeric_limits<double>::infinity();
  }

  return report;
}

}  // namespace mrtheta
