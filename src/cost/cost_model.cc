#include "src/cost/cost_model.h"

#include "src/common/status.h"

#include <algorithm>
#include <cmath>

namespace mrtheta {

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs,
                                 std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  MRTHETA_CHECK(xs_.size() == ys_.size() && !xs_.empty());
  for (size_t i = 1; i < xs_.size(); ++i) MRTHETA_CHECK(xs_[i] > xs_[i - 1]);
}

double PiecewiseLinear::operator()(double x) const {
  if (xs_.empty()) return 0.0;
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) {
    // Extrapolate with the last segment's slope (p and q keep growing with
    // volume / connection count beyond the calibrated range).
    if (xs_.size() == 1) return ys_.back();
    const size_t k = xs_.size() - 1;
    const double slope =
        (ys_[k] - ys_[k - 1]) / (xs_[k] - xs_[k - 1]);
    return ys_[k] + slope * (x - xs_[k]);
  }
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const size_t hi = static_cast<size_t>(it - xs_.begin());
  const size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

CostBreakdown PredictJobTime(const CostModelParams& params,
                             const ClusterConfig& cluster,
                             const JobProfile& profile, int slots) {
  CostBreakdown out;
  slots = std::max(1, slots);
  const double si = std::max(1.0, profile.input_bytes);
  const int m = static_cast<int>(
      std::max<int64_t>(1, (static_cast<int64_t>(si) + cluster.block_size -
                            1) /
                               cluster.block_size));
  const int n = std::max(1, profile.num_reduce_tasks);

  // ---- Map phase: Eq. (1)-(2) ----
  const double in_per_task = si / m;
  const double out_per_task = profile.alpha * si / m;
  out.t_map_task = in_per_task * params.c1_read_sec_per_byte +
                   out_per_task * params.p_spill(out_per_task);
  out.map_waves = (m + slots - 1) / slots;
  out.jm = out.t_map_task * out.map_waves;

  // ---- Copy phase: Eq. (3)-(4), overlapped with map waves ----
  // Biggest reducer by the "three sigmas" rule (Sec. 4.1).
  const double bytes_avg = profile.alpha * si / n;
  const double s_star = bytes_avg + 3.0 * profile.sigma_reduce_bytes;
  const double fetch = s_star * params.c2_net_sec_per_byte +
                       m * params.q_conn(static_cast<double>(n)) / n;
  const double overlap = out.jm - out.t_map_task;
  out.copy_after_maps = std::max(0.0, fetch - overlap);

  // ---- Reduce phase: Eq. (5) ----
  const double skew_ratio = bytes_avg > 0 ? s_star / bytes_avg : 1.0;
  const double comps_star = profile.comparisons_total / n * skew_ratio;
  const double out_per_reduce = profile.output_bytes / n;
  out.t_reduce_task = s_star * params.c1_read_sec_per_byte +
                      comps_star / params.comparisons_per_sec +
                      out_per_reduce * params.c1_write_sec_per_byte;
  out.reduce_waves = (n + slots - 1) / slots;
  out.jr = out.t_reduce_task * out.reduce_waves;

  // ---- Total: Eq. (6) — the overlap case analysis is absorbed into
  // copy_after_maps (fetch streams during later map waves). ----
  out.total = params.job_startup_sec + out.jm + out.copy_after_maps +
              out.jr + params.commit_sec_per_reduce * n;
  return out;
}

}  // namespace mrtheta
