#ifndef MRTHETA_COST_COST_MODEL_H_
#define MRTHETA_COST_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/mapreduce/cluster_config.h"

namespace mrtheta {

/// Piecewise-linear table y(x): linear interpolation between sorted knots,
/// clamped at the ends. Used for the fitted p(·) and q(·) behaviours.
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;
  /// `xs` strictly increasing, same length as `ys` (>= 1 point).
  PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

  double operator()(double x) const;
  bool empty() const { return xs_.empty(); }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// \brief Fitted parameters of the paper's cost model (Section 4).
///
/// C1/C2 are the disk and network constants; p is the spill cost (a
/// function of per-map-task output volume); q the connection-serving
/// overhead (a function of the reduce task count). These are *learned from
/// observed job executions* by `CalibrateCostModel` — the cost model never
/// reads the simulator's ground-truth constants directly.
struct CostModelParams {
  double c1_read_sec_per_byte = 0.0;
  double c1_write_sec_per_byte = 0.0;
  double c2_net_sec_per_byte = 0.0;
  double comparisons_per_sec = 1.0;
  PiecewiseLinear p_spill;  ///< sec/byte vs map-output bytes per task
  PiecewiseLinear q_conn;   ///< sec vs reduce task count (per map task)
  /// Fitted fixed per-job overhead (startup/teardown).
  double job_startup_sec = 0.0;
  /// Fitted serial commit cost per reduce output.
  double commit_sec_per_reduce = 0.0;
  /// λ of Eq. (10): weight of the network-volume term vs the per-reducer
  /// workload term. The paper observes λ ∈ (0.38, 0.46) and fixes 0.4.
  double lambda = 0.4;
};

/// Profile of a prospective MRJ, assembled from statistics (planner path)
/// or from measurements (validation path).
struct JobProfile {
  double input_bytes = 0.0;        ///< SI
  double alpha = 0.0;              ///< map output ratio (incl. duplication)
  double output_bytes = 0.0;       ///< β·SI in the paper's terms
  double sigma_reduce_bytes = 0.0; ///< σ of reduce-task input volume
  double comparisons_total = 0.0;  ///< Σ logical comparisons, all reducers
  int num_reduce_tasks = 1;        ///< n (= RN(MRJ))
};

/// Predicted phase breakdown for one MRJ (all in seconds).
struct CostBreakdown {
  double t_map_task = 0.0;   ///< t_M (Eq. 1)
  double jm = 0.0;           ///< map-phase span (Eq. 2)
  double copy_after_maps = 0.0;  ///< non-overlapped shuffle tail (Eq. 3/4/6)
  double t_reduce_task = 0.0;    ///< slowest reduce task (Eq. 5, 3σ rule)
  double jr = 0.0;           ///< reduce-phase span incl. waves
  double total = 0.0;        ///< T (Eq. 6)
  int map_waves = 1;
  int reduce_waves = 1;
};

/// \brief Predicts the execution time of one MRJ on `slots` processing
/// units, following Eq. (1)–(6) with the 3σ biggest-reducer rule.
CostBreakdown PredictJobTime(const CostModelParams& params,
                             const ClusterConfig& cluster,
                             const JobProfile& profile, int slots);

}  // namespace mrtheta

#endif  // MRTHETA_COST_COST_MODEL_H_
