#include "src/core/executor.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "src/exec/hilbert_join.h"
#include "src/exec/merge_join.h"
#include "src/exec/pairwise_join.h"
#include "src/mem/memory_budget.h"
#include "src/mem/spill.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/runtime/dag_scheduler.h"
#include "src/runtime/parallel_job_runner.h"
#include "src/runtime/thread_pool.h"

namespace mrtheta {

namespace {

// Resolves one plan input into a JoinSide. Base inputs carry the query's
// single-relation selections as a compiled map-side filter (selection
// pushdown below the first shuffle).
StatusOr<JoinSide> ResolveInput(const Query& query,
                                const std::vector<JobExecution>& done,
                                const PlanInput& input) {
  if (input.is_base()) {
    if (input.base >= query.num_relations()) {
      return Status::InvalidArgument("plan input base out of range");
    }
    JoinSide side =
        JoinSide::ForBase(query.relations()[input.base], input.base);
    side.filter = CompiledRowFilter::CompileFor(
        input.base, query.filters(), query.relations()[input.base]);
    return side;
  }
  if (input.job < 0 || input.job >= static_cast<int>(done.size()) ||
      done[input.job].output == nullptr) {
    return Status::InvalidArgument(
        "plan input references a job that has not run (plans must be in "
        "topological order)");
  }
  return JoinSide::ForIntermediate(done[input.job].output,
                                   done[input.job].covered_bases);
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

StatusOr<ExecutionResult> Executor::Execute(const Query& query,
                                            const QueryPlan& plan,
                                            uint64_t seed) const {
  ThreadPool pool(std::max(1, options_.num_threads));
  return RunOn(pool, query, plan, seed);
}

StatusOr<ExecutionResult> Executor::ExecuteOn(ThreadPool& pool,
                                              const Query& query,
                                              const QueryPlan& plan,
                                              uint64_t seed) const {
  const int num_threads =
      std::max(1, std::min(options_.num_threads, pool.num_threads()));
  if (num_threads < pool.num_threads()) {
    // A cap below the shared pool's width must bound *intra-job* map and
    // reduce fan-out too, not just the DAG concurrency — split planning
    // and ParallelFor both follow the pool — so run on a pool of exactly
    // the capped width.
    ThreadPool capped(num_threads);
    return RunOn(capped, query, plan, seed);
  }
  return RunOn(pool, query, plan, seed);
}

StatusOr<ExecutionResult> Executor::RunOn(ThreadPool& pool,
                                          const Query& query,
                                          const QueryPlan& plan,
                                          uint64_t seed) const {
  MRTHETA_RETURN_IF_ERROR(query.Validate());
  MRTHETA_RETURN_IF_ERROR(options_.fault_plan.Validate());
  MRTHETA_RETURN_IF_ERROR(options_.retry.Validate());
  MRTHETA_RETURN_IF_ERROR(options_.speculation.Validate());
  if (options_.mem_budget_bytes < 0) {
    return Status::InvalidArgument("mem_budget_bytes must be >= 0");
  }
  if (plan.jobs.empty()) {
    return Status::InvalidArgument("plan has no jobs");
  }
  const int num_jobs = static_cast<int>(plan.jobs.size());

  // Dependency edges: plan jobs reference earlier jobs' outputs. A forward
  // or out-of-range reference is the "not topological" error the body would
  // otherwise hit racily.
  std::vector<std::vector<int>> deps(num_jobs);
  for (int i = 0; i < num_jobs; ++i) {
    for (const PlanInput& in : plan.jobs[i].inputs) {
      if (in.is_base()) continue;
      if (in.job < 0 || in.job >= i) {
        return Status::InvalidArgument(
            "plan input references a job that has not run (plans must be in "
            "topological order)");
      }
      deps[i].push_back(in.job);
    }
  }

  ExecutionResult result;
  result.jobs.resize(num_jobs);
  std::vector<SimJobSpec> sim_jobs(num_jobs);
  const KernelPolicy policy = options_.enable_specialized_kernels
                                  ? KernelPolicy::kAuto
                                  : KernelPolicy::kGenericOnly;
  // Thread budget: the pool owns num_threads - 1 workers; each in-flight
  // DAG job adds one coordinating thread that spends its time claiming
  // tasks inside ParallelFor (caller participation — the property that
  // makes nested fan-out deadlock-free). Sustained compute threads are
  // therefore ~num_threads; the worst case (every job simultaneously in
  // its sequential shuffle merge) is transient. See docs/RUNTIME.md.
  const int num_threads = pool.num_threads();

  // Fault-tolerance machinery (docs/RUNTIME.md "Fault tolerance"). The
  // plan-level token chains to the caller's (ThetaEngine::Submit) token;
  // it is cancelled on the first real job failure so in-flight sibling
  // jobs stop at their next task boundary instead of finishing doomed
  // work.
  const bool chaos = options_.fault_plan.enabled();
  const FaultInjector injector(options_.fault_plan);
  CancellationToken plan_cancel(options_.cancel_token);

  // Memory budget (docs/MEMORY.md): an explicit option wins; 0 inherits the
  // process-wide limit ($MRTHETA_MEM_BUDGET). The spill directory lives on
  // this stack frame, so its destructor sweeps every spill file on success,
  // failure and cancellation alike; it is created lazily, so unbudgeted and
  // never-spilling runs touch the filesystem not at all.
  const int64_t mem_budget = options_.mem_budget_bytes > 0
                                 ? options_.mem_budget_bytes
                                 : MemoryBudget::Global().limit_bytes();
  const bool budgeted = mem_budget > 0;
  SpillDirectory spill_dir;

  // Fault accounting must survive *failed* executions too — a run that
  // exhausted its retries or was cancelled mid-flight still injected
  // faults and wasted attempt seconds, and the session metrics
  // (ExecutorOptions::fault_report) need to see them even though no
  // ExecutionResult is returned. Each finished job merges its report into
  // this plan-level accumulator (NOT read back from `result`, which the
  // success path moves out of before scope exit), and a scope guard
  // publishes it on every return path; by destructor time all job bodies
  // have joined (the sequential loop and RunDag both complete before
  // returning), so the read is race-free.
  Mutex plan_faults_mu;
  FaultReport plan_faults;
  struct FaultPublisher {
    const FaultReport& faults;
    FaultReport* out;
    ~FaultPublisher() {
      if (out != nullptr) out->Merge(faults);
    }
  } fault_publisher{plan_faults, options_.fault_report};

  // Runs plan job `i`; deps are complete when the DAG scheduler calls this,
  // and it writes only slot `i` of result.jobs / sim_jobs.
  auto run_job_body = [&](int i) -> Status {
    if (plan_cancel.cancelled()) {
      return Status::Cancelled("plan job " + std::to_string(i) +
                               " cancelled before start");
    }
    const PlanJob& pj = plan.jobs[i];
    TraceSpan job_span("plan-job", "executor");
    job_span.Arg("index", static_cast<int64_t>(i))
        .Arg("kind", PlanJobKindName(pj.kind));
    // Resolve inputs.
    std::vector<JoinSide> sides;
    std::vector<int> dep_jobs;
    for (const PlanInput& in : pj.inputs) {
      StatusOr<JoinSide> side = ResolveInput(query, result.jobs, in);
      if (!side.ok()) return side.status();
      sides.push_back(*std::move(side));
      if (!in.is_base()) dep_jobs.push_back(in.job);
    }

    // Build the MapReduce job.
    StatusOr<MapReduceJobSpec> spec = Status::Internal("unset");
    HilbertJoinPlanInfo hilbert_info;
    switch (pj.kind) {
      case PlanJobKind::kHilbertJoin: {
        MultiwayJoinJobSpec mw;
        mw.name = pj.name.empty() ? "hilbert-join" : pj.name;
        mw.inputs = sides;
        mw.base_relations = query.relations();
        mw.conditions = query.ConditionsById(pj.thetas);
        mw.num_reduce_tasks = pj.num_reduce_tasks;
        mw.seed = seed + i * 7919;
        mw.kernel_policy = policy;
        // kAuto defers to the planner's per-job skew flag; the builder
        // only ever sees on/off.
        const bool skew_on =
            options_.skew_handling == SkewHandling::kForce ||
            (options_.skew_handling == SkewHandling::kAuto &&
             pj.skew_handling);
        mw.skew_handling =
            skew_on ? SkewHandling::kForce : SkewHandling::kOff;
        mw.output_columns = pj.output_columns;
        spec = BuildHilbertJoinJob(mw, &hilbert_info);
        break;
      }
      case PlanJobKind::kEquiJoin:
      case PlanJobKind::kThetaPair: {
        if (sides.size() != 2) {
          return Status::InvalidArgument("pairwise job needs two inputs");
        }
        PairwiseJoinJobSpec pw;
        pw.name = pj.name.empty() ? "pairwise-join" : pj.name;
        pw.left = sides[0];
        pw.right = sides[1];
        pw.base_relations = query.relations();
        pw.conditions = query.ConditionsById(pj.thetas);
        pw.num_reduce_tasks = pj.num_reduce_tasks;
        pw.seed = seed + i * 7919;
        pw.kernel_policy = policy;
        pw.sort_kernel_min_pairs = options_.sort_kernel_min_pairs;
        pw.output_columns = pj.output_columns;
        spec = pj.kind == PlanJobKind::kEquiJoin ? BuildEquiJoinJob(pw)
                                                 : BuildOneBucketThetaJob(pw);
        break;
      }
      case PlanJobKind::kMerge: {
        if (sides.size() != 2) {
          return Status::InvalidArgument("merge job needs two inputs");
        }
        MergeJobSpec mg;
        mg.name = pj.name.empty() ? "merge" : pj.name;
        mg.left = sides[0];
        mg.right = sides[1];
        mg.base_relations = query.relations();
        mg.num_reduce_tasks = pj.num_reduce_tasks;
        mg.kernel_policy = policy;
        mg.sort_kernel_min_pairs = options_.sort_kernel_min_pairs;
        mg.output_columns = pj.output_columns;
        spec = BuildMergeJob(mg);
        break;
      }
    }
    if (!spec.ok()) return spec.status();
    spec->text_serde = pj.text_serde;
    if (pj.map_side_combine) spec->combine = MakeDedupCombiner();
    job_span.Arg("job", spec->name);

    const auto job_start = std::chrono::steady_clock::now();
    // Chaos and memory budgets route even single-threaded plans through
    // the parallel runner (byte-identical to the sequential reference on a
    // 1-thread pool) — RunJobPhysically has neither an injection point nor
    // the spill machinery.
    FaultReport job_faults;
    ParallelRunnerOptions popts;
    if (chaos) {
      popts.injector = &injector;
      popts.retry = options_.retry;
      popts.speculation = options_.speculation;
    }
    popts.cancel = &plan_cancel;
    popts.fault_report = &job_faults;
    if (budgeted) {
      popts.mem_budget_bytes = mem_budget;
      popts.spill_dir = &spill_dir;
    }
    StatusOr<PhysicalJobResult> phys =
        (num_threads > 1 || chaos || budgeted)
            ? RunJobParallel(*spec, pool, popts)
            : RunJobPhysically(*spec);
    // Keep the fault accounting even when the job failed: the runner
    // published everything it injected/retried into job_faults, and the
    // plan-level FaultPublisher reads it from this slot.
    result.jobs[i].faults = job_faults;
    if (!phys.ok()) return phys.status();

    JobExecution& exec = result.jobs[i];
    exec.name = spec->name;
    exec.input_jobs = dep_jobs;
    exec.kind = pj.kind;
    exec.reduce_tasks = spec->num_reduce_tasks;
    exec.kernel = spec->kernel;
    exec.metrics = phys->metrics;
    exec.spill_bytes = phys->spill_bytes;
    exec.spill_files = phys->spill_files;
    exec.wall_seconds = SecondsSince(job_start);
    if (pj.kind == PlanJobKind::kHilbertJoin) {
      exec.skew_residual_tasks = hilbert_info.skew.residual_tasks;
      exec.skew_heavy_tasks = hilbert_info.skew.heavy_tasks;
      exec.skew_heavy_groups =
          static_cast<int>(hilbert_info.skew.groups.size());
    }
    exec.output = phys->output;
    // Covered bases = union of the inputs' coverage.
    std::set<int> bases;
    for (const JoinSide& side : sides) {
      bases.insert(side.bases.begin(), side.bases.end());
    }
    exec.covered_bases.assign(bases.begin(), bases.end());

    // Shared-scan discount (YSmart-style plans): repeated scans of a base
    // relation are served by one physical scan.
    if (pj.scan_discount_bytes > 0) {
      exec.metrics.input_bytes_logical =
          std::max<int64_t>(cluster_->config().block_size,
                            exec.metrics.input_bytes_logical -
                                pj.scan_discount_bytes);
    }

    // The final job writes the query's *projection*, not materialized
    // intermediate rows — every compared system benefits identically.
    if (i + 1 == num_jobs && !query.outputs().empty()) {
      int64_t projected_width = 4;  // record framing
      for (const OutputColumn& out : query.outputs()) {
        projected_width += query.relations()[out.base]
                               ->schema()
                               .column(out.column)
                               .avg_width;
      }
      exec.metrics.output_bytes_logical = static_cast<int64_t>(
          std::min(exec.metrics.output_rows_logical *
                       static_cast<double>(projected_width),
                   9.0e18));
    }

    sim_jobs[i] = cluster_->BuildSimJob(*spec, exec.metrics, dep_jobs);
    return Status::OK();
  };
  // A real (non-cancellation) failure cancels the in-flight siblings; the
  // DAG scheduler then reports the lowest-index non-cancelled failure.
  auto run_job = [&](int i) -> Status {
    Status s = run_job_body(i);
    {
      MutexLock lock(&plan_faults_mu);
      plan_faults.Merge(result.jobs[i].faults);
    }
    if (!s.ok() && !s.IsCancelled()) plan_cancel.Cancel();
    return s;
  };

  const auto plan_start = std::chrono::steady_clock::now();
  if (num_threads == 1) {
    // Sequential reference path: plan order, byte-identical to the
    // pre-runtime executor.
    for (int i = 0; i < num_jobs; ++i) {
      MRTHETA_RETURN_IF_ERROR(run_job(i));
    }
  } else {
    // Jobs with disjoint deps overlap; map/reduce tasks within each job
    // share the pool.
    MRTHETA_RETURN_IF_ERROR(RunDag(deps, num_threads, run_job));
  }
  result.measured_seconds = SecondsSince(plan_start);
  for (const JobExecution& exec : result.jobs) {
    result.sim_shuffle_bytes += exec.metrics.map_output_bytes_logical;
    result.fault_report.Merge(exec.faults);
    result.spill_bytes += exec.spill_bytes;
    result.spill_files += exec.spill_files;
  }
  result.peak_mem_bytes = MemoryBudget::Global().peak_bytes();

  // Replay the DAG through the discrete-event engine.
  StatusOr<SimReport> report = RunSimulation(cluster_->config(), sim_jobs);
  if (!report.ok()) return report.status();
  result.makespan = report->makespan;
  for (int i = 0; i < num_jobs; ++i) {
    result.jobs[i].timing = report->jobs[i];
  }

  // Final result: the last job's output.
  const JobExecution& last = result.jobs.back();
  result.result_ids = last.output;
  result.covered_bases = last.covered_bases;

  double cross = 1.0;
  for (const RelationPtr& rel : query.relations()) {
    cross *= static_cast<double>(std::max<int64_t>(1, rel->logical_rows()));
  }
  result.result_selectivity =
      static_cast<double>(last.output->logical_rows()) / cross;

  if (!query.outputs().empty()) {
    StatusOr<Relation> projected =
        ProjectResult(*last.output, last.covered_bases, query.relations(),
                      query.outputs());
    if (!projected.ok()) return projected.status();
    result.projected = std::make_shared<Relation>(*std::move(projected));
  }
  return result;
}

QueryProfile QueryResult::profile() const {
  QueryProfile profile = BuildQueryProfile(execution_);
  profile.plan_cache_hit = plan_cache_hit_;
  return profile;
}

}  // namespace mrtheta
