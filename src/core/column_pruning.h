#ifndef MRTHETA_CORE_COLUMN_PRUNING_H_
#define MRTHETA_CORE_COLUMN_PRUNING_H_

#include <vector>

#include "src/core/plan.h"
#include "src/core/query.h"

namespace mrtheta {

/// Columns of base relation `base` that must still be materialized when the
/// conditions whose θ ids are in `pending_thetas` plus the query's
/// projection lie downstream: every pending condition endpoint on `base`
/// and every projected column of `base`. Ascending and unique; empty when
/// the base only rides along as a record ID.
std::vector<int> RequiredColumnsForBase(const Query& query, int base,
                                        const std::vector<int>& pending_thetas);

/// θ ids of `query` NOT covered by `applied_mask` (bitmask over condition
/// ids) — the conditions a plan position still has ahead of it.
std::vector<int> PendingThetas(const Query& query, uint32_t applied_mask);

/// \brief Required-column analysis over a plan DAG (docs/EXECUTOR.md
/// "Column pruning & selection pushdown").
///
/// Walks `plan`'s jobs in topological order, accumulating per job the set
/// of conditions already applied on its path (its own thetas plus,
/// transitively, its input jobs'); the conditions still pending after a job
/// plus the query's projection determine the minimal column set each
/// covered base must carry in that job's output. The result is recorded on
/// PlanJob::output_columns, which the executor threads into the join-job
/// builders: intermediate schemas take pruned per-base widths, map emit
/// bytes shrink, and the simulator/cost model see the thinner tuples.
/// Physical rows and rids are untouched — results are byte-identical with
/// and without annotation.
void AnnotateRequiredColumns(const Query& query, QueryPlan* plan);

}  // namespace mrtheta

#endif  // MRTHETA_CORE_COLUMN_PRUNING_H_
