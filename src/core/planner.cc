#include "src/core/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "src/core/column_pruning.h"
#include "src/cost/kr_chooser.h"
#include "src/obs/trace.h"
#include "src/exec/hilbert_join.h"
#include "src/hilbert/hilbert.h"
#include "src/sched/malleable.h"
#include "src/sched/set_cover.h"
#include "src/stats/selectivity.h"

namespace mrtheta {

namespace {

// Planned map-shuffle width of base relation `r` read at the bottom of a
// plan (every condition on it still pending): the pruned base row when
// pruning is on, else the full row. Mirrors the executors'
// SideShuffleBytes for base sides.
int64_t PlannedInputWidth(const Query& query, int r, bool prune) {
  const Schema& schema = query.relations()[r]->schema();
  if (!prune) return schema.avg_row_bytes();
  return PrunedRowBytes(
      schema, RequiredColumnsForBase(query, r,
                                     PendingThetas(query, /*applied_mask=*/0)));
}

// Planned materialized width of base `r` in an intermediate produced after
// `applied` conditions: columns of the still-pending conditions plus the
// projection. Mirrors MakeIntermediateSchema under AnnotateRequiredColumns.
int64_t PlannedOutputWidth(const Query& query, int r,
                           const std::vector<int>& applied, bool prune) {
  const Schema& schema = query.relations()[r]->schema();
  if (!prune) return schema.avg_row_bytes();
  uint32_t applied_mask = 0;
  for (int t : applied) applied_mask |= 1u << t;
  return PrunedRowBytes(
      schema, RequiredColumnsForBase(query, r,
                                     PendingThetas(query, applied_mask)));
}

}  // namespace

Planner::Planner(const SimCluster* cluster, CostModelParams params,
                 PlannerOptions options)
    : cluster_(cluster), params_(std::move(params)), options_(options) {
  params_.lambda = options_.lambda;
}

int Planner::MaxReduceTasks() const {
  const int kp = cluster_->config().num_workers;
  return options_.max_reduce_tasks > 0
             ? std::min(options_.max_reduce_tasks, kp)
             : kp;
}

TableStats Planner::CollectStatsForRelation(const Relation& rel) const {
  TraceSpan span("collect-stats", "planner");
  if (span.enabled()) span.Arg("relation", rel.name());
  StatsOptions so = options_.stats;
  so.seed = options_.seed;
  TableStats ts = BuildTableStats(rel, so);
  // The planner's output estimates live in the β frame (DESIGN.md §1.1):
  // selectivities describe the *physical sample*, so key-like columns
  // must not be extrapolated past the sample's domain here.
  for (ColumnStats& cs : ts.columns) {
    cs.distinct = std::min(
        cs.distinct,
        static_cast<double>(std::max<int64_t>(1, rel.num_rows())));
  }
  return ts;
}

std::vector<TableStats> Planner::CollectStats(const Query& query) const {
  std::vector<TableStats> stats;
  stats.reserve(query.num_relations());
  for (const RelationPtr& rel : query.relations()) {
    stats.push_back(CollectStatsForRelation(*rel));
  }
  return stats;
}

namespace {

// A 2-relation candidate with an offset-free equality evaluates as a
// repartition equi-join: the key is the shuffle key, no tuple duplication.
bool IsEquiPair(const Query& query, const std::vector<int>& relations,
                const std::vector<int>& thetas) {
  if (relations.size() != 2) return false;
  for (int t : thetas) {
    const JoinCondition& c = query.conditions()[t];
    if (c.op == ThetaOp::kEq && c.offset == 0.0) return true;
  }
  return false;
}

}  // namespace

JobProfile Planner::CandidateProfile(const Query& query,
                                     const std::vector<TableStats>& stats,
                                     const std::vector<int>& relations,
                                     const std::vector<int>& thetas,
                                     int kr) const {
  JobProfile profile;
  profile.num_reduce_tasks = kr;
  const int d = static_cast<int>(relations.size());
  // Duplication follows the *fused* dimensionality: relations connected by
  // equality share a hash dimension and are not replicated along it
  // (Eq. 9 with d = number of dimension groups).
  const std::vector<JoinCondition> fuse_conds = query.ConditionsById(thetas);
  std::vector<std::vector<int>> input_bases;
  input_bases.reserve(relations.size());
  for (int r : relations) input_bases.push_back({r});
  const DimensionGrouping grouping =
      ComputeDimensionGrouping(input_bases, fuse_conds);
  const bool equi_pair = IsEquiPair(query, relations, thetas);
  const double dup = ApproxDuplicationFactor(grouping.num_dims, kr);

  const bool prune = options_.enable_column_pruning;
  double si = 0.0;
  double out_row_bytes = 0.0;
  double pruned_in = 0.0;
  for (int r : relations) {
    si += static_cast<double>(stats[r].logical_bytes);
    out_row_bytes += static_cast<double>(
        PlannedOutputWidth(query, r, thetas, prune));
    pruned_in += static_cast<double>(stats[r].logical_rows) *
                 static_cast<double>(PlannedInputWidth(query, r, prune));
  }
  // A candidate covering every condition produces the final result, which
  // is written in the query's projected width (see Executor).
  if (static_cast<int>(thetas.size()) == query.num_conditions() &&
      !query.outputs().empty()) {
    out_row_bytes = 4.0;
    for (const OutputColumn& out : query.outputs()) {
      out_row_bytes +=
          query.relations()[out.base]->schema().column(out.column).avg_width;
    }
  }
  profile.input_bytes = si;
  // Maps read full rows (SI) but shuffle only the pruned payload: α shrinks
  // by the pruned/full byte ratio so the modeled map-output and reduce-input
  // volumes track the executors' thinner tuples.
  profile.alpha = dup * (si > 0.0 ? std::min(1.0, pruned_in / si) : 1.0);

  std::vector<const TableStats*> stat_ptrs;
  stat_ptrs.reserve(stats.size());
  for (const TableStats& ts : stats) stat_ptrs.push_back(&ts);
  const std::vector<JoinCondition> conds = query.ConditionsById(thetas);
  // β-extrapolated output estimate, mirroring the executors: the physical
  // sample fixes the joint-selectivity shape; results scale linearly with
  // the represented volume (DESIGN.md §1).
  const double sel = EstimateConjunctionSelectivity(conds, stat_ptrs);
  double phys_cross = 1.0;
  double max_scale = 1.0;
  for (int r : relations) {
    const Relation& rel = *query.relations()[r];
    phys_cross *= static_cast<double>(std::max<int64_t>(1, rel.num_rows()));
    if (rel.num_rows() > 0) {
      max_scale = std::max(
          max_scale, static_cast<double>(rel.logical_rows()) /
                         static_cast<double>(rel.num_rows()));
    }
  }
  const double out_rows = sel * phys_cross * max_scale;
  profile.output_bytes = out_rows * out_row_bytes;

  // Hash partitioning (equi pairs and fused hash dimensions) inherits key
  // skew; pure Hilbert dimensions balance by construction (Theorem 2).
  const double avg_reduce_bytes = profile.alpha * si / kr;
  const bool hash_partitioned = equi_pair || grouping.num_dims < d;
  const double sigma_frac = hash_partitioned
                                ? 3.0 * options_.hilbert_sigma_frac
                                : options_.hilbert_sigma_frac;
  profile.sigma_reduce_bytes = sigma_frac * avg_reduce_bytes;

  // Trail-order backtracking work estimate: each surviving prefix scans the
  // next relation's local (per-component) portion; see DESIGN.md.
  std::set<int> placed = {relations[0]};
  double prefix_rows =
      static_cast<double>(std::max<int64_t>(1, stats[relations[0]].logical_rows));
  double comps = 0.0;
  for (int j = 1; j < d; ++j) {
    const int r = relations[j];
    const double r_rows =
        static_cast<double>(std::max<int64_t>(1, stats[r].logical_rows));
    comps += prefix_rows * r_rows * dup;
    double step_sel = 1.0;
    for (const JoinCondition& cond : conds) {
      const bool touches_r =
          cond.lhs.relation == r || cond.rhs.relation == r;
      const int other =
          cond.lhs.relation == r ? cond.rhs.relation : cond.lhs.relation;
      if (touches_r && placed.count(other)) {
        step_sel *= EstimateThetaSelectivity(
            stats[cond.lhs.relation].column(cond.lhs.column),
            stats[cond.rhs.relation].column(cond.rhs.column), cond.op,
            cond.offset);
      }
    }
    prefix_rows = std::max(1.0, prefix_rows * r_rows * step_sel);
    placed.insert(r);
  }
  profile.comparisons_total = comps;
  return profile;
}

namespace {

// Profile of a merge step joining two intermediates on shared rids.
JobProfile MergeProfile(double left_rows, int left_bases, double right_rows,
                        int right_bases, double out_bytes, int kr) {
  JobProfile p;
  p.num_reduce_tasks = kr;
  p.input_bytes = left_rows * 8.0 * left_bases + right_rows * 8.0 *
                                                     right_bases;
  p.alpha = 1.0;
  p.output_bytes = out_bytes;
  p.sigma_reduce_bytes = 0.05 * p.alpha * p.input_bytes / kr;
  p.comparisons_total = left_rows + right_rows;
  return p;
}

}  // namespace

StatusOr<QueryPlan> Planner::BuildPlanFromSelection(
    const Query& query, const std::vector<TableStats>& stats,
    const std::vector<JobCandidate>& candidates,
    const std::vector<int>& selection) const {
  const int kp = cluster_->config().num_workers;
  const int kr_max = MaxReduceTasks();

  std::vector<const TableStats*> stat_ptrs;
  for (const TableStats& ts : stats) stat_ptrs.push_back(&ts);

  // β-extrapolated output rows of a join over `rels` under `ths`
  // (mirrors the executors' output_row_scale rule).
  auto beta_rows = [&](const std::vector<int>& rels,
                       const std::vector<int>& ths) {
    const double sel =
        EstimateConjunctionSelectivity(query.ConditionsById(ths), stat_ptrs);
    double phys_cross = 1.0;
    double max_scale = 1.0;
    for (int r : rels) {
      const Relation& rel = *query.relations()[r];
      phys_cross *=
          static_cast<double>(std::max<int64_t>(1, rel.num_rows()));
      if (rel.num_rows() > 0) {
        max_scale = std::max(
            max_scale, static_cast<double>(rel.logical_rows()) /
                           static_cast<double>(rel.num_rows()));
      }
    }
    return sel * phys_cross * max_scale;
  };

  QueryPlan plan;
  std::vector<MalleableJob> sched_jobs;

  // Join jobs from the selected candidates.
  struct NodeInfo {
    std::set<int> bases;
    double est_rows = 0.0;
    std::vector<int> thetas;
  };
  std::vector<NodeInfo> info;
  for (int sel : selection) {
    const JobCandidate& cand = candidates[sel];
    PlanJob job;
    job.kind = IsEquiPair(query, cand.relations, cand.thetas)
                   ? PlanJobKind::kEquiJoin
                   : PlanJobKind::kHilbertJoin;
    job.name = "join-" + std::to_string(plan.jobs.size());
    for (int r : cand.relations) job.inputs.push_back(PlanInput::Base(r));
    job.thetas = cand.thetas;
    // Skew flag (docs/SKEW.md): a Hilbert job hashes offset-free equality
    // keys into shared grid slices, so a heavy top value in either
    // endpoint column concentrates load on the reducers covering its
    // slice. A column is skewed when its top value is both non-trivial in
    // absolute terms and far above the column's uniform share 1/distinct
    // (a uniform low-cardinality column has a large top frequency but no
    // hitter to split). The executor's skew_handling option decides
    // whether the builder acts on the flag.
    if (job.kind == PlanJobKind::kHilbertJoin) {
      auto skewed = [&](const ColumnRef& ref) {
        const ColumnStats& cs = stats[ref.relation].column(ref.column);
        return cs.top_frequency > options_.skew_top_frequency &&
               cs.top_frequency * std::max(1.0, cs.distinct) > 3.0;
      };
      for (int t : cand.thetas) {
        const JoinCondition& c = query.conditions()[t];
        if (c.op != ThetaOp::kEq || c.offset != 0.0) continue;
        if (skewed(c.lhs) || skewed(c.rhs)) {
          job.skew_handling = true;
          break;
        }
      }
    }
    plan.jobs.push_back(job);

    NodeInfo ni;
    ni.bases.insert(cand.relations.begin(), cand.relations.end());
    ni.est_rows = beta_rows(cand.relations, cand.thetas);
    ni.thetas = cand.thetas;
    info.push_back(std::move(ni));

    MalleableJob mj;
    const std::vector<int> rels = cand.relations;
    const std::vector<int> ths = cand.thetas;
    mj.time_for_slots = [this, &query, &stats, rels, ths, kp](int k) {
      const JobProfile p = CandidateProfile(query, stats, rels, ths, k);
      return PredictJobTime(params_, cluster_->config(), p, kp).total;
    };
    mj.max_slots = kr_max;
    sched_jobs.push_back(std::move(mj));
  }

  // Merge chain: greedily fold in jobs sharing at least one relation.
  std::vector<int> remaining(selection.size());
  for (size_t i = 0; i < selection.size(); ++i) remaining[i] = static_cast<int>(i);
  // Seed with the job covering the most conditions (cheapest merges later).
  std::sort(remaining.begin(), remaining.end(), [&](int a, int b) {
    return info[a].thetas.size() > info[b].thetas.size();
  });
  int current = remaining.front();
  remaining.erase(remaining.begin());
  std::set<int> acc_bases = info[current].bases;
  std::vector<int> acc_thetas = info[current].thetas;
  double acc_rows = info[current].est_rows;
  int current_job_index = current;

  while (!remaining.empty()) {
    // Pick the first remaining job sharing a base with the accumulation.
    auto it = std::find_if(remaining.begin(), remaining.end(), [&](int j) {
      for (int b : info[j].bases) {
        if (acc_bases.count(b)) return true;
      }
      return false;
    });
    if (it == remaining.end()) {
      return Status::Internal(
          "selected jobs do not overlap; merge chain impossible");
    }
    const int next = *it;
    remaining.erase(it);

    PlanJob merge;
    merge.kind = PlanJobKind::kMerge;
    merge.name = "merge-" + std::to_string(plan.jobs.size());
    merge.inputs.push_back(PlanInput::Job(current_job_index));
    merge.inputs.push_back(PlanInput::Job(next));
    plan.jobs.push_back(merge);

    // Merged estimates: union of conditions over union of bases.
    std::set<int> union_bases = acc_bases;
    union_bases.insert(info[next].bases.begin(), info[next].bases.end());
    std::vector<int> union_thetas = acc_thetas;
    for (int t : info[next].thetas) {
      if (std::find(union_thetas.begin(), union_thetas.end(), t) ==
          union_thetas.end()) {
        union_thetas.push_back(t);
      }
    }
    // Output rows: joint β-extrapolated estimate over the union.
    const std::vector<int> union_rels(union_bases.begin(),
                                      union_bases.end());
    const double union_rows = beta_rows(union_rels, union_thetas);

    double out_row_bytes = 0.0;
    for (int b : union_bases) {
      out_row_bytes += static_cast<double>(PlannedOutputWidth(
          query, b, union_thetas, options_.enable_column_pruning));
    }
    const double l_rows = acc_rows;
    const int l_bases = static_cast<int>(acc_bases.size());
    const double r_rows = info[next].est_rows;
    const int r_bases = static_cast<int>(info[next].bases.size());
    MalleableJob mj;
    mj.time_for_slots = [this, l_rows, l_bases, r_rows, r_bases, union_rows,
                         out_row_bytes, kp](int k) {
      const JobProfile p = MergeProfile(l_rows, l_bases, r_rows, r_bases,
                                        union_rows * out_row_bytes, k);
      return PredictJobTime(params_, cluster_->config(), p, kp).total;
    };
    mj.max_slots = kr_max;
    mj.deps = {current_job_index, next};
    sched_jobs.push_back(std::move(mj));
    // NodeInfo for the merge node (so later merges can reference it).
    NodeInfo merged;
    merged.bases = union_bases;
    merged.est_rows = union_rows;
    merged.thetas = union_thetas;
    info.push_back(std::move(merged));

    current_job_index = static_cast<int>(plan.jobs.size()) - 1;
    acc_bases = info.back().bases;
    acc_thetas = info.back().thetas;
    acc_rows = info.back().est_rows;
  }

  // Schedule everything on kP units.
  StatusOr<ScheduleResult> sched = ScheduleMalleable(sched_jobs, kp);
  if (!sched.ok()) return sched.status();
  for (size_t i = 0; i < plan.jobs.size(); ++i) {
    plan.jobs[i].num_reduce_tasks = sched->jobs[i].slots;
    plan.jobs[i].est_start = sched->jobs[i].start;
    plan.jobs[i].est_finish = sched->jobs[i].finish;
    plan.jobs[i].est_seconds = sched->jobs[i].finish - sched->jobs[i].start;
  }
  plan.est_makespan_sec = sched->makespan;
  if (options_.enable_column_pruning) AnnotateRequiredColumns(query, &plan);
  return plan;
}

StatusOr<QueryPlan> Planner::BuildCascadePlan(
    const Query& query, const std::vector<TableStats>& stats) const {
  const int kp = cluster_->config().num_workers;
  const int kr_max = MaxReduceTasks();

  QueryPlan plan;
  plan.strategy = "mrtheta-cascade";
  std::set<int> joined;
  std::vector<bool> used(query.num_conditions(), false);
  std::vector<int> acc_thetas;
  double prev_out_bytes = 0.0;
  double makespan = 0.0;
  int prev_job = -1;

  std::vector<const TableStats*> stat_ptrs;
  for (const TableStats& ts : stats) stat_ptrs.push_back(&ts);

  while (true) {
    // Next condition: equality-first among those connecting a new base.
    int chosen = -1;
    for (int pass = 0; pass < 2 && chosen < 0; ++pass) {
      for (int t = 0; t < query.num_conditions(); ++t) {
        if (used[t]) continue;
        const JoinCondition& c = query.conditions()[t];
        const bool l_in = joined.count(c.lhs.relation) > 0;
        const bool r_in = joined.count(c.rhs.relation) > 0;
        if (!(joined.empty() || (l_in != r_in))) continue;
        if (pass == 0 && !(c.op == ThetaOp::kEq && c.offset == 0.0)) {
          continue;
        }
        chosen = t;
        break;
      }
    }
    if (chosen < 0) break;
    const JoinCondition& c = query.conditions()[chosen];

    const bool prune = options_.enable_column_pruning;
    PlanJob job;
    double base_in = 0.0;
    double pruned_base_in = 0.0;  // shuffle payload of the base inputs
    auto add_base_in = [&](int r) {
      base_in += static_cast<double>(stats[r].logical_bytes);
      pruned_base_in += static_cast<double>(stats[r].logical_rows) *
                        static_cast<double>(PlannedInputWidth(query, r, prune));
    };
    if (joined.empty()) {
      job.inputs = {PlanInput::Base(c.lhs.relation),
                    PlanInput::Base(c.rhs.relation)};
      joined.insert(c.lhs.relation);
      joined.insert(c.rhs.relation);
      add_base_in(c.lhs.relation);
      add_base_in(c.rhs.relation);
    } else {
      const int new_base = joined.count(c.lhs.relation) ? c.rhs.relation
                                                        : c.lhs.relation;
      job.inputs = {PlanInput::Job(prev_job), PlanInput::Base(new_base)};
      joined.insert(new_base);
      add_base_in(new_base);
    }
    // Bundle every now-internal condition.
    for (int t = 0; t < query.num_conditions(); ++t) {
      if (used[t]) continue;
      const JoinCondition& o = query.conditions()[t];
      if (joined.count(o.lhs.relation) && joined.count(o.rhs.relation)) {
        job.thetas.push_back(t);
        used[t] = true;
      }
    }
    bool has_eq = false;
    for (int t : job.thetas) {
      const JoinCondition& o = query.conditions()[t];
      has_eq |= o.op == ThetaOp::kEq && o.offset == 0.0;
    }
    job.kind = has_eq ? PlanJobKind::kEquiJoin : PlanJobKind::kThetaPair;
    job.name = "cascade-" + std::to_string(plan.jobs.size());
    acc_thetas.insert(acc_thetas.end(), job.thetas.begin(),
                      job.thetas.end());

    // Step cost: scan prev intermediate + new base, β-framed output.
    const std::vector<int> covered(joined.begin(), joined.end());
    const double sel = EstimateConjunctionSelectivity(
        query.ConditionsById(acc_thetas), stat_ptrs);
    double phys_cross = 1.0, max_scale = 1.0, row_bytes = 0.0;
    for (int r : covered) {
      const Relation& rel = *query.relations()[r];
      phys_cross *=
          static_cast<double>(std::max<int64_t>(1, rel.num_rows()));
      row_bytes += static_cast<double>(
          PlannedOutputWidth(query, r, acc_thetas, prune));
      if (rel.num_rows() > 0) {
        max_scale = std::max(
            max_scale, static_cast<double>(rel.logical_rows()) /
                           static_cast<double>(rel.num_rows()));
      }
    }
    const double out_bytes = sel * phys_cross * max_scale * row_bytes;
    // Maps scan full base rows but shuffle pruned payloads; the previous
    // intermediate is already pruned (its out_bytes used pruned widths).
    const double in_bytes = base_in + prev_out_bytes;
    const double shuffle_in = pruned_base_in + prev_out_bytes;
    const double alpha_scale =
        in_bytes > 0.0 ? std::min(1.0, shuffle_in / in_bytes) : 1.0;
    auto profile_for = [&](int k) {
      JobProfile p;
      p.input_bytes = base_in + prev_out_bytes;
      p.alpha =
          (has_eq ? 1.0 : ApproxDuplicationFactor(2, k)) * alpha_scale;
      p.output_bytes = out_bytes;
      p.sigma_reduce_bytes =
          3.0 * options_.hilbert_sigma_frac * p.alpha * p.input_bytes / k;
      p.num_reduce_tasks = k;
      return p;
    };
    const KrChoice kr =
        ChooseKrByCost(params_, cluster_->config(), profile_for, kr_max, kp);
    job.num_reduce_tasks = kr.kr;
    job.est_seconds =
        PredictJobTime(params_, cluster_->config(), profile_for(kr.kr), kp)
            .total;
    job.est_start = makespan;
    makespan += job.est_seconds;
    job.est_finish = makespan;
    prev_out_bytes = out_bytes;
    prev_job = static_cast<int>(plan.jobs.size());
    plan.jobs.push_back(std::move(job));
  }
  if (static_cast<int>(joined.size()) != query.num_relations()) {
    return Status::Internal("cascade could not join all relations");
  }
  plan.est_makespan_sec = makespan;
  if (options_.enable_column_pruning) AnnotateRequiredColumns(query, &plan);
  return plan;
}

StatusOr<QueryPlan> Planner::Plan(const Query& query) const {
  // The stats overload validates; collecting stats first for an invalid
  // query is harmless.
  return Plan(query, CollectStats(query));
}

StatusOr<QueryPlan> Planner::Plan(const Query& query,
                                  const std::vector<TableStats>& raw_stats)
    const {
  MRTHETA_TRACE_SCOPE("plan", "planner");
  MRTHETA_RETURN_IF_ERROR(query.Validate());
  if (static_cast<int>(raw_stats.size()) != query.num_relations()) {
    return Status::InvalidArgument(
        "stats must have one entry per query relation");
  }
  // Selection pushdown discount: a filtered relation contributes only its
  // passing fraction to every downstream volume, so plan with effective
  // cardinalities. Cached per-relation stats stay filter-agnostic — the
  // discount is applied here per query.
  std::vector<TableStats> filtered_stats;
  const std::vector<TableStats>& stats = [&]() -> const std::vector<TableStats>& {
    if (query.filters().empty()) return raw_stats;
    filtered_stats = raw_stats;
    for (int r = 0; r < query.num_relations(); ++r) {
      const double sel = EstimateFilterSelectivity(
          *query.relations()[r], r, query.filters(),
          options_.stats.sample_size, options_.seed);
      if (sel >= 1.0) continue;
      TableStats& ts = filtered_stats[r];
      ts.logical_rows = std::max<int64_t>(
          1, static_cast<int64_t>(static_cast<double>(ts.logical_rows) * sel));
      ts.logical_bytes = std::max<int64_t>(
          ts.avg_row_bytes,
          static_cast<int64_t>(static_cast<double>(ts.logical_bytes) * sel));
    }
    return filtered_stats;
  }();
  StatusOr<JoinGraph> graph = query.BuildJoinGraph();
  if (!graph.ok()) return graph.status();

  const int kp = cluster_->config().num_workers;
  const int kr_max = MaxReduceTasks();

  // Cost oracle for Algorithm 2.
  CandidateCostFn cost_fn = [&](const std::vector<int>& thetas,
                                const std::vector<int>& relations) {
    std::vector<double> cards;
    cards.reserve(relations.size());
    for (int r : relations) {
      cards.push_back(
          static_cast<double>(std::max<int64_t>(1, stats[r].logical_rows)));
    }
    int kr;
    if (options_.use_delta_kr) {
      kr = ChooseKrByDelta(cards, kr_max, options_.lambda).kr;
    } else {
      kr = ChooseKrByCost(
               params_, cluster_->config(),
               [&](int k) {
                 return CandidateProfile(query, stats, relations, thetas, k);
               },
               kr_max, kp)
               .kr;
    }
    const JobProfile profile =
        CandidateProfile(query, stats, relations, thetas, kr);
    CandidateCost out;
    out.weight = PredictJobTime(params_, cluster_->config(), profile, kp).total;
    out.schedule_slots = kr;
    return out;
  };

  JoinPathGraphOptions gjp_options;
  gjp_options.enable_pruning = options_.enable_pruning;
  JoinPathGraphStats gjp_stats;
  StatusOr<std::vector<JobCandidate>> candidates =
      BuildJoinPathGraph(*graph, cost_fn, gjp_options, &gjp_stats);
  if (!candidates.ok()) return candidates.status();

  // T selection: greedy weighted set cover over the condition universe.
  std::vector<WeightedSet> sets;
  sets.reserve(candidates->size());
  for (const JobCandidate& cand : *candidates) {
    sets.push_back({cand.theta_mask, cand.weight});
  }
  const uint32_t universe = query.AllConditionsMask();
  StatusOr<std::vector<int>> cover = GreedyWeightedSetCover(sets, universe);
  if (!cover.ok()) return cover.status();

  StatusOr<QueryPlan> best =
      BuildPlanFromSelection(query, stats, *candidates, *cover);
  if (!best.ok()) return best.status();
  best->strategy = "mrtheta";

  // Also consider the cheapest single candidate covering everything.
  int full = -1;
  for (int i = 0; i < static_cast<int>(candidates->size()); ++i) {
    if (((*candidates)[i].theta_mask & universe) == universe) {
      if (full < 0 ||
          (*candidates)[i].weight < (*candidates)[full].weight) {
        full = i;
      }
    }
  }
  if (full < 0 && query.num_relations() <= 16) {
    // Lemma 2 drops every superset of a dropped trail, so one dominated
    // pair-subset can transitively erase all full-cover trails — even
    // though the one-job evaluation is not dominated once merge steps are
    // priced in. Keep the paper's "single MRJ sometimes beats any
    // cascade" alternative alive by synthesizing the full-cover candidate
    // directly (relations in condition first-visit order).
    JobCandidate synth;
    synth.theta_mask = universe;
    for (const JoinCondition& cond : query.conditions()) {
      synth.thetas.push_back(cond.id);
      for (int r : {cond.lhs.relation, cond.rhs.relation}) {
        if (std::find(synth.relations.begin(), synth.relations.end(), r) ==
            synth.relations.end()) {
          synth.relations.push_back(r);
        }
      }
    }
    const CandidateCost cost = cost_fn(synth.thetas, synth.relations);
    synth.weight = cost.weight;
    synth.schedule_slots = cost.schedule_slots;
    full = static_cast<int>(candidates->size());
    candidates->push_back(std::move(synth));
  }
  if (full >= 0 &&
      (cover->size() != 1 || (*cover)[0] != full)) {
    StatusOr<QueryPlan> single =
        BuildPlanFromSelection(query, stats, *candidates, {full});
    if (single.ok() && single->est_makespan_sec < best->est_makespan_sec) {
      best = std::move(single);
      best->strategy = "mrtheta-single-mrj";
    }
  }

  // ...and the sequential pair-wise cascade (the traditional decomposition
  // of Sec. 3.2's principle: if separate evaluation plus recombination is
  // estimated cheaper, prefer it).
  StatusOr<QueryPlan> cascade = BuildCascadePlan(query, stats);
  if (cascade.ok() && cascade->est_makespan_sec < best->est_makespan_sec) {
    best = std::move(cascade);
  }

  best->candidates = *std::move(candidates);
  best->gjp_stats = gjp_stats;
  return best;
}

}  // namespace mrtheta
