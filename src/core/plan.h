#ifndef MRTHETA_CORE_PLAN_H_
#define MRTHETA_CORE_PLAN_H_

#include <string>
#include <vector>

#include "src/graph/join_path_graph.h"
#include "src/relation/schema.h"

namespace mrtheta {

/// What a plan job is.
enum class PlanJobKind {
  kHilbertJoin,   ///< Algorithm 1: multi-way chain theta-join, one MRJ
  kEquiJoin,      ///< repartition equi-join (baselines)
  kThetaPair,     ///< 1-Bucket-Theta pair-wise join (baselines)
  kMerge,         ///< rid-based merge of two intermediate results
};

const char* PlanJobKindName(PlanJobKind kind);

/// One input of a plan job: either a query base relation or the output of
/// an earlier plan job. Exactly one of the fields is >= 0.
struct PlanInput {
  int base = -1;
  int job = -1;

  static PlanInput Base(int b) { return {b, -1}; }
  static PlanInput Job(int j) { return {-1, j}; }
  bool is_base() const { return base >= 0; }
};

/// One scheduled MapReduce job of a query plan.
struct PlanJob {
  PlanJobKind kind = PlanJobKind::kHilbertJoin;
  std::string name;
  std::vector<PlanInput> inputs;
  /// θ ids this job evaluates (empty for merges).
  std::vector<int> thetas;
  /// RN(MRJ): reduce tasks chosen by the kP-aware scheduler.
  int num_reduce_tasks = 1;
  /// Bytes of repeated base-relation scans discounted by shared-scan
  /// optimization (YSmart-style planner only).
  int64_t scan_discount_bytes = 0;
  /// Hive/Pig-style jobs pay text-SerDe costs (see ClusterConfig).
  bool text_serde = false;
  /// Planner-detected join-key skew: when true (and the executor allows
  /// it), the job builder splits heavy-hitter regions across dedicated
  /// reducer grids (docs/SKEW.md). Set for Hilbert jobs whose equality
  /// columns show a heavy top value in the collected statistics.
  bool skew_handling = false;
  /// Map-side combining (docs/MEMORY.md): when true the executor installs
  /// the order-preserving dedup combiner (MakeDedupCombiner) on this job,
  /// collapsing duplicate records per input row before they hit the emit
  /// buffers. Off by default — the stock builders never emit duplicates,
  /// so the planner leaves it to custom plans and tests.
  bool map_side_combine = false;
  /// Required-column analysis (AnnotateRequiredColumns, docs/EXECUTOR.md
  /// "Column pruning"): per covered base (ascending), the minimal column
  /// set this job's output must carry for the conditions its descendants
  /// still evaluate plus the query's projection. Empty = unannotated: the
  /// executor accounts full-width base rows, byte-identical to the
  /// pre-pruning behaviour.
  std::vector<RequiredColumns> output_columns;
  /// Cost-model estimates (seconds) and schedule placement.
  double est_seconds = 0.0;
  double est_start = 0.0;
  double est_finish = 0.0;
};

/// \brief A complete execution plan P for a set T of MRJs (Section 3).
struct QueryPlan {
  std::vector<PlanJob> jobs;  ///< topologically ordered
  double est_makespan_sec = 0.0;
  std::string strategy;  ///< planner that produced it (for reports)
  /// The pruned join-path graph the planner searched (empty for baselines).
  std::vector<JobCandidate> candidates;
  JoinPathGraphStats gjp_stats;

  std::string ToString() const;
};

}  // namespace mrtheta

#endif  // MRTHETA_CORE_PLAN_H_
