#ifndef MRTHETA_CORE_EXECUTOR_H_
#define MRTHETA_CORE_EXECUTOR_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/core/plan.h"
#include "src/core/query.h"
#include "src/exec/theta_kernels.h"
#include "src/mapreduce/sim_cluster.h"
#include "src/runtime/fault_injection.h"
#include "src/sched/skew_assigner.h"

namespace mrtheta {

/// Everything recorded about one executed plan job.
struct JobExecution {
  std::string name;
  PlanJobKind kind = PlanJobKind::kHilbertJoin;
  int reduce_tasks = 1;
  /// Indices of earlier plan jobs whose outputs this job consumed (empty
  /// when the job read base relations only) — the plan DAG, kept here so
  /// profiles can render it without the QueryPlan in hand.
  std::vector<int> input_jobs;
  /// Reduce-side join kernel the job was eligible to run ("sort-theta"
  /// when a condition qualified for the sort-based path, else "generic").
  /// Reduce groups below the sort-kernel min-pairs gate still use the
  /// generic loop.
  std::string kernel = "generic";
  JobMeasurement metrics;
  SimJobResult timing;
  /// Measured wall-clock seconds this process spent physically executing
  /// the job (map + shuffle + reduce on the runtime's threads) — unrelated
  /// to the *simulated* `timing`, which models the paper's cluster.
  double wall_seconds = 0.0;
  /// Heavy/residual reducer decomposition of a Hilbert join
  /// (docs/SKEW.md): residual curve segments, tasks in heavy-value grids,
  /// and the number of grids. heavy == 0 when skew handling was off or
  /// found nothing to split; all zero for non-Hilbert jobs.
  int skew_residual_tasks = 0;
  int skew_heavy_tasks = 0;
  int skew_heavy_groups = 0;
  /// Fault-tolerance accounting of this job (injected faults, retries,
  /// speculative launches, wasted attempt time). All zero on the fault-free
  /// fast path; observability only — never feeds results or timing.
  FaultReport faults;
  /// Shuffle bytes/files this job spilled to disk under a memory budget
  /// (docs/MEMORY.md). Observability only — simulated metrics are
  /// byte-identical with or without spilling.
  int64_t spill_bytes = 0;
  int64_t spill_files = 0;
  std::shared_ptr<Relation> output;
  std::vector<int> covered_bases;
};

/// Result of executing a whole plan.
struct ExecutionResult {
  std::vector<JobExecution> jobs;
  /// Simulated wall-clock makespan of the full plan (slot competition,
  /// dependencies and merge steps included).
  SimTime makespan = 0;
  /// Measured wall-clock seconds for physically executing the whole plan
  /// (jobs with disjoint deps overlap when ExecutorOptions::num_threads
  /// > 1). Excludes the discrete-event replay and final projection.
  double measured_seconds = 0.0;
  /// Simulated shuffle volume: Σ over plan jobs of the logical bytes
  /// shipped map → reduce. This is the paper's cost objective, and the
  /// quantity column pruning / selection pushdown shrink
  /// (docs/EXECUTOR.md).
  int64_t sim_shuffle_bytes = 0;
  /// The final intermediate (one rid column per covered base).
  std::shared_ptr<Relation> result_ids;
  std::vector<int> covered_bases;
  /// The projection requested by the query (empty schema when the query
  /// declares no outputs).
  std::shared_ptr<Relation> projected;
  /// Logical result rows / Π logical |Ri| (the paper's "Result Sel.").
  double result_selectivity = 0.0;
  /// Plan-wide fault-tolerance accounting: the sum of the per-job
  /// JobExecution::faults reports.
  FaultReport fault_report;
  /// Plan-wide spill totals: the sum of the per-job spill_bytes /
  /// spill_files (docs/MEMORY.md). Zero when no memory budget was set.
  int64_t spill_bytes = 0;
  int64_t spill_files = 0;
  /// MemoryBudget::Global().peak_bytes() sampled when the plan finished —
  /// the process-wide budget high-water mark, including any concurrent
  /// executions (benches ResetPeak() between runs to isolate one query).
  int64_t peak_mem_bytes = 0;
};

/// Knobs controlling how plan jobs are lowered to physical kernels and
/// scheduled onto the in-process runtime.
struct ExecutorOptions {
  /// When false, every join job runs the generic nested-loop kernel
  /// regardless of condition shape — the differential baseline for the
  /// specialized sort-based paths. Results must be identical either way.
  bool enable_specialized_kernels = true;
  /// Per-reduce-group gate for the sort-based kernels: groups with fewer
  /// candidate pairs run the generic nested loop (sorting tiny groups
  /// costs more than it saves). Exposed here so benches can sweep it.
  int64_t sort_kernel_min_pairs = kSortKernelMinPairs;
  /// Threads of the in-process runtime (src/runtime). 1 = the sequential
  /// reference path (RunJobPhysically, jobs in plan order); > 1 fans map
  /// and reduce tasks over a thread pool and overlaps plan jobs with
  /// disjoint dependencies via the DAG scheduler. Results — output rows,
  /// row order, measurements, simulated makespan — are identical at every
  /// thread count (see docs/RUNTIME.md).
  int num_threads = 1;
  /// Skew handling for Hilbert join jobs (docs/SKEW.md). kAuto (default)
  /// splits heavy-hitter regions only for jobs the planner flagged
  /// (PlanJob::skew_handling); kForce runs detection on every Hilbert job;
  /// kOff keeps the paper's pure curve-segment assignment. The join result
  /// (as a multiset of rows) is identical in all modes; per-reducer input
  /// sizes, and hence the simulated makespan, are not.
  SkewHandling skew_handling = SkewHandling::kAuto;
  /// Deterministic chaos plan (docs/RUNTIME.md "Fault tolerance"). The
  /// default picks up $MRTHETA_FAULT_PLAN, so any workload can run under
  /// reproducible chaos with no code changes — the CI chaos job sets
  /// exactly that. When enabled, every job routes through the
  /// fault-tolerant parallel runner (on a 1-thread pool at num_threads ==
  /// 1, which is byte-identical to the sequential reference); outputs and
  /// simulated metrics are unchanged as long as no task exhausts its
  /// retries.
  FaultPlan fault_plan = FaultPlan::FromEnvironment();
  /// Retry + straggler-speculation policies; consulted only under an
  /// enabled fault_plan.
  RetryPolicy retry;
  SpeculationPolicy speculation;
  /// Optional external cancellation (e.g. a ThetaEngine::Submit token).
  /// Checked at job and task boundaries and inside interruptible waits;
  /// a cancelled execution returns kCancelled. Not owned; must outlive
  /// every Execute call made with these options.
  const CancellationToken* cancel_token = nullptr;
  /// When set, the plan-wide fault accounting is merged into this report
  /// on *every* exit path — including failed and cancelled executions,
  /// which still consumed retries and wasted attempt seconds even though
  /// no ExecutionResult is returned. ThetaEngine points this at its
  /// session metrics; without it, a failed run's faults would be invisible
  /// (the under-reporting bug pinned by api_test). Not owned.
  FaultReport* fault_report = nullptr;
  /// Memory budget in bytes (docs/MEMORY.md): once the process-wide
  /// MemoryBudget's in-use bytes exceed it, shuffle state spills to a
  /// per-execution temp directory (removed on success, failure and
  /// cancellation alike). 0 inherits MemoryBudget::Global()'s limit (the
  /// $MRTHETA_MEM_BUDGET environment knob); every budgeted plan routes
  /// through the parallel runner, even at one thread. The budget is a
  /// spill trigger, not a hard cap — outputs and simulated metrics are
  /// byte-identical at any setting.
  int64_t mem_budget_bytes = 0;
};

class ThreadPool;
struct QueryProfile;

/// \brief Executes a QueryPlan: runs every plan job physically (exact
/// answers over physical tuples) on the in-process runtime, then replays
/// the whole job DAG through the discrete-event engine to obtain the
/// simulated makespan under the cluster's kP processing units.
///
/// Kernel selection (see docs/EXECUTOR.md): for each job the executor asks
/// the builder for the specialized columnar kernel whenever a join
/// condition qualifies (ChooseSortDriver), falling back to the generic
/// per-pair path otherwise.
class Executor {
 public:
  /// `cluster` must outlive the executor.
  explicit Executor(const SimCluster* cluster, ExecutorOptions options = {})
      : cluster_(cluster), options_(options) {}

  StatusOr<ExecutionResult> Execute(const Query& query, const QueryPlan& plan,
                                    uint64_t seed = 42) const;

  /// Session entry point (ThetaEngine): like Execute, but map/reduce tasks
  /// run on the caller-owned `pool`, which may be shared across concurrent
  /// query executions. The effective thread count is
  /// min(options().num_threads, pool.num_threads()); 1 selects the
  /// sequential reference path, and a cap below the pool's width is
  /// honoured exactly (a narrower per-call pool), so thread sweeps stay
  /// meaningful on a wide session pool. Results are identical to Execute
  /// at the same thread count (docs/RUNTIME.md determinism contract).
  StatusOr<ExecutionResult> ExecuteOn(ThreadPool& pool, const Query& query,
                                      const QueryPlan& plan,
                                      uint64_t seed = 42) const;

 private:
  /// Runs the plan with pool.num_threads() as the effective thread count.
  StatusOr<ExecutionResult> RunOn(ThreadPool& pool, const Query& query,
                                  const QueryPlan& plan, uint64_t seed) const;

  const SimCluster* cluster_;
  ExecutorOptions options_;
};

/// \brief Session-level view of an ExecutionResult (the ThetaEngine return
/// type): the raw execution plus convenience accessors for the projected
/// output table.
class QueryResult {
 public:
  QueryResult() = default;
  explicit QueryResult(ExecutionResult execution)
      : execution_(std::move(execution)) {}

  const ExecutionResult& execution() const { return execution_; }
  const std::vector<JobExecution>& jobs() const { return execution_.jobs; }

  /// Physical result tuples (rows of the rid table).
  int64_t num_rows() const {
    return execution_.result_ids ? execution_.result_ids->num_rows() : 0;
  }
  double selectivity() const { return execution_.result_selectivity; }
  SimTime makespan() const { return execution_.makespan; }
  double simulated_seconds() const { return ToSeconds(execution_.makespan); }
  double measured_seconds() const { return execution_.measured_seconds; }
  int64_t sim_shuffle_bytes() const { return execution_.sim_shuffle_bytes; }

  /// True when the query declared output columns (rows() is the projection).
  bool has_projection() const { return execution_.projected != nullptr; }

  /// The result table: the query's projection when outputs were declared,
  /// otherwise the rid intermediate. A default-constructed (never
  /// executed) QueryResult yields an empty zero-column relation.
  const Relation& rows() const {
    static const Relation kEmpty;
    if (has_projection()) return *execution_.projected;
    if (execution_.result_ids != nullptr) return *execution_.result_ids;
    return kEmpty;
  }

  /// Cell accessors into rows().
  Value Get(int64_t row, int col) const { return rows().Get(row, col); }
  int num_columns() const { return rows().schema().num_columns(); }

  /// Per-job execution profile of this result (wall vs simulated time,
  /// rows/bytes at pruned widths, retries/speculation, skew routing,
  /// kernel choice) — the substrate of ThetaEngine::ExplainAnalyze. See
  /// src/obs/profile.h for the rendering API.
  QueryProfile profile() const;

  /// True when the executed plan came out of the engine's plan cache (or a
  /// still-fresh PreparedQuery pin) instead of a fresh Planner::Plan run.
  /// Always false for results of ExecutePlan with a caller-provided plan.
  bool plan_cache_hit() const { return plan_cache_hit_; }
  void set_plan_cache_hit(bool hit) { plan_cache_hit_ = hit; }

 private:
  ExecutionResult execution_;
  bool plan_cache_hit_ = false;
};

}  // namespace mrtheta

#endif  // MRTHETA_CORE_EXECUTOR_H_
