#ifndef MRTHETA_CORE_EXECUTOR_H_
#define MRTHETA_CORE_EXECUTOR_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/core/plan.h"
#include "src/core/query.h"
#include "src/mapreduce/sim_cluster.h"

namespace mrtheta {

/// Everything recorded about one executed plan job.
struct JobExecution {
  std::string name;
  PlanJobKind kind = PlanJobKind::kHilbertJoin;
  int reduce_tasks = 1;
  JobMeasurement metrics;
  SimJobResult timing;
  std::shared_ptr<Relation> output;
  std::vector<int> covered_bases;
};

/// Result of executing a whole plan.
struct ExecutionResult {
  std::vector<JobExecution> jobs;
  /// Simulated wall-clock makespan of the full plan (slot competition,
  /// dependencies and merge steps included).
  SimTime makespan = 0;
  /// The final intermediate (one rid column per covered base).
  std::shared_ptr<Relation> result_ids;
  std::vector<int> covered_bases;
  /// The projection requested by the query (empty schema when the query
  /// declares no outputs).
  std::shared_ptr<Relation> projected;
  /// Logical result rows / Π logical |Ri| (the paper's "Result Sel.").
  double result_selectivity = 0.0;
};

/// \brief Executes a QueryPlan: runs every plan job physically on the
/// simulated cluster (exact answers over physical tuples), then replays the
/// whole job DAG through the discrete-event engine to obtain the simulated
/// makespan under the cluster's kP processing units.
class Executor {
 public:
  /// `cluster` must outlive the executor.
  explicit Executor(const SimCluster* cluster) : cluster_(cluster) {}

  StatusOr<ExecutionResult> Execute(const Query& query, const QueryPlan& plan,
                                    uint64_t seed = 42) const;

 private:
  const SimCluster* cluster_;
};

}  // namespace mrtheta

#endif  // MRTHETA_CORE_EXECUTOR_H_
