#ifndef MRTHETA_CORE_PLANNER_H_
#define MRTHETA_CORE_PLANNER_H_

#include <vector>

#include "src/common/status.h"
#include "src/core/plan.h"
#include "src/core/query.h"
#include "src/cost/cost_model.h"
#include "src/mapreduce/sim_cluster.h"
#include "src/stats/table_stats.h"

namespace mrtheta {

/// Planner knobs.
struct PlannerOptions {
  uint64_t seed = 0x5eed;
  /// λ of Eq. (10).
  double lambda = 0.4;
  /// Choose kR by sweeping the cost model (false, default — matches the
  /// paper's Fig. 7(a) behaviour where best kR grows with map output
  /// volume) or by the literal Eq. 10 Δ minimization (true). With raw
  /// cardinalities Eq. 10's Π|Ri|/k term dominates at realistic scales and
  /// saturates kR at the cap — kept as the DESIGN.md §4.4 ablation.
  bool use_delta_kr = false;
  /// Lemma 1/2 pruning in the G'_JP construction.
  bool enable_pruning = true;
  /// Cap on reduce tasks per job; 0 means the cluster's worker count.
  int max_reduce_tasks = 0;
  /// Assumed relative imbalance of Hilbert-partitioned reduce inputs
  /// (drives the σ of the 3σ rule; Hilbert balances well by Theorem 2).
  double hilbert_sigma_frac = 0.08;
  /// A Hilbert job is flagged for skew handling when an offset-free
  /// equality column's sampled top-value frequency exceeds this (a uniform
  /// column sits at ~1/distinct; Zipfian ones are orders above).
  double skew_top_frequency = 0.02;
  /// Required-column analysis + early projection (docs/EXECUTOR.md "Column
  /// pruning"): when true (default), plans are annotated with the minimal
  /// per-base column sets (PlanJob::output_columns) and the cost model
  /// prices shuffles and intermediates at the pruned widths, so kR
  /// selection and makespan estimates react to thinner tuples. When false,
  /// plans stay unannotated and execution accounts full-width rows — the
  /// ablation baseline (`bench_runtime --no-prune`). Join results are
  /// byte-identical either way.
  bool enable_column_pruning = true;
  /// Statistics collection options.
  StatsOptions stats;
};

/// \brief The paper's optimizer: builds G'_JP (Algorithm 2), selects T by
/// greedy weighted set cover, schedules T's MRJs plus the merge steps on kP
/// processing units with the malleable scheduler, and returns the plan with
/// the smallest estimated makespan.
class Planner {
 public:
  /// `cluster` must outlive the planner. `params` come from
  /// CalibrateCostModel (or tests' hand-built values).
  Planner(const SimCluster* cluster, CostModelParams params,
          PlannerOptions options = {});

  /// Plans `query`. Also considers the single-MRJ evaluation of the whole
  /// query when a full-cover trail exists, per the paper's observation that
  /// one job sometimes beats any cascade.
  StatusOr<QueryPlan> Plan(const Query& query) const;

  /// Session entry point (ThetaEngine): plans with caller-provided
  /// per-relation statistics, aligned with query.relations(). The stats
  /// must come from CollectStats/CollectStatsForRelation (possibly cached
  /// across queries); planning is then byte-identical to Plan(query).
  StatusOr<QueryPlan> Plan(const Query& query,
                           const std::vector<TableStats>& stats) const;

  /// Cost-model profile of a Hilbert chain-join over `relations` (trail
  /// order) evaluating `thetas`, with kr reduce tasks. Exposed for benches.
  JobProfile CandidateProfile(const Query& query,
                              const std::vector<TableStats>& stats,
                              const std::vector<int>& relations,
                              const std::vector<int>& thetas, int kr) const;

  /// Per-relation statistics as the planner computes them.
  std::vector<TableStats> CollectStats(const Query& query) const;

  /// Statistics for one relation, exactly as CollectStats computes them —
  /// the hook a session (ThetaEngine) uses to cache stats per relation
  /// identity and amortize collection across queries.
  TableStats CollectStatsForRelation(const Relation& rel) const;

  const CostModelParams& params() const { return params_; }
  const PlannerOptions& options() const { return options_; }

 private:
  int MaxReduceTasks() const;
  StatusOr<QueryPlan> BuildPlanFromSelection(
      const Query& query, const std::vector<TableStats>& stats,
      const std::vector<JobCandidate>& candidates,
      const std::vector<int>& selection) const;
  /// A sequential pair-wise cascade (equality steps first) — the
  /// traditional decomposition the paper's Sec. 3.2 principle compares
  /// against; considered as a plan alternative alongside T + merges.
  StatusOr<QueryPlan> BuildCascadePlan(
      const Query& query, const std::vector<TableStats>& stats) const;

  const SimCluster* cluster_;
  CostModelParams params_;
  PlannerOptions options_;
};

}  // namespace mrtheta

#endif  // MRTHETA_CORE_PLANNER_H_
