#include "src/core/query.h"

#include <cstdio>

namespace mrtheta {

namespace {

// The single rule set for a condition's endpoints, shared by AddCondition
// (at insertion) and Validate (the authoritative pre-execution gate):
// in-range distinct relations, in-range columns, type-compatible sides,
// offsets only on numeric comparisons.
Status CheckCondition(const std::vector<RelationPtr>& relations,
                      const JoinCondition& cond) {
  const int num_relations = static_cast<int>(relations.size());
  for (const ColumnRef& ref : {cond.lhs, cond.rhs}) {
    if (ref.relation < 0 || ref.relation >= num_relations) {
      return Status::InvalidArgument(
          "condition relation index out of range");
    }
    const Schema& schema = relations[ref.relation]->schema();
    if (ref.column < 0 || ref.column >= schema.num_columns()) {
      return Status::OutOfRange(
          "condition column index out of range for relation " +
          relations[ref.relation]->name());
    }
  }
  if (cond.lhs.relation == cond.rhs.relation) {
    return Status::InvalidArgument(
        "conditions must connect two distinct query relations "
        "(add the relation twice for a self-join)");
  }
  const ValueType ta =
      relations[cond.lhs.relation]->schema().column(cond.lhs.column).type;
  const ValueType tb =
      relations[cond.rhs.relation]->schema().column(cond.rhs.column).type;
  if ((ta == ValueType::kString) != (tb == ValueType::kString)) {
    return Status::InvalidArgument("condition compares string with numeric");
  }
  if (ta == ValueType::kString && cond.offset != 0.0) {
    return Status::InvalidArgument("offset not supported on string columns");
  }
  return Status::OK();
}

// Shared rule set for a selection filter, applied by AddFilter (at
// insertion) and Validate (the authoritative pre-execution gate).
Status CheckFilter(const std::vector<RelationPtr>& relations,
                   const SelectionFilter& filter) {
  const int num_relations = static_cast<int>(relations.size());
  if (filter.col.relation < 0 || filter.col.relation >= num_relations) {
    return Status::InvalidArgument("filter relation index out of range");
  }
  const Schema& schema = relations[filter.col.relation]->schema();
  if (filter.col.column < 0 || filter.col.column >= schema.num_columns()) {
    return Status::OutOfRange(
        "filter column index out of range for relation " +
        relations[filter.col.relation]->name());
  }
  const bool col_is_string =
      schema.column(filter.col.column).type == ValueType::kString;
  const bool lit_is_string = filter.literal.type() == ValueType::kString;
  if (col_is_string != lit_is_string) {
    return Status::InvalidArgument(
        "filter compares string with numeric: " + filter.ToString());
  }
  if (col_is_string &&
      (filter.offset != 0.0 ||
       (filter.op != ThetaOp::kEq && filter.op != ThetaOp::kNe))) {
    return Status::InvalidArgument(
        "string filters support only offset-free = / <>: " +
        filter.ToString());
  }
  return Status::OK();
}

}  // namespace

int Query::AddRelation(RelationPtr relation) {
  relations_.push_back(std::move(relation));
  return num_relations() - 1;
}

StatusOr<int> Query::AddCondition(int rel_a, const std::string& col_a,
                                  ThetaOp op, int rel_b,
                                  const std::string& col_b, double offset) {
  if (rel_a < 0 || rel_a >= num_relations() || rel_b < 0 ||
      rel_b >= num_relations()) {
    return Status::InvalidArgument("condition relation index out of range");
  }
  StatusOr<int> ca = relations_[rel_a]->schema().FindColumn(col_a);
  if (!ca.ok()) return ca.status();
  StatusOr<int> cb = relations_[rel_b]->schema().FindColumn(col_b);
  if (!cb.ok()) return cb.status();
  JoinCondition cond;
  cond.lhs = {rel_a, *ca};
  cond.op = op;
  cond.rhs = {rel_b, *cb};
  cond.offset = offset;
  cond.id = num_conditions();
  MRTHETA_RETURN_IF_ERROR(CheckCondition(relations_, cond));
  conditions_.push_back(cond);
  return cond.id;
}

Status Query::AddOutput(int rel, const std::string& col) {
  if (rel < 0 || rel >= num_relations()) {
    return Status::InvalidArgument("output relation index out of range");
  }
  StatusOr<int> c = relations_[rel]->schema().FindColumn(col);
  if (!c.ok()) return c.status();
  outputs_.push_back({rel, *c});
  return Status::OK();
}

Status Query::AddFilter(int rel, const std::string& col, ThetaOp op,
                        Value literal, double offset) {
  if (rel < 0 || rel >= num_relations()) {
    return Status::InvalidArgument("filter relation index out of range");
  }
  StatusOr<int> c = relations_[rel]->schema().FindColumn(col);
  if (!c.ok()) return c.status();
  SelectionFilter filter;
  filter.col = {rel, *c};
  filter.op = op;
  filter.literal = std::move(literal);
  filter.offset = offset;
  MRTHETA_RETURN_IF_ERROR(CheckFilter(relations_, filter));
  filters_.push_back(std::move(filter));
  return Status::OK();
}

uint32_t Query::AllConditionsMask() const {
  uint32_t mask = 0;
  for (const auto& cond : conditions_) mask |= 1u << cond.id;
  return mask;
}

std::vector<JoinCondition> Query::ConditionsById(
    const std::vector<int>& thetas) const {
  std::vector<JoinCondition> out;
  out.reserve(thetas.size());
  for (int id : thetas) out.push_back(conditions_[id]);
  return out;
}

StatusOr<JoinGraph> Query::BuildJoinGraph() const {
  JoinGraph graph(num_relations());
  for (const JoinCondition& cond : conditions_) {
    MRTHETA_RETURN_IF_ERROR(
        graph.AddEdge(cond.lhs.relation, cond.rhs.relation, cond.id));
  }
  return graph;
}

Status Query::Validate() const {
  if (num_relations() < 2) {
    return Status::FailedPrecondition("query needs at least two relations");
  }
  if (num_conditions() < 1) {
    return Status::FailedPrecondition("query needs at least one condition");
  }
  if (num_conditions() > 20) {
    return Status::InvalidArgument("at most 20 join conditions supported");
  }
  // Re-check every condition with the same rule set AddCondition applies
  // at insertion: Validate is the authoritative gate before execution.
  for (const JoinCondition& cond : conditions_) {
    MRTHETA_RETURN_IF_ERROR(CheckCondition(relations_, cond));
  }
  for (const OutputColumn& out : outputs_) {
    if (out.base < 0 || out.base >= num_relations() || out.column < 0 ||
        out.column >=
            relations_[out.base]->schema().num_columns()) {
      return Status::OutOfRange("output column out of range");
    }
  }
  for (const SelectionFilter& filter : filters_) {
    MRTHETA_RETURN_IF_ERROR(CheckFilter(relations_, filter));
  }
  StatusOr<JoinGraph> graph = BuildJoinGraph();
  if (!graph.ok()) return graph.status();
  if (!graph->IsConnected()) {
    return Status::FailedPrecondition(
        "join graph must be connected (no cross products)");
  }
  return Status::OK();
}

std::string Query::StructureKey() const {
  // %.17g round-trips every double, so distinct offsets/literals can never
  // collide into one key.
  auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  std::string key = "r" + std::to_string(num_relations());
  for (const JoinCondition& cond : conditions_) {
    key += ";c" + std::to_string(cond.lhs.relation) + "." +
           std::to_string(cond.lhs.column) + ThetaOpName(cond.op) +
           std::to_string(cond.rhs.relation) + "." +
           std::to_string(cond.rhs.column) + "+" + num(cond.offset);
  }
  for (const SelectionFilter& filter : filters_) {
    key += ";f" + std::to_string(filter.col.relation) + "." +
           std::to_string(filter.col.column) + ThetaOpName(filter.op) +
           filter.literal.ToString() + "+" + num(filter.offset);
  }
  for (const OutputColumn& out : outputs_) {
    key += ";o" + std::to_string(out.base) + "." + std::to_string(out.column);
  }
  return key;
}

std::string Query::ToString() const {
  std::string out = "Query over " + std::to_string(num_relations()) +
                    " relations:";
  for (const auto& cond : conditions_) {
    out += "\n  θ" + std::to_string(cond.id) + ": " + cond.ToString();
  }
  for (const auto& filter : filters_) {
    out += "\n  σ: " + filter.ToString();
  }
  return out;
}

}  // namespace mrtheta
