#include "src/core/query.h"

namespace mrtheta {

int Query::AddRelation(RelationPtr relation) {
  relations_.push_back(std::move(relation));
  return num_relations() - 1;
}

StatusOr<int> Query::AddCondition(int rel_a, const std::string& col_a,
                                  ThetaOp op, int rel_b,
                                  const std::string& col_b, double offset) {
  if (rel_a < 0 || rel_a >= num_relations() || rel_b < 0 ||
      rel_b >= num_relations()) {
    return Status::InvalidArgument("condition relation index out of range");
  }
  if (rel_a == rel_b) {
    return Status::InvalidArgument(
        "conditions must connect two distinct query relations "
        "(add the relation twice for a self-join)");
  }
  StatusOr<int> ca = relations_[rel_a]->schema().FindColumn(col_a);
  if (!ca.ok()) return ca.status();
  StatusOr<int> cb = relations_[rel_b]->schema().FindColumn(col_b);
  if (!cb.ok()) return cb.status();
  const ValueType ta = relations_[rel_a]->schema().column(*ca).type;
  const ValueType tb = relations_[rel_b]->schema().column(*cb).type;
  const bool a_num = ta != ValueType::kString;
  const bool b_num = tb != ValueType::kString;
  if (a_num != b_num) {
    return Status::InvalidArgument("condition compares string with numeric");
  }
  if (!a_num && offset != 0.0) {
    return Status::InvalidArgument("offset not supported on string columns");
  }
  JoinCondition cond;
  cond.lhs = {rel_a, *ca};
  cond.op = op;
  cond.rhs = {rel_b, *cb};
  cond.offset = offset;
  cond.id = num_conditions();
  conditions_.push_back(cond);
  return cond.id;
}

Status Query::AddOutput(int rel, const std::string& col) {
  if (rel < 0 || rel >= num_relations()) {
    return Status::InvalidArgument("output relation index out of range");
  }
  StatusOr<int> c = relations_[rel]->schema().FindColumn(col);
  if (!c.ok()) return c.status();
  outputs_.push_back({rel, *c});
  return Status::OK();
}

uint32_t Query::AllConditionsMask() const {
  uint32_t mask = 0;
  for (const auto& cond : conditions_) mask |= 1u << cond.id;
  return mask;
}

std::vector<JoinCondition> Query::ConditionsById(
    const std::vector<int>& thetas) const {
  std::vector<JoinCondition> out;
  out.reserve(thetas.size());
  for (int id : thetas) out.push_back(conditions_[id]);
  return out;
}

StatusOr<JoinGraph> Query::BuildJoinGraph() const {
  JoinGraph graph(num_relations());
  for (const JoinCondition& cond : conditions_) {
    MRTHETA_RETURN_IF_ERROR(
        graph.AddEdge(cond.lhs.relation, cond.rhs.relation, cond.id));
  }
  return graph;
}

Status Query::Validate() const {
  if (num_relations() < 2) {
    return Status::FailedPrecondition("query needs at least two relations");
  }
  if (num_conditions() < 1) {
    return Status::FailedPrecondition("query needs at least one condition");
  }
  if (num_conditions() > 20) {
    return Status::InvalidArgument("at most 20 join conditions supported");
  }
  StatusOr<JoinGraph> graph = BuildJoinGraph();
  if (!graph.ok()) return graph.status();
  if (!graph->IsConnected()) {
    return Status::FailedPrecondition(
        "join graph must be connected (no cross products)");
  }
  return Status::OK();
}

std::string Query::ToString() const {
  std::string out = "Query over " + std::to_string(num_relations()) +
                    " relations:";
  for (const auto& cond : conditions_) {
    out += "\n  θ" + std::to_string(cond.id) + ": " + cond.ToString();
  }
  return out;
}

}  // namespace mrtheta
