#include "src/core/plan.h"

#include <cstdio>

namespace mrtheta {

const char* PlanJobKindName(PlanJobKind kind) {
  switch (kind) {
    case PlanJobKind::kHilbertJoin:
      return "hilbert-join";
    case PlanJobKind::kEquiJoin:
      return "equi-join";
    case PlanJobKind::kThetaPair:
      return "theta-pair";
    case PlanJobKind::kMerge:
      return "merge";
  }
  return "?";
}

std::string QueryPlan::ToString() const {
  std::string out = "Plan[" + strategy + "] est=" +
                    std::to_string(est_makespan_sec) + "s\n";
  for (size_t i = 0; i < jobs.size(); ++i) {
    const PlanJob& j = jobs[i];
    char buf[256];
    std::string ins;
    for (const PlanInput& in : j.inputs) {
      if (!ins.empty()) ins += ",";
      ins += in.is_base() ? "R" + std::to_string(in.base)
                          : "J" + std::to_string(in.job);
    }
    std::string ths;
    for (int t : j.thetas) {
      if (!ths.empty()) ths += ",";
      ths += std::to_string(t);
    }
    std::snprintf(buf, sizeof(buf),
                  "  J%zu %s in=[%s] θ=[%s] RN=%d%s est=%.1fs @[%.1f,%.1f]\n",
                  i, PlanJobKindName(j.kind), ins.c_str(), ths.c_str(),
                  j.num_reduce_tasks, j.skew_handling ? " skew" : "",
                  j.est_seconds, j.est_start, j.est_finish);
    out += buf;
  }
  return out;
}

}  // namespace mrtheta
