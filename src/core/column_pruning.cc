#include "src/core/column_pruning.h"

#include <algorithm>
#include <set>

namespace mrtheta {

std::vector<int> RequiredColumnsForBase(
    const Query& query, int base, const std::vector<int>& pending_thetas) {
  std::vector<int> cols;
  for (const OutputColumn& out : query.outputs()) {
    if (out.base == base) cols.push_back(out.column);
  }
  for (int t : pending_thetas) {
    const JoinCondition& cond = query.conditions()[t];
    for (const ColumnRef& ref : {cond.lhs, cond.rhs}) {
      if (ref.relation == base) cols.push_back(ref.column);
    }
  }
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

std::vector<int> PendingThetas(const Query& query, uint32_t applied_mask) {
  std::vector<int> pending;
  for (const JoinCondition& cond : query.conditions()) {
    if ((applied_mask & (1u << cond.id)) == 0) pending.push_back(cond.id);
  }
  return pending;
}

void AnnotateRequiredColumns(const Query& query, QueryPlan* plan) {
  const int num_jobs = static_cast<int>(plan->jobs.size());

  // Forward pass: base coverage of every job's output.
  std::vector<std::set<int>> covered(num_jobs);
  for (int i = 0; i < num_jobs; ++i) {
    for (const PlanInput& in : plan->jobs[i].inputs) {
      if (in.is_base()) {
        covered[i].insert(in.base);
      } else if (in.job >= 0 && in.job < i) {
        covered[i].insert(covered[in.job].begin(), covered[in.job].end());
      }
    }
  }

  // Backward pass: θ ids any strict descendant of job i evaluates on tuples
  // routed through i's output. Only those conditions (plus the projection)
  // keep a base's columns alive — a sibling branch's conditions are checked
  // on the sibling's own tuples and never re-evaluated after a rid-merge.
  // Jobs are topologically ordered, so consumers have higher indices.
  std::vector<uint32_t> downstream(num_jobs, 0);
  for (int c = num_jobs - 1; c >= 0; --c) {
    uint32_t own = 0;
    for (int t : plan->jobs[c].thetas) own |= 1u << t;
    for (const PlanInput& in : plan->jobs[c].inputs) {
      if (!in.is_base() && in.job >= 0 && in.job < c) {
        downstream[in.job] |= own | downstream[c];
      }
    }
  }

  for (int i = 0; i < num_jobs; ++i) {
    PlanJob& job = plan->jobs[i];
    std::vector<int> pending;
    for (const JoinCondition& cond : query.conditions()) {
      if (downstream[i] & (1u << cond.id)) pending.push_back(cond.id);
    }
    job.output_columns.clear();
    job.output_columns.reserve(covered[i].size());
    for (int base : covered[i]) {
      job.output_columns.push_back(
          {base, RequiredColumnsForBase(query, base, pending)});
    }
  }
}

}  // namespace mrtheta
