#ifndef MRTHETA_CORE_QUERY_H_
#define MRTHETA_CORE_QUERY_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/exec/join_side.h"
#include "src/graph/join_graph.h"
#include "src/relation/predicate.h"
#include "src/relation/relation.h"

namespace mrtheta {

/// \brief An N-join query: relations, theta conditions, and the projected
/// output columns (Section 3's Q over R1..Rm with θ1..θn).
///
/// Typical use:
///   Query q;
///   int t1 = q.AddRelation(calls);
///   int t2 = q.AddRelation(calls);
///   q.AddCondition(t1, "bt", ThetaOp::kLe, t2, "bt");
///   q.AddOutput(t2, "id");
class Query {
 public:
  /// Registers a relation; returns its query index. The same RelationPtr
  /// may be added multiple times (self-joins get distinct indices).
  int AddRelation(RelationPtr relation);

  /// Adds condition (a.col_a + offset) op (b.col_b); returns the θ id.
  StatusOr<int> AddCondition(int rel_a, const std::string& col_a, ThetaOp op,
                             int rel_b, const std::string& col_b,
                             double offset = 0.0);

  /// Adds an output column rel.col to the projection.
  Status AddOutput(int rel, const std::string& col);

  /// Adds a single-relation selection σ: (rel.col + offset) op literal.
  /// Executors push it below the first shuffle (map-side evaluation on the
  /// base relation); the planner discounts the relation's effective
  /// cardinality by the estimated selectivity. String columns support only
  /// offset-free = / <> against a string literal.
  Status AddFilter(int rel, const std::string& col, ThetaOp op, Value literal,
                   double offset = 0.0);

  int num_relations() const { return static_cast<int>(relations_.size()); }
  int num_conditions() const { return static_cast<int>(conditions_.size()); }
  const std::vector<RelationPtr>& relations() const { return relations_; }
  const std::vector<JoinCondition>& conditions() const { return conditions_; }
  const std::vector<OutputColumn>& outputs() const { return outputs_; }
  const std::vector<SelectionFilter>& filters() const { return filters_; }

  /// Bitmask over all condition ids (the set-cover universe).
  uint32_t AllConditionsMask() const;

  /// Conditions whose ids are in `thetas`.
  std::vector<JoinCondition> ConditionsById(
      const std::vector<int>& thetas) const;

  /// The join graph G_J (Definition 1): one edge per condition.
  StatusOr<JoinGraph> BuildJoinGraph() const;

  /// Checks structural validity: >=2 relations, >=1 condition, connected
  /// join graph, in-range and type-compatible condition endpoints.
  Status Validate() const;

  /// Canonical serialization of the query's *structure*: relation count
  /// plus every condition, filter and output with index-based endpoints,
  /// operators and offsets — everything the planner's choice depends on
  /// except the input data itself. Two queries built by the same clause
  /// sequence over any relations share the key; it deliberately excludes
  /// relation identity/content, which the ThetaEngine plan cache adds via
  /// Relation::generation() (docs/API.md "Serving").
  std::string StructureKey() const;

  std::string ToString() const;

 private:
  std::vector<RelationPtr> relations_;
  std::vector<JoinCondition> conditions_;
  std::vector<OutputColumn> outputs_;
  std::vector<SelectionFilter> filters_;
};

}  // namespace mrtheta

#endif  // MRTHETA_CORE_QUERY_H_
