#ifndef MRTHETA_WORKLOAD_FLIGHTS_H_
#define MRTHETA_WORKLOAD_FLIGHTS_H_

#include <cstdint>
#include <vector>

#include "src/api/query_builder.h"
#include "src/common/status.h"
#include "src/core/query.h"
#include "src/relation/relation.h"

namespace mrtheta {

/// \brief The paper's motivating scenario (Sec. 2.2): flight tables
/// FI_{i,i+1}(no, dt, at) between consecutive cities of an itinerary, and a
/// chain theta-join finding all travel plans whose stay-over at city i+1
/// falls inside [l1, l2].
struct FlightLegOptions {
  int64_t physical_rows = 2000;
  int64_t logical_rows = 0;  ///< 0 = physical
  /// Departure times span this many days (minutes resolution).
  int num_days = 7;
  /// Flight duration range in minutes.
  int min_duration = 45;
  int max_duration = 360;
  uint64_t seed = 7;
};

/// Stay-over window at a city, in minutes.
struct StayOver {
  int64_t min_minutes = 60;
  int64_t max_minutes = 6 * 60;
};

/// Generates one leg table FI_{i,i+1} with columns no, dt, at (minutes).
RelationPtr GenerateFlightLeg(int leg_index, const FlightLegOptions& options);

/// Builds the itinerary query over `legs.size()` legs with the given
/// stay-over windows (`stays.size() == legs.size() - 1`):
///   FI_i.at + stay[i].min < FI_{i+1}.dt  and
///   FI_{i+1}.dt < FI_i.at + stay[i].max.
StatusOr<Query> BuildItineraryQuery(const std::vector<RelationPtr>& legs,
                                    const std::vector<StayOver>& stays);

/// The same itinerary query as a fluent builder spec (aliases f0, f1, ...);
/// BuildItineraryQuery lowers exactly this builder. Mismatched leg/stay
/// counts yield a builder whose Build fails.
QueryBuilder ItineraryQueryBuilder(const std::vector<RelationPtr>& legs,
                                   const std::vector<StayOver>& stays);

}  // namespace mrtheta

#endif  // MRTHETA_WORKLOAD_FLIGHTS_H_
