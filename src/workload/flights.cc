#include "src/workload/flights.h"

#include <memory>

#include "src/common/rng.h"

namespace mrtheta {

RelationPtr GenerateFlightLeg(int leg_index,
                              const FlightLegOptions& options) {
  Schema schema({{"no", ValueType::kInt64},
                 {"dt", ValueType::kInt64},
                 {"at", ValueType::kInt64}});
  auto rel = std::make_shared<Relation>(
      "FI_" + std::to_string(leg_index) + "_" +
          std::to_string(leg_index + 1),
      schema);
  Rng rng(options.seed + static_cast<uint64_t>(leg_index) * 0x9e37);
  const int64_t horizon = static_cast<int64_t>(options.num_days) * 24 * 60;
  for (int64_t i = 0; i < options.physical_rows; ++i) {
    const int64_t dt = rng.UniformInt(0, horizon - 1);
    const int64_t at =
        dt + rng.UniformInt(options.min_duration, options.max_duration);
    rel->AppendIntRow({leg_index * 100000 + i, dt, at});
  }
  if (options.logical_rows > 0) rel->set_logical_rows(options.logical_rows);
  return rel;
}

QueryBuilder ItineraryQueryBuilder(const std::vector<RelationPtr>& legs,
                                   const std::vector<StayOver>& stays) {
  QueryBuilder b;
  if (stays.size() + 1 != legs.size()) return b;  // Build reports failure
  for (size_t i = 0; i < legs.size(); ++i) {
    b.From("f" + std::to_string(i), legs[i]);
  }
  for (size_t i = 0; i + 1 < legs.size(); ++i) {
    const std::string at = "f" + std::to_string(i) + ".at";
    const std::string dt = "f" + std::to_string(i + 1) + ".dt";
    // FI_i.at + stay.min < FI_{i+1}.dt
    b.Where(Col(at) + static_cast<double>(stays[i].min_minutes) < Col(dt));
    // FI_{i+1}.dt < FI_i.at + stay.max  ⇔  FI_i.at + stay.max > FI_{i+1}.dt
    b.Where(Col(at) + static_cast<double>(stays[i].max_minutes) > Col(dt));
  }
  for (size_t i = 0; i < legs.size(); ++i) {
    b.Select("f" + std::to_string(i) + ".no");
  }
  return b;
}

StatusOr<Query> BuildItineraryQuery(const std::vector<RelationPtr>& legs,
                                    const std::vector<StayOver>& stays) {
  if (legs.size() < 2) {
    return Status::InvalidArgument("itinerary needs at least two legs");
  }
  if (stays.size() + 1 != legs.size()) {
    return Status::InvalidArgument(
        "need exactly one stay-over window per intermediate city");
  }
  return ItineraryQueryBuilder(legs, stays).Build();
}

}  // namespace mrtheta
