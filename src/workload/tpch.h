#ifndef MRTHETA_WORKLOAD_TPCH_H_
#define MRTHETA_WORKLOAD_TPCH_H_

#include <cstdint>

#include "src/api/query_builder.h"
#include "src/common/status.h"
#include "src/core/query.h"
#include "src/relation/relation.h"

namespace mrtheta {

/// \brief TPC-H-lite: a from-scratch dbgen analogue (DESIGN.md §1).
///
/// Generates the eight TPC-H tables with spec-shaped columns and foreign-key
/// structure, at a physical sample size suitable for local execution while
/// representing `scale_factor` worth of logical data (SF 1 ≈ 1 GB: 6M
/// lineitem rows etc.). Dates are day numbers in [0, 2557) (1992–1998);
/// prices are in cents.
struct TpchOptions {
  double scale_factor = 1.0;          ///< logical SF (SF 200 ≈ 200 GB)
  int64_t physical_lineitem_rows = 12000;
  /// Independent physical samples of lineitem for self-join aliases
  /// (Q17/Q18/Q21); see GenerateMobileCallsInstance's rationale.
  int num_lineitem_instances = 3;
  /// Zipf exponent of lineitem's part/supplier popularity (0 = the spec's
  /// uniform draw). Real catalogs sell a few parts constantly and the long
  /// tail rarely; raising this makes l_partkey/l_suppkey heavy-hitter
  /// columns for the skew-handling benchmarks (docs/SKEW.md).
  double lineitem_key_skew = 0.0;
  uint64_t seed = 19920101;
};

/// The generated database.
struct TpchData {
  RelationPtr region;    ///< r_regionkey
  RelationPtr nation;    ///< n_nationkey, n_regionkey
  RelationPtr supplier;  ///< s_suppkey, s_nationkey, s_acctbal
  RelationPtr customer;  ///< c_custkey, c_nationkey, c_acctbal
  RelationPtr part;      ///< p_partkey, p_size, p_retailprice
  RelationPtr partsupp;  ///< ps_partkey, ps_suppkey, ps_availqty, ps_supplycost
  RelationPtr orders;    ///< o_orderkey, o_custkey, o_orderdate, o_totalprice
  RelationPtr lineitem;  ///< l_orderkey, l_partkey, l_suppkey, l_quantity,
                         ///< l_extendedprice, l_shipdate, l_commitdate,
                         ///< l_receiptdate
  /// Independent samples of lineitem (lineitem == lineitem_samples[0]);
  /// all share the same orders, so foreign keys stay consistent.
  std::vector<RelationPtr> lineitem_samples;
};

TpchData GenerateTpch(const TpchOptions& options);

/// \brief Builds the paper's amended TPC-H benchmark queries (Sec. 6.3.2,
/// Table 3): Q7 (5 relations, 8 conditions, {<=,>=}), Q17 (3 relations, 4
/// conditions, {<=}), Q18 (4 relations, 4 conditions, {>=}) and Q21 (6
/// relations, 8 conditions, {>=,<>}). Equality-only predicates are amended
/// with inequality join conditions exactly as the paper does.
StatusOr<Query> BuildTpchQuery(int which, const TpchData& data);

/// The same amended query as a fluent builder spec (aliases follow the
/// spec's table letters: s, l/l1/l2/l3, o, c, n, p); BuildTpchQuery lowers
/// exactly this builder. An unsupported `which` yields a builder whose
/// Build fails.
QueryBuilder TpchQueryBuilder(int which, const TpchData& data);

/// Q17 with the spec's single-relation selection restored: both lineitem
/// aliases keep only rows with l_quantity <= `quantity_cap` (the spec
/// filters on quantity below a per-part threshold; the cap plays that
/// role here). Exercises the Filter DSL / map-side selection pushdown
/// (docs/EXECUTOR.md): the join conditions and projection are exactly
/// BuildTpchQuery(17)'s.
StatusOr<Query> BuildTpchQuery17Filtered(const TpchData& data,
                                         int64_t quantity_cap);

}  // namespace mrtheta

#endif  // MRTHETA_WORKLOAD_TPCH_H_
