#include "src/workload/mobile.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/common/rng.h"

namespace mrtheta {

namespace {

// Samples a begin time (seconds in day) from the diurnal pattern: a
// 24-hour-periodic intensity with a morning and an evening peak.
int64_t SampleBeginTime(Rng& rng) {
  // Rejection sampling against intensity(h) in [0, 1].
  for (;;) {
    const double h = rng.UniformDouble() * 24.0;
    const double intensity =
        0.15 +
        0.55 * std::exp(-0.5 * std::pow((h - 11.0) / 3.0, 2.0)) +
        0.45 * std::exp(-0.5 * std::pow((h - 19.5) / 2.5, 2.0));
    if (rng.UniformDouble() < intensity) {
      return static_cast<int64_t>(h * 3600.0);
    }
  }
}

}  // namespace

RelationPtr GenerateMobileCalls(const MobileDataOptions& options) {
  Schema schema({{"id", ValueType::kInt64},
                 {"d", ValueType::kInt64},
                 {"bt", ValueType::kInt64},
                 {"l", ValueType::kInt64},
                 {"bsc", ValueType::kInt64}});
  auto rel = std::make_shared<Relation>("calls", schema);
  Rng rng(options.seed);
  for (int64_t i = 0; i < options.physical_rows; ++i) {
    const int64_t user = static_cast<int64_t>(
        rng.Zipf(static_cast<uint64_t>(options.num_users),
                 options.user_skew));
    const int64_t day =
        rng.UniformInt(1, options.num_days);
    const int64_t bt = SampleBeginTime(rng);
    // Call lengths: log-normal-ish, mostly short.
    const double len = std::exp(rng.Normal(4.0, 1.1));
    const int64_t l =
        std::clamp<int64_t>(static_cast<int64_t>(len), 1, 7200);
    const int64_t bsc = static_cast<int64_t>(rng.Zipf(
        static_cast<uint64_t>(options.num_stations), options.station_skew));
    rel->AppendIntRow({user, day, bt, l, bsc});
  }
  if (options.logical_bytes > 0) {
    rel->set_logical_rows(options.logical_bytes /
                          schema.avg_row_bytes());
  }
  return rel;
}

RelationPtr GenerateMobileCallsInstance(const MobileDataOptions& options,
                                        int instance) {
  MobileDataOptions per_instance = options;
  per_instance.seed =
      options.seed + 0x9e3779b9ULL * static_cast<uint64_t>(instance + 1);
  return GenerateMobileCalls(per_instance);
}

StatusOr<Query> BuildMobileQuery(int which,
                                 const MobileDataOptions& options) {
  if (which < 1 || which > 4) {
    return Status::InvalidArgument("mobile query id must be 1..4");
  }
  Query q;
  if (which <= 2) {
    const int t1 = q.AddRelation(GenerateMobileCallsInstance(options, 0));
    const int t2 = q.AddRelation(GenerateMobileCallsInstance(options, 1));
    const int t3 = q.AddRelation(GenerateMobileCallsInstance(options, 2));
    MRTHETA_RETURN_IF_ERROR(
        q.AddCondition(t1, "bt", ThetaOp::kLe, t2, "bt").status());
    MRTHETA_RETURN_IF_ERROR(
        q.AddCondition(t1, "l", ThetaOp::kGe, t2, "l").status());
    MRTHETA_RETURN_IF_ERROR(
        q.AddCondition(t2, "bsc",
                       which == 1 ? ThetaOp::kEq : ThetaOp::kNe, t3, "bsc")
            .status());
    MRTHETA_RETURN_IF_ERROR(
        q.AddCondition(t2, "d", ThetaOp::kEq, t3, "d").status());
    MRTHETA_RETURN_IF_ERROR(q.AddOutput(t3, "id"));
  } else {
    const int t1 = q.AddRelation(GenerateMobileCallsInstance(options, 0));
    const int t2 = q.AddRelation(GenerateMobileCallsInstance(options, 1));
    const int t3 = q.AddRelation(GenerateMobileCallsInstance(options, 2));
    const int t4 = q.AddRelation(GenerateMobileCallsInstance(options, 3));
    MRTHETA_RETURN_IF_ERROR(
        q.AddCondition(t1, "d", ThetaOp::kLt, t2, "d").status());
    MRTHETA_RETURN_IF_ERROR(
        q.AddCondition(t2, "d", ThetaOp::kLt, t3, "d").status());
    // t1.d + 3 > t3.d
    MRTHETA_RETURN_IF_ERROR(
        q.AddCondition(t1, "d", ThetaOp::kGt, t3, "d", /*offset=*/3.0)
            .status());
    MRTHETA_RETURN_IF_ERROR(
        q.AddCondition(t1, "bsc",
                       which == 3 ? ThetaOp::kEq : ThetaOp::kNe, t4, "bsc")
            .status());
    MRTHETA_RETURN_IF_ERROR(q.AddOutput(t1, "id"));
  }
  return q;
}

}  // namespace mrtheta
