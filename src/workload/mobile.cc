#include "src/workload/mobile.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/common/rng.h"

namespace mrtheta {

namespace {

// Samples a begin time (seconds in day) from the diurnal pattern: a
// 24-hour-periodic intensity with a morning and an evening peak.
int64_t SampleBeginTime(Rng& rng) {
  // Rejection sampling against intensity(h) in [0, 1].
  for (;;) {
    const double h = rng.UniformDouble() * 24.0;
    const double intensity =
        0.15 +
        0.55 * std::exp(-0.5 * std::pow((h - 11.0) / 3.0, 2.0)) +
        0.45 * std::exp(-0.5 * std::pow((h - 19.5) / 2.5, 2.0));
    if (rng.UniformDouble() < intensity) {
      return static_cast<int64_t>(h * 3600.0);
    }
  }
}

}  // namespace

RelationPtr GenerateMobileCalls(const MobileDataOptions& options) {
  Schema schema({{"id", ValueType::kInt64},
                 {"d", ValueType::kInt64},
                 {"bt", ValueType::kInt64},
                 {"l", ValueType::kInt64},
                 {"bsc", ValueType::kInt64}});
  auto rel = std::make_shared<Relation>("calls", schema);
  Rng rng(options.seed);
  for (int64_t i = 0; i < options.physical_rows; ++i) {
    const int64_t user = static_cast<int64_t>(
        rng.Zipf(static_cast<uint64_t>(options.num_users),
                 options.user_skew));
    const int64_t day =
        rng.UniformInt(1, options.num_days);
    const int64_t bt = SampleBeginTime(rng);
    // Call lengths: log-normal-ish, mostly short.
    const double len = std::exp(rng.Normal(4.0, 1.1));
    const int64_t l =
        std::clamp<int64_t>(static_cast<int64_t>(len), 1, 7200);
    const int64_t bsc = static_cast<int64_t>(rng.Zipf(
        static_cast<uint64_t>(options.num_stations), options.station_skew));
    rel->AppendIntRow({user, day, bt, l, bsc});
  }
  if (options.logical_bytes > 0) {
    rel->set_logical_rows(options.logical_bytes /
                          schema.avg_row_bytes());
  }
  return rel;
}

RelationPtr GenerateMobileCallsInstance(const MobileDataOptions& options,
                                        int instance) {
  MobileDataOptions per_instance = options;
  per_instance.seed =
      options.seed + 0x9e3779b9ULL * static_cast<uint64_t>(instance + 1);
  return GenerateMobileCalls(per_instance);
}

QueryBuilder MobileQueryBuilder(int which, const MobileDataOptions& options) {
  QueryBuilder b;
  if (which < 1 || which > 4) return b;  // Build reports the failure
  if (which <= 2) {
    b.From("t1", GenerateMobileCallsInstance(options, 0))
        .From("t2", GenerateMobileCallsInstance(options, 1))
        .From("t3", GenerateMobileCallsInstance(options, 2))
        .Where(Col("t1.bt") <= Col("t2.bt"))
        .Where(Col("t1.l") >= Col("t2.l"))
        .Where(which == 1 ? Col("t2.bsc") == Col("t3.bsc")
                          : Col("t2.bsc") != Col("t3.bsc"))
        .Where(Col("t2.d") == Col("t3.d"))
        .Select("t3.id");
  } else {
    b.From("t1", GenerateMobileCallsInstance(options, 0))
        .From("t2", GenerateMobileCallsInstance(options, 1))
        .From("t3", GenerateMobileCallsInstance(options, 2))
        .From("t4", GenerateMobileCallsInstance(options, 3))
        .Where(Col("t1.d") < Col("t2.d"))
        .Where(Col("t2.d") < Col("t3.d"))
        .Where(Col("t1.d") + 3 > Col("t3.d"))
        .Where(which == 3 ? Col("t1.bsc") == Col("t4.bsc")
                          : Col("t1.bsc") != Col("t4.bsc"))
        .Select("t1.id");
  }
  return b;
}

StatusOr<Query> BuildMobileQuery(int which,
                                 const MobileDataOptions& options) {
  if (which < 1 || which > 4) {
    return Status::InvalidArgument("mobile query id must be 1..4");
  }
  return MobileQueryBuilder(which, options).Build();
}

}  // namespace mrtheta
