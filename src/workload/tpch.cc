#include "src/workload/tpch.h"

#include <algorithm>
#include <memory>

#include "src/common/rng.h"

namespace mrtheta {

namespace {

constexpr int64_t kDateMin = 0;      // 1992-01-01
constexpr int64_t kDateMax = 2405;   // leaves room for ship/receipt lags

std::shared_ptr<Relation> NewTable(const char* name,
                                   std::vector<ColumnDef> cols) {
  return std::make_shared<Relation>(name, Schema(std::move(cols)));
}

}  // namespace

TpchData GenerateTpch(const TpchOptions& options) {
  Rng rng(options.seed);
  TpchData db;
  const double sf = options.scale_factor;
  const int64_t li_phys = options.physical_lineitem_rows;
  const int64_t ord_phys = std::max<int64_t>(4, li_phys / 4);
  const int64_t cust_phys = std::max<int64_t>(4, ord_phys / 10);
  const int64_t supp_phys = std::max<int64_t>(4, li_phys / 600);
  const int64_t part_phys = std::max<int64_t>(4, li_phys / 30);
  const int64_t ps_phys = part_phys * 4;

  // region
  {
    auto r = NewTable("region", {{"r_regionkey", ValueType::kInt64}});
    for (int64_t k = 0; k < 5; ++k) r->AppendIntRow({k});
    db.region = r;
  }

  // nation
  {
    auto r = NewTable("nation", {{"n_nationkey", ValueType::kInt64},
                                 {"n_regionkey", ValueType::kInt64}});
    for (int64_t k = 0; k < 25; ++k) r->AppendIntRow({k, k % 5});
    db.nation = r;
  }

  // supplier
  {
    auto r = NewTable("supplier", {{"s_suppkey", ValueType::kInt64},
                                   {"s_nationkey", ValueType::kInt64},
                                   {"s_acctbal", ValueType::kInt64}});
    for (int64_t k = 0; k < supp_phys; ++k) {
      r->AppendIntRow({k, rng.UniformInt(0, 24),
                       rng.UniformInt(-99999, 999999)});
    }
    r->set_logical_rows(static_cast<int64_t>(10000 * sf));
    db.supplier = r;
  }

  // customer
  {
    auto r = NewTable("customer", {{"c_custkey", ValueType::kInt64},
                                   {"c_nationkey", ValueType::kInt64},
                                   {"c_acctbal", ValueType::kInt64}});
    for (int64_t k = 0; k < cust_phys; ++k) {
      r->AppendIntRow({k, rng.UniformInt(0, 24),
                       rng.UniformInt(-99999, 999999)});
    }
    r->set_logical_rows(static_cast<int64_t>(150000 * sf));
    db.customer = r;
  }

  // part
  {
    auto r = NewTable("part", {{"p_partkey", ValueType::kInt64},
                               {"p_size", ValueType::kInt64},
                               {"p_retailprice", ValueType::kInt64}});
    for (int64_t k = 0; k < part_phys; ++k) {
      r->AppendIntRow({k, rng.UniformInt(1, 50),
                       90000 + (k % 200) * 100 + rng.UniformInt(0, 9999)});
    }
    r->set_logical_rows(static_cast<int64_t>(200000 * sf));
    db.part = r;
  }

  // partsupp
  {
    auto r = NewTable("partsupp", {{"ps_partkey", ValueType::kInt64},
                                   {"ps_suppkey", ValueType::kInt64},
                                   {"ps_availqty", ValueType::kInt64},
                                   {"ps_supplycost", ValueType::kInt64}});
    for (int64_t k = 0; k < ps_phys; ++k) {
      r->AppendIntRow({k / 4, rng.UniformInt(0, supp_phys - 1),
                       rng.UniformInt(1, 9999), rng.UniformInt(100, 100000)});
    }
    r->set_logical_rows(static_cast<int64_t>(800000 * sf));
    db.partsupp = r;
  }

  // orders
  std::vector<int64_t> order_dates(ord_phys);
  {
    auto r = NewTable("orders", {{"o_orderkey", ValueType::kInt64},
                                 {"o_custkey", ValueType::kInt64},
                                 {"o_orderdate", ValueType::kInt64},
                                 {"o_totalprice", ValueType::kInt64}});
    for (int64_t k = 0; k < ord_phys; ++k) {
      order_dates[k] = rng.UniformInt(kDateMin, kDateMax);
      r->AppendIntRow({k, rng.UniformInt(0, cust_phys - 1), order_dates[k],
                       rng.UniformInt(1000, 50000000)});
    }
    r->set_logical_rows(static_cast<int64_t>(1500000 * sf));
    db.orders = r;
  }

  // lineitem: exactly 4 lines per order keeps FK structure intact. Each
  // sample instance is an independent draw against the *same* orders.
  const int instances = std::max(1, options.num_lineitem_instances);
  for (int inst = 0; inst < instances; ++inst) {
    Rng li_rng(options.seed + 0x51ed270bULL * (inst + 1));
    auto r = NewTable(
        "lineitem", {{"l_orderkey", ValueType::kInt64},
                     {"l_partkey", ValueType::kInt64},
                     {"l_suppkey", ValueType::kInt64},
                     {"l_quantity", ValueType::kInt64},
                     {"l_extendedprice", ValueType::kInt64},
                     {"l_shipdate", ValueType::kInt64},
                     {"l_commitdate", ValueType::kInt64},
                     {"l_receiptdate", ValueType::kInt64}});
    // Part/supplier popularity: uniform per spec, Zipfian when the skew
    // knob is set (heavy-hitter workloads for docs/SKEW.md).
    const double key_skew = options.lineitem_key_skew;
    auto draw_key = [&li_rng, key_skew](int64_t n) {
      return key_skew > 0.0
                 ? static_cast<int64_t>(
                       li_rng.Zipf(static_cast<uint64_t>(n), key_skew))
                 : li_rng.UniformInt(0, n - 1);
    };
    for (int64_t k = 0; k < li_phys; ++k) {
      const int64_t okey = std::min(k / 4, ord_phys - 1);
      const int64_t odate = order_dates[okey];
      const int64_t ship = odate + li_rng.UniformInt(1, 121);
      const int64_t commit = odate + li_rng.UniformInt(30, 90);
      const int64_t receipt = ship + li_rng.UniformInt(1, 30);
      r->AppendIntRow({okey, draw_key(part_phys), draw_key(supp_phys),
                       li_rng.UniformInt(1, 50),
                       li_rng.UniformInt(90000, 10000000), ship, commit,
                       receipt});
    }
    r->set_logical_rows(static_cast<int64_t>(6000000 * sf));
    db.lineitem_samples.push_back(r);
  }
  db.lineitem = db.lineitem_samples[0];
  return db;
}

QueryBuilder TpchQueryBuilder(int which, const TpchData& data) {
  QueryBuilder b;
  switch (which) {
    case 7: {
      // Amended Q7: supplier/lineitem/orders/customer/nation, 8 conditions,
      // inequality set {<=, >=} (Table 3).
      b.From("s", data.supplier)
          .From("l", data.lineitem)
          .From("o", data.orders)
          .From("c", data.customer)
          .From("n", data.nation)
          .Where(Col("s.s_suppkey") == Col("l.l_suppkey"))
          .Where(Col("o.o_orderkey") == Col("l.l_orderkey"))
          .Where(Col("c.c_custkey") == Col("o.o_custkey"))
          .Where(Col("s.s_nationkey") == Col("n.n_nationkey"))
          .Where(Col("c.c_nationkey") == Col("n.n_nationkey"))
          .Where(Col("l.l_shipdate") >= Col("o.o_orderdate"))
          .Where(Col("l.l_receiptdate") <= Col("o.o_orderdate") + 120)
          .Where(Col("s.s_acctbal") >= Col("c.c_acctbal"))
          .Select("l.l_extendedprice");
      break;
    }
    case 17: {
      // Amended Q17: lineitem x2, part; inequality set {<=}.
      b.From("l1", data.lineitem_samples[0])
          .From("p", data.part)
          .From("l2", data.lineitem_samples[1])
          .Where(Col("l1.l_partkey") == Col("p.p_partkey"))
          .Where(Col("l2.l_partkey") == Col("p.p_partkey"))
          .Where(Col("l1.l_quantity") <= Col("l2.l_quantity"))
          .Where(Col("l1.l_extendedprice") <= Col("l2.l_extendedprice"))
          .Select("l1.l_extendedprice");
      break;
    }
    case 18: {
      // Amended Q18: customer, orders, lineitem x2; inequality set {>=}.
      b.From("c", data.customer)
          .From("o", data.orders)
          .From("l1", data.lineitem_samples[0])
          .From("l2", data.lineitem_samples[1])
          .Where(Col("c.c_custkey") == Col("o.o_custkey"))
          .Where(Col("o.o_orderkey") == Col("l1.l_orderkey"))
          .Where(Col("o.o_orderkey") == Col("l2.l_orderkey"))
          .Where(Col("l1.l_quantity") >= Col("l2.l_quantity"))
          .Select("c.c_custkey");
      break;
    }
    case 21: {
      // Amended Q21: supplier, lineitem x3, orders, nation; 8 conditions,
      // inequality set {>=, <>}.
      b.From("s", data.supplier)
          .From("l1", data.lineitem_samples[0])
          .From("o", data.orders)
          .From("n", data.nation)
          .From("l2", data.lineitem_samples[1])
          .From("l3", data.lineitem_samples[2])
          .Where(Col("s.s_suppkey") == Col("l1.l_suppkey"))
          .Where(Col("o.o_orderkey") == Col("l1.l_orderkey"))
          .Where(Col("s.s_nationkey") == Col("n.n_nationkey"))
          .Where(Col("l2.l_orderkey") == Col("l1.l_orderkey"))
          .Where(Col("l2.l_suppkey") != Col("l1.l_suppkey"))
          .Where(Col("l3.l_orderkey") == Col("l1.l_orderkey"))
          .Where(Col("l3.l_suppkey") != Col("l1.l_suppkey"))
          .Where(Col("l3.l_receiptdate") >= Col("l1.l_commitdate"))
          .Select("s.s_suppkey");
      break;
    }
    default:
      break;  // empty builder; Build reports the failure
  }
  return b;
}

StatusOr<Query> BuildTpchQuery(int which, const TpchData& data) {
  if (which != 7 && which != 17 && which != 18 && which != 21) {
    return Status::InvalidArgument("supported TPC-H queries: 7, 17, 18, 21");
  }
  return TpchQueryBuilder(which, data).Build();
}

StatusOr<Query> BuildTpchQuery17Filtered(const TpchData& data,
                                         int64_t quantity_cap) {
  QueryBuilder b = TpchQueryBuilder(17, data);
  const double cap = static_cast<double>(quantity_cap);
  b.Filter("l1", Col("l1.l_quantity") <= cap)
      .Filter("l2", Col("l2.l_quantity") <= cap);
  return b.Build();
}

}  // namespace mrtheta
