#ifndef MRTHETA_WORKLOAD_MOBILE_H_
#define MRTHETA_WORKLOAD_MOBILE_H_

#include <cstdint>

#include "src/api/query_builder.h"
#include "src/common/status.h"
#include "src/core/query.h"
#include "src/relation/relation.h"

namespace mrtheta {

/// \brief Generator for the paper's real-world mobile data set (Sec. 6.1):
/// phone-call records with schema
///   id   — caller id
///   d    — date (day number within the collection window)
///   bt   — begin time (seconds within the day)
///   l    — call length (seconds)
///   bsc  — base station code
///
/// The generator reproduces the two properties the paper's own scaling
/// procedure preserves: a diurnal begin-time pattern (24-hour periodic) and
/// Zipf-skewed station/user popularity.
struct MobileDataOptions {
  /// Physical tuples materialized (what executors join).
  int64_t physical_rows = 20000;
  /// Logical on-cluster data volume this relation represents, in bytes
  /// (the paper's 20 GB / 100 GB / 500 GB axis). 0 = physical only.
  int64_t logical_bytes = 0;
  int num_days = 61;
  int num_stations = 2000;
  int64_t num_users = 200000;
  /// Zipf exponents for user and station popularity.
  double user_skew = 0.8;
  double station_skew = 0.4;
  uint64_t seed = 2008;
};

/// Generates the call-record relation.
RelationPtr GenerateMobileCalls(const MobileDataOptions& options);

/// Generates the `instance`-th independent physical sample of the same
/// logical call table. Self-join queries bind each alias (t1, t2, ...) to a
/// distinct instance: a single shared sample would over-represent the
/// self-pair diagonal by N/n relative to the logical data (DESIGN.md §1).
RelationPtr GenerateMobileCallsInstance(const MobileDataOptions& options,
                                        int instance);

/// \brief Builds mobile benchmark query Q1..Q4 (Sec. 6.3.1) over the given
/// call relation (self-joined as t1, t2, ...):
///
///  Q1: concurrent calls at the same station
///      t1.bt<=t2.bt, t1.l>=t2.l, t2.bsc=t3.bsc, t2.d=t3.d
///  Q2: concurrent calls at different stations
///      t1.bt<=t2.bt, t1.l>=t2.l, t2.bsc<>t3.bsc, t2.d=t3.d
///  Q3: calls handled by the same station 3 days in a row
///      t1.d<t2.d, t2.d<t3.d, t1.d+3>t3.d, t1.bsc=t4.bsc
///  Q4: calls handled by different stations 3 days in a row
///      t1.d<t2.d, t2.d<t3.d, t1.d+3>t3.d, t1.bsc<>t4.bsc
///
/// Each alias is bound to an independent sample instance of the call table
/// (see GenerateMobileCallsInstance).
StatusOr<Query> BuildMobileQuery(int which, const MobileDataOptions& options);

/// The same benchmark query as a fluent builder spec (aliases t1, t2, ...):
/// callers can extend it (extra Where/Select clauses) before Build.
/// BuildMobileQuery lowers exactly this builder, so the two stay in sync by
/// construction. An out-of-range `which` yields a builder whose Build
/// fails.
QueryBuilder MobileQueryBuilder(int which, const MobileDataOptions& options);

}  // namespace mrtheta

#endif  // MRTHETA_WORKLOAD_MOBILE_H_
