#ifndef MRTHETA_HILBERT_HILBERT_H_
#define MRTHETA_HILBERT_HILBERT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"

namespace mrtheta {

/// \brief d-dimensional Hilbert space-filling curve over a 2^order-wide grid.
///
/// This is the paper's "perfect partition function" (Theorem 2): a bijection
/// between cell coordinates in the cross-product hyper-cube R1 × ... × Rd and
/// positions along a curve that visits every cell exactly once while
/// traversing all dimensions "fairly" — any contiguous curve segment covers
/// an (approximately) equal proportion of each dimension.
///
/// Implementation: Skilling's compact transform (AIP Conf. Proc. 707, 2004),
/// which converts between axes and a transposed Hilbert index with O(d·order)
/// bit operations. Requires dims * order <= 62 so indices fit in uint64_t.
class HilbertCurve {
 public:
  /// Creates a curve. `dims` in [1, 16]; `order` in [1, 31];
  /// dims*order <= 62.
  static StatusOr<HilbertCurve> Create(int dims, int order);

  int dims() const { return dims_; }
  int order() const { return order_; }

  /// Grid side length: 2^order cells per dimension.
  uint32_t side() const { return uint32_t{1} << order_; }

  /// Total number of cells: 2^(dims*order).
  uint64_t num_cells() const { return uint64_t{1} << (dims_ * order_); }

  /// Curve position of the cell at `coords` (coords.size() == dims, each
  /// < side()).
  uint64_t Encode(std::span<const uint32_t> coords) const;

  /// Inverse of Encode. `coords.size()` must equal dims().
  void Decode(uint64_t index, std::span<uint32_t> coords) const;

 private:
  HilbertCurve(int dims, int order) : dims_(dims), order_(order) {}

  int dims_;
  int order_;
};

/// \brief Coverage of a partition of the Hilbert curve into kR contiguous,
/// balanced segments ("components" c1..ckR in the paper, Definition 5 area).
///
/// For every segment and every dimension, records *which coordinate slices*
/// the segment touches. A tuple of relation i that falls into slice s along
/// dimension i must be replicated to every segment whose dimension-i coverage
/// contains s — this is exactly Cnt(t, C) from Eq. (7).
class SegmentCoverage {
 public:
  /// Walks the whole curve once (O(num_cells · dims)) and builds coverage.
  /// `num_segments` in [1, num_cells].
  static StatusOr<SegmentCoverage> Build(const HilbertCurve& curve,
                                         int num_segments);

  int num_segments() const { return num_segments_; }
  int dims() const { return dims_; }
  uint32_t side() const { return side_; }

  /// Segments whose dimension-`dim` coverage includes coordinate `slice`.
  const std::vector<int>& SegmentsForSlice(int dim, uint32_t slice) const {
    return slice_segments_[dim][slice];
  }

  /// Number of distinct slices segment `seg` touches along `dim`
  /// (the c(R_i) of the Theorem 2 proof).
  int CoverageCount(int seg, int dim) const {
    return coverage_count_[seg][dim];
  }

  /// Segment owning curve position `index` (segments are balanced contiguous
  /// ranges; used by reducers for duplicate-free result ownership).
  int SegmentOfIndex(uint64_t index) const;

  /// First curve position of segment `seg`.
  uint64_t SegmentBegin(int seg) const;
  /// One past the last curve position of segment `seg`.
  uint64_t SegmentEnd(int seg) const { return SegmentBegin(seg + 1); }

  /// Partition score of this partition for the given per-dimension slice
  /// populations: Score(f) = Σ_i Σ_slices pop_i(s) · |segments covering s|
  /// — Eq. (7) evaluated exactly.
  /// `slice_population[dim][slice]` = number of tuples mapped to that slice.
  int64_t Score(
      const std::vector<std::vector<int64_t>>& slice_population) const;

  /// Total replica count ("network volume" in tuples) when relation `dim`
  /// has `rows` tuples spread uniformly over slices. Closed over the exact
  /// coverage, so it reproduces Fig. 5 numbers.
  int64_t ReplicasForUniformRelation(int dim, int64_t rows) const;

 private:
  SegmentCoverage() = default;

  int num_segments_ = 0;
  int dims_ = 0;
  uint32_t side_ = 0;
  uint64_t num_cells_ = 0;
  // slice_segments_[dim][slice] -> sorted segment ids covering that slice.
  std::vector<std::vector<std::vector<int>>> slice_segments_;
  // coverage_count_[seg][dim] -> #distinct slices touched.
  std::vector<std::vector<int>> coverage_count_;
};

/// Picks a grid order for partitioning a `dims`-dimensional cube into
/// `num_segments` Hilbert segments: the smallest order whose grid has at
/// least `cells_per_segment_target` cells per segment, capped so the full
/// walk stays cheap (2^max_total_bits cells).
int ChooseGridOrder(int dims, int num_segments,
                    int cells_per_segment_target = 64,
                    int max_total_bits = 20);

/// Closed-form approximation of the per-tuple duplication factor for a
/// Hilbert partition into kR segments of a d-cube (Eq. 9's consequence):
/// each segment covers ≈ kR^(-1/d) of every dimension, so a slice is covered
/// by ≈ kR^((d-1)/d) segments. Used by the optimizer's Δ minimization where
/// an exact grid walk per candidate would be too slow.
double ApproxDuplicationFactor(int dims, int num_segments);

}  // namespace mrtheta

#endif  // MRTHETA_HILBERT_HILBERT_H_
