#include "src/hilbert/hilbert.h"

#include "src/common/status.h"

#include <cmath>

namespace mrtheta {

namespace {

// Skilling's in-place conversion from axis coordinates to the "transposed"
// Hilbert index representation (each X[i] holds every dims-th bit of the
// final index).
void AxesToTranspose(uint32_t* x, int order, int dims) {
  const uint32_t m = uint32_t{1} << (order - 1);
  // Inverse undo.
  for (uint32_t q = m; q > 1; q >>= 1) {
    const uint32_t p = q - 1;
    for (int i = 0; i < dims; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert low bits of x[0]
      } else {
        const uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < dims; ++i) x[i] ^= x[i - 1];
  uint32_t t = 0;
  for (uint32_t q = m; q > 1; q >>= 1) {
    if (x[dims - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < dims; ++i) x[i] ^= t;
}

// Inverse of AxesToTranspose.
void TransposeToAxes(uint32_t* x, int order, int dims) {
  const uint32_t n = uint32_t{2} << (order - 1);
  // Gray decode by H ^ (H/2).
  uint32_t t = x[dims - 1] >> 1;
  for (int i = dims - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (uint32_t q = 2; q != n; q <<= 1) {
    const uint32_t p = q - 1;
    for (int i = dims - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
}

}  // namespace

StatusOr<HilbertCurve> HilbertCurve::Create(int dims, int order) {
  if (dims < 1 || dims > 16) {
    return Status::InvalidArgument("dims must be in [1,16], got " +
                                   std::to_string(dims));
  }
  if (order < 1 || order > 31) {
    return Status::InvalidArgument("order must be in [1,31], got " +
                                   std::to_string(order));
  }
  if (dims * order > 62) {
    return Status::InvalidArgument(
        "dims*order must be <= 62 to fit a uint64 index");
  }
  return HilbertCurve(dims, order);
}

uint64_t HilbertCurve::Encode(std::span<const uint32_t> coords) const {
  MRTHETA_DCHECK(static_cast<int>(coords.size()) == dims_);
  uint32_t x[16];
  for (int i = 0; i < dims_; ++i) {
    MRTHETA_DCHECK(coords[i] < side());
    x[i] = coords[i];
  }
  if (order_ > 1) {
    AxesToTranspose(x, order_, dims_);
  } else if (dims_ > 1) {
    // order == 1: the transpose is the 1-bit Gray-code step.
    AxesToTranspose(x, 1, dims_);
  }
  // Interleave: MSB-first across bit planes, dimension 0 most significant.
  uint64_t index = 0;
  for (int bit = order_ - 1; bit >= 0; --bit) {
    for (int i = 0; i < dims_; ++i) {
      index = (index << 1) | ((x[i] >> bit) & 1u);
    }
  }
  return index;
}

void HilbertCurve::Decode(uint64_t index, std::span<uint32_t> coords) const {
  MRTHETA_DCHECK(static_cast<int>(coords.size()) == dims_);
  uint32_t x[16] = {0};
  // De-interleave.
  for (int bit = order_ - 1; bit >= 0; --bit) {
    for (int i = 0; i < dims_; ++i) {
      const int shift = bit * dims_ + (dims_ - 1 - i);
      x[i] = (x[i] << 1) | ((index >> shift) & 1u);
    }
  }
  TransposeToAxes(x, order_, dims_);
  for (int i = 0; i < dims_; ++i) coords[i] = x[i];
}

StatusOr<SegmentCoverage> SegmentCoverage::Build(const HilbertCurve& curve,
                                                 int num_segments) {
  if (num_segments < 1 ||
      static_cast<uint64_t>(num_segments) > curve.num_cells()) {
    return Status::InvalidArgument("num_segments must be in [1, num_cells]");
  }
  SegmentCoverage cov;
  cov.num_segments_ = num_segments;
  cov.dims_ = curve.dims();
  cov.side_ = curve.side();
  cov.num_cells_ = curve.num_cells();

  // seen[seg][dim] bitset over slices.
  const uint32_t side = curve.side();
  const int dims = curve.dims();
  std::vector<std::vector<std::vector<bool>>> seen(
      num_segments, std::vector<std::vector<bool>>(
                        dims, std::vector<bool>(side, false)));

  std::vector<uint32_t> coords(dims);
  for (uint64_t idx = 0; idx < cov.num_cells_; ++idx) {
    const int seg = cov.SegmentOfIndex(idx);
    curve.Decode(idx, coords);
    for (int d = 0; d < dims; ++d) seen[seg][d][coords[d]] = true;
  }

  cov.slice_segments_.assign(
      dims, std::vector<std::vector<int>>(side, std::vector<int>{}));
  cov.coverage_count_.assign(num_segments, std::vector<int>(dims, 0));
  for (int seg = 0; seg < num_segments; ++seg) {
    for (int d = 0; d < dims; ++d) {
      for (uint32_t s = 0; s < side; ++s) {
        if (seen[seg][d][s]) {
          cov.slice_segments_[d][s].push_back(seg);
          ++cov.coverage_count_[seg][d];
        }
      }
    }
  }
  return cov;
}

int SegmentCoverage::SegmentOfIndex(uint64_t index) const {
  // Balanced contiguous ranges: the first (num_cells % k) segments get one
  // extra cell. Invert the SegmentBegin formula.
  const uint64_t k = static_cast<uint64_t>(num_segments_);
  const uint64_t base = num_cells_ / k;
  const uint64_t extra = num_cells_ % k;
  const uint64_t long_cells = extra * (base + 1);
  if (index < long_cells) {
    return static_cast<int>(index / (base + 1));
  }
  return static_cast<int>(extra + (index - long_cells) / base);
}

uint64_t SegmentCoverage::SegmentBegin(int seg) const {
  const uint64_t k = static_cast<uint64_t>(num_segments_);
  const uint64_t base = num_cells_ / k;
  const uint64_t extra = num_cells_ % k;
  const uint64_t s = static_cast<uint64_t>(seg);
  return s * base + std::min(s, extra);
}

int64_t SegmentCoverage::Score(
    const std::vector<std::vector<int64_t>>& slice_population) const {
  MRTHETA_DCHECK(static_cast<int>(slice_population.size()) == dims_);
  int64_t score = 0;
  for (int d = 0; d < dims_; ++d) {
    MRTHETA_DCHECK(slice_population[d].size() == side_);
    for (uint32_t s = 0; s < side_; ++s) {
      score += slice_population[d][s] *
               static_cast<int64_t>(slice_segments_[d][s].size());
    }
  }
  return score;
}

int64_t SegmentCoverage::ReplicasForUniformRelation(int dim,
                                                    int64_t rows) const {
  // rows spread uniformly over `side_` slices: slice s holds rows/side
  // (± rounding) tuples.
  int64_t total = 0;
  for (uint32_t s = 0; s < side_; ++s) {
    const int64_t pop =
        rows / side_ + (static_cast<int64_t>(s) < rows % side_ ? 1 : 0);
    total += pop * static_cast<int64_t>(slice_segments_[dim][s].size());
  }
  return total;
}

int ChooseGridOrder(int dims, int num_segments, int cells_per_segment_target,
                    int max_total_bits) {
  MRTHETA_CHECK(dims >= 1);
  const double want_cells =
      static_cast<double>(num_segments) * cells_per_segment_target;
  int order = 1;
  while (order * dims < max_total_bits &&
         std::ldexp(1.0, order * dims) < want_cells) {
    ++order;
  }
  // Never exceed the walkable cap.
  while (order > 1 && order * dims > max_total_bits) --order;
  return order;
}

double ApproxDuplicationFactor(int dims, int num_segments) {
  if (dims <= 1) return 1.0;
  return std::pow(static_cast<double>(num_segments),
                  static_cast<double>(dims - 1) / dims);
}

}  // namespace mrtheta
