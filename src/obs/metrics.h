#ifndef MRTHETA_OBS_METRICS_H_
#define MRTHETA_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace mrtheta {

/// Monotonic int64 counter. Handles are stable for the registry's
/// lifetime; Add/value are lock-free.
class MetricCounter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Double-valued gauge with atomic Set and (CAS-loop) Add — Add makes it
/// usable for accumulated quantities that are not integers, e.g.
/// wasted_task_seconds.
class MetricGauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bounded histogram over non-negative samples: 64 power-of-two buckets
/// spanning [min_value, min_value * 2^62] plus an underflow bucket —
/// fixed memory no matter how many samples are recorded. Quantiles are
/// read off the bucket boundaries (geometric-midpoint interpolation), so
/// p50/p95/p99 carry at most one bucket (2x) of resolution error.
class MetricHistogram {
 public:
  static constexpr int kNumBuckets = 64;

  /// `min_value` is the upper bound of the first bucket (e.g. 1e-6 for a
  /// seconds-valued histogram: everything below 1µs lands in bucket 0).
  explicit MetricHistogram(double min_value = 1e-6);

  void Record(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Value at quantile q in [0, 1]; 0 when empty.
  double Quantile(double q) const;

 private:
  const double min_value_;
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Sorted key=value labels attached to a metric, e.g. {{"phase", "map"}}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// \brief One registry for every counter, gauge and histogram of a session
/// (docs/OBSERVABILITY.md). ThetaEngine owns one and feeds it everything
/// EngineMetrics and the fault-layer FaultReport used to scatter across
/// structs; binaries snapshot it with --metrics-out.
///
/// Get* registers on first use and returns a stable handle; the handle
/// methods are lock-free, so hot paths pay one atomic op per update.
/// Snapshots render every metric sorted by name (stable across runs for
/// diffing) as aligned text or as a JSON object.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  MetricCounter* GetCounter(const std::string& name,
                            const MetricLabels& labels = {});
  MetricGauge* GetGauge(const std::string& name,
                        const MetricLabels& labels = {});
  MetricHistogram* GetHistogram(const std::string& name,
                                const MetricLabels& labels = {},
                                double min_value = 1e-6);

  /// "name{k="v"} value" per line, sorted by full metric name; histograms
  /// expand to count/sum/p50/p95/p99 lines.
  std::string SnapshotText() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {"count":
  /// n, "sum": s, "p50": ..., "p95": ..., "p99": ...}}}.
  std::string SnapshotJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  static std::string FullName(const std::string& name,
                              const MetricLabels& labels);

  mutable Mutex mu_;
  // The maps are guarded; the pointed-to metric objects are not (their
  // handle methods are lock-free atomics by design).
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_
      MRTHETA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<MetricGauge>> gauges_
      MRTHETA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_
      MRTHETA_GUARDED_BY(mu_);
};

}  // namespace mrtheta

#endif  // MRTHETA_OBS_METRICS_H_
