#ifndef MRTHETA_OBS_TRACE_H_
#define MRTHETA_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace mrtheta {

/// One key/value annotation of a span. Numbers are kept unquoted in the
/// exported JSON so Perfetto can aggregate on them.
struct TraceArg {
  std::string key;
  std::string value;
  bool is_number = false;
};

/// One completed span, on the track of the thread that ran it. Timestamps
/// are microseconds since the owning Tracer's epoch.
struct TraceEvent {
  const char* name = "";      ///< span name ("map", "reduce", "plan", ...)
  const char* category = "";  ///< trace category ("runtime", "planner", ...)
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
  /// Non-zero links spans of one logical task across attempts (retry /
  /// speculation); the exporter renders Chrome flow arrows for every flow
  /// id that appears on two or more spans.
  uint64_t flow_id = 0;
  std::vector<TraceArg> args;
};

/// \brief Collector of runtime spans with a Chrome trace-event exporter
/// (docs/OBSERVABILITY.md).
///
/// One Tracer is installed process-wide through a TraceSession; the
/// instrumentation macros/objects consult Tracer::active() — a single
/// atomic load — and do nothing when no session is open, which is what
/// keeps the disabled cost unmeasurable (bench_runtime's trace_overhead
/// record gates the enabled cost too).
///
/// Determinism contract: tracing only *observes* wall-clock and task
/// structure. No simulated metric, output row or plan choice may depend on
/// whether a session is open — tests/obs_test.cc runs the differential.
///
/// Thread safety: Record may be called from any thread; WriteChromeTrace /
/// ToChromeJson snapshot under the same mutex and may run concurrently
/// with recording.
class Tracer {
 public:
  Tracer();

  /// The process-active tracer, or nullptr when tracing is disabled.
  static Tracer* active() {
    return active_tracer_.load(std::memory_order_acquire);
  }

  /// Appends one completed span. `ev.ts_us`/`tid` are filled by TraceSpan.
  void Record(TraceEvent ev);

  /// Microseconds since this tracer's construction.
  double NowMicros() const;

  /// Snapshot of everything recorded so far.
  std::vector<TraceEvent> events() const;
  size_t num_events() const;

  /// Chrome trace-event JSON ("{"traceEvents": [...]}"): complete "X"
  /// events (one track per thread, named via "M" metadata), plus "s"/"t"/
  /// "f" flow events binding retries and speculative copies to the earlier
  /// attempts of their task. Loadable in chrome://tracing and Perfetto.
  std::string ToChromeJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  friend class TraceSession;
  static std::atomic<Tracer*> active_tracer_;

  const std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mu_;
  std::vector<TraceEvent> events_ MRTHETA_GUARDED_BY(mu_);
};

/// RAII installer: `Tracer::active()` returns `tracer` for the session's
/// lifetime. Sessions must not nest and must outlive every traced thread
/// (in the binaries: open in main around the whole run). Installing the
/// null tracer is allowed and keeps tracing disabled.
class TraceSession {
 public:
  explicit TraceSession(Tracer* tracer);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  bool installed_ = false;
};

/// \brief Scoped span: records [construction, destruction) on the calling
/// thread's track of the active tracer. When no session is open the
/// constructor is one atomic load and every other call is a no-op on a
/// null pointer — cheap enough for per-task (not per-row) instrumentation
/// anywhere in the runtime.
///
/// Usage:
///   TraceSpan span("map", "runtime");
///   span.Arg("job", spec.name).Arg("task", t).Arg("attempt", attempt);
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category) {
    tracer_ = Tracer::active();
    if (tracer_ == nullptr) return;
    event_.name = name;
    event_.category = category;
    event_.ts_us = tracer_->NowMicros();
  }

  ~TraceSpan() { End(); }

  /// Closes the span early (before scope exit); idempotent — the
  /// destructor then does nothing. For spans that cover a phase shorter
  /// than their enclosing scope.
  void End() {
    if (tracer_ == nullptr) return;
    event_.dur_us = tracer_->NowMicros() - event_.ts_us;
    tracer_->Record(std::move(event_));
    tracer_ = nullptr;
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  TraceSpan& Arg(const char* key, const std::string& value) {
    if (tracer_ != nullptr) event_.args.push_back({key, value, false});
    return *this;
  }
  TraceSpan& Arg(const char* key, int64_t value) {
    if (tracer_ != nullptr) {
      event_.args.push_back({key, std::to_string(value), true});
    }
    return *this;
  }
  TraceSpan& Arg(const char* key, double value) {
    if (tracer_ != nullptr) {
      event_.args.push_back({key, std::to_string(value), true});
    }
    return *this;
  }
  /// Links this span to the other attempts of the same logical task.
  TraceSpan& Flow(uint64_t id) {
    if (tracer_ != nullptr) event_.flow_id = id;
    return *this;
  }

  bool enabled() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;
  TraceEvent event_;
};

/// Scope-only span with no args, for lightweight phase instrumentation:
///   MRTHETA_TRACE_SCOPE("shuffle", "runtime");
#define MRTHETA_TRACE_CONCAT_INNER(a, b) a##b
#define MRTHETA_TRACE_CONCAT(a, b) MRTHETA_TRACE_CONCAT_INNER(a, b)
#define MRTHETA_TRACE_SCOPE(name, category)                       \
  ::mrtheta::TraceSpan MRTHETA_TRACE_CONCAT(_trace_span_,         \
                                            __LINE__)((name), (category))

/// Stable flow id for one logical task: all attempts (retries, speculative
/// copies) of (job, phase, task) share it, so the exporter can draw the
/// retry arrows. Never returns 0 (0 means "no flow").
uint64_t TaskFlowId(const std::string& job, const char* phase, int64_t task);

}  // namespace mrtheta

#endif  // MRTHETA_OBS_TRACE_H_
