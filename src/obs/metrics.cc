#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mrtheta {

namespace {

std::string FormatDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

MetricHistogram::MetricHistogram(double min_value)
    : min_value_(min_value > 0.0 ? min_value : 1e-6) {}

void MetricHistogram::Record(double value) {
  int bucket = 0;
  if (value > min_value_) {
    // Bucket k holds (min * 2^(k-1), min * 2^k].
    const double ratio = value / min_value_;
    bucket = std::min(kNumBuckets - 1,
                      1 + static_cast<int>(std::floor(std::log2(ratio))));
    // Guard the boundary: log2 of an exact power of two can land on
    // either side depending on rounding.
    if (bucket > 1 && value <= min_value_ * std::ldexp(1.0, bucket - 1)) {
      --bucket;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

double MetricHistogram::Quantile(double q) const {
  const int64_t total = count();
  if (total <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(total))));
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      if (b == 0) return min_value_;
      // Geometric midpoint of (min * 2^(b-1), min * 2^b].
      return min_value_ * std::ldexp(1.0, b - 1) * std::sqrt(2.0);
    }
  }
  return min_value_ * std::ldexp(1.0, kNumBuckets - 1);
}

std::string MetricsRegistry::FullName(const std::string& name,
                                      const MetricLabels& labels) {
  if (labels.empty()) return name;
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string full = name + "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) full += ",";
    full += sorted[i].first + "=\"" + sorted[i].second + "\"";
  }
  full += "}";
  return full;
}

MetricCounter* MetricsRegistry::GetCounter(const std::string& name,
                                           const MetricLabels& labels) {
  const std::string key = FullName(name, labels);
  MutexLock lock(&mu_);
  auto& slot = counters_[key];
  if (slot == nullptr) slot = std::make_unique<MetricCounter>();
  return slot.get();
}

MetricGauge* MetricsRegistry::GetGauge(const std::string& name,
                                       const MetricLabels& labels) {
  const std::string key = FullName(name, labels);
  MutexLock lock(&mu_);
  auto& slot = gauges_[key];
  if (slot == nullptr) slot = std::make_unique<MetricGauge>();
  return slot.get();
}

MetricHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                               const MetricLabels& labels,
                                               double min_value) {
  const std::string key = FullName(name, labels);
  MutexLock lock(&mu_);
  auto& slot = histograms_[key];
  if (slot == nullptr) slot = std::make_unique<MetricHistogram>(min_value);
  return slot.get();
}

std::string MetricsRegistry::SnapshotText() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += name + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += name + " " + FormatDouble(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out += name + "_count " + std::to_string(histogram->count()) + "\n";
    out += name + "_sum " + FormatDouble(histogram->sum()) + "\n";
    out += name + "_p50 " + FormatDouble(histogram->Quantile(0.50)) + "\n";
    out += name + "_p95 " + FormatDouble(histogram->Quantile(0.95)) + "\n";
    out += name + "_p99 " + FormatDouble(histogram->Quantile(0.99)) + "\n";
  }
  return out;
}

std::string MetricsRegistry::SnapshotJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendJsonEscaped(out, name);
    out += "\": " + std::to_string(counter->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendJsonEscaped(out, name);
    out += "\": " + FormatDouble(gauge->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendJsonEscaped(out, name);
    out += "\": {\"count\": " + std::to_string(histogram->count()) +
           ", \"sum\": " + FormatDouble(histogram->sum()) +
           ", \"p50\": " + FormatDouble(histogram->Quantile(0.50)) +
           ", \"p95\": " + FormatDouble(histogram->Quantile(0.95)) +
           ", \"p99\": " + FormatDouble(histogram->Quantile(0.99)) + "}";
  }
  out += "\n  }\n}\n";
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  const std::string json = SnapshotJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open metrics file '" + path + "'");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_err = std::fclose(f);
  if (written != json.size() || close_err != 0) {
    return Status::Internal("short write to metrics file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace mrtheta
