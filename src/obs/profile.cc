#include "src/obs/profile.h"

#include <cstdio>
#include <sstream>

#include "src/common/table_printer.h"
#include "src/common/units.h"

namespace mrtheta {

namespace {

std::string FormatDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string JoinInputs(const std::vector<int>& inputs) {
  if (inputs.empty()) return "-";
  std::string s;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (i > 0) s += ",";
    s += "j" + std::to_string(inputs[i]);
  }
  return s;
}

}  // namespace

QueryProfile BuildQueryProfile(const ExecutionResult& result) {
  QueryProfile profile;
  profile.measured_seconds = result.measured_seconds;
  profile.simulated_seconds = ToSeconds(result.makespan);
  profile.sim_shuffle_bytes = result.sim_shuffle_bytes;
  profile.result_rows_physical =
      result.result_ids ? result.result_ids->num_rows() : 0;
  profile.result_selectivity = result.result_selectivity;
  profile.spill_bytes = result.spill_bytes;
  profile.spill_files = result.spill_files;
  profile.peak_mem_bytes = result.peak_mem_bytes;

  profile.jobs.reserve(result.jobs.size());
  for (size_t i = 0; i < result.jobs.size(); ++i) {
    const JobExecution& job = result.jobs[i];
    JobExecutionProfile jp;
    jp.index = static_cast<int>(i);
    jp.name = job.name;
    jp.kind = PlanJobKindName(job.kind);
    jp.kernel = job.kernel;
    jp.reduce_tasks = job.reduce_tasks;
    jp.input_jobs = job.input_jobs;
    jp.wall_seconds = job.wall_seconds;
    jp.sim_release_seconds = ToSeconds(job.timing.release);
    jp.sim_finish_seconds = ToSeconds(job.timing.finish);
    jp.input_bytes = job.metrics.input_bytes_logical;
    jp.shuffle_bytes = job.metrics.map_output_bytes_logical;
    jp.max_reduce_input_bytes = job.metrics.MaxReduceInputBytes();
    jp.map_records_physical = job.metrics.map_output_records_physical;
    jp.output_rows_physical = job.metrics.output_rows_physical;
    jp.output_rows_logical = job.metrics.output_rows_logical;
    jp.output_bytes = job.metrics.output_bytes_logical;
    jp.injected_faults = job.faults.injected_faults;
    jp.task_retries = job.faults.task_retries;
    jp.speculative_launches = job.faults.speculative_launches;
    jp.wasted_task_seconds = job.faults.wasted_task_seconds;
    jp.spill_bytes = job.spill_bytes;
    jp.spill_files = job.spill_files;
    jp.skew_residual_tasks = job.skew_residual_tasks;
    jp.skew_heavy_tasks = job.skew_heavy_tasks;
    jp.skew_heavy_groups = job.skew_heavy_groups;
    profile.jobs.push_back(std::move(jp));
  }
  return profile;
}

std::string QueryProfile::ToTable() const {
  TablePrinter table({"job", "name", "kind", "inputs", "kernel", "reducers",
                      "wall_s", "sim_s", "in_bytes", "shuffle_bytes",
                      "out_rows", "retries", "spec", "spill", "skew"});
  for (const JobExecutionProfile& jp : jobs) {
    const double sim_s = jp.sim_finish_seconds - jp.sim_release_seconds;
    std::string skew = jp.skew_heavy_tasks > 0
                           ? std::to_string(jp.skew_heavy_groups) + "g/" +
                                 std::to_string(jp.skew_heavy_tasks) + "t"
                           : "-";
    table.AddRow({"j" + std::to_string(jp.index), jp.name, jp.kind,
                  JoinInputs(jp.input_jobs), jp.kernel,
                  TablePrinter::Int(jp.reduce_tasks),
                  TablePrinter::Num(jp.wall_seconds, 4),
                  TablePrinter::Num(sim_s, 3), TablePrinter::Int(jp.input_bytes),
                  TablePrinter::Int(jp.shuffle_bytes),
                  TablePrinter::Int(jp.output_rows_physical),
                  TablePrinter::Int(jp.task_retries),
                  TablePrinter::Int(jp.speculative_launches),
                  jp.spill_bytes > 0 ? TablePrinter::Int(jp.spill_bytes) : "-",
                  skew});
  }
  std::ostringstream os;
  table.Print(os);
  os << "total: wall " << TablePrinter::Num(measured_seconds, 4)
     << " s, simulated " << TablePrinter::Num(simulated_seconds, 3)
     << " s, shuffle " << sim_shuffle_bytes << " bytes, result rows "
     << result_rows_physical << " (selectivity "
     << FormatDouble(result_selectivity) << ", plan "
     << (plan_cache_hit ? "cached" : "fresh") << ")\n";
  if (spill_bytes > 0 || peak_mem_bytes > 0) {
    os << "memory: spilled " << spill_bytes << " bytes in " << spill_files
       << " files, peak " << peak_mem_bytes << " bytes\n";
  }
  return os.str();
}

std::string QueryProfile::ToJson() const {
  std::string out = "{\n  \"jobs\": [";
  for (size_t i = 0; i < jobs.size(); ++i) {
    const JobExecutionProfile& jp = jobs[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"index\": " + std::to_string(jp.index) + ", \"name\": \"";
    AppendJsonEscaped(out, jp.name);
    out += "\", \"kind\": \"";
    AppendJsonEscaped(out, jp.kind);
    out += "\", \"kernel\": \"";
    AppendJsonEscaped(out, jp.kernel);
    out += "\", \"input_jobs\": [";
    for (size_t k = 0; k < jp.input_jobs.size(); ++k) {
      if (k > 0) out += ", ";
      out += std::to_string(jp.input_jobs[k]);
    }
    out += "], \"reduce_tasks\": " + std::to_string(jp.reduce_tasks) +
           ", \"wall_seconds\": " + FormatDouble(jp.wall_seconds) +
           ", \"sim_release_seconds\": " +
           FormatDouble(jp.sim_release_seconds) +
           ", \"sim_finish_seconds\": " + FormatDouble(jp.sim_finish_seconds) +
           ", \"input_bytes\": " + std::to_string(jp.input_bytes) +
           ", \"shuffle_bytes\": " + std::to_string(jp.shuffle_bytes) +
           ", \"max_reduce_input_bytes\": " +
           std::to_string(jp.max_reduce_input_bytes) +
           ", \"map_records_physical\": " +
           std::to_string(jp.map_records_physical) +
           ", \"output_rows_physical\": " +
           std::to_string(jp.output_rows_physical) +
           ", \"output_rows_logical\": " + FormatDouble(jp.output_rows_logical) +
           ", \"output_bytes\": " + std::to_string(jp.output_bytes) +
           ", \"injected_faults\": " + std::to_string(jp.injected_faults) +
           ", \"task_retries\": " + std::to_string(jp.task_retries) +
           ", \"speculative_launches\": " +
           std::to_string(jp.speculative_launches) +
           ", \"wasted_task_seconds\": " +
           FormatDouble(jp.wasted_task_seconds) +
           ", \"spill_bytes\": " + std::to_string(jp.spill_bytes) +
           ", \"spill_files\": " + std::to_string(jp.spill_files) +
           ", \"skew_residual_tasks\": " +
           std::to_string(jp.skew_residual_tasks) +
           ", \"skew_heavy_tasks\": " + std::to_string(jp.skew_heavy_tasks) +
           ", \"skew_heavy_groups\": " + std::to_string(jp.skew_heavy_groups) +
           "}";
  }
  out += "\n  ],\n";
  out += "  \"measured_seconds\": " + FormatDouble(measured_seconds) + ",\n";
  out += "  \"simulated_seconds\": " + FormatDouble(simulated_seconds) + ",\n";
  out += "  \"sim_shuffle_bytes\": " + std::to_string(sim_shuffle_bytes) + ",\n";
  out += "  \"result_rows_physical\": " + std::to_string(result_rows_physical) +
         ",\n";
  out += "  \"result_selectivity\": " + FormatDouble(result_selectivity) +
         ",\n";
  out += "  \"spill_bytes\": " + std::to_string(spill_bytes) + ",\n";
  out += "  \"spill_files\": " + std::to_string(spill_files) + ",\n";
  out += "  \"peak_mem_bytes\": " + std::to_string(peak_mem_bytes) + ",\n";
  out += std::string("  \"plan_cache_hit\": ") +
         (plan_cache_hit ? "true" : "false") + "\n";
  out += "}\n";
  return out;
}

}  // namespace mrtheta
