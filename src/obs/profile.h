#ifndef MRTHETA_OBS_PROFILE_H_
#define MRTHETA_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/executor.h"

namespace mrtheta {

/// Per-job slice of a QueryProfile. Every rows/bytes field is copied
/// verbatim from the job's simulated JobMeasurement (tests/obs_test.cc
/// pins the exact match), so the profile tells the same story as the
/// paper's cost model — plus the wall-clock and fault-tolerance view the
/// simulator does not have.
struct JobExecutionProfile {
  int index = 0;
  std::string name;
  std::string kind;    ///< PlanJobKindName
  std::string kernel;  ///< reduce-side kernel eligibility
  int reduce_tasks = 1;
  /// Plan-DAG inputs: indices of earlier jobs this one consumed (empty =
  /// base relations only) — what makes the rendering a tree.
  std::vector<int> input_jobs;

  // Wall vs simulated time.
  double wall_seconds = 0.0;       ///< measured on the local runtime
  double sim_release_seconds = 0.0;  ///< simulated schedule window
  double sim_finish_seconds = 0.0;

  // Volumes at pruned widths (JobMeasurement, logical unless noted).
  int64_t input_bytes = 0;
  int64_t shuffle_bytes = 0;  ///< map_output_bytes_logical
  int64_t max_reduce_input_bytes = 0;
  int64_t map_records_physical = 0;
  int64_t output_rows_physical = 0;
  double output_rows_logical = 0.0;
  int64_t output_bytes = 0;

  // Fault-tolerance + skew routing (JobExecution).
  int64_t injected_faults = 0;
  int64_t task_retries = 0;
  int64_t speculative_launches = 0;
  double wasted_task_seconds = 0.0;
  /// Shuffle bytes/files this job spilled under a memory budget
  /// (docs/MEMORY.md); zero without one.
  int64_t spill_bytes = 0;
  int64_t spill_files = 0;
  int skew_residual_tasks = 0;
  int skew_heavy_tasks = 0;
  int skew_heavy_groups = 0;
};

/// \brief Execution profile of one query: the per-job tree plus plan-wide
/// totals, rendered as an ASCII table (ToTable) or machine-readable JSON
/// (ToJson). Produced by QueryResult::profile() and
/// ThetaEngine::ExplainAnalyze (docs/OBSERVABILITY.md).
struct QueryProfile {
  std::vector<JobExecutionProfile> jobs;
  double measured_seconds = 0.0;
  double simulated_seconds = 0.0;
  int64_t sim_shuffle_bytes = 0;
  int64_t result_rows_physical = 0;
  double result_selectivity = 0.0;
  /// Plan-wide spill totals and the budget high-water mark
  /// (ExecutionResult; docs/MEMORY.md).
  int64_t spill_bytes = 0;
  int64_t spill_files = 0;
  int64_t peak_mem_bytes = 0;
  /// True when this execution reused a plan from the engine's plan cache
  /// (docs/API.md "Serving") instead of running the planner. Set by
  /// QueryResult::profile(); BuildQueryProfile alone leaves it false.
  bool plan_cache_hit = false;

  std::string ToTable() const;
  std::string ToJson() const;
};

/// Builds the profile of an executed plan. Pure read of the result — never
/// touches relations or re-runs anything.
QueryProfile BuildQueryProfile(const ExecutionResult& result);

}  // namespace mrtheta

#endif  // MRTHETA_OBS_PROFILE_H_
