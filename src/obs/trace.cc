#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace mrtheta {

namespace {

/// Process-wide thread-track ids: every thread that ever records a span
/// gets a small stable integer, assigned in first-span order. Ids survive
/// across sessions (a second session's tracks simply continue the
/// numbering), which keeps the assignment race-free and allocation-free on
/// the hot path.
std::atomic<int> g_next_tid{0};

int CurrentThreadTid() {
  thread_local int tid = -1;
  if (tid < 0) tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendArgsJson(std::string& out, const std::vector<TraceArg>& args) {
  out += "{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"";
    AppendJsonEscaped(out, args[i].key);
    out += "\": ";
    if (args[i].is_number) {
      out += args[i].value;
    } else {
      out += "\"";
      AppendJsonEscaped(out, args[i].value);
      out += "\"";
    }
  }
  out += "}";
}

std::string FormatMicros(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

}  // namespace

std::atomic<Tracer*> Tracer::active_tracer_{nullptr};

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

double Tracer::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::Record(TraceEvent ev) {
  ev.tid = CurrentThreadTid();
  MutexLock lock(&mu_);
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> Tracer::events() const {
  MutexLock lock(&mu_);
  return events_;
}

size_t Tracer::num_events() const {
  MutexLock lock(&mu_);
  return events_.size();
}

std::string Tracer::ToChromeJson() const {
  const std::vector<TraceEvent> events = this->events();

  // Thread-name metadata, one track per thread that recorded anything.
  std::vector<int> tids;
  for (const TraceEvent& ev : events) tids.push_back(ev.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());

  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  auto emit = [&out, &first](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  for (int tid : tids) {
    emit("{\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(tid) +
         ", \"name\": \"thread_name\", \"args\": {\"name\": \"thread-" +
         std::to_string(tid) + "\"}}");
  }

  // Complete events, in recorded order (Chrome sorts by ts itself).
  for (const TraceEvent& ev : events) {
    std::string line = "{\"ph\": \"X\", \"pid\": 1, \"tid\": " +
                       std::to_string(ev.tid) + ", \"ts\": " +
                       FormatMicros(ev.ts_us) + ", \"dur\": " +
                       FormatMicros(ev.dur_us) + ", \"name\": \"";
    AppendJsonEscaped(line, ev.name);
    line += "\", \"cat\": \"";
    AppendJsonEscaped(line, ev.category);
    line += "\", \"args\": ";
    AppendArgsJson(line, ev.args);
    line += "}";
    emit(line);
  }

  // Flow events: every flow id carried by >= 2 spans becomes an arrow
  // chain start -> step* -> end, each bound to its span's start time.
  std::map<uint64_t, std::vector<const TraceEvent*>> flows;
  for (const TraceEvent& ev : events) {
    if (ev.flow_id != 0) flows[ev.flow_id].push_back(&ev);
  }
  for (auto& [flow_id, spans] : flows) {
    if (spans.size() < 2) continue;
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       return a->ts_us < b->ts_us;
                     });
    for (size_t i = 0; i < spans.size(); ++i) {
      const TraceEvent& ev = *spans[i];
      const char* ph = i == 0 ? "s" : (i + 1 == spans.size() ? "f" : "t");
      std::string line = std::string("{\"ph\": \"") + ph +
                         "\", \"pid\": 1, \"tid\": " +
                         std::to_string(ev.tid) + ", \"ts\": " +
                         FormatMicros(ev.ts_us) + ", \"id\": " +
                         std::to_string(flow_id) + ", \"name\": \"attempts\"" +
                         ", \"cat\": \"";
      AppendJsonEscaped(line, ev.category);
      line += "\"";
      if (ph[0] == 'f') line += ", \"bp\": \"e\"";
      line += "}";
      emit(line);
    }
  }

  out += "\n]}\n";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  const std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file '" + path + "'");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_err = std::fclose(f);
  if (written != json.size() || close_err != 0) {
    return Status::Internal("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

TraceSession::TraceSession(Tracer* tracer) {
  if (tracer == nullptr) return;  // a null session keeps tracing disabled
  Tracer* expected = nullptr;
  installed_ = Tracer::active_tracer_.compare_exchange_strong(
      expected, tracer, std::memory_order_acq_rel);
  // Nesting a session is a programming error that used to be an assert() —
  // invisible in NDEBUG Release builds, where the inner session silently
  // recorded nothing and the caller's trace went missing. It now aborts in
  // every build type (tests/thread_safety_test.cc holds the regression).
  MRTHETA_CHECK(installed_ && "nested TraceSession");
}

TraceSession::~TraceSession() {
  if (installed_) {
    Tracer::active_tracer_.store(nullptr, std::memory_order_release);
  }
}

uint64_t TaskFlowId(const std::string& job, const char* phase, int64_t task) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  auto mix = [&h](const char* s) {
    for (; *s != '\0'; ++s) {
      h ^= static_cast<unsigned char>(*s);
      h *= 1099511628211ULL;
    }
    h ^= '|';
    h *= 1099511628211ULL;
  };
  mix(job.c_str());
  mix(phase);
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<unsigned char>(task >> (8 * i));
    h *= 1099511628211ULL;
  }
  return h == 0 ? 1 : h;
}

}  // namespace mrtheta
