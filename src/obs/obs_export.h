#ifndef MRTHETA_OBS_OBS_EXPORT_H_
#define MRTHETA_OBS_OBS_EXPORT_H_

#include <optional>
#include <string>

#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace mrtheta {

/// \brief Binary-side glue for `--trace-out` / `--metrics-out`
/// (docs/OBSERVABILITY.md).
///
/// Owns the session Tracer and opens a TraceSession only when a trace path
/// was given, so a binary run without the flag keeps tracing disabled (one
/// atomic load per span site). Construct it in main() before the engine,
/// call Finish() once after the run:
///
///   ObsExporter obs(flags->trace_out, flags->metrics_out);
///   ...run queries...
///   if (Status s = obs.Finish(&engine.metrics_registry()); !s.ok()) ...
class ObsExporter {
 public:
  ObsExporter(std::string trace_path, std::string metrics_path)
      : trace_path_(std::move(trace_path)),
        metrics_path_(std::move(metrics_path)) {
    if (!trace_path_.empty()) session_.emplace(&tracer_);
  }

  /// True when `--trace-out` was given and spans are being recorded.
  bool tracing() const { return session_.has_value(); }

  /// Writes the Chrome trace (if tracing) and the registry snapshot (if a
  /// metrics path was given; `registry` may be null to skip). Returns the
  /// first failure; both writes are still attempted.
  Status Finish(const MetricsRegistry* registry) {
    Status status = Status::OK();
    if (tracing()) {
      if (Status s = tracer_.WriteChromeTrace(trace_path_); !s.ok()) {
        status = s;
      }
    }
    if (!metrics_path_.empty() && registry != nullptr) {
      if (Status s = registry->WriteJson(metrics_path_); !s.ok()) {
        if (status.ok()) status = s;
      }
    }
    return status;
  }

 private:
  const std::string trace_path_;
  const std::string metrics_path_;
  Tracer tracer_;
  std::optional<TraceSession> session_;
};

}  // namespace mrtheta

#endif  // MRTHETA_OBS_OBS_EXPORT_H_
