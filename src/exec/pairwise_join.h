#ifndef MRTHETA_EXEC_PAIRWISE_JOIN_H_
#define MRTHETA_EXEC_PAIRWISE_JOIN_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/exec/join_side.h"
#include "src/exec/theta_kernels.h"
#include "src/mapreduce/job.h"

namespace mrtheta {

/// \brief Specification of a pair-wise join job (the building block of the
/// Hive/Pig/YSmart-style cascades).
struct PairwiseJoinJobSpec {
  std::string name = "pairwise-join";
  JoinSide left;
  JoinSide right;
  std::vector<RelationPtr> base_relations;
  /// Conditions connecting left and right (query base indices).
  std::vector<JoinCondition> conditions;
  int num_reduce_tasks = 1;
  uint64_t seed = 42;
  /// Reduce-side kernel selection (kAuto: sort-based when a condition
  /// qualifies, see ChooseSortDriver).
  KernelPolicy kernel_policy = KernelPolicy::kAuto;
  /// Reduce groups with fewer candidate pairs than this run the generic
  /// nested loop even when a sort driver exists (sorting tiny groups costs
  /// more than it saves). Threaded from ExecutorOptions so benches can
  /// sweep it.
  int64_t sort_kernel_min_pairs = kSortKernelMinPairs;
  /// Required-column analysis for this job (PlanJob::output_columns): when
  /// non-empty, the output intermediate takes pruned per-base widths and
  /// base sides ship pruned map payloads. Empty = full-width accounting.
  std::vector<RequiredColumns> output_columns;
};

/// \brief Repartition equi-join: requires at least one `=` condition whose
/// endpoints land on opposite sides; that condition's value is the shuffle
/// key; remaining conditions are filtered reduce-side.
StatusOr<MapReduceJobSpec> BuildEquiJoinJob(const PairwiseJoinJobSpec& spec);

/// \brief 1-Bucket-Theta (Okcan & Riedewald, SIGMOD'11 — the paper's [25]):
/// partitions the |L|×|R| cross-product matrix into a c_r × c_c grid of
/// near-square buckets (c_r·c_c = reduce tasks, shaped to minimize
/// replication). Left tuples replicate across a row band, right tuples down
/// a column band; each (l, r) pair meets in exactly one bucket, so theta
/// conditions of any form are evaluated exactly once.
StatusOr<MapReduceJobSpec> BuildOneBucketThetaJob(
    const PairwiseJoinJobSpec& spec);

/// The (rows, cols) bucket grid 1-Bucket-Theta uses for the given logical
/// cardinalities and reduce count (exposed for tests/benches).
struct BucketGrid {
  int rows = 1;
  int cols = 1;
  /// Total tuple replicas shipped: |L|·cols + |R|·rows.
  double replicas = 0.0;
};
BucketGrid ChooseBucketGrid(double left_rows, double right_rows,
                            int num_reduce_tasks);

}  // namespace mrtheta

#endif  // MRTHETA_EXEC_PAIRWISE_JOIN_H_
