#ifndef MRTHETA_EXEC_THETA_KERNELS_H_
#define MRTHETA_EXEC_THETA_KERNELS_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "src/relation/column_view.h"
#include "src/relation/predicate.h"
#include "src/relation/relation.h"

namespace mrtheta {

/// Which inner-loop implementation a join job's reduce side runs on.
enum class JoinKernel {
  kGeneric,    ///< per-pair nested loop over compiled predicates
  kSortTheta,  ///< sort both sides on the driving column, range-scan
};

const char* JoinKernelName(JoinKernel kernel);

/// Per-job kernel selection directive, threaded from the executor into the
/// job builders. kAuto picks kSortTheta whenever a condition qualifies.
enum class KernelPolicy {
  kAuto,
  kGenericOnly,
};

/// The typed domain a condition's operand columns share — decides whether
/// the sort kernel applies and which key type it sorts.
enum class SortKeyDomain {
  kNone,    ///< no typed domain (should not occur for valid conditions)
  kInt64,   ///< int64 vs int64 with an integral offset
  kDouble,  ///< any other numeric pairing
  kString,  ///< string vs string, offset-free
};

SortKeyDomain ClassifySortKey(const JoinCondition& cond,
                              const Relation& lhs_rel,
                              const Relation& rhs_rel);

/// Index into `conditions` of the condition that should drive the
/// sort-based kernel, or -1 when none qualifies. A condition qualifies when
/// its operands share a typed sort domain and its operator is not `<>`
/// (whose candidate set is nearly the full cross product, so sorting buys
/// nothing). Inequalities are preferred over equalities: range pruning is
/// where the sort path beats hashing.
int ChooseSortDriver(const std::vector<JoinCondition>& conditions,
                     const std::vector<RelationPtr>& base_relations);

/// Default for the per-job sort-kernel gate: below this many candidate
/// pairs the generic nested loop is used even when a sort driver exists
/// (sorting tiny reduce groups costs more than it saves). The effective
/// value is per-job — `sort_kernel_min_pairs` on the pairwise/merge job
/// specs, fed from ExecutorOptions so benches can sweep it.
inline constexpr int64_t kSortKernelMinPairs = 256;

/// \brief Emits every (left pos, right pos) pair whose keys satisfy `op`,
/// by sorting both sides and scanning qualifying key ranges.
///
/// `left` / `right` are (key, caller position) pairs; both vectors are
/// sorted in place. For single-condition joins this replaces the O(n·m)
/// nested loop with O(n log n + m log m + output). Emission order is
/// deterministic: ascending left key (ties by position), then ascending
/// right key within the qualifying range.
template <typename K, typename Emit>
void SortedThetaScan(std::vector<std::pair<K, int32_t>>& left, ThetaOp op,
                     std::vector<std::pair<K, int32_t>>& right, Emit&& emit) {
  auto by_key = [](const std::pair<K, int32_t>& a,
                   const std::pair<K, int32_t>& b) {
    return a.first < b.first || (a.first == b.first && a.second < b.second);
  };
  std::sort(left.begin(), left.end(), by_key);
  std::sort(right.begin(), right.end(), by_key);
  const size_t n = left.size();
  const size_t m = right.size();

  switch (op) {
    case ThetaOp::kLt:
    case ThetaOp::kLe: {
      // Matching rights form a suffix whose start is monotone in the left
      // key: two-pointer, no per-left binary search.
      size_t start = 0;
      for (size_t i = 0; i < n; ++i) {
        const K& lk = left[i].first;
        while (start < m && (op == ThetaOp::kLt ? !(lk < right[start].first)
                                                : right[start].first < lk)) {
          ++start;
        }
        for (size_t j = start; j < m; ++j) {
          emit(left[i].second, right[j].second);
        }
      }
      break;
    }
    case ThetaOp::kGt:
    case ThetaOp::kGe: {
      // Matching rights form a prefix whose end is monotone in the left key.
      size_t end = 0;
      for (size_t i = 0; i < n; ++i) {
        const K& lk = left[i].first;
        while (end < m && (op == ThetaOp::kGt ? right[end].first < lk
                                              : !(lk < right[end].first))) {
          ++end;
        }
        for (size_t j = 0; j < end; ++j) {
          emit(left[i].second, right[j].second);
        }
      }
      break;
    }
    case ThetaOp::kEq: {
      // Sort-merge over runs of equal keys.
      size_t i = 0, j = 0;
      while (i < n && j < m) {
        if (left[i].first < right[j].first) {
          ++i;
        } else if (right[j].first < left[i].first) {
          ++j;
        } else {
          size_t ie = i, je = j;
          while (ie < n && !(left[i].first < left[ie].first)) ++ie;
          while (je < m && !(right[j].first < right[je].first)) ++je;
          for (size_t a = i; a < ie; ++a) {
            for (size_t b = j; b < je; ++b) {
              emit(left[a].second, right[b].second);
            }
          }
          i = ie;
          j = je;
        }
      }
      break;
    }
    case ThetaOp::kNe: {
      // Complement of the equal run: [0, lo) and [hi, m) per left run.
      size_t i = 0;
      size_t lo = 0, hi = 0;
      while (i < n) {
        size_t ie = i;
        while (ie < n && !(left[i].first < left[ie].first)) ++ie;
        while (lo < m && right[lo].first < left[i].first) ++lo;
        hi = std::max(hi, lo);
        while (hi < m && !(left[i].first < right[hi].first)) ++hi;
        for (size_t a = i; a < ie; ++a) {
          for (size_t b = 0; b < lo; ++b) {
            emit(left[a].second, right[b].second);
          }
          for (size_t b = hi; b < m; ++b) {
            emit(left[a].second, right[b].second);
          }
        }
        i = ie;
      }
      break;
    }
  }
}

/// \brief Joins two row sets under one condition via the sort-based kernel.
///
/// `lrows` / `rrows` are row indices into the relations holding the
/// condition's lhs / rhs columns; `emit(lpos, rpos)` receives positions
/// into those spans for every satisfying pair. Returns false (emitting
/// nothing) when the condition has no typed sort domain — the caller falls
/// back to the generic nested loop.
template <typename Emit>
bool SortJoinRowSets(const JoinCondition& cond, const Relation& lhs_rel,
                     std::span<const int64_t> lrows, const Relation& rhs_rel,
                     std::span<const int64_t> rrows, Emit&& emit) {
  const SortKeyDomain domain = ClassifySortKey(cond, lhs_rel, rhs_rel);
  if (domain == SortKeyDomain::kNone) return false;
  const CompiledPredicate pred =
      CompiledPredicate::Compile(cond, lhs_rel, rhs_rel);

  auto run = [&](auto lhs_key, auto rhs_key) {
    using K = decltype(lhs_key(int64_t{0}));
    std::vector<std::pair<K, int32_t>> left, right;
    left.reserve(lrows.size());
    right.reserve(rrows.size());
    for (size_t i = 0; i < lrows.size(); ++i) {
      left.emplace_back(lhs_key(lrows[i]), static_cast<int32_t>(i));
    }
    for (size_t i = 0; i < rrows.size(); ++i) {
      right.emplace_back(rhs_key(rrows[i]), static_cast<int32_t>(i));
    }
    SortedThetaScan(left, cond.op, right, emit);
  };

  switch (domain) {
    case SortKeyDomain::kInt64:
      run([&](int64_t r) { return pred.LhsKeyInt(r); },
          [&](int64_t r) { return pred.RhsKeyInt(r); });
      break;
    case SortKeyDomain::kDouble:
      run([&](int64_t r) { return pred.LhsKeyDouble(r); },
          [&](int64_t r) { return pred.RhsKeyDouble(r); });
      break;
    case SortKeyDomain::kString:
      run([&](int64_t r) { return std::string_view(pred.LhsKeyString(r)); },
          [&](int64_t r) { return std::string_view(pred.RhsKeyString(r)); });
      break;
    case SortKeyDomain::kNone:
      return false;
  }
  return true;
}

}  // namespace mrtheta

#endif  // MRTHETA_EXEC_THETA_KERNELS_H_
