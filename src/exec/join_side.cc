#include "src/exec/join_side.h"

#include "src/common/status.h"

#include <algorithm>
#include <cmath>

namespace mrtheta {

std::shared_ptr<const CompiledRowFilter> CompiledRowFilter::CompileFor(
    int base, const std::vector<SelectionFilter>& filters,
    const RelationPtr& rel) {
  auto compiled = std::make_shared<CompiledRowFilter>();
  for (const SelectionFilter& f : filters) {
    if (f.col.relation != base) continue;
    const ColumnDef& def = rel->schema().column(f.col.column);
    // Typed fast paths: the variant dispatch happens once per filter, not
    // once per row. Integral-valued double literals (the QueryBuilder DSL
    // wraps every numeric literal as a double) fold onto the int64 path.
    const bool integral_literal =
        f.literal.type() == ValueType::kInt64 ||
        (f.literal.type() == ValueType::kDouble &&
         std::abs(f.literal.AsDouble()) < 9.0e15 &&  // exact int64 range
         static_cast<double>(static_cast<int64_t>(f.literal.AsDouble())) ==
             f.literal.AsDouble());
    if (def.type == ValueType::kInt64 && integral_literal &&
        std::abs(f.offset) < 9.0e15 &&
        f.offset == static_cast<int64_t>(f.offset)) {
      const int64_t* data = rel->TryColumn<int64_t>(f.col.column)->data();
      const int64_t lit = f.literal.type() == ValueType::kInt64
                              ? f.literal.AsInt()
                              : static_cast<int64_t>(f.literal.AsDouble());
      const int64_t off = static_cast<int64_t>(f.offset);
      const ThetaOp op = f.op;
      compiled->preds_.push_back([data, lit, off, op](int64_t row) {
        return EvalThetaInt(data[row], op, lit, off);
      });
    } else if (def.type != ValueType::kString) {
      const Relation* r = rel.get();
      const int col = f.col.column;
      const double lit = f.literal.AsDouble();
      const double off = f.offset;
      const ThetaOp op = f.op;
      compiled->preds_.push_back([r, col, lit, off, op](int64_t row) {
        return EvalThetaDouble(r->GetDouble(row, col), op, lit, off);
      });
    } else {
      const Relation* r = rel.get();
      const SelectionFilter filter = f;
      compiled->preds_.push_back([r, filter](int64_t row) {
        return filter.Eval(r->Get(row, filter.col.column));
      });
    }
  }
  if (compiled->preds_.empty()) return nullptr;
  compiled->pinned_ = rel;
  return compiled;
}

JoinSide JoinSide::ForBase(RelationPtr rel, int base_index) {
  JoinSide side;
  side.scale = rel->num_rows() > 0
                   ? static_cast<double>(rel->logical_rows()) /
                         static_cast<double>(rel->num_rows())
                   : 1.0;
  side.data = std::move(rel);
  side.bases = {base_index};
  side.is_base = true;
  return side;
}

JoinSide JoinSide::ForIntermediate(RelationPtr rel, std::vector<int> bases) {
  JoinSide side;
  side.scale = rel->num_rows() > 0
                   ? static_cast<double>(rel->logical_rows()) /
                         static_cast<double>(rel->num_rows())
                   : 1.0;
  side.data = std::move(rel);
  side.bases = std::move(bases);
  side.is_base = false;
  return side;
}

int64_t JoinSide::BaseRow(int64_t row, int base) const {
  if (is_base) {
    MRTHETA_DCHECK(base == bases[0]);
    return row;
  }
  const auto it = std::find(bases.begin(), bases.end(), base);
  MRTHETA_DCHECK(it != bases.end());
  const int col = static_cast<int>(it - bases.begin());
  return data->GetInt(row, col);
}

bool JoinSide::Covers(int base) const {
  return std::find(bases.begin(), bases.end(), base) != bases.end();
}

Schema MakeIntermediateSchema(
    const std::vector<int>& bases,
    const std::vector<RelationPtr>& base_relations,
    const std::vector<RequiredColumns>& required) {
  std::vector<ColumnDef> cols;
  cols.reserve(bases.size());
  for (int b : bases) {
    const Schema& schema = base_relations[b]->schema();
    const RequiredColumns* rc = FindRequired(required, b);
    const int width = static_cast<int>(
        rc != nullptr ? PrunedRowBytes(schema, rc->columns)
                      : schema.avg_row_bytes());
    cols.emplace_back("rid_" + std::to_string(b), ValueType::kInt64, width);
  }
  return Schema(std::move(cols));
}

int64_t SideShuffleBytes(const JoinSide& side,
                         const std::vector<JoinCondition>& conditions,
                         const std::vector<RequiredColumns>& required,
                         const std::vector<RelationPtr>& base_relations) {
  if (!side.is_base || required.empty()) {
    return side.data->schema().avg_row_bytes();
  }
  const int base = side.bases[0];
  // Downstream requirement ∪ this job's own condition columns on the base.
  std::vector<int> cols;
  if (const RequiredColumns* rc = FindRequired(required, base)) {
    cols = rc->columns;
  }
  for (const JoinCondition& cond : conditions) {
    for (const ColumnRef& ref : {cond.lhs, cond.rhs}) {
      if (ref.relation == base) cols.push_back(ref.column);
    }
  }
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return PrunedRowBytes(base_relations[base]->schema(), cols);
}

const int64_t* RidColumnFor(const JoinSide& side, int base) {
  if (side.is_base) {
    MRTHETA_CHECK(base == side.bases[0]);
    return nullptr;
  }
  const auto it = std::find(side.bases.begin(), side.bases.end(), base);
  MRTHETA_CHECK(it != side.bases.end());
  return side.data
      ->TryColumn<int64_t>(static_cast<int>(it - side.bases.begin()))
      ->data();
}

StatusOr<Relation> ProjectResult(
    const Relation& intermediate, const std::vector<int>& covered_bases,
    const std::vector<RelationPtr>& base_relations,
    const std::vector<OutputColumn>& outputs) {
  std::vector<ColumnDef> cols;
  for (const OutputColumn& out : outputs) {
    if (std::find(covered_bases.begin(), covered_bases.end(), out.base) ==
        covered_bases.end()) {
      return Status::InvalidArgument(
          "projection references base not covered by result");
    }
    const ColumnDef& src =
        base_relations[out.base]->schema().column(out.column);
    cols.emplace_back("R" + std::to_string(out.base) + "." + src.name,
                      src.type, src.avg_width);
  }
  Relation result("projection", Schema(std::move(cols)));
  for (int64_t r = 0; r < intermediate.num_rows(); ++r) {
    std::vector<Value> row;
    row.reserve(outputs.size());
    for (const OutputColumn& out : outputs) {
      const auto it = std::find(covered_bases.begin(), covered_bases.end(),
                                out.base);
      const int col = static_cast<int>(it - covered_bases.begin());
      const int64_t base_row = intermediate.GetInt(r, col);
      row.push_back(base_relations[out.base]->Get(base_row, out.column));
    }
    MRTHETA_RETURN_IF_ERROR(result.AppendRow(row));
  }
  return result;
}

ColumnDistinct EstimateDistinct(const Relation& rel, int column,
                                int64_t max_rows) {
  ColumnDistinct out;
  const int64_t n = std::min<int64_t>(rel.num_rows(), max_rows);
  if (n == 0) return out;
  std::vector<uint64_t> hashes;
  hashes.reserve(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    hashes.push_back(HashValue(rel.Get(r, column)));
  }
  std::sort(hashes.begin(), hashes.end());
  const int64_t d =
      std::unique(hashes.begin(), hashes.end()) - hashes.begin();
  out.physical = static_cast<double>(d);
  // Extrapolate physical distinct to full physical cardinality (linear in
  // the key-like regime, saturating otherwise).
  if (rel.num_rows() > n && d > static_cast<int64_t>(0.9 * n)) {
    out.physical *= static_cast<double>(rel.num_rows()) / n;
  }
  const bool key_like = d > static_cast<int64_t>(0.9 * n);
  out.logical = key_like ? out.physical *
                               static_cast<double>(rel.logical_rows()) /
                               static_cast<double>(rel.num_rows())
                         : out.physical;
  return out;
}

uint64_t MixHash(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9e3779b97f4a7c15ULL + b + 0x7f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t HashValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
      return MixHash(0x1234, static_cast<uint64_t>(v.AsInt()));
    case ValueType::kDouble: {
      // Hash integral doubles like their int64 counterparts so that
      // cross-type equi joins partition consistently.
      const double d = v.AsDouble();
      const int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        return MixHash(0x1234, static_cast<uint64_t>(as_int));
      }
      uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return MixHash(0x5678, bits);
    }
    case ValueType::kString: {
      uint64_t h = 1469598103934665603ULL;
      for (unsigned char c : v.AsString()) {
        h ^= c;
        h *= 1099511628211ULL;
      }
      return MixHash(0x9abc, h);
    }
  }
  return 0;
}

}  // namespace mrtheta
