#include "src/exec/join_side.h"

#include <algorithm>
#include <cassert>

namespace mrtheta {

JoinSide JoinSide::ForBase(RelationPtr rel, int base_index) {
  JoinSide side;
  side.scale = rel->num_rows() > 0
                   ? static_cast<double>(rel->logical_rows()) /
                         static_cast<double>(rel->num_rows())
                   : 1.0;
  side.data = std::move(rel);
  side.bases = {base_index};
  side.is_base = true;
  return side;
}

JoinSide JoinSide::ForIntermediate(RelationPtr rel, std::vector<int> bases) {
  JoinSide side;
  side.scale = rel->num_rows() > 0
                   ? static_cast<double>(rel->logical_rows()) /
                         static_cast<double>(rel->num_rows())
                   : 1.0;
  side.data = std::move(rel);
  side.bases = std::move(bases);
  side.is_base = false;
  return side;
}

int64_t JoinSide::BaseRow(int64_t row, int base) const {
  if (is_base) {
    assert(base == bases[0]);
    return row;
  }
  const auto it = std::find(bases.begin(), bases.end(), base);
  assert(it != bases.end());
  const int col = static_cast<int>(it - bases.begin());
  return data->GetInt(row, col);
}

bool JoinSide::Covers(int base) const {
  return std::find(bases.begin(), bases.end(), base) != bases.end();
}

Schema MakeIntermediateSchema(
    const std::vector<int>& bases,
    const std::vector<RelationPtr>& base_relations) {
  std::vector<ColumnDef> cols;
  cols.reserve(bases.size());
  for (int b : bases) {
    const int width =
        static_cast<int>(base_relations[b]->schema().avg_row_bytes());
    cols.emplace_back("rid_" + std::to_string(b), ValueType::kInt64, width);
  }
  return Schema(std::move(cols));
}

bool EvalConditionBetween(const JoinCondition& cond,
                          const std::vector<RelationPtr>& base_relations,
                          const JoinSide& side_a, int64_t row_a,
                          const JoinSide& side_b, int64_t row_b) {
  const JoinSide* lhs_side = nullptr;
  const JoinSide* rhs_side = nullptr;
  int64_t lhs_row = 0, rhs_row = 0;
  if (side_a.Covers(cond.lhs.relation)) {
    lhs_side = &side_a;
    lhs_row = row_a;
  } else {
    assert(side_b.Covers(cond.lhs.relation));
    lhs_side = &side_b;
    lhs_row = row_b;
  }
  if (side_a.Covers(cond.rhs.relation)) {
    rhs_side = &side_a;
    rhs_row = row_a;
  } else {
    assert(side_b.Covers(cond.rhs.relation));
    rhs_side = &side_b;
    rhs_row = row_b;
  }
  const Relation& lrel = *base_relations[cond.lhs.relation];
  const Relation& rrel = *base_relations[cond.rhs.relation];
  const int64_t lbase = lhs_side->BaseRow(lhs_row, cond.lhs.relation);
  const int64_t rbase = rhs_side->BaseRow(rhs_row, cond.rhs.relation);
  const ValueType lt = lrel.schema().column(cond.lhs.column).type;
  const ValueType rt = rrel.schema().column(cond.rhs.column).type;
  // Fast paths: this is the innermost loop of every reducer.
  if (lt == ValueType::kInt64 && rt == ValueType::kInt64) {
    const int64_t off = static_cast<int64_t>(cond.offset);
    if (static_cast<double>(off) == cond.offset) {
      return EvalThetaInt(lrel.GetInt(lbase, cond.lhs.column), cond.op,
                          rrel.GetInt(rbase, cond.rhs.column), off);
    }
  }
  if (lt != ValueType::kString && rt != ValueType::kString) {
    const double l = lrel.GetDouble(lbase, cond.lhs.column) + cond.offset;
    const double r = rrel.GetDouble(rbase, cond.rhs.column);
    switch (cond.op) {
      case ThetaOp::kLt:
        return l < r;
      case ThetaOp::kLe:
        return l <= r;
      case ThetaOp::kEq:
        return l == r;
      case ThetaOp::kGe:
        return l >= r;
      case ThetaOp::kGt:
        return l > r;
      case ThetaOp::kNe:
        return l != r;
    }
  }
  const Value lv = lrel.Get(lbase, cond.lhs.column);
  const Value rv = rrel.Get(rbase, cond.rhs.column);
  return EvalTheta(lv, cond.op, rv, cond.offset);
}

StatusOr<Relation> ProjectResult(
    const Relation& intermediate, const std::vector<int>& covered_bases,
    const std::vector<RelationPtr>& base_relations,
    const std::vector<OutputColumn>& outputs) {
  std::vector<ColumnDef> cols;
  for (const OutputColumn& out : outputs) {
    if (std::find(covered_bases.begin(), covered_bases.end(), out.base) ==
        covered_bases.end()) {
      return Status::InvalidArgument(
          "projection references base not covered by result");
    }
    const ColumnDef& src =
        base_relations[out.base]->schema().column(out.column);
    cols.emplace_back("R" + std::to_string(out.base) + "." + src.name,
                      src.type, src.avg_width);
  }
  Relation result("projection", Schema(std::move(cols)));
  for (int64_t r = 0; r < intermediate.num_rows(); ++r) {
    std::vector<Value> row;
    row.reserve(outputs.size());
    for (const OutputColumn& out : outputs) {
      const auto it = std::find(covered_bases.begin(), covered_bases.end(),
                                out.base);
      const int col = static_cast<int>(it - covered_bases.begin());
      const int64_t base_row = intermediate.GetInt(r, col);
      row.push_back(base_relations[out.base]->Get(base_row, out.column));
    }
    MRTHETA_RETURN_IF_ERROR(result.AppendRow(row));
  }
  return result;
}

ColumnDistinct EstimateDistinct(const Relation& rel, int column,
                                int64_t max_rows) {
  ColumnDistinct out;
  const int64_t n = std::min<int64_t>(rel.num_rows(), max_rows);
  if (n == 0) return out;
  std::vector<uint64_t> hashes;
  hashes.reserve(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    hashes.push_back(HashValue(rel.Get(r, column)));
  }
  std::sort(hashes.begin(), hashes.end());
  const int64_t d =
      std::unique(hashes.begin(), hashes.end()) - hashes.begin();
  out.physical = static_cast<double>(d);
  // Extrapolate physical distinct to full physical cardinality (linear in
  // the key-like regime, saturating otherwise).
  if (rel.num_rows() > n && d > static_cast<int64_t>(0.9 * n)) {
    out.physical *= static_cast<double>(rel.num_rows()) / n;
  }
  const bool key_like = d > static_cast<int64_t>(0.9 * n);
  out.logical = key_like ? out.physical *
                               static_cast<double>(rel.logical_rows()) /
                               static_cast<double>(rel.num_rows())
                         : out.physical;
  return out;
}

uint64_t MixHash(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9e3779b97f4a7c15ULL + b + 0x7f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t HashValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
      return MixHash(0x1234, static_cast<uint64_t>(v.AsInt()));
    case ValueType::kDouble: {
      // Hash integral doubles like their int64 counterparts so that
      // cross-type equi joins partition consistently.
      const double d = v.AsDouble();
      const int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        return MixHash(0x1234, static_cast<uint64_t>(as_int));
      }
      uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return MixHash(0x5678, bits);
    }
    case ValueType::kString: {
      uint64_t h = 1469598103934665603ULL;
      for (unsigned char c : v.AsString()) {
        h ^= c;
        h *= 1099511628211ULL;
      }
      return MixHash(0x9abc, h);
    }
  }
  return 0;
}

}  // namespace mrtheta
