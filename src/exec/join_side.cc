#include "src/exec/join_side.h"

#include <algorithm>
#include <cassert>

namespace mrtheta {

JoinSide JoinSide::ForBase(RelationPtr rel, int base_index) {
  JoinSide side;
  side.scale = rel->num_rows() > 0
                   ? static_cast<double>(rel->logical_rows()) /
                         static_cast<double>(rel->num_rows())
                   : 1.0;
  side.data = std::move(rel);
  side.bases = {base_index};
  side.is_base = true;
  return side;
}

JoinSide JoinSide::ForIntermediate(RelationPtr rel, std::vector<int> bases) {
  JoinSide side;
  side.scale = rel->num_rows() > 0
                   ? static_cast<double>(rel->logical_rows()) /
                         static_cast<double>(rel->num_rows())
                   : 1.0;
  side.data = std::move(rel);
  side.bases = std::move(bases);
  side.is_base = false;
  return side;
}

int64_t JoinSide::BaseRow(int64_t row, int base) const {
  if (is_base) {
    assert(base == bases[0]);
    return row;
  }
  const auto it = std::find(bases.begin(), bases.end(), base);
  assert(it != bases.end());
  const int col = static_cast<int>(it - bases.begin());
  return data->GetInt(row, col);
}

bool JoinSide::Covers(int base) const {
  return std::find(bases.begin(), bases.end(), base) != bases.end();
}

Schema MakeIntermediateSchema(
    const std::vector<int>& bases,
    const std::vector<RelationPtr>& base_relations) {
  std::vector<ColumnDef> cols;
  cols.reserve(bases.size());
  for (int b : bases) {
    const int width =
        static_cast<int>(base_relations[b]->schema().avg_row_bytes());
    cols.emplace_back("rid_" + std::to_string(b), ValueType::kInt64, width);
  }
  return Schema(std::move(cols));
}

const int64_t* RidColumnFor(const JoinSide& side, int base) {
  if (side.is_base) {
    assert(base == side.bases[0]);
    return nullptr;
  }
  const auto it = std::find(side.bases.begin(), side.bases.end(), base);
  assert(it != side.bases.end());
  return side.data
      ->TryColumn<int64_t>(static_cast<int>(it - side.bases.begin()))
      ->data();
}

StatusOr<Relation> ProjectResult(
    const Relation& intermediate, const std::vector<int>& covered_bases,
    const std::vector<RelationPtr>& base_relations,
    const std::vector<OutputColumn>& outputs) {
  std::vector<ColumnDef> cols;
  for (const OutputColumn& out : outputs) {
    if (std::find(covered_bases.begin(), covered_bases.end(), out.base) ==
        covered_bases.end()) {
      return Status::InvalidArgument(
          "projection references base not covered by result");
    }
    const ColumnDef& src =
        base_relations[out.base]->schema().column(out.column);
    cols.emplace_back("R" + std::to_string(out.base) + "." + src.name,
                      src.type, src.avg_width);
  }
  Relation result("projection", Schema(std::move(cols)));
  for (int64_t r = 0; r < intermediate.num_rows(); ++r) {
    std::vector<Value> row;
    row.reserve(outputs.size());
    for (const OutputColumn& out : outputs) {
      const auto it = std::find(covered_bases.begin(), covered_bases.end(),
                                out.base);
      const int col = static_cast<int>(it - covered_bases.begin());
      const int64_t base_row = intermediate.GetInt(r, col);
      row.push_back(base_relations[out.base]->Get(base_row, out.column));
    }
    MRTHETA_RETURN_IF_ERROR(result.AppendRow(row));
  }
  return result;
}

ColumnDistinct EstimateDistinct(const Relation& rel, int column,
                                int64_t max_rows) {
  ColumnDistinct out;
  const int64_t n = std::min<int64_t>(rel.num_rows(), max_rows);
  if (n == 0) return out;
  std::vector<uint64_t> hashes;
  hashes.reserve(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    hashes.push_back(HashValue(rel.Get(r, column)));
  }
  std::sort(hashes.begin(), hashes.end());
  const int64_t d =
      std::unique(hashes.begin(), hashes.end()) - hashes.begin();
  out.physical = static_cast<double>(d);
  // Extrapolate physical distinct to full physical cardinality (linear in
  // the key-like regime, saturating otherwise).
  if (rel.num_rows() > n && d > static_cast<int64_t>(0.9 * n)) {
    out.physical *= static_cast<double>(rel.num_rows()) / n;
  }
  const bool key_like = d > static_cast<int64_t>(0.9 * n);
  out.logical = key_like ? out.physical *
                               static_cast<double>(rel.logical_rows()) /
                               static_cast<double>(rel.num_rows())
                         : out.physical;
  return out;
}

uint64_t MixHash(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9e3779b97f4a7c15ULL + b + 0x7f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t HashValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
      return MixHash(0x1234, static_cast<uint64_t>(v.AsInt()));
    case ValueType::kDouble: {
      // Hash integral doubles like their int64 counterparts so that
      // cross-type equi joins partition consistently.
      const double d = v.AsDouble();
      const int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        return MixHash(0x1234, static_cast<uint64_t>(as_int));
      }
      uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return MixHash(0x5678, bits);
    }
    case ValueType::kString: {
      uint64_t h = 1469598103934665603ULL;
      for (unsigned char c : v.AsString()) {
        h ^= c;
        h *= 1099511628211ULL;
      }
      return MixHash(0x9abc, h);
    }
  }
  return 0;
}

}  // namespace mrtheta
