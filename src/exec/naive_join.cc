#include "src/exec/naive_join.h"

#include <algorithm>
#include <numeric>

#include "src/exec/join_side.h"

namespace mrtheta {

StatusOr<Relation> NaiveMultiwayJoin(
    const std::vector<RelationPtr>& base_relations,
    const std::vector<int>& base_indices,
    const std::vector<JoinCondition>& conditions) {
  if (base_indices.size() < 2) {
    return Status::InvalidArgument("need at least two relations to join");
  }
  std::vector<int> sorted_bases = base_indices;
  std::sort(sorted_bases.begin(), sorted_bases.end());

  // Conditions checkable once the first (j+1) relations are bound.
  const int m = static_cast<int>(sorted_bases.size());
  std::vector<std::vector<JoinCondition>> at_depth(m);
  auto pos_of = [&](int base) {
    for (int i = 0; i < m; ++i) {
      if (sorted_bases[i] == base) return i;
    }
    return -1;
  };
  for (const JoinCondition& cond : conditions) {
    const int pl = pos_of(cond.lhs.relation);
    const int pr = pos_of(cond.rhs.relation);
    if (pl < 0 || pr < 0) {
      return Status::InvalidArgument("condition " + cond.ToString() +
                                     " references a relation not joined");
    }
    at_depth[std::max(pl, pr)].push_back(cond);
  }

  Relation result("naive.out",
                  MakeIntermediateSchema(sorted_bases, base_relations));
  std::vector<int64_t> rows(m, 0);

  // Depth-first nested loops with early pruning.
  std::vector<int64_t> assignment(m);
  auto check = [&](int depth) {
    for (const JoinCondition& cond : at_depth[depth]) {
      const Relation& lrel = *base_relations[cond.lhs.relation];
      const Relation& rrel = *base_relations[cond.rhs.relation];
      const Value lv =
          lrel.Get(assignment[pos_of(cond.lhs.relation)], cond.lhs.column);
      const Value rv =
          rrel.Get(assignment[pos_of(cond.rhs.relation)], cond.rhs.column);
      if (!EvalTheta(lv, cond.op, rv, cond.offset)) return false;
    }
    return true;
  };
  // Iterative backtracking.
  int depth = 0;
  std::vector<int64_t> cursor(m, 0);
  while (depth >= 0) {
    const Relation& rel = *base_relations[sorted_bases[depth]];
    if (cursor[depth] >= rel.num_rows()) {
      cursor[depth] = 0;
      --depth;
      if (depth >= 0) ++cursor[depth];
      continue;
    }
    assignment[depth] = cursor[depth];
    if (!check(depth)) {
      ++cursor[depth];
      continue;
    }
    if (depth + 1 == m) {
      std::vector<Value> row;
      row.reserve(m);
      for (int i = 0; i < m; ++i) row.push_back(Value(assignment[i]));
      MRTHETA_RETURN_IF_ERROR(result.AppendRow(row));
      ++cursor[depth];
    } else {
      ++depth;
    }
  }
  (void)rows;
  return SortedByRows(result);
}

Relation SortedByRows(const Relation& rel) {
  std::vector<int64_t> order(rel.num_rows());
  std::iota(order.begin(), order.end(), 0);
  const int cols = rel.schema().num_columns();
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    for (int c = 0; c < cols; ++c) {
      const int64_t va = rel.GetInt(a, c);
      const int64_t vb = rel.GetInt(b, c);
      if (va != vb) return va < vb;
    }
    return false;
  });
  return rel.Slice(order);
}

}  // namespace mrtheta
