#include "src/exec/naive_join.h"

#include <algorithm>
#include <numeric>

#include "src/exec/join_side.h"
#include "src/relation/column_view.h"

namespace mrtheta {

StatusOr<Relation> NaiveMultiwayJoin(
    const std::vector<RelationPtr>& base_relations,
    const std::vector<int>& base_indices,
    const std::vector<JoinCondition>& conditions,
    const std::vector<SelectionFilter>& filters) {
  if (base_indices.size() < 2) {
    return Status::InvalidArgument("need at least two relations to join");
  }
  std::vector<int> sorted_bases = base_indices;
  std::sort(sorted_bases.begin(), sorted_bases.end());

  // Conditions checkable once the first (j+1) relations are bound, with
  // type dispatch resolved once per condition instead of once per pair.
  const int m = static_cast<int>(sorted_bases.size());
  struct BoundCondition {
    CompiledPredicate pred;
    int lhs_pos;  // depth of the input binding the lhs / rhs endpoint
    int rhs_pos;
  };
  std::vector<std::vector<BoundCondition>> at_depth(m);
  auto pos_of = [&](int base) {
    for (int i = 0; i < m; ++i) {
      if (sorted_bases[i] == base) return i;
    }
    return -1;
  };
  for (const JoinCondition& cond : conditions) {
    const int pl = pos_of(cond.lhs.relation);
    const int pr = pos_of(cond.rhs.relation);
    if (pl < 0 || pr < 0) {
      return Status::InvalidArgument("condition " + cond.ToString() +
                                     " references a relation not joined");
    }
    at_depth[std::max(pl, pr)].push_back(
        {CompiledPredicate::Compile(cond, *base_relations[cond.lhs.relation],
                                    *base_relations[cond.rhs.relation]),
         pl, pr});
  }

  Relation result("naive.out",
                  MakeIntermediateSchema(sorted_bases, base_relations));

  // Selection pushdown oracle: per depth, the compiled conjunction of the
  // filters on that base (nullptr = none).
  std::vector<std::shared_ptr<const CompiledRowFilter>> depth_filters(m);
  for (int i = 0; i < m; ++i) {
    depth_filters[i] = CompiledRowFilter::CompileFor(
        sorted_bases[i], filters, base_relations[sorted_bases[i]]);
  }

  // Depth-first nested loops with early pruning.
  std::vector<int64_t> assignment(m);
  auto check = [&](int depth) {
    if (depth_filters[depth] != nullptr &&
        !depth_filters[depth]->Passes(assignment[depth])) {
      return false;
    }
    for (const BoundCondition& bc : at_depth[depth]) {
      if (!bc.pred.Eval(assignment[bc.lhs_pos], assignment[bc.rhs_pos])) {
        return false;
      }
    }
    return true;
  };
  // Iterative backtracking.
  int depth = 0;
  std::vector<int64_t> cursor(m, 0);
  while (depth >= 0) {
    const Relation& rel = *base_relations[sorted_bases[depth]];
    if (cursor[depth] >= rel.num_rows()) {
      cursor[depth] = 0;
      --depth;
      if (depth >= 0) ++cursor[depth];
      continue;
    }
    assignment[depth] = cursor[depth];
    if (!check(depth)) {
      ++cursor[depth];
      continue;
    }
    if (depth + 1 == m) {
      std::vector<Value> row;
      row.reserve(m);
      for (int i = 0; i < m; ++i) row.push_back(Value(assignment[i]));
      MRTHETA_RETURN_IF_ERROR(result.AppendRow(row));
      ++cursor[depth];
    } else {
      ++depth;
    }
  }
  return SortedByRows(result);
}

Relation SortedByRows(const Relation& rel) {
  std::vector<int64_t> order(rel.num_rows());
  std::iota(order.begin(), order.end(), 0);
  const int cols = rel.schema().num_columns();
  std::vector<ColumnView<int64_t>> views;
  views.reserve(cols);
  for (int c = 0; c < cols; ++c) {
    views.push_back(ColumnView<int64_t>::Of(rel, c));
  }
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    for (int c = 0; c < cols; ++c) {
      const int64_t va = views[c][a];
      const int64_t vb = views[c][b];
      if (va != vb) return va < vb;
    }
    return false;
  });
  return rel.Slice(order);
}

}  // namespace mrtheta
