#ifndef MRTHETA_EXEC_NAIVE_JOIN_H_
#define MRTHETA_EXEC_NAIVE_JOIN_H_

#include <vector>

#include "src/common/status.h"
#include "src/relation/predicate.h"
#include "src/relation/relation.h"

namespace mrtheta {

/// \brief Single-machine nested-loop multi-way theta-join — the test oracle
/// every distributed executor is checked against.
///
/// Joins `base_indices` (query-level indices into `base_relations`) under
/// `conditions`, returning an intermediate-format relation (one "rid_<b>"
/// column per base, ascending base order, rows sorted lexicographically) so
/// results compare bit-for-bit with distributed outputs after sorting.
/// `filters` are single-relation selections applied to the referenced base
/// relations before joining (the oracle counterpart of the executors'
/// map-side selection pushdown).
StatusOr<Relation> NaiveMultiwayJoin(
    const std::vector<RelationPtr>& base_relations,
    const std::vector<int>& base_indices,
    const std::vector<JoinCondition>& conditions,
    const std::vector<SelectionFilter>& filters = {});

/// Sorts an intermediate result's rows lexicographically (all-int64
/// schemas), for order-insensitive comparison in tests.
Relation SortedByRows(const Relation& rel);

}  // namespace mrtheta

#endif  // MRTHETA_EXEC_NAIVE_JOIN_H_
