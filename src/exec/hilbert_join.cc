#include "src/exec/hilbert_join.h"

#include "src/common/status.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>

#include "src/exec/theta_kernels.h"
#include "src/relation/column_view.h"
#include "src/stats/table_stats.h"

namespace mrtheta {

DimensionGrouping ComputeDimensionGrouping(
    const std::vector<std::vector<int>>& input_bases,
    const std::vector<JoinCondition>& conditions) {
  const int n = static_cast<int>(input_bases.size());
  DimensionGrouping g;
  g.dim_of_input.assign(n, -1);
  g.key_of_input.assign(n, ColumnRef{-1, -1});

  // Precomputed base -> covering input map (replaces the O(inputs x bases)
  // scan per condition endpoint).
  int max_base = -1;
  for (const std::vector<int>& bases : input_bases) {
    for (int base : bases) max_base = std::max(max_base, base);
  }
  std::vector<int> covering(max_base + 1, -1);
  for (int i = 0; i < n; ++i) {
    for (int base : input_bases[i]) covering[base] = i;
  }
  auto input_covering = [&](int base) {
    return base >= 0 && base <= max_base ? covering[base] : -1;
  };

  // Endpoints of offset-free equality conditions, interned for union-find.
  using EndPoint = std::tuple<int, int, int>;  // input, base relation, column
  std::vector<EndPoint> eps;
  std::map<EndPoint, int> ep_id;
  std::vector<int> parent;
  auto intern = [&](const EndPoint& ep) {
    auto [it, inserted] = ep_id.try_emplace(ep, static_cast<int>(eps.size()));
    if (inserted) {
      eps.push_back(ep);
      parent.push_back(it->second);
    }
    return it->second;
  };
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  for (const JoinCondition& cond : conditions) {
    if (cond.op != ThetaOp::kEq || cond.offset != 0.0) continue;
    const int li = input_covering(cond.lhs.relation);
    const int ri = input_covering(cond.rhs.relation);
    if (li < 0 || ri < 0 || li == ri) continue;
    const int a = intern({li, cond.lhs.relation, cond.lhs.column});
    const int b = intern({ri, cond.rhs.relation, cond.rhs.column});
    parent[find(a)] = find(b);
  }

  // Equivalence classes, largest (by distinct inputs) first.
  std::map<int, std::vector<int>> classes;
  for (int e = 0; e < static_cast<int>(eps.size()); ++e) {
    classes[find(e)].push_back(e);
  }
  std::vector<std::vector<int>> sorted_classes;
  for (auto& [root, members] : classes) sorted_classes.push_back(members);
  auto distinct_inputs = [&](const std::vector<int>& members) {
    std::set<int> ins;
    for (int e : members) ins.insert(std::get<0>(eps[e]));
    return ins;
  };
  std::sort(sorted_classes.begin(), sorted_classes.end(),
            [&](const auto& a, const auto& b) {
              return distinct_inputs(a).size() > distinct_inputs(b).size();
            });

  for (const auto& members : sorted_classes) {
    // Fuse the class's still-unassigned inputs into one hash dimension.
    std::vector<int> unassigned;
    for (int in : distinct_inputs(members)) {
      if (g.dim_of_input[in] < 0) unassigned.push_back(in);
    }
    if (unassigned.size() < 2) continue;
    const int dim = g.num_dims++;
    for (int in : unassigned) {
      g.dim_of_input[in] = dim;
      for (int e : members) {
        if (std::get<0>(eps[e]) == in) {
          g.key_of_input[in] = {std::get<1>(eps[e]), std::get<2>(eps[e])};
          break;
        }
      }
    }
  }
  // Remaining inputs get their own random-global-ID dimension.
  for (int i = 0; i < n; ++i) {
    if (g.dim_of_input[i] < 0) g.dim_of_input[i] = g.num_dims++;
  }
  return g;
}

namespace {

// One join condition bound to the job's inputs: type dispatch, covering
// input positions and rid resolution fixed once at build time.
struct HilbertBoundCondition {
  JoinCondition cond;
  CompiledPredicate pred;
  int lhs_input = 0;  // input position covering the lhs / rhs endpoint
  int rhs_input = 0;
  const int64_t* lhs_rid = nullptr;  // input row -> base row (null = identity)
  const int64_t* rhs_rid = nullptr;

  int64_t LhsBaseRow(int64_t row) const {
    return lhs_rid != nullptr ? lhs_rid[row] : row;
  }
  int64_t RhsBaseRow(int64_t row) const {
    return rhs_rid != nullptr ? rhs_rid[row] : row;
  }
  // `lrow` / `rrow` are rows of the covering inputs.
  bool Eval(int64_t lrow, int64_t rrow) const {
    return pred.Eval(LhsBaseRow(lrow), RhsBaseRow(rrow));
  }
};

// Shared state captured by the map and reduce closures.
struct HilbertJobState {
  HilbertCurve curve;
  std::shared_ptr<const SegmentCoverage> coverage = nullptr;
  DimensionGrouping grouping = {};
  std::vector<int64_t> logical_rows = {};   // per input
  std::vector<int64_t> record_bytes = {};   // per input
  std::vector<double> scales = {};          // per input
  std::vector<RelationPtr> base_relations = {};
  std::vector<JoinSide> inputs = {};
  std::vector<int> output_bases = {};
  std::vector<int> dim_representative = {};  // dim -> lowest input index
  // conditions_at_depth[j] = conditions decidable once inputs 0..j are
  // assigned (and not before).
  std::vector<std::vector<HilbertBoundCondition>> conditions_at_depth = {};
  uint64_t seed = 0;
  bool use_sorted_candidates = true;
  // ---- Skew handling (docs/SKEW.md) ----
  // Reduce tasks [0, residual_tasks) are Hilbert curve segments; tasks
  // [residual_tasks, residual_tasks + Σ group sizes) are per-heavy-value
  // grids that absorb the skewed slices of `skew_dim`.
  int residual_tasks = 0;
  int skew_dim = -1;
  std::vector<HeavyGroup> heavy_groups = {};
  // heavy_strides[g][axis]: grid stride of the group's task layout.
  std::vector<std::vector<int>> heavy_strides = {};
  std::unordered_map<uint64_t, int> heavy_index = {};  // key hash -> group

  // Hash of the tuple's fused-dimension join key (requires
  // key_of_input[tag] to be set).
  uint64_t FusedKeyHash(int tag, int64_t row) const {
    const ColumnRef key = grouping.key_of_input[tag];
    const Relation& base = *base_relations[key.relation];
    const int64_t base_row = inputs[tag].BaseRow(row, key.relation);
    return HashValue(base.Get(base_row, key.column));
  }

  // Grid slice of one tuple along its input's dimension: hash of the
  // equality key for fused dimensions, random-global-ID position otherwise.
  uint32_t SliceOfInput(int tag, int64_t row) const {
    const uint64_t side = curve.side();
    if (grouping.key_of_input[tag].relation >= 0) {
      return static_cast<uint32_t>(FusedKeyHash(tag, row) % side);
    }
    const uint64_t gid =
        MixHash(seed + static_cast<uint64_t>(tag) * 0x9e37u,
                static_cast<uint64_t>(row)) %
        static_cast<uint64_t>(logical_rows[tag]);
    return static_cast<uint32_t>(gid * side /
                                 static_cast<uint64_t>(logical_rows[tag]));
  }

  // Emits the tuple to its share of heavy group `g`: the tuple is split
  // along its own axis (deterministic bucket of its row id) and broadcast
  // across every other axis, so each combination of the group's sub-matrix
  // materializes in exactly one grid task.
  void EmitToGroup(int g, int tag, int64_t row, uint32_t slice,
                   MapEmitter& out) const {
    const HeavyGroup& group = heavy_groups[g];
    const int share = group.shares[tag];
    const int bucket =
        share == 1
            ? 0
            : static_cast<int>(
                  MixHash(seed + 0x5c3bu + static_cast<uint64_t>(tag) * 0x9e37u,
                          static_cast<uint64_t>(row)) %
                  static_cast<uint64_t>(share));
    const std::vector<int>& stride = heavy_strides[g];
    for (int t = 0; t < group.num_tasks; ++t) {
      if ((t / stride[tag]) % share != bucket) continue;
      out.Emit(group.first_task + t, tag, row, slice, record_bytes[tag]);
    }
  }
};

// Backtracking join over one component's records. At every depth with a
// numeric band condition against an already-bound input, candidates are
// pre-sorted on the condition's column so each recursion step scans only
// the qualifying value range (binary search) instead of the whole list.
class ComponentJoiner {
 public:
  ComponentJoiner(const HilbertJobState& state, const ReduceContext& ctx,
                  ReduceCollector& out)
      : state_(state),
        ctx_(ctx),
        out_(out),
        // Heavy-grid tasks own every combination they can assemble (the
        // map-side split/broadcast already made combinations unique), so
        // the curve ownership check is skipped there.
        heavy_(ctx.key >= static_cast<int64_t>(state.residual_tasks)) {
    const int dims = static_cast<int>(state_.inputs.size());
    rows_.resize(dims);
    slices_.resize(dims);
    depth_checks_.assign(dims, 0.0);
    PrepareSortedCandidates();
  }

  void Run() {
    const int num_inputs = static_cast<int>(state_.inputs.size());
    // Empty input => no results in this component.
    for (int d = 0; d < num_inputs; ++d) {
      if (ctx_.records(d).empty()) {
        ChargeComparisons();
        return;
      }
    }
    Recurse(0);
    ChargeComparisons();
  }

 private:
  // One pre-sorted candidate list: records of a depth ordered by the value
  // of `column` of the base relation covered by that input.
  struct SortedCandidates {
    bool active = false;
    const HilbertBoundCondition* bc = nullptr;  // range condition, in state_
    bool current_is_lhs = false;
    std::vector<std::pair<double, const MapOutputRecord*>> entries;
  };

  void PrepareSortedCandidates() {
    const int num_inputs = static_cast<int>(state_.inputs.size());
    sorted_.resize(num_inputs);
    if (!state_.use_sorted_candidates) return;
    for (int d = 1; d < num_inputs; ++d) {
      // Pick the first numeric non-<> condition at this depth whose other
      // endpoint is bound earlier; it prunes by value range.
      for (const HilbertBoundCondition& bc : state_.conditions_at_depth[d]) {
        if (bc.cond.op == ThetaOp::kNe) continue;
        if (bc.lhs_input == bc.rhs_input) continue;
        const bool cur_is_lhs = bc.lhs_input == d;
        const ColumnRef cur_ref = cur_is_lhs ? bc.cond.lhs : bc.cond.rhs;
        const Relation& base = *state_.base_relations[cur_ref.relation];
        const ValueType cur_type =
            base.schema().column(cur_ref.column).type;
        if (cur_type == ValueType::kString) continue;
        SortedCandidates sc;
        sc.active = true;
        sc.bc = &bc;
        sc.current_is_lhs = cur_is_lhs;
        sc.entries.reserve(ctx_.records(d).size());
        const int64_t* rid = cur_is_lhs ? bc.lhs_rid : bc.rhs_rid;
        // Typed columnar extraction: the variant dispatch happens once per
        // (depth, column), not once per record.
        auto fill = [&](const auto& view) {
          for (const MapOutputRecord* rec : ctx_.records(d)) {
            const int64_t base_row =
                rid != nullptr ? rid[rec->row] : rec->row;
            sc.entries.emplace_back(static_cast<double>(view[base_row]),
                                    rec);
          }
        };
        if (cur_type == ValueType::kInt64) {
          fill(ColumnView<int64_t>::Of(base, cur_ref.column));
        } else {
          fill(ColumnView<double>::Of(base, cur_ref.column));
        }
        std::sort(sc.entries.begin(), sc.entries.end(),
                  [](const auto& a, const auto& b) {
                    return a.first < b.first;
                  });
        sorted_[d] = std::move(sc);
        break;
      }
    }
  }

  // Qualifying [lo, hi) index range in sorted_[depth] given the currently
  // bound prefix. Condition form: (lhs + offset) op rhs.
  std::pair<size_t, size_t> RangeFor(int depth) {
    const SortedCandidates& sc = sorted_[depth];
    const JoinCondition& cond = sc.bc->cond;
    const ColumnRef other_ref = sc.current_is_lhs ? cond.rhs : cond.lhs;
    const int other_pos =
        sc.current_is_lhs ? sc.bc->rhs_input : sc.bc->lhs_input;
    const int64_t* other_rid =
        sc.current_is_lhs ? sc.bc->rhs_rid : sc.bc->lhs_rid;
    const Relation& other_base = *state_.base_relations[other_ref.relation];
    const int64_t other_base_row = other_rid != nullptr
                                       ? other_rid[rows_[other_pos]]
                                       : rows_[other_pos];
    const double other_val =
        other_base.GetDouble(other_base_row, other_ref.column);
    const auto& e = sc.entries;
    auto lower = [&](double v) {
      return static_cast<size_t>(
          std::lower_bound(e.begin(), e.end(), v,
                           [](const auto& a, double x) {
                             return a.first < x;
                           }) -
          e.begin());
    };
    auto upper = [&](double v) {
      return static_cast<size_t>(
          std::upper_bound(e.begin(), e.end(), v,
                           [](double x, const auto& a) {
                             return x < a.first;
                           }) -
          e.begin());
    };
    // Solve for the current column value `cur`.
    if (sc.current_is_lhs) {
      // (cur + off) op other_val  =>  cur op (other_val - off)
      const double bound = other_val - cond.offset;
      switch (cond.op) {
        case ThetaOp::kLt:
          return {0, lower(bound)};
        case ThetaOp::kLe:
          return {0, upper(bound)};
        case ThetaOp::kGt:
          return {upper(bound), e.size()};
        case ThetaOp::kGe:
          return {lower(bound), e.size()};
        case ThetaOp::kEq:
          return {lower(bound), upper(bound)};
        case ThetaOp::kNe:
          break;
      }
    } else {
      // (other_val + off) op cur
      const double bound = other_val + cond.offset;
      switch (cond.op) {
        case ThetaOp::kLt:  // bound < cur
          return {upper(bound), e.size()};
        case ThetaOp::kLe:
          return {lower(bound), e.size()};
        case ThetaOp::kGt:  // bound > cur
          return {0, lower(bound)};
        case ThetaOp::kGe:
          return {0, upper(bound)};
        case ThetaOp::kEq:
          return {lower(bound), upper(bound)};
        case ThetaOp::kNe:
          break;
      }
    }
    return {0, e.size()};
  }

  void Recurse(int depth) {
    const int num_inputs = static_cast<int>(state_.inputs.size());
    const bool use_sorted = depth > 0 && sorted_[depth].active;
    size_t lo = 0;
    size_t hi = use_sorted ? sorted_[depth].entries.size()
                           : ctx_.records(depth).size();
    if (use_sorted) {
      const auto range = RangeFor(depth);
      lo = range.first;
      hi = range.second;
    }
    for (size_t i = lo; i < hi; ++i) {
      const MapOutputRecord* rec = use_sorted
                                       ? sorted_[depth].entries[i].second
                                       : ctx_.records(depth)[i];
      depth_checks_[depth] += 1.0;
      rows_[depth] = rec->row;
      slices_[depth] = static_cast<uint32_t>(rec->rec_id);
      bool pass = true;
      for (const HilbertBoundCondition& bc :
           state_.conditions_at_depth[depth]) {
        if (!bc.Eval(rows_[bc.lhs_input], rows_[bc.rhs_input])) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      if (depth + 1 < num_inputs) {
        Recurse(depth + 1);
        continue;
      }
      if (!heavy_ && !OwnsCell()) continue;
      EmitRow();
    }
  }

  int InputCovering(int base) const {
    for (int i = 0; i < static_cast<int>(state_.inputs.size()); ++i) {
      if (state_.inputs[i].Covers(base)) return i;
    }
    MRTHETA_CHECK(false && "condition references uncovered base");
    return 0;
  }

  // Exactly-once ownership: the combination's cell must lie in this
  // component's curve range. Inputs sharing a fused dimension have equal
  // slices in any valid combination (their equality conditions held).
  bool OwnsCell() const {
    const int dims = state_.grouping.num_dims;
    uint32_t coords[16];
    for (int d = 0; d < dims; ++d) {
      coords[d] = slices_[state_.dim_representative[d]];
    }
    const uint64_t idx =
        state_.curve.Encode(std::span<const uint32_t>(coords, dims));
    return state_.coverage->SegmentOfIndex(idx) ==
           static_cast<int>(ctx_.key);
  }

  void EmitRow() {
    std::vector<Value> row;
    row.reserve(state_.output_bases.size());
    for (int base : state_.output_bases) {
      const int pos = InputCovering(base);
      row.push_back(
          Value(state_.inputs[pos].BaseRow(rows_[pos], base)));
    }
    out_.Emit(row);
  }

  void ChargeComparisons() {
    // β frame: comparison work scales linearly with the represented
    // volume, like every other extrapolated quantity (DESIGN.md §1).
    double max_scale = 1.0;
    for (double s : state_.scales) max_scale = std::max(max_scale, s);
    double total = 0.0;
    for (double c : depth_checks_) total += c;
    out_.AddComparisons(total * max_scale);
  }

  const HilbertJobState& state_;
  const ReduceContext& ctx_;
  ReduceCollector& out_;
  const bool heavy_;
  std::vector<int64_t> rows_;
  std::vector<uint32_t> slices_;
  std::vector<double> depth_checks_;
  std::vector<SortedCandidates> sorted_;
};

}  // namespace

StatusOr<MapReduceJobSpec> BuildHilbertJoinJob(const MultiwayJoinJobSpec& spec,
                                               HilbertJoinPlanInfo* info) {
  const int num_inputs = static_cast<int>(spec.inputs.size());
  if (num_inputs < 2 || num_inputs > 16) {
    return Status::InvalidArgument("hilbert join needs 2..16 inputs");
  }
  if (spec.num_reduce_tasks < 1) {
    return Status::InvalidArgument("num_reduce_tasks must be >= 1");
  }
  // Every condition endpoint must be covered by exactly one input.
  for (const JoinCondition& cond : spec.conditions) {
    for (int base : {cond.lhs.relation, cond.rhs.relation}) {
      int covering = 0;
      for (const JoinSide& side : spec.inputs) {
        if (side.Covers(base)) ++covering;
      }
      if (covering != 1) {
        return Status::InvalidArgument(
            "condition " + cond.ToString() +
            " endpoint covered by " + std::to_string(covering) +
            " inputs (expected exactly 1)");
      }
    }
  }

  std::vector<std::vector<int>> input_bases;
  input_bases.reserve(spec.inputs.size());
  for (const JoinSide& side : spec.inputs) input_bases.push_back(side.bases);
  DimensionGrouping grouping =
      ComputeDimensionGrouping(input_bases, spec.conditions);

  // ---- Skew detection and heavy/residual task split (docs/SKEW.md) ----
  // Fused dimensions hash the join key, so a heavy-hitter key collapses a
  // large fraction of its inputs into one slice; every segment covering
  // that slice inherits the whole pile no matter how the curve is cut. The
  // detector finds such keys per fused dimension; the assigner carves
  // per-key reducer grids out of the task budget for the worst dimension.
  // Shuffle payload width per input: pruned for base sides when the spec
  // carries a required-column analysis; intermediates are already pruned by
  // their producer's output schema. Drives record emits, skew detection
  // volumes and the emitted byte accounting alike.
  std::vector<int64_t> shuffle_bytes(num_inputs, 0);
  for (int i = 0; i < num_inputs; ++i) {
    shuffle_bytes[i] = SideShuffleBytes(spec.inputs[i], spec.conditions,
                                        spec.output_columns,
                                        spec.base_relations);
  }
  SkewAssignment skew;
  skew.residual_tasks = spec.num_reduce_tasks;
  int skew_dim = -1;
  // Per heavy value: per-input key frequency (1.0 for non-fused inputs),
  // for the map_emits_per_row hint below.
  std::map<uint64_t, std::vector<double>> heavy_freq;
  std::vector<double> input_volume(num_inputs, 0.0);
  if (spec.skew_handling != SkewHandling::kOff &&
      spec.num_reduce_tasks >= 4) {
    // Task-budget volumes for the heavy/residual split. A side with a
    // map-side selection only ships its passing fraction, so volumes are
    // scaled by a sampled pass rate — otherwise a selective filter would
    // earn reducer grids for bytes that never arrive. Computed only here:
    // nothing outside the skew decision reads input_volume.
    for (int i = 0; i < num_inputs; ++i) {
      const JoinSide& side = spec.inputs[i];
      double pass_frac = 1.0;
      if (side.filter != nullptr && side.data->num_rows() > 0) {
        int64_t passing = 0;
        const std::vector<int64_t> sample = ReservoirSampleRows(
            side.data->num_rows(), spec.skew_detect.sample_size,
            spec.skew_detect.seed + 0x8a1eu + static_cast<uint64_t>(i));
        for (int64_t r : sample) passing += side.filter->Passes(r) ? 1 : 0;
        pass_frac = static_cast<double>(passing) /
                    static_cast<double>(sample.size());
      }
      input_volume[i] = static_cast<double>(side.data->num_rows()) *
                        static_cast<double>(shuffle_bytes[i]) * side.scale *
                        pass_frac;
    }
    double best_signal = 0.0;
    std::vector<SkewCandidate> best_candidates;
    std::map<uint64_t, std::vector<double>> best_freq;
    for (int d = 0; d < grouping.num_dims; ++d) {
      std::vector<int> dim_inputs;
      for (int i = 0; i < num_inputs; ++i) {
        if (grouping.dim_of_input[i] == d &&
            grouping.key_of_input[i].relation >= 0) {
          dim_inputs.push_back(i);
        }
      }
      if (dim_inputs.size() < 2) continue;
      // Sampled key-hash frequencies per covering input (ordered map:
      // candidate order must be deterministic).
      std::map<uint64_t, std::vector<double>> freq;
      for (size_t k = 0; k < dim_inputs.size(); ++k) {
        const int i = dim_inputs[k];
        const JoinSide& side = spec.inputs[i];
        const ColumnRef key = grouping.key_of_input[i];
        const Relation& base = *spec.base_relations[key.relation];
        FrequencySketch sketch(spec.skew_detect.sketch_capacity);
        for (int64_t r : ReservoirSampleRows(
                 side.data->num_rows(), spec.skew_detect.sample_size,
                 spec.skew_detect.seed + static_cast<uint64_t>(i))) {
          // Sample the post-selection distribution: a key whose tuples
          // the map-side filter drops must not earn a heavy-value grid
          // (the grid would starve the residual tasks for nothing).
          if (!side.PassesFilter(r)) continue;
          sketch.Add(HashValue(
              base.Get(side.BaseRow(r, key.relation), key.column)));
        }
        if (sketch.total() == 0) continue;
        const double total = static_cast<double>(sketch.total());
        for (const FrequencySketch::Entry& e : sketch.Entries()) {
          const double f = static_cast<double>(e.count) / total;
          if (f < spec.skew_detect.min_frequency) break;  // sorted desc
          // Space-Saving only vouches for count - error occurrences; a
          // key-like column's long distinct tail must not seed candidates.
          if (static_cast<double>(e.count - e.error) / total <
              spec.skew_detect.min_frequency) {
            continue;
          }
          auto [it, inserted] = freq.try_emplace(
              e.key, std::vector<double>(dim_inputs.size(), 0.0));
          it->second[k] = f;
        }
      }
      std::vector<SkewCandidate> candidates;
      std::map<uint64_t, std::vector<double>> candidate_freq;
      double signal = 0.0;
      for (const auto& [hash, fractions] : freq) {
        SkewCandidate c;
        c.key_hash = hash;
        c.axis_bytes = input_volume;  // non-fused axes span everything
        std::vector<double> per_input(num_inputs, 1.0);
        for (size_t k = 0; k < dim_inputs.size(); ++k) {
          const int i = dim_inputs[k];
          c.axis_bytes[i] = fractions[k] * input_volume[i];
          c.skew_dim_bytes += c.axis_bytes[i];
          per_input[i] = fractions[k];
        }
        signal = std::max(signal, c.skew_dim_bytes);
        candidate_freq.emplace(hash, std::move(per_input));
        candidates.push_back(std::move(c));
      }
      if (signal > best_signal) {
        best_signal = signal;
        best_candidates = std::move(candidates);
        best_freq = std::move(candidate_freq);
        skew_dim = d;
      }
    }
    if (skew_dim >= 0) {
      double total_volume = 0.0;
      for (double v : input_volume) total_volume += v;
      skew = PlanSkewAssignment(std::move(best_candidates), total_volume,
                                spec.num_reduce_tasks, spec.skew_assign);
      if (skew.enabled()) {
        heavy_freq = std::move(best_freq);
      } else {
        skew_dim = -1;
      }
    }
  }

  const int dims = grouping.num_dims;
  const int order = ChooseGridOrder(dims, skew.residual_tasks,
                                    spec.cells_per_segment,
                                    spec.max_grid_bits);
  StatusOr<HilbertCurve> curve = HilbertCurve::Create(dims, order);
  if (!curve.ok()) return curve.status();

  auto state = std::make_shared<HilbertJobState>(HilbertJobState{
      .curve = *curve,
      .grouping = grouping,
      .base_relations = spec.base_relations,
      .inputs = spec.inputs,
      .seed = spec.seed,
      .use_sorted_candidates = spec.kernel_policy == KernelPolicy::kAuto});

  const int kr = static_cast<int>(std::min<uint64_t>(
      static_cast<uint64_t>(skew.residual_tasks), curve->num_cells()));
  StatusOr<SegmentCoverage> coverage = SegmentCoverage::Build(*curve, kr);
  if (!coverage.ok()) return coverage.status();
  state->coverage =
      std::make_shared<const SegmentCoverage>(*std::move(coverage));

  // Heavy grids live after the (possibly cell-clamped) residual segments.
  skew.residual_tasks = kr;
  {
    int next_task = kr;
    for (HeavyGroup& g : skew.groups) {
      g.first_task = next_task;
      next_task += g.num_tasks;
    }
  }
  state->residual_tasks = kr;
  state->skew_dim = skew_dim;
  state->heavy_groups = skew.groups;
  state->heavy_strides.reserve(skew.groups.size());
  for (size_t g = 0; g < skew.groups.size(); ++g) {
    const std::vector<int>& shares = skew.groups[g].shares;
    std::vector<int> stride(shares.size(), 1);
    for (int i = static_cast<int>(shares.size()) - 2; i >= 0; --i) {
      stride[i] = stride[i + 1] * shares[i + 1];
    }
    state->heavy_strides.push_back(std::move(stride));
    state->heavy_index.emplace(skew.groups[g].key_hash,
                               static_cast<int>(g));
  }

  for (int i = 0; i < num_inputs; ++i) {
    const JoinSide& side = spec.inputs[i];
    state->logical_rows.push_back(
        std::max<int64_t>(1, side.data->logical_rows()));
    state->record_bytes.push_back(shuffle_bytes[i]);
    state->scales.push_back(side.scale);
  }
  state->dim_representative.assign(dims, -1);
  for (int i = 0; i < num_inputs; ++i) {
    const int d = grouping.dim_of_input[i];
    if (state->dim_representative[d] < 0) state->dim_representative[d] = i;
  }

  // Output bases: ascending union of input coverage.
  std::set<int> base_set;
  for (const JoinSide& side : spec.inputs) {
    base_set.insert(side.bases.begin(), side.bases.end());
  }
  state->output_bases.assign(base_set.begin(), base_set.end());

  // Bucket conditions by the deepest input they touch, binding type
  // dispatch and row resolution once per condition.
  state->conditions_at_depth.resize(num_inputs);
  for (const JoinCondition& cond : spec.conditions) {
    HilbertBoundCondition bc;
    bc.cond = cond;
    bc.pred = CompiledPredicate::Compile(
        cond, *spec.base_relations[cond.lhs.relation],
        *spec.base_relations[cond.rhs.relation]);
    int depth = 0;
    for (int i = 0; i < num_inputs; ++i) {
      if (spec.inputs[i].Covers(cond.lhs.relation)) bc.lhs_input = i;
      if (spec.inputs[i].Covers(cond.rhs.relation)) bc.rhs_input = i;
    }
    depth = std::max(bc.lhs_input, bc.rhs_input);
    bc.lhs_rid = RidColumnFor(spec.inputs[bc.lhs_input], cond.lhs.relation);
    bc.rhs_rid = RidColumnFor(spec.inputs[bc.rhs_input], cond.rhs.relation);
    state->conditions_at_depth[depth].push_back(bc);
  }

  // The job is only a sort-theta job when some depth can actually activate
  // a sorted candidate list (same qualification PrepareSortedCandidates
  // applies: numeric, non-<>, endpoints on distinct inputs, one bound
  // earlier); otherwise report the generic backtracking loop.
  if (state->use_sorted_candidates) {
    bool any_sorted = false;
    for (int d = 1; d < num_inputs && !any_sorted; ++d) {
      for (const HilbertBoundCondition& bc : state->conditions_at_depth[d]) {
        if (bc.cond.op == ThetaOp::kNe) continue;
        if (bc.lhs_input == bc.rhs_input) continue;
        const ColumnRef cur = bc.lhs_input == d ? bc.cond.lhs : bc.cond.rhs;
        if (spec.base_relations[cur.relation]
                ->schema()
                .column(cur.column)
                .type == ValueType::kString) {
          continue;
        }
        any_sorted = true;
        break;
      }
    }
    state->use_sorted_candidates = any_sorted;
  }

  MapReduceJobSpec job;
  job.name = spec.name;
  for (const JoinSide& side : spec.inputs) {
    job.inputs.push_back({side.data, side.scale});
  }
  job.num_reduce_tasks = kr + skew.heavy_tasks;
  job.partition = [](int64_t key, int n) {
    return static_cast<int>(key % n);
  };
  job.output_schema = MakeIntermediateSchema(
      state->output_bases, spec.base_relations, spec.output_columns);
  job.output_name = spec.name + ".out";
  job.kernel = JoinKernelName(state->use_sorted_candidates
                                  ? JoinKernel::kSortTheta
                                  : JoinKernel::kGeneric);
  // β-extrapolation (the paper's Eq. 5 output model): results scale
  // linearly with the represented data volume. See DESIGN.md §1.
  double row_scale = 1.0;
  for (const JoinSide& side : spec.inputs) {
    row_scale = std::max(row_scale, side.scale);
  }
  job.output_row_scale = row_scale;

  // Emitter capacity hint: a tuple in slice s is emitted once per segment
  // covering s along its dimension, so the expected emits per row is the
  // mean coverage — Σ_seg c(R_i) / side (uniform-slice approximation) —
  // plus the expected heavy-grid fan-out (a tuple reaches
  // num_tasks / shares[i] tasks of each group it participates in).
  job.map_emits_per_row.reserve(num_inputs);
  for (int i = 0; i < num_inputs; ++i) {
    const int dim = grouping.dim_of_input[i];
    int64_t total_coverage = 0;
    for (int seg = 0; seg < state->coverage->num_segments(); ++seg) {
      total_coverage += state->coverage->CoverageCount(seg, dim);
    }
    double emits = static_cast<double>(total_coverage) /
                   static_cast<double>(state->curve.side());
    for (const HeavyGroup& g : skew.groups) {
      const auto it = heavy_freq.find(g.key_hash);
      const double participation =
          it != heavy_freq.end() ? it->second[i] : 1.0;
      emits += participation *
               static_cast<double>(g.num_tasks / g.shares[i]);
    }
    job.map_emits_per_row.push_back(emits);
  }

  job.map = [state](int tag, const Relation& rel, int64_t row,
                    MapEmitter& out) {
    (void)rel;
    // Selection pushdown: filtered rows never reach any reducer.
    if (!state->inputs[tag].PassesFilter(row)) return;
    const int dim = state->grouping.dim_of_input[tag];
    uint32_t slice;
    if (state->grouping.key_of_input[tag].relation >= 0) {
      // Fused input: one key fetch + hash serves both the slice and the
      // heavy lookup.
      const uint64_t hash = state->FusedKeyHash(tag, row);
      slice = static_cast<uint32_t>(hash % state->curve.side());
      if (dim == state->skew_dim && !state->heavy_groups.empty()) {
        // Heavy tuples leave the residual matrix entirely: their only
        // join partners on this dimension share the key, and those all
        // meet inside the value's grid.
        const auto it = state->heavy_index.find(hash);
        if (it != state->heavy_index.end()) {
          state->EmitToGroup(it->second, tag, row, slice, out);
          return;
        }
      }
    } else {
      slice = state->SliceOfInput(tag, row);
    }
    if (dim != state->skew_dim && !state->heavy_groups.empty()) {
      // The heavy regions span this dimension end to end, so every tuple
      // participates in every grid (split along its own axis).
      for (int g = 0; g < static_cast<int>(state->heavy_groups.size());
           ++g) {
        state->EmitToGroup(g, tag, row, slice, out);
      }
    }
    for (int seg : state->coverage->SegmentsForSlice(dim, slice)) {
      out.Emit(seg, tag, row, slice, state->record_bytes[tag]);
    }
  };

  job.reduce = [state](const ReduceContext& ctx, ReduceCollector& out) {
    ComponentJoiner joiner(*state, ctx, out);
    joiner.Run();
  };

  if (info != nullptr) {
    info->grid_order = order;
    info->effective_reduce_tasks = kr + skew.heavy_tasks;
    info->coverage = state->coverage;
    info->grouping = state->grouping;
    info->output_bases = state->output_bases;
    info->skew = skew;
    info->skew_dim = skew_dim;
  }
  return job;
}

}  // namespace mrtheta
