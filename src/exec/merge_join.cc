#include "src/exec/merge_join.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <set>

#include "src/exec/theta_kernels.h"

namespace mrtheta {

std::vector<int> SharedBases(const JoinSide& a, const JoinSide& b) {
  std::vector<int> shared;
  for (int base : a.bases) {
    if (b.Covers(base)) shared.push_back(base);
  }
  std::sort(shared.begin(), shared.end());
  return shared;
}

namespace {

struct MergeState {
  JoinSide left;
  JoinSide right;
  std::vector<int> shared;
  // Columnar rid views of the shared bases, one per side (aligned with
  // `shared`); resolved once per job instead of once per record.
  std::vector<const int64_t*> left_rids;
  std::vector<const int64_t*> right_rids;
  std::vector<int> output_bases;
  int64_t left_bytes = 0;
  int64_t right_bytes = 0;
  KernelPolicy kernel_policy = KernelPolicy::kAuto;
  int64_t sort_kernel_min_pairs = kSortKernelMinPairs;

  int64_t LeftRid(size_t k, int64_t row) const {
    return left_rids[k] != nullptr ? left_rids[k][row] : row;
  }
  int64_t RightRid(size_t k, int64_t row) const {
    return right_rids[k] != nullptr ? right_rids[k][row] : row;
  }

  uint64_t KeyOf(int tag, int64_t row) const {
    uint64_t h = 0x517cc1b727220a95ULL;
    for (size_t k = 0; k < shared.size(); ++k) {
      h = MixHash(h, static_cast<uint64_t>(tag == 0 ? LeftRid(k, row)
                                                    : RightRid(k, row)));
    }
    return h;
  }

  bool RidsMatch(int64_t lrow, int64_t rrow) const {
    for (size_t k = 0; k < shared.size(); ++k) {
      if (LeftRid(k, lrow) != RightRid(k, rrow)) return false;
    }
    return true;
  }

  // Remaining shared rids after the sort-merge key (index 0).
  bool TailRidsMatch(int64_t lrow, int64_t rrow) const {
    for (size_t k = 1; k < shared.size(); ++k) {
      if (LeftRid(k, lrow) != RightRid(k, rrow)) return false;
    }
    return true;
  }

  void EmitPair(int64_t lrow, int64_t rrow, ReduceCollector& out) const {
    std::vector<Value> row;
    row.reserve(output_bases.size());
    for (int base : output_bases) {
      if (left.Covers(base)) {
        row.push_back(Value(left.BaseRow(lrow, base)));
      } else {
        row.push_back(Value(right.BaseRow(rrow, base)));
      }
    }
    out.Emit(row);
  }

  void JoinGroup(const std::vector<const MapOutputRecord*>& lrecs,
                 const std::vector<const MapOutputRecord*>& rrecs,
                 ReduceCollector& out) const {
    const int64_t pairs = static_cast<int64_t>(lrecs.size()) *
                          static_cast<int64_t>(rrecs.size());
    if (kernel_policy == KernelPolicy::kAuto && pairs >= sort_kernel_min_pairs) {
      // Hash-key collisions made this group large: sort-merge on the first
      // shared rid, verify the rest per candidate.
      std::vector<std::pair<int64_t, int32_t>> l, r;
      l.reserve(lrecs.size());
      r.reserve(rrecs.size());
      for (size_t i = 0; i < lrecs.size(); ++i) {
        l.emplace_back(LeftRid(0, lrecs[i]->row), static_cast<int32_t>(i));
      }
      for (size_t i = 0; i < rrecs.size(); ++i) {
        r.emplace_back(RightRid(0, rrecs[i]->row), static_cast<int32_t>(i));
      }
      SortedThetaScan(l, ThetaOp::kEq, r,
                      [&](int32_t lpos, int32_t rpos) {
                        const int64_t lrow = lrecs[lpos]->row;
                        const int64_t rrow = rrecs[rpos]->row;
                        if (TailRidsMatch(lrow, rrow)) {
                          EmitPair(lrow, rrow, out);
                        }
                      });
      return;
    }
    for (const MapOutputRecord* lrec : lrecs) {
      for (const MapOutputRecord* rrec : rrecs) {
        if (!RidsMatch(lrec->row, rrec->row)) continue;
        EmitPair(lrec->row, rrec->row, out);
      }
    }
  }
};

}  // namespace

StatusOr<MapReduceJobSpec> BuildMergeJob(const MergeJobSpec& spec) {
  if (spec.num_reduce_tasks < 1) {
    return Status::InvalidArgument("num_reduce_tasks must be >= 1");
  }
  auto state = std::make_shared<MergeState>();
  state->left = spec.left;
  state->right = spec.right;
  state->kernel_policy = spec.kernel_policy;
  state->sort_kernel_min_pairs = spec.sort_kernel_min_pairs;
  state->shared = SharedBases(spec.left, spec.right);
  if (state->shared.empty()) {
    return Status::FailedPrecondition(
        "merge requires the sides to share at least one relation");
  }
  for (int base : state->shared) {
    state->left_rids.push_back(RidColumnFor(spec.left, base));
    state->right_rids.push_back(RidColumnFor(spec.right, base));
  }
  std::set<int> bases(spec.left.bases.begin(), spec.left.bases.end());
  bases.insert(spec.right.bases.begin(), spec.right.bases.end());
  state->output_bases.assign(bases.begin(), bases.end());
  // Merge inputs ship only record IDs: 8 bytes per covered relation.
  state->left_bytes = 8 * static_cast<int64_t>(spec.left.bases.size());
  state->right_bytes = 8 * static_cast<int64_t>(spec.right.bases.size());

  MapReduceJobSpec job;
  job.name = spec.name;
  job.inputs.push_back({spec.left.data, spec.left.scale});
  job.inputs.push_back({spec.right.data, spec.right.scale});
  job.num_reduce_tasks = spec.num_reduce_tasks;
  job.output_schema = MakeIntermediateSchema(
      state->output_bases, spec.base_relations, spec.output_columns);
  job.output_name = spec.name + ".out";
  // A merged row pairs one left row with one right row agreeing on the
  // shared rids; in expectation the logical count scales like an equi-join
  // on a key: left.scale * right.scale overcounts matches lost to sampling
  // both sides, so use the max (the dominating side's scale).
  job.output_row_scale = std::max(spec.left.scale, spec.right.scale);

  job.kernel = JoinKernelName(spec.kernel_policy == KernelPolicy::kAuto
                                  ? JoinKernel::kSortTheta
                                  : JoinKernel::kGeneric);
  job.map_emits_per_row = {1.0, 1.0};  // merge maps emit exactly once

  job.map = [state](int tag, const Relation& rel, int64_t row,
                    MapEmitter& out) {
    (void)rel;
    // Merge inputs are normally intermediates (already filtered by their
    // producers); the check is a no-op then but keeps base sides correct.
    if (!(tag == 0 ? state->left : state->right).PassesFilter(row)) return;
    out.Emit(static_cast<int64_t>(state->KeyOf(tag, row)), tag, row, row,
             tag == 0 ? state->left_bytes : state->right_bytes);
  };
  job.reduce = [state](const ReduceContext& ctx, ReduceCollector& out) {
    const auto& lrecs = ctx.records(0);
    const auto& rrecs = ctx.records(1);
    out.AddComparisons(static_cast<double>(lrecs.size()) *
                       static_cast<double>(rrecs.size()));
    state->JoinGroup(lrecs, rrecs, out);
  };
  return job;
}

}  // namespace mrtheta
