#include "src/exec/merge_join.h"

#include <algorithm>
#include <memory>
#include <set>

namespace mrtheta {

std::vector<int> SharedBases(const JoinSide& a, const JoinSide& b) {
  std::vector<int> shared;
  for (int base : a.bases) {
    if (b.Covers(base)) shared.push_back(base);
  }
  std::sort(shared.begin(), shared.end());
  return shared;
}

namespace {

struct MergeState {
  JoinSide left;
  JoinSide right;
  std::vector<int> shared;
  std::vector<int> output_bases;
  int64_t left_bytes = 0;
  int64_t right_bytes = 0;

  uint64_t KeyOf(const JoinSide& side, int64_t row) const {
    uint64_t h = 0x517cc1b727220a95ULL;
    for (int base : shared) {
      h = MixHash(h, static_cast<uint64_t>(side.BaseRow(row, base)));
    }
    return h;
  }

  bool RidsMatch(int64_t lrow, int64_t rrow) const {
    for (int base : shared) {
      if (left.BaseRow(lrow, base) != right.BaseRow(rrow, base)) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace

StatusOr<MapReduceJobSpec> BuildMergeJob(const MergeJobSpec& spec) {
  if (spec.num_reduce_tasks < 1) {
    return Status::InvalidArgument("num_reduce_tasks must be >= 1");
  }
  auto state = std::make_shared<MergeState>();
  state->left = spec.left;
  state->right = spec.right;
  state->shared = SharedBases(spec.left, spec.right);
  if (state->shared.empty()) {
    return Status::FailedPrecondition(
        "merge requires the sides to share at least one relation");
  }
  std::set<int> bases(spec.left.bases.begin(), spec.left.bases.end());
  bases.insert(spec.right.bases.begin(), spec.right.bases.end());
  state->output_bases.assign(bases.begin(), bases.end());
  // Merge inputs ship only record IDs: 8 bytes per covered relation.
  state->left_bytes = 8 * static_cast<int64_t>(spec.left.bases.size());
  state->right_bytes = 8 * static_cast<int64_t>(spec.right.bases.size());

  MapReduceJobSpec job;
  job.name = spec.name;
  job.inputs.push_back({spec.left.data, spec.left.scale});
  job.inputs.push_back({spec.right.data, spec.right.scale});
  job.num_reduce_tasks = spec.num_reduce_tasks;
  job.output_schema =
      MakeIntermediateSchema(state->output_bases, spec.base_relations);
  job.output_name = spec.name + ".out";
  // A merged row pairs one left row with one right row agreeing on the
  // shared rids; in expectation the logical count scales like an equi-join
  // on a key: left.scale * right.scale overcounts matches lost to sampling
  // both sides, so use the max (the dominating side's scale).
  job.output_row_scale = std::max(spec.left.scale, spec.right.scale);

  job.map = [state](int tag, const Relation& rel, int64_t row,
                    MapEmitter& out) {
    (void)rel;
    const JoinSide& side = tag == 0 ? state->left : state->right;
    out.Emit(static_cast<int64_t>(state->KeyOf(side, row)), tag, row, row,
             tag == 0 ? state->left_bytes : state->right_bytes);
  };
  job.reduce = [state](const ReduceContext& ctx, ReduceCollector& out) {
    const auto& lrecs = ctx.records(0);
    const auto& rrecs = ctx.records(1);
    out.AddComparisons(static_cast<double>(lrecs.size()) *
                       static_cast<double>(rrecs.size()));
    for (const MapOutputRecord* l : lrecs) {
      for (const MapOutputRecord* r : rrecs) {
        if (!state->RidsMatch(l->row, r->row)) continue;
        std::vector<Value> row;
        row.reserve(state->output_bases.size());
        for (int base : state->output_bases) {
          if (state->left.Covers(base)) {
            row.push_back(Value(state->left.BaseRow(l->row, base)));
          } else {
            row.push_back(Value(state->right.BaseRow(r->row, base)));
          }
        }
        out.Emit(row);
      }
    }
  };
  return job;
}

}  // namespace mrtheta
