#ifndef MRTHETA_EXEC_MERGE_JOIN_H_
#define MRTHETA_EXEC_MERGE_JOIN_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/exec/join_side.h"
#include "src/exec/theta_kernels.h"
#include "src/mapreduce/job.h"

namespace mrtheta {

/// \brief The merge step of Section 4.2 / Fig. 4: combines the outputs of
/// two MRJs that share at least one input relation, joining on the shared
/// relations' record IDs ("the merge operation only has output keys or data
/// IDs involved, therefore it can be done very efficiently").
struct MergeJobSpec {
  std::string name = "merge";
  JoinSide left;   ///< an intermediate result
  JoinSide right;  ///< an intermediate result
  std::vector<RelationPtr> base_relations;
  int num_reduce_tasks = 1;
  /// kAuto: sort-merge on the first shared rid for oversized hash groups.
  KernelPolicy kernel_policy = KernelPolicy::kAuto;
  /// Hash groups with fewer candidate pairs than this use the plain nested
  /// loop (see PairwiseJoinJobSpec::sort_kernel_min_pairs).
  int64_t sort_kernel_min_pairs = kSortKernelMinPairs;
  /// Required-column analysis for this job (PlanJob::output_columns): when
  /// non-empty, the output intermediate takes pruned per-base widths (the
  /// merge shuffle itself already ships only record IDs).
  std::vector<RequiredColumns> output_columns;
};

/// Builds the merge MRJ: shuffle key = hash of the shared relations' rids;
/// reduce verifies rid equality and emits the union of covered relations.
/// Fails when the sides share no base relation.
StatusOr<MapReduceJobSpec> BuildMergeJob(const MergeJobSpec& spec);

/// The shared base relations of two sides (ascending), empty if disjoint.
std::vector<int> SharedBases(const JoinSide& a, const JoinSide& b);

}  // namespace mrtheta

#endif  // MRTHETA_EXEC_MERGE_JOIN_H_
