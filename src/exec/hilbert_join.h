#ifndef MRTHETA_EXEC_HILBERT_JOIN_H_
#define MRTHETA_EXEC_HILBERT_JOIN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/exec/join_side.h"
#include "src/exec/theta_kernels.h"
#include "src/hilbert/hilbert.h"
#include "src/mapreduce/job.h"
#include "src/sched/skew_assigner.h"
#include "src/stats/heavy_hitters.h"

namespace mrtheta {

/// \brief Specification of a chain multi-way theta-join evaluated in one
/// MapReduce job via Hilbert-curve partitioning — the paper's Algorithm 1.
struct MultiwayJoinJobSpec {
  std::string name = "hilbert-join";
  /// The join's inputs in trail order; their distinct count is the
  /// dimensionality of the partition hyper-cube S.
  std::vector<JoinSide> inputs;
  /// All base relations of the query (value resolution).
  std::vector<RelationPtr> base_relations;
  /// Conditions over query base indices; every referenced base must be
  /// covered by exactly one input.
  std::vector<JoinCondition> conditions;
  int num_reduce_tasks = 1;
  uint64_t seed = 42;
  /// Grid resolution: target curve cells per reduce segment, and the cap on
  /// total grid bits (the coverage walk is O(2^bits)).
  int cells_per_segment = 64;
  int max_grid_bits = 18;
  /// Reduce-side kernel selection: kAuto enables the per-depth sorted
  /// candidate range scans; kGenericOnly forces the plain backtracking
  /// loop (differential baselines).
  KernelPolicy kernel_policy = KernelPolicy::kAuto;
  /// Skew handling (docs/SKEW.md): kOff keeps the pure Hilbert assignment;
  /// kAuto / kForce both run heavy-hitter detection here (the per-plan-job
  /// distinction is applied by the executor before this spec is built) and
  /// carve per-heavy-value reducer grids out of the task budget. The join
  /// result is identical either way; only the reducer decomposition (and
  /// hence per-task input sizes) changes.
  SkewHandling skew_handling = SkewHandling::kOff;
  /// Sampling/sketch knobs for the heavy-hitter detector. The candidate
  /// floor is higher than the detector's general default: a key below 2%
  /// frequency cannot dominate a reducer at realistic task budgets, and
  /// splitting quasi-uniform keys (e.g. a day column's 1/61 shares) costs
  /// broadcast volume for no balance win.
  HeavyHitterOptions skew_detect = {.min_frequency = 0.02};
  /// Task-budget split knobs for the heavy/residual decomposition.
  SkewAssignerOptions skew_assign;
  /// Required-column analysis for this job (PlanJob::output_columns): per
  /// covered base, the columns the output must carry. When non-empty, the
  /// output intermediate takes pruned per-base widths and base inputs ship
  /// pruned map payloads (their condition columns plus this set). Empty =
  /// full-width accounting.
  std::vector<RequiredColumns> output_columns;
};

/// \brief Equality-aware dimension grouping of a multi-way join's inputs.
///
/// Inputs connected by offset-free equality conditions can share one
/// hyper-cube dimension whose coordinate is a hash of the join-key value
/// (the Afrati–Ullman style share for equi conditions): matching tuples
/// co-locate by construction and are never replicated along that axis.
/// Fewer dimensions means a smaller duplication exponent (Eq. 9).
struct DimensionGrouping {
  int num_dims = 0;
  /// input index -> dimension index in [0, num_dims).
  std::vector<int> dim_of_input;
  /// Per input: the (base relation, column) hashed for the coordinate, or
  /// {-1, -1} when the input keeps a random-global-ID coordinate.
  std::vector<ColumnRef> key_of_input;
};

/// Computes the grouping for inputs covering `input_bases[i]` under
/// `conditions`. Each equality equivalence class becomes one dimension
/// (largest classes first); unaffected inputs keep their own dimension.
DimensionGrouping ComputeDimensionGrouping(
    const std::vector<std::vector<int>>& input_bases,
    const std::vector<JoinCondition>& conditions);

/// Planning artifacts exposed for tests, benches and the plan explorer.
struct HilbertJoinPlanInfo {
  int grid_order = 0;
  /// Total reduce tasks: residual Hilbert segments + heavy-value grids.
  int effective_reduce_tasks = 0;
  std::shared_ptr<const SegmentCoverage> coverage;
  DimensionGrouping grouping;
  /// Query base indices covered by the job output, ascending — the column
  /// order of the output intermediate.
  std::vector<int> output_bases;
  /// The heavy/residual reducer decomposition (groups empty when skew
  /// handling is off or nothing qualified as heavy).
  SkewAssignment skew;
  /// Hyper-cube dimension whose join-key skew the groups absorb, or -1.
  int skew_dim = -1;
};

/// \brief Builds the (key,value) mapping of Algorithm 1:
///
///  Map: assign each tuple a random global ID in [0, |R_i|), map the ID to
///  its grid slice along dimension i, and emit the tuple to every curve
///  segment (reduce component) whose dimension-i coverage contains the
///  slice.
///
///  Reduce: backtracking join over the component's tuples in trail order
///  with early condition pruning; a fully-assigned combination is emitted
///  only when its cell's curve position belongs to this component, which
///  makes results exactly-once across reducers.
StatusOr<MapReduceJobSpec> BuildHilbertJoinJob(const MultiwayJoinJobSpec& spec,
                                               HilbertJoinPlanInfo* info =
                                                   nullptr);

}  // namespace mrtheta

#endif  // MRTHETA_EXEC_HILBERT_JOIN_H_
