#ifndef MRTHETA_EXEC_JOIN_SIDE_H_
#define MRTHETA_EXEC_JOIN_SIDE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/relation/predicate.h"
#include "src/relation/relation.h"

namespace mrtheta {

// RequiredColumns / PrunedRowBytes / FindRequired — the column-pruning
// payload descriptors the builders consume — live in relation/schema.h so
// the plan layer can name them without depending on the exec layer.

/// \brief Map-side selection filter bound to one input side: the compiled
/// conjunction of a query's single-relation predicates on that side's base
/// relation, evaluated per base row before any shuffle emit (selection
/// pushdown). Builders drop rows failing Passes() in their map functions.
class CompiledRowFilter {
 public:
  /// Compiles the subset of `filters` on relation `base` against `rel`
  /// (which must outlive the filter). Returns nullptr when none apply.
  static std::shared_ptr<const CompiledRowFilter> CompileFor(
      int base, const std::vector<SelectionFilter>& filters,
      const RelationPtr& rel);

  bool Passes(int64_t row) const {
    for (const auto& pred : preds_) {
      if (!pred(row)) return false;
    }
    return true;
  }

  int num_predicates() const { return static_cast<int>(preds_.size()); }

 private:
  std::vector<std::function<bool(int64_t)>> preds_;
  RelationPtr pinned_;  ///< keeps the filtered relation alive
};

/// \brief One input of a join job: either a base relation of the query or
/// an intermediate result (a relation of "rid_<base>" columns produced by a
/// previous job).
///
/// Intermediate rows reference base tuples by *physical row index*, so any
/// downstream operator can resolve actual column values through the query's
/// base-relation list. Width accounting of intermediates uses materialized
/// widths (the bytes a real MapReduce job would spill), see DESIGN.md.
struct JoinSide {
  RelationPtr data;
  /// Query-level indices of the base relations this side covers, in the
  /// column order of `data` when `is_base` is false.
  std::vector<int> bases;
  bool is_base = true;
  /// logical rows / physical rows for this side.
  double scale = 1.0;
  /// Map-side selection (base sides only): rows failing the filter are
  /// dropped before any shuffle emit. Null = no selection.
  std::shared_ptr<const CompiledRowFilter> filter;

  /// True when `row` passes this side's selection (always true without one).
  bool PassesFilter(int64_t row) const {
    return filter == nullptr || filter->Passes(row);
  }

  /// Makes a side for a base relation with query index `base_index`.
  static JoinSide ForBase(RelationPtr rel, int base_index);
  /// Makes a side for an intermediate result covering `bases`.
  static JoinSide ForIntermediate(RelationPtr rel, std::vector<int> bases);

  /// Physical row of base relation `base` referenced by this side's `row`.
  int64_t BaseRow(int64_t row, int base) const;

  /// True when this side covers query base `base`.
  bool Covers(int base) const;
};

/// Builds the schema of an intermediate result covering `bases` (ascending
/// query order): one int64 "rid_<b>" column per base, with avg_width set to
/// the bytes the intermediate materializes for that base — the full base
/// row width by default, or the pruned payload (PrunedRowBytes of the
/// base's RequiredColumns entry) when `required` is non-empty.
Schema MakeIntermediateSchema(const std::vector<int>& bases,
                              const std::vector<RelationPtr>& base_relations,
                              const std::vector<RequiredColumns>& required =
                                  {});

/// Shuffle payload bytes of one record of `side` in a job evaluating
/// `conditions`: intermediate sides ship their (already pruned) schema row;
/// base sides ship the pruned base row covering this job's own condition
/// columns plus everything `required` says must survive downstream — or the
/// full base row when `required` is empty (pruning off).
int64_t SideShuffleBytes(const JoinSide& side,
                         const std::vector<JoinCondition>& conditions,
                         const std::vector<RequiredColumns>& required,
                         const std::vector<RelationPtr>& base_relations);

/// Raw pointer into `side`'s rid column for base `base` (nullptr when the
/// side is that base relation itself: rid == row). The side must cover
/// `base`. Join kernels use this to resolve side rows to base rows without
/// the per-call search of JoinSide::BaseRow; `side.data` must outlive the
/// pointer.
const int64_t* RidColumnFor(const JoinSide& side, int base);

/// Projects an intermediate result to output columns: for each
/// (base, column) pair, emits the referenced base value. The intermediate
/// must cover every requested base.
struct OutputColumn {
  int base = 0;
  int column = 0;
};
StatusOr<Relation> ProjectResult(
    const Relation& intermediate, const std::vector<int>& covered_bases,
    const std::vector<RelationPtr>& base_relations,
    const std::vector<OutputColumn>& outputs);

/// Physical and extrapolated-logical distinct counts of a column: a column
/// whose sample is nearly all-distinct is key-like, so its logical distinct
/// count tracks the relation's logical cardinality.
struct ColumnDistinct {
  double physical = 1.0;
  double logical = 1.0;
};

/// Estimates ColumnDistinct by exact counting over (up to `max_rows`)
/// physical rows; a column whose sample is >90% distinct is treated as
/// key-like and extrapolated to the relation's logical cardinality.
ColumnDistinct EstimateDistinct(const Relation& rel, int column,
                                int64_t max_rows = 65536);

/// Deterministic 64-bit mix used for global-ID assignment and hash keys.
uint64_t MixHash(uint64_t a, uint64_t b);

/// Hash of a Value, for equi-join partition keys.
uint64_t HashValue(const Value& v);

}  // namespace mrtheta

#endif  // MRTHETA_EXEC_JOIN_SIDE_H_
