#include "src/exec/theta_kernels.h"

namespace mrtheta {

const char* JoinKernelName(JoinKernel kernel) {
  switch (kernel) {
    case JoinKernel::kGeneric:
      return "generic";
    case JoinKernel::kSortTheta:
      return "sort-theta";
  }
  return "?";
}

SortKeyDomain ClassifySortKey(const JoinCondition& cond,
                              const Relation& lhs_rel,
                              const Relation& rhs_rel) {
  const ValueType lt = lhs_rel.schema().column(cond.lhs.column).type;
  const ValueType rt = rhs_rel.schema().column(cond.rhs.column).type;
  const bool l_string = lt == ValueType::kString;
  const bool r_string = rt == ValueType::kString;
  if (l_string != r_string) return SortKeyDomain::kNone;
  if (l_string) {
    return cond.offset == 0.0 ? SortKeyDomain::kString : SortKeyDomain::kNone;
  }
  const int64_t int_offset = static_cast<int64_t>(cond.offset);
  if (lt == ValueType::kInt64 && rt == ValueType::kInt64 &&
      static_cast<double>(int_offset) == cond.offset) {
    return SortKeyDomain::kInt64;
  }
  return SortKeyDomain::kDouble;
}

int ChooseSortDriver(const std::vector<JoinCondition>& conditions,
                     const std::vector<RelationPtr>& base_relations) {
  int equality = -1;
  for (int i = 0; i < static_cast<int>(conditions.size()); ++i) {
    const JoinCondition& cond = conditions[i];
    if (cond.op == ThetaOp::kNe) continue;
    if (ClassifySortKey(cond, *base_relations[cond.lhs.relation],
                        *base_relations[cond.rhs.relation]) ==
        SortKeyDomain::kNone) {
      continue;
    }
    if (cond.op == ThetaOp::kEq) {
      if (equality < 0) equality = i;
      continue;
    }
    return i;
  }
  return equality;
}

}  // namespace mrtheta
