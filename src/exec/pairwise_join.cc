#include "src/exec/pairwise_join.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <set>

namespace mrtheta {

namespace {

// State shared by both pairwise variants.
struct PairwiseState {
  // One condition, oriented so its lhs endpoint is covered by the left
  // side, with type dispatch and row resolution bound once per job.
  struct BoundCondition {
    JoinCondition cond;
    CompiledPredicate pred;
    const int64_t* lhs_rid = nullptr;  // left row -> lhs base row
    const int64_t* rhs_rid = nullptr;  // right row -> rhs base row

    int64_t LhsBaseRow(int64_t lrow) const {
      return lhs_rid != nullptr ? lhs_rid[lrow] : lrow;
    }
    int64_t RhsBaseRow(int64_t rrow) const {
      return rhs_rid != nullptr ? rhs_rid[rrow] : rrow;
    }
    bool Eval(int64_t lrow, int64_t rrow) const {
      return pred.Eval(LhsBaseRow(lrow), RhsBaseRow(rrow));
    }
  };

  JoinSide left;
  JoinSide right;
  std::vector<RelationPtr> base_relations;
  std::vector<BoundCondition> bound;
  /// Index into `bound` of the sort-kernel driver, -1 => generic loop.
  int sort_driver = -1;
  int64_t sort_kernel_min_pairs = kSortKernelMinPairs;
  std::vector<int> output_bases;
  int64_t left_bytes = 0;
  int64_t right_bytes = 0;

  bool Matches(int64_t lrow, int64_t rrow) const {
    for (const BoundCondition& bc : bound) {
      if (!bc.Eval(lrow, rrow)) return false;
    }
    return true;
  }

  // All conditions except the sort driver (already enforced by the kernel's
  // key ranges).
  bool MatchesResidual(int64_t lrow, int64_t rrow) const {
    for (int i = 0; i < static_cast<int>(bound.size()); ++i) {
      if (i == sort_driver) continue;
      if (!bound[i].Eval(lrow, rrow)) return false;
    }
    return true;
  }

  void EmitPair(int64_t lrow, int64_t rrow, ReduceCollector& out) const {
    std::vector<Value> row;
    row.reserve(output_bases.size());
    for (int base : output_bases) {
      if (left.Covers(base)) {
        row.push_back(Value(left.BaseRow(lrow, base)));
      } else {
        row.push_back(Value(right.BaseRow(rrow, base)));
      }
    }
    out.Emit(row);
  }

  // Joins one reduce group, dispatching between the sort-based kernel and
  // the generic nested loop. AddComparisons charging is kernel-independent:
  // the simulated cluster's CPU model prices the |L|x|R| work a real
  // reducer would do, not this process's wall clock.
  void JoinGroup(const std::vector<const MapOutputRecord*>& lrecs,
                 const std::vector<const MapOutputRecord*>& rrecs,
                 ReduceCollector& out) const {
    const int64_t pairs = static_cast<int64_t>(lrecs.size()) *
                          static_cast<int64_t>(rrecs.size());
    if (sort_driver >= 0 && pairs >= sort_kernel_min_pairs) {
      const BoundCondition& drv = bound[sort_driver];
      std::vector<int64_t> lrows, rrows;
      lrows.reserve(lrecs.size());
      rrows.reserve(rrecs.size());
      for (const MapOutputRecord* l : lrecs) {
        lrows.push_back(drv.LhsBaseRow(l->row));
      }
      for (const MapOutputRecord* r : rrecs) {
        rrows.push_back(drv.RhsBaseRow(r->row));
      }
      SortJoinRowSets(drv.cond, *base_relations[drv.cond.lhs.relation],
                      lrows, *base_relations[drv.cond.rhs.relation], rrows,
                      [&](int32_t lpos, int32_t rpos) {
                        const int64_t lrow = lrecs[lpos]->row;
                        const int64_t rrow = rrecs[rpos]->row;
                        if (MatchesResidual(lrow, rrow)) {
                          EmitPair(lrow, rrow, out);
                        }
                      });
      return;
    }
    for (const MapOutputRecord* l : lrecs) {
      for (const MapOutputRecord* r : rrecs) {
        if (Matches(l->row, r->row)) {
          EmitPair(l->row, r->row, out);
        }
      }
    }
  }
};

StatusOr<std::shared_ptr<PairwiseState>> MakeState(
    const PairwiseJoinJobSpec& spec) {
  for (const JoinCondition& cond : spec.conditions) {
    const bool l_on_left = spec.left.Covers(cond.lhs.relation);
    const bool l_on_right = spec.right.Covers(cond.lhs.relation);
    const bool r_on_left = spec.left.Covers(cond.rhs.relation);
    const bool r_on_right = spec.right.Covers(cond.rhs.relation);
    if (!((l_on_left && r_on_right) || (l_on_right && r_on_left))) {
      return Status::InvalidArgument("condition " + cond.ToString() +
                                     " does not connect the two sides");
    }
  }
  auto state = std::make_shared<PairwiseState>();
  state->left = spec.left;
  state->right = spec.right;
  state->base_relations = spec.base_relations;
  state->sort_kernel_min_pairs = spec.sort_kernel_min_pairs;
  std::vector<JoinCondition> oriented;
  oriented.reserve(spec.conditions.size());
  for (const JoinCondition& cond : spec.conditions) {
    const JoinCondition oc =
        spec.left.Covers(cond.lhs.relation) ? cond
                                            : cond.OrientedFor(
                                                  cond.rhs.relation);
    PairwiseState::BoundCondition bc;
    bc.cond = oc;
    bc.pred = CompiledPredicate::Compile(
        oc, *spec.base_relations[oc.lhs.relation],
        *spec.base_relations[oc.rhs.relation]);
    bc.lhs_rid = RidColumnFor(spec.left, oc.lhs.relation);
    bc.rhs_rid = RidColumnFor(spec.right, oc.rhs.relation);
    state->bound.push_back(bc);
    oriented.push_back(oc);
  }
  if (spec.kernel_policy == KernelPolicy::kAuto) {
    state->sort_driver = ChooseSortDriver(oriented, spec.base_relations);
  }
  std::set<int> bases(spec.left.bases.begin(), spec.left.bases.end());
  bases.insert(spec.right.bases.begin(), spec.right.bases.end());
  state->output_bases.assign(bases.begin(), bases.end());
  state->left_bytes = SideShuffleBytes(spec.left, spec.conditions,
                                       spec.output_columns,
                                       spec.base_relations);
  state->right_bytes = SideShuffleBytes(spec.right, spec.conditions,
                                        spec.output_columns,
                                        spec.base_relations);
  return state;
}

MapReduceJobSpec MakeJobShell(const PairwiseJoinJobSpec& spec,
                              const PairwiseState& state) {
  MapReduceJobSpec job;
  job.name = spec.name;
  job.inputs.push_back({spec.left.data, spec.left.scale});
  job.inputs.push_back({spec.right.data, spec.right.scale});
  job.num_reduce_tasks = spec.num_reduce_tasks;
  job.output_schema = MakeIntermediateSchema(
      state.output_bases, spec.base_relations, spec.output_columns);
  job.output_name = spec.name + ".out";
  // β-extrapolation (the paper's Eq. 5 output model): results scale
  // *linearly* with the represented data volume; the physical sample fixes
  // the output/input ratio β. See DESIGN.md §1.
  job.output_row_scale = std::max(spec.left.scale, spec.right.scale);
  job.kernel = JoinKernelName(state.sort_driver >= 0
                                  ? JoinKernel::kSortTheta
                                  : JoinKernel::kGeneric);
  // Emitter capacity hint: one record per row unless the variant overrides
  // it with its replication factors (1-Bucket-Theta's bands).
  job.map_emits_per_row = {1.0, 1.0};
  return job;
}

}  // namespace

StatusOr<MapReduceJobSpec> BuildEquiJoinJob(const PairwiseJoinJobSpec& spec) {
  if (spec.num_reduce_tasks < 1) {
    return Status::InvalidArgument("num_reduce_tasks must be >= 1");
  }
  StatusOr<std::shared_ptr<PairwiseState>> state_or = MakeState(spec);
  if (!state_or.ok()) return state_or.status();
  std::shared_ptr<PairwiseState> state = *state_or;

  // Find the shuffle-key condition: an equality with zero offset.
  int key_cond = -1;
  for (int i = 0; i < static_cast<int>(spec.conditions.size()); ++i) {
    if (spec.conditions[i].op == ThetaOp::kEq &&
        spec.conditions[i].offset == 0.0) {
      key_cond = i;
      break;
    }
  }
  if (key_cond < 0) {
    return Status::FailedPrecondition(
        "equi-join job requires at least one offset-free '=' condition");
  }
  const JoinCondition key = spec.conditions[key_cond];

  MapReduceJobSpec job = MakeJobShell(spec, *state);
  job.map = [state, key](int tag, const Relation& rel, int64_t row,
                         MapEmitter& out) {
    (void)rel;
    const JoinSide& side = tag == 0 ? state->left : state->right;
    // Selection pushdown: filtered rows never reach any reducer.
    if (!side.PassesFilter(row)) return;
    const ColumnRef ref =
        side.Covers(key.lhs.relation) ? key.lhs : key.rhs;
    const int64_t base_row = side.BaseRow(row, ref.relation);
    const Value v =
        state->base_relations[ref.relation]->Get(base_row, ref.column);
    out.Emit(static_cast<int64_t>(HashValue(v)), tag, row, /*rec_id=*/row,
             tag == 0 ? state->left_bytes : state->right_bytes);
  };
  job.reduce = [state](const ReduceContext& ctx, ReduceCollector& out) {
    const auto& lrecs = ctx.records(0);
    const auto& rrecs = ctx.records(1);
    out.AddComparisons(static_cast<double>(lrecs.size()) *
                       static_cast<double>(rrecs.size()) *
                       std::max(state->left.scale, state->right.scale));
    // Conditions re-checked in full: hash groups may contain collisions.
    state->JoinGroup(lrecs, rrecs, out);
  };
  return job;
}

BucketGrid ChooseBucketGrid(double left_rows, double right_rows,
                            int num_reduce_tasks) {
  BucketGrid best;
  best.replicas = std::numeric_limits<double>::infinity();
  for (int rows = 1; rows <= num_reduce_tasks; ++rows) {
    const int cols = num_reduce_tasks / rows;
    if (rows * cols > num_reduce_tasks || cols < 1) continue;
    const double replicas = left_rows * cols + right_rows * rows;
    // Tie-break toward more buckets (parallelism), then squarer shapes.
    const bool better =
        replicas < best.replicas ||
        (replicas == best.replicas &&
         (rows * cols > best.rows * best.cols ||
          (rows * cols == best.rows * best.cols &&
           std::abs(rows - cols) < std::abs(best.rows - best.cols))));
    if (better) {
      best.replicas = replicas;
      best.rows = rows;
      best.cols = cols;
    }
  }
  return best;
}

StatusOr<MapReduceJobSpec> BuildOneBucketThetaJob(
    const PairwiseJoinJobSpec& spec) {
  if (spec.num_reduce_tasks < 1) {
    return Status::InvalidArgument("num_reduce_tasks must be >= 1");
  }
  StatusOr<std::shared_ptr<PairwiseState>> state_or = MakeState(spec);
  if (!state_or.ok()) return state_or.status();
  std::shared_ptr<PairwiseState> state = *state_or;

  const double l_rows =
      static_cast<double>(std::max<int64_t>(1, spec.left.data->logical_rows()));
  const double r_rows = static_cast<double>(
      std::max<int64_t>(1, spec.right.data->logical_rows()));
  const BucketGrid grid =
      ChooseBucketGrid(l_rows, r_rows, spec.num_reduce_tasks);
  const uint64_t seed = spec.seed;

  MapReduceJobSpec job = MakeJobShell(spec, *state);
  job.num_reduce_tasks = grid.rows * grid.cols;
  // Left rows replicate across a row band (cols emits), right rows down a
  // column band (rows emits).
  job.map_emits_per_row = {static_cast<double>(grid.cols),
                           static_cast<double>(grid.rows)};
  job.partition = [](int64_t key, int n) {
    return static_cast<int>(key % n);
  };
  const int grid_rows = grid.rows;
  const int grid_cols = grid.cols;
  job.map = [state, grid_rows, grid_cols, seed](int tag, const Relation& rel,
                                                int64_t row, MapEmitter& out) {
    (void)rel;
    // Selection pushdown: filtered rows never reach any reducer.
    if (!(tag == 0 ? state->left : state->right).PassesFilter(row)) return;
    if (tag == 0) {
      const int band = static_cast<int>(
          MixHash(seed, static_cast<uint64_t>(row)) %
          static_cast<uint64_t>(grid_rows));
      for (int c = 0; c < grid_cols; ++c) {
        out.Emit(static_cast<int64_t>(band) * grid_cols + c, tag, row, row,
                 state->left_bytes);
      }
    } else {
      const int band = static_cast<int>(
          MixHash(seed + 1, static_cast<uint64_t>(row)) %
          static_cast<uint64_t>(grid_cols));
      for (int r = 0; r < grid_rows; ++r) {
        out.Emit(static_cast<int64_t>(r) * grid_cols + band, tag, row, row,
                 state->right_bytes);
      }
    }
  };
  job.reduce = [state](const ReduceContext& ctx, ReduceCollector& out) {
    const auto& lrecs = ctx.records(0);
    const auto& rrecs = ctx.records(1);
    out.AddComparisons(static_cast<double>(lrecs.size()) *
                       static_cast<double>(rrecs.size()) *
                       std::max(state->left.scale, state->right.scale));
    state->JoinGroup(lrecs, rrecs, out);
  };
  return job;
}

}  // namespace mrtheta
