#ifndef MRTHETA_SCHED_MALLEABLE_H_
#define MRTHETA_SCHED_MALLEABLE_H_

#include <functional>
#include <vector>

#include "src/common/status.h"

namespace mrtheta {

/// \brief One malleable job: its running time is a function of how many
/// processing units (reduce tasks) it is allotted.
///
/// `time_for_slots(k)` must be defined for k in [1, max_slots]; it need not
/// be monotone (the paper observes that more reducers is *not* always
/// faster — Fig. 6).
struct MalleableJob {
  std::function<double(int)> time_for_slots;
  int max_slots = 1;
  /// Jobs that must finish before this one starts (merge dependencies).
  std::vector<int> deps;
};

/// Placement decision for one job.
struct ScheduledJob {
  int slots = 1;       ///< chosen allotment (the job's RN)
  double start = 0.0;
  double finish = 0.0;
};

/// Complete schedule.
struct ScheduleResult {
  std::vector<ScheduledJob> jobs;
  double makespan = 0.0;
};

/// Options for the allotment search.
struct MalleableOptions {
  /// Geometric step of the target-makespan sweep; the schedule found is
  /// within ~(1+epsilon) of the best the underlying list scheduler can do
  /// — the practical counterpart of the (1+ε) scheme of [19] the paper
  /// adopts, still linear in |T|, kP and 1/ε.
  double epsilon = 0.05;
};

/// \brief Schedules malleable jobs with dependencies on `total_slots`
/// processing units, minimizing makespan.
///
/// Independent jobs within a dependency layer are scheduled by a
/// target-driven allotment search: for a target τ each job takes the
/// smallest allotment k with t_j(k) ≤ τ (or its best-k when none), then a
/// FIFO list scheduler packs the rigid jobs; τ sweeps a geometric grid and
/// the best realized makespan wins. Layers respect dependencies.
StatusOr<ScheduleResult> ScheduleMalleable(
    const std::vector<MalleableJob>& jobs, int total_slots,
    const MalleableOptions& options = {});

}  // namespace mrtheta

#endif  // MRTHETA_SCHED_MALLEABLE_H_
