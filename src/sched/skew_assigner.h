#ifndef MRTHETA_SCHED_SKEW_ASSIGNER_H_
#define MRTHETA_SCHED_SKEW_ASSIGNER_H_

#include <cstdint>
#include <span>
#include <vector>

namespace mrtheta {

/// How join-job builders treat skew handling (threaded from
/// ExecutorOptions / PlanJob down to BuildHilbertJoinJob; see docs/SKEW.md).
enum class SkewHandling {
  kOff,    ///< never split heavy hitters (the paper's original assignment)
  kAuto,   ///< honor the planner's per-job skew flag
  kForce,  ///< always run detection, split whatever it finds
};

const char* SkewHandlingName(SkewHandling handling);

/// One heavy join-key value candidate handed to the assigner.
struct SkewCandidate {
  /// Hash of the join-key value (HashValue of the cell).
  uint64_t key_hash = 0;
  /// Per join input: logical bytes this input contributes to the value's
  /// heavy sub-matrix. Inputs of the skewed dimension contribute
  /// frequency * input volume; every other input contributes its full
  /// volume (the heavy region spans those dimensions end to end).
  std::vector<double> axis_bytes;
  /// Bytes on the skewed dimension only — the overload signal: all of this
  /// lands in one hash slice, hence (replicated) on every reducer covering
  /// that slice, no matter how fine the Hilbert grid is.
  double skew_dim_bytes = 0.0;
};

/// Placement of one heavy value: its sub-matrix (one axis per join input)
/// is cut into a SharesSkew-style grid of prod(shares) reduce tasks; axis i
/// is split shares[i] ways and broadcast across the other axes, so each
/// task receives axis_bytes[i] / shares[i] from input i.
struct HeavyGroup {
  uint64_t key_hash = 0;
  /// Absolute reduce-task id of the group's first task (assigned by the
  /// job builder once the residual segment count is final).
  int first_task = 0;
  std::vector<int> shares;      ///< per input, >= 1
  int num_tasks = 1;            ///< prod(shares)
  double est_task_bytes = 0.0;  ///< estimated input bytes per grid task
};

/// Complete reducer assignment: Hilbert segments for the residual matrix
/// plus one grid of tasks per heavy value.
struct SkewAssignment {
  int residual_tasks = 0;
  int heavy_tasks = 0;
  std::vector<HeavyGroup> groups;

  bool enabled() const { return !groups.empty(); }
};

/// Assigner knobs.
struct SkewAssignerOptions {
  /// A value is heavy when its skew-dimension bytes exceed this multiple of
  /// the mean per-task input (total bytes / task budget).
  double heavy_threshold = 1.0;
  /// At most this fraction of the task budget goes to heavy groups.
  double max_heavy_task_frac = 0.6;
  /// At most this many values get dedicated groups.
  int max_heavy_values = 16;
};

/// \brief Splits the reduce-task budget between the residual Hilbert
/// partition and per-heavy-value grids.
///
/// Values whose skew-dimension volume exceeds heavy_threshold times the
/// mean per-task input get a dedicated grid; the grids grow greedily — the
/// group with the largest estimated per-task input gets its cheapest axis
/// increment — until every group is under the residual per-task mean or
/// the heavy budget (max_heavy_task_frac of the total) is exhausted.
/// Deterministic for given inputs. Groups are ordered by descending
/// skew-dimension bytes (ties by key_hash).
SkewAssignment PlanSkewAssignment(std::vector<SkewCandidate> candidates,
                                  double total_input_bytes, int task_budget,
                                  const SkewAssignerOptions& options = {});

/// Balance summary of per-reduce-task input volumes (bench_skew's metric).
struct ReduceBalance {
  double max_bytes = 0.0;
  double mean_bytes = 0.0;
  /// max / mean; 1.0 for a perfectly balanced (or empty) assignment.
  double ratio = 1.0;
};

ReduceBalance ComputeReduceBalance(std::span<const int64_t> task_bytes);

}  // namespace mrtheta

#endif  // MRTHETA_SCHED_SKEW_ASSIGNER_H_
