#include "src/sched/skew_assigner.h"

#include <algorithm>
#include <cmath>

namespace mrtheta {

const char* SkewHandlingName(SkewHandling handling) {
  switch (handling) {
    case SkewHandling::kOff:
      return "off";
    case SkewHandling::kAuto:
      return "auto";
    case SkewHandling::kForce:
      return "force";
  }
  return "?";
}

namespace {

double GroupTaskBytes(const SkewCandidate& c, const std::vector<int>& shares) {
  double bytes = 0.0;
  for (size_t i = 0; i < c.axis_bytes.size(); ++i) {
    bytes += c.axis_bytes[i] / static_cast<double>(shares[i]);
  }
  return bytes;
}

}  // namespace

SkewAssignment PlanSkewAssignment(std::vector<SkewCandidate> candidates,
                                  double total_input_bytes, int task_budget,
                                  const SkewAssignerOptions& options) {
  SkewAssignment assignment;
  assignment.residual_tasks = std::max(1, task_budget);
  if (task_budget < 4 || candidates.empty() || total_input_bytes <= 0.0) {
    return assignment;
  }
  const double mean_task_bytes =
      total_input_bytes / static_cast<double>(task_budget);

  // Heavy values: skew-dimension volume above threshold x the mean task
  // input; descending, capped. Ties break by key_hash for determinism.
  std::sort(candidates.begin(), candidates.end(),
            [](const SkewCandidate& a, const SkewCandidate& b) {
              if (a.skew_dim_bytes != b.skew_dim_bytes) {
                return a.skew_dim_bytes > b.skew_dim_bytes;
              }
              return a.key_hash < b.key_hash;
            });
  std::vector<SkewCandidate> heavy;
  for (const SkewCandidate& c : candidates) {
    if (c.skew_dim_bytes <= options.heavy_threshold * mean_task_bytes) break;
    if (static_cast<int>(heavy.size()) >= options.max_heavy_values) break;
    heavy.push_back(c);
  }
  const int heavy_budget = std::min(
      task_budget - 1,
      static_cast<int>(options.max_heavy_task_frac *
                       static_cast<double>(task_budget)));
  if (heavy.empty() || heavy_budget < 1) return assignment;
  if (static_cast<int>(heavy.size()) > heavy_budget) {
    heavy.resize(static_cast<size_t>(heavy_budget));
  }

  // Every heavy value starts as a single task; grids then grow greedily:
  // the group with the largest per-task input gets the axis increment that
  // lowers its cost the most, while the whole heavy region fits the budget.
  std::vector<HeavyGroup> groups(heavy.size());
  double heavy_dim_bytes = 0.0;
  int heavy_tasks = 0;
  for (size_t g = 0; g < heavy.size(); ++g) {
    groups[g].key_hash = heavy[g].key_hash;
    groups[g].shares.assign(heavy[g].axis_bytes.size(), 1);
    groups[g].num_tasks = 1;
    groups[g].est_task_bytes = GroupTaskBytes(heavy[g], groups[g].shares);
    heavy_dim_bytes += heavy[g].skew_dim_bytes;
    heavy_tasks += 1;
  }
  std::vector<size_t> order(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) order[g] = g;
  for (;;) {
    // Residual per-task mean once the heavy region is carved out — the
    // balance target the grids grow toward.
    const double residual_mean =
        std::max(0.0, total_input_bytes - heavy_dim_bytes) /
        static_cast<double>(std::max(1, task_budget - heavy_tasks));
    // Worst group first; when its next increment does not fit the budget
    // any more, fall through to the next-worst that can still grow (small
    // groups only need +1 task while large grids take whole-row jumps).
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (groups[a].est_task_bytes != groups[b].est_task_bytes) {
        return groups[a].est_task_bytes > groups[b].est_task_bytes;
      }
      return a < b;
    });
    bool grew = false;
    for (size_t idx : order) {
      if (groups[idx].est_task_bytes <= residual_mean) break;  // all balanced
      // Cheapest growth: bump the axis whose split lowers per-task bytes
      // the most. Growing axis i multiplies the task count by
      // (shares[i]+1)/shares[i].
      HeavyGroup& grow = groups[idx];
      const SkewCandidate& cand = heavy[idx];
      int best_axis = -1;
      double best_gain = 0.0;
      int best_new_tasks = 0;
      for (size_t i = 0; i < grow.shares.size(); ++i) {
        const int new_tasks =
            grow.num_tasks / grow.shares[i] * (grow.shares[i] + 1);
        if (heavy_tasks - grow.num_tasks + new_tasks > heavy_budget) continue;
        const double gain =
            cand.axis_bytes[i] / static_cast<double>(grow.shares[i]) -
            cand.axis_bytes[i] / static_cast<double>(grow.shares[i] + 1);
        if (gain > best_gain) {
          best_gain = gain;
          best_axis = static_cast<int>(i);
          best_new_tasks = new_tasks;
        }
      }
      if (best_axis < 0) continue;  // this group no longer fits; try next
      heavy_tasks += best_new_tasks - grow.num_tasks;
      grow.shares[best_axis] += 1;
      grow.num_tasks = best_new_tasks;
      grow.est_task_bytes = GroupTaskBytes(cand, grow.shares);
      grew = true;
      break;
    }
    if (!grew) break;
  }

  assignment.residual_tasks = std::max(1, task_budget - heavy_tasks);
  assignment.heavy_tasks = heavy_tasks;
  int next_task = assignment.residual_tasks;
  for (HeavyGroup& g : groups) {
    g.first_task = next_task;
    next_task += g.num_tasks;
  }
  assignment.groups = std::move(groups);
  return assignment;
}

ReduceBalance ComputeReduceBalance(std::span<const int64_t> task_bytes) {
  ReduceBalance balance;
  if (task_bytes.empty()) return balance;
  int64_t total = 0;
  int64_t max = 0;
  for (int64_t b : task_bytes) {
    total += b;
    max = std::max(max, b);
  }
  balance.max_bytes = static_cast<double>(max);
  balance.mean_bytes = static_cast<double>(total) /
                       static_cast<double>(task_bytes.size());
  balance.ratio =
      balance.mean_bytes > 0.0 ? balance.max_bytes / balance.mean_bytes : 1.0;
  return balance;
}

}  // namespace mrtheta
