#ifndef MRTHETA_SCHED_SET_COVER_H_
#define MRTHETA_SCHED_SET_COVER_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace mrtheta {

/// One candidate set for the cover: a bitmask of covered elements and a
/// weight (for us: a job candidate's condition set and its w(e')).
struct WeightedSet {
  uint32_t mask = 0;
  double weight = 0.0;
};

/// \brief Greedy weighted set cover: repeatedly picks the set minimizing
/// weight / newly-covered-elements. This is the classic ln(n)-approximation
/// the paper adopts for selecting T_opt from G'_JP ("following the
/// methodology presented in [14]", Feige's threshold).
///
/// Returns indices into `sets`. Fails when the union of all sets does not
/// cover `universe_mask` (T would not be "sufficient", Definition 4).
StatusOr<std::vector<int>> GreedyWeightedSetCover(
    const std::vector<WeightedSet>& sets, uint32_t universe_mask);

/// True iff the selected sets cover the universe (Definition 4 test).
bool IsSufficient(const std::vector<WeightedSet>& sets,
                  const std::vector<int>& selection, uint32_t universe_mask);

}  // namespace mrtheta

#endif  // MRTHETA_SCHED_SET_COVER_H_
