#include "src/sched/malleable.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace mrtheta {

namespace {

// Rigid job instance for the list scheduler.
struct RigidJob {
  int id = 0;
  int slots = 1;
  double duration = 0.0;
  double release = 0.0;
};

// Greedy list scheduling with release times and backfilling: at every event
// time, starts (in longest-processing-time order) every released job that
// fits in the free slots. Returns per-job (start, finish).
double ListSchedule(std::vector<RigidJob> jobs, int total_slots,
                    std::vector<ScheduledJob>* out) {
  std::sort(jobs.begin(), jobs.end(), [](const RigidJob& a, const RigidJob& b) {
    if (a.release != b.release) return a.release < b.release;
    if (a.duration != b.duration) return a.duration > b.duration;
    return a.id < b.id;
  });
  struct Running {
    double finish;
    int slots;
    bool operator>(const Running& other) const {
      return finish > other.finish;
    }
  };
  std::priority_queue<Running, std::vector<Running>, std::greater<Running>>
      running;
  int free_slots = total_slots;
  double now = 0.0;
  double makespan = 0.0;
  std::vector<bool> started(jobs.size(), false);
  size_t remaining = jobs.size();
  while (remaining > 0) {
    // Start everything that fits now (LPT order among released jobs).
    bool progress = false;
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (started[i] || jobs[i].release > now) continue;
      if (jobs[i].slots <= free_slots) {
        started[i] = true;
        --remaining;
        free_slots -= jobs[i].slots;
        const double finish = now + jobs[i].duration;
        running.push({finish, jobs[i].slots});
        makespan = std::max(makespan, finish);
        (*out)[jobs[i].id].start = now;
        (*out)[jobs[i].id].finish = finish;
        progress = true;
      }
    }
    if (remaining == 0) break;
    // Advance time: to the next finish, or to the next release if nothing
    // is running (or the next release comes first).
    double next_release = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (!started[i] && jobs[i].release > now) {
        next_release = std::min(next_release, jobs[i].release);
      }
    }
    if (!running.empty() &&
        (running.top().finish <= next_release || !progress)) {
      if (running.top().finish > now) {
        now = running.top().finish;
      }
      while (!running.empty() && running.top().finish <= now) {
        free_slots += running.top().slots;
        running.pop();
      }
    } else if (next_release < std::numeric_limits<double>::infinity()) {
      now = next_release;
    } else if (!running.empty()) {
      now = running.top().finish;
    } else {
      break;  // should not happen: jobs remain but nothing can progress
    }
  }
  return makespan;
}

}  // namespace

StatusOr<ScheduleResult> ScheduleMalleable(
    const std::vector<MalleableJob>& jobs, int total_slots,
    const MalleableOptions& options) {
  if (total_slots < 1) {
    return Status::InvalidArgument("total_slots must be >= 1");
  }
  const int n = static_cast<int>(jobs.size());
  ScheduleResult result;
  result.jobs.assign(n, {});
  if (n == 0) return result;

  // Topological order (Kahn) to honour dependencies.
  std::vector<int> indeg(n, 0);
  std::vector<std::vector<int>> dependents(n);
  for (int i = 0; i < n; ++i) {
    for (int d : jobs[i].deps) {
      if (d < 0 || d >= n) {
        return Status::InvalidArgument("dependency index out of range");
      }
      ++indeg[i];
      dependents[d].push_back(i);
    }
    if (!jobs[i].time_for_slots) {
      return Status::InvalidArgument("job missing time_for_slots");
    }
  }
  std::vector<int> topo;
  for (int i = 0; i < n; ++i) {
    if (indeg[i] == 0) topo.push_back(i);
  }
  for (size_t head = 0; head < topo.size(); ++head) {
    for (int d : dependents[topo[head]]) {
      if (--indeg[d] == 0) topo.push_back(d);
    }
  }
  if (static_cast<int>(topo.size()) != n) {
    return Status::InvalidArgument("dependency cycle detected");
  }

  // Precompute per-job time tables and best allotments.
  std::vector<std::vector<double>> time_tab(n);
  std::vector<int> best_k(n, 1);
  std::vector<double> best_t(n, 0.0);
  for (int i = 0; i < n; ++i) {
    const int kmax = std::max(1, std::min(total_slots, jobs[i].max_slots));
    time_tab[i].resize(kmax + 1, 0.0);
    double bt = std::numeric_limits<double>::infinity();
    for (int k = 1; k <= kmax; ++k) {
      time_tab[i][k] = jobs[i].time_for_slots(k);
      if (time_tab[i][k] < bt) {
        bt = time_tab[i][k];
        best_k[i] = k;
      }
    }
    best_t[i] = bt;
  }

  // Group jobs into dependency layers; schedule layer by layer with the
  // allotment sweep. Releases within a layer come from dep finish times.
  std::vector<int> layer(n, 0);
  int max_layer = 0;
  for (int i : topo) {
    for (int d : jobs[i].deps) layer[i] = std::max(layer[i], layer[d] + 1);
    max_layer = std::max(max_layer, layer[i]);
  }

  for (int l = 0; l <= max_layer; ++l) {
    std::vector<int> members;
    for (int i = 0; i < n; ++i) {
      if (layer[i] == l) members.push_back(i);
    }
    if (members.empty()) continue;

    double tau_min = 0.0, tau_sum = 0.0;
    for (int i : members) {
      tau_min = std::max(tau_min, best_t[i]);
      tau_sum += best_t[i];
    }
    tau_min = std::max(tau_min, 1e-9);
    tau_sum = std::max(tau_sum, tau_min);

    double best_makespan = std::numeric_limits<double>::infinity();
    std::vector<ScheduledJob> best_assign(n);
    std::vector<int> best_slots(n, 1);

    auto try_target = [&](double tau) {
      std::vector<RigidJob> rigid;
      std::vector<int> slots_of(n, 1);
      for (int i : members) {
        const int kmax = static_cast<int>(time_tab[i].size()) - 1;
        int k_pick = best_k[i];
        for (int k = 1; k <= kmax; ++k) {
          if (time_tab[i][k] <= tau) {
            k_pick = k;
            break;
          }
        }
        slots_of[i] = k_pick;
        double release = 0.0;
        for (int d : jobs[i].deps) {
          release = std::max(release, result.jobs[d].finish);
        }
        rigid.push_back({i, k_pick, time_tab[i][k_pick], release});
      }
      std::vector<ScheduledJob> assign(n);
      const double ms = ListSchedule(std::move(rigid), total_slots, &assign);
      if (ms < best_makespan) {
        best_makespan = ms;
        best_assign = assign;
        for (int i : members) best_slots[i] = slots_of[i];
      }
    };

    for (double tau = tau_min; tau < tau_sum * (1.0 + options.epsilon);
         tau *= (1.0 + options.epsilon)) {
      try_target(tau);
    }
    try_target(tau_sum);

    for (int i : members) {
      result.jobs[i] = best_assign[i];
      result.jobs[i].slots = best_slots[i];
      result.makespan = std::max(result.makespan, result.jobs[i].finish);
    }
  }
  return result;
}

}  // namespace mrtheta
