#include "src/sched/set_cover.h"

#include <bit>
#include <limits>

namespace mrtheta {

StatusOr<std::vector<int>> GreedyWeightedSetCover(
    const std::vector<WeightedSet>& sets, uint32_t universe_mask) {
  uint32_t all = 0;
  for (const auto& s : sets) all |= s.mask;
  if ((all & universe_mask) != universe_mask) {
    return Status::FailedPrecondition(
        "candidate sets cannot cover the universe (T not sufficient)");
  }
  std::vector<int> picked;
  uint32_t covered = 0;
  while ((covered & universe_mask) != universe_mask) {
    int best = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < static_cast<int>(sets.size()); ++i) {
      const uint32_t gain_mask = sets[i].mask & universe_mask & ~covered;
      const int gain = std::popcount(gain_mask);
      if (gain == 0) continue;
      const double ratio = sets[i].weight / gain;
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = i;
      }
    }
    if (best < 0) {
      return Status::Internal("greedy set cover stalled");
    }
    picked.push_back(best);
    covered |= sets[best].mask;
  }
  return picked;
}

bool IsSufficient(const std::vector<WeightedSet>& sets,
                  const std::vector<int>& selection,
                  uint32_t universe_mask) {
  uint32_t covered = 0;
  for (int i : selection) {
    if (i < 0 || i >= static_cast<int>(sets.size())) return false;
    covered |= sets[i].mask;
  }
  return (covered & universe_mask) == universe_mask;
}

}  // namespace mrtheta
