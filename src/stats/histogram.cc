#include "src/stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mrtheta {

Histogram Histogram::Build(std::span<const double> values, int num_bins) {
  Histogram h;
  if (values.empty() || num_bins < 1) return h;
  h.min_ = *std::min_element(values.begin(), values.end());
  h.max_ = *std::max_element(values.begin(), values.end());
  double span = h.max_ - h.min_;
  if (span <= 0.0) span = 1.0;  // degenerate single-value column
  h.width_ = span / num_bins;
  h.counts_.assign(num_bins, 0);
  for (double v : values) {
    int bin = static_cast<int>((v - h.min_) / h.width_);
    bin = std::clamp(bin, 0, num_bins - 1);
    ++h.counts_[bin];
  }
  h.total_ = static_cast<int64_t>(values.size());
  return h;
}

double Histogram::FracBelow(double v, bool inclusive) const {
  if (total_ == 0) return 0.0;
  if (v < min_) return 0.0;
  if (v > max_) return 1.0;
  if (v == max_ && inclusive) return 1.0;
  int64_t below = 0;
  const int bin = std::clamp(static_cast<int>((v - min_) / width_), 0,
                             num_bins() - 1);
  for (int b = 0; b < bin; ++b) below += counts_[b];
  // Linear interpolation inside the containing bin.
  const double frac_in_bin = (v - bin_lo(bin)) / width_;
  const double inside =
      static_cast<double>(counts_[bin]) * std::clamp(frac_in_bin, 0.0, 1.0);
  double result = (static_cast<double>(below) + inside) / total_;
  if (inclusive) {
    // Nudge by the average mass of one point; exactness is not needed here.
    result = std::min(1.0, result + 1.0 / static_cast<double>(total_));
  }
  return result;
}

double Histogram::FracBetween(double lo, double hi) const {
  if (hi < lo) return 0.0;
  return std::max(0.0, FracBelow(hi, /*inclusive=*/true) - FracBelow(lo));
}

std::string Histogram::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "hist[min=%g max=%g n=%lld bins=%d]", min_,
                max_, static_cast<long long>(total_), num_bins());
  return buf;
}

namespace {
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

void KmvSketch::InsertHash(uint64_t h) {
  // KMV tracks the k smallest *distinct* hashes; duplicates must never
  // enter the heap or the estimator is biased low/high.
  if (std::find(heap_.begin(), heap_.end(), h) != heap_.end()) return;
  if (static_cast<int>(heap_.size()) < k_) {
    heap_.push_back(h);
    std::push_heap(heap_.begin(), heap_.end());
    return;
  }
  if (h < heap_.front()) {
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.back() = h;
    std::push_heap(heap_.begin(), heap_.end());
  }
}

void KmvSketch::InsertInt(int64_t v) {
  InsertHash(Mix64(static_cast<uint64_t>(v)));
}

void KmvSketch::InsertDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  InsertHash(Mix64(bits));
}

void KmvSketch::InsertString(const std::string& v) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (unsigned char c : v) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  InsertHash(Mix64(h));
}

double KmvSketch::Estimate() const {
  if (heap_.empty()) return 0.0;
  if (static_cast<int>(heap_.size()) < k_) {
    return static_cast<double>(heap_.size());
  }
  const double frac =
      static_cast<double>(heap_.front()) / static_cast<double>(UINT64_MAX);
  if (frac <= 0.0) return static_cast<double>(k_);
  return (k_ - 1) / frac;
}

}  // namespace mrtheta
