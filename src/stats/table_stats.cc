#include "src/stats/table_stats.h"

#include <algorithm>

#include "src/common/rng.h"
#include "src/stats/heavy_hitters.h"

namespace mrtheta {

std::vector<int64_t> ReservoirSampleRows(int64_t num_rows, int64_t k,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> reservoir;
  if (k <= 0) return reservoir;
  reservoir.reserve(static_cast<size_t>(std::min(k, num_rows)));
  for (int64_t i = 0; i < num_rows; ++i) {
    if (i < k) {
      reservoir.push_back(i);
    } else {
      const int64_t j = static_cast<int64_t>(
          rng.Uniform(static_cast<uint64_t>(i) + 1));
      if (j < k) reservoir[j] = i;
    }
  }
  std::sort(reservoir.begin(), reservoir.end());
  return reservoir;
}

TableStats BuildTableStats(const Relation& rel, const StatsOptions& options) {
  TableStats stats;
  stats.logical_rows = rel.logical_rows();
  stats.logical_bytes = rel.logical_bytes();
  stats.avg_row_bytes = rel.schema().avg_row_bytes();

  const std::vector<int64_t> rows =
      ReservoirSampleRows(rel.num_rows(), options.sample_size, options.seed);

  for (int c = 0; c < rel.schema().num_columns(); ++c) {
    ColumnStats cs;
    const ValueType type = rel.schema().column(c).type;
    cs.numeric = type != ValueType::kString;
    KmvSketch kmv;
    if (cs.numeric) {
      std::vector<double> values;
      values.reserve(rows.size());
      for (int64_t r : rows) {
        const double v = rel.GetDouble(r, c);
        values.push_back(v);
        if (type == ValueType::kInt64) {
          kmv.InsertInt(rel.GetInt(r, c));
        } else {
          kmv.InsertDouble(v);
        }
      }
      cs.histogram = Histogram::Build(values, options.histogram_bins);
      cs.min = cs.histogram.total_count() ? cs.histogram.min() : 0.0;
      cs.max = cs.histogram.total_count() ? cs.histogram.max() : 0.0;
    } else {
      for (int64_t r : rows) kmv.InsertString(rel.GetString(r, c));
    }
    // Scale the sample's distinct estimate up to the logical cardinality:
    // if the sample saw nearly all-distinct values, assume the column is
    // key-like; otherwise keep the sample estimate (value-domain bound).
    double d = kmv.Estimate();
    const double n = static_cast<double>(rows.size());
    if (n > 0 && d > 0.9 * n) {
      d = d / n * static_cast<double>(stats.logical_rows);
    }
    cs.distinct = std::max(1.0, d);
    HeavyHitterOptions hh_options;
    hh_options.top_k = 1;
    hh_options.min_frequency = 0.0;
    const std::vector<HeavyHitter> top =
        DetectHeavyHittersInSample(rel, c, rows, hh_options);
    cs.top_frequency = top.empty() ? 0.0 : top[0].frequency;
    stats.columns.push_back(std::move(cs));
  }
  return stats;
}

}  // namespace mrtheta
