#ifndef MRTHETA_STATS_HISTOGRAM_H_
#define MRTHETA_STATS_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mrtheta {

/// \brief Equi-width histogram over a numeric column.
///
/// Built once at data-load time from a sample (the paper: "we run a sampling
/// algorithm to collect rough data statistics", Sec. 6.3) and consulted by
/// the selectivity estimator and the cost model.
class Histogram {
 public:
  /// Builds an equi-width histogram with `num_bins` buckets. Empty input
  /// yields an empty histogram (total_count() == 0).
  static Histogram Build(std::span<const double> values, int num_bins = 64);

  int num_bins() const { return static_cast<int>(counts_.size()); }
  int64_t total_count() const { return total_; }
  double min() const { return min_; }
  double max() const { return max_; }

  int64_t bin_count(int bin) const { return counts_[bin]; }
  double bin_lo(int bin) const { return min_ + bin * width_; }
  double bin_hi(int bin) const { return min_ + (bin + 1) * width_; }

  /// Fraction of values strictly below `v` (or <= when `inclusive`),
  /// linearly interpolating inside the containing bin. Returns values
  /// in [0, 1]; 0 for an empty histogram.
  double FracBelow(double v, bool inclusive = false) const;

  /// Fraction of values in [lo, hi].
  double FracBetween(double lo, double hi) const;

  std::string ToString() const;

 private:
  double min_ = 0.0;
  double max_ = 0.0;
  double width_ = 1.0;
  int64_t total_ = 0;
  std::vector<int64_t> counts_;
};

/// \brief KMV (k-minimum-values) sketch for distinct-count estimation.
///
/// Insert 64-bit hashes of values; Estimate() returns the classic
/// (k-1)/max_kth_normalized estimator. Small (k=256) and mergeable.
class KmvSketch {
 public:
  explicit KmvSketch(int k = 256) : k_(k) {}

  void InsertHash(uint64_t h);
  void InsertInt(int64_t v);
  void InsertDouble(double v);
  void InsertString(const std::string& v);

  /// Estimated number of distinct inserted values.
  double Estimate() const;

 private:
  int k_;
  std::vector<uint64_t> heap_;  // max-heap of the k smallest hashes
};

}  // namespace mrtheta

#endif  // MRTHETA_STATS_HISTOGRAM_H_
