#include "src/stats/heavy_hitters.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <unordered_map>

#include "src/stats/table_stats.h"

namespace mrtheta {

FrequencySketch::FrequencySketch(int capacity)
    : capacity_(std::max(1, capacity)) {
  entries_.reserve(static_cast<size_t>(capacity_));
}

void FrequencySketch::Add(uint64_t key, int64_t weight) {
  total_ += weight;
  for (Entry& e : entries_) {
    if (e.key == key) {
      e.count += weight;
      return;
    }
  }
  if (static_cast<int>(entries_.size()) < capacity_) {
    entries_.push_back({key, weight, 0});
    return;
  }
  // Evict the minimum counter; the newcomer inherits its count as error.
  Entry* min_entry = &entries_[0];
  for (Entry& e : entries_) {
    if (e.count < min_entry->count) min_entry = &e;
  }
  min_entry->key = key;
  min_entry->error = min_entry->count;
  min_entry->count += weight;
}

std::vector<FrequencySketch::Entry> FrequencySketch::Entries() const {
  std::vector<Entry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return sorted;
}

namespace {

// Canonical 64-bit sketch key of a cell value.
uint64_t SketchKey(const Relation& rel, int64_t row, int column,
                   ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return static_cast<uint64_t>(rel.GetInt(row, column));
    case ValueType::kDouble:
      return std::bit_cast<uint64_t>(rel.GetDouble(row, column));
    case ValueType::kString:
      return std::hash<std::string>{}(rel.GetString(row, column));
  }
  return 0;
}

}  // namespace

std::vector<HeavyHitter> DetectHeavyHitters(const Relation& rel, int column,
                                            const HeavyHitterOptions& options) {
  if (rel.num_rows() == 0 || options.sample_size <= 0) return {};
  return DetectHeavyHittersInSample(
      rel, column,
      ReservoirSampleRows(rel.num_rows(), options.sample_size, options.seed),
      options);
}

std::vector<HeavyHitter> DetectHeavyHittersInSample(
    const Relation& rel, int column, std::span<const int64_t> sample,
    const HeavyHitterOptions& options) {
  std::vector<HeavyHitter> hitters;
  if (sample.empty()) return hitters;
  const ValueType type = rel.schema().column(column).type;

  FrequencySketch sketch(options.sketch_capacity);
  std::unordered_map<uint64_t, int64_t> first_row;
  first_row.reserve(sample.size());
  for (int64_t r : sample) {
    const uint64_t key = SketchKey(rel, r, column, type);
    sketch.Add(key);
    first_row.try_emplace(key, r);
  }

  const double n = static_cast<double>(sketch.total());
  for (const FrequencySketch::Entry& e : sketch.Entries()) {
    if (static_cast<int>(hitters.size()) >= options.top_k) break;
    const double freq = static_cast<double>(e.count) / n;
    if (freq < options.min_frequency) break;  // entries are sorted descending
    // Space-Saving only guarantees count - error occurrences; a long tail
    // of distinct values inflates `count` through inherited eviction
    // counts. Values the sketch cannot vouch for are not heavy hitters.
    const double guaranteed = static_cast<double>(e.count - e.error) / n;
    if (guaranteed < options.min_frequency) continue;
    HeavyHitter hh;
    hh.value = rel.Get(first_row.at(e.key), column);
    hh.sample_count = e.count;
    hh.frequency = freq;
    hitters.push_back(std::move(hh));
  }
  return hitters;
}

}  // namespace mrtheta
