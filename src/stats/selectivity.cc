#include "src/stats/selectivity.h"

#include <algorithm>
#include <cmath>

namespace mrtheta {

namespace {

// P(b θ v) for b drawn from `bh`.
double ProbAgainstConstant(const Histogram& bh, ThetaOp op, double v) {
  switch (op) {
    case ThetaOp::kLt:  // P(v < b) = P(b > v)
      return 1.0 - bh.FracBelow(v, /*inclusive=*/true);
    case ThetaOp::kLe:
      return 1.0 - bh.FracBelow(v, /*inclusive=*/false);
    case ThetaOp::kGt:  // P(v > b) = P(b < v)
      return bh.FracBelow(v, /*inclusive=*/false);
    case ThetaOp::kGe:
      return bh.FracBelow(v, /*inclusive=*/true);
    default:
      return 0.0;
  }
}

double EqualitySelectivity(const ColumnStats& a, const ColumnStats& b) {
  if (!a.numeric || !b.numeric) {
    return 1.0 / std::max({a.distinct, b.distinct, 1.0});
  }
  const Histogram& ah = a.histogram;
  const Histogram& bh = b.histogram;
  if (ah.total_count() == 0 || bh.total_count() == 0) return 0.0;
  // Skew-aware collision estimate: P(a = b) = Σ_bins massA·massB / d_bin,
  // where d_bin spreads the distinct count evenly over the bins. Reduces to
  // the classic 1/max(d) for uniform columns, but captures Zipf-like value
  // concentration that 1/d misses by orders of magnitude.
  const double d = std::max({a.distinct, b.distinct, 1.0});
  const double d_bin = std::max(1.0, d / ah.num_bins());
  double sel = 0.0;
  for (int bin = 0; bin < ah.num_bins(); ++bin) {
    const double fa =
        static_cast<double>(ah.bin_count(bin)) / ah.total_count();
    if (fa == 0.0) continue;
    const double fb = bh.FracBetween(ah.bin_lo(bin), ah.bin_hi(bin));
    sel += fa * fb / d_bin;
  }
  return sel;
}

}  // namespace

double EstimateThetaSelectivity(const ColumnStats& a, const ColumnStats& b,
                                ThetaOp op, double offset) {
  if (op == ThetaOp::kEq) {
    return std::clamp(EqualitySelectivity(a, b), 0.0, 1.0);
  }
  if (op == ThetaOp::kNe) {
    return std::clamp(1.0 - EqualitySelectivity(a, b), 0.0, 1.0);
  }
  if (!a.numeric || !b.numeric) {
    // Range comparison on strings: fall back to the uninformative prior.
    return 1.0 / 3.0;
  }
  const Histogram& ah = a.histogram;
  const Histogram& bh = b.histogram;
  if (ah.total_count() == 0 || bh.total_count() == 0) return 0.0;
  double sel = 0.0;
  for (int bin = 0; bin < ah.num_bins(); ++bin) {
    const double mass =
        static_cast<double>(ah.bin_count(bin)) / ah.total_count();
    if (mass == 0.0) continue;
    // Evaluate at the bin midpoint; bins are narrow enough (64 default)
    // that midpoint integration is accurate for smooth distributions.
    const double mid = 0.5 * (ah.bin_lo(bin) + ah.bin_hi(bin)) + offset;
    sel += mass * ProbAgainstConstant(bh, op, mid);
  }
  return std::clamp(sel, 0.0, 1.0);
}

double EstimateConjunctionSelectivity(
    const std::vector<JoinCondition>& conditions,
    const std::vector<const TableStats*>& per_relation_stats) {
  double sel = 1.0;
  for (const auto& cond : conditions) {
    const ColumnStats& a =
        per_relation_stats[cond.lhs.relation]->column(cond.lhs.column);
    const ColumnStats& b =
        per_relation_stats[cond.rhs.relation]->column(cond.rhs.column);
    sel *= EstimateThetaSelectivity(a, b, cond.op, cond.offset);
  }
  return std::clamp(sel, 1e-12, 1.0);
}

double EstimateJoinOutputRows(
    const std::vector<const TableStats*>& per_relation_stats,
    const std::vector<JoinCondition>& conditions) {
  double cross = 1.0;
  for (const TableStats* ts : per_relation_stats) {
    cross *= static_cast<double>(std::max<int64_t>(ts->logical_rows, 1));
  }
  return cross * EstimateConjunctionSelectivity(conditions,
                                                per_relation_stats);
}

double EstimateFilterSelectivity(const Relation& rel, int relation_index,
                                 const std::vector<SelectionFilter>& filters,
                                 int64_t max_rows, uint64_t seed) {
  std::vector<const SelectionFilter*> mine;
  for (const SelectionFilter& f : filters) {
    if (f.col.relation == relation_index) mine.push_back(&f);
  }
  if (mine.empty() || rel.num_rows() == 0) return 1.0;
  const std::vector<int64_t> sample =
      ReservoirSampleRows(rel.num_rows(), max_rows, seed);
  int64_t passing = 0;
  for (int64_t row : sample) {
    bool pass = true;
    for (const SelectionFilter* f : mine) {
      if (!f->Eval(rel.Get(row, f->col.column))) {
        pass = false;
        break;
      }
    }
    passing += pass ? 1 : 0;
  }
  // Floor at one sampled row: a filter the sample never saw pass still
  // leaves the relation with a non-degenerate planned cardinality.
  return static_cast<double>(std::max<int64_t>(1, passing)) /
         static_cast<double>(sample.size());
}

}  // namespace mrtheta
