#ifndef MRTHETA_STATS_HEAVY_HITTERS_H_
#define MRTHETA_STATS_HEAVY_HITTERS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/relation/relation.h"

namespace mrtheta {

/// \brief Space-Saving top-k frequency sketch over 64-bit keys (Metwally,
/// Agrawal, El Abbadi — "Efficient computation of frequent and top-k
/// elements in data streams").
///
/// Tracks at most `capacity` counters; when a new key arrives at a full
/// sketch it evicts the minimum counter and inherits its count as the new
/// entry's error bound. For any key with true count > total/capacity the
/// sketch is guaranteed to hold it, which is all heavy-hitter detection
/// needs: a value that matters for reducer balance has frequency far above
/// 1/capacity.
class FrequencySketch {
 public:
  explicit FrequencySketch(int capacity = 64);

  /// Observes `key` `weight` more times.
  void Add(uint64_t key, int64_t weight = 1);

  /// One tracked key. `count` overestimates the true count by at most
  /// `error` (the count inherited from the evicted minimum).
  struct Entry {
    uint64_t key = 0;
    int64_t count = 0;
    int64_t error = 0;
  };

  /// Tracked entries, descending by count (ties broken by key for
  /// determinism).
  std::vector<Entry> Entries() const;

  /// Total weight observed (across all keys, tracked or not).
  int64_t total() const { return total_; }

 private:
  int capacity_;
  int64_t total_ = 0;
  std::vector<Entry> entries_;  // unordered; scanned on eviction
};

/// One detected heavy hitter of a column.
struct HeavyHitter {
  Value value;
  int64_t sample_count = 0;
  /// Estimated fraction of the column's rows carrying `value`.
  double frequency = 0.0;
};

/// Detector knobs.
struct HeavyHitterOptions {
  /// Rows sampled from the relation (reservoir; the whole relation when it
  /// has fewer rows).
  int64_t sample_size = 4096;
  /// Space-Saving counters kept while scanning the sample.
  int sketch_capacity = 128;
  /// Report at most this many values.
  int top_k = 16;
  /// Report only values with estimated frequency >= this.
  double min_frequency = 0.005;
  uint64_t seed = 0x5eed;
};

/// \brief Detects heavy hitters of `rel`'s column `column` by reservoir-
/// sampling rows and feeding a Space-Saving sketch. Deterministic for a
/// given (relation, options) pair. Results are sorted by descending
/// frequency (ties by value order of first appearance in the sketch scan).
std::vector<HeavyHitter> DetectHeavyHitters(
    const Relation& rel, int column, const HeavyHitterOptions& options = {});

/// Same detector over an already-drawn row sample (callers that sample
/// once for several statistics — BuildTableStats — avoid re-walking the
/// relation). `options.sample_size`/`seed` are ignored.
std::vector<HeavyHitter> DetectHeavyHittersInSample(
    const Relation& rel, int column, std::span<const int64_t> sample_rows,
    const HeavyHitterOptions& options = {});

}  // namespace mrtheta

#endif  // MRTHETA_STATS_HEAVY_HITTERS_H_
