#ifndef MRTHETA_STATS_TABLE_STATS_H_
#define MRTHETA_STATS_TABLE_STATS_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/relation/relation.h"
#include "src/stats/histogram.h"

namespace mrtheta {

/// Summary statistics for one column, built from a sample at load time.
struct ColumnStats {
  double min = 0.0;
  double max = 0.0;
  double distinct = 0.0;  ///< KMV estimate of distinct values.
  /// Estimated frequency of the single most common value (Space-Saving
  /// sketch over the sample). Drives the planner's skew-handling decision
  /// (docs/SKEW.md): a uniform column has top_frequency ≈ 1/distinct, a
  /// Zipfian one is orders of magnitude above it.
  double top_frequency = 0.0;
  bool numeric = true;
  Histogram histogram;    ///< Empty for string columns.
};

/// \brief Per-table statistics: logical cardinality plus per-column stats.
///
/// This is the index/statistics structure the paper builds during its data
/// "uploading" step (Sec. 6.3, Fig. 11) and later uses for selectivity
/// estimation and (key,value) partition guidance.
struct TableStats {
  int64_t logical_rows = 0;
  int64_t logical_bytes = 0;
  int64_t avg_row_bytes = 0;
  std::vector<ColumnStats> columns;

  const ColumnStats& column(int i) const { return columns[i]; }
};

/// Options for statistics collection.
struct StatsOptions {
  int64_t sample_size = 4096;  ///< Reservoir size.
  int histogram_bins = 64;
  uint64_t seed = 0x5eed;
};

/// Builds TableStats from a relation by reservoir-sampling `sample_size`
/// rows. Cardinalities are taken from the relation's *logical* sizes, so the
/// stats describe the represented on-cluster data.
TableStats BuildTableStats(const Relation& rel,
                           const StatsOptions& options = {});

/// Reservoir-samples `k` row indices (uniform, deterministic for a seed).
std::vector<int64_t> ReservoirSampleRows(int64_t num_rows, int64_t k,
                                         uint64_t seed);

}  // namespace mrtheta

#endif  // MRTHETA_STATS_TABLE_STATS_H_
