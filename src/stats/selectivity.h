#ifndef MRTHETA_STATS_SELECTIVITY_H_
#define MRTHETA_STATS_SELECTIVITY_H_

#include <vector>

#include "src/relation/predicate.h"
#include "src/stats/table_stats.h"

namespace mrtheta {

/// \brief Selectivity estimation for theta predicates, driving the cost
/// model's α/β output ratios (Sec. 4: "computed with the selectivity
/// estimation").
///
/// Estimates P[(a + offset) θ b] for independent a ~ column A, b ~ column B
/// from the columns' histograms:
///  - `=`  : overlap-weighted 1/max(d_A, d_B) (classic System-R style);
///  - `<>` : 1 − selectivity(=);
///  - range ops: Σ over A-bins of binmass_A · P(B θ' midpoint+offset),
///    integrated with intra-bin linear interpolation.
double EstimateThetaSelectivity(const ColumnStats& a, const ColumnStats& b,
                                ThetaOp op, double offset);

/// Selectivity of a conjunction of conditions between two relations
/// (independence assumption; clamped to [1e-12, 1]).
double EstimateConjunctionSelectivity(
    const std::vector<JoinCondition>& conditions,
    const std::vector<const TableStats*>& per_relation_stats);

/// Estimated output cardinality of the join of `relations` under
/// `conditions` (cross product × conjunction selectivity).
/// `per_relation_stats[i]` describes relation i; conditions refer to these
/// indices.
double EstimateJoinOutputRows(
    const std::vector<const TableStats*>& per_relation_stats,
    const std::vector<JoinCondition>& conditions);

/// Fraction of `rel`'s rows passing every filter in `filters` whose column
/// lives in `rel` (filters on other relations are ignored): an exact count
/// over up to `max_rows` reservoir-sampled physical rows, deterministic for
/// a seed. Returns 1.0 when no filter applies; never returns 0 (floored at
/// one sampled row) so planners keep non-degenerate cardinalities.
double EstimateFilterSelectivity(const Relation& rel, int relation_index,
                                 const std::vector<SelectionFilter>& filters,
                                 int64_t max_rows, uint64_t seed);

}  // namespace mrtheta

#endif  // MRTHETA_STATS_SELECTIVITY_H_
