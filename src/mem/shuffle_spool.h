#ifndef MRTHETA_MEM_SHUFFLE_SPOOL_H_
#define MRTHETA_MEM_SHUFFLE_SPOOL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/mapreduce/job.h"
#include "src/mem/memory_budget.h"
#include "src/mem/spill.h"

namespace mrtheta {

/// \brief Budget-aware shuffle partitions: per-reduce-task record buckets
/// that spill sorted runs to one shared file when the memory budget is
/// exceeded, merged back per task with a k-way external merge
/// (docs/MEMORY.md).
///
/// Usage mirrors the shuffle of the parallel runner:
///  1. Append(task, rec) from the *sequential* merge walk — appends are
///     single-threaded, in emit order, and may spill the largest bucket;
///  2. FinishWrites() once, before the reduce phase;
///  3. MaterializeTask(t) from concurrent reduce workers — non-destructive
///     (a retried attempt re-materializes the same records) and
///     thread-safe for distinct tasks, each merge reading the shared file
///     through its own handles;
///  4. ReleaseTask(t) from the task's commit, freeing the bucket.
///
/// Spilled runs are sorted by (key, tag, row) — RunReduceTask's exact
/// comparator — so a merged task is already sorted and the reduce-side
/// sort is skipped. Determinism: records tying on the full comparator are
/// identical by the emit contract, so run/merge boundaries cannot perturb
/// the reduced sequence; outputs are byte-identical with or without
/// spilling.
///
/// Bucket memory is tracked against MemoryBudget::Global() (exact vector
/// capacities, not pages: shuffle partitions are many and small, and page
/// rounding would defeat tight budgets). The spool's spill file is removed
/// by its destructor; the per-execution SpillDirectory sweeps whatever an
/// abandoned process state leaves behind.
class ShuffleSpool {
 public:
  /// `dir` is not owned and may be null (spilling disarmed);
  /// `spill_limit_bytes` <= 0 also disarms spilling.
  ShuffleSpool(int num_tasks, int64_t spill_limit_bytes, SpillDirectory* dir);
  ShuffleSpool(const ShuffleSpool&) = delete;
  ShuffleSpool& operator=(const ShuffleSpool&) = delete;
  ~ShuffleSpool();

  /// Appends one record to `task`'s bucket; may spill. Errors latch into
  /// status() and turn later Appends into no-ops.
  void Append(int task, const MapOutputRecord& rec);

  /// Flushes the spill file before concurrent reads. Call once, after the
  /// last Append and before the first MaterializeTask.
  Status FinishWrites();

  /// First latched error, or OK.
  Status status() const {
    MutexLock lock(&partition_mu_);
    return status_;
  }

  struct MaterializedTask {
    std::vector<MapOutputRecord> records;
    /// True when the records come (partly) from sorted runs and are
    /// already in (key, tag, row) order; false = append order.
    bool sorted = false;
  };

  /// Returns task `t`'s complete record set: the k-way merge of its
  /// spilled runs and its (sorted) in-memory tail, or a copy of the
  /// bucket in append order when nothing spilled. The caller owns the
  /// vector (and should charge it to the budget for accounting).
  StatusOr<MaterializedTask> MaterializeTask(int task) const;

  /// Frees task `t`'s in-memory bucket (commit-time; runs stay on disk
  /// until the spool dies but are never re-read after release).
  void ReleaseTask(int task);

  /// Bytes written to the spill file (0 = never spilled).
  int64_t spill_bytes() const {
    MutexLock lock(&partition_mu_);
    return spill_bytes_;
  }
  /// Spill files created (0 or 1 — runs share one file).
  int64_t spill_files() const { return spill_file_.has_value() ? 1 : 0; }

 private:
  /// One sorted run of a bucket inside the shared spill file.
  struct Run {
    int64_t offset_bytes = 0;
    int64_t count = 0;
  };
  struct Bucket {
    std::vector<MapOutputRecord> records;  ///< capacity charged to budget
    int64_t charged_bytes = 0;
    std::vector<Run> runs;
  };

  void ChargedPush(Bucket& bucket, const MapOutputRecord& rec)
      MRTHETA_REQUIRES(partition_mu_);
  void UnchargeBucket(Bucket& bucket) MRTHETA_REQUIRES(partition_mu_);
  /// Spills the largest buckets until under budget (or all are tiny).
  void MaybeSpill() MRTHETA_REQUIRES(partition_mu_);
  Status SpillBucket(Bucket& bucket) MRTHETA_REQUIRES(partition_mu_);

  /// Registered under kSpoolPartitionLockName so MemoryBudget's page pool
  /// can CHECK the cross-subsystem lock-ordering contract (never acquire
  /// pool pages while a partition lock is held) at runtime; the bucket
  /// path only uses the budget's lock-free Charge/Uncharge, so the
  /// contract holds by construction here.
  mutable Mutex partition_mu_{kSpoolPartitionLockName};
  std::vector<Bucket> buckets_ MRTHETA_GUARDED_BY(partition_mu_);
  const int64_t spill_limit_bytes_ = 0;
  SpillDirectory* const spill_dir_ = nullptr;
  /// Single-writer during the sequential Append phase, frozen after
  /// FinishWrites; concurrent MaterializeTask merges read it through their
  /// own Reader handles, so it is deliberately NOT guarded.
  std::optional<SpillFile> spill_file_;
  int64_t spill_bytes_ MRTHETA_GUARDED_BY(partition_mu_) = 0;
  Status status_ MRTHETA_GUARDED_BY(partition_mu_);
};

}  // namespace mrtheta

#endif  // MRTHETA_MEM_SHUFFLE_SPOOL_H_
