#include "src/mem/spill.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <system_error>
#include <utility>

namespace mrtheta {

namespace {

// Distinguishes the spill directories of executions running concurrently
// in one process (DAG-overlapped plans, concurrent Submits).
std::atomic<uint64_t> g_next_dir_id{0};

}  // namespace

SpillDirectory::~SpillDirectory() {
  std::string path;
  {
    MutexLock lock(&mu_);
    path = path_;
  }
  if (path.empty()) return;
  std::error_code ec;  // best-effort: destructor must not throw
  std::filesystem::remove_all(path, ec);
}

std::string SpillDirectory::path() const {
  MutexLock lock(&mu_);
  return path_;
}

StatusOr<std::string> SpillDirectory::NewFilePath() {
  MutexLock lock(&mu_);
  if (path_.empty()) {
    // $MRTHETA_SPILL_DIR is read here, per directory, not cached
    // process-wide: tests redirect it between executions.
    const char* root_env = std::getenv("MRTHETA_SPILL_DIR");
    std::filesystem::path root;
    if (root_env != nullptr && root_env[0] != '\0') {
      root = root_env;
    } else {
      std::error_code ec;
      root = std::filesystem::temp_directory_path(ec);
      if (ec) {
        return Status::Internal("no temp directory for spill files: " +
                                ec.message());
      }
    }
    const std::filesystem::path dir =
        root / ("mrtheta-spill-" + std::to_string(::getpid()) + "-" +
                std::to_string(
                    g_next_dir_id.fetch_add(1, std::memory_order_relaxed)));
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::Internal("failed to create spill directory '" +
                              dir.string() + "': " + ec.message());
    }
    path_ = dir.string();
  }
  return path_ + "/spill-" + std::to_string(next_file_++) + ".bin";
}

SpillFile::SpillFile(SpillFile&& other) noexcept
    : path_(std::move(other.path_)),
      write_handle_(other.write_handle_),
      bytes_written_(other.bytes_written_),
      finished_(other.finished_) {
  other.path_.clear();
  other.write_handle_ = nullptr;
  other.bytes_written_ = 0;
  other.finished_ = false;
}

SpillFile& SpillFile::operator=(SpillFile&& other) noexcept {
  if (this != &other) {
    this->~SpillFile();
    new (this) SpillFile(std::move(other));
  }
  return *this;
}

SpillFile::~SpillFile() {
  if (write_handle_ != nullptr) std::fclose(write_handle_);
  if (!path_.empty()) {
    std::error_code ec;  // best-effort
    std::filesystem::remove(path_, ec);
  }
}

StatusOr<SpillFile> SpillFile::Create(SpillDirectory& dir) {
  StatusOr<std::string> path = dir.NewFilePath();
  if (!path.ok()) return path.status();
  SpillFile file;
  file.write_handle_ = std::fopen(path->c_str(), "wb");
  if (file.write_handle_ == nullptr) {
    return Status::Internal("failed to create spill file '" + *path + "'");
  }
  file.path_ = *std::move(path);
  return file;
}

Status SpillFile::Append(const void* data, int64_t bytes) {
  if (write_handle_ == nullptr || finished_) {
    return Status::Internal("spill file '" + path_ + "' is not writable");
  }
  if (bytes <= 0) return Status::OK();
  const size_t written =
      std::fwrite(data, 1, static_cast<size_t>(bytes), write_handle_);
  if (written != static_cast<size_t>(bytes)) {
    return Status::ResourceExhausted("short write to spill file '" + path_ +
                                     "' (disk full?)");
  }
  bytes_written_ += bytes;
  return Status::OK();
}

Status SpillFile::Finish() {
  if (finished_) return Status::OK();
  if (write_handle_ == nullptr) {
    return Status::Internal("spill file was never created");
  }
  const int flush = std::fflush(write_handle_);
  const int close = std::fclose(write_handle_);
  write_handle_ = nullptr;
  finished_ = true;
  if (flush != 0 || close != 0) {
    return Status::ResourceExhausted("failed to flush spill file '" + path_ +
                                     "' (disk full?)");
  }
  return Status::OK();
}

SpillFile::Reader::Reader(Reader&& other) noexcept
    : handle_(other.handle_), remaining_(other.remaining_) {
  other.handle_ = nullptr;
  other.remaining_ = 0;
}

SpillFile::Reader& SpillFile::Reader::operator=(Reader&& other) noexcept {
  if (this != &other) {
    if (handle_ != nullptr) std::fclose(handle_);
    handle_ = other.handle_;
    remaining_ = other.remaining_;
    other.handle_ = nullptr;
    other.remaining_ = 0;
  }
  return *this;
}

SpillFile::Reader::~Reader() {
  if (handle_ != nullptr) std::fclose(handle_);
}

StatusOr<int64_t> SpillFile::Reader::Read(void* out, int64_t bytes) {
  if (handle_ == nullptr) {
    return Status::Internal("spill reader is not open");
  }
  const int64_t want = std::min(bytes, remaining_);
  if (want <= 0) return int64_t{0};
  const size_t got = std::fread(out, 1, static_cast<size_t>(want), handle_);
  if (got != static_cast<size_t>(want)) {
    return Status::Internal("short read from spill file");
  }
  remaining_ -= want;
  return want;
}

StatusOr<SpillFile::Reader> SpillFile::OpenReader(int64_t offset,
                                                  int64_t length) const {
  if (!finished_) {
    return Status::Internal("spill file '" + path_ +
                            "' read before Finish()");
  }
  if (offset < 0 || length < 0 || offset + length > bytes_written_) {
    return Status::Internal("spill read range out of bounds");
  }
  Reader reader;
  reader.handle_ = std::fopen(path_.c_str(), "rb");
  if (reader.handle_ == nullptr) {
    return Status::Internal("failed to reopen spill file '" + path_ + "'");
  }
  if (std::fseek(reader.handle_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::Internal("failed to seek spill file '" + path_ + "'");
  }
  reader.remaining_ = length;
  return reader;
}

}  // namespace mrtheta
