#ifndef MRTHETA_MEM_MEMORY_BUDGET_H_
#define MRTHETA_MEM_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace mrtheta {

/// Registry name of ShuffleSpool's partition lock (src/mem/shuffle_spool.h).
/// It lives here because MemoryBudget is the *enforcement* site of the
/// cross-subsystem lock-ordering contract: the page-pool lock (free_mu_)
/// must never be acquired while a spool partition lock is held — spilling
/// under the partition lock while the pool blocks on the same budget is
/// the deadlock shape docs/STATIC_ANALYSIS.md describes. Static EXCLUDES
/// annotations cannot name another class's private mutex, so the runtime
/// guard in AcquirePage/ReleasePage checks the thread-local held-lock
/// registry by this name instead (tests/thread_safety_test.cc proves it).
inline constexpr char kSpoolPartitionLockName[] = "mem.spool_partition";

/// \brief Process-wide accounting arena for the runtime's shuffle memory
/// (docs/MEMORY.md).
///
/// Two kinds of usage are tracked against one shared ledger:
///  - fixed-size KV *pages* (AcquirePage/ReleasePage) backing MapEmitter
///    and ShuffleSpool buffers; released pages are recycled through a
///    small freelist, and a cached free page does not count as in use;
///  - *charges* (Charge/Uncharge, or the ScopedCharge RAII) for tracked
///    allocations that are not page-shaped, e.g. a reduce task's merged
///    record vector.
///
/// The budget never refuses memory — exceeding a limit is a *spill
/// signal*, not an allocation failure, so the runtime always makes
/// progress (the spill path itself needs a page or two of headroom).
/// Spill decisions compare in_use_bytes() against a per-execution limit
/// (ExecutorOptions::mem_budget_bytes); limit_bytes() here is only the
/// process-wide default, seeded from $MRTHETA_MEM_BUDGET.
///
/// peak_bytes() is the high-water mark of in-use bytes since the last
/// ResetPeak() — a process-wide figure: concurrent executions share it.
class MemoryBudget {
 public:
  /// Page granularity of every paged container. 64 KiB holds ~1.6k
  /// MapOutputRecords — small enough that per-holder slack stays a
  /// rounding error against any realistic budget, large enough that page
  /// churn is invisible next to map/reduce compute.
  static constexpr int64_t kPageBytes = 64 * 1024;

  using PagePtr = std::unique_ptr<unsigned char[]>;

  /// The process-wide budget. First use parses $MRTHETA_MEM_BUDGET into
  /// limit_bytes() (aborts on a malformed value — a CI memory leg with a
  /// typo must fail loudly, not silently run unbounded, mirroring
  /// FaultPlan::FromEnvironment).
  static MemoryBudget& Global();

  /// Process-default spill threshold in bytes; 0 = unlimited.
  int64_t limit_bytes() const {
    return limit_.load(std::memory_order_relaxed);
  }
  void set_limit_bytes(int64_t limit) {
    limit_.store(limit, std::memory_order_relaxed);
  }

  /// Hands out one kPageBytes page (recycled or freshly allocated) and
  /// charges it to the ledger. Only a real allocation failure errors
  /// (kResourceExhausted); being over limit does not. Must not be called
  /// with a spool partition lock held (CHECK-enforced, see
  /// kSpoolPartitionLockName above).
  StatusOr<PagePtr> AcquirePage() MRTHETA_EXCLUDES(free_mu_);
  /// Uncharges and recycles `page` (freelist-capped; excess pages free).
  /// Same lock-ordering contract as AcquirePage.
  void ReleasePage(PagePtr page) MRTHETA_EXCLUDES(free_mu_);

  /// Tracks a non-paged allocation of `bytes` against the ledger.
  void Charge(int64_t bytes);
  void Uncharge(int64_t bytes);

  /// Bytes currently charged (pages out + explicit charges).
  int64_t in_use_bytes() const {
    return in_use_.load(std::memory_order_relaxed);
  }
  /// High-water mark of in_use_bytes() since the last ResetPeak().
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  void ResetPeak();

  /// True when tracked usage exceeds `limit` (> 0) — the spill signal.
  bool OverBudget(int64_t limit) const {
    return limit > 0 && in_use_bytes() > limit;
  }

  /// Strict byte-size parser for flags and $MRTHETA_MEM_BUDGET: a
  /// non-negative integer with an optional K/M/G binary suffix
  /// (case-insensitive), no trailing junk, no overflow. "0" = unlimited.
  static StatusOr<int64_t> ParseByteSize(const std::string& text);

 private:
  MemoryBudget() = default;

  std::atomic<int64_t> limit_{0};
  std::atomic<int64_t> in_use_{0};
  std::atomic<int64_t> peak_{0};

  Mutex free_mu_{"mem.page_pool"};
  std::vector<PagePtr> free_pages_ MRTHETA_GUARDED_BY(free_mu_);
};

/// RAII Charge/Uncharge against the global budget; movable so it can ride
/// inside attempt-local task state.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  explicit ScopedCharge(int64_t bytes) : bytes_(bytes) {
    MemoryBudget::Global().Charge(bytes_);
  }
  ScopedCharge(ScopedCharge&& other) noexcept : bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  ScopedCharge& operator=(ScopedCharge&& other) noexcept {
    Release();
    bytes_ = other.bytes_;
    other.bytes_ = 0;
    return *this;
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;
  ~ScopedCharge() { Release(); }

  void Release() {
    if (bytes_ > 0) MemoryBudget::Global().Uncharge(bytes_);
    bytes_ = 0;
  }

 private:
  int64_t bytes_ = 0;
};

/// Test helper: overrides the global default limit for a scope, restoring
/// the previous limit (and resetting the peak both ways) on destruction.
class ScopedMemoryBudget {
 public:
  explicit ScopedMemoryBudget(int64_t limit_bytes)
      : saved_(MemoryBudget::Global().limit_bytes()) {
    MemoryBudget::Global().set_limit_bytes(limit_bytes);
    MemoryBudget::Global().ResetPeak();
  }
  ScopedMemoryBudget(const ScopedMemoryBudget&) = delete;
  ScopedMemoryBudget& operator=(const ScopedMemoryBudget&) = delete;
  ~ScopedMemoryBudget() {
    MemoryBudget::Global().set_limit_bytes(saved_);
    MemoryBudget::Global().ResetPeak();
  }

 private:
  int64_t saved_;
};

}  // namespace mrtheta

#endif  // MRTHETA_MEM_MEMORY_BUDGET_H_
