#include "src/mem/memory_budget.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <new>

namespace mrtheta {

namespace {

// Freelist cap: recycled pages beyond this are freed back to the
// allocator. 256 pages = 16 MiB of cache, enough to absorb the page churn
// of one execution without hoarding memory between queries.
constexpr size_t kMaxFreePages = 256;

}  // namespace

MemoryBudget& MemoryBudget::Global() {
  static MemoryBudget* budget = [] {
    auto* b = new MemoryBudget();
    const char* env = std::getenv("MRTHETA_MEM_BUDGET");
    if (env != nullptr && env[0] != '\0') {
      StatusOr<int64_t> parsed = ParseByteSize(env);
      if (!parsed.ok()) {
        // A CI memory leg with a typo in its budget must fail loudly, not
        // silently run unbounded and report a meaningless green.
        std::fprintf(stderr, "MRTHETA_MEM_BUDGET='%s': %s\n", env,
                     parsed.status().ToString().c_str());
        std::abort();
      }
      b->set_limit_bytes(*parsed);
    }
    return b;
  }();
  return *budget;
}

StatusOr<MemoryBudget::PagePtr> MemoryBudget::AcquirePage() {
  // Lock-ordering contract (see kSpoolPartitionLockName): page-pool calls
  // must never run under a spool partition lock. The static analysis cannot
  // see across the subsystem boundary, so this is checked at runtime
  // against the thread's held-lock registry, in every build type.
  MRTHETA_CHECK(!Mutex::ThisThreadHoldsNamed(kSpoolPartitionLockName));
  {
    MutexLock lock(&free_mu_);
    if (!free_pages_.empty()) {
      PagePtr page = std::move(free_pages_.back());
      free_pages_.pop_back();
      Charge(kPageBytes);
      return page;
    }
  }
  PagePtr page(new (std::nothrow) unsigned char[kPageBytes]);
  if (page == nullptr) {
    return Status::ResourceExhausted("failed to allocate a " +
                                     std::to_string(kPageBytes) +
                                     "-byte KV page");
  }
  Charge(kPageBytes);
  return page;
}

void MemoryBudget::ReleasePage(PagePtr page) {
  if (page == nullptr) return;
  MRTHETA_CHECK(!Mutex::ThisThreadHoldsNamed(kSpoolPartitionLockName));
  Uncharge(kPageBytes);
  MutexLock lock(&free_mu_);
  if (free_pages_.size() < kMaxFreePages) {
    free_pages_.push_back(std::move(page));
  }
}

void MemoryBudget::Charge(int64_t bytes) {
  if (bytes <= 0) return;
  const int64_t now =
      in_use_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void MemoryBudget::Uncharge(int64_t bytes) {
  if (bytes <= 0) return;
  in_use_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryBudget::ResetPeak() {
  peak_.store(in_use_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
}

StatusOr<int64_t> MemoryBudget::ParseByteSize(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("byte size is empty");
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str()) {
    return Status::InvalidArgument("not a byte size: '" + text + "'");
  }
  if (errno == ERANGE || value < 0) {
    return Status::InvalidArgument("byte size out of range: '" + text + "'");
  }
  int64_t multiplier = 1;
  if (*end != '\0') {
    switch (std::toupper(static_cast<unsigned char>(*end))) {
      case 'K': multiplier = int64_t{1} << 10; break;
      case 'M': multiplier = int64_t{1} << 20; break;
      case 'G': multiplier = int64_t{1} << 30; break;
      default:
        return Status::InvalidArgument("bad byte-size suffix in '" + text +
                                       "' (expected K, M or G)");
    }
    if (end[1] != '\0') {
      return Status::InvalidArgument("trailing junk in byte size '" + text +
                                     "'");
    }
  }
  if (value > std::numeric_limits<int64_t>::max() / multiplier) {
    return Status::InvalidArgument("byte size out of range: '" + text + "'");
  }
  return static_cast<int64_t>(value) * multiplier;
}

}  // namespace mrtheta
