#include "src/mem/shuffle_spool.h"

#include <algorithm>
#include <new>
#include <queue>
#include <utility>

#include "src/mem/memory_budget.h"
#include "src/obs/trace.h"

namespace mrtheta {

namespace {

// Buckets smaller than this are not worth a spill run: the freed memory is
// tiny and every run adds a merge source. With 40-byte records this is
// ~2.5 KiB — well under any budget that can hold a page. The guard also
// bounds the spool's unspillable floor at RN * kMinSpillRecords records
// (the early-shuffle regime where every bucket is still small), so it must
// stay small relative to budget / RN for peak memory to track the budget.
constexpr int64_t kMinSpillRecords = 64;

// Records read per merge source refill (~20 KiB buffers).
constexpr int64_t kMergeBufferRecords = 512;

// The reduce-side order: RunReduceTask's exact comparator. Ties are fully
// identical records by the emit contract, so this order is total for
// observable purposes.
bool RecordLess(const MapOutputRecord& a, const MapOutputRecord& b) {
  if (a.key != b.key) return a.key < b.key;
  if (a.tag != b.tag) return a.tag < b.tag;
  return a.row < b.row;
}

constexpr int64_t kRecordBytes = static_cast<int64_t>(sizeof(MapOutputRecord));

}  // namespace

ShuffleSpool::ShuffleSpool(int num_tasks, int64_t spill_limit_bytes,
                           SpillDirectory* dir)
    : buckets_(static_cast<size_t>(std::max(num_tasks, 0))),
      spill_limit_bytes_(spill_limit_bytes),
      spill_dir_(dir) {}

ShuffleSpool::~ShuffleSpool() {
  MutexLock lock(&partition_mu_);
  for (Bucket& bucket : buckets_) UnchargeBucket(bucket);
}

void ShuffleSpool::ChargedPush(Bucket& bucket, const MapOutputRecord& rec) {
  if (bucket.records.size() == bucket.records.capacity()) {
    const size_t new_cap =
        std::max<size_t>(64, bucket.records.capacity() * 2);
    bucket.records.reserve(new_cap);  // may throw; caller catches
    const int64_t now_charged =
        static_cast<int64_t>(bucket.records.capacity()) * kRecordBytes;
    MemoryBudget::Global().Charge(now_charged - bucket.charged_bytes);
    bucket.charged_bytes = now_charged;
  }
  bucket.records.push_back(rec);
}

void ShuffleSpool::UnchargeBucket(Bucket& bucket) {
  bucket.records = std::vector<MapOutputRecord>();
  MemoryBudget::Global().Uncharge(bucket.charged_bytes);
  bucket.charged_bytes = 0;
}

void ShuffleSpool::Append(int task, const MapOutputRecord& rec) {
  MutexLock lock(&partition_mu_);
  if (!status_.ok()) return;
  if (task < 0 || task >= static_cast<int>(buckets_.size())) {
    status_ = Status::Internal("shuffle record targets task " +
                               std::to_string(task) + " of " +
                               std::to_string(buckets_.size()));
    return;
  }
  try {
    ChargedPush(buckets_[static_cast<size_t>(task)], rec);
  } catch (const std::bad_alloc&) {
    status_ = Status::ResourceExhausted("shuffle partition growth failed");
    return;
  }
  if (spill_dir_ != nullptr && spill_limit_bytes_ > 0 &&
      MemoryBudget::Global().OverBudget(spill_limit_bytes_)) {
    MaybeSpill();
  }
}

void ShuffleSpool::MaybeSpill() {
  while (status_.ok() &&
         MemoryBudget::Global().OverBudget(spill_limit_bytes_)) {
    // Largest bucket first (ties: lowest index) — frees the most memory
    // per run and keeps run counts low for the merge.
    Bucket* victim = nullptr;
    for (Bucket& bucket : buckets_) {
      if (bucket.records.size() < static_cast<size_t>(kMinSpillRecords)) {
        continue;
      }
      if (victim == nullptr ||
          bucket.records.size() > victim->records.size()) {
        victim = &bucket;
      }
    }
    // Everything resident is tiny; the pressure comes from other holders
    // (map emitters, reduce materializations) that spill on their own.
    if (victim == nullptr) return;
    Status s = SpillBucket(*victim);
    if (!s.ok()) status_ = std::move(s);
  }
}

Status ShuffleSpool::SpillBucket(Bucket& bucket) {
  if (!spill_file_.has_value()) {
    StatusOr<SpillFile> file = SpillFile::Create(*spill_dir_);
    if (!file.ok()) return file.status();
    spill_file_ = *std::move(file);
  }
  TraceSpan span("spill-write", "mem");
  // Sorting before the write is what makes the segment a mergeable run —
  // and what lets the reduce side skip its own sort entirely.
  std::sort(bucket.records.begin(), bucket.records.end(), RecordLess);
  Run run;
  run.offset_bytes = spill_file_->bytes_written();
  run.count = static_cast<int64_t>(bucket.records.size());
  const int64_t bytes = run.count * kRecordBytes;
  MRTHETA_RETURN_IF_ERROR(spill_file_->Append(bucket.records.data(), bytes));
  try {
    bucket.runs.push_back(run);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("shuffle run index growth failed");
  }
  spill_bytes_ += bytes;
  if (span.enabled()) span.Arg("bytes", bytes);
  UnchargeBucket(bucket);
  return Status::OK();
}

Status ShuffleSpool::FinishWrites() {
  {
    MutexLock lock(&partition_mu_);
    MRTHETA_RETURN_IF_ERROR(status_);
  }
  // spill_file_ is frozen from here on (single writer, and Append latches
  // errors before ever reaching it again); Finish outside the lock.
  if (spill_file_.has_value()) return spill_file_->Finish();
  return Status::OK();
}

StatusOr<ShuffleSpool::MaterializedTask> ShuffleSpool::MaterializeTask(
    int task) const {
  // Snapshot the bucket under the partition lock, then run the (possibly
  // long) k-way merge outside it: concurrent reduce tasks materialize in
  // parallel, serialized only for the copy. The merge reads spill_file_,
  // which is frozen after FinishWrites (see the member comment).
  std::vector<MapOutputRecord> resident;
  std::vector<Run> runs;
  {
    MutexLock lock(&partition_mu_);
    if (task < 0 || task >= static_cast<int>(buckets_.size())) {
      return Status::Internal("materialize of unknown shuffle task " +
                              std::to_string(task));
    }
    const Bucket& bucket = buckets_[static_cast<size_t>(task)];
    try {
      // A copy, not a move — a retried task attempt re-materializes the
      // same records.
      resident = bucket.records;
      runs = bucket.runs;
    } catch (const std::bad_alloc&) {
      return Status::ResourceExhausted(
          "materializing shuffle task " + std::to_string(task) + " (" +
          std::to_string(bucket.records.size()) + " resident records, " +
          std::to_string(bucket.runs.size()) + " spilled runs) failed");
    }
  }
  MaterializedTask out;
  try {
    if (runs.empty()) {
      // Pure in-memory bucket: hand back the copy in append order. The
      // runner's usual sort follows.
      out.records = std::move(resident);
      out.sorted = false;
      return out;
    }

    TraceSpan span("spill-merge", "mem");
    int64_t total = static_cast<int64_t>(resident.size());
    for (const Run& run : runs) total += run.count;
    out.records.reserve(static_cast<size_t>(total));

    // One merge source per spilled run plus the sorted in-memory tail.
    struct Source {
      std::optional<SpillFile::Reader> reader;  // null for the tail
      std::vector<MapOutputRecord> buffer;
      size_t pos = 0;

      bool Exhausted() const { return pos == buffer.size(); }
      Status Refill() {
        if (reader == std::nullopt) return Status::OK();  // tail never refills
        buffer.resize(static_cast<size_t>(kMergeBufferRecords));
        StatusOr<int64_t> got =
            reader->Read(buffer.data(), kMergeBufferRecords * kRecordBytes);
        MRTHETA_RETURN_IF_ERROR(got.status());
        buffer.resize(static_cast<size_t>(*got / kRecordBytes));
        pos = 0;
        return Status::OK();
      }
    };
    std::vector<Source> sources;
    sources.reserve(runs.size() + 1);
    for (const Run& run : runs) {
      StatusOr<SpillFile::Reader> reader =
          spill_file_->OpenReader(run.offset_bytes, run.count * kRecordBytes);
      if (!reader.ok()) return reader.status();
      Source src;
      src.reader = *std::move(reader);
      MRTHETA_RETURN_IF_ERROR(src.Refill());
      sources.push_back(std::move(src));
    }
    {
      Source tail;
      tail.buffer = std::move(resident);  // snapshot; the bucket is intact
      std::sort(tail.buffer.begin(), tail.buffer.end(), RecordLess);
      sources.push_back(std::move(tail));
    }

    // K-way merge. The heap holds source indices ordered by each source's
    // current head record; source index breaks exact ties, which (with the
    // identical-ties contract) fixes one deterministic merge order.
    auto heap_greater = [&sources](size_t a, size_t b) {
      const MapOutputRecord& ra = sources[a].buffer[sources[a].pos];
      const MapOutputRecord& rb = sources[b].buffer[sources[b].pos];
      if (RecordLess(ra, rb)) return false;
      if (RecordLess(rb, ra)) return true;
      return a > b;
    };
    std::vector<size_t> heap;
    for (size_t i = 0; i < sources.size(); ++i) {
      if (!sources[i].Exhausted()) heap.push_back(i);
    }
    std::make_heap(heap.begin(), heap.end(), heap_greater);
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), heap_greater);
      const size_t i = heap.back();
      heap.pop_back();
      Source& src = sources[i];
      out.records.push_back(src.buffer[src.pos++]);
      if (src.Exhausted()) {
        MRTHETA_RETURN_IF_ERROR(src.Refill());
      }
      if (!src.Exhausted()) {
        heap.push_back(i);
        std::push_heap(heap.begin(), heap.end(), heap_greater);
      }
    }
    if (span.enabled()) span.Arg("records", total);
    out.sorted = true;
    return out;
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        "materializing shuffle task " + std::to_string(task) + " (" +
        std::to_string(out.records.size()) + " merged records, " +
        std::to_string(runs.size()) + " spilled runs) failed");
  }
}

void ShuffleSpool::ReleaseTask(int task) {
  MutexLock lock(&partition_mu_);
  if (task < 0 || task >= static_cast<int>(buckets_.size())) return;
  UnchargeBucket(buckets_[static_cast<size_t>(task)]);
}

}  // namespace mrtheta
