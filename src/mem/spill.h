#ifndef MRTHETA_MEM_SPILL_H_
#define MRTHETA_MEM_SPILL_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace mrtheta {

/// \brief A per-execution temporary directory for spill files
/// (docs/MEMORY.md).
///
/// The directory is created lazily on the first NewFilePath() call —
/// executions that never spill touch the filesystem not at all — under
/// $MRTHETA_SPILL_DIR (re-read on every construction, so tests can
/// redirect it) or the system temp directory. The destructor removes the
/// whole tree, which is what guarantees cleanup on success, failure and
/// cancellation alike: the executor keeps one SpillDirectory on the
/// RunOn stack, so every exit path unwinds through it.
///
/// Thread-safe: concurrent plan jobs of one execution share a directory.
class SpillDirectory {
 public:
  SpillDirectory() = default;
  SpillDirectory(const SpillDirectory&) = delete;
  SpillDirectory& operator=(const SpillDirectory&) = delete;
  ~SpillDirectory();

  /// Creates the directory on first use and returns a unique file path in
  /// it (the file itself is not created).
  StatusOr<std::string> NewFilePath();

  /// The directory path; empty until the first NewFilePath().
  std::string path() const;

 private:
  mutable Mutex mu_;
  std::string path_ MRTHETA_GUARDED_BY(mu_);
  int next_file_ MRTHETA_GUARDED_BY(mu_) = 0;
};

/// \brief One append-then-read spill stream: raw bytes written
/// sequentially, later read back by independent readers. The file is
/// removed on destruction, so an abandoned attempt's spill disappears
/// with its emitter.
///
/// Record-agnostic by design (callers write POD record arrays as bytes),
/// which keeps src/mem free of src/mapreduce types.
class SpillFile {
 public:
  SpillFile() = default;
  SpillFile(SpillFile&& other) noexcept;
  SpillFile& operator=(SpillFile&& other) noexcept;
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  ~SpillFile();

  /// Creates an empty spill stream in `dir`.
  static StatusOr<SpillFile> Create(SpillDirectory& dir);

  bool open() const { return write_handle_ != nullptr; }

  /// Appends `bytes` raw bytes. Invalid after Finish().
  Status Append(const void* data, int64_t bytes);
  /// Flushes and closes the write handle; readers opened after this see
  /// every appended byte. Idempotent.
  Status Finish();

  int64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

  /// Sequential reader over bytes [offset, offset + length) of a finished
  /// stream. Each reader owns its own file handle, so concurrent readers
  /// over disjoint (or identical) ranges are safe.
  class Reader {
   public:
    Reader() = default;
    Reader(Reader&& other) noexcept;
    Reader& operator=(Reader&& other) noexcept;
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;
    ~Reader();

    /// Reads exactly min(bytes, remaining) bytes into `out`; returns the
    /// count (0 at end of range).
    StatusOr<int64_t> Read(void* out, int64_t bytes);

   private:
    friend class SpillFile;
    std::FILE* handle_ = nullptr;
    int64_t remaining_ = 0;
  };

  /// Opens a reader over [offset, offset + length). Requires Finish().
  StatusOr<Reader> OpenReader(int64_t offset, int64_t length) const;

 private:
  std::string path_;
  std::FILE* write_handle_ = nullptr;
  int64_t bytes_written_ = 0;
  bool finished_ = false;
};

}  // namespace mrtheta

#endif  // MRTHETA_MEM_SPILL_H_
