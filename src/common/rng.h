#ifndef MRTHETA_COMMON_RNG_H_
#define MRTHETA_COMMON_RNG_H_

#include <cstdint>

namespace mrtheta {

/// \brief Deterministic, fast pseudo-random generator (xoshiro256**),
/// seeded via SplitMix64 so that any 64-bit seed yields a well-mixed state.
///
/// All randomness in the library (data generation, global-ID assignment,
/// sampling) flows through explicitly seeded Rng instances, which makes every
/// experiment reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into four state words.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    // Lemire's nearly-divisionless method would be overkill; modulo bias is
    // negligible for bound << 2^64 and this is not cryptographic.
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box-Muller (one value per call; simple and enough).
  double Normal(double mean, double stddev);

  /// Zipf-distributed rank in [0, n) with exponent s (s=0 => uniform).
  /// Uses rejection-inversion (Hörmann/Derflinger), O(1) per draw.
  uint64_t Zipf(uint64_t n, double s);

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace mrtheta

#endif  // MRTHETA_COMMON_RNG_H_
