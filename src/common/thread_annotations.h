#ifndef MRTHETA_COMMON_THREAD_ANNOTATIONS_H_
#define MRTHETA_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

/// \file
/// Clang Thread Safety Analysis annotations and the annotated lock
/// primitives every concurrent subsystem must use (docs/STATIC_ANALYSIS.md).
///
/// The macros expand to Clang's thread-safety attributes when compiling
/// with clang and to nothing elsewhere, so gcc builds are unaffected while
/// the CI lint job builds the library with
/// `-Wthread-safety -Werror=thread-safety` and turns every lock-discipline
/// violation (a MRTHETA_GUARDED_BY member touched without its lock, a
/// *Locked function called outside its MRTHETA_REQUIRES mutex, an unpaired
/// acquire/release) into a compile error instead of a TSan finding that
/// needs the race to actually interleave.
///
/// Raw `std::mutex` members are banned in src/ (scripts/lint.py): the
/// analysis cannot see through them. Use `Mutex` + `MutexLock` + `CondVar`
/// below — a zero-overhead wrapper over std::mutex /
/// std::condition_variable that additionally maintains a per-thread
/// held-lock registry for runtime deadlock-ordering guards
/// (ThisThreadHoldsNamed; see MemoryBudget's page-pool assertion).

#if defined(__clang__) && !defined(SWIG)
#define MRTHETA_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define MRTHETA_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

/// Declares a type to be a lockable capability ("mutex").
#define MRTHETA_CAPABILITY(x) \
  MRTHETA_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Declares an RAII type whose lifetime is a critical section.
#define MRTHETA_SCOPED_CAPABILITY \
  MRTHETA_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Member may only be accessed while holding `x`.
#define MRTHETA_GUARDED_BY(x) \
  MRTHETA_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Pointee may only be accessed while holding `x` (the pointer itself is
/// unguarded).
#define MRTHETA_PT_GUARDED_BY(x) \
  MRTHETA_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Function requires the caller to hold `...` (the *Locked convention).
#define MRTHETA_REQUIRES(...) \
  MRTHETA_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// Function acquires `...` and holds it on return.
#define MRTHETA_ACQUIRE(...) \
  MRTHETA_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// Function releases `...` (held on entry, released on return).
#define MRTHETA_RELEASE(...) \
  MRTHETA_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// Function acquires `...` when returning the given value.
#define MRTHETA_TRY_ACQUIRE(...) \
  MRTHETA_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while holding `...` — the static face of a
/// deadlock-ordering rule (self-deadlock, lock-hierarchy leaves).
#define MRTHETA_EXCLUDES(...) \
  MRTHETA_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Tells the analysis the capability is held without acquiring it (for
/// assertion helpers).
#define MRTHETA_ASSERT_CAPABILITY(x) \
  MRTHETA_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

/// Function returns a reference to the given capability.
#define MRTHETA_RETURN_CAPABILITY(x) \
  MRTHETA_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs a
/// comment justifying it and is subject to the suppression policy in
/// docs/STATIC_ANALYSIS.md (grep-able, reviewed, exceptional).
#define MRTHETA_NO_THREAD_SAFETY_ANALYSIS \
  MRTHETA_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

namespace mrtheta {

/// \brief The project's annotated mutex: std::mutex plus (a) the
/// MRTHETA_CAPABILITY attribute that makes Clang's thread-safety analysis
/// track it, and (b) a per-thread held-lock registry for runtime
/// deadlock-ordering guards that the static analysis cannot express across
/// subsystems (e.g. "the page-pool lock is a leaf: never acquired while a
/// spool partition lock is held" — see MemoryBudget::AcquirePage).
///
/// The registry costs one thread_local vector push/pop per Lock/Unlock —
/// nanoseconds, and every Mutex in this codebase is on a per-task or
/// per-phase path, never per-row.
///
/// `name` groups mutexes for ThisThreadHoldsNamed; pass nullptr (the
/// default) for locks that no cross-subsystem ordering rule mentions.
class MRTHETA_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name = nullptr) : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MRTHETA_ACQUIRE() {
    mu_.lock();
    PushHeld(this);
  }
  void Unlock() MRTHETA_RELEASE() {
    PopHeld(this);
    mu_.unlock();
  }
  bool TryLock() MRTHETA_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    PushHeld(this);
    return true;
  }

  /// True when the calling thread holds this mutex. For MRTHETA_CHECKs on
  /// paths the static analysis cannot follow (callbacks, type-erased
  /// functions).
  bool HeldByCurrentThread() const;

  /// True when the calling thread holds ANY Mutex constructed with `name`.
  /// The runtime face of a cross-subsystem MRTHETA_EXCLUDES rule: the
  /// static attribute can only name capabilities visible in the declaring
  /// scope, so subsystem-boundary ordering invariants (page pool vs spool
  /// partition lock) are asserted through the registry instead.
  static bool ThisThreadHoldsNamed(const char* name);

  const char* name() const { return name_; }

 private:
  friend class CondVar;

  static void PushHeld(const Mutex* mu);
  static void PopHeld(const Mutex* mu);

  std::mutex mu_;
  const char* const name_;
};

/// RAII critical section over a Mutex; the annotated replacement for
/// std::lock_guard / std::unique_lock (both banned in src/ by
/// scripts/lint.py — the analysis cannot see through them).
class MRTHETA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) MRTHETA_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() MRTHETA_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to the annotated Mutex. Wait atomically
/// releases and reacquires `mu`, so the caller's annotated critical
/// section is intact around it — the canonical pattern is
///
///   MutexLock lock(&mu_);
///   while (!predicate()) cv_.Wait(&mu_);
///
/// which the analysis accepts because Wait is MRTHETA_REQUIRES(mu).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified; `mu` must be held (spurious wake-ups happen,
  /// callers loop on their predicate).
  void Wait(Mutex* mu) MRTHETA_REQUIRES(mu) {
    // Adopt the already-held std::mutex for the wait, then release the
    // unique_lock's ownership claim so the Mutex wrapper keeps it. The
    // held-lock registry deliberately keeps the entry during the wait: the
    // thread still logically owns the critical section.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mrtheta

#endif  // MRTHETA_COMMON_THREAD_ANNOTATIONS_H_
