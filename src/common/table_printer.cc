#include "src/common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace mrtheta {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Int(int64_t v) {
  return std::to_string(v);
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      os << cell << std::string(width[c] - cell.size(), ' ')
         << (c + 1 < header_.size() ? " | " : " |");
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace mrtheta
