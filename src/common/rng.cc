#include "src/common/rng.h"

#include <cmath>

namespace mrtheta {

double Rng::Normal(double mean, double stddev) {
  // Box-Muller transform. Guard against log(0).
  double u1 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = UniformDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  if (s <= 0.0) return Uniform(n);
  // Rejection-inversion sampling for the Zipf distribution on {1..n}
  // (Hörmann & Derflinger 1996, as in Apache Commons RNG). 0-based rank.
  const double e = 1.0 - s;
  const double nd = static_cast<double>(n);
  const bool s_is_one = std::abs(e) < 1e-12;
  // Integral of t^-s from 1 to x (up to a constant).
  auto h_integral = [&](double x) {
    return s_is_one ? std::log(x) : (std::pow(x, e) - 1.0) / e;
  };
  auto h = [&](double x) { return std::pow(x, -s); };
  auto h_integral_inverse = [&](double y) {
    if (s_is_one) return std::exp(y);
    double t = y * e;
    if (t < -1.0) t = -1.0;  // guard rounding at the left boundary
    return std::pow(1.0 + t, 1.0 / e);
  };
  const double h_int_x1 = h_integral(1.5) - 1.0;
  const double h_int_n = h_integral(nd + 0.5);
  const double accept_gap =
      2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  for (;;) {
    const double u =
        h_int_n + UniformDouble() * (h_int_x1 - h_int_n);
    const double x = h_integral_inverse(u);
    double kd = std::floor(x + 0.5);
    if (kd < 1.0) kd = 1.0;
    if (kd > nd) kd = nd;
    if (kd - x <= accept_gap) {
      return static_cast<uint64_t>(kd) - 1;
    }
    if (u >= h_integral(kd + 0.5) - h(kd)) {
      return static_cast<uint64_t>(kd) - 1;
    }
  }
}

}  // namespace mrtheta
