#include "src/common/status.h"

namespace mrtheta {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

}  // namespace

namespace internal {

void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "MRTHETA_CHECK failed: %s at %s:%d\n", expr, file,
               line);
  std::abort();
}

}  // namespace internal

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mrtheta
