#include "src/common/thread_annotations.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace mrtheta {

namespace {

/// The calling thread's currently-held annotated mutexes, in acquisition
/// order. A plain vector: the registry holds a handful of entries (lock
/// nesting in this codebase is 2-3 deep) and push/pop from the back is one
/// pointer move.
std::vector<const Mutex*>& HeldLocks() {
  thread_local std::vector<const Mutex*> held;
  return held;
}

}  // namespace

void Mutex::PushHeld(const Mutex* mu) { HeldLocks().push_back(mu); }

void Mutex::PopHeld(const Mutex* mu) {
  std::vector<const Mutex*>& held = HeldLocks();
  // Search from the back: unlocks are almost always LIFO, and non-LIFO
  // release (manual Lock/Unlock sequences) still pops the right entry.
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (*it == mu) {
      held.erase(std::next(it).base());
      return;
    }
  }
  // Unlocking a mutex this thread never locked is a discipline violation
  // the static analysis would have caught on clang; tolerate it here (the
  // std::mutex unlock itself is already UB) rather than abort twice.
}

bool Mutex::HeldByCurrentThread() const {
  const std::vector<const Mutex*>& held = HeldLocks();
  return std::find(held.begin(), held.end(), this) != held.end();
}

bool Mutex::ThisThreadHoldsNamed(const char* name) {
  if (name == nullptr) return false;
  for (const Mutex* mu : HeldLocks()) {
    if (mu->name_ != nullptr && std::strcmp(mu->name_, name) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace mrtheta
