#include "src/common/flags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/mem/memory_budget.h"

namespace mrtheta {

namespace {

// Parses a whole-string positive integer; no trailing junk, no overflow.
StatusOr<int> ParsePositiveInt(const char* text) {
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') {
    return Status::InvalidArgument(std::string("not an integer: '") + text +
                                   "'");
  }
  if (errno == ERANGE || value < 1 || value > 1 << 20) {
    return Status::InvalidArgument(std::string("out of range: '") + text +
                                   "' (expected 1..1048576)");
  }
  return static_cast<int>(value);
}

}  // namespace

StatusOr<CommonFlags> ParseCommonFlags(int argc, char** argv,
                                       bool allow_threads,
                                       bool allow_no_prune) {
  CommonFlags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (allow_no_prune && std::strcmp(arg, "--no-prune") == 0) {
      flags.no_prune = true;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      if (arg[12] == '\0') {
        return Status::InvalidArgument("--trace-out= needs a file path");
      }
      flags.trace_out = arg + 12;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      if (arg[14] == '\0') {
        return Status::InvalidArgument("--metrics-out= needs a file path");
      }
      flags.metrics_out = arg + 14;
    } else if (allow_threads && std::strcmp(arg, "--threads") == 0) {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("--threads needs a value");
      }
      StatusOr<int> n = ParsePositiveInt(argv[++i]);
      if (!n.ok()) {
        return Status::InvalidArgument("--threads: " + n.status().message());
      }
      flags.num_threads = *n;
    } else if (std::strcmp(arg, "--mem-budget") == 0) {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(
            "--mem-budget needs a value (bytes, or K/M/G suffixed)");
      }
      StatusOr<int64_t> bytes = MemoryBudget::ParseByteSize(argv[++i]);
      if (!bytes.ok()) {
        return Status::InvalidArgument("--mem-budget: " +
                                       bytes.status().message());
      }
      flags.mem_budget_bytes = *bytes;
    } else if (arg[0] == '-') {
      return Status::InvalidArgument(std::string("unknown flag: ") + arg);
    } else if (flags.output_path.empty()) {
      flags.output_path = arg;
    } else {
      return Status::InvalidArgument(
          std::string("unexpected extra argument: ") + arg);
    }
  }
  return flags;
}

void WarnIfSingleHardwareThread(int num_threads) {
  if (num_threads <= 1) return;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 1) {
    std::fprintf(stderr,
                 "warning: this host reports a single hardware thread; "
                 "%d threads will time-slice one core and measured "
                 "wall-clock will not improve\n",
                 num_threads);
  } else if (hw == 0) {
    // The standard defines 0 as "not computable or not well defined" —
    // the host may well be multi-core, so do not claim it is single-core.
    std::fprintf(stderr,
                 "note: could not determine this host's hardware thread "
                 "count (hardware_concurrency() == 0); if it is "
                 "single-core, %d threads will time-slice it and measured "
                 "wall-clock will not improve\n",
                 num_threads);
  }
}

}  // namespace mrtheta
