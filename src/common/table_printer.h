#ifndef MRTHETA_COMMON_TABLE_PRINTER_H_
#define MRTHETA_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mrtheta {

/// \brief Fixed-width ASCII table writer used by the benchmark harnesses to
/// print paper tables/figure series in a diff-friendly layout.
///
/// Usage:
///   TablePrinter t({"query", "ours", "hive"});
///   t.AddRow({"Q1", "12.3", "40.1"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string Num(double v, int precision = 2);
  static std::string Int(int64_t v);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mrtheta

#endif  // MRTHETA_COMMON_TABLE_PRINTER_H_
