#include "src/common/units.h"

#include <cmath>
#include <cstdio>

namespace mrtheta {

std::string FormatBytes(int64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / kGiB);
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / kMiB);
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  }
  return buf;
}

std::string FormatSimTime(SimTime t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f s", ToSeconds(t));
  return buf;
}

}  // namespace mrtheta
