#ifndef MRTHETA_COMMON_UNITS_H_
#define MRTHETA_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace mrtheta {

/// Byte-size constants. The simulator accounts for data volume in plain
/// bytes; these helpers keep call sites readable.
inline constexpr int64_t kKiB = 1024;
inline constexpr int64_t kMiB = 1024 * kKiB;
inline constexpr int64_t kGiB = 1024 * kMiB;

constexpr int64_t MiB(double v) { return static_cast<int64_t>(v * kMiB); }
constexpr int64_t GiB(double v) { return static_cast<int64_t>(v * kGiB); }

/// Formats a byte count as a short human-readable string ("12.3 GB").
std::string FormatBytes(int64_t bytes);

/// Simulated time. The discrete-event engine keeps time in integer
/// microseconds to stay deterministic; reports convert to seconds.
using SimTime = int64_t;  // microseconds

inline constexpr SimTime kMicrosPerSecond = 1'000'000;

constexpr double ToSeconds(SimTime t) {
  return static_cast<double>(t) / kMicrosPerSecond;
}
constexpr SimTime FromSeconds(double s) {
  return static_cast<SimTime>(s * kMicrosPerSecond);
}

/// Formats simulated time as seconds with millisecond precision.
std::string FormatSimTime(SimTime t);

}  // namespace mrtheta

#endif  // MRTHETA_COMMON_UNITS_H_
