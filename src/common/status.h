#ifndef MRTHETA_COMMON_STATUS_H_
#define MRTHETA_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace mrtheta {

/// Error taxonomy for the library. Kept deliberately small; the message
/// carries the detail.
namespace internal {
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);
}  // namespace internal

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  /// A task/attempt exceeded its deadline (straggler past its hard timeout
  /// with no successful speculative copy).
  kDeadlineExceeded,
  /// The operation was abandoned (e.g. a task exhausted its retry budget
  /// after injected or real failures).
  kAborted,
  /// The operation was cancelled by a cooperating caller (a sibling job's
  /// failure, an engine-level cancellation token). Cancellations are
  /// side effects of some *other* failure, so error reporting prefers any
  /// non-cancelled status over them (see RunDag).
  kCancelled,
};

/// \brief RocksDB-style status object: every fallible public API returns a
/// Status (or StatusOr<T>) instead of throwing.
///
/// A Status is cheap to copy (code + shared message string) and convertible
/// to bool via ok().
///
/// The class itself is [[nodiscard]]: every function returning Status (or
/// StatusOr<T>) warns when its result is dropped, on gcc and clang alike —
/// a dropped Status is a swallowed error (exactly the bug class PR 7 fixed
/// dynamically in the fault-counter path). Builds treat the warning as an
/// error; intentionally discarding a Status is allowed only in tests,
/// through an explicit `(void)` cast with a comment
/// (docs/STATIC_ANALYSIS.md suppression policy).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// Builds a status with an explicit code — for callers that must keep an
  /// underlying error's code while rewriting its message (e.g. the retry
  /// wrapper reporting "failed after N attempts: <last error>").
  /// CHECK-fails on kOk in every build type: rewrapping an error must never
  /// silently convert it into success (an OK status carrying an error
  /// message would read as "fine" at every call site that checks ok()).
  static Status WithCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) {
      internal::CheckFailed("Status::WithCode(kOk, ...) would convert an "
                            "error into success",
                            __FILE__, __LINE__);
    }
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  /// True for kCancelled — the one code that reports a *consequence* of
  /// another failure rather than a root cause.
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Value-or-error result type: holds either a T or a non-OK Status.
///
/// Mirrors absl::StatusOr semantics closely enough for this codebase:
/// `value()` CHECK-fails when !ok() — in every build type, including
/// NDEBUG Release (an unchecked error must never silently read a
/// disengaged optional); callers must check `ok()` first.
///
/// [[nodiscard]] like Status: a dropped StatusOr is a swallowed error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from value: `return MakeThing();` works.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::NotFound(...);` works.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      internal::CheckFailed("StatusOr constructed from OK status", __FILE__,
                            __LINE__);
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "StatusOr::value() on error status: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace mrtheta

/// Evaluates `expr`; if the resulting Status is not OK, returns it from the
/// enclosing function. Usable in any function returning Status.
#define MRTHETA_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::mrtheta::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (false)

/// Invariant check that survives NDEBUG Release builds: unlike assert(),
/// a violated MRTHETA_CHECK aborts with a message in every build type.
/// Use for invariants whose violation would corrupt results silently
/// (scheduler accounting, task-commit bookkeeping); use Status returns for
/// recoverable conditions.
#define MRTHETA_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::mrtheta::internal::CheckFailed(#cond, __FILE__, __LINE__);       \
    }                                                                    \
  } while (false)

/// Debug-only invariant check: the sanctioned replacement for raw assert()
/// (banned in src/ by scripts/lint.py — asserts look like checks but
/// vanish under NDEBUG, which is every Release build here). MRTHETA_DCHECK
/// compiles away in NDEBUG but keeps the expression parsed and
/// type-checked, so it cannot rot. Use it on per-row/per-record hot paths
/// where an always-on check would cost real throughput; use MRTHETA_CHECK
/// for build/plan-time invariants and anything whose violation would
/// corrupt results silently.
#ifdef NDEBUG
#define MRTHETA_DCHECK(cond)                          \
  do {                                                \
    if (false) static_cast<void>(cond);               \
  } while (false)
#else
#define MRTHETA_DCHECK(cond) MRTHETA_CHECK(cond)
#endif

#endif  // MRTHETA_COMMON_STATUS_H_
