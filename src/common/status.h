#ifndef MRTHETA_COMMON_STATUS_H_
#define MRTHETA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace mrtheta {

/// Error taxonomy for the library. Kept deliberately small; the message
/// carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

/// \brief RocksDB-style status object: every fallible public API returns a
/// Status (or StatusOr<T>) instead of throwing.
///
/// A Status is cheap to copy (code + shared message string) and convertible
/// to bool via ok().
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Value-or-error result type: holds either a T or a non-OK Status.
///
/// Mirrors absl::StatusOr semantics closely enough for this codebase:
/// `value()` asserts ok() in debug builds; callers must check `ok()` first.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: `return MakeThing();` works.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::NotFound(...);` works.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mrtheta

/// Evaluates `expr`; if the resulting Status is not OK, returns it from the
/// enclosing function. Usable in any function returning Status.
#define MRTHETA_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::mrtheta::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (false)

#endif  // MRTHETA_COMMON_STATUS_H_
