#ifndef MRTHETA_COMMON_FLAGS_H_
#define MRTHETA_COMMON_FLAGS_H_

#include <string>

#include "src/common/status.h"

namespace mrtheta {

/// CLI flags shared by the example and bench binaries.
struct CommonFlags {
  /// --threads N: threads of the in-process runtime (>= 1).
  int num_threads = 1;
  /// --no-prune: disable required-column analysis / early projection
  /// (PlannerOptions::enable_column_pruning), the full-width ablation of
  /// docs/EXECUTOR.md "Column pruning". Only parsed when the binary opts
  /// in (bench_runtime).
  bool no_prune = false;
  /// --trace-out=FILE: write a Chrome trace-event JSON of the run's spans
  /// (load in chrome://tracing or Perfetto — docs/OBSERVABILITY.md). Empty
  /// = tracing stays disabled. Accepted by every binary.
  std::string trace_out;
  /// --metrics-out=FILE: write the session MetricsRegistry snapshot as
  /// JSON at exit. Empty = no snapshot. Accepted by every binary.
  std::string metrics_out;
  /// --mem-budget SIZE: memory budget of the run (docs/MEMORY.md);
  /// shuffle state beyond it spills to disk with byte-identical results.
  /// SIZE accepts a plain byte count or K/M/G binary suffixes ("64M").
  /// 0 = unlimited (the default; $MRTHETA_MEM_BUDGET still applies).
  int64_t mem_budget_bytes = 0;
  /// The single optional positional argument (the benches' output path).
  std::string output_path;
};

/// Strict parser for the common CLI surface: `--threads N`, `--mem-budget
/// SIZE` plus at most one positional argument. Rejects what the
/// per-binary copies it replaced silently accepted: a missing value,
/// trailing junk ("--threads 4x", "--mem-budget 64Q"), non-positive
/// counts, unknown flags, and extra positionals. Binaries
/// with a fixed thread schedule (the benches) pass `allow_threads = false`
/// so `--threads` is rejected instead of silently ignored; likewise
/// `--no-prune` is only accepted when `allow_no_prune` is set.
StatusOr<CommonFlags> ParseCommonFlags(int argc, char** argv,
                                       bool allow_threads = true,
                                       bool allow_no_prune = false);

/// Prints a warning to stderr when `num_threads` > 1 and the host cannot
/// run them in parallel: a host *reporting* one hardware thread gets the
/// time-slicing warning, while hardware_concurrency() == 0 — which the
/// standard defines as "not computable", not as one core — gets a
/// could-not-detect note instead of being misdiagnosed as single-core.
void WarnIfSingleHardwareThread(int num_threads);

}  // namespace mrtheta

#endif  // MRTHETA_COMMON_FLAGS_H_
