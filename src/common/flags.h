#ifndef MRTHETA_COMMON_FLAGS_H_
#define MRTHETA_COMMON_FLAGS_H_

#include <string>

#include "src/common/status.h"

namespace mrtheta {

/// CLI flags shared by the example and bench binaries.
struct CommonFlags {
  /// --threads N: threads of the in-process runtime (>= 1).
  int num_threads = 1;
  /// The single optional positional argument (the benches' output path).
  std::string output_path;
};

/// Strict parser for the common CLI surface: `--threads N` plus at most one
/// positional argument. Rejects what the per-binary copies it replaced
/// silently accepted: a missing value, trailing junk ("--threads 4x"),
/// non-positive counts, unknown flags, and extra positionals. Binaries
/// with a fixed thread schedule (the benches) pass `allow_threads = false`
/// so `--threads` is rejected instead of silently ignored.
StatusOr<CommonFlags> ParseCommonFlags(int argc, char** argv,
                                       bool allow_threads = true);

/// Prints the standard warning to stderr when `num_threads` > 1 on a host
/// that reports a single hardware thread (the threads would time-slice one
/// core and measured wall-clock would not improve).
void WarnIfSingleHardwareThread(int num_threads);

}  // namespace mrtheta

#endif  // MRTHETA_COMMON_FLAGS_H_
