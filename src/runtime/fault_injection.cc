#include "src/runtime/fault_injection.h"

#include <cmath>
#include <cstdlib>

namespace mrtheta {

namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

Status RateInRange(const char* name, double rate) {
  if (!(rate >= 0.0 && rate <= 1.0)) {
    return Status::InvalidArgument(std::string(name) +
                                   " must be in [0, 1], got " +
                                   std::to_string(rate));
  }
  return Status::OK();
}

}  // namespace

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kMapTask:
      return "map.task";
    case FaultPoint::kReduceTask:
      return "reduce.task";
    case FaultPoint::kMapAlloc:
      return "map.alloc";
    case FaultPoint::kReduceAlloc:
      return "reduce.alloc";
    case FaultPoint::kMapStraggler:
      return "map.straggler";
    case FaultPoint::kReduceStraggler:
      return "reduce.straggler";
  }
  return "unknown";
}

Status FaultPlan::Validate() const {
  MRTHETA_RETURN_IF_ERROR(RateInRange("map_failure_rate", map_failure_rate));
  MRTHETA_RETURN_IF_ERROR(
      RateInRange("reduce_failure_rate", reduce_failure_rate));
  MRTHETA_RETURN_IF_ERROR(
      RateInRange("alloc_failure_rate", alloc_failure_rate));
  MRTHETA_RETURN_IF_ERROR(RateInRange("straggler_rate", straggler_rate));
  if (!(straggler_delay_ms >= 0.0)) {
    return Status::InvalidArgument("straggler_delay_ms must be >= 0");
  }
  return Status::OK();
}

std::string FaultPlan::ToString() const {
  if (!enabled()) return "FaultPlan{disabled}";
  return "FaultPlan{seed=" + std::to_string(seed) +
         ", map=" + std::to_string(map_failure_rate) +
         ", reduce=" + std::to_string(reduce_failure_rate) +
         ", alloc=" + std::to_string(alloc_failure_rate) +
         ", straggler=" + std::to_string(straggler_rate) +
         ", delay_ms=" + std::to_string(straggler_delay_ms) + "}";
}

StatusOr<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  if (text.empty()) return plan;
  plan.armed = true;  // an explicitly spelled plan engages the chaos path
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string pair = text.substr(pos, end - pos);
    pos = end + 1;
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault plan entry '" + pair +
                                     "' is not key=value");
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    char* parse_end = nullptr;
    const double num = std::strtod(value.c_str(), &parse_end);
    if (parse_end == value.c_str() || *parse_end != '\0') {
      return Status::InvalidArgument("fault plan value '" + value +
                                     "' for key '" + key +
                                     "' is not a number");
    }
    if (key == "seed") {
      plan.seed = static_cast<uint64_t>(num);
    } else if (key == "map") {
      plan.map_failure_rate = num;
    } else if (key == "reduce") {
      plan.reduce_failure_rate = num;
    } else if (key == "alloc") {
      plan.alloc_failure_rate = num;
    } else if (key == "straggler") {
      plan.straggler_rate = num;
    } else if (key == "delay_ms") {
      plan.straggler_delay_ms = num;
    } else if (key == "armed") {
      plan.armed = num != 0.0;
    } else {
      return Status::InvalidArgument("unknown fault plan key '" + key + "'");
    }
  }
  MRTHETA_RETURN_IF_ERROR(plan.Validate());
  return plan;
}

const FaultPlan& FaultPlan::FromEnvironment() {
  static const FaultPlan plan = [] {
    const char* env = std::getenv("MRTHETA_FAULT_PLAN");
    if (env == nullptr || env[0] == '\0') return FaultPlan{};
    StatusOr<FaultPlan> parsed = Parse(env);
    if (!parsed.ok()) {
      // A chaos CI job with a typo in its plan must fail loudly, not run
      // fault-free and report a meaningless green.
      std::fprintf(stderr, "MRTHETA_FAULT_PLAN='%s': %s\n", env,
                   parsed.status().ToString().c_str());
      std::abort();
    }
    return *parsed;
  }();
  return plan;
}

double RetryPolicy::BackoffMs(int failures) const {
  double ms = backoff_base_ms;
  for (int i = 0; i < failures; ++i) {
    ms *= backoff_multiplier;
    if (ms >= backoff_max_ms) return backoff_max_ms;
  }
  return std::min(ms, backoff_max_ms);
}

Status RetryPolicy::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument("retry.max_attempts must be >= 1");
  }
  if (!(backoff_base_ms >= 0.0) || !(backoff_max_ms >= 0.0)) {
    return Status::InvalidArgument("retry backoff must be >= 0");
  }
  if (!(backoff_multiplier >= 1.0)) {
    return Status::InvalidArgument("retry.backoff_multiplier must be >= 1");
  }
  if (!(task_timeout_ms >= 0.0)) {
    return Status::InvalidArgument("retry.task_timeout_ms must be >= 0");
  }
  return Status::OK();
}

Status SpeculationPolicy::Validate() const {
  if (!(straggler_multiplier > 0.0)) {
    return Status::InvalidArgument(
        "speculation.straggler_multiplier must be > 0");
  }
  if (!(min_deadline_ms >= 0.0)) {
    return Status::InvalidArgument("speculation.min_deadline_ms must be >= 0");
  }
  if (min_completed_tasks < 1) {
    return Status::InvalidArgument(
        "speculation.min_completed_tasks must be >= 1");
  }
  return Status::OK();
}

void FaultReport::Merge(const FaultReport& other) {
  injected_faults += other.injected_faults;
  task_retries += other.task_retries;
  map_task_retries += other.map_task_retries;
  reduce_task_retries += other.reduce_task_retries;
  speculative_launches += other.speculative_launches;
  wasted_task_seconds += other.wasted_task_seconds;
}

std::string FaultReport::ToString() const {
  return "FaultReport{injected=" + std::to_string(injected_faults) +
         ", retries=" + std::to_string(task_retries) + " (map=" +
         std::to_string(map_task_retries) + ", reduce=" +
         std::to_string(reduce_task_retries) + ")" +
         ", speculative=" + std::to_string(speculative_launches) +
         ", wasted_s=" + std::to_string(wasted_task_seconds) + "}";
}

double FaultInjector::Draw(FaultPoint point, const std::string& job,
                           int64_t task, int attempt) const {
  uint64_t h = plan_.seed * 0x9E3779B97F4A7C15ULL;
  h = Mix64(h ^ (static_cast<uint64_t>(point) + 0x51ULL));
  h = Mix64(h ^ Fnv1a(job));
  h = Mix64(h ^ static_cast<uint64_t>(task) * 0xD6E8FEB86659FD93ULL);
  h = Mix64(h ^ (static_cast<uint64_t>(attempt) + 0xA5ULL));
  // 53 uniform bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::ShouldFail(FaultPoint point, const std::string& job,
                               int64_t task, int attempt) const {
  double rate = 0.0;
  switch (point) {
    case FaultPoint::kMapTask:
      rate = plan_.map_failure_rate;
      break;
    case FaultPoint::kReduceTask:
      rate = plan_.reduce_failure_rate;
      break;
    case FaultPoint::kMapAlloc:
    case FaultPoint::kReduceAlloc:
      rate = plan_.alloc_failure_rate;
      break;
    case FaultPoint::kMapStraggler:
    case FaultPoint::kReduceStraggler:
      rate = plan_.straggler_rate;
      break;
  }
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  return Draw(point, job, task, attempt) < rate;
}

double FaultInjector::StragglerDelayMs(FaultPoint point,
                                       const std::string& job, int64_t task,
                                       int attempt) const {
  // Slow-slot model: a retry or speculative copy runs on a different slot
  // and is never re-delayed, which also guarantees speculation terminates.
  if (attempt != 0) return 0.0;
  if (!ShouldFail(point, job, task, attempt)) return 0.0;
  return plan_.straggler_delay_ms;
}

}  // namespace mrtheta
