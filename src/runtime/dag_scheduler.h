#ifndef MRTHETA_RUNTIME_DAG_SCHEDULER_H_
#define MRTHETA_RUNTIME_DAG_SCHEDULER_H_

#include <functional>
#include <vector>

#include "src/common/status.h"

namespace mrtheta {

/// \brief Runs a dependency DAG of N nodes, overlapping independent nodes.
///
/// `deps[i]` lists the nodes that must fully finish before `body(i)` may
/// start; nodes whose dependency sets are disjoint run concurrently on up
/// to `max_concurrency` threads. Node bodies may block (they typically run
/// a whole MapReduce job), so every concurrently-runnable node gets its own
/// thread rather than a slot on a task pool.
///
/// Determinism contract: `body(i)` runs at most once per node, all of a
/// node's dependency bodies happen-before it, and every body's side effects
/// happen-before RunDag returns. Each body must write only node-local state
/// (plus state owned by its dependents-by-contract, e.g. a result slot
/// indexed by `i`); under that discipline the outcome is independent of
/// scheduling. When several ready nodes compete for a thread, the
/// lowest-index node starts first.
///
/// Error handling: on the first failing body no *new* nodes are started
/// (in-flight ones finish), and the returned status is the failure of the
/// lowest-index failed node — deterministic even when independent nodes
/// fail in racing order. kCancelled failures rank below every other code:
/// a node cancelled as a *consequence* of another node's failure (or of an
/// engine cancellation token) never masks the root cause, so callers see
/// kCancelled only when the whole dag was cancelled from outside. Returns
/// InvalidArgument for out-of-range dependencies and FailedPrecondition
/// for dependency cycles, without running any body.
Status RunDag(const std::vector<std::vector<int>>& deps, int max_concurrency,
              const std::function<Status(int)>& body);

}  // namespace mrtheta

#endif  // MRTHETA_RUNTIME_DAG_SCHEDULER_H_
