#ifndef MRTHETA_RUNTIME_THREAD_POOL_H_
#define MRTHETA_RUNTIME_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"

namespace mrtheta {

/// \brief Fixed-size thread pool built around a blocking parallel-for.
///
/// The pool owns `num_threads - 1` worker threads; the thread calling
/// ParallelFor always participates in executing tasks, so a pool of size 1
/// degenerates to a plain inline loop and a ParallelFor issued from inside
/// another ParallelFor's task can never deadlock (the caller makes progress
/// by itself even when every worker is busy elsewhere).
///
/// Determinism contract: ParallelFor runs `fn(i)` exactly once for every
/// i in [0, num_tasks). Which thread runs which index — and in which order —
/// is unspecified, so callers must make each task write only to its own
/// per-index slot; under that discipline results are independent of
/// scheduling. All task side effects happen-before ParallelFor returns.
class ThreadPool {
 public:
  /// `num_threads` >= 1: total threads that may execute tasks, including
  /// the caller of ParallelFor.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(0) .. fn(num_tasks - 1), distributing indices over the pool's
  /// threads plus the calling thread; returns once every call finished.
  /// Concurrent ParallelFor calls from different threads are allowed and
  /// share the workers.
  void ParallelFor(int64_t num_tasks, const std::function<void(int64_t)>& fn);

 private:
  struct Batch;

  void WorkerLoop();
  /// Claims and runs tasks of `batch` until none are left to claim.
  static void DrainBatch(Batch& batch);

  const int num_threads_;
  Mutex mu_;
  CondVar work_cv_;
  std::deque<std::shared_ptr<Batch>> active_ MRTHETA_GUARDED_BY(mu_);
  bool stop_ MRTHETA_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace mrtheta

#endif  // MRTHETA_RUNTIME_THREAD_POOL_H_
