#include "src/runtime/dag_scheduler.h"

#include <algorithm>
#include <queue>
#include <string>
#include <thread>

#include "src/common/thread_annotations.h"
#include "src/obs/trace.h"

namespace mrtheta {

namespace {

/// Shared scheduler state.
struct DagState {
  Mutex mu;
  CondVar cv;
  // unfinished deps per node
  std::vector<int> pending_deps MRTHETA_GUARDED_BY(mu);
  // node -> nodes waiting on it
  std::vector<std::vector<int>> dependents MRTHETA_GUARDED_BY(mu);
  // Min-heap of runnable nodes: lowest index starts first.
  std::priority_queue<int, std::vector<int>, std::greater<int>> ready
      MRTHETA_GUARDED_BY(mu);
  int remaining MRTHETA_GUARDED_BY(mu) = 0;   // nodes not yet finished
  int running MRTHETA_GUARDED_BY(mu) = 0;     // bodies currently executing
  bool aborted MRTHETA_GUARDED_BY(mu) = false;
  int error_node MRTHETA_GUARDED_BY(mu) = -1;
  Status error MRTHETA_GUARDED_BY(mu);
};

void WorkerLoop(DagState& state, const std::function<Status(int)>& body) {
  state.mu.Lock();
  for (;;) {
    // Wake when there is work, when everything finished, on abort, or when
    // the dag is stuck (nothing ready, nothing running, nodes remaining —
    // a dependency cycle, surfaced by RunDag via `remaining != 0`).
    while (state.ready.empty() && state.remaining != 0 && !state.aborted &&
           state.running != 0) {
      state.cv.Wait(&state.mu);
    }
    if (state.ready.empty() || state.aborted) {
      state.mu.Unlock();
      return;
    }
    const int node = state.ready.top();
    state.ready.pop();
    ++state.running;
    state.mu.Unlock();

    Status status;
    {
      TraceSpan span("dag-node", "scheduler");
      if (span.enabled()) span.Arg("node", static_cast<int64_t>(node));
      status = body(node);
    }

    state.mu.Lock();
    --state.running;
    --state.remaining;
    if (!status.ok()) {
      // Keep the lowest-index NON-CANCELLED failure so racing independent
      // failures produce a deterministic result and a cancelled node (a
      // consequence of some other node's failure, or of an external token)
      // never masks the root cause. Cancellations surface only when every
      // failure is a cancellation.
      const bool better =
          state.error_node < 0 ||
          (state.error.IsCancelled() && !status.IsCancelled()) ||
          (state.error.IsCancelled() == status.IsCancelled() &&
           node < state.error_node);
      if (better) {
        state.error_node = node;
        state.error = status;
      }
      state.aborted = true;
    } else {
      for (int dep : state.dependents[node]) {
        if (--state.pending_deps[dep] == 0) state.ready.push(dep);
      }
    }
    // Unconditional: finishing a node can unblock work, completion, abort
    // drain, or stuck-dag detection; bodies are heavyweight so the extra
    // wake-ups are free.
    state.cv.NotifyAll();
  }
}

}  // namespace

Status RunDag(const std::vector<std::vector<int>>& deps, int max_concurrency,
              const std::function<Status(int)>& body) {
  const int n = static_cast<int>(deps.size());
  if (n == 0) return Status::OK();

  DagState state;
  const int threads = std::max(1, std::min(max_concurrency, n));
  {
    // No other thread exists yet, but the fields are guarded so the setup
    // takes the (uncontended) lock; it also publishes the initial state to
    // the workers spawned below.
    MutexLock lock(&state.mu);
    state.pending_deps.assign(n, 0);
    state.dependents.resize(n);
    state.remaining = n;
    for (int i = 0; i < n; ++i) {
      for (int d : deps[i]) {
        if (d < 0 || d >= n) {
          return Status::InvalidArgument(
              "dag node " + std::to_string(i) +
              " depends on out-of-range node " + std::to_string(d));
        }
        if (d == i) {
          return Status::FailedPrecondition(
              "dag node " + std::to_string(i) + " depends on itself");
        }
        ++state.pending_deps[i];
        state.dependents[d].push_back(i);
      }
    }
    int initially_ready = 0;
    for (int i = 0; i < n; ++i) {
      if (state.pending_deps[i] == 0) {
        state.ready.push(i);
        ++initially_ready;
      }
    }
    if (initially_ready == 0) {
      return Status::FailedPrecondition("dag has no dependency-free node");
    }

    if (threads == 1) {
      // Sequential fast path: pop lowest-index ready nodes in order.
      while (!state.ready.empty()) {
        const int node = state.ready.top();
        state.ready.pop();
        {
          TraceSpan span("dag-node", "scheduler");
          if (span.enabled()) span.Arg("node", static_cast<int64_t>(node));
          MRTHETA_RETURN_IF_ERROR(body(node));
        }
        --state.remaining;
        for (int dep : state.dependents[node]) {
          if (--state.pending_deps[dep] == 0) state.ready.push(dep);
        }
      }
      if (state.remaining != 0) {
        return Status::FailedPrecondition("dag contains a dependency cycle");
      }
      return Status::OK();
    }
  }

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] { WorkerLoop(state, body); });
  }
  for (std::thread& t : workers) t.join();

  MutexLock lock(&state.mu);
  if (state.error_node >= 0) return state.error;
  if (state.remaining != 0) {
    return Status::FailedPrecondition("dag contains a dependency cycle");
  }
  return Status::OK();
}

}  // namespace mrtheta
