#ifndef MRTHETA_RUNTIME_PARALLEL_JOB_RUNNER_H_
#define MRTHETA_RUNTIME_PARALLEL_JOB_RUNNER_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/mapreduce/job_runner.h"
#include "src/mem/spill.h"
#include "src/runtime/fault_injection.h"
#include "src/runtime/thread_pool.h"

namespace mrtheta {

/// Task-granularity knobs for ParallelJobRunner. The defaults keep per-task
/// overhead negligible while giving the pool enough splits to balance.
struct ParallelRunnerOptions {
  /// Map splits never go below this many input rows (tiny splits cost more
  /// in scheduling than they recover in balance).
  int64_t min_split_rows = 1024;
  /// Target number of map splits per pool thread per input.
  int splits_per_thread = 4;
  /// Deterministic chaos oracle (docs/RUNTIME.md "Fault tolerance"). Null
  /// keeps the fault-free fast path: no retry wrappers, no attempt-local
  /// buffer moves. Not owned; must outlive the call.
  const FaultInjector* injector = nullptr;
  /// Retry policy for restartable tasks; consulted only with an injector.
  RetryPolicy retry;
  /// Straggler-mitigation policy; consulted only with an injector.
  SpeculationPolicy speculation;
  /// Optional external cancellation (e.g. a ThetaEngine::Submit token),
  /// honored at task boundaries and inside interruptible waits even on the
  /// fault-free path. Not owned; must outlive the call.
  const CancellationToken* cancel = nullptr;
  /// When set, the job's fault-tolerance accounting (injected faults,
  /// retries, speculative launches, wasted attempt time) is merged into it
  /// — on success and on failure. Observability only: no field of the
  /// report feeds back into results or simulated metrics.
  FaultReport* fault_report = nullptr;
  /// Spill threshold (docs/MEMORY.md): once MemoryBudget::Global()'s
  /// in-use bytes exceed this, map emitters flush full pages and the
  /// shuffle spool writes sorted runs to `spill_dir`. <= 0 disables
  /// spilling. The budget is a spill trigger, not a hard cap — outputs
  /// and simulated metrics are byte-identical at any setting.
  int64_t mem_budget_bytes = 0;
  /// Per-execution temp directory for spill files; not owned, must
  /// outlive the call. Null disables spilling regardless of the budget.
  SpillDirectory* spill_dir = nullptr;
};

/// \brief Multi-threaded, deterministic executor for one MapReduceJobSpec.
///
/// Mirrors the phases of RunJobPhysically (src/mapreduce/job_runner.cc) but
/// fans them out over a ThreadPool:
///  - map tasks over contiguous input-row splits, each with a private
///    MapEmitter, merged in (input, split) order — reproducing the exact
///    record order of the sequential runner;
///  - a hash-partitioned shuffle into per-reduce-task buckets (reduce
///    targets computed at emit time by the map tasks; the merge walk itself
///    is sequential so the floating-point byte accounting accumulates in
///    the sequential runner's order). Under a memory budget the buckets
///    live in a ShuffleSpool that spills sorted runs to disk and k-way
///    merges them back per reduce task (docs/MEMORY.md);
///  - reduce tasks running concurrently, each collecting into a private
///    output relation; task outputs are concatenated in task order.
///
/// Fault tolerance: with `options.injector` set, map splits and reduce
/// partitions become restartable units — each attempt works into fresh
/// attempt-local buffers that are committed only on success, failed
/// attempts are retried with exponential backoff up to
/// `options.retry.max_attempts`, and attempts straggling past a
/// median-derived deadline are abandoned and speculatively re-executed
/// (docs/RUNTIME.md "Fault tolerance"). A task that exhausts its retry
/// budget cancels its sibling tasks and surfaces the last failure's code
/// (kAborted / kResourceExhausted / kDeadlineExceeded); the job-level
/// error is the lowest-index task's non-cancelled failure, so concurrent
/// failures report deterministically.
///
/// Determinism contract (tested by tests/runtime_test.cc and
/// tests/fault_test.cc): for any spec, any pool size, and any FaultPlan
/// the job survives, the output relation (including row order) and every
/// JobMeasurement field are identical to RunJobPhysically's — commit-on-
/// success makes re-execution invisible. Map and reduce closures must
/// therefore be pure readers of their captured state — true for every
/// builder in src/exec (state structs are immutable after build).
StatusOr<PhysicalJobResult> RunJobParallel(
    const MapReduceJobSpec& spec, ThreadPool& pool,
    const ParallelRunnerOptions& options = {});

}  // namespace mrtheta

#endif  // MRTHETA_RUNTIME_PARALLEL_JOB_RUNNER_H_
