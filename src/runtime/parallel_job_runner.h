#ifndef MRTHETA_RUNTIME_PARALLEL_JOB_RUNNER_H_
#define MRTHETA_RUNTIME_PARALLEL_JOB_RUNNER_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/mapreduce/job_runner.h"
#include "src/runtime/thread_pool.h"

namespace mrtheta {

/// Task-granularity knobs for ParallelJobRunner. The defaults keep per-task
/// overhead negligible while giving the pool enough splits to balance.
struct ParallelRunnerOptions {
  /// Map splits never go below this many input rows (tiny splits cost more
  /// in scheduling than they recover in balance).
  int64_t min_split_rows = 1024;
  /// Target number of map splits per pool thread per input.
  int splits_per_thread = 4;
};

/// \brief Multi-threaded, deterministic executor for one MapReduceJobSpec.
///
/// Mirrors the phases of RunJobPhysically (src/mapreduce/job_runner.cc) but
/// fans them out over a ThreadPool:
///  - map tasks over contiguous input-row splits, each with a private
///    MapEmitter, merged in (input, split) order — reproducing the exact
///    record order of the sequential runner;
///  - a hash-partitioned shuffle into per-reduce-task buckets (partition
///    ids precomputed by the map tasks; the merge walk itself is sequential
///    so the floating-point byte accounting accumulates in the sequential
///    runner's order);
///  - reduce tasks running concurrently, each collecting into a private
///    output relation; task outputs are concatenated in task order.
///
/// Determinism contract (tested by tests/runtime_test.cc): for any spec and
/// any pool size, the output relation (including row order) and every
/// JobMeasurement field are identical to RunJobPhysically's. Map and reduce
/// closures must therefore be pure readers of their captured state — true
/// for every builder in src/exec (state structs are immutable after build).
StatusOr<PhysicalJobResult> RunJobParallel(
    const MapReduceJobSpec& spec, ThreadPool& pool,
    const ParallelRunnerOptions& options = {});

}  // namespace mrtheta

#endif  // MRTHETA_RUNTIME_PARALLEL_JOB_RUNNER_H_
