#ifndef MRTHETA_RUNTIME_FAULT_INJECTION_H_
#define MRTHETA_RUNTIME_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace mrtheta {

/// Named fault points of the runtime. Fault decisions are a pure function
/// of (plan seed, fault point, job name, task id, attempt), so a chaos run
/// is reproducible from its FaultPlan alone — on any machine, at any
/// thread count.
enum class FaultPoint {
  kMapTask = 0,        ///< map task crashes after producing its output
  kReduceTask,         ///< reduce task crashes after producing its output
  kMapAlloc,           ///< map task fails to acquire its buffers up front
  kReduceAlloc,        ///< reduce task fails to acquire its buffers up front
  kMapStraggler,       ///< map task is artificially delayed (slow slot)
  kReduceStraggler,    ///< reduce task is artificially delayed (slow slot)
};

const char* FaultPointName(FaultPoint point);

/// \brief Seeded, deterministic chaos configuration (docs/RUNTIME.md
/// "Fault tolerance"). All rates are per (task, attempt) probabilities in
/// [0, 1]. Straggler delays model a slow machine slot, so they are only
/// injected on a task's FIRST attempt — a retry or speculative copy runs
/// "elsewhere" and is never re-delayed.
///
/// A FaultPlan can also be armed process-wide through the environment
/// variable MRTHETA_FAULT_PLAN (comma-separated key=value pairs, e.g.
/// "seed=7,map=0.1,reduce=0.1,straggler=0.05,delay_ms=2"), which becomes
/// the default of ExecutorOptions::fault_plan — any workload, bench or
/// test then runs under reproducible chaos with no code changes (the CI
/// chaos job uses exactly this).
struct FaultPlan {
  uint64_t seed = 0;
  double map_failure_rate = 0.0;      ///< FaultPoint::kMapTask
  double reduce_failure_rate = 0.0;   ///< FaultPoint::kReduceTask
  double alloc_failure_rate = 0.0;    ///< kMapAlloc / kReduceAlloc
  double straggler_rate = 0.0;        ///< kMapStraggler / kReduceStraggler
  double straggler_delay_ms = 20.0;   ///< injected delay per straggler
  /// Forces the fault-tolerant execution path (retry wrappers, injector
  /// consultation) even with all rates at zero — the configuration
  /// bench_runtime's fault_overhead record measures.
  bool armed = false;

  /// True when any fault can fire or the plan is explicitly armed.
  bool enabled() const {
    return armed || map_failure_rate > 0.0 || reduce_failure_rate > 0.0 ||
           alloc_failure_rate > 0.0 || straggler_rate > 0.0;
  }

  Status Validate() const;
  std::string ToString() const;

  /// Parses "key=value,key=value" (keys: seed, map, reduce, alloc,
  /// straggler, delay_ms, armed). Empty string = disabled default plan.
  static StatusOr<FaultPlan> Parse(const std::string& text);
  /// The process-wide default from $MRTHETA_FAULT_PLAN (parsed once,
  /// cached; aborts on a malformed value — a chaos CI job must never
  /// silently run fault-free). Disabled plan when the variable is unset.
  static const FaultPlan& FromEnvironment();
};

/// Retry policy for restartable tasks (map splits, reduce partitions).
struct RetryPolicy {
  /// Total launches a task may consume on *failures* (injected faults,
  /// allocation failures, real task errors, hard timeouts). Speculative
  /// re-executions of healthy-but-slow tasks do not consume this budget.
  int max_attempts = 6;
  /// Exponential backoff between failed attempts:
  /// min(base * multiplier^k, max). Defaults are tiny — the in-process
  /// runtime restarts tasks in microseconds; the knobs exist so tests and
  /// the future multi-process backend can model real restart latency.
  double backoff_base_ms = 0.25;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 20.0;
  /// Hard per-attempt deadline in milliseconds; 0 disables. An attempt
  /// abandoned here counts as a failure with kDeadlineExceeded.
  double task_timeout_ms = 0.0;

  double BackoffMs(int failures) const;
  Status Validate() const;
};

/// Straggler-mitigation policy: when a running task exceeds
/// `straggler_multiplier` times the running median of completed task
/// durations in its phase (never below `min_deadline_ms`), the runtime
/// abandons the straggling attempt at its next cancellation point and
/// launches a speculative re-execution. Commit rule: a task's buffers are
/// published exactly once, by the first attempt to complete successfully —
/// abandoned and failed attempts never publish partial state, so
/// re-execution cannot change results (docs/RUNTIME.md).
struct SpeculationPolicy {
  bool enabled = true;
  double straggler_multiplier = 4.0;
  double min_deadline_ms = 2.0;
  /// Completed tasks required in the phase before the median is trusted.
  int min_completed_tasks = 3;

  Status Validate() const;
};

/// Per-job (and, summed, per-plan) fault-tolerance accounting. All fields
/// are observability only — none participate in the determinism contract
/// (wall-clock-dependent counters like speculative launches may vary run
/// to run; outputs and simulated metrics never do).
struct FaultReport {
  int64_t injected_faults = 0;       ///< faults the FaultPlan fired
  int64_t task_retries = 0;          ///< failed attempts that were retried
  /// Per-phase split of task_retries (map_task_retries +
  /// reduce_task_retries == task_retries) — the chaos CI job asserts on
  /// these through the session MetricsRegistry.
  int64_t map_task_retries = 0;
  int64_t reduce_task_retries = 0;
  int64_t speculative_launches = 0;  ///< straggler re-executions launched
  double wasted_task_seconds = 0.0;  ///< time in attempts that never committed

  void Merge(const FaultReport& other);
  std::string ToString() const;
};

/// Cooperative cancellation flag, shared between a coordinator and the
/// tasks it may need to stop. Cancellation is honored at task boundaries
/// and inside interruptible waits (injected delays, retry backoff) — real
/// compute is never preempted mid-kernel.
///
/// Tokens chain: a token constructed with a parent reports cancelled when
/// either it or the parent is cancelled, so a plan-level token can extend
/// an engine-level one (ThetaEngine::Submit) without the leaf code
/// checking two pointers. The parent is not owned and must outlive the
/// child.
class CancellationToken {
 public:
  CancellationToken() = default;
  explicit CancellationToken(const CancellationToken* parent)
      : parent_(parent) {}

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire) ||
           (parent_ != nullptr && parent_->cancelled());
  }

 private:
  std::atomic<bool> cancelled_{false};
  const CancellationToken* parent_ = nullptr;
};

/// \brief Deterministic fault oracle for one execution: answers "does
/// fault point P fire for attempt A of task T of job J?" by hashing
/// (plan seed, P, J, T, A) — no mutable state, so concurrent tasks may
/// consult it freely and the same plan replays the same faults.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }

  /// True when `point` fires for this (job, task, attempt).
  bool ShouldFail(FaultPoint point, const std::string& job, int64_t task,
                  int attempt) const;

  /// Injected delay for this task's attempt; 0 when it does not straggle.
  /// Stragglers model slow slots: only attempt 0 is ever delayed.
  double StragglerDelayMs(FaultPoint point, const std::string& job,
                          int64_t task, int attempt) const;

 private:
  double Draw(FaultPoint point, const std::string& job, int64_t task,
              int attempt) const;

  FaultPlan plan_;
};

}  // namespace mrtheta

#endif  // MRTHETA_RUNTIME_FAULT_INJECTION_H_
