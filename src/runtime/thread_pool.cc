#include "src/runtime/thread_pool.h"

#include <atomic>

#include "src/common/status.h"

namespace mrtheta {

/// One ParallelFor invocation: an index dispenser plus completion tracking.
/// Lives on the heap (shared_ptr) so workers can outlast the batch's removal
/// from the active deque without dangling.
struct ThreadPool::Batch {
  int64_t total = 0;
  const std::function<void(int64_t)>* fn = nullptr;
  std::atomic<int64_t> next{0};

  // Completion is tracked under `mu` (not an atomic) so that finishing the
  // last task, the notify, and the caller's wake-up form a clean
  // happens-before chain: every task's writes are visible to the caller
  // when Wait() returns.
  Mutex mu;
  CondVar done_cv;
  int64_t done MRTHETA_GUARDED_BY(mu) = 0;
};

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::DrainBatch(Batch& batch) {
  // A violated completion invariant here would hang the ParallelFor caller
  // (waiting for a count that can never be reached) or wake it early with
  // tasks still running — both corrupt results silently, so these checks
  // survive NDEBUG Release builds (MRTHETA_CHECK, not assert).
  MRTHETA_CHECK(batch.fn != nullptr);
  int64_t ran = 0;
  for (;;) {
    const int64_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.total) break;
    (*batch.fn)(i);
    ++ran;
  }
  if (ran > 0) {
    MutexLock lock(&batch.mu);
    batch.done += ran;
    MRTHETA_CHECK(batch.done <= batch.total);
    if (batch.done == batch.total) batch.done_cv.NotifyAll();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      MutexLock lock(&mu_);
      while (!stop_ && active_.empty()) work_cv_.Wait(&mu_);
      if (active_.empty()) {
        if (stop_) return;
        continue;
      }
      batch = active_.front();
      if (batch->next.load(std::memory_order_relaxed) >= batch->total) {
        // Exhausted (its last tasks may still be running elsewhere): retire
        // it from the deque and look for the next batch.
        active_.pop_front();
        continue;
      }
    }
    DrainBatch(*batch);
  }
}

void ThreadPool::ParallelFor(int64_t num_tasks,
                             const std::function<void(int64_t)>& fn) {
  if (num_tasks <= 0) return;
  MRTHETA_CHECK(static_cast<bool>(fn));
  if (num_threads_ == 1 || num_tasks == 1) {
    for (int64_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->total = num_tasks;
  batch->fn = &fn;
  {
    MutexLock lock(&mu_);
    active_.push_back(batch);
  }
  work_cv_.NotifyAll();
  DrainBatch(*batch);
  {
    MutexLock lock(&batch->mu);
    while (batch->done != batch->total) batch->done_cv.Wait(&batch->mu);
  }
  // Retire the exhausted batch ourselves — workers may be busy elsewhere
  // and must not find stale entries piling up.
  MutexLock lock(&mu_);
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if (*it == batch) {
      active_.erase(it);
      break;
    }
  }
}

}  // namespace mrtheta
