#include "src/runtime/parallel_job_runner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

namespace mrtheta {

namespace {

/// One contiguous map split: rows [begin, end) of input `tag`.
struct MapSplit {
  int tag = 0;
  int64_t begin = 0;
  int64_t end = 0;

  // Per-split map output, produced in the split's row order.
  MapEmitter emitter;
  // Reduce task of each emitted record (precomputed in parallel).
  std::vector<int> target;
  bool partition_error = false;
};

/// Splits every input into contiguous row ranges in (tag, range) order, so
/// concatenating split outputs reproduces the sequential emit order.
std::vector<MapSplit> PlanMapSplits(const MapReduceJobSpec& spec,
                                    const ThreadPool& pool,
                                    const ParallelRunnerOptions& options) {
  std::vector<MapSplit> splits;
  const int64_t target_splits = std::max<int64_t>(
      1, static_cast<int64_t>(pool.num_threads()) * options.splits_per_thread);
  for (int tag = 0; tag < static_cast<int>(spec.inputs.size()); ++tag) {
    const int64_t rows = spec.inputs[tag].relation->num_rows();
    if (rows == 0) continue;
    const int64_t chunk = std::max(
        options.min_split_rows, (rows + target_splits - 1) / target_splits);
    for (int64_t begin = 0; begin < rows; begin += chunk) {
      MapSplit split;
      split.tag = tag;
      split.begin = begin;
      split.end = std::min(rows, begin + chunk);
      splits.push_back(std::move(split));
    }
  }
  return splits;
}

}  // namespace

StatusOr<PhysicalJobResult> RunJobParallel(
    const MapReduceJobSpec& spec, ThreadPool& pool,
    const ParallelRunnerOptions& options) {
  if (spec.inputs.empty()) {
    return Status::InvalidArgument("job '" + spec.name + "' has no inputs");
  }
  if (!spec.map || !spec.reduce) {
    return Status::InvalidArgument("job '" + spec.name +
                                   "' is missing map or reduce function");
  }
  if (spec.num_reduce_tasks < 1) {
    return Status::InvalidArgument("num_reduce_tasks must be >= 1");
  }

  PhysicalJobResult result;
  result.output =
      std::make_shared<Relation>(spec.output_name, spec.output_schema);
  JobMeasurement& m = result.metrics;

  const int n = spec.num_reduce_tasks;
  const PartitionFn& partition =
      spec.partition ? spec.partition : PartitionFn(HashPartition);

  // ---- Map phase: splits fan out over the pool ----
  for (const JobInput& input : spec.inputs) {
    m.input_bytes_logical += input.relation->logical_bytes();
    m.input_bytes_physical += input.relation->physical_bytes();
  }
  std::vector<MapSplit> splits = PlanMapSplits(spec, pool, options);
  pool.ParallelFor(
      static_cast<int64_t>(splits.size()), [&](int64_t s) {
        MapSplit& split = splits[s];
        const Relation& rel = *spec.inputs[split.tag].relation;
        split.emitter.Reserve(static_cast<size_t>(
            static_cast<double>(split.end - split.begin) *
            spec.EmitsPerRow(split.tag)));
        for (int64_t row = split.begin; row < split.end; ++row) {
          spec.map(split.tag, rel, row, split.emitter);
        }
        // Precompute each record's reduce task here, off the sequential
        // merge path. Partitioners are pure functions of (key, n).
        const std::vector<MapOutputRecord>& records = split.emitter.records();
        split.target.reserve(records.size());
        for (const MapOutputRecord& rec : records) {
          const int task = partition(rec.key, n);
          if (task < 0 || task >= n) split.partition_error = true;
          split.target.push_back(task);
        }
      });
  for (MapSplit& split : splits) {
    if (split.partition_error) {
      return Status::Internal("partitioner returned task out of range");
    }
    m.map_output_records_physical +=
        static_cast<int64_t>(split.emitter.records().size());
  }

  // ---- Shuffle merge: sequential walk in split order ----
  // Byte accounting uses floating-point accumulation, so this walk visits
  // records in exactly the sequential runner's order; the per-record work
  // (two additions, one push) is trivial next to map/reduce compute.
  std::vector<std::vector<MapOutputRecord>> task_records(n);
  {
    std::vector<int64_t> task_counts(n, 0);
    for (const MapSplit& split : splits) {
      for (int task : split.target) ++task_counts[task];
    }
    for (int t = 0; t < n; ++t) {
      task_records[t].reserve(static_cast<size_t>(task_counts[t]));
    }
  }
  std::vector<double> task_bytes(n, 0.0);
  double map_out_bytes = 0.0;
  for (MapSplit& split : splits) {
    const double scale = spec.inputs[split.tag].scale;
    const std::vector<MapOutputRecord>& records = split.emitter.records();
    for (size_t k = 0; k < records.size(); ++k) {
      const int task = split.target[k];
      const double scaled_bytes =
          static_cast<double>(records[k].bytes) * scale;
      task_bytes[task] += scaled_bytes;
      map_out_bytes += scaled_bytes;
      task_records[task].push_back(records[k]);
    }
    // The split's records are merged; release its buffers eagerly.
    std::vector<MapOutputRecord>().swap(split.emitter.records());
    std::vector<int>().swap(split.target);
  }
  m.map_output_bytes_logical = static_cast<int64_t>(map_out_bytes);
  m.reduce_input_bytes_logical.resize(n);
  for (int t = 0; t < n; ++t) {
    m.reduce_input_bytes_logical[t] = static_cast<int64_t>(task_bytes[t]);
  }

  // ---- Reduce phase: tasks fan out, each with a private output ----
  // RunReduceTask is the same sort+group+reduce loop the sequential runner
  // uses — sharing it is what keeps the runners byte-identical.
  m.reduce_comparisons_logical.assign(n, 0.0);
  std::vector<Relation> task_outputs;
  task_outputs.reserve(n);
  for (int t = 0; t < n; ++t) {
    task_outputs.emplace_back(spec.output_name, spec.output_schema);
  }
  pool.ParallelFor(n, [&](int64_t t) {
    m.reduce_comparisons_logical[t] =
        RunReduceTask(spec, task_records[t], &task_outputs[t]);
    std::vector<MapOutputRecord>().swap(task_records[t]);
  });

  // Concatenate task outputs in task order — the sequential runner appends
  // reduce output to one relation in exactly this order.
  for (Relation& task_output : task_outputs) {
    MRTHETA_RETURN_IF_ERROR(result.output->AppendRows(task_output));
  }

  // ---- Output accounting (identical to the sequential runner) ----
  m.output_rows_physical = result.output->num_rows();
  m.output_rows_logical =
      static_cast<double>(m.output_rows_physical) * spec.output_row_scale;
  const double capped_rows = std::min(m.output_rows_logical, 4.0e18);
  result.output->set_logical_rows(
      static_cast<int64_t>(std::llround(capped_rows)));
  m.output_bytes_logical = result.output->logical_bytes();
  return result;
}

}  // namespace mrtheta
