#include "src/runtime/parallel_job_runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/mem/memory_budget.h"
#include "src/mem/shuffle_spool.h"
#include "src/obs/trace.h"

namespace mrtheta {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One contiguous map split: rows [begin, end) of input `tag`.
struct MapSplit {
  int tag = 0;
  int64_t begin = 0;
  int64_t end = 0;

  // Committed map output of the split's winning attempt, in the split's
  // row order; each record carries its emit-time reduce target.
  MapEmitter emitter;
};

/// Splits every input into contiguous row ranges in (tag, range) order, so
/// concatenating split outputs reproduces the sequential emit order.
std::vector<MapSplit> PlanMapSplits(const MapReduceJobSpec& spec,
                                    const ThreadPool& pool,
                                    const ParallelRunnerOptions& options) {
  std::vector<MapSplit> splits;
  const int64_t target_splits = std::max<int64_t>(
      1, static_cast<int64_t>(pool.num_threads()) * options.splits_per_thread);
  for (int tag = 0; tag < static_cast<int>(spec.inputs.size()); ++tag) {
    const int64_t rows = spec.inputs[tag].relation->num_rows();
    if (rows == 0) continue;
    const int64_t chunk = std::max(
        options.min_split_rows, (rows + target_splits - 1) / target_splits);
    for (int64_t begin = 0; begin < rows; begin += chunk) {
      MapSplit split;
      split.tag = tag;
      split.begin = begin;
      split.end = std::min(rows, begin + chunk);
      splits.push_back(std::move(split));
    }
  }
  return splits;
}

/// Durations of completed tasks in one phase; the straggler deadline is a
/// multiple of their running median.
class TaskTimeTracker {
 public:
  void Record(double seconds) {
    MutexLock lock(&mu_);
    durations_.push_back(seconds);
  }

  /// Seconds after which a first attempt counts as a straggler; +infinity
  /// while fewer than `min_completed_tasks` durations are recorded (the
  /// median of a few samples is noise, not a baseline).
  double DeadlineSeconds(const SpeculationPolicy& policy) const {
    MutexLock lock(&mu_);
    if (static_cast<int>(durations_.size()) < policy.min_completed_tasks) {
      return std::numeric_limits<double>::infinity();
    }
    std::vector<double> copy = durations_;
    const size_t mid = copy.size() / 2;
    std::nth_element(copy.begin(), copy.begin() + mid, copy.end());
    return std::max(policy.straggler_multiplier * copy[mid],
                    policy.min_deadline_ms * 1e-3);
  }

 private:
  mutable Mutex mu_;
  std::vector<double> durations_ MRTHETA_GUARDED_BY(mu_);
};

/// Shared state of one job execution under (possible) faults.
struct FaultContext {
  const FaultInjector* injector = nullptr;  ///< null = fault-free fast path
  RetryPolicy retry;
  SpeculationPolicy speculation;
  const CancellationToken* external_cancel = nullptr;
  /// Set on the first unrecoverable task failure so sibling tasks stop at
  /// their next boundary instead of burning retries on doomed work.
  CancellationToken job_cancel;

  Mutex report_mu;
  /// Guarded during the parallel phases; read unlocked only after the
  /// ParallelFor barrier (publish_report in RunJobParallel).
  FaultReport report MRTHETA_GUARDED_BY(report_mu);

  bool Cancelled() const {
    return (external_cancel != nullptr && external_cancel->cancelled()) ||
           job_cancel.cancelled();
  }

  Status CancelledStatus(const std::string& job) const {
    if (external_cancel != nullptr && external_cancel->cancelled()) {
      return Status::Cancelled("job '" + job + "' cancelled by caller");
    }
    return Status::Cancelled("job '" + job +
                             "' cancelled after a sibling task failure");
  }

  void CountInjected() {
    MutexLock lock(&report_mu);
    ++report.injected_faults;
  }
  void CountRetry(bool is_map) {
    MutexLock lock(&report_mu);
    ++report.task_retries;
    if (is_map) {
      ++report.map_task_retries;
    } else {
      ++report.reduce_task_retries;
    }
  }
  void CountSpeculative(double wasted_seconds) {
    MutexLock lock(&report_mu);
    ++report.speculative_launches;
    report.wasted_task_seconds += wasted_seconds;
  }
  void CountWasted(double wasted_seconds) {
    MutexLock lock(&report_mu);
    report.wasted_task_seconds += wasted_seconds;
  }
};

/// \brief Runs one restartable task (a map split or a reduce partition)
/// under the fault plan.
///
/// Contract: `work` produces into attempt-local buffers only and must be
/// safe to re-run from scratch; `commit` publishes those buffers into the
/// task's committed slot and runs exactly once, after the first fully
/// successful attempt. Failed, timed-out and abandoned attempts publish
/// nothing, which is what makes re-execution invisible in the output and
/// the simulated metrics (docs/RUNTIME.md determinism contract).
///
/// Failure handling: injected allocation faults (kResourceExhausted),
/// injected task crashes (kAborted), hard attempt timeouts
/// (kDeadlineExceeded) and real `work` errors all consume the retry budget
/// and back off exponentially between attempts. Attempts straggling past
/// the tracker's median-derived deadline are abandoned and relaunched as
/// speculative copies, which consume no retry budget — and, by the
/// slow-slot model (delays fire only on attempt 0), are never re-delayed,
/// so speculation always terminates. On retry exhaustion the task cancels
/// its siblings and returns the last failure's code.
Status RunRestartableTask(FaultContext& ctx, const std::string& job,
                          FaultPoint alloc_point, FaultPoint task_point,
                          FaultPoint straggler_point, int64_t task,
                          TaskTimeTracker& tracker,
                          const std::function<Status()>& work,
                          const std::function<void()>& commit) {
  const bool is_map = task_point == FaultPoint::kMapTask;
  const char* span_name = is_map ? "map-task" : "reduce-task";
  if (ctx.injector == nullptr) {
    // Fault-free fast path; cancellation still honored at the boundary.
    if (ctx.Cancelled()) return ctx.CancelledStatus(job);
    TraceSpan span(span_name, "runtime");
    if (span.enabled()) span.Arg("job", job).Arg("task", task);
    Status s = work();
    if (s.ok()) commit();
    return s;
  }
  const FaultInjector& injector = *ctx.injector;
  int attempt = 0;   // hash-stream index: distinct per launch, incl. copies
  int failures = 0;  // retry budget: failed attempts only
  for (;;) {
    if (ctx.Cancelled()) return ctx.CancelledStatus(job);
    // One span per launch; all launches of this task share a flow id, so
    // the trace viewer draws retry/speculation arrows between them.
    TraceSpan span(span_name, "runtime");
    if (span.enabled()) {
      span.Arg("job", job).Arg("task", task)
          .Arg("attempt", static_cast<int64_t>(attempt))
          .Flow(TaskFlowId(job, is_map ? "map" : "reduce", task));
    }
    const Clock::time_point start = Clock::now();
    Status attempt_status;

    if (injector.ShouldFail(alloc_point, job, task, attempt)) {
      ctx.CountInjected();
      attempt_status = Status::ResourceExhausted(
          std::string("injected allocation failure (") +
          FaultPointName(alloc_point) + ") in job '" + job + "', task " +
          std::to_string(task) + ", attempt " + std::to_string(attempt));
    }

    // Injected straggler delay: an interruptible sleep that watches for
    // cancellation, the hard attempt timeout, and the speculation deadline.
    bool abandoned_as_straggler = false;
    if (attempt_status.ok()) {
      const double delay_s =
          injector.StragglerDelayMs(straggler_point, job, task, attempt) *
          1e-3;
      if (delay_s > 0.0) {
        ctx.CountInjected();
        const double timeout_s = ctx.retry.task_timeout_ms * 1e-3;
        while (SecondsSince(start) < delay_s) {
          if (ctx.Cancelled()) {
            ctx.CountWasted(SecondsSince(start));
            return ctx.CancelledStatus(job);
          }
          if (timeout_s > 0.0 && SecondsSince(start) >= timeout_s) {
            attempt_status = Status::DeadlineExceeded(
                std::string("attempt timed out (") +
                FaultPointName(straggler_point) + ") in job '" + job +
                "', task " + std::to_string(task) + ", attempt " +
                std::to_string(attempt) + " after " +
                std::to_string(ctx.retry.task_timeout_ms) + " ms");
            break;
          }
          if (ctx.speculation.enabled &&
              SecondsSince(start) >=
                  tracker.DeadlineSeconds(ctx.speculation)) {
            abandoned_as_straggler = true;
            break;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    }

    if (abandoned_as_straggler) {
      // Healthy but slow: abandon the slow-slot attempt, launch a
      // speculative copy (a fresh attempt, fresh buffers, no retry budget
      // consumed). First-committer-wins is trivial — the abandoned attempt
      // never reaches commit.
      span.Arg("outcome", "straggler-abandoned");
      ctx.CountSpeculative(SecondsSince(start));
      ++attempt;
      continue;
    }

    if (attempt_status.ok()) {
      attempt_status = work();
      if (attempt_status.ok() &&
          injector.ShouldFail(task_point, job, task, attempt)) {
        // The modeled crash happens after the work but before the commit,
        // so the attempt's buffers are discarded like a real lost task's.
        ctx.CountInjected();
        attempt_status = Status::Aborted(
            std::string("injected task failure (") +
            FaultPointName(task_point) + ") in job '" + job + "', task " +
            std::to_string(task) + ", attempt " + std::to_string(attempt));
      }
    }

    if (attempt_status.ok()) {
      span.Arg("outcome", "ok");
      tracker.Record(SecondsSince(start));
      commit();
      return Status::OK();
    }

    span.Arg("outcome", "failed");
    ctx.CountWasted(SecondsSince(start));
    ++failures;
    if (failures >= ctx.retry.max_attempts) {
      ctx.job_cancel.Cancel();
      return Status::WithCode(
          attempt_status.code(),
          "task " + std::to_string(task) + " of job '" + job +
              "' failed all " + std::to_string(ctx.retry.max_attempts) +
              " attempts; last: " + attempt_status.ToString());
    }
    ctx.CountRetry(is_map);
    const double backoff_s = ctx.retry.BackoffMs(failures - 1) * 1e-3;
    const Clock::time_point backoff_start = Clock::now();
    while (SecondsSince(backoff_start) < backoff_s) {
      if (ctx.Cancelled()) return ctx.CancelledStatus(job);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    ++attempt;
  }
}

/// Deterministic job-level error: the lowest-index task's non-cancelled
/// failure. Cancellations are consequences of some other failure, so they
/// only surface when no task reported a real error (i.e. the cancellation
/// came from outside the job).
Status SelectTaskError(const std::vector<Status>& statuses) {
  const Status* first_cancelled = nullptr;
  for (const Status& s : statuses) {
    if (s.ok()) continue;
    if (s.IsCancelled()) {
      if (first_cancelled == nullptr) first_cancelled = &s;
      continue;
    }
    return s;
  }
  return first_cancelled != nullptr ? *first_cancelled : Status::OK();
}

}  // namespace

StatusOr<PhysicalJobResult> RunJobParallel(
    const MapReduceJobSpec& spec, ThreadPool& pool,
    const ParallelRunnerOptions& options) {
  if (spec.inputs.empty()) {
    return Status::InvalidArgument("job '" + spec.name + "' has no inputs");
  }
  if (!spec.map || !spec.reduce) {
    return Status::InvalidArgument("job '" + spec.name +
                                   "' is missing map or reduce function");
  }
  if (spec.num_reduce_tasks < 1) {
    return Status::InvalidArgument("num_reduce_tasks must be >= 1");
  }
  if (options.injector != nullptr) {
    MRTHETA_RETURN_IF_ERROR(options.injector->plan().Validate());
    MRTHETA_RETURN_IF_ERROR(options.retry.Validate());
    MRTHETA_RETURN_IF_ERROR(options.speculation.Validate());
  }

  FaultContext ctx;
  ctx.injector = options.injector;
  ctx.retry = options.retry;
  ctx.speculation = options.speculation;
  ctx.external_cancel = options.cancel;
  const bool chaos = options.injector != nullptr;
  const bool budgeted =
      options.spill_dir != nullptr && options.mem_budget_bytes > 0;
  // Called only after a ParallelFor barrier, so the lock is uncontended;
  // taking it anyway keeps the guarded-by discipline uniform.
  auto publish_report = [&]() {
    if (options.fault_report != nullptr) {
      MutexLock lock(&ctx.report_mu);
      options.fault_report->Merge(ctx.report);
    }
  };

  PhysicalJobResult result;
  result.output =
      std::make_shared<Relation>(spec.output_name, spec.output_schema);
  JobMeasurement& m = result.metrics;

  const int n = spec.num_reduce_tasks;
  const PartitionFn& partition =
      spec.partition ? spec.partition : PartitionFn(HashPartition);

  // ---- Map phase: splits fan out over the pool as restartable tasks ----
  for (const JobInput& input : spec.inputs) {
    m.input_bytes_logical += input.relation->logical_bytes();
    m.input_bytes_physical += input.relation->physical_bytes();
  }
  std::vector<MapSplit> splits = PlanMapSplits(spec, pool, options);
  TaskTimeTracker map_tracker;
  std::vector<Status> map_status(splits.size());
  TraceSpan map_phase("map-phase", "runtime");
  if (map_phase.enabled()) {
    map_phase.Arg("job", spec.name)
        .Arg("splits", static_cast<int64_t>(splits.size()));
  }
  pool.ParallelFor(
      static_cast<int64_t>(splits.size()), [&](int64_t s) {
        MapSplit& split = splits[s];
        const Relation& rel = *spec.inputs[split.tag].relation;
        MapEmitter emitter;  // attempt-local until commit
        auto work = [&]() -> Status {
          // Fresh buffers per attempt; replacing the emitter also removes
          // any spill file a previous failed attempt left behind. Reduce
          // targets are computed at emit time — off the sequential merge
          // path; partitioners are pure functions of (key, n).
          emitter = MapEmitter();
          emitter.SetPartitioner(partition, n);
          if (spec.combine) emitter.set_combine(spec.combine);
          if (budgeted) {
            emitter.EnableSpill(options.mem_budget_bytes, options.spill_dir);
          }
          emitter.Reserve(static_cast<size_t>(
              static_cast<double>(split.end - split.begin) *
              spec.EmitsPerRow(split.tag)));
          for (int64_t row = split.begin; row < split.end; ++row) {
            // Long map scans honor cancellation without per-row cost.
            if (chaos && ((row - split.begin) & 1023) == 0 &&
                ctx.Cancelled()) {
              return ctx.CancelledStatus(spec.name);
            }
            spec.map(split.tag, rel, row, emitter);
            emitter.EndRow();  // combine + spill boundary
          }
          const Status& s = emitter.status();
          if (!s.ok()) {
            return Status::WithCode(s.code(), "map emit failed in job '" +
                                                  spec.name +
                                                  "': " + s.message());
          }
          return Status::OK();
        };
        auto commit = [&]() { split.emitter = std::move(emitter); };
        map_status[s] = RunRestartableTask(
            ctx, spec.name, FaultPoint::kMapAlloc, FaultPoint::kMapTask,
            FaultPoint::kMapStraggler, s, map_tracker, work, commit);
        if (!map_status[s].ok() && !map_status[s].IsCancelled()) {
          ctx.job_cancel.Cancel();
        }
      });
  map_phase.End();
  {
    Status map_error = SelectTaskError(map_status);
    if (!map_error.ok()) {
      publish_report();
      return map_error;
    }
  }
  for (MapSplit& split : splits) {
    m.map_output_records_physical += split.emitter.size();
  }
  if (ctx.Cancelled()) {  // external cancel between phases
    publish_report();
    return ctx.CancelledStatus(spec.name);
  }

  // ---- Shuffle merge: sequential walk in split order ----
  // Byte accounting uses floating-point accumulation, so this walk visits
  // records in exactly the sequential runner's order; the per-record work
  // (two additions, one push) is trivial next to map/reduce compute.
  TraceSpan shuffle_phase("shuffle-merge", "runtime");
  if (shuffle_phase.enabled()) shuffle_phase.Arg("job", spec.name);
  ShuffleSpool spool(n, budgeted ? options.mem_budget_bytes : 0,
                     budgeted ? options.spill_dir : nullptr);
  std::vector<double> task_bytes(n, 0.0);
  double map_out_bytes = 0.0;
  for (MapSplit& split : splits) {
    const double scale = spec.inputs[split.tag].scale;
    result.spill_bytes += split.emitter.spilled_bytes();
    result.spill_files += split.emitter.spill_files();
    Status walk = split.emitter.ForEach([&](const MapOutputRecord& rec) {
      const double scaled_bytes = static_cast<double>(rec.bytes) * scale;
      task_bytes[rec.target] += scaled_bytes;
      map_out_bytes += scaled_bytes;
      spool.Append(rec.target, rec);
    });
    if (walk.ok() && !spool.status().ok()) walk = spool.status();
    if (!walk.ok()) {
      publish_report();
      return Status::WithCode(walk.code(), "shuffle merge failed in job '" +
                                               spec.name +
                                               "': " + walk.message());
    }
    // The split's records are merged into the spool; release its buffers
    // (and any spill file it made) eagerly.
    split.emitter.Clear();
  }
  {
    Status finish = spool.FinishWrites();
    if (!finish.ok()) {
      publish_report();
      return finish;
    }
  }
  result.spill_bytes += spool.spill_bytes();
  result.spill_files += spool.spill_files();
  m.map_output_bytes_logical = static_cast<int64_t>(map_out_bytes);
  m.reduce_input_bytes_logical.resize(n);
  for (int t = 0; t < n; ++t) {
    m.reduce_input_bytes_logical[t] = static_cast<int64_t>(task_bytes[t]);
  }
  shuffle_phase.End();

  // ---- Reduce phase: restartable tasks, each with a private output ----
  // RunReduceTask is the same sort+group+reduce loop the sequential runner
  // uses — sharing it is what keeps the runners byte-identical.
  // MaterializeTask is non-destructive, so a retried attempt reduces
  // exactly the records the failed attempt saw; spilled tasks arrive
  // pre-merged in (key, tag, row) order and skip the reduce-side sort.
  m.reduce_comparisons_logical.assign(n, 0.0);
  std::vector<Relation> task_outputs;
  task_outputs.reserve(n);
  for (int t = 0; t < n; ++t) {
    task_outputs.emplace_back(spec.output_name, spec.output_schema);
  }
  TaskTimeTracker reduce_tracker;
  std::vector<Status> reduce_status(n);
  TraceSpan reduce_phase("reduce-phase", "runtime");
  if (reduce_phase.enabled()) {
    reduce_phase.Arg("job", spec.name).Arg("tasks", static_cast<int64_t>(n));
  }
  pool.ParallelFor(n, [&](int64_t t) {
    double comparisons = 0.0;
    Relation attempt_output;  // attempt-local until commit
    auto work = [&]() -> Status {
      attempt_output = Relation(spec.output_name, spec.output_schema);
      StatusOr<ShuffleSpool::MaterializedTask> input =
          spool.MaterializeTask(static_cast<int>(t));
      if (!input.ok()) return input.status();
      // Account the materialized vector so concurrent reduce tasks show
      // up in peak-memory tracking (it frees with the attempt).
      ScopedCharge charge(
          static_cast<int64_t>(input->records.capacity()) *
          static_cast<int64_t>(sizeof(MapOutputRecord)));
      StatusOr<double> c = RunReduceTask(spec, input->records,
                                         &attempt_output, input->sorted);
      if (!c.ok()) return c.status();
      comparisons = *c;
      return Status::OK();
    };
    auto commit = [&]() {
      m.reduce_comparisons_logical[t] = comparisons;
      task_outputs[t] = std::move(attempt_output);
      spool.ReleaseTask(static_cast<int>(t));
    };
    reduce_status[t] = RunRestartableTask(
        ctx, spec.name, FaultPoint::kReduceAlloc, FaultPoint::kReduceTask,
        FaultPoint::kReduceStraggler, t, reduce_tracker, work, commit);
    if (!reduce_status[t].ok() && !reduce_status[t].IsCancelled()) {
      ctx.job_cancel.Cancel();
    }
  });
  reduce_phase.End();
  {
    Status reduce_error = SelectTaskError(reduce_status);
    if (!reduce_error.ok()) {
      publish_report();
      return reduce_error;
    }
  }

  // Concatenate task outputs in task order — the sequential runner appends
  // reduce output to one relation in exactly this order.
  for (Relation& task_output : task_outputs) {
    Status append = result.output->AppendRows(task_output);
    if (!append.ok()) {
      publish_report();
      return append;
    }
  }

  // ---- Output accounting (identical to the sequential runner) ----
  m.output_rows_physical = result.output->num_rows();
  m.output_rows_logical =
      static_cast<double>(m.output_rows_physical) * spec.output_row_scale;
  const double capped_rows = std::min(m.output_rows_logical, 4.0e18);
  result.output->set_logical_rows(
      static_cast<int64_t>(std::llround(capped_rows)));
  m.output_bytes_logical = result.output->logical_bytes();
  publish_report();
  return result;
}

}  // namespace mrtheta
