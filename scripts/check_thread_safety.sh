#!/usr/bin/env bash
# Thread-safety analysis gate (docs/STATIC_ANALYSIS.md).
#
# Two-sided check of clang's -Werror=thread-safety against the annotated
# primitives in src/common/thread_annotations.h:
#
#   1. tests/static/thread_safety_ok.cc        must COMPILE — proves the
#      harness itself is sound (headers resolve, flags are valid);
#   2. tests/static/thread_safety_violation.cc must FAIL — proves the
#      analysis actually rejects mis-locked code. If the annotation macros
#      are ever accidentally compiled out, this side trips.
#
# Usage: scripts/check_thread_safety.sh [clang++-binary]
set -u

cd "$(dirname "$0")/.."

CXX="${1:-clang++}"
if ! command -v "$CXX" >/dev/null 2>&1; then
  echo "check_thread_safety.sh: $CXX not found" >&2
  exit 2
fi

FLAGS=(-std=c++20 -I. -fsyntax-only -Wthread-safety -Werror=thread-safety)

if ! "$CXX" "${FLAGS[@]}" tests/static/thread_safety_ok.cc; then
  echo "FAIL: thread_safety_ok.cc must compile cleanly (harness broken?)" >&2
  exit 1
fi
echo "ok: thread_safety_ok.cc compiles"

if "$CXX" "${FLAGS[@]}" tests/static/thread_safety_violation.cc 2>/dev/null; then
  echo "FAIL: thread_safety_violation.cc compiled — the thread-safety" >&2
  echo "analysis is not rejecting mis-locked code (annotations inert?)" >&2
  exit 1
fi
echo "ok: thread_safety_violation.cc rejected by -Werror=thread-safety"
echo "check_thread_safety.sh: gate sound"
