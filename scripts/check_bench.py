#!/usr/bin/env python3
"""CI benchmark-regression gate.

Compares CI-produced BENCH_*.json files against the committed baselines in
bench/baselines/ and fails on regressions in *simulated* (deterministic)
metrics. Measured wall-clock fields are exempt — runners vary; the
simulated quantities (discrete-event makespans, logical byte volumes,
result cardinalities) are bit-reproducible across machines, so a drift
there is a real behavioural change.

Policy per metric kind:
  exact      -- must be identical (result rows, output pairs): any change
                fails until the baseline is deliberately regenerated.
  simulated  -- numeric, direction-aware: fails when the current value is
                worse than baseline by more than --tolerance (default 25%).
                Improvements pass (regenerate the baseline to lock them in).
  (everything else -- measured/informational: ignored.)

Structural mismatches are failures, not notes: a BENCH_*.json in either
directory without a SPECS entry, a baseline file the run did not produce,
a produced file with no committed baseline, and records present on only
one side all fail — a silently unmatched file or record is a gate that
quietly stopped gating.

Exit status: 0 = pass, 1 = regression or structural mismatch.

Usage:
  scripts/check_bench.py --current-dir build [--baseline-dir bench/baselines]
                         [--tolerance 0.25]
"""

import argparse
import json
import os
import sys

# Per-file comparison spec: record key fields, exact fields, and simulated
# fields with their "worse" direction (+1 = larger is worse, -1 = smaller
# is worse).
SPECS = {
    "BENCH_kernels.json": {
        "key": ["label", "kernel"],
        "exact": ["left_rows", "right_rows", "output_pairs"],
        "simulated": {},  # wall_ns / tuples_per_sec are measured -> exempt
    },
    "BENCH_runtime.json": {
        "key": ["workload", "query", "threads", "sort_kernel_min_pairs"],
        "exact": ["jobs", "result_rows_physical"],
        "simulated": {
            "sim_makespan_seconds": +1,
            # Simulated map->reduce volume; grows when column pruning /
            # selection pushdown stop shrinking the shuffle.
            "sim_shuffle_bytes": +1,
        },
        # wall_seconds / speedup_vs_1t / hardware_threads are measured.
        # Per-workload tolerance tightening (keyed by the record's
        # "workload" field). The fault_overhead pair executes one plan with
        # the chaos machinery off vs armed at zero rates, and the
        # trace_overhead pair the same plan untraced vs traced; their
        # simulated metrics are deterministic and must not drift, so both
        # are held to 2% instead of the default 25%.
        "tolerance_overrides": {"fault_overhead": 0.02,
                                "trace_overhead": 0.02},
        # Fields every *current* record must carry, even when the value is
        # informational: a bench that silently stops emitting them has
        # disarmed part of the gate. trace_overhead is the span-tracing
        # cost measured by bench_runtime (docs/OBSERVABILITY.md);
        # peak_mem_bytes is the per-run MemoryBudget high-water mark
        # (docs/MEMORY.md).
        "required": ["trace_overhead", "peak_mem_bytes"],
    },
    "BENCH_mem.json": {
        "key": ["workload", "query", "mode", "threads"],
        # bench_runtime's mem_budget workload aborts unless the budgeted
        # runs are byte-identical to the unbudgeted reference, actually
        # spill, and hold peak within 1.25x of the budget — so these
        # records existing at all already certifies the contract. The gate
        # here catches drift: result rows and the configured budget are
        # exact; makespan/shuffle are the usual deterministic simulated
        # quantities; peak_mem_bytes and spill_bytes are direction-aware
        # (growth = the spill machinery holding more memory or writing
        # more disk for the same workload). The unbudgeted records carry
        # spill_bytes = 0, which the base_val == 0 rule skips.
        "exact": ["jobs", "result_rows_physical", "mem_budget_bytes"],
        "simulated": {
            "sim_makespan_seconds": +1,
            "sim_shuffle_bytes": +1,
            "peak_mem_bytes": +1,
            "spill_bytes": +1,
        },
        # wall_seconds is measured -> exempt; a record that stops emitting
        # the memory columns has disarmed the gate.
        "required": ["peak_mem_bytes", "spill_bytes", "spill_files"],
    },
    "BENCH_serve.json": {
        "key": ["workload", "query", "streams"],
        # The serving counters are deterministic: bench_engine_serve
        # aborts unless every concurrent result is byte-identical to the
        # sequential reference, the warm plan cache hits on every stream
        # query, and nothing is rejected — so any drift here is a real
        # serving-layer behaviour change.
        "exact": ["queries_per_stream", "total_queries", "threads",
                  "per_query_threads", "max_inflight_queries",
                  "plan_cache_hits", "plan_cache_misses",
                  "admission_rejections", "result_rows_total"],
        "simulated": {},
        # Latency/throughput are measured -> exempt from the gate, but a
        # bench that stops emitting them has stopped measuring serving.
        "required": ["p50_latency_seconds", "p99_latency_seconds",
                     "throughput_qps"],
    },
    "BENCH_skew.json": {
        "key": ["workload", "query", "mode"],
        "exact": ["result_rows_physical"],
        "simulated": {
            "max_mean_ratio": +1,
            "sim_makespan_seconds": +1,
        },
        # wall_seconds is measured; task-split fields are informational.
    },
}


def load_records(path, key_fields):
    with open(path) as f:
        records = json.load(f)
    table = {}
    for record in records:
        key = tuple(record.get(k) for k in key_fields)
        if key in table:
            raise SystemExit(f"{path}: duplicate record key {key}")
        table[key] = record
    return table


def compare_file(name, baseline_path, current_path, tolerance):
    """Returns a list of failure strings for one benchmark file."""
    spec = SPECS[name]
    failures = []
    baseline = load_records(baseline_path, spec["key"])
    current = load_records(current_path, spec["key"])

    for key, cur_rec in current.items():
        for field in spec.get("required", []):
            if field not in cur_rec:
                failures.append(
                    f"{name}: {key} stopped emitting required field "
                    f"'{field}' (the bench no longer measures it)")

    for key, base_rec in baseline.items():
        cur_rec = current.get(key)
        if cur_rec is None:
            failures.append(f"{name}: record {key} disappeared")
            continue
        for field in spec["exact"]:
            if base_rec.get(field) != cur_rec.get(field):
                failures.append(
                    f"{name}: {key} {field} changed "
                    f"{base_rec.get(field)} -> {cur_rec.get(field)} "
                    f"(exact field; regenerate baselines if intentional)")
        rec_tolerance = spec.get("tolerance_overrides", {}).get(
            base_rec.get("workload"), tolerance)
        for field, worse_dir in spec["simulated"].items():
            base_val = base_rec.get(field)
            cur_val = cur_rec.get(field)
            if base_val is None or cur_val is None:
                continue
            if base_val == 0:
                continue
            delta = (cur_val - base_val) / abs(base_val) * worse_dir
            if delta > rec_tolerance:
                failures.append(
                    f"{name}: {key} {field} regressed "
                    f"{base_val} -> {cur_val} "
                    f"({delta * 100.0:+.1f}% worse, tolerance "
                    f"{rec_tolerance * 100.0:.0f}%)")
    new_keys = set(current) - set(baseline)
    for key in sorted(new_keys):
        failures.append(
            f"{name}: record {key} has no baseline (regenerate "
            f"{baseline_path} to admit new records)")
    return failures


def run_gate(baseline_dir, current_dir, tolerance, log=print):
    """Runs the whole gate; returns (failures, files_checked)."""
    failures = []
    checked = 0
    # Files without a SPECS entry would otherwise never be compared — a
    # bench that writes BENCH_foo.json without registering its spec here
    # ships an ungated metric.
    for directory in (baseline_dir, current_dir):
        if not os.path.isdir(directory):
            continue
        for entry in sorted(os.listdir(directory)):
            if (entry.startswith("BENCH_") and entry.endswith(".json")
                    and entry not in SPECS):
                failures.append(
                    f"{os.path.join(directory, entry)}: no comparison spec "
                    f"(add it to SPECS in scripts/check_bench.py)")
    for name in sorted(SPECS):
        baseline_path = os.path.join(baseline_dir, name)
        current_path = os.path.join(current_dir, name)
        if not os.path.exists(baseline_path):
            if os.path.exists(current_path):
                failures.append(
                    f"{name}: produced but has no baseline (commit "
                    f"{current_path} to {baseline_dir} to arm the "
                    f"gate)")
            else:
                log(f"note: {name} not produced and not in baselines; "
                    f"skipping")
            continue
        if not os.path.exists(current_path):
            failures.append(
                f"{name}: baseline exists but CI produced no {current_path}")
            continue
        file_failures = compare_file(name, baseline_path, current_path,
                                     tolerance)
        checked += 1
        status = "FAIL" if file_failures else "ok"
        log(f"{name}: {status}")
        failures.extend(file_failures)
    return failures, checked


def self_test():
    """Synthetic baseline/current pairs through the real gate: each case
    asserts the gate fires (or stays quiet) for one policy rule. Guards
    the gate itself — a comparison that silently stopped comparing would
    otherwise only be noticed by a regression it failed to catch."""
    import re
    import shutil
    import tempfile

    kernels_base = [{"label": "a", "kernel": "sort", "left_rows": 10,
                     "right_rows": 10, "output_pairs": 100}]
    runtime_base = [{"workload": "w", "query": "q", "threads": 2,
                     "sort_kernel_min_pairs": 0, "jobs": 3,
                     "result_rows_physical": 42,
                     "sim_makespan_seconds": 10.0,
                     "sim_shuffle_bytes": 1000,
                     "trace_overhead": 0.01, "peak_mem_bytes": 1}]

    def deep(records, **overrides):
        out = [dict(r) for r in records]
        out[0].update(overrides)
        return out

    # (case name, baseline {file: records}, current {file: records},
    #  regex the failures must match — None = must pass clean)
    cases = [
        ("identical passes",
         {"BENCH_kernels.json": kernels_base},
         {"BENCH_kernels.json": kernels_base}, None),
        ("exact field change fails",
         {"BENCH_kernels.json": kernels_base},
         {"BENCH_kernels.json": deep(kernels_base, output_pairs=99)},
         r"output_pairs changed"),
        ("simulated regression beyond tolerance fails",
         {"BENCH_runtime.json": runtime_base},
         {"BENCH_runtime.json": deep(runtime_base,
                                     sim_makespan_seconds=14.0)},
         r"sim_makespan_seconds regressed"),
        ("simulated improvement passes",
         {"BENCH_runtime.json": runtime_base},
         {"BENCH_runtime.json": deep(runtime_base,
                                     sim_makespan_seconds=6.0)}, None),
        ("tolerance override tightens",
         {"BENCH_runtime.json": deep(runtime_base,
                                     workload="fault_overhead")},
         {"BENCH_runtime.json": deep(runtime_base,
                                     workload="fault_overhead",
                                     sim_makespan_seconds=10.5)},
         r"tolerance 2%"),
        ("missing record fails",
         {"BENCH_kernels.json": kernels_base},
         {"BENCH_kernels.json": []}, r"disappeared"),
        ("unspecced bench file fails",
         {"BENCH_kernels.json": kernels_base},
         {"BENCH_kernels.json": kernels_base,
          "BENCH_mystery.json": []}, r"no comparison spec"),
        ("dropped required field fails",
         {"BENCH_runtime.json": runtime_base},
         {"BENCH_runtime.json": [
             {k: v for k, v in runtime_base[0].items()
              if k != "trace_overhead"}]},
         r"required field 'trace_overhead'"),
        ("baseline without current fails",
         {"BENCH_kernels.json": kernels_base}, {},
         r"produced no"),
    ]

    problems = []
    for case_name, baseline, current, expect in cases:
        root = tempfile.mkdtemp(prefix="check_bench_selftest_")
        try:
            for sub, contents in (("base", baseline), ("cur", current)):
                os.makedirs(os.path.join(root, sub))
                for fname, records in contents.items():
                    with open(os.path.join(root, sub, fname), "w") as f:
                        json.dump(records, f)
            failures, _ = run_gate(os.path.join(root, "base"),
                                   os.path.join(root, "cur"),
                                   tolerance=0.25, log=lambda *_: None)
            if expect is None:
                if failures:
                    problems.append(f"{case_name}: expected pass, "
                                    f"got {failures}")
            elif not any(re.search(expect, f) for f in failures):
                problems.append(f"{case_name}: no failure matching "
                                f"/{expect}/ in {failures}")
        finally:
            shutil.rmtree(root, ignore_errors=True)

    if problems:
        for p in problems:
            print(f"check_bench.py self-test FAILED: {p}", file=sys.stderr)
        return 1
    print(f"check_bench.py self-test ok: {len(cases)} cases")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--current-dir", default="build")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression in simulated "
                             "metrics (default 0.25)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate's own test cases and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    failures, checked = run_gate(args.baseline_dir, args.current_dir,
                                 args.tolerance)

    if failures:
        print(f"\nbenchmark-regression gate FAILED "
              f"({len(failures)} finding(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nbenchmark-regression gate passed ({checked} file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
