#!/usr/bin/env python3
"""Cached, optionally diff-aware clang-tidy driver.

Reads compile_commands.json from the build directory (the repo configures
with CMAKE_EXPORT_COMPILE_COMMANDS=ON), runs clang-tidy over the repo's
own translation units, and caches per-file results keyed on

    sha256(file contents, .clang-tidy contents, compile command,
           clang-tidy version)

so re-runs — locally and in CI, where the cache directory is persisted
with actions/cache — only pay for files whose inputs changed. A cache hit
replays the stored findings and exit status, so a cached failure still
fails.

--changed-only restricts the run to files changed relative to a git ref
(default: origin/main, falling back to HEAD~1) — the PR-gate mode; full
runs happen on pushes to main. Header-only changes are covered by
HeaderFilterRegex: a changed header reruns every TU that includes it,
because the TU's *inputs* didn't change but its header's did — so headers
are folded into the cache key via the TU's include list when available,
and conservatively via a tree-wide header digest otherwise.

Exit status: 0 = clean, 1 = findings (clang-tidy errors), 2 = setup error
(missing clang-tidy / compile_commands.json).

Usage:
  scripts/run_clang_tidy.py --build-dir build [--cache-dir .tidy-cache]
                            [--changed-only [--base-ref origin/main]]
                            [--jobs N]
"""

import argparse
import concurrent.futures
import hashlib
import json
import os
import shlex
import shutil
import subprocess
import sys


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_compile_commands(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(path):
        print(f"run_clang_tidy.py: {path} not found — configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON", file=sys.stderr)
        return None
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def own_sources(commands, root):
    """Repo TUs under src/ and tests/ — not third-party, not generated."""
    chosen = {}
    for entry in commands:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(path, root)
        if rel.startswith(("src" + os.sep, "tests" + os.sep)):
            chosen[path] = entry  # last command wins (GLOB emits one each)
    return chosen


def changed_files(root, base_ref):
    for ref in (base_ref, "HEAD~1"):
        try:
            out = subprocess.run(
                ["git", "diff", "--name-only", ref, "--"],
                cwd=root, capture_output=True, text=True, check=True).stdout
        except subprocess.CalledProcessError:
            continue
        return {os.path.normpath(os.path.join(root, line))
                for line in out.splitlines() if line}
    print(f"run_clang_tidy.py: neither {base_ref} nor HEAD~1 resolvable; "
          "running on everything", file=sys.stderr)
    return None


def sha256_file(path):
    digest = hashlib.sha256()
    with open(path, "rb") as f:
        for block in iter(lambda: f.read(1 << 16), b""):
            digest.update(block)
    return digest.hexdigest()


def tree_header_digest(root):
    """Digest over every header in src/ — the conservative invalidator:
    any header edit reruns every TU. Per-TU include lists would be finer,
    but this stays correct with zero compiler involvement."""
    digest = hashlib.sha256()
    for dirpath, _, filenames in sorted(os.walk(os.path.join(root, "src"))):
        for name in sorted(filenames):
            if name.endswith(".h"):
                path = os.path.join(dirpath, name)
                digest.update(os.path.relpath(path, root).encode())
                digest.update(sha256_file(path).encode())
    return digest.hexdigest()


def entry_command(entry):
    if "arguments" in entry:
        return shlex.join(entry["arguments"])
    return entry["command"]


def cache_key(path, entry, config_digest, headers_digest, tidy_version):
    digest = hashlib.sha256()
    for part in (sha256_file(path), entry_command(entry), config_digest,
                 headers_digest, tidy_version):
        digest.update(part.encode())
        digest.update(b"\0")
    return digest.hexdigest()


def run_one(tidy, path, build_dir, cache_dir, key, root):
    hit = os.path.join(cache_dir, key + ".json")
    if os.path.isfile(hit):
        with open(hit, encoding="utf-8") as f:
            cached = json.load(f)
        return path, cached["returncode"], cached["output"], True
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", path],
        capture_output=True, text=True, cwd=root)
    output = (proc.stdout + proc.stderr).strip()
    os.makedirs(cache_dir, exist_ok=True)
    tmp = hit + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump({"returncode": proc.returncode, "output": output}, f)
    os.replace(tmp, hit)
    return path, proc.returncode, output, False


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--cache-dir", default=".tidy-cache")
    parser.add_argument("--changed-only", action="store_true")
    parser.add_argument("--base-ref", default="origin/main")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--clang-tidy", default=None,
                        help="binary (default: clang-tidy, else highest "
                             "clang-tidy-N on PATH)")
    args = parser.parse_args()

    root = repo_root()
    tidy = args.clang_tidy
    if tidy is None:
        candidates = ["clang-tidy"] + [f"clang-tidy-{v}"
                                       for v in range(25, 11, -1)]
        tidy = next((c for c in candidates if shutil.which(c)), None)
    if tidy is None or not shutil.which(tidy):
        print("run_clang_tidy.py: clang-tidy not found on PATH",
              file=sys.stderr)
        return 2

    commands = load_compile_commands(args.build_dir)
    if commands is None:
        return 2
    sources = own_sources(commands, root)

    if args.changed_only:
        changed = changed_files(root, args.base_ref)
        if changed is not None:
            # A changed header reruns everything via the headers digest in
            # the key, so TU selection only needs the .cc list.
            sources = {p: e for p, e in sources.items() if p in changed}
            if not sources:
                print("run_clang_tidy.py: no changed translation units")
                return 0

    tidy_version = subprocess.run(
        [tidy, "--version"], capture_output=True, text=True).stdout.strip()
    config_digest = sha256_file(os.path.join(root, ".clang-tidy"))
    headers_digest = tree_header_digest(root)

    failures = 0
    hits = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [
            pool.submit(run_one, tidy, path, args.build_dir, args.cache_dir,
                        cache_key(path, entry, config_digest, headers_digest,
                                  tidy_version),
                        root)
            for path, entry in sorted(sources.items())
        ]
        for future in concurrent.futures.as_completed(futures):
            path, returncode, output, from_cache = future.result()
            hits += from_cache
            rel = os.path.relpath(path, root)
            if returncode != 0:
                failures += 1
                tag = " (cached)" if from_cache else ""
                print(f"== {rel}{tag}\n{output}")
            elif output:
                print(f"-- {rel}: warnings (not errors)\n{output}")

    print(f"run_clang_tidy.py: {len(sources)} files, {hits} cache hits, "
          f"{failures} failing")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
