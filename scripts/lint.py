#!/usr/bin/env python3
"""Repo lint: fast source-level checks that need no compiler.

Complements the clang legs (thread-safety analysis, clang-tidy): these are
the rules that are cheaper and more reliable to enforce textually, run on
every platform in seconds, and catch the whole file set (clang-tidy's
diff-aware mode only sees changed files).

Rules (docs/STATIC_ANALYSIS.md):

  raw-assert      src/ must not use raw assert(): it vanishes under
                  -DNDEBUG, which is the default Release build — use
                  MRTHETA_CHECK (always on) or MRTHETA_DCHECK (debug
                  only, but visibly so). static_assert is fine.
  randomness      rand()/srand()/time()/std::random_device are banned in
                  src/ outside src/common/rng.*: the determinism contract
                  (byte-identical outputs at any thread count) dies the
                  moment unseeded or wall-clock-seeded randomness leaks
                  into an operator. Deterministic streams come from
                  src/common/rng.h.
  naked-mutex     src/ must not use std::mutex / std::condition_variable /
                  std::lock_guard / std::unique_lock / std::scoped_lock
                  directly: the annotated wrappers in
                  src/common/thread_annotations.h are what make
                  -Wthread-safety able to see locking at all.
  todo-tag        TODO comments must carry an issue tag — TODO(#123) —
                  anywhere in src/, tests/, examples/, bench/, scripts/.
                  Untracked TODOs rot.

Comments and string/char literals are stripped before the code rules run
(so docs may *mention* std::mutex); the todo-tag rule runs on raw text
because TODOs live in comments.

Exit status: 0 = clean, 1 = violations (one "path:line: [rule] message"
per finding), 2 = usage error.

Usage:
  scripts/lint.py [--root DIR] [--self-test]
"""

import argparse
import os
import re
import sys

CXX_EXTENSIONS = (".cc", ".h")

# Directories scanned per rule group (relative to the repo root).
CODE_RULE_DIRS = ("src",)
TODO_RULE_DIRS = ("src", "tests", "examples", "bench", "scripts")

# Files exempt from specific rules (relative, forward-slash paths).
RANDOMNESS_EXEMPT = ("src/common/rng.h", "src/common/rng.cc")
MUTEX_EXEMPT = ("src/common/thread_annotations.h",
                "src/common/thread_annotations.cc")
# The linter's own rule messages and self-test fixtures spell out the
# banned patterns literally.
TODO_EXEMPT = ("scripts/lint.py",)

RE_RAW_ASSERT = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
RE_RANDOMNESS = re.compile(
    r"(?<![A-Za-z0-9_])(?:rand|srand|time)\s*\(|std::random_device")
RE_NAKED_MUTEX = re.compile(
    r"std::(?:mutex|condition_variable|lock_guard|unique_lock|scoped_lock)"
    r"(?![A-Za-z0-9_])")
RE_TODO = re.compile(r"\bTODO\b")
RE_TODO_TAGGED = re.compile(r"\bTODO\(#\d+\)")


def strip_comments_and_strings(text):
    """Returns `text` with comments and string/char literal *contents*
    blanked (newlines preserved, so line numbers survive)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":  # line comment
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":  # block comment
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c == '"' or c == "'":  # string / char literal
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1  # skip the escaped char
                elif text[i] == "\n":
                    out.append("\n")  # unterminated literal; keep lines
                i += 1
            if i < n:
                out.append(quote)
                i += 1
            continue
        else:
            out.append(c)
            i += 1
            continue
        # fell out of a comment; keep the newline terminating a // comment
        if i < n and text[i] == "\n":
            out.append("\n")
            i += 1
    return "".join(out)


def iter_files(root, rel_dirs, extensions):
    for rel_dir in rel_dirs:
        base = os.path.join(root, rel_dir)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(extensions):
                    path = os.path.join(dirpath, name)
                    yield os.path.relpath(path, root).replace(os.sep, "/")


def lint_tree(root):
    """Returns a list of (relpath, line, rule, message) violations."""
    findings = []

    for rel in iter_files(root, CODE_RULE_DIRS, CXX_EXTENSIONS):
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            raw = f.read()
        code = strip_comments_and_strings(raw)
        for lineno, line in enumerate(code.splitlines(), start=1):
            m = RE_RAW_ASSERT.search(line)
            if m and "static_assert" not in line[:m.start() + 6]:
                findings.append((rel, lineno, "raw-assert",
                                 "raw assert() vanishes under -DNDEBUG; use "
                                 "MRTHETA_CHECK or MRTHETA_DCHECK"))
            if rel not in RANDOMNESS_EXEMPT and RE_RANDOMNESS.search(line):
                findings.append((rel, lineno, "randomness",
                                 "rand()/time()/std::random_device break the "
                                 "determinism contract; use src/common/rng.h"))
            if rel not in MUTEX_EXEMPT and RE_NAKED_MUTEX.search(line):
                findings.append((rel, lineno, "naked-mutex",
                                 "use the annotated Mutex/MutexLock/CondVar "
                                 "from src/common/thread_annotations.h"))

    seen = set()
    for rel in iter_files(root, TODO_RULE_DIRS,
                          CXX_EXTENSIONS + (".py", ".cmake")):
        if rel in seen or rel in TODO_EXEMPT:
            continue
        seen.add(rel)
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            raw = f.read()
        for lineno, line in enumerate(raw.splitlines(), start=1):
            if RE_TODO.search(line) and not RE_TODO_TAGGED.search(line):
                findings.append((rel, lineno, "todo-tag",
                                 "TODO without an issue tag; write TODO(#N)"))

    findings.sort()
    return findings


# ---------------------------------------------------------------------------
# Self-test: synthetic files with known violations, run through the same
# pipeline. Guards the linter against regressions in the stripper (the
# subtle part) without needing fixture files in the repo.

SELF_TEST_CASES = [
    # (filename, contents, expected set of (line, rule))
    ("src/bad.cc",
     '#include <cassert>\n'
     'void f(int x) {\n'
     '  assert(x > 0);\n'            # line 3: raw-assert
     '  static_assert(sizeof(int) == 4, "ok");\n'
     '  int seed = time(nullptr);\n'  # line 5: randomness
     '  (void)seed;\n'
     '}\n',
     {(3, "raw-assert"), (5, "randomness")}),
    ("src/locks.h",
     '#include <mutex>\n'
     'struct S {\n'
     '  // std::mutex in a comment is fine\n'
     '  const char* s = "std::mutex in a string is fine";\n'
     '  std::mutex mu;\n'             # line 5: naked-mutex
     '  std::unique_lock<int>* l;\n'  # line 6: naked-mutex
     '};\n',
     {(5, "naked-mutex"), (6, "naked-mutex")}),
    ("src/strings.cc",
     '/* assert( in a block comment\n'
     '   spanning lines */\n'
     'const char* kMsg = "assert(x) and rand() and time(";\n'
     "const char kQuote = '\\'';\n"
     'int my_assertion(int x) { return x; }  // suffix, not assert(\n'
     'int rando(int x) { return x; }\n',
     set()),
    ("src/common/rng.cc",
     'unsigned Seed() { return std::random_device{}(); }\n',  # exempt file
     set()),
    ("tests/todo_test.cc",
     '// TODO: untagged\n'            # line 1: todo-tag
     '// TODO(#42): tagged ok\n'
     'int main() { return 0; }\n',
     {(1, "todo-tag")}),
]


def self_test():
    import shutil
    import tempfile

    root = tempfile.mkdtemp(prefix="lint_selftest_")
    try:
        for rel, contents, _ in SELF_TEST_CASES:
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(contents)
        got = {}
        for rel, line, rule, _ in lint_tree(root):
            got.setdefault(rel, set()).add((line, rule))
        failures = []
        for rel, _, expected in SELF_TEST_CASES:
            actual = got.pop(rel, set())
            if actual != expected:
                failures.append(f"{rel}: expected {sorted(expected)}, "
                                f"got {sorted(actual)}")
        for rel, actual in got.items():
            failures.append(f"{rel}: unexpected findings {sorted(actual)}")
        if failures:
            for f in failures:
                print(f"lint.py self-test FAILED: {f}", file=sys.stderr)
            return 1
        print(f"lint.py self-test ok: {len(SELF_TEST_CASES)} cases")
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter's own test cases and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"lint.py: no src/ under {root}", file=sys.stderr)
        return 2

    findings = lint_tree(root)
    for rel, line, rule, message in findings:
        print(f"{rel}:{line}: [{rule}] {message}")
    if findings:
        print(f"lint.py: {len(findings)} violation(s)", file=sys.stderr)
        return 1
    print("lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
