// Unit tests for src/relation: values, schemas, relations, predicates.

#include <gtest/gtest.h>

#include "src/relation/predicate.h"
#include "src/relation/relation.h"

namespace mrtheta {
namespace {

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value(int64_t{1}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(1.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value(std::string("x")).type(), ValueType::kString);
  EXPECT_TRUE(Value(int64_t{1}).is_numeric());
  EXPECT_FALSE(Value(std::string("x")).is_numeric());
}

TEST(ValueTest, NumericCompareAcrossTypes) {
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(int64_t{1}).Compare(Value(1.5)), 0);
  EXPECT_GT(Value(2.5).Compare(Value(int64_t{2})), 0);
}

TEST(ValueTest, LargeIntegersCompareExactly) {
  // 2^62 and 2^62+1 are indistinguishable as doubles.
  const int64_t big = int64_t{1} << 62;
  EXPECT_LT(Value(big).Compare(Value(big + 1)), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(Value(std::string("abc")).Compare(Value(std::string("abd"))), 0);
  EXPECT_EQ(Value(std::string("x")).Compare(Value(std::string("x"))), 0);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(std::string("hi")).ToString(), "hi");
}

TEST(SchemaTest, FindColumn) {
  Schema s({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  EXPECT_EQ(*s.FindColumn("a"), 0);
  EXPECT_EQ(*s.FindColumn("b"), 1);
  EXPECT_FALSE(s.FindColumn("c").ok());
}

TEST(SchemaTest, RowBytesIncludesOverheadAndWidths) {
  Schema s({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  // 4 (framing) + 8 (int) + 16 (string default)
  EXPECT_EQ(s.avg_row_bytes(), 28);
}

TEST(SchemaTest, CustomWidth) {
  Schema s({{"fat", ValueType::kInt64, 100}});
  EXPECT_EQ(s.avg_row_bytes(), 104);
}

TEST(RelationTest, AppendAndGet) {
  Relation r("t", Schema({{"a", ValueType::kInt64},
                          {"b", ValueType::kDouble},
                          {"c", ValueType::kString}}));
  ASSERT_TRUE(r.AppendRow({Value(int64_t{1}), Value(2.5),
                           Value(std::string("x"))})
                  .ok());
  EXPECT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.GetInt(0, 0), 1);
  EXPECT_EQ(r.GetDouble(0, 1), 2.5);
  EXPECT_EQ(r.GetString(0, 2), "x");
  EXPECT_EQ(r.Get(0, 0), Value(int64_t{1}));
}

TEST(RelationTest, ArityMismatchIsError) {
  Relation r("t", Schema({{"a", ValueType::kInt64}}));
  EXPECT_FALSE(r.AppendRow({Value(int64_t{1}), Value(int64_t{2})}).ok());
}

TEST(RelationTest, GetDoublePromotesInt) {
  Relation r("t", Schema({{"a", ValueType::kInt64}}));
  r.AppendIntRow({7});
  EXPECT_EQ(r.GetDouble(0, 0), 7.0);
}

TEST(RelationTest, LogicalDefaultsToPhysical) {
  Relation r("t", Schema({{"a", ValueType::kInt64}}));
  r.AppendIntRow({1});
  r.AppendIntRow({2});
  EXPECT_EQ(r.logical_rows(), 2);
  r.set_logical_rows(1000);
  EXPECT_EQ(r.logical_rows(), 1000);
  EXPECT_EQ(r.num_rows(), 2);
  EXPECT_EQ(r.logical_bytes(), 1000 * r.schema().avg_row_bytes());
  EXPECT_EQ(r.physical_bytes(), 2 * r.schema().avg_row_bytes());
}

TEST(RelationTest, Slice) {
  Relation r("t", Schema({{"a", ValueType::kInt64}}));
  for (int64_t i = 0; i < 5; ++i) r.AppendIntRow({i * 10});
  Relation s = r.Slice({4, 0, 2});
  ASSERT_EQ(s.num_rows(), 3);
  EXPECT_EQ(s.GetInt(0, 0), 40);
  EXPECT_EQ(s.GetInt(1, 0), 0);
  EXPECT_EQ(s.GetInt(2, 0), 20);
}

TEST(PredicateTest, OpNames) {
  EXPECT_STREQ(ThetaOpName(ThetaOp::kLt), "<");
  EXPECT_STREQ(ThetaOpName(ThetaOp::kNe), "<>");
}

TEST(PredicateTest, FlipOp) {
  EXPECT_EQ(FlipOp(ThetaOp::kLt), ThetaOp::kGt);
  EXPECT_EQ(FlipOp(ThetaOp::kLe), ThetaOp::kGe);
  EXPECT_EQ(FlipOp(ThetaOp::kEq), ThetaOp::kEq);
  EXPECT_EQ(FlipOp(ThetaOp::kNe), ThetaOp::kNe);
  EXPECT_EQ(FlipOp(FlipOp(ThetaOp::kGe)), ThetaOp::kGe);
}

TEST(PredicateTest, IsInequality) {
  EXPECT_FALSE(IsInequality(ThetaOp::kEq));
  for (ThetaOp op : {ThetaOp::kLt, ThetaOp::kLe, ThetaOp::kGe, ThetaOp::kGt,
                     ThetaOp::kNe}) {
    EXPECT_TRUE(IsInequality(op));
  }
}

TEST(PredicateTest, EvalThetaIntAllOps) {
  EXPECT_TRUE(EvalThetaInt(1, ThetaOp::kLt, 2, 0));
  EXPECT_FALSE(EvalThetaInt(2, ThetaOp::kLt, 2, 0));
  EXPECT_TRUE(EvalThetaInt(2, ThetaOp::kLe, 2, 0));
  EXPECT_TRUE(EvalThetaInt(2, ThetaOp::kEq, 2, 0));
  EXPECT_TRUE(EvalThetaInt(2, ThetaOp::kGe, 2, 0));
  EXPECT_TRUE(EvalThetaInt(3, ThetaOp::kGt, 2, 0));
  EXPECT_TRUE(EvalThetaInt(1, ThetaOp::kNe, 2, 0));
}

TEST(PredicateTest, EvalThetaIntOffset) {
  // (1 + 3) > 3
  EXPECT_TRUE(EvalThetaInt(1, ThetaOp::kGt, 3, 3));
  // (1 + 1) > 3 fails
  EXPECT_FALSE(EvalThetaInt(1, ThetaOp::kGt, 3, 1));
}

TEST(PredicateTest, EvalThetaValuesWithOffset) {
  EXPECT_TRUE(EvalTheta(Value(int64_t{10}), ThetaOp::kLt,
                        Value(int64_t{12}), /*offset=*/1.5));
  EXPECT_FALSE(EvalTheta(Value(int64_t{11}), ThetaOp::kLt,
                         Value(int64_t{12}), /*offset=*/1.5));
}

TEST(PredicateTest, EvalThetaStrings) {
  EXPECT_TRUE(EvalTheta(Value(std::string("a")), ThetaOp::kLt,
                        Value(std::string("b"))));
  EXPECT_TRUE(EvalTheta(Value(std::string("a")), ThetaOp::kNe,
                        Value(std::string("b"))));
}

TEST(PredicateTest, OrientedForSwapsSidesConsistently) {
  // (R0.c0 + 5) < R1.c1  ==  (R1.c1 - 5) > R0.c0
  JoinCondition cond;
  cond.lhs = {0, 0};
  cond.op = ThetaOp::kLt;
  cond.rhs = {1, 1};
  cond.offset = 5.0;
  cond.id = 3;
  const JoinCondition flipped = cond.OrientedFor(1);
  EXPECT_EQ(flipped.lhs.relation, 1);
  EXPECT_EQ(flipped.rhs.relation, 0);
  EXPECT_EQ(flipped.op, ThetaOp::kGt);
  EXPECT_EQ(flipped.offset, -5.0);
  EXPECT_EQ(flipped.id, 3);
  // Semantics preserved for a concrete pair: lhs=2, rhs=8: (2+5)<8 true.
  EXPECT_TRUE(EvalTheta(Value(int64_t{2}), cond.op, Value(int64_t{8}),
                        cond.offset));
  EXPECT_TRUE(EvalTheta(Value(int64_t{8}), flipped.op, Value(int64_t{2}),
                        flipped.offset));
}

TEST(PredicateTest, ToStringIncludesOffset) {
  JoinCondition cond;
  cond.lhs = {0, 1};
  cond.op = ThetaOp::kGt;
  cond.rhs = {2, 3};
  cond.offset = 3.0;
  EXPECT_EQ(cond.ToString(), "R0.c1+3 > R2.c3");
}

TEST(RelationTest, GenerationChangesOnEveryMutation) {
  Relation rel("g", Schema({{"a", ValueType::kInt64}}));
  Relation other("o", Schema({{"a", ValueType::kInt64}}));
  // Distinct objects never share a generation (process-wide counter).
  EXPECT_NE(rel.generation(), other.generation());

  uint64_t last = rel.generation();
  auto expect_bumped = [&](const char* what) {
    EXPECT_NE(rel.generation(), last) << what;
    last = rel.generation();
  };
  ASSERT_TRUE(rel.AppendRow({Value(int64_t{1})}).ok());
  expect_bumped("AppendRow");
  rel.AppendIntRow({2});
  expect_bumped("AppendIntRow");
  ASSERT_TRUE(rel.AppendRows(other).ok());
  expect_bumped("AppendRows");
  rel.set_logical_rows(500);
  expect_bumped("set_logical_rows");
  // The stale-stats case: an in-place edit keeps num_rows but must not
  // keep the generation.
  const int64_t rows = rel.num_rows();
  ASSERT_TRUE(rel.SetCell(0, 0, Value(int64_t{42})).ok());
  EXPECT_EQ(rel.num_rows(), rows);
  expect_bumped("SetCell");
  EXPECT_EQ(rel.GetInt(0, 0), 42);

  // A read does not bump.
  (void)rel.Get(0, 0);
  EXPECT_EQ(rel.generation(), last);
  // A copy shares content, so it keeps the source's generation.
  const Relation copy = rel;
  EXPECT_EQ(copy.generation(), rel.generation());
}

TEST(RelationTest, SetCellValidatesRowColAndType) {
  Relation rel("s", Schema({{"i", ValueType::kInt64},
                            {"s", ValueType::kString}}));
  ASSERT_TRUE(
      rel.AppendRow({Value(int64_t{1}), Value(std::string("x"))}).ok());
  EXPECT_FALSE(rel.SetCell(1, 0, Value(int64_t{2})).ok());   // row range
  EXPECT_FALSE(rel.SetCell(0, 2, Value(int64_t{2})).ok());   // col range
  EXPECT_FALSE(rel.SetCell(0, 0, Value(std::string("y"))).ok());  // type
  EXPECT_FALSE(rel.SetCell(0, 1, Value(int64_t{2})).ok());   // type
  EXPECT_TRUE(rel.SetCell(0, 1, Value(std::string("y"))).ok());
  EXPECT_EQ(rel.GetString(0, 1), "y");
}

}  // namespace
}  // namespace mrtheta
