// Correctness tests for the distributed join executors: every operator is
// checked against the single-machine nested-loop oracle.

#include <algorithm>
#include <memory>
#include <numeric>
#include <utility>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/exec/hilbert_join.h"
#include "src/exec/merge_join.h"
#include "src/exec/naive_join.h"
#include "src/exec/pairwise_join.h"
#include "src/exec/theta_kernels.h"
#include "src/mapreduce/job_runner.h"
#include "src/mem/spill.h"
#include "src/relation/column_view.h"
#include "src/runtime/parallel_job_runner.h"
#include "src/runtime/thread_pool.h"

namespace mrtheta {
namespace {

RelationPtr MakeRel(const char* name, int64_t rows, int64_t key_range,
                    uint64_t seed) {
  auto rel = std::make_shared<Relation>(
      name, Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    rel->AppendIntRow({static_cast<int64_t>(rng.Uniform(key_range)),
                       static_cast<int64_t>(rng.Uniform(10))});
  }
  return rel;
}

bool SameRows(const Relation& a, const Relation& b) {
  if (a.num_rows() != b.num_rows()) return false;
  if (a.schema().num_columns() != b.schema().num_columns()) return false;
  const Relation sa = SortedByRows(a);
  const Relation sb = SortedByRows(b);
  for (int64_t r = 0; r < sa.num_rows(); ++r) {
    for (int c = 0; c < sa.schema().num_columns(); ++c) {
      if (sa.GetInt(r, c) != sb.GetInt(r, c)) return false;
    }
  }
  return true;
}

// ---- JoinSide / helpers ----

TEST(JoinSideTest, BaseAndIntermediateResolution) {
  RelationPtr base = MakeRel("b", 10, 100, 1);
  JoinSide side = JoinSide::ForBase(base, 3);
  EXPECT_TRUE(side.Covers(3));
  EXPECT_FALSE(side.Covers(0));
  EXPECT_EQ(side.BaseRow(7, 3), 7);

  auto inter = std::make_shared<Relation>(
      "i", Schema({{"rid_1", ValueType::kInt64},
                   {"rid_3", ValueType::kInt64}}));
  inter->AppendIntRow({5, 9});
  JoinSide is = JoinSide::ForIntermediate(inter, {1, 3});
  EXPECT_EQ(is.BaseRow(0, 1), 5);
  EXPECT_EQ(is.BaseRow(0, 3), 9);
}

TEST(JoinSideTest, ScaleFromLogicalRows) {
  RelationPtr base = MakeRel("b", 100, 100, 2);
  std::const_pointer_cast<Relation>(base)->set_logical_rows(5000);
  JoinSide side = JoinSide::ForBase(base, 0);
  EXPECT_DOUBLE_EQ(side.scale, 50.0);
}

TEST(IntermediateSchemaTest, WidthsAreMaterialized) {
  RelationPtr a = MakeRel("a", 1, 10, 3);
  RelationPtr b = MakeRel("b", 1, 10, 4);
  Schema s = MakeIntermediateSchema({0, 1}, {a, b});
  ASSERT_EQ(s.num_columns(), 2);
  EXPECT_EQ(s.column(0).name, "rid_0");
  EXPECT_EQ(s.column(0).avg_width, a->schema().avg_row_bytes());
}

TEST(EstimateDistinctTest, KeyLikeVsCategorical) {
  auto keys = std::make_shared<Relation>(
      "k", Schema({{"id", ValueType::kInt64}}));
  for (int64_t i = 0; i < 1000; ++i) keys->AppendIntRow({i});
  keys->set_logical_rows(100000);
  const ColumnDistinct kd = EstimateDistinct(*keys, 0);
  EXPECT_NEAR(kd.physical, 1000.0, 1.0);
  EXPECT_NEAR(kd.logical, 100000.0, 1.0);

  RelationPtr cat = MakeRel("c", 1000, 20, 5);
  std::const_pointer_cast<Relation>(cat)->set_logical_rows(100000);
  const ColumnDistinct cd = EstimateDistinct(*cat, 0);
  EXPECT_NEAR(cd.logical, 20.0, 1.0);
}

TEST(ProjectResultTest, ResolvesBaseValues) {
  RelationPtr base = MakeRel("b", 5, 100, 6);
  auto inter = std::make_shared<Relation>(
      "i", Schema({{"rid_0", ValueType::kInt64}}));
  inter->AppendIntRow({3});
  inter->AppendIntRow({1});
  const auto projected =
      ProjectResult(*inter, {0}, {base}, {{0, 0}, {0, 1}});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->num_rows(), 2);
  EXPECT_EQ(projected->GetInt(0, 0), base->GetInt(3, 0));
  EXPECT_EQ(projected->GetInt(1, 1), base->GetInt(1, 1));
}

TEST(ProjectResultTest, RejectsUncoveredBase) {
  RelationPtr base = MakeRel("b", 5, 100, 7);
  auto inter = std::make_shared<Relation>(
      "i", Schema({{"rid_0", ValueType::kInt64}}));
  EXPECT_FALSE(ProjectResult(*inter, {0}, {base}, {{1, 0}}).ok());
}

// ---- Hilbert multi-way join: parameterized oracle checks ----

struct HilbertCase {
  const char* name;
  int num_relations;
  int rows;
  int reduce_tasks;
  std::vector<JoinCondition> conditions;
};

class HilbertJoinOracleTest : public ::testing::TestWithParam<HilbertCase> {};

TEST_P(HilbertJoinOracleTest, MatchesNaiveJoin) {
  const HilbertCase& tc = GetParam();
  std::vector<RelationPtr> bases;
  std::vector<int> indices;
  MultiwayJoinJobSpec spec;
  for (int i = 0; i < tc.num_relations; ++i) {
    bases.push_back(MakeRel("r", tc.rows, 50, 100 + i));
    indices.push_back(i);
    spec.inputs.push_back(JoinSide::ForBase(bases.back(), i));
  }
  spec.base_relations = bases;
  spec.conditions = tc.conditions;
  spec.num_reduce_tasks = tc.reduce_tasks;

  const auto oracle = NaiveMultiwayJoin(bases, indices, tc.conditions);
  ASSERT_TRUE(oracle.ok());

  HilbertJoinPlanInfo info;
  const auto job = BuildHilbertJoinJob(spec, &info);
  ASSERT_TRUE(job.ok());
  const auto result = RunJobPhysically(*job);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(SameRows(*oracle, *result->output))
      << tc.name << ": hilbert " << result->output->num_rows()
      << " rows vs naive " << oracle->num_rows();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, HilbertJoinOracleTest,
    ::testing::Values(
        HilbertCase{"band_lt", 2, 150, 8,
                    {{{0, 0}, ThetaOp::kLt, {1, 0}, 0.0, 0}}},
        HilbertCase{"band_le_offset", 2, 150, 8,
                    {{{0, 0}, ThetaOp::kLe, {1, 0}, 5.0, 0}}},
        HilbertCase{"not_equal", 2, 100, 4,
                    {{{0, 1}, ThetaOp::kNe, {1, 1}, 0.0, 0}}},
        HilbertCase{"pure_eq", 2, 200, 8,
                    {{{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0}}},
        HilbertCase{"eq_plus_band", 2, 150, 16,
                    {{{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0},
                     {{0, 1}, ThetaOp::kGe, {1, 1}, 0.0, 1}}},
        HilbertCase{"chain3_bands", 3, 60, 8,
                    {{{0, 0}, ThetaOp::kLe, {1, 0}, 0.0, 0},
                     {{1, 1}, ThetaOp::kGt, {2, 1}, 0.0, 1}}},
        HilbertCase{"chain3_mixed", 3, 60, 16,
                    {{{0, 0}, ThetaOp::kLe, {1, 0}, 0.0, 0},
                     {{1, 0}, ThetaOp::kEq, {2, 0}, 0.0, 1},
                     {{1, 1}, ThetaOp::kEq, {2, 1}, 0.0, 2}}},
        HilbertCase{"cycle3", 3, 50, 8,
                    {{{0, 0}, ThetaOp::kLe, {1, 0}, 0.0, 0},
                     {{1, 1}, ThetaOp::kGe, {2, 1}, 0.0, 1},
                     {{2, 0}, ThetaOp::kNe, {0, 0}, 0.0, 2}}},
        HilbertCase{"chain4", 4, 30, 8,
                    {{{0, 0}, ThetaOp::kLt, {1, 0}, 0.0, 0},
                     {{1, 0}, ThetaOp::kLt, {2, 0}, 0.0, 1},
                     {{2, 1}, ThetaOp::kEq, {3, 1}, 0.0, 2}}},
        HilbertCase{"star_eq", 3, 100, 12,
                    {{{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0},
                     {{0, 0}, ThetaOp::kEq, {2, 0}, 0.0, 1}}}),
    [](const ::testing::TestParamInfo<HilbertCase>& param_info) {
      return param_info.param.name;
    });

TEST(HilbertJoinTest, SingleReducerStillCorrect) {
  RelationPtr a = MakeRel("a", 80, 20, 11);
  RelationPtr b = MakeRel("b", 80, 20, 12);
  MultiwayJoinJobSpec spec;
  spec.inputs = {JoinSide::ForBase(a, 0), JoinSide::ForBase(b, 1)};
  spec.base_relations = {a, b};
  spec.conditions = {{{0, 0}, ThetaOp::kGe, {1, 0}, 0.0, 0}};
  spec.num_reduce_tasks = 1;
  const auto job = BuildHilbertJoinJob(spec);
  ASSERT_TRUE(job.ok());
  const auto result = RunJobPhysically(*job);
  ASSERT_TRUE(result.ok());
  const auto oracle = NaiveMultiwayJoin({a, b}, {0, 1}, spec.conditions);
  EXPECT_TRUE(SameRows(*oracle, *result->output));
}

TEST(HilbertJoinTest, RejectsUncoveredCondition) {
  RelationPtr a = MakeRel("a", 10, 10, 13);
  RelationPtr b = MakeRel("b", 10, 10, 14);
  MultiwayJoinJobSpec spec;
  spec.inputs = {JoinSide::ForBase(a, 0), JoinSide::ForBase(b, 1)};
  spec.base_relations = {a, b};
  spec.conditions = {{{0, 0}, ThetaOp::kLt, {5, 0}, 0.0, 0}};
  EXPECT_FALSE(BuildHilbertJoinJob(spec).ok());
}

TEST(HilbertJoinTest, DuplicationShrinksWithEqualityFusion) {
  // Same 3 relations, once with a fused equality pair, once all-band:
  // fusion must emit fewer map records (smaller network volume).
  std::vector<RelationPtr> bases;
  for (int i = 0; i < 3; ++i) bases.push_back(MakeRel("r", 120, 40, 20 + i));
  auto run = [&](std::vector<JoinCondition> conds) {
    MultiwayJoinJobSpec spec;
    for (int i = 0; i < 3; ++i) {
      spec.inputs.push_back(JoinSide::ForBase(bases[i], i));
    }
    spec.base_relations = bases;
    spec.conditions = std::move(conds);
    spec.num_reduce_tasks = 32;
    const auto job = BuildHilbertJoinJob(spec);
    EXPECT_TRUE(job.ok());
    return RunJobPhysically(*job)->metrics.map_output_records_physical;
  };
  const int64_t with_eq =
      run({{{0, 0}, ThetaOp::kLe, {1, 0}, 0.0, 0},
           {{1, 0}, ThetaOp::kEq, {2, 0}, 0.0, 1}});
  const int64_t all_band =
      run({{{0, 0}, ThetaOp::kLe, {1, 0}, 0.0, 0},
           {{1, 0}, ThetaOp::kLe, {2, 0}, 0.0, 1}});
  EXPECT_LT(with_eq, all_band);
}

TEST(DimensionGroupingTest, BandOnlyKeepsAllDims) {
  const DimensionGrouping g = ComputeDimensionGrouping(
      {{0}, {1}, {2}}, {{{0, 0}, ThetaOp::kLt, {1, 0}, 0.0, 0},
                        {{1, 0}, ThetaOp::kLt, {2, 0}, 0.0, 1}});
  EXPECT_EQ(g.num_dims, 3);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(g.key_of_input[i].relation, -1);
}

TEST(DimensionGroupingTest, EqualityPairFuses) {
  const DimensionGrouping g = ComputeDimensionGrouping(
      {{0}, {1}, {2}}, {{{0, 0}, ThetaOp::kLt, {1, 0}, 0.0, 0},
                        {{1, 0}, ThetaOp::kEq, {2, 0}, 0.0, 1}});
  EXPECT_EQ(g.num_dims, 2);
  EXPECT_EQ(g.dim_of_input[1], g.dim_of_input[2]);
  EXPECT_NE(g.dim_of_input[0], g.dim_of_input[1]);
  EXPECT_EQ(g.key_of_input[1].relation, 1);
  EXPECT_EQ(g.key_of_input[2].relation, 2);
}

TEST(DimensionGroupingTest, OffsetEqualityDoesNotFuse) {
  const DimensionGrouping g = ComputeDimensionGrouping(
      {{0}, {1}}, {{{0, 0}, ThetaOp::kEq, {1, 0}, 3.0, 0}});
  EXPECT_EQ(g.num_dims, 2);
}

TEST(DimensionGroupingTest, StarOnSameKeyFusesAll) {
  const DimensionGrouping g = ComputeDimensionGrouping(
      {{0}, {1}, {2}}, {{{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0},
                        {{1, 0}, ThetaOp::kEq, {2, 0}, 0.0, 1}});
  EXPECT_EQ(g.num_dims, 1);
}

TEST(DimensionGroupingTest, LargestClassWins) {
  // orderkey class {1,2,3} and custkey class {0,1}: input 1 goes to the
  // larger class; 0 stays alone.
  const DimensionGrouping g = ComputeDimensionGrouping(
      {{0}, {1}, {2}, {3}},
      {{{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0},
       {{1, 1}, ThetaOp::kEq, {2, 1}, 0.0, 1},
       {{1, 1}, ThetaOp::kEq, {3, 1}, 0.0, 2}});
  EXPECT_EQ(g.num_dims, 2);
  EXPECT_EQ(g.dim_of_input[1], g.dim_of_input[2]);
  EXPECT_EQ(g.dim_of_input[1], g.dim_of_input[3]);
  EXPECT_NE(g.dim_of_input[0], g.dim_of_input[1]);
}

// ---- Pairwise joins ----

TEST(OneBucketThetaTest, MatchesNaive) {
  RelationPtr a = MakeRel("a", 120, 30, 31);
  RelationPtr b = MakeRel("b", 90, 30, 32);
  PairwiseJoinJobSpec spec;
  spec.left = JoinSide::ForBase(a, 0);
  spec.right = JoinSide::ForBase(b, 1);
  spec.base_relations = {a, b};
  spec.conditions = {{{0, 0}, ThetaOp::kGt, {1, 0}, 0.0, 0},
                     {{0, 1}, ThetaOp::kNe, {1, 1}, 0.0, 1}};
  spec.num_reduce_tasks = 12;
  const auto job = BuildOneBucketThetaJob(spec);
  ASSERT_TRUE(job.ok());
  const auto result = RunJobPhysically(*job);
  ASSERT_TRUE(result.ok());
  const auto oracle = NaiveMultiwayJoin({a, b}, {0, 1}, spec.conditions);
  EXPECT_TRUE(SameRows(*oracle, *result->output));
}

TEST(OneBucketThetaTest, EveryPairMeetsExactlyOnce) {
  // With a tautological condition the output is the full cross product,
  // each pair exactly once.
  RelationPtr a = MakeRel("a", 40, 10, 33);
  RelationPtr b = MakeRel("b", 30, 10, 34);
  PairwiseJoinJobSpec spec;
  spec.left = JoinSide::ForBase(a, 0);
  spec.right = JoinSide::ForBase(b, 1);
  spec.base_relations = {a, b};
  spec.conditions = {{{0, 0}, ThetaOp::kGe, {1, 0}, 1000.0, 0}};  // always
  spec.num_reduce_tasks = 7;
  const auto job = BuildOneBucketThetaJob(spec);
  ASSERT_TRUE(job.ok());
  const auto result = RunJobPhysically(*job);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output->num_rows(), 40 * 30);
}

// Every theta operator through 1-Bucket-Theta, against the oracle.
class OneBucketOpTest : public ::testing::TestWithParam<ThetaOp> {};

TEST_P(OneBucketOpTest, MatchesNaiveForOp) {
  RelationPtr a = MakeRel("a", 90, 25, 61);
  RelationPtr b = MakeRel("b", 70, 25, 62);
  PairwiseJoinJobSpec spec;
  spec.left = JoinSide::ForBase(a, 0);
  spec.right = JoinSide::ForBase(b, 1);
  spec.base_relations = {a, b};
  spec.conditions = {{{0, 0}, GetParam(), {1, 0}, 0.0, 0}};
  spec.num_reduce_tasks = 9;
  const auto job = BuildOneBucketThetaJob(spec);
  ASSERT_TRUE(job.ok());
  const auto result = RunJobPhysically(*job);
  ASSERT_TRUE(result.ok());
  const auto oracle = NaiveMultiwayJoin({a, b}, {0, 1}, spec.conditions);
  EXPECT_TRUE(SameRows(*oracle, *result->output));
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OneBucketOpTest,
    ::testing::Values(ThetaOp::kLt, ThetaOp::kLe, ThetaOp::kEq,
                      ThetaOp::kGe, ThetaOp::kGt, ThetaOp::kNe),
    [](const ::testing::TestParamInfo<ThetaOp>& param_info) {
      switch (param_info.param) {
        case ThetaOp::kLt: return "lt";
        case ThetaOp::kLe: return "le";
        case ThetaOp::kEq: return "eq";
        case ThetaOp::kGe: return "ge";
        case ThetaOp::kGt: return "gt";
        case ThetaOp::kNe: return "ne";
      }
      return "unknown";
    });

TEST(EquiJoinTest, StringKeys) {
  auto make_named = [](const char* name, int rows, uint64_t seed) {
    auto rel = std::make_shared<Relation>(
        name, Schema({{"city", ValueType::kString},
                      {"v", ValueType::kInt64}}));
    Rng rng(seed);
    const char* cities[] = {"hk", "sz", "bj", "sh", "gz"};
    for (int i = 0; i < rows; ++i) {
      std::vector<Value> row = {Value(std::string(cities[rng.Uniform(5)])),
                                Value(rng.UniformInt(0, 9))};
      EXPECT_TRUE(rel->AppendRow(row).ok());
    }
    return rel;
  };
  RelationPtr a = make_named("a", 60, 71);
  RelationPtr b = make_named("b", 50, 72);
  PairwiseJoinJobSpec spec;
  spec.left = JoinSide::ForBase(a, 0);
  spec.right = JoinSide::ForBase(b, 1);
  spec.base_relations = {a, b};
  spec.conditions = {{{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0}};
  spec.num_reduce_tasks = 4;
  const auto job = BuildEquiJoinJob(spec);
  ASSERT_TRUE(job.ok());
  const auto result = RunJobPhysically(*job);
  ASSERT_TRUE(result.ok());
  const auto oracle = NaiveMultiwayJoin({a, b}, {0, 1}, spec.conditions);
  EXPECT_TRUE(SameRows(*oracle, *result->output));
}

TEST(ChooseBucketGridTest, ShapesFollowCardinalities) {
  // |L| >> |R|: replicate R across many row-bands.
  const BucketGrid g = ChooseBucketGrid(1e6, 1e3, 16);
  EXPECT_GT(g.rows, g.cols);
  EXPECT_LE(g.rows * g.cols, 16);
  const BucketGrid sq = ChooseBucketGrid(1e5, 1e5, 16);
  EXPECT_EQ(sq.rows, sq.cols);
}

TEST(EquiJoinTest, MatchesNaiveWithResidual) {
  RelationPtr a = MakeRel("a", 200, 25, 35);
  RelationPtr b = MakeRel("b", 150, 25, 36);
  PairwiseJoinJobSpec spec;
  spec.left = JoinSide::ForBase(a, 0);
  spec.right = JoinSide::ForBase(b, 1);
  spec.base_relations = {a, b};
  spec.conditions = {{{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0},
                     {{0, 1}, ThetaOp::kLe, {1, 1}, 0.0, 1}};
  spec.num_reduce_tasks = 8;
  const auto job = BuildEquiJoinJob(spec);
  ASSERT_TRUE(job.ok());
  const auto result = RunJobPhysically(*job);
  ASSERT_TRUE(result.ok());
  const auto oracle = NaiveMultiwayJoin({a, b}, {0, 1}, spec.conditions);
  EXPECT_TRUE(SameRows(*oracle, *result->output));
}

TEST(EquiJoinTest, RequiresOffsetFreeEquality) {
  RelationPtr a = MakeRel("a", 10, 10, 37);
  RelationPtr b = MakeRel("b", 10, 10, 38);
  PairwiseJoinJobSpec spec;
  spec.left = JoinSide::ForBase(a, 0);
  spec.right = JoinSide::ForBase(b, 1);
  spec.base_relations = {a, b};
  spec.conditions = {{{0, 0}, ThetaOp::kLt, {1, 0}, 0.0, 0}};
  EXPECT_FALSE(BuildEquiJoinJob(spec).ok());
  spec.conditions = {{{0, 0}, ThetaOp::kEq, {1, 0}, 2.0, 0}};
  EXPECT_FALSE(BuildEquiJoinJob(spec).ok());
}

TEST(PairwiseTest, RejectsConditionNotConnectingSides) {
  RelationPtr a = MakeRel("a", 10, 10, 39);
  RelationPtr b = MakeRel("b", 10, 10, 40);
  PairwiseJoinJobSpec spec;
  spec.left = JoinSide::ForBase(a, 0);
  spec.right = JoinSide::ForBase(b, 1);
  spec.base_relations = {a, b};
  spec.conditions = {{{0, 0}, ThetaOp::kLt, {0, 1}, 0.0, 0}};
  EXPECT_FALSE(BuildOneBucketThetaJob(spec).ok());
}

// ---- Merge ----

TEST(MergeJoinTest, RecombinesPartialResults) {
  // Join a-b and b-c separately, merge on shared b rids; compare with the
  // 3-way oracle.
  RelationPtr a = MakeRel("a", 60, 15, 41);
  RelationPtr b = MakeRel("b", 60, 15, 42);
  RelationPtr c = MakeRel("c", 60, 15, 43);
  const std::vector<RelationPtr> bases = {a, b, c};
  JoinCondition ab{{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0};
  JoinCondition bc{{1, 1}, ThetaOp::kLe, {2, 1}, 0.0, 1};

  auto run_pair = [&](JoinSide l, JoinSide r, JoinCondition cond) {
    PairwiseJoinJobSpec spec;
    spec.left = l;
    spec.right = r;
    spec.base_relations = bases;
    spec.conditions = {cond};
    spec.num_reduce_tasks = 4;
    const auto job = cond.op == ThetaOp::kEq ? BuildEquiJoinJob(spec)
                                             : BuildOneBucketThetaJob(spec);
    EXPECT_TRUE(job.ok());
    return RunJobPhysically(*job)->output;
  };
  auto ab_out = run_pair(JoinSide::ForBase(a, 0), JoinSide::ForBase(b, 1),
                         ab);
  auto bc_out = run_pair(JoinSide::ForBase(b, 1), JoinSide::ForBase(c, 2),
                         bc);

  MergeJobSpec merge;
  merge.left = JoinSide::ForIntermediate(ab_out, {0, 1});
  merge.right = JoinSide::ForIntermediate(bc_out, {1, 2});
  merge.base_relations = bases;
  merge.num_reduce_tasks = 4;
  const auto job = BuildMergeJob(merge);
  ASSERT_TRUE(job.ok());
  const auto merged = RunJobPhysically(*job);
  ASSERT_TRUE(merged.ok());

  const auto oracle = NaiveMultiwayJoin(bases, {0, 1, 2}, {ab, bc});
  EXPECT_TRUE(SameRows(*oracle, *merged->output));
}

TEST(MergeJoinTest, RequiresSharedBase) {
  RelationPtr a = MakeRel("a", 5, 5, 44);
  auto left = std::make_shared<Relation>(
      "l", Schema({{"rid_0", ValueType::kInt64}}));
  auto right = std::make_shared<Relation>(
      "r", Schema({{"rid_1", ValueType::kInt64}}));
  MergeJobSpec spec;
  spec.left = JoinSide::ForIntermediate(left, {0});
  spec.right = JoinSide::ForIntermediate(right, {1});
  spec.base_relations = {a, a};
  EXPECT_FALSE(BuildMergeJob(spec).ok());
}

TEST(SharedBasesTest, Intersection) {
  auto rel = std::make_shared<Relation>(
      "x", Schema({{"rid_0", ValueType::kInt64}}));
  JoinSide a = JoinSide::ForIntermediate(rel, {0, 1, 2});
  JoinSide b = JoinSide::ForIntermediate(rel, {2, 3, 0});
  EXPECT_EQ(SharedBases(a, b), (std::vector<int>{0, 2}));
}

// ---- Column pruning: widths, payloads and byte-identical execution ----

TEST(ColumnPruningTest, PrunedIntermediateWidths) {
  RelationPtr a = MakeRel("a", 1, 10, 51);  // 2 cols: 4 + 16 = 20 B/row
  RelationPtr b = MakeRel("b", 1, 10, 52);
  const Schema full = MakeIntermediateSchema({0, 1}, {a, b});
  EXPECT_EQ(full.column(0).avg_width, a->schema().avg_row_bytes());

  // Base 0 keeps column 1 only; base 1 keeps nothing (rid-only floor).
  const Schema pruned =
      MakeIntermediateSchema({0, 1}, {a, b}, {{0, {1}}, {1, {}}});
  EXPECT_EQ(pruned.column(0).avg_width, 4 + 8);
  EXPECT_EQ(pruned.column(1).avg_width, 8);
  EXPECT_LT(pruned.avg_row_bytes(), full.avg_row_bytes());
}

TEST(ColumnPruningTest, SideShuffleBytesCombinesConditionsAndRequired) {
  auto wide = std::make_shared<Relation>(
      "w", Schema({{"c0", ValueType::kInt64},
                   {"c1", ValueType::kInt64},
                   {"c2", ValueType::kInt64},
                   {"pad", ValueType::kString, 40}}));
  ASSERT_TRUE(wide->AppendRow({Value(int64_t{1}), Value(int64_t{2}),
                               Value(int64_t{3}), Value(std::string("x"))})
                  .ok());
  const RelationPtr w = wide;
  const JoinSide side = JoinSide::ForBase(w, 0);
  const std::vector<JoinCondition> conds = {
      {{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0}};

  // Pruning off (empty required): full row width.
  EXPECT_EQ(SideShuffleBytes(side, conds, {}, {w, w}),
            w->schema().avg_row_bytes());
  // Pruning on: the job's own condition column (c0) plus the downstream
  // requirement (c2) — never the untouched c1 or the 40-byte pad.
  EXPECT_EQ(SideShuffleBytes(side, conds, {{0, {2}}, {1, {}}}, {w, w}),
            4 + 8 + 8);
  // Intermediate sides ship their (already pruned) schema row.
  auto inter = std::make_shared<Relation>(
      "i", Schema({{"rid_0", ValueType::kInt64, 12}}));
  const JoinSide is = JoinSide::ForIntermediate(inter, {0});
  EXPECT_EQ(SideShuffleBytes(is, conds, {{0, {2}}}, {w, w}),
            inter->schema().avg_row_bytes());
}

// Wide 4-column relation: conditions touch c0/c1, the projection keeps
// c2, and the 40-byte pad column is never referenced — the shape column
// pruning exists for.
RelationPtr MakeWideRel(const char* name, int64_t rows, int64_t key_range,
                        uint64_t seed) {
  auto rel = std::make_shared<Relation>(
      name, Schema({{"c0", ValueType::kInt64},
                    {"c1", ValueType::kInt64},
                    {"c2", ValueType::kInt64},
                    {"pad", ValueType::kString, 40}}));
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(rel->AppendRow({Value(static_cast<int64_t>(
                                    rng.Uniform(key_range))),
                                Value(static_cast<int64_t>(rng.Uniform(10))),
                                Value(static_cast<int64_t>(rng.Uniform(100))),
                                Value(std::string("padpadpad"))})
                    .ok());
  }
  return rel;
}

void ExpectIdenticalOutputs(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.schema().num_columns(), b.schema().num_columns());
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.schema().num_columns(); ++c) {
      ASSERT_EQ(a.GetInt(r, c), b.GetInt(r, c)) << "row " << r;
    }
  }
}

// The pruning contract, per operator: annotating a builder spec with
// required columns changes ONLY byte accounting — rows, row order,
// physical record counts and comparison charges are untouched, while the
// shuffle and output volumes shrink.
void CheckPrunedMatchesFullWidth(
    const StatusOr<MapReduceJobSpec>& full_job,
    const StatusOr<MapReduceJobSpec>& pruned_job) {
  ASSERT_TRUE(full_job.ok()) << full_job.status().ToString();
  ASSERT_TRUE(pruned_job.ok()) << pruned_job.status().ToString();
  const auto full = RunJobPhysically(*full_job);
  const auto pruned = RunJobPhysically(*pruned_job);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(pruned.ok());

  ExpectIdenticalOutputs(*full->output, *pruned->output);
  const JobMeasurement& fm = full->metrics;
  const JobMeasurement& pm = pruned->metrics;
  EXPECT_EQ(fm.input_bytes_logical, pm.input_bytes_logical);
  EXPECT_EQ(fm.map_output_records_physical, pm.map_output_records_physical);
  EXPECT_EQ(fm.output_rows_physical, pm.output_rows_physical);
  EXPECT_EQ(fm.output_rows_logical, pm.output_rows_logical);
  EXPECT_EQ(fm.reduce_comparisons_logical, pm.reduce_comparisons_logical);
  EXPECT_LT(pm.output_bytes_logical, fm.output_bytes_logical);
  ASSERT_EQ(fm.reduce_input_bytes_logical.size(),
            pm.reduce_input_bytes_logical.size());
  for (size_t t = 0; t < fm.reduce_input_bytes_logical.size(); ++t) {
    EXPECT_LE(pm.reduce_input_bytes_logical[t],
              fm.reduce_input_bytes_logical[t]);
  }
  if (fm.map_output_records_physical > 0) {
    EXPECT_LT(pm.map_output_bytes_logical, fm.map_output_bytes_logical);
  }
}

TEST(PruningDifferentialTest, HilbertJobPrunedMatchesFullWidth) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(6100 + seed);
    RelationPtr a = MakeWideRel("a", 30 + rng.Uniform(40), 8, 610 + seed);
    RelationPtr b = MakeWideRel("b", 30 + rng.Uniform(40), 8, 620 + seed);
    RelationPtr c = MakeWideRel("c", 30 + rng.Uniform(40), 8, 630 + seed);
    MultiwayJoinJobSpec spec;
    spec.inputs = {JoinSide::ForBase(a, 0), JoinSide::ForBase(b, 1),
                   JoinSide::ForBase(c, 2)};
    spec.base_relations = {a, b, c};
    spec.conditions = {{{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0},
                       {{1, 1}, ThetaOp::kLe, {2, 1}, 0.0, 1}};
    spec.num_reduce_tasks = 1 + static_cast<int>(rng.Uniform(8));
    const auto full = BuildHilbertJoinJob(spec);
    spec.output_columns = {{0, {2}}, {1, {2}}, {2, {2}}};
    const auto pruned = BuildHilbertJoinJob(spec);
    CheckPrunedMatchesFullWidth(full, pruned);
  }
}

TEST(PruningDifferentialTest, PairwiseJobsPrunedMatchFullWidth) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(6400 + seed);
    RelationPtr a = MakeWideRel("a", 30 + rng.Uniform(50), 10, 640 + seed);
    RelationPtr b = MakeWideRel("b", 30 + rng.Uniform(50), 10, 650 + seed);
    PairwiseJoinJobSpec spec;
    spec.left = JoinSide::ForBase(a, 0);
    spec.right = JoinSide::ForBase(b, 1);
    spec.base_relations = {a, b};
    spec.num_reduce_tasks = 1 + static_cast<int>(rng.Uniform(6));

    // Equi-join (hash repartition).
    spec.conditions = {{{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0},
                       {{0, 1}, ThetaOp::kLe, {1, 1}, 0.0, 1}};
    const auto equi_full = BuildEquiJoinJob(spec);
    spec.output_columns = {{0, {2}}, {1, {2}}};
    const auto equi_pruned = BuildEquiJoinJob(spec);
    CheckPrunedMatchesFullWidth(equi_full, equi_pruned);

    // 1-Bucket-Theta (pure inequality).
    spec.output_columns.clear();
    spec.conditions = {{{0, 1}, ThetaOp::kLt, {1, 1}, 0.0, 0}};
    const auto theta_full = BuildOneBucketThetaJob(spec);
    spec.output_columns = {{0, {2}}, {1, {2}}};
    const auto theta_pruned = BuildOneBucketThetaJob(spec);
    CheckPrunedMatchesFullWidth(theta_full, theta_pruned);
  }
}

TEST(PruningDifferentialTest, MergeJobPrunedMatchesFullWidth) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(6700 + seed);
    RelationPtr a = MakeWideRel("a", 40, 6, 670 + seed);
    RelationPtr b = MakeWideRel("b", 40, 6, 680 + seed);
    RelationPtr c = MakeWideRel("c", 40, 6, 690 + seed);
    const std::vector<RelationPtr> bases = {a, b, c};
    auto run_pair = [&](JoinSide l, JoinSide r, JoinCondition cond) {
      PairwiseJoinJobSpec spec;
      spec.left = l;
      spec.right = r;
      spec.base_relations = bases;
      spec.conditions = {cond};
      spec.num_reduce_tasks = 3;
      const auto job = cond.op == ThetaOp::kEq
                           ? BuildEquiJoinJob(spec)
                           : BuildOneBucketThetaJob(spec);
      EXPECT_TRUE(job.ok());
      return RunJobPhysically(*job)->output;
    };
    auto ab = run_pair(JoinSide::ForBase(a, 0), JoinSide::ForBase(b, 1),
                       {{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0});
    auto bc = run_pair(JoinSide::ForBase(b, 1), JoinSide::ForBase(c, 2),
                       {{1, 1}, ThetaOp::kLe, {2, 1}, 0.0, 1});
    MergeJobSpec merge;
    merge.left = JoinSide::ForIntermediate(ab, {0, 1});
    merge.right = JoinSide::ForIntermediate(bc, {1, 2});
    merge.base_relations = bases;
    merge.num_reduce_tasks = 1 + static_cast<int>(rng.Uniform(4));
    const auto full = BuildMergeJob(merge);
    merge.output_columns = {{0, {2}}, {1, {}}, {2, {2}}};
    const auto pruned = BuildMergeJob(merge);
    // Merge shuffles only rids (identical both ways); the pruned output
    // schema still shrinks the materialized intermediate.
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(pruned.ok());
    const auto f = RunJobPhysically(*full);
    const auto p = RunJobPhysically(*pruned);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(p.ok());
    ExpectIdenticalOutputs(*f->output, *p->output);
    EXPECT_EQ(f->metrics.map_output_bytes_logical,
              p->metrics.map_output_bytes_logical);
    EXPECT_LT(p->metrics.output_bytes_logical,
              f->metrics.output_bytes_logical);
  }
}

// ---- Selection pushdown: map-side filters vs the filtered oracle ----

TEST(FilterPushdownTest, CompiledRowFilterTypedPaths) {
  auto rel = std::make_shared<Relation>(
      "f", Schema({{"i", ValueType::kInt64},
                   {"d", ValueType::kDouble},
                   {"s", ValueType::kString}}));
  ASSERT_TRUE(rel->AppendRow({Value(int64_t{5}), Value(1.5),
                              Value(std::string("keep"))})
                  .ok());
  ASSERT_TRUE(rel->AppendRow({Value(int64_t{9}), Value(2.5),
                              Value(std::string("drop"))})
                  .ok());
  const RelationPtr r = rel;
  // No filters on this base -> nullptr (no per-row overhead).
  EXPECT_EQ(CompiledRowFilter::CompileFor(0, {}, r), nullptr);
  EXPECT_EQ(CompiledRowFilter::CompileFor(
                0, {{{1, 0}, ThetaOp::kLe, Value(int64_t{5}), 0.0}}, r),
            nullptr);

  const std::vector<SelectionFilter> filters = {
      {{0, 0}, ThetaOp::kLe, Value(int64_t{6}), 0.0},       // i <= 6
      {{0, 1}, ThetaOp::kLt, Value(2.0), 0.0},              // d < 2.0
      {{0, 2}, ThetaOp::kEq, Value(std::string("keep")), 0.0}};
  const auto compiled = CompiledRowFilter::CompileFor(0, filters, r);
  ASSERT_NE(compiled, nullptr);
  EXPECT_EQ(compiled->num_predicates(), 3);
  EXPECT_TRUE(compiled->Passes(0));
  EXPECT_FALSE(compiled->Passes(1));

  // Offset folds into the comparison: (i + 2) > 10 keeps only row 1.
  const auto offset = CompiledRowFilter::CompileFor(
      0, {{{0, 0}, ThetaOp::kGt, Value(int64_t{10}), 2.0}}, r);
  ASSERT_NE(offset, nullptr);
  EXPECT_FALSE(offset->Passes(0));
  EXPECT_TRUE(offset->Passes(1));
}

TEST(FilterPushdownTest, MapSideFiltersMatchFilteredOracle) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(7300 + seed);
    RelationPtr a = MakeRel("a", 40 + rng.Uniform(40), 12, 730 + seed);
    RelationPtr b = MakeRel("b", 40 + rng.Uniform(40), 12, 740 + seed);
    const std::vector<SelectionFilter> filters = {
        {{0, 1}, ThetaOp::kLe, Value(int64_t{rng.UniformInt(2, 7)}), 0.0},
        {{1, 0}, ThetaOp::kGe, Value(int64_t{rng.UniformInt(1, 5)}), 0.0}};
    const std::vector<JoinCondition> conds = {
        {{0, 0}, ThetaOp::kLe, {1, 0}, 0.0, 0}};
    const auto oracle = NaiveMultiwayJoin({a, b}, {0, 1}, conds, filters);
    ASSERT_TRUE(oracle.ok());
    const auto unfiltered = NaiveMultiwayJoin({a, b}, {0, 1}, conds);
    ASSERT_TRUE(unfiltered.ok());
    // The filters must actually bite for this to test anything.
    ASSERT_LT(oracle->num_rows(), unfiltered->num_rows());

    JoinSide left = JoinSide::ForBase(a, 0);
    left.filter = CompiledRowFilter::CompileFor(0, filters, a);
    JoinSide right = JoinSide::ForBase(b, 1);
    right.filter = CompiledRowFilter::CompileFor(1, filters, b);
    ASSERT_NE(left.filter, nullptr);
    ASSERT_NE(right.filter, nullptr);

    // 1-Bucket-Theta with map-side filters.
    PairwiseJoinJobSpec pw;
    pw.left = left;
    pw.right = right;
    pw.base_relations = {a, b};
    pw.conditions = conds;
    pw.num_reduce_tasks = 1 + static_cast<int>(rng.Uniform(6));
    const auto pw_job = BuildOneBucketThetaJob(pw);
    ASSERT_TRUE(pw_job.ok());
    const auto pw_result = RunJobPhysically(*pw_job);
    ASSERT_TRUE(pw_result.ok());
    EXPECT_TRUE(SameRows(*oracle, *pw_result->output)) << "seed=" << seed;

    // Hilbert multi-way with map-side filters.
    MultiwayJoinJobSpec mw;
    mw.inputs = {left, right};
    mw.base_relations = {a, b};
    mw.conditions = conds;
    mw.num_reduce_tasks = 1 + static_cast<int>(rng.Uniform(8));
    const auto mw_job = BuildHilbertJoinJob(mw);
    ASSERT_TRUE(mw_job.ok());
    const auto mw_result = RunJobPhysically(*mw_job);
    ASSERT_TRUE(mw_result.ok());
    EXPECT_TRUE(SameRows(*oracle, *mw_result->output)) << "seed=" << seed;
  }
}

TEST(FilterPushdownTest, SkewDetectionSamplesPostFilterDistribution) {
  // A hot equality key whose tuples the filter drops must not earn a
  // heavy-value reducer grid: the grid would starve the residual tasks
  // for tuples that never reach any reducer.
  auto make_skewed = [](const char* name, uint64_t seed) {
    auto rel = std::make_shared<Relation>(
        name, Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}));
    Rng rng(seed);
    for (int64_t i = 0; i < 4000; ++i) {
      // Key 7 holds ~60% of the rows.
      const int64_t k = rng.Bernoulli(0.6) ? 7 : rng.UniformInt(100, 160);
      rel->AppendIntRow({k, rng.UniformInt(0, 9)});
    }
    return rel;
  };
  RelationPtr a = make_skewed("a", 771);
  RelationPtr b = make_skewed("b", 772);
  MultiwayJoinJobSpec spec;
  spec.inputs = {JoinSide::ForBase(a, 0), JoinSide::ForBase(b, 1)};
  spec.base_relations = {a, b};
  spec.conditions = {{{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0}};
  spec.num_reduce_tasks = 16;
  spec.skew_handling = SkewHandling::kForce;

  HilbertJoinPlanInfo unfiltered_info;
  ASSERT_TRUE(BuildHilbertJoinJob(spec, &unfiltered_info).ok());
  ASSERT_FALSE(unfiltered_info.skew.groups.empty());

  // Filter out the hot key on both sides: detection must see the
  // post-selection (uniform) distribution and split nothing.
  const std::vector<SelectionFilter> filters = {
      {{0, 0}, ThetaOp::kNe, Value(int64_t{7}), 0.0},
      {{1, 0}, ThetaOp::kNe, Value(int64_t{7}), 0.0}};
  spec.inputs[0].filter = CompiledRowFilter::CompileFor(0, filters, a);
  spec.inputs[1].filter = CompiledRowFilter::CompileFor(1, filters, b);
  HilbertJoinPlanInfo filtered_info;
  const auto job = BuildHilbertJoinJob(spec, &filtered_info);
  ASSERT_TRUE(job.ok());
  EXPECT_TRUE(filtered_info.skew.groups.empty());

  const auto oracle =
      NaiveMultiwayJoin({a, b}, {0, 1}, spec.conditions, filters);
  ASSERT_TRUE(oracle.ok());
  const auto result = RunJobPhysically(*job);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(SameRows(*oracle, *result->output));
}

TEST(FilterPushdownTest, EquiJoinFiltersShrinkShuffleNotInput) {
  RelationPtr a = MakeRel("a", 200, 20, 751);
  RelationPtr b = MakeRel("b", 200, 20, 752);
  const std::vector<JoinCondition> conds = {
      {{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0}};
  PairwiseJoinJobSpec spec;
  spec.left = JoinSide::ForBase(a, 0);
  spec.right = JoinSide::ForBase(b, 1);
  spec.base_relations = {a, b};
  spec.conditions = conds;
  spec.num_reduce_tasks = 4;
  const auto plain = RunJobPhysically(*BuildEquiJoinJob(spec));
  ASSERT_TRUE(plain.ok());

  const std::vector<SelectionFilter> filters = {
      {{0, 1}, ThetaOp::kLe, Value(int64_t{4}), 0.0}};
  spec.left.filter = CompiledRowFilter::CompileFor(0, filters, a);
  const auto filtered = RunJobPhysically(*BuildEquiJoinJob(spec));
  ASSERT_TRUE(filtered.ok());

  const auto oracle = NaiveMultiwayJoin({a, b}, {0, 1}, conds, filters);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(SameRows(*oracle, *filtered->output));
  // Scans still read the full relation; only the shuffle shrinks.
  EXPECT_EQ(filtered->metrics.input_bytes_logical,
            plain->metrics.input_bytes_logical);
  EXPECT_LT(filtered->metrics.map_output_bytes_logical,
            plain->metrics.map_output_bytes_logical);
  EXPECT_LT(filtered->metrics.map_output_records_physical,
            plain->metrics.map_output_records_physical);
}

// ---- Sort-based kernels: randomized differential vs nested-loop oracle ----

// One-column relation of the given type; a small domain makes duplicate
// keys the common case.
RelationPtr MakeTypedRel(ValueType type, int64_t rows, int64_t domain,
                         uint64_t seed) {
  auto rel =
      std::make_shared<Relation>("t", Schema({{"k", type}}));
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    std::vector<Value> row;
    switch (type) {
      case ValueType::kInt64:
        row.push_back(Value(rng.UniformInt(-domain, domain)));
        break;
      case ValueType::kDouble:
        // Half-integral values: exercises exact ties across the domain.
        row.push_back(
            Value(static_cast<double>(rng.UniformInt(-domain, domain)) * 0.5));
        break;
      case ValueType::kString:
        row.push_back(Value("s" + std::to_string(rng.Uniform(domain + 1))));
        break;
    }
    EXPECT_TRUE(rel->AppendRow(row).ok());
  }
  return rel;
}

// All (lrow, rrow) pairs satisfying cond, via the boxed per-pair reference
// path (Relation::Get + EvalTheta) — deliberately independent of the
// compiled/sort-based code under test.
std::vector<std::pair<int64_t, int64_t>> NestedLoopReference(
    const JoinCondition& cond, const Relation& lrel, const Relation& rrel) {
  std::vector<std::pair<int64_t, int64_t>> out;
  for (int64_t l = 0; l < lrel.num_rows(); ++l) {
    for (int64_t r = 0; r < rrel.num_rows(); ++r) {
      if (EvalTheta(lrel.Get(l, cond.lhs.column), cond.op,
                    rrel.Get(r, cond.rhs.column), cond.offset)) {
        out.emplace_back(l, r);
      }
    }
  }
  return out;
}

TEST(KernelDifferentialTest, SortAndCompiledKernelsMatchNaiveReference) {
  constexpr ThetaOp kOps[] = {ThetaOp::kLt, ThetaOp::kLe, ThetaOp::kEq,
                              ThetaOp::kGe, ThetaOp::kGt, ThetaOp::kNe};
  // Type pairings: all three ValueTypes plus the mixed-numeric domain.
  const std::pair<ValueType, ValueType> kTypes[] = {
      {ValueType::kInt64, ValueType::kInt64},
      {ValueType::kDouble, ValueType::kDouble},
      {ValueType::kString, ValueType::kString},
      {ValueType::kInt64, ValueType::kDouble},
  };
  int cases = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(9000 + seed);
    for (const auto& [ltype, rtype] : kTypes) {
      const ThetaOp op = kOps[rng.Uniform(6)];
      // Row counts include empty sides; domains stay tiny so duplicate
      // keys and all-equal columns occur regularly.
      const int64_t lrows = rng.Uniform(40);
      const int64_t rrows = rng.Uniform(40);
      const int64_t domain = 1 + static_cast<int64_t>(rng.Uniform(12));
      double offset = 0.0;
      const bool strings = ltype == ValueType::kString;
      if (!strings && rng.Bernoulli(0.5)) {
        offset = static_cast<double>(rng.UniformInt(-3, 3));
        if (rng.Bernoulli(0.3)) offset += 0.5;
      }
      RelationPtr lrel = MakeTypedRel(ltype, lrows, domain, 100 + seed * 7);
      RelationPtr rrel = MakeTypedRel(rtype, rrows, domain, 200 + seed * 13);
      JoinCondition cond{{0, 0}, op, {1, 0}, offset, 0};

      const auto expected = NestedLoopReference(cond, *lrel, *rrel);

      // Compiled predicate: per-pair differential.
      const CompiledPredicate pred =
          CompiledPredicate::Compile(cond, *lrel, *rrel);
      std::vector<std::pair<int64_t, int64_t>> compiled;
      for (int64_t l = 0; l < lrel->num_rows(); ++l) {
        for (int64_t r = 0; r < rrel->num_rows(); ++r) {
          if (pred.Eval(l, r)) compiled.emplace_back(l, r);
        }
      }
      EXPECT_EQ(compiled, expected)
          << "compiled predicate diverged: " << cond.ToString() << " "
          << ValueTypeName(ltype) << "/" << ValueTypeName(rtype)
          << " seed=" << seed;

      // Sort-based kernel over the full row sets.
      std::vector<int64_t> lidx(lrel->num_rows()), ridx(rrel->num_rows());
      std::iota(lidx.begin(), lidx.end(), 0);
      std::iota(ridx.begin(), ridx.end(), 0);
      std::vector<std::pair<int64_t, int64_t>> sorted_pairs;
      const bool applied = SortJoinRowSets(
          cond, *lrel, lidx, *rrel, ridx,
          [&](int32_t lpos, int32_t rpos) {
            sorted_pairs.emplace_back(lidx[lpos], ridx[rpos]);
          });
      ASSERT_TRUE(applied) << cond.ToString();
      std::sort(sorted_pairs.begin(), sorted_pairs.end());
      EXPECT_EQ(sorted_pairs, expected)
          << "sort kernel diverged: " << cond.ToString() << " "
          << ValueTypeName(ltype) << "/" << ValueTypeName(rtype)
          << " seed=" << seed << " lrows=" << lrows << " rrows=" << rrows;
      ++cases;
    }
  }
  EXPECT_GE(cases, 100);
}

TEST(KernelDifferentialTest, OneBucketJobMatchesOracleUnderBothPolicies) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(7100 + seed);
    const ThetaOp op = static_cast<ThetaOp>(rng.Uniform(6));
    RelationPtr a = MakeRel("a", 60 + rng.Uniform(80), 25, 300 + seed);
    RelationPtr b = MakeRel("b", 60 + rng.Uniform(80), 25, 400 + seed);
    PairwiseJoinJobSpec spec;
    spec.left = JoinSide::ForBase(a, 0);
    spec.right = JoinSide::ForBase(b, 1);
    spec.base_relations = {a, b};
    spec.conditions = {{{0, 0}, op, {1, 0}, 0.0, 0}};
    if (rng.Bernoulli(0.5)) {
      spec.conditions.push_back({{0, 1}, ThetaOp::kLe, {1, 1}, 1.0, 1});
    }
    spec.num_reduce_tasks = 1 + static_cast<int>(rng.Uniform(8));

    const auto oracle = NaiveMultiwayJoin({a, b}, {0, 1}, spec.conditions);
    ASSERT_TRUE(oracle.ok());
    for (KernelPolicy policy :
         {KernelPolicy::kAuto, KernelPolicy::kGenericOnly}) {
      spec.kernel_policy = policy;
      const auto job = BuildOneBucketThetaJob(spec);
      ASSERT_TRUE(job.ok());
      const auto result = RunJobPhysically(*job);
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(SameRows(*oracle, *result->output))
          << "seed=" << seed << " op=" << ThetaOpName(op)
          << " kernel=" << job->kernel;
    }
  }
}

TEST(KernelSelectionTest, BuildersReportChosenKernel) {
  RelationPtr a = MakeRel("a", 10, 10, 81);
  RelationPtr b = MakeRel("b", 10, 10, 82);
  PairwiseJoinJobSpec spec;
  spec.left = JoinSide::ForBase(a, 0);
  spec.right = JoinSide::ForBase(b, 1);
  spec.base_relations = {a, b};
  spec.conditions = {{{0, 0}, ThetaOp::kLt, {1, 0}, 0.0, 0}};
  EXPECT_EQ(BuildOneBucketThetaJob(spec)->kernel, "sort-theta");

  spec.kernel_policy = KernelPolicy::kGenericOnly;
  EXPECT_EQ(BuildOneBucketThetaJob(spec)->kernel, "generic");

  // `<>` alone cannot drive the sort kernel: candidates are ~ the full
  // cross product.
  spec.kernel_policy = KernelPolicy::kAuto;
  spec.conditions = {{{0, 0}, ThetaOp::kNe, {1, 0}, 0.0, 0}};
  EXPECT_EQ(BuildOneBucketThetaJob(spec)->kernel, "generic");
}

TEST(KernelSelectionTest, HilbertReportsEligibilityNotPolicy) {
  RelationPtr a = MakeRel("a", 10, 10, 85);
  RelationPtr b = MakeRel("b", 10, 10, 86);
  MultiwayJoinJobSpec spec;
  spec.inputs = {JoinSide::ForBase(a, 0), JoinSide::ForBase(b, 1)};
  spec.base_relations = {a, b};
  spec.conditions = {{{0, 0}, ThetaOp::kLt, {1, 0}, 0.0, 0}};
  EXPECT_EQ(BuildHilbertJoinJob(spec)->kernel, "sort-theta");

  // <> cannot drive a sorted candidate list at any depth.
  spec.conditions = {{{0, 0}, ThetaOp::kNe, {1, 0}, 0.0, 0}};
  EXPECT_EQ(BuildHilbertJoinJob(spec)->kernel, "generic");

  spec.conditions = {{{0, 0}, ThetaOp::kLt, {1, 0}, 0.0, 0}};
  spec.kernel_policy = KernelPolicy::kGenericOnly;
  EXPECT_EQ(BuildHilbertJoinJob(spec)->kernel, "generic");
}

TEST(ChooseSortDriverTest, PrefersInequalityOverEquality) {
  RelationPtr a = MakeRel("a", 5, 5, 83);
  RelationPtr b = MakeRel("b", 5, 5, 84);
  const std::vector<JoinCondition> conds = {
      {{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0},
      {{0, 1}, ThetaOp::kLt, {1, 1}, 0.0, 1},
  };
  EXPECT_EQ(ChooseSortDriver(conds, {a, b}), 1);
  const std::vector<JoinCondition> eq_only = {
      {{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0},
  };
  EXPECT_EQ(ChooseSortDriver(eq_only, {a, b}), 0);
  const std::vector<JoinCondition> ne_only = {
      {{0, 0}, ThetaOp::kNe, {1, 0}, 0.0, 0},
  };
  EXPECT_EQ(ChooseSortDriver(ne_only, {a, b}), -1);
}

// ---- Spill differential: every operator under a tight memory budget ----

// Runs `job` through the parallel runner at {1, 4} threads under an
// unlimited and a 1-byte budget (maximal spill pressure, docs/MEMORY.md)
// and demands byte-identical rows — order included, stronger than
// SameRows — and byte-identical JobMeasurement against the sequential
// reference. Spilling may only change where shuffle records live.
void CheckSpillInvariance(const StatusOr<MapReduceJobSpec>& job,
                          const std::string& label) {
  ASSERT_TRUE(job.ok()) << label << ": " << job.status().ToString();
  const auto reference = RunJobPhysically(*job);
  ASSERT_TRUE(reference.ok()) << label;
  SpillDirectory spill_dir;
  for (const int64_t budget : {int64_t{0}, int64_t{1}}) {
    for (const int threads : {1, 4}) {
      ThreadPool pool(threads);
      ParallelRunnerOptions options;
      options.min_split_rows = 16;
      options.splits_per_thread = 3;
      options.mem_budget_bytes = budget;
      options.spill_dir = budget > 0 ? &spill_dir : nullptr;
      const auto result = RunJobParallel(*job, pool, options);
      const std::string at = label + " budget=" + std::to_string(budget) +
                             " threads=" + std::to_string(threads);
      ASSERT_TRUE(result.ok()) << at << ": " << result.status().ToString();
      const Relation& ref = *reference->output;
      const Relation& got = *result->output;
      ASSERT_EQ(ref.num_rows(), got.num_rows()) << at;
      for (int64_t r = 0; r < ref.num_rows(); ++r) {
        for (int c = 0; c < ref.schema().num_columns(); ++c) {
          ASSERT_EQ(ref.GetInt(r, c), got.GetInt(r, c))
              << at << " row " << r << " col " << c;
        }
      }
      const JobMeasurement& rm = reference->metrics;
      const JobMeasurement& gm = result->metrics;
      EXPECT_EQ(rm.input_bytes_logical, gm.input_bytes_logical) << at;
      EXPECT_EQ(rm.map_output_bytes_logical, gm.map_output_bytes_logical)
          << at;
      EXPECT_EQ(rm.map_output_records_physical,
                gm.map_output_records_physical)
          << at;
      EXPECT_EQ(rm.reduce_input_bytes_logical, gm.reduce_input_bytes_logical)
          << at;
      EXPECT_EQ(rm.reduce_comparisons_logical, gm.reduce_comparisons_logical)
          << at;
      EXPECT_EQ(rm.output_rows_physical, gm.output_rows_physical) << at;
      EXPECT_EQ(rm.output_rows_logical, gm.output_rows_logical) << at;
      EXPECT_EQ(rm.output_bytes_logical, gm.output_bytes_logical) << at;
    }
  }
}

TEST(SpillDifferentialTest, AllFourOperatorsSurviveTightBudgets) {
  RelationPtr a = MakeRel("a", 150, 25, 7801);
  RelationPtr b = MakeRel("b", 150, 25, 7802);
  RelationPtr c = MakeRel("c", 150, 25, 7803);

  // Hilbert multi-way.
  MultiwayJoinJobSpec mw;
  mw.inputs = {JoinSide::ForBase(a, 0), JoinSide::ForBase(b, 1),
               JoinSide::ForBase(c, 2)};
  mw.base_relations = {a, b, c};
  mw.conditions = {{{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0},
                   {{1, 1}, ThetaOp::kLe, {2, 1}, 0.0, 1}};
  mw.num_reduce_tasks = 8;
  CheckSpillInvariance(BuildHilbertJoinJob(mw), "hilbert");

  // Equi-join (hash repartition).
  PairwiseJoinJobSpec pw;
  pw.left = JoinSide::ForBase(a, 0);
  pw.right = JoinSide::ForBase(b, 1);
  pw.base_relations = {a, b};
  pw.conditions = {{{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0}};
  pw.num_reduce_tasks = 4;
  CheckSpillInvariance(BuildEquiJoinJob(pw), "equi");

  // 1-Bucket-Theta.
  pw.conditions = {{{0, 0}, ThetaOp::kLt, {1, 0}, 0.0, 0}};
  CheckSpillInvariance(BuildOneBucketThetaJob(pw), "1bucket");

  // Merge of two pairwise partials.
  auto run_pair = [&](JoinSide l, JoinSide r, JoinCondition cond) {
    PairwiseJoinJobSpec spec;
    spec.left = l;
    spec.right = r;
    spec.base_relations = {a, b, c};
    spec.conditions = {cond};
    spec.num_reduce_tasks = 4;
    const auto job = cond.op == ThetaOp::kEq ? BuildEquiJoinJob(spec)
                                             : BuildOneBucketThetaJob(spec);
    EXPECT_TRUE(job.ok());
    return RunJobPhysically(*job)->output;
  };
  auto ab = run_pair(JoinSide::ForBase(a, 0), JoinSide::ForBase(b, 1),
                     {{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0});
  auto bc = run_pair(JoinSide::ForBase(b, 1), JoinSide::ForBase(c, 2),
                     {{1, 1}, ThetaOp::kLe, {2, 1}, 0.0, 1});
  MergeJobSpec merge;
  merge.left = JoinSide::ForIntermediate(ab, {0, 1});
  merge.right = JoinSide::ForIntermediate(bc, {1, 2});
  merge.base_relations = {a, b, c};
  merge.num_reduce_tasks = 4;
  CheckSpillInvariance(BuildMergeJob(merge), "merge");
}

// ---- Naive oracle sanity ----

TEST(NaiveJoinTest, SmallHandComputedCase) {
  auto a = std::make_shared<Relation>("a",
                                      Schema({{"x", ValueType::kInt64}}));
  auto b = std::make_shared<Relation>("b",
                                      Schema({{"x", ValueType::kInt64}}));
  a->AppendIntRow({1});
  a->AppendIntRow({5});
  b->AppendIntRow({3});
  b->AppendIntRow({7});
  // a.x < b.x: (1,3), (1,7), (5,7) -> 3 rows.
  const auto out = NaiveMultiwayJoin(
      {a, b}, {0, 1}, {{{0, 0}, ThetaOp::kLt, {1, 0}, 0.0, 0}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 3);
}

TEST(NaiveJoinTest, RequiresTwoRelations) {
  auto a = std::make_shared<Relation>("a",
                                      Schema({{"x", ValueType::kInt64}}));
  EXPECT_FALSE(NaiveMultiwayJoin({a}, {0}, {}).ok());
}

}  // namespace
}  // namespace mrtheta
