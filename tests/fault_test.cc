// Chaos suite for the fault-tolerant runtime (docs/RUNTIME.md "Fault
// tolerance"): deterministic fault injection, task retry with backoff,
// speculative straggler re-execution, and structured failure propagation
// through Executor and ThetaEngine.
//
// The load-bearing property is the chaos differential: under any FaultPlan
// the execution survives, output rows (including order) and every
// simulated metric are byte-identical to the fault-free run — at every
// thread count. Re-execution must be invisible; only wall-clock and the
// FaultReport may differ.

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/theta_engine.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/cost/calibration.h"
#include "src/exec/pairwise_join.h"
#include "src/mapreduce/job_runner.h"
#include "src/runtime/fault_injection.h"
#include "src/runtime/parallel_job_runner.h"
#include "src/runtime/thread_pool.h"
#include "src/workload/flights.h"
#include "src/workload/mobile.h"
#include "src/workload/tpch.h"

namespace mrtheta {
namespace {

// ---- FaultPlan / RetryPolicy / FaultInjector units ----

TEST(FaultPlanTest, ParsesKeyValuePlans) {
  const auto plan =
      FaultPlan::Parse("seed=7,map=0.1,reduce=0.2,straggler=0.05,delay_ms=2");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_DOUBLE_EQ(plan->map_failure_rate, 0.1);
  EXPECT_DOUBLE_EQ(plan->reduce_failure_rate, 0.2);
  EXPECT_DOUBLE_EQ(plan->straggler_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan->straggler_delay_ms, 2.0);
  EXPECT_TRUE(plan->armed);
  EXPECT_TRUE(plan->enabled());

  // An explicitly armed zero-rate plan engages the chaos machinery — the
  // configuration the fault_overhead bench record measures.
  const auto armed = FaultPlan::Parse("seed=1,armed=1");
  ASSERT_TRUE(armed.ok());
  EXPECT_TRUE(armed->enabled());
  EXPECT_DOUBLE_EQ(armed->map_failure_rate, 0.0);

  // Empty = the disabled default.
  const auto empty = FaultPlan::Parse("");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->enabled());
}

TEST(FaultPlanTest, RejectsMalformedPlans) {
  EXPECT_FALSE(FaultPlan::Parse("map").ok());         // no '='
  EXPECT_FALSE(FaultPlan::Parse("map=zebra").ok());   // not a number
  EXPECT_FALSE(FaultPlan::Parse("turbo=1").ok());     // unknown key
  EXPECT_FALSE(FaultPlan::Parse("map=1.5").ok());     // out of [0, 1]
  EXPECT_FALSE(FaultPlan::Parse("delay_ms=-1").ok());
}

TEST(FaultPlanTest, RetryBackoffIsCappedExponential) {
  RetryPolicy retry;
  retry.backoff_base_ms = 1.0;
  retry.backoff_multiplier = 2.0;
  retry.backoff_max_ms = 5.0;
  EXPECT_DOUBLE_EQ(retry.BackoffMs(0), 1.0);
  EXPECT_DOUBLE_EQ(retry.BackoffMs(1), 2.0);
  EXPECT_DOUBLE_EQ(retry.BackoffMs(2), 4.0);
  EXPECT_DOUBLE_EQ(retry.BackoffMs(3), 5.0);   // capped
  EXPECT_DOUBLE_EQ(retry.BackoffMs(30), 5.0);  // no overflow blowup
}

TEST(FaultInjectorTest, DrawsAreDeterministicAndRateRespecting) {
  FaultPlan plan;
  plan.seed = 11;
  plan.map_failure_rate = 0.3;
  const FaultInjector a(plan), b(plan);
  int fires = 0;
  for (int64_t task = 0; task < 2000; ++task) {
    const bool fa = a.ShouldFail(FaultPoint::kMapTask, "job", task, 0);
    EXPECT_EQ(fa, b.ShouldFail(FaultPoint::kMapTask, "job", task, 0));
    fires += fa ? 1 : 0;
  }
  // The empirical rate tracks the configured 30% (hash uniformity).
  EXPECT_GT(fires, 2000 * 0.2);
  EXPECT_LT(fires, 2000 * 0.4);

  FaultPlan never = plan;
  never.map_failure_rate = 0.0;
  FaultPlan always = plan;
  always.map_failure_rate = 1.0;
  EXPECT_FALSE(
      FaultInjector(never).ShouldFail(FaultPoint::kMapTask, "job", 1, 0));
  EXPECT_TRUE(
      FaultInjector(always).ShouldFail(FaultPoint::kMapTask, "job", 1, 0));
}

TEST(FaultInjectorTest, StragglersModelSlowSlotsFirstAttemptOnly) {
  FaultPlan plan;
  plan.seed = 3;
  plan.straggler_rate = 1.0;
  plan.straggler_delay_ms = 7.0;
  const FaultInjector injector(plan);
  EXPECT_DOUBLE_EQ(
      injector.StragglerDelayMs(FaultPoint::kMapStraggler, "j", 0, 0), 7.0);
  // A retry or speculative copy runs on a different slot: never re-delayed
  // (this is also what guarantees speculation terminates).
  EXPECT_DOUBLE_EQ(
      injector.StragglerDelayMs(FaultPoint::kMapStraggler, "j", 0, 1), 0.0);
}

TEST(CancellationTokenTest, ChainsToParent) {
  CancellationToken parent;
  CancellationToken child(&parent);
  EXPECT_FALSE(child.cancelled());
  parent.Cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(parent.cancelled());

  CancellationToken lone;
  CancellationToken child2(&lone);
  child2.Cancel();
  EXPECT_TRUE(child2.cancelled());
  EXPECT_FALSE(lone.cancelled());  // cancellation never flows upward
}

// ---- ReduceCollector hardening ----

TEST(ReduceCollectorTest, LatchesTheFirstAppendError) {
  Relation out("out", Schema({{"a", ValueType::kInt64}}));
  ReduceCollector collector(&out);
  collector.Emit({Value(int64_t{1}), Value(int64_t{2})});  // arity mismatch
  EXPECT_FALSE(collector.status().ok());
  EXPECT_EQ(collector.rows_emitted(), 0);
  // Latched: later (even well-formed) emits are dropped, the first error
  // survives for the runner to surface.
  collector.Emit({Value(int64_t{1})});
  EXPECT_EQ(collector.rows_emitted(), 0);
  EXPECT_EQ(out.num_rows(), 0);
}

// ---- Restartable-task machinery on a small hand-checkable job ----

RelationPtr MakeRel(const char* name, int64_t rows, int64_t key_range,
                    uint64_t seed) {
  auto rel = std::make_shared<Relation>(
      name, Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    rel->AppendIntRow({static_cast<int64_t>(rng.Uniform(key_range)),
                       static_cast<int64_t>(rng.Uniform(10))});
  }
  return rel;
}

MapReduceJobSpec SmallEquiJoinSpec() {
  static const RelationPtr a = MakeRel("a", 200, 25, 42);
  static const RelationPtr b = MakeRel("b", 200, 25, 43);
  PairwiseJoinJobSpec spec;
  spec.left = JoinSide::ForBase(a, 0);
  spec.right = JoinSide::ForBase(b, 1);
  spec.base_relations = {a, b};
  spec.conditions = {{{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0}};
  spec.num_reduce_tasks = 16;
  const auto job = BuildEquiJoinJob(spec);
  EXPECT_TRUE(job.ok());
  return *job;
}

::testing::AssertionResult IdenticalRelations(const Relation& a,
                                              const Relation& b) {
  if (a.num_rows() != b.num_rows()) {
    return ::testing::AssertionFailure()
           << "row count " << a.num_rows() << " vs " << b.num_rows();
  }
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.schema().num_columns(); ++c) {
      if (a.Get(r, c).ToString() != b.Get(r, c).ToString()) {
        return ::testing::AssertionFailure()
               << "cell (" << r << ", " << c << "): " << a.Get(r, c).ToString()
               << " vs " << b.Get(r, c).ToString();
      }
    }
  }
  if (a.logical_rows() != b.logical_rows()) {
    return ::testing::AssertionFailure() << "logical rows differ";
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult IdenticalMetrics(const JobMeasurement& a,
                                            const JobMeasurement& b) {
  if (a.input_bytes_logical != b.input_bytes_logical ||
      a.input_bytes_physical != b.input_bytes_physical ||
      a.map_output_bytes_logical != b.map_output_bytes_logical ||
      a.map_output_records_physical != b.map_output_records_physical ||
      a.reduce_input_bytes_logical != b.reduce_input_bytes_logical ||
      a.reduce_comparisons_logical != b.reduce_comparisons_logical ||
      a.output_rows_physical != b.output_rows_physical ||
      a.output_rows_logical != b.output_rows_logical ||
      a.output_bytes_logical != b.output_bytes_logical) {
    return ::testing::AssertionFailure() << "JobMeasurement fields differ";
  }
  return ::testing::AssertionSuccess();
}

ParallelRunnerOptions ChaosOptions(const FaultInjector& injector,
                                   FaultReport* report) {
  ParallelRunnerOptions options;
  options.min_split_rows = 8;  // many restartable map tasks on tiny inputs
  options.injector = &injector;
  options.fault_report = report;
  options.retry.backoff_base_ms = 0.05;
  options.retry.backoff_max_ms = 0.5;
  return options;
}

TEST(RestartableTaskTest, RetriesMakeModerateChaosInvisible) {
  const MapReduceJobSpec spec = SmallEquiJoinSpec();
  const auto reference = RunJobPhysically(spec);
  ASSERT_TRUE(reference.ok());
  FaultPlan plan;
  plan.seed = 99;
  plan.map_failure_rate = 0.3;
  plan.reduce_failure_rate = 0.3;
  plan.alloc_failure_rate = 0.1;
  const FaultInjector injector(plan);
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    FaultReport report;
    const auto chaotic =
        RunJobParallel(spec, pool, ChaosOptions(injector, &report));
    ASSERT_TRUE(chaotic.ok()) << chaotic.status().ToString();
    EXPECT_TRUE(IdenticalRelations(*reference->output, *chaotic->output))
        << "threads=" << threads;
    EXPECT_TRUE(IdenticalMetrics(reference->metrics, chaotic->metrics))
        << "threads=" << threads;
    EXPECT_GT(report.injected_faults, 0) << "threads=" << threads;
    EXPECT_GT(report.task_retries, 0) << "threads=" << threads;
  }
}

TEST(RestartableTaskTest, ExhaustedRetriesSurfaceAborted) {
  const MapReduceJobSpec spec = SmallEquiJoinSpec();
  FaultPlan plan;
  plan.seed = 5;
  plan.map_failure_rate = 1.0;  // every attempt of every map task crashes
  const FaultInjector injector(plan);
  ThreadPool pool(4);
  FaultReport report;
  ParallelRunnerOptions options = ChaosOptions(injector, &report);
  options.retry.max_attempts = 3;
  const auto result = RunJobParallel(spec, pool, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted)
      << result.status().ToString();
  // The budget was actually consumed before giving up.
  EXPECT_GE(report.task_retries, 2);
  EXPECT_GE(report.injected_faults, 3);
}

TEST(RestartableTaskTest, AllocFailuresSurfaceResourceExhausted) {
  const MapReduceJobSpec spec = SmallEquiJoinSpec();
  FaultPlan plan;
  plan.seed = 5;
  plan.alloc_failure_rate = 1.0;
  const FaultInjector injector(plan);
  ThreadPool pool(2);
  FaultReport report;
  ParallelRunnerOptions options = ChaosOptions(injector, &report);
  options.retry.max_attempts = 2;
  const auto result = RunJobParallel(spec, pool, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
}

TEST(RestartableTaskTest, HardTimeoutSurfacesDeadlineExceeded) {
  const MapReduceJobSpec spec = SmallEquiJoinSpec();
  FaultPlan plan;
  plan.seed = 5;
  plan.straggler_rate = 1.0;       // every first attempt stalls...
  plan.straggler_delay_ms = 60.0;  // ...well past the attempt deadline
  const FaultInjector injector(plan);
  ThreadPool pool(2);
  FaultReport report;
  ParallelRunnerOptions options = ChaosOptions(injector, &report);
  options.speculation.enabled = false;  // isolate the timeout path
  options.retry.task_timeout_ms = 3.0;
  options.retry.max_attempts = 1;
  const auto result = RunJobParallel(spec, pool, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
  EXPECT_GT(report.wasted_task_seconds, 0.0);
}

TEST(RestartableTaskTest, StragglersAreSpeculativelyReExecuted) {
  const MapReduceJobSpec spec = SmallEquiJoinSpec();
  const auto reference = RunJobPhysically(spec);
  ASSERT_TRUE(reference.ok());
  FaultPlan plan;
  plan.seed = 21;
  plan.straggler_rate = 0.4;
  plan.straggler_delay_ms = 40.0;  // far past the median-derived deadline
  const FaultInjector injector(plan);
  ThreadPool pool(4);
  FaultReport report;
  ParallelRunnerOptions options = ChaosOptions(injector, &report);
  options.speculation.min_deadline_ms = 1.0;
  const auto result = RunJobParallel(spec, pool, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Speculative copies fired, wasted (abandoned) time was charged, and —
  // the point — the output is still byte-identical.
  EXPECT_GT(report.speculative_launches, 0);
  EXPECT_GT(report.wasted_task_seconds, 0.0);
  EXPECT_TRUE(IdenticalRelations(*reference->output, *result->output));
  EXPECT_TRUE(IdenticalMetrics(reference->metrics, result->metrics));
}

TEST(RestartableTaskTest, ExternalCancellationStopsTheJob) {
  const MapReduceJobSpec spec = SmallEquiJoinSpec();
  FaultPlan plan;
  plan.seed = 8;
  plan.straggler_rate = 1.0;
  plan.straggler_delay_ms = 500.0;  // would take ~seconds without cancel
  const FaultInjector injector(plan);
  ThreadPool pool(2);
  ParallelRunnerOptions options = ChaosOptions(injector, nullptr);
  options.speculation.enabled = false;
  CancellationToken cancel;
  options.cancel = &cancel;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.Cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  const auto result = RunJobParallel(spec, pool, options);
  canceller.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
  // Cancellation interrupts the injected delays: nowhere near the several
  // seconds the stragglers would otherwise sleep.
  EXPECT_LT(elapsed, 5.0);
}

// ---- Chaos differential: real workloads through the Executor ----

class ChaosDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<SimCluster>(ClusterConfig{});
    const auto calib = CalibrateCostModel(*cluster_);
    ASSERT_TRUE(calib.ok());
    planner_ = std::make_unique<Planner>(cluster_.get(), calib->params);
  }

  // Plans `query` once, executes it fault-free, then replays it at
  // {1,2,4,8} threads x {0%,10%,30%} fault rates: rows (order included),
  // per-job metrics, makespan and shuffle volume must match the reference
  // byte-for-byte.
  void CheckChaosInvariance(const Query& query, const std::string& label) {
    const auto plan = planner_->Plan(query);
    ASSERT_TRUE(plan.ok()) << label;
    ExecutorOptions ref_options;
    ref_options.fault_plan = FaultPlan{};  // fault-free, env-proof
    const Executor reference(cluster_.get(), ref_options);
    const auto ref = reference.Execute(query, *plan);
    ASSERT_TRUE(ref.ok()) << label << ": " << ref.status().ToString();

    for (const double rate : {0.0, 0.1, 0.3}) {
      for (const int threads : {1, 2, 4, 8}) {
        ExecutorOptions options;
        options.num_threads = threads;
        options.fault_plan = FaultPlan{};
        options.fault_plan.seed = 1234;
        options.fault_plan.map_failure_rate = rate;
        options.fault_plan.reduce_failure_rate = rate;
        options.fault_plan.alloc_failure_rate = rate / 3.0;
        options.fault_plan.straggler_rate = rate / 3.0;
        options.fault_plan.straggler_delay_ms = 1.0;
        options.fault_plan.armed = true;  // rate 0.0 still takes the
                                          // chaos path (overhead config)
        options.retry.max_attempts = 12;  // exhaustion must not be why
                                          // this test would ever pass
        options.retry.backoff_base_ms = 0.05;
        options.retry.backoff_max_ms = 0.5;
        const Executor executor(cluster_.get(), options);
        const auto result = executor.Execute(query, *plan);
        const std::string at = label + " rate=" + std::to_string(rate) +
                               " threads=" + std::to_string(threads);
        ASSERT_TRUE(result.ok()) << at << ": " << result.status().ToString();
        EXPECT_EQ(result->makespan, ref->makespan) << at;
        EXPECT_EQ(result->sim_shuffle_bytes, ref->sim_shuffle_bytes) << at;
        ASSERT_EQ(result->jobs.size(), ref->jobs.size()) << at;
        for (size_t j = 0; j < ref->jobs.size(); ++j) {
          EXPECT_TRUE(
              IdenticalMetrics(ref->jobs[j].metrics, result->jobs[j].metrics))
              << at << " job " << j;
        }
        EXPECT_TRUE(IdenticalRelations(*ref->result_ids, *result->result_ids))
            << at;
        if (ref->projected != nullptr) {
          ASSERT_NE(result->projected, nullptr) << at;
          EXPECT_TRUE(IdenticalRelations(*ref->projected, *result->projected))
              << at;
        }
        if (rate > 0.0) {
          // The run must actually have been chaotic, or this test is
          // vacuous.
          EXPECT_GT(result->fault_report.injected_faults, 0) << at;
        }
      }
    }
  }

  std::unique_ptr<SimCluster> cluster_;
  std::unique_ptr<Planner> planner_;
};

TEST_F(ChaosDifferentialTest, MobileQ1) {
  MobileDataOptions options;
  options.physical_rows = 120;
  options.logical_bytes = 4 * kGiB;
  const auto q = BuildMobileQuery(1, options);
  ASSERT_TRUE(q.ok());
  CheckChaosInvariance(*q, "mobile-q1");
}

TEST_F(ChaosDifferentialTest, TpchQ17) {
  TpchOptions options;
  options.scale_factor = 50;
  options.physical_lineitem_rows = 600;
  const TpchData db = GenerateTpch(options);
  const auto q = BuildTpchQuery(17, db);
  ASSERT_TRUE(q.ok());
  CheckChaosInvariance(*q, "tpch-q17");
}

TEST_F(ChaosDifferentialTest, FlightItinerary) {
  FlightLegOptions options;
  options.physical_rows = 150;
  options.logical_rows = kGiB / 28;
  std::vector<RelationPtr> legs = {GenerateFlightLeg(0, options),
                                   GenerateFlightLeg(1, options),
                                   GenerateFlightLeg(2, options)};
  const auto q =
      BuildItineraryQuery(legs, {StayOver{60, 240}, StayOver{120, 360}});
  ASSERT_TRUE(q.ok());
  CheckChaosInvariance(*q, "flights");
}

// ---- Chaos x spill: tiny budgets under fault injection ----

TEST_F(ChaosDifferentialTest, TinyBudgetChaosIsInvisibleAndLeaksNoFiles) {
  // Chaos retries re-materialize spilled shuffle partitions; a 1-byte
  // budget makes every task do so. Rows must stay byte-identical, and —
  // the cleanup satellite — no spill file may outlive any execution,
  // successful or failed. $MRTHETA_SPILL_DIR points every SpillDirectory
  // of this test at a private root we can audit for leaks.
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path root =
      fs::temp_directory_path() / "mrtheta-fault-spill-audit";
  fs::remove_all(root, ec);
  fs::create_directories(root, ec);
  ASSERT_FALSE(ec) << ec.message();
  ASSERT_EQ(setenv("MRTHETA_SPILL_DIR", root.c_str(), 1), 0);

  MobileDataOptions data;
  data.physical_rows = 1000;  // big enough that spilling actually happens
  data.logical_bytes = 4 * kGiB;
  const auto q = BuildMobileQuery(1, data);
  ASSERT_TRUE(q.ok());
  const auto plan = planner_->Plan(*q);
  ASSERT_TRUE(plan.ok());

  ExecutorOptions ref_options;
  ref_options.fault_plan = FaultPlan{};  // fault-free, env-proof
  const Executor reference(cluster_.get(), ref_options);
  const auto ref = reference.Execute(*q, *plan);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  for (const int threads : {1, 4}) {
    ExecutorOptions options;
    options.num_threads = threads;
    options.mem_budget_bytes = 1;  // maximal spill pressure
    options.fault_plan = FaultPlan{};
    options.fault_plan.seed = 4321;
    options.fault_plan.map_failure_rate = 0.2;
    options.fault_plan.reduce_failure_rate = 0.2;
    options.fault_plan.armed = true;
    options.retry.max_attempts = 12;
    options.retry.backoff_base_ms = 0.05;
    options.retry.backoff_max_ms = 0.5;
    const Executor executor(cluster_.get(), options);
    const auto result = executor.Execute(*q, *plan);
    ASSERT_TRUE(result.ok())
        << "threads=" << threads << ": " << result.status().ToString();
    EXPECT_EQ(result->makespan, ref->makespan) << "threads=" << threads;
    EXPECT_TRUE(IdenticalRelations(*ref->result_ids, *result->result_ids))
        << "threads=" << threads;
    EXPECT_GT(result->fault_report.injected_faults, 0)
        << "threads=" << threads;
    // The run must actually have spilled, or the cleanup check is vacuous.
    EXPECT_GT(result->spill_bytes, 0) << "threads=" << threads;
    EXPECT_TRUE(fs::is_empty(root, ec)) << "threads=" << threads;
  }

  // A *failing* execution (retries exhausted mid-run, spill files open)
  // must clean up on the error path too.
  ExecutorOptions doomed;
  doomed.num_threads = 4;
  doomed.mem_budget_bytes = 1;
  doomed.fault_plan = FaultPlan{};
  doomed.fault_plan.seed = 9;
  doomed.fault_plan.map_failure_rate = 1.0;
  doomed.retry.max_attempts = 2;
  doomed.retry.backoff_base_ms = 0.05;
  doomed.retry.backoff_max_ms = 0.5;
  const Executor failing(cluster_.get(), doomed);
  const auto failed = failing.Execute(*q, *plan);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(fs::is_empty(root, ec));

  ASSERT_EQ(unsetenv("MRTHETA_SPILL_DIR"), 0);
  fs::remove_all(root, ec);
}

// ---- Structured propagation through ThetaEngine ----

Query SmallMobileQuery() {
  MobileDataOptions options;
  options.physical_rows = 100;
  options.logical_bytes = 2 * kGiB;
  const auto q = BuildMobileQuery(1, options);
  EXPECT_TRUE(q.ok());
  return *q;
}

EngineOptions ChaosEngineOptions() {
  EngineOptions options;
  options.executor.num_threads = 2;
  options.executor.fault_plan = FaultPlan{};  // env-proof baseline
  options.executor.retry.backoff_base_ms = 0.05;
  options.executor.retry.backoff_max_ms = 0.5;
  return options;
}

TEST(EngineFaultTest, ExecuteAndSubmitSurfaceRetryExhaustion) {
  EngineOptions options = ChaosEngineOptions();
  options.executor.fault_plan.seed = 17;
  options.executor.fault_plan.map_failure_rate = 1.0;
  options.executor.retry.max_attempts = 2;
  ThetaEngine engine(options);
  const Query q = SmallMobileQuery();

  // Synchronous: the terminal code travels RunJobParallel -> RunDag ->
  // Executor -> Execute.
  const auto direct = engine.Execute(q);
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kAborted)
      << direct.status().ToString();

  // Asynchronous: the same failure resolves the Submit future — no crash,
  // no deadlock, engine still usable afterwards.
  auto future = engine.Submit(q);
  ASSERT_EQ(future.wait_for(std::chrono::seconds(60)),
            std::future_status::ready);
  const auto submitted = future.get();
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kAborted);

  const EngineMetrics metrics = engine.metrics();
  EXPECT_EQ(metrics.failed_executions, 2);
  EXPECT_EQ(metrics.executions, 0);
}

TEST(EngineFaultTest, SessionMetricsAggregateFaultReports) {
  EngineOptions chaotic = ChaosEngineOptions();
  chaotic.executor.fault_plan.seed = 23;
  chaotic.executor.fault_plan.map_failure_rate = 0.2;
  chaotic.executor.fault_plan.reduce_failure_rate = 0.2;
  chaotic.executor.retry.max_attempts = 12;
  ThetaEngine engine(chaotic);
  ThetaEngine clean(ChaosEngineOptions());
  const Query q = SmallMobileQuery();

  const auto chaotic_result = engine.Execute(q);
  ASSERT_TRUE(chaotic_result.ok()) << chaotic_result.status().ToString();
  const auto clean_result = clean.Execute(q);
  ASSERT_TRUE(clean_result.ok());

  // Same rows despite the chaos...
  EXPECT_TRUE(
      IdenticalRelations(clean_result->rows(), chaotic_result->rows()));
  EXPECT_EQ(chaotic_result->makespan(), clean_result->makespan());
  // ...and the session metrics expose what it cost to get them.
  const EngineMetrics metrics = engine.metrics();
  EXPECT_EQ(metrics.executions, 1);
  EXPECT_GT(metrics.injected_faults, 0);
  EXPECT_GT(metrics.task_retries, 0);
  EXPECT_EQ(clean.metrics().injected_faults, 0);
}

TEST(EngineFaultTest, CancelInflightResolvesSubmissionsPromptly) {
  EngineOptions options = ChaosEngineOptions();
  // Every first attempt stalls half a second and nothing else intervenes
  // (no speculation, no timeout): without cancellation the plan would run
  // for many seconds.
  options.executor.fault_plan.seed = 31;
  options.executor.fault_plan.straggler_rate = 1.0;
  options.executor.fault_plan.straggler_delay_ms = 500.0;
  options.executor.speculation.enabled = false;
  ThetaEngine engine(options);
  // Warm up calibration/stats so the submission below spends its time
  // executing (where cancellation applies), not planning.
  ASSERT_TRUE(engine.Explain(SmallMobileQuery()).ok());

  auto future = engine.Submit(SmallMobileQuery());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.CancelInflight();
  ASSERT_EQ(future.wait_for(std::chrono::seconds(60)),
            std::future_status::ready);
  const auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
  EXPECT_EQ(engine.metrics().failed_executions, 1);

  // The engine is not poisoned: later submissions run normally.
  EngineOptions clean = ChaosEngineOptions();
  ThetaEngine engine2(clean);
  const auto ok_result = engine2.Execute(SmallMobileQuery());
  EXPECT_TRUE(ok_result.ok());
}

}  // namespace
}  // namespace mrtheta
