// End-to-end tests: Query validation, Planner plan shapes, Executor
// correctness against the oracle, and baseline-planner agreement.

#include <memory>

#include <gtest/gtest.h>

#include "src/baselines/baseline_planners.h"
#include "src/common/rng.h"
#include "src/core/column_pruning.h"
#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/cost/calibration.h"
#include "src/exec/naive_join.h"

namespace mrtheta {
namespace {

RelationPtr MakeRel(int64_t rows, int64_t key_range, uint64_t seed,
                    int64_t logical_rows = 0) {
  auto rel = std::make_shared<Relation>(
      "t", Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    rel->AppendIntRow({static_cast<int64_t>(rng.Uniform(key_range)),
                       static_cast<int64_t>(rng.Uniform(40))});
  }
  if (logical_rows > 0) rel->set_logical_rows(logical_rows);
  return rel;
}

// A 3-relation chain query: R0.a <= R1.a, R1.b = R2.b.
Query ChainQuery(const std::vector<RelationPtr>& rels) {
  Query q;
  const int r0 = q.AddRelation(rels[0]);
  const int r1 = q.AddRelation(rels[1]);
  const int r2 = q.AddRelation(rels[2]);
  EXPECT_TRUE(q.AddCondition(r0, "a", ThetaOp::kLe, r1, "a").ok());
  EXPECT_TRUE(q.AddCondition(r1, "b", ThetaOp::kEq, r2, "b").ok());
  EXPECT_TRUE(q.AddOutput(r2, "a").ok());
  return q;
}

class CoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig cfg;
    cluster_ = std::make_unique<SimCluster>(cfg);
    const auto calib = CalibrateCostModel(*cluster_);
    ASSERT_TRUE(calib.ok());
    params_ = calib->params;
  }

  std::unique_ptr<SimCluster> cluster_;
  CostModelParams params_;
};

TEST(QueryTest, ValidatesStructure) {
  Query q;
  EXPECT_FALSE(q.Validate().ok());  // no relations
  RelationPtr r = MakeRel(10, 10, 1);
  q.AddRelation(r);
  q.AddRelation(r);
  EXPECT_FALSE(q.Validate().ok());  // no conditions
  ASSERT_TRUE(q.AddCondition(0, "a", ThetaOp::kLt, 1, "a").ok());
  EXPECT_TRUE(q.Validate().ok());
}

TEST(QueryTest, RejectsBadConditions) {
  Query q;
  RelationPtr r = MakeRel(10, 10, 2);
  q.AddRelation(r);
  q.AddRelation(r);
  EXPECT_FALSE(q.AddCondition(0, "a", ThetaOp::kLt, 0, "a").ok());  // self
  EXPECT_FALSE(q.AddCondition(0, "zz", ThetaOp::kLt, 1, "a").ok());
  EXPECT_FALSE(q.AddCondition(0, "a", ThetaOp::kLt, 5, "a").ok());
}

TEST(QueryTest, RejectsDisconnectedGraph) {
  Query q;
  RelationPtr r = MakeRel(10, 10, 3);
  for (int i = 0; i < 4; ++i) q.AddRelation(r);
  ASSERT_TRUE(q.AddCondition(0, "a", ThetaOp::kLt, 1, "a").ok());
  ASSERT_TRUE(q.AddCondition(2, "a", ThetaOp::kLt, 3, "a").ok());
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryTest, ConditionMaskAndLookup) {
  Query q;
  RelationPtr r = MakeRel(10, 10, 4);
  q.AddRelation(r);
  q.AddRelation(r);
  q.AddRelation(r);
  ASSERT_TRUE(q.AddCondition(0, "a", ThetaOp::kLt, 1, "a").ok());
  ASSERT_TRUE(q.AddCondition(1, "b", ThetaOp::kEq, 2, "b").ok());
  EXPECT_EQ(q.AllConditionsMask(), 0b11u);
  const auto conds = q.ConditionsById({1});
  ASSERT_EQ(conds.size(), 1u);
  EXPECT_EQ(conds[0].op, ThetaOp::kEq);
}

TEST(QueryTest, TypeMismatchRejected) {
  auto strings = std::make_shared<Relation>(
      "s", Schema({{"name", ValueType::kString}}));
  Query q;
  RelationPtr nums = MakeRel(10, 10, 5);
  const int a = q.AddRelation(nums);
  const int b = q.AddRelation(strings);
  EXPECT_FALSE(q.AddCondition(a, "a", ThetaOp::kEq, b, "name").ok());
}

TEST(QueryTest, ValidateErrorPathsReportSpecificCodes) {
  // Disconnected join graph: FailedPrecondition naming the requirement.
  Query q;
  RelationPtr r = MakeRel(10, 10, 6);
  for (int i = 0; i < 4; ++i) q.AddRelation(r);
  ASSERT_TRUE(q.AddCondition(0, "a", ThetaOp::kLt, 1, "a").ok());
  ASSERT_TRUE(q.AddCondition(2, "a", ThetaOp::kLt, 3, "a").ok());
  const Status disconnected = q.Validate();
  EXPECT_EQ(disconnected.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(disconnected.message().find("connected"), std::string::npos);

  // Out-of-range condition endpoints are refused at insertion...
  Query q2;
  q2.AddRelation(r);
  q2.AddRelation(r);
  EXPECT_EQ(q2.AddCondition(-1, "a", ThetaOp::kLt, 1, "a").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(q2.AddCondition(0, "a", ThetaOp::kLt, 7, "a").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(q2.AddOutput(5, "a").code(), StatusCode::kInvalidArgument);
  // ...so a query built through the public API revalidates cleanly.
  ASSERT_TRUE(q2.AddCondition(0, "a", ThetaOp::kLt, 1, "a").ok());
  EXPECT_TRUE(q2.Validate().ok());
}

TEST(QueryTest, ValidateRejectsTypeIncompatibleEndpointsAndStringOffsets) {
  auto strings = std::make_shared<Relation>(
      "s", Schema({{"name", ValueType::kString}}));
  Query q;
  const int a = q.AddRelation(strings);
  const int b = q.AddRelation(strings);
  // A string = string condition is fine; an offset on it is not.
  EXPECT_EQ(
      q.AddCondition(a, "name", ThetaOp::kEq, b, "name", 2.0).status().code(),
      StatusCode::kInvalidArgument);
  ASSERT_TRUE(q.AddCondition(a, "name", ThetaOp::kEq, b, "name").ok());
  EXPECT_TRUE(q.Validate().ok());
}

TEST(QueryTest, ValidateRejectsTooManyConditions) {
  Query q;
  RelationPtr r = MakeRel(10, 10, 7);
  for (int i = 0; i < 22; ++i) q.AddRelation(r);
  for (int i = 0; i + 1 < 22; ++i) {
    ASSERT_TRUE(q.AddCondition(i, "a", ThetaOp::kLe, i + 1, "a").ok());
  }
  EXPECT_EQ(q.Validate().code(), StatusCode::kInvalidArgument);
}

TEST_F(CoreTest, PlanCoversAllConditions) {
  std::vector<RelationPtr> rels = {MakeRel(100, 20, 10), MakeRel(100, 20, 11),
                                   MakeRel(100, 20, 12)};
  const Query q = ChainQuery(rels);
  Planner planner(cluster_.get(), params_);
  const auto plan = planner.Plan(q);
  ASSERT_TRUE(plan.ok());
  uint32_t covered = 0;
  for (const PlanJob& job : plan->jobs) {
    for (int t : job.thetas) covered |= 1u << t;
  }
  EXPECT_EQ(covered, q.AllConditionsMask());
  EXPECT_GT(plan->est_makespan_sec, 0.0);
  for (const PlanJob& job : plan->jobs) {
    EXPECT_GE(job.num_reduce_tasks, 1);
    EXPECT_LE(job.num_reduce_tasks, cluster_->config().num_workers);
  }
}

TEST_F(CoreTest, ExecutorMatchesOracle) {
  std::vector<RelationPtr> rels = {MakeRel(80, 15, 20), MakeRel(80, 15, 21),
                                   MakeRel(80, 15, 22)};
  const Query q = ChainQuery(rels);
  Planner planner(cluster_.get(), params_);
  const auto plan = planner.Plan(q);
  ASSERT_TRUE(plan.ok());
  Executor executor(cluster_.get());
  const auto result = executor.Execute(q, *plan);
  ASSERT_TRUE(result.ok());

  const auto oracle = NaiveMultiwayJoin(q.relations(), {0, 1, 2},
                                        q.conditions());
  ASSERT_TRUE(oracle.ok());
  const Relation sorted_result = SortedByRows(*result->result_ids);
  ASSERT_EQ(sorted_result.num_rows(), oracle->num_rows());
  for (int64_t r = 0; r < oracle->num_rows(); ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(sorted_result.GetInt(r, c), oracle->GetInt(r, c));
    }
  }
  EXPECT_GT(result->makespan, 0);
  // Projection produced one column (R2.a) per result row.
  ASSERT_NE(result->projected, nullptr);
  EXPECT_EQ(result->projected->num_rows(), oracle->num_rows());
  EXPECT_EQ(result->projected->schema().num_columns(), 1);
}

TEST_F(CoreTest, AllPlannersAgreeOnResults) {
  std::vector<RelationPtr> rels = {MakeRel(70, 12, 30), MakeRel(70, 12, 31),
                                   MakeRel(70, 12, 32)};
  const Query q = ChainQuery(rels);
  Executor executor(cluster_.get());
  Planner planner(cluster_.get(), params_);

  std::vector<StatusOr<QueryPlan>> plans;
  plans.push_back(planner.Plan(q));
  plans.push_back(PlanHiveStyle(q, *cluster_));
  plans.push_back(PlanPigStyle(q, *cluster_));
  plans.push_back(PlanYSmartStyle(q, *cluster_));

  int64_t expected_rows = -1;
  for (const auto& plan : plans) {
    ASSERT_TRUE(plan.ok());
    const auto result = executor.Execute(q, *plan);
    ASSERT_TRUE(result.ok()) << plan->strategy;
    if (expected_rows < 0) {
      expected_rows = result->result_ids->num_rows();
    } else {
      EXPECT_EQ(result->result_ids->num_rows(), expected_rows)
          << plan->strategy;
    }
  }
  const auto oracle = NaiveMultiwayJoin(q.relations(), {0, 1, 2},
                                        q.conditions());
  EXPECT_EQ(expected_rows, oracle->num_rows());
}

TEST_F(CoreTest, BaselinePlansAreCascades) {
  std::vector<RelationPtr> rels = {MakeRel(50, 10, 40), MakeRel(50, 10, 41),
                                   MakeRel(50, 10, 42)};
  const Query q = ChainQuery(rels);
  const auto hive = PlanHiveStyle(q, *cluster_);
  ASSERT_TRUE(hive.ok());
  EXPECT_EQ(hive->jobs.size(), 2u);  // 3 relations -> 2 pairwise steps
  // Second step consumes the first step's output.
  EXPECT_FALSE(hive->jobs[1].inputs[0].is_base());
  EXPECT_EQ(hive->jobs[1].inputs[0].job, 0);
  // Hive always requests max reducers.
  EXPECT_EQ(hive->jobs[0].num_reduce_tasks,
            cluster_->config().num_workers);
  EXPECT_TRUE(hive->jobs[0].text_serde);
  // YSmart uses shared scans on repeated inputs but binary serde.
  const auto ysmart = PlanYSmartStyle(q, *cluster_);
  ASSERT_TRUE(ysmart.ok());
  EXPECT_FALSE(ysmart->jobs[0].text_serde);
}

TEST_F(CoreTest, PigUsesSizeBasedReducers) {
  std::vector<RelationPtr> rels = {
      MakeRel(50, 10, 50, /*logical=*/40000000),   // ~1.1 GB logical
      MakeRel(50, 10, 51, /*logical=*/40000000),
      MakeRel(50, 10, 52, /*logical=*/40000000)};
  const Query q = ChainQuery(rels);
  const auto pig = PlanPigStyle(q, *cluster_);
  ASSERT_TRUE(pig.ok());
  // ~2.2 GB of input => a handful of reducers, far fewer than 96.
  EXPECT_LT(pig->jobs[0].num_reduce_tasks, 16);
  EXPECT_GE(pig->jobs[0].num_reduce_tasks, 2);
}

TEST_F(CoreTest, ScarceUnitsChangeThePlanOrTiming) {
  std::vector<RelationPtr> rels = {
      MakeRel(100, 20, 60, 40000000), MakeRel(100, 20, 61, 40000000),
      MakeRel(100, 20, 62, 40000000)};
  const Query q = ChainQuery(rels);

  Planner wide(cluster_.get(), params_);
  const auto wide_plan = wide.Plan(q);
  ASSERT_TRUE(wide_plan.ok());

  ClusterConfig narrow_cfg = cluster_->config();
  narrow_cfg.num_workers = 8;
  SimCluster narrow_cluster(narrow_cfg);
  Planner narrow(&narrow_cluster, params_);
  const auto narrow_plan = narrow.Plan(q);
  ASSERT_TRUE(narrow_plan.ok());

  for (const PlanJob& job : narrow_plan->jobs) {
    EXPECT_LE(job.num_reduce_tasks, 8);
  }
  EXPECT_GE(narrow_plan->est_makespan_sec,
            wide_plan->est_makespan_sec * 0.99);
}

TEST(ColumnPruningTest, RequiredColumnsFollowPendingConditionsAndOutputs) {
  std::vector<RelationPtr> rels = {MakeRel(10, 5, 90), MakeRel(10, 5, 91),
                                   MakeRel(10, 5, 92)};
  const Query q = ChainQuery(rels);  // θ0: R0.a<=R1.a, θ1: R1.b=R2.b; out R2.a

  // Both conditions pending: R1 must carry both endpoints.
  EXPECT_EQ(RequiredColumnsForBase(q, 1, {0, 1}),
            (std::vector<int>{0, 1}));
  // Only θ1 pending: R1 keeps just column b; R0 keeps nothing.
  EXPECT_EQ(RequiredColumnsForBase(q, 1, {1}), (std::vector<int>{1}));
  EXPECT_TRUE(RequiredColumnsForBase(q, 0, {1}).empty());
  // The projection keeps R2.a alive even with nothing pending.
  EXPECT_EQ(RequiredColumnsForBase(q, 2, {}), (std::vector<int>{0}));
}

TEST(ColumnPruningTest, AnnotationUsesDescendantsNotSiblings) {
  std::vector<RelationPtr> rels = {MakeRel(10, 5, 93), MakeRel(10, 5, 94),
                                   MakeRel(10, 5, 95)};
  const Query q = ChainQuery(rels);

  // Cascade shape: job0 evaluates θ0 over {R0, R1}; job1 folds in R2 with
  // θ1. Job0's output must keep R1.b (θ1 is downstream) but drop R1.a (θ0
  // is done) and everything of R0 (rid-only).
  QueryPlan cascade;
  PlanJob j0;
  j0.inputs = {PlanInput::Base(0), PlanInput::Base(1)};
  j0.thetas = {0};
  PlanJob j1;
  j1.inputs = {PlanInput::Job(0), PlanInput::Base(2)};
  j1.thetas = {1};
  cascade.jobs = {j0, j1};
  AnnotateRequiredColumns(q, &cascade);
  ASSERT_EQ(cascade.jobs[0].output_columns.size(), 2u);
  EXPECT_TRUE(cascade.jobs[0].output_columns[0].columns.empty());  // R0
  EXPECT_EQ(cascade.jobs[0].output_columns[1].columns,
            (std::vector<int>{1}));  // R1.b for θ1
  // The final job's output carries only the projection (R2.a).
  ASSERT_EQ(cascade.jobs[1].output_columns.size(), 3u);
  EXPECT_TRUE(cascade.jobs[1].output_columns[0].columns.empty());
  EXPECT_TRUE(cascade.jobs[1].output_columns[1].columns.empty());
  EXPECT_EQ(cascade.jobs[1].output_columns[2].columns,
            (std::vector<int>{0}));

  // Set-cover shape: two sibling joins recombined by a rid-merge. A
  // sibling's condition is evaluated on the sibling's own tuples and
  // never re-checked by the merge, so it must NOT keep columns alive:
  // both join outputs carry only the projection columns.
  QueryPlan cover;
  PlanJob a;
  a.inputs = {PlanInput::Base(0), PlanInput::Base(1)};
  a.thetas = {0};
  PlanJob b;
  b.inputs = {PlanInput::Base(1), PlanInput::Base(2)};
  b.thetas = {1};
  PlanJob merge;
  merge.kind = PlanJobKind::kMerge;
  merge.inputs = {PlanInput::Job(0), PlanInput::Job(1)};
  cover.jobs = {a, b, merge};
  AnnotateRequiredColumns(q, &cover);
  for (const RequiredColumns& rc : cover.jobs[0].output_columns) {
    EXPECT_TRUE(rc.columns.empty()) << "base " << rc.base;
  }
  ASSERT_EQ(cover.jobs[1].output_columns.size(), 2u);
  EXPECT_EQ(cover.jobs[1].output_columns[1].columns,
            (std::vector<int>{0}));  // R2.a projection
}

TEST_F(CoreTest, PlannerReactsToColumnPruning) {
  std::vector<RelationPtr> rels = {
      MakeRel(100, 20, 96, 40000000), MakeRel(100, 20, 97, 40000000),
      MakeRel(100, 20, 98, 40000000)};
  const Query q = ChainQuery(rels);

  PlannerOptions pruned_options;
  Planner pruned(cluster_.get(), params_, pruned_options);
  PlannerOptions full_options;
  full_options.enable_column_pruning = false;
  Planner full(cluster_.get(), params_, full_options);

  const auto pruned_plan = pruned.Plan(q);
  const auto full_plan = full.Plan(q);
  ASSERT_TRUE(pruned_plan.ok());
  ASSERT_TRUE(full_plan.ok());
  // Thinner tuples can only help the estimated makespan.
  EXPECT_LE(pruned_plan->est_makespan_sec, full_plan->est_makespan_sec);
  // Pruned plans are annotated; full-width plans are not.
  for (const PlanJob& job : pruned_plan->jobs) {
    EXPECT_FALSE(job.output_columns.empty());
  }
  for (const PlanJob& job : full_plan->jobs) {
    EXPECT_TRUE(job.output_columns.empty());
  }
}

TEST_F(CoreTest, ExecutorRejectsMalformedPlans) {
  std::vector<RelationPtr> rels = {MakeRel(10, 5, 70), MakeRel(10, 5, 71),
                                   MakeRel(10, 5, 72)};
  const Query q = ChainQuery(rels);
  Executor executor(cluster_.get());
  QueryPlan empty;
  EXPECT_FALSE(executor.Execute(q, empty).ok());

  QueryPlan forward_ref;
  PlanJob job;
  job.kind = PlanJobKind::kMerge;
  job.inputs = {PlanInput::Job(3), PlanInput::Job(4)};
  forward_ref.jobs.push_back(job);
  EXPECT_FALSE(executor.Execute(q, forward_ref).ok());
}

TEST_F(CoreTest, ResultSelectivityIsLogical) {
  std::vector<RelationPtr> rels = {
      MakeRel(80, 15, 80, 8000), MakeRel(80, 15, 81, 8000),
      MakeRel(80, 15, 82, 8000)};
  const Query q = ChainQuery(rels);
  Planner planner(cluster_.get(), params_);
  Executor executor(cluster_.get());
  const auto result = executor.Execute(q, *planner.Plan(q));
  ASSERT_TRUE(result.ok());
  // selectivity = logical result rows / (8000^3); logical rows scale the
  // physical count by 100 (β rule).
  const double expected =
      static_cast<double>(result->result_ids->num_rows()) * 100.0 /
      (8000.0 * 8000.0 * 8000.0);
  EXPECT_NEAR(result->result_selectivity, expected, expected * 0.01);
}

}  // namespace
}  // namespace mrtheta
