// Tests for the cost model: prediction, calibration fidelity, kR choice.

#include <cmath>

#include <gtest/gtest.h>

#include "src/cost/calibration.h"
#include "src/cost/cost_model.h"
#include "src/cost/kr_chooser.h"
#include "src/hilbert/hilbert.h"

namespace mrtheta {
namespace {

TEST(PiecewiseLinearTest, InterpolatesAndExtrapolates) {
  PiecewiseLinear f({1.0, 2.0, 4.0}, {10.0, 20.0, 40.0});
  EXPECT_DOUBLE_EQ(f(1.0), 10.0);
  EXPECT_DOUBLE_EQ(f(1.5), 15.0);
  EXPECT_DOUBLE_EQ(f(3.0), 30.0);
  EXPECT_DOUBLE_EQ(f(0.5), 10.0);   // clamped left
  EXPECT_DOUBLE_EQ(f(8.0), 80.0);   // extrapolated right with last slope
}

TEST(PiecewiseLinearTest, SinglePoint) {
  PiecewiseLinear f({2.0}, {5.0});
  EXPECT_DOUBLE_EQ(f(0.0), 5.0);
  EXPECT_DOUBLE_EQ(f(100.0), 5.0);
}

CostModelParams SimpleParams() {
  CostModelParams p;
  p.c1_read_sec_per_byte = 1e-8;
  p.c1_write_sec_per_byte = 3e-8;
  p.c2_net_sec_per_byte = 5e-9;
  p.comparisons_per_sec = 1e9;
  p.p_spill = PiecewiseLinear({1.0}, {1e-8});
  p.q_conn = PiecewiseLinear({1.0, 64.0}, {0.01, 1.0});
  return p;
}

JobProfile SimpleProfile() {
  JobProfile prof;
  prof.input_bytes = 10.0 * kGiB;
  prof.alpha = 1.0;
  prof.output_bytes = 1.0 * kGiB;
  prof.num_reduce_tasks = 16;
  return prof;
}

TEST(PredictJobTimeTest, BreakdownAddsUp) {
  const CostBreakdown b = PredictJobTime(SimpleParams(), ClusterConfig{},
                                         SimpleProfile(), 96);
  EXPECT_GT(b.t_map_task, 0.0);
  EXPECT_GT(b.jm, 0.0);
  EXPECT_GT(b.t_reduce_task, 0.0);
  EXPECT_NEAR(b.total, b.jm + b.copy_after_maps + b.jr, 1e-9);
  EXPECT_EQ(b.map_waves, 2);  // 160 map tasks on 96 slots
  EXPECT_EQ(b.reduce_waves, 1);
}

TEST(PredictJobTimeTest, StartupAddsConstant) {
  CostModelParams p = SimpleParams();
  const double base =
      PredictJobTime(p, ClusterConfig{}, SimpleProfile(), 96).total;
  p.job_startup_sec = 30.0;
  const double with =
      PredictJobTime(p, ClusterConfig{}, SimpleProfile(), 96).total;
  EXPECT_NEAR(with - base, 30.0, 1e-9);
}

TEST(PredictJobTimeTest, MoreInputMeansMoreTime) {
  JobProfile small = SimpleProfile();
  JobProfile big = SimpleProfile();
  big.input_bytes *= 4;
  const auto params = SimpleParams();
  EXPECT_LT(PredictJobTime(params, ClusterConfig{}, small, 96).total,
            PredictJobTime(params, ClusterConfig{}, big, 96).total);
}

TEST(PredictJobTimeTest, FewerSlotsMeansMoreWaves) {
  const auto params = SimpleParams();
  const auto wide = PredictJobTime(params, ClusterConfig{}, SimpleProfile(),
                                   96);
  const auto narrow = PredictJobTime(params, ClusterConfig{},
                                     SimpleProfile(), 16);
  EXPECT_GT(narrow.map_waves, wide.map_waves);
  EXPECT_GT(narrow.total, wide.total);
}

TEST(PredictJobTimeTest, SkewRaisesReduceTime) {
  JobProfile skewed = SimpleProfile();
  skewed.sigma_reduce_bytes = skewed.alpha * skewed.input_bytes /
                              skewed.num_reduce_tasks;
  const auto params = SimpleParams();
  EXPECT_GT(
      PredictJobTime(params, ClusterConfig{}, skewed, 96).t_reduce_task,
      PredictJobTime(params, ClusterConfig{}, SimpleProfile(), 96)
          .t_reduce_task);
}

// ---- Calibration: the fit must recover the simulator's ground truth ----

TEST(CalibrationTest, RecoversDiskAndNetworkConstants) {
  ClusterConfig cfg;
  SimCluster cluster(cfg);
  const auto report = CalibrateCostModel(cluster);
  ASSERT_TRUE(report.ok());
  const CostModelParams& p = report->params;
  EXPECT_NEAR(p.c1_read_sec_per_byte, cfg.SecPerByteRead(),
              0.2 * cfg.SecPerByteRead());
  EXPECT_NEAR(p.c2_net_sec_per_byte, cfg.SecPerByteNet(),
              0.3 * cfg.SecPerByteNet());
  // c1_write absorbs the replication pipeline.
  EXPECT_NEAR(p.c1_write_sec_per_byte, cfg.OutputWriteSecPerByte(),
              0.3 * cfg.OutputWriteSecPerByte());
  EXPECT_NEAR(p.job_startup_sec, cfg.job_startup_sec,
              0.2 * cfg.job_startup_sec + 1.0);
}

TEST(CalibrationTest, FittedSpillMatchesGroundTruth) {
  ClusterConfig cfg;
  SimCluster cluster(cfg);
  const auto report = CalibrateCostModel(cluster);
  ASSERT_TRUE(report.ok());
  // p(v) within 30% of the hidden SpillSecPerByte across probe range.
  for (double v : {8.0 * kMiB, 128.0 * kMiB, 1024.0 * kMiB}) {
    const double truth = cfg.SpillSecPerByte(v);
    const double fitted = report->params.p_spill(v);
    EXPECT_NEAR(fitted, truth, 0.3 * truth) << "at " << v;
  }
  // p grows with volume once spilling multi-pass kicks in (Fig. 7b).
  EXPECT_GT(report->params.p_spill(2048.0 * kMiB),
            report->params.p_spill(64.0 * kMiB));
}

TEST(CalibrationTest, FittedConnOverheadGrowsWithReducers) {
  SimCluster cluster(ClusterConfig{});
  const auto report = CalibrateCostModel(cluster);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->params.q_conn(64.0), report->params.q_conn(4.0));
  // Superlinear (the paper's "rapid growth of q"): q(64)/q(8) > 64/8.
  EXPECT_GT(report->params.q_conn(64.0) / report->params.q_conn(8.0), 8.0);
}

TEST(CalibrationTest, ComparisonRateInfiniteWhenCpuNotCharged) {
  SimCluster cluster(ClusterConfig{});  // charge_comparison_cpu = false
  const auto report = CalibrateCostModel(cluster);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(std::isinf(report->params.comparisons_per_sec));
}

TEST(CalibrationTest, ComparisonRateRecoveredWhenCharged) {
  ClusterConfig cfg;
  cfg.charge_comparison_cpu = true;
  SimCluster cluster(cfg);
  const auto report = CalibrateCostModel(cluster);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->params.comparisons_per_sec, cfg.comparisons_per_sec,
              0.3 * cfg.comparisons_per_sec);
}

TEST(CalibrationTest, PredictionMatchesSimulation) {
  // Fig. 8's claim: the fitted model predicts simulated job times closely.
  ClusterConfig cfg;
  SimCluster cluster(cfg);
  const auto report = CalibrateCostModel(cluster);
  ASSERT_TRUE(report.ok());
  for (double alpha : {0.2, 1.0, 3.0}) {
    SyntheticJobSpec job;
    job.input_bytes = 3.0 * kGiB;
    job.alpha = alpha;
    job.num_reduce_tasks = 16;
    job.output_bytes = 0.5 * kGiB;
    const auto sim = RunSyntheticJob(cluster, job);
    ASSERT_TRUE(sim.ok());
    const double simulated = ToSeconds(sim->finish - sim->release);
    JobProfile profile;
    profile.input_bytes = job.input_bytes;
    profile.alpha = alpha;
    profile.output_bytes = job.output_bytes;
    profile.num_reduce_tasks = 16;
    const double predicted =
        PredictJobTime(report->params, cfg, profile, cfg.num_workers).total;
    EXPECT_NEAR(predicted, simulated, 0.35 * simulated)
        << "alpha=" << alpha;
  }
}

TEST(CalibrationTest, RejectsOversizedProbe) {
  ClusterConfig cfg;
  cfg.num_workers = 4;  // probe of 2 GiB needs 32 map slots
  SimCluster cluster(cfg);
  EXPECT_FALSE(CalibrateCostModel(cluster).ok());
}

// ---- kR choice ----

TEST(KrChooserTest, DeltaSaturatesAtScale) {
  // Eq. 10 with raw cardinalities: the workload term dominates and pushes
  // kR to the cap (the documented reason the planner defaults to the
  // cost-based chooser).
  std::vector<double> cards = {1e8, 1e8, 1e8};
  const KrChoice choice = ChooseKrByDelta(cards, 96, 0.4);
  EXPECT_EQ(choice.kr, 96);
}

TEST(KrChooserTest, DeltaBalancesTinyRelations) {
  // With tiny cardinalities the duplication term matters and kR stays low.
  std::vector<double> cards = {4.0, 4.0};
  const KrChoice choice = ChooseKrByDelta(cards, 96, 0.4);
  EXPECT_LT(choice.kr, 96);
}

TEST(KrChooserTest, CostBasedFindsInteriorOptimum) {
  // A synthetic profile where more reducers shrink per-task work but
  // inflate duplication: the optimum is strictly between 1 and the cap.
  CostModelParams params = SimpleParams();
  ClusterConfig cfg;
  auto profile_for = [](int k) {
    JobProfile p;
    p.input_bytes = 20.0 * kGiB;
    p.alpha = ApproxDuplicationFactor(3, k);
    p.output_bytes = kGiB;
    p.num_reduce_tasks = k;
    return p;
  };
  const KrChoice choice =
      ChooseKrByCost(params, cfg, profile_for, 96, 96);
  EXPECT_GT(choice.kr, 1);
  EXPECT_LT(choice.kr, 96);
}

TEST(PowerFitTest, RecoversExactLaw) {
  // y = 3 x^0.5
  std::vector<double> xs = {1, 4, 9, 16, 100};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * std::sqrt(x));
  const PowerFit fit = FitPowerLaw(xs, ys);
  EXPECT_NEAR(fit.a, 3.0, 1e-6);
  EXPECT_NEAR(fit.b, 0.5, 1e-6);
  EXPECT_NEAR(fit(25.0), 15.0, 1e-6);
}

}  // namespace
}  // namespace mrtheta
