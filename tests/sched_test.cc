// Tests for T selection (greedy weighted set cover) and the malleable
// scheduler.

#include <cmath>

#include <gtest/gtest.h>

#include "src/sched/malleable.h"
#include "src/sched/set_cover.h"

namespace mrtheta {
namespace {

TEST(SetCoverTest, PicksObviousCover) {
  std::vector<WeightedSet> sets = {
      {0b0011, 1.0},
      {0b1100, 1.0},
      {0b1111, 10.0},
  };
  const auto cover = GreedyWeightedSetCover(sets, 0b1111);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->size(), 2u);
  EXPECT_TRUE(IsSufficient(sets, *cover, 0b1111));
}

TEST(SetCoverTest, PrefersCheapPerElement) {
  std::vector<WeightedSet> sets = {
      {0b1111, 4.5},  // 1.125 per element
      {0b0001, 1.0},
      {0b0010, 1.0},
      {0b0100, 1.0},
      {0b1000, 1.0},
  };
  const auto cover = GreedyWeightedSetCover(sets, 0b1111);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->size(), 4u);  // singles at 1.0/element beat 1.125
}

TEST(SetCoverTest, OverlapAllowed) {
  // The paper: covers need not be disjoint (Sec. 5.2).
  std::vector<WeightedSet> sets = {{0b0111, 1.0}, {0b1110, 1.0}};
  const auto cover = GreedyWeightedSetCover(sets, 0b1111);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->size(), 2u);
}

TEST(SetCoverTest, FailsWhenInsufficient) {
  std::vector<WeightedSet> sets = {{0b0011, 1.0}};
  EXPECT_FALSE(GreedyWeightedSetCover(sets, 0b0111).ok());
}

TEST(SetCoverTest, IsSufficientValidatesIndices) {
  std::vector<WeightedSet> sets = {{0b0011, 1.0}};
  EXPECT_FALSE(IsSufficient(sets, {5}, 0b0011));
  EXPECT_TRUE(IsSufficient(sets, {0}, 0b0011));
}

MalleableJob FixedJob(double seconds) {
  MalleableJob j;
  j.time_for_slots = [seconds](int) { return seconds; };
  j.max_slots = 1;
  return j;
}

// A perfectly parallelizable job: work / k.
MalleableJob ScalableJob(double work, int max_slots) {
  MalleableJob j;
  j.time_for_slots = [work](int k) { return work / k; };
  j.max_slots = max_slots;
  return j;
}

TEST(MalleableTest, EmptyIsTrivial) {
  const auto result = ScheduleMalleable({}, 8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->makespan, 0.0);
}

TEST(MalleableTest, SingleJobGetsGoodAllotment) {
  const auto result = ScheduleMalleable({ScalableJob(100.0, 16)}, 16);
  ASSERT_TRUE(result.ok());
  // Best possible: 100/16 = 6.25s.
  EXPECT_NEAR(result->makespan, 100.0 / 16, 1e-6);
  EXPECT_EQ(result->jobs[0].slots, 16);
}

TEST(MalleableTest, ParallelJobsShareSlots) {
  std::vector<MalleableJob> jobs = {ScalableJob(100.0, 8),
                                    ScalableJob(100.0, 8)};
  const auto result = ScheduleMalleable(jobs, 8);
  ASSERT_TRUE(result.ok());
  // Optimum: 4 slots each -> 25s. Allow the (1+eps) sweep some slack.
  EXPECT_LE(result->makespan, 26.5);
  EXPECT_GE(result->makespan, 25.0 - 1e-9);
}

TEST(MalleableTest, RespectsDependencies) {
  std::vector<MalleableJob> jobs = {FixedJob(10.0), FixedJob(5.0)};
  jobs[1].deps = {0};
  const auto result = ScheduleMalleable(jobs, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->jobs[1].start, result->jobs[0].finish - 1e-9);
  EXPECT_NEAR(result->makespan, 15.0, 1e-6);
}

TEST(MalleableTest, DiamondDependencies) {
  // a -> {b, c} -> d
  std::vector<MalleableJob> jobs = {FixedJob(5.0), FixedJob(10.0),
                                    FixedJob(10.0), FixedJob(5.0)};
  jobs[1].deps = {0};
  jobs[2].deps = {0};
  jobs[3].deps = {1, 2};
  const auto result = ScheduleMalleable(jobs, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->makespan, 20.0, 1e-6);  // b and c run in parallel
}

TEST(MalleableTest, DetectsCycle) {
  std::vector<MalleableJob> jobs = {FixedJob(1.0), FixedJob(1.0)};
  jobs[0].deps = {1};
  jobs[1].deps = {0};
  EXPECT_FALSE(ScheduleMalleable(jobs, 4).ok());
}

TEST(MalleableTest, RejectsBadInput) {
  EXPECT_FALSE(ScheduleMalleable({FixedJob(1.0)}, 0).ok());
  std::vector<MalleableJob> bad = {MalleableJob{}};
  EXPECT_FALSE(ScheduleMalleable(bad, 4).ok());
  std::vector<MalleableJob> out_of_range = {FixedJob(1.0)};
  out_of_range[0].deps = {3};
  EXPECT_FALSE(ScheduleMalleable(out_of_range, 4).ok());
}

TEST(MalleableTest, SlotCapacityNeverExceeded) {
  // 5 jobs needing 3 slots each on 8 slots: at most 2 run concurrently.
  std::vector<MalleableJob> jobs;
  for (int i = 0; i < 5; ++i) {
    MalleableJob j;
    j.time_for_slots = [](int k) { return k >= 3 ? 10.0 : 30.0; };
    j.max_slots = 3;
    jobs.push_back(j);
  }
  const auto result = ScheduleMalleable(jobs, 8);
  ASSERT_TRUE(result.ok());
  // Check pairwise concurrency * slots <= 8 at every start point.
  for (const auto& a : result->jobs) {
    int used = 0;
    for (const auto& b : result->jobs) {
      if (b.start <= a.start && a.start < b.finish) used += b.slots;
    }
    EXPECT_LE(used, 8);
  }
}

TEST(MalleableTest, NonMonotoneTimeFunction) {
  // More reducers is not always faster (Fig. 6): optimum at k=4.
  MalleableJob j;
  j.time_for_slots = [](int k) {
    return 100.0 / k + 2.0 * k;  // min at k=~7
  };
  j.max_slots = 32;
  const auto result = ScheduleMalleable({j}, 32);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->jobs[0].slots, 2);
  EXPECT_LT(result->jobs[0].slots, 16);
  EXPECT_LE(result->makespan, 30.0);
}

TEST(MalleableTest, ScarcityForcesSmallerAllotments) {
  // The kP-aware behaviour the paper tests at kP<=64: with fewer units the
  // scheduler picks smaller allotments rather than serializing.
  std::vector<MalleableJob> jobs = {ScalableJob(120.0, 96),
                                    ScalableJob(120.0, 96),
                                    ScalableJob(120.0, 96)};
  const auto wide = ScheduleMalleable(jobs, 96);
  const auto narrow = ScheduleMalleable(jobs, 24);
  ASSERT_TRUE(wide.ok());
  ASSERT_TRUE(narrow.ok());
  EXPECT_LT(wide->makespan, narrow->makespan);
  // Narrow schedule should still beat naive serialization (3 * 120/24).
  EXPECT_LT(narrow->makespan, 3 * (120.0 / 24) + 1e-6);
}

}  // namespace
}  // namespace mrtheta
