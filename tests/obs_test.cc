// Observability-subsystem tests (docs/OBSERVABILITY.md): the
// MetricsRegistry primitives, the span tracer and its Chrome trace-event
// exporter, the ExplainAnalyze profile, and — the load-bearing contract —
// the tracing differential: a live TraceSession must not perturb one bit
// of a query's rows or simulated metrics, at any thread count.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/theta_engine.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/workload/mobile.h"
#include "src/workload/tpch.h"

namespace mrtheta {
namespace {

// ---- MetricsRegistry primitives ----

TEST(MetricsRegistryTest, CountersGaugesAndStableHandles) {
  MetricsRegistry registry;
  MetricCounter* c = registry.GetCounter("requests");
  c->Increment();
  c->Add(4);
  EXPECT_EQ(c->value(), 5);
  // Same name -> same handle; the count continues.
  EXPECT_EQ(registry.GetCounter("requests"), c);
  registry.GetCounter("requests")->Increment();
  EXPECT_EQ(c->value(), 6);

  MetricGauge* g = registry.GetGauge("occupancy");
  g->Set(2.5);
  g->Add(0.5);
  EXPECT_DOUBLE_EQ(g->value(), 3.0);
}

TEST(MetricsRegistryTest, LabelsSeparateSeriesAndSortInSnapshots) {
  MetricsRegistry registry;
  registry.GetCounter("retries", {{"phase", "map"}})->Add(3);
  registry.GetCounter("retries", {{"phase", "reduce"}})->Add(4);
  // Label order must not matter for identity.
  EXPECT_EQ(registry.GetCounter("retries", {{"phase", "map"}})->value(), 3);

  const std::string text = registry.SnapshotText();
  EXPECT_NE(text.find("retries{phase=\"map\"} 3"), std::string::npos) << text;
  EXPECT_NE(text.find("retries{phase=\"reduce\"} 4"), std::string::npos);
  // Sorted output: map before reduce.
  EXPECT_LT(text.find("phase=\"map\""), text.find("phase=\"reduce\""));
}

TEST(MetricsRegistryTest, HistogramQuantilesBracketTheData) {
  MetricsRegistry registry;
  MetricHistogram* h = registry.GetHistogram("latency", {}, 1e-3);
  for (int i = 1; i <= 100; ++i) h->Record(i * 0.01);  // 0.01 .. 1.00
  EXPECT_EQ(h->count(), 100);
  EXPECT_NEAR(h->sum(), 50.5, 1e-9);
  // Bucketed quantiles are approximate (power-of-two buckets): bracket
  // them within a factor of two of the exact answer.
  const double p50 = h->Quantile(0.5);
  EXPECT_GE(p50, 0.25);
  EXPECT_LE(p50, 1.0);
  const double p99 = h->Quantile(0.99);
  EXPECT_GE(p99, 0.5);
  EXPECT_LE(p99, 2.0);
  EXPECT_LE(h->Quantile(0.5), h->Quantile(0.99));
}

TEST(MetricsRegistryTest, JsonSnapshotParsesAndCarriesEverything) {
  MetricsRegistry registry;
  registry.GetCounter("a")->Add(7);
  registry.GetGauge("b")->Set(1.5);
  registry.GetHistogram("c")->Record(0.25);
  const std::string json = registry.SnapshotJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"a\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

// ---- Tracer / TraceSpan ----

TEST(TracerTest, DisabledSpansRecordNothingAndCostNoState) {
  ASSERT_EQ(Tracer::active(), nullptr);
  {
    TraceSpan span("map-task", "runtime");
    span.Arg("task", int64_t{3}).Flow(42);
    EXPECT_FALSE(span.enabled());
  }
  // Still no session: nothing anywhere to flush.
  EXPECT_EQ(Tracer::active(), nullptr);
}

TEST(TracerTest, SessionCapturesSpansWithArgsAndNesting) {
  Tracer tracer;
  {
    TraceSession session(&tracer);
    ASSERT_EQ(Tracer::active(), &tracer);
    {
      TraceSpan outer("reduce-phase", "runtime");
      outer.Arg("job", std::string("join-0"));
      {
        TraceSpan inner("reduce-task", "runtime");
        inner.Arg("task", int64_t{0});
      }
    }
  }
  EXPECT_EQ(Tracer::active(), nullptr);
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  // Inner span ends (and records) first; both lie on the same thread
  // track and the outer one encloses the inner one.
  EXPECT_STREQ(events[0].name, "reduce-task");
  EXPECT_STREQ(events[1].name, "reduce-phase");
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us + 1e-6);
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].key, "job");
  EXPECT_EQ(events[1].args[0].value, "join-0");
}

TEST(TracerTest, TaskFlowIdIsStableAndDiscriminating) {
  const uint64_t a = TaskFlowId("join-0", "map", 3);
  EXPECT_EQ(a, TaskFlowId("join-0", "map", 3));
  EXPECT_NE(a, TaskFlowId("join-0", "map", 4));
  EXPECT_NE(a, TaskFlowId("join-0", "reduce", 3));
  EXPECT_NE(a, TaskFlowId("join-1", "map", 3));
  EXPECT_NE(a, 0u);
}

// Minimal structural validation of the Chrome JSON without a JSON parser:
// balanced braces, the traceEvents envelope, one thread_name metadata
// record per tid, and flow arrows only for repeated flow ids.
TEST(TracerTest, ChromeExportIsStructurallySound) {
  Tracer tracer;
  {
    TraceSession session(&tracer);
    {
      TraceSpan s1("map-task", "runtime");
      s1.Arg("task", int64_t{0}).Flow(TaskFlowId("j", "map", 0));
    }
    {
      TraceSpan s2("map-task", "runtime");  // retry of the same task
      s2.Arg("task", int64_t{0}).Arg("attempt", int64_t{1});
      s2.Flow(TaskFlowId("j", "map", 0));
    }
    { TraceSpan s3("reduce-task", "runtime"); }  // unrelated, no flow
  }
  const std::string json = tracer.ToChromeJson();

  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // The two attempts share a flow id -> one s/f pair; the lone
  // reduce-task span must not grow arrows.
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
}

// ---- ExplainAnalyze / QueryProfile ----

Query SmallMobileQuery() {
  MobileDataOptions options;
  options.physical_rows = 400;
  options.logical_bytes = 2 * kGiB;
  const auto q = BuildMobileQuery(1, options);
  EXPECT_TRUE(q.ok());
  return *q;
}

// The profile is a rendering of the execution, not a re-measurement:
// every per-job figure must equal the JobExecution it came from, exactly.
TEST(ExplainAnalyzeTest, ProfileMatchesJobMeasurementsExactly) {
  ThetaEngine engine;
  const Query q = SmallMobileQuery();
  const auto result = engine.Execute(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const QueryProfile profile = result->profile();
  ASSERT_EQ(profile.jobs.size(), result->jobs().size());
  EXPECT_EQ(profile.measured_seconds, result->measured_seconds());
  EXPECT_EQ(profile.simulated_seconds, result->simulated_seconds());
  EXPECT_EQ(profile.sim_shuffle_bytes, result->sim_shuffle_bytes());
  EXPECT_EQ(profile.result_rows_physical, result->num_rows());
  EXPECT_EQ(profile.result_selectivity, result->selectivity());
  for (size_t i = 0; i < profile.jobs.size(); ++i) {
    const JobExecutionProfile& jp = profile.jobs[i];
    const JobExecution& job = result->jobs()[i];
    EXPECT_EQ(jp.index, static_cast<int>(i));
    EXPECT_EQ(jp.name, job.name);
    EXPECT_EQ(jp.kind, PlanJobKindName(job.kind));
    EXPECT_EQ(jp.kernel, job.kernel);
    EXPECT_EQ(jp.reduce_tasks, job.reduce_tasks);
    EXPECT_EQ(jp.input_jobs, job.input_jobs);
    EXPECT_EQ(jp.wall_seconds, job.wall_seconds);
    EXPECT_EQ(jp.sim_release_seconds, ToSeconds(job.timing.release));
    EXPECT_EQ(jp.sim_finish_seconds, ToSeconds(job.timing.finish));
    EXPECT_EQ(jp.input_bytes, job.metrics.input_bytes_logical);
    EXPECT_EQ(jp.shuffle_bytes, job.metrics.map_output_bytes_logical);
    EXPECT_EQ(jp.max_reduce_input_bytes, job.metrics.MaxReduceInputBytes());
    EXPECT_EQ(jp.output_rows_physical, job.metrics.output_rows_physical);
    EXPECT_EQ(jp.output_bytes, job.metrics.output_bytes_logical);
    EXPECT_EQ(jp.task_retries, job.faults.task_retries);
    EXPECT_EQ(jp.speculative_launches, job.faults.speculative_launches);
    EXPECT_EQ(jp.skew_heavy_tasks, job.skew_heavy_tasks);
  }

  // Both renderings mention every job by name and neither is empty.
  const std::string table = profile.ToTable();
  const std::string json = profile.ToJson();
  for (const JobExecutionProfile& jp : profile.jobs) {
    EXPECT_NE(table.find(jp.name), std::string::npos) << table;
    EXPECT_NE(json.find("\"" + jp.name + "\""), std::string::npos);
  }
  EXPECT_NE(table.find("total:"), std::string::npos);
}

TEST(ExplainAnalyzeTest, EngineEntryPointExecutesAndProfiles) {
  ThetaEngine engine;
  const Query q = SmallMobileQuery();
  const auto profile = engine.ExplainAnalyze(q);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_FALSE(profile->jobs.empty());
  EXPECT_GT(profile->simulated_seconds, 0.0);
  // ExplainAnalyze executes (unlike Explain).
  EXPECT_EQ(engine.metrics().executions, 1);
}

// ---- The tracing differential ----

struct RunSnapshot {
  std::string rows;
  SimTime makespan = 0;
  int64_t shuffle_bytes = 0;
  std::vector<std::string> job_metrics;
};

std::string DumpRows(const Relation& rows) {
  std::string out;
  for (int64_t r = 0; r < rows.num_rows(); ++r) {
    for (int c = 0; c < rows.schema().num_columns(); ++c) {
      out += rows.Get(r, c).ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

RunSnapshot RunOnce(const Query& q, int threads, bool traced) {
  EngineOptions options;
  options.executor.num_threads = threads;
  ThetaEngine engine(options);
  std::optional<Tracer> tracer;
  std::optional<TraceSession> session;
  if (traced) {
    tracer.emplace();
    session.emplace(&*tracer);
  }
  const auto result = engine.Execute(q);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  RunSnapshot snap;
  if (!result.ok()) return snap;
  snap.rows = DumpRows(result->rows());
  snap.makespan = result->makespan();
  snap.shuffle_bytes = result->sim_shuffle_bytes();
  for (const JobExecution& job : result->jobs()) {
    const JobMeasurement& m = job.metrics;
    std::string line = std::to_string(m.input_bytes_logical) + "/" +
                       std::to_string(m.map_output_bytes_logical) + "/" +
                       std::to_string(m.map_output_records_physical) + "/" +
                       std::to_string(m.output_rows_physical) + "/" +
                       std::to_string(m.output_bytes_logical) + "/r";
    for (int64_t b : m.reduce_input_bytes_logical) {
      line += ":" + std::to_string(b);
    }
    snap.job_metrics.push_back(line);
  }
  if (traced) {
    EXPECT_GT(tracer->num_events(), 0u);
  }
  return snap;
}

// Tracing only observes: with a session open, rows, simulated metrics and
// per-job measurements must be byte-identical to the untraced run — on
// the sequential runner (1 thread) and the parallel one (4 threads), on
// both workloads.
TEST(TracingDifferentialTest, TracedRunIsByteIdenticalOnMobile) {
  const Query q = SmallMobileQuery();
  for (int threads : {1, 4}) {
    const RunSnapshot off = RunOnce(q, threads, false);
    const RunSnapshot on = RunOnce(q, threads, true);
    EXPECT_EQ(off.rows, on.rows) << "threads=" << threads;
    EXPECT_EQ(off.makespan, on.makespan) << "threads=" << threads;
    EXPECT_EQ(off.shuffle_bytes, on.shuffle_bytes);
    EXPECT_EQ(off.job_metrics, on.job_metrics);
    EXPECT_FALSE(off.rows.empty());
  }
}

TEST(TracingDifferentialTest, TracedRunIsByteIdenticalOnTpchQ17) {
  TpchOptions options;
  options.scale_factor = 100;
  options.physical_lineitem_rows = 1200;
  const TpchData db = GenerateTpch(options);
  const auto q17 = BuildTpchQuery(17, db);
  ASSERT_TRUE(q17.ok());
  for (int threads : {1, 4}) {
    const RunSnapshot off = RunOnce(*q17, threads, false);
    const RunSnapshot on = RunOnce(*q17, threads, true);
    EXPECT_EQ(off.rows, on.rows) << "threads=" << threads;
    EXPECT_EQ(off.makespan, on.makespan) << "threads=" << threads;
    EXPECT_EQ(off.shuffle_bytes, on.shuffle_bytes);
    EXPECT_EQ(off.job_metrics, on.job_metrics);
    EXPECT_FALSE(off.rows.empty());
  }
}

// A full engine run under a session produces spans from every layer:
// planner, engine, scheduler and runtime tasks.
TEST(TracingDifferentialTest, EngineRunEmitsSpansFromEveryLayer) {
  Tracer tracer;
  {
    TraceSession session(&tracer);
    ThetaEngine engine;
    const auto result = engine.Execute(SmallMobileQuery());
    ASSERT_TRUE(result.ok());
  }
  std::map<std::string, int> by_name;
  for (const TraceEvent& ev : tracer.events()) ++by_name[ev.name];
  for (const char* expected :
       {"calibrate", "collect-stats", "plan", "execute", "plan-job",
        "map-phase", "shuffle-merge", "reduce-phase", "reduce-task"}) {
    EXPECT_GT(by_name[expected], 0) << "missing span: " << expected;
  }
}

}  // namespace
}  // namespace mrtheta
