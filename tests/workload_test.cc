// Tests for the workload generators and the benchmark query catalog
// (Table 2 / Table 3 structure).

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/workload/flights.h"
#include "src/workload/mobile.h"
#include "src/workload/tpch.h"

namespace mrtheta {
namespace {

// Distinct inequality ops used by a query (Tables 2/3 "Inequality Func.").
std::set<ThetaOp> InequalityOps(const Query& q) {
  std::set<ThetaOp> ops;
  for (const auto& c : q.conditions()) {
    if (IsInequality(c.op)) ops.insert(c.op);
  }
  return ops;
}

TEST(MobileGenTest, SchemaAndRanges) {
  MobileDataOptions opts;
  opts.physical_rows = 3000;
  RelationPtr calls = GenerateMobileCalls(opts);
  EXPECT_EQ(calls->num_rows(), 3000);
  ASSERT_EQ(calls->schema().num_columns(), 5);
  EXPECT_EQ(calls->schema().column(0).name, "id");
  EXPECT_EQ(calls->schema().column(4).name, "bsc");
  for (int64_t r = 0; r < calls->num_rows(); ++r) {
    EXPECT_GE(calls->GetInt(r, 1), 1);
    EXPECT_LE(calls->GetInt(r, 1), opts.num_days);
    EXPECT_GE(calls->GetInt(r, 2), 0);
    EXPECT_LT(calls->GetInt(r, 2), 86400);
    EXPECT_GE(calls->GetInt(r, 3), 1);
    EXPECT_GE(calls->GetInt(r, 4), 0);
    EXPECT_LT(calls->GetInt(r, 4), opts.num_stations);
  }
}

TEST(MobileGenTest, LogicalBytesHonored) {
  MobileDataOptions opts;
  opts.physical_rows = 100;
  opts.logical_bytes = 20 * kGiB;
  RelationPtr calls = GenerateMobileCalls(opts);
  EXPECT_NEAR(static_cast<double>(calls->logical_bytes()),
              static_cast<double>(20 * kGiB), 1e3);
}

TEST(MobileGenTest, DiurnalPatternHasPeaks) {
  MobileDataOptions opts;
  opts.physical_rows = 40000;
  RelationPtr calls = GenerateMobileCalls(opts);
  std::map<int, int> by_hour;
  for (int64_t r = 0; r < calls->num_rows(); ++r) {
    by_hour[static_cast<int>(calls->GetInt(r, 2) / 3600)]++;
  }
  // Day hours (10-20) must be busier than night hours (1-5).
  int day = 0, night = 0;
  for (int h = 10; h <= 20; ++h) day += by_hour[h];
  for (int h = 1; h <= 5; ++h) night += by_hour[h];
  EXPECT_GT(day / 11.0, 2.0 * night / 5.0);
}

TEST(MobileGenTest, StationsAreSkewed) {
  MobileDataOptions opts;
  opts.physical_rows = 30000;
  RelationPtr calls = GenerateMobileCalls(opts);
  std::map<int64_t, int> counts;
  for (int64_t r = 0; r < calls->num_rows(); ++r) {
    counts[calls->GetInt(r, 4)]++;
  }
  int max_count = 0;
  for (const auto& [s, c] : counts) max_count = std::max(max_count, c);
  // A Zipf top station far exceeds the uniform share.
  EXPECT_GT(max_count, 3 * 30000 / opts.num_stations);
}

TEST(MobileGenTest, InstancesAreIndependent) {
  MobileDataOptions opts;
  opts.physical_rows = 500;
  RelationPtr a = GenerateMobileCallsInstance(opts, 0);
  RelationPtr b = GenerateMobileCallsInstance(opts, 1);
  int identical = 0;
  for (int64_t r = 0; r < a->num_rows(); ++r) {
    identical += a->GetInt(r, 2) == b->GetInt(r, 2);
  }
  EXPECT_LT(identical, 50);  // begin-times coincide only by chance
}

TEST(MobileQueryTest, Table2Structure) {
  MobileDataOptions opts;
  opts.physical_rows = 50;
  // Q1: 3 relations, 4 conditions, {<=, >=}.
  const auto q1 = BuildMobileQuery(1, opts);
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(q1->num_relations(), 3);
  EXPECT_EQ(q1->num_conditions(), 4);
  EXPECT_EQ(InequalityOps(*q1),
            (std::set<ThetaOp>{ThetaOp::kLe, ThetaOp::kGe}));
  // Q2 adds <>.
  const auto q2 = BuildMobileQuery(2, opts);
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(InequalityOps(*q2),
            (std::set<ThetaOp>{ThetaOp::kLe, ThetaOp::kGe, ThetaOp::kNe}));
  // Q3: 4 relations, 4 conditions, {<, >}.
  const auto q3 = BuildMobileQuery(3, opts);
  ASSERT_TRUE(q3.ok());
  EXPECT_EQ(q3->num_relations(), 4);
  EXPECT_EQ(q3->num_conditions(), 4);
  EXPECT_EQ(InequalityOps(*q3),
            (std::set<ThetaOp>{ThetaOp::kLt, ThetaOp::kGt}));
  // Q4: {<, >, <>}.
  const auto q4 = BuildMobileQuery(4, opts);
  ASSERT_TRUE(q4.ok());
  EXPECT_EQ(InequalityOps(*q4),
            (std::set<ThetaOp>{ThetaOp::kLt, ThetaOp::kGt, ThetaOp::kNe}));
  EXPECT_FALSE(BuildMobileQuery(5, opts).ok());
}

TEST(MobileQueryTest, QueriesValidate) {
  MobileDataOptions opts;
  opts.physical_rows = 50;
  for (int which = 1; which <= 4; ++which) {
    const auto q = BuildMobileQuery(which, opts);
    ASSERT_TRUE(q.ok());
    EXPECT_TRUE(q->Validate().ok()) << "Q" << which;
  }
}

TEST(TpchGenTest, TableShapes) {
  TpchOptions opts;
  opts.physical_lineitem_rows = 2400;
  opts.scale_factor = 10.0;
  const TpchData db = GenerateTpch(opts);
  EXPECT_EQ(db.region->num_rows(), 5);
  EXPECT_EQ(db.nation->num_rows(), 25);
  EXPECT_EQ(db.lineitem->num_rows(), 2400);
  EXPECT_EQ(db.orders->num_rows(), 600);
  EXPECT_EQ(db.lineitem->logical_rows(), 60000000);
  EXPECT_EQ(db.orders->logical_rows(), 15000000);
  EXPECT_EQ(db.customer->logical_rows(), 1500000);
}

TEST(TpchGenTest, ForeignKeysAreValid) {
  TpchOptions opts;
  opts.physical_lineitem_rows = 1200;
  const TpchData db = GenerateTpch(opts);
  const auto orderkey_col = *db.lineitem->schema().FindColumn("l_orderkey");
  for (int64_t r = 0; r < db.lineitem->num_rows(); ++r) {
    const int64_t okey = db.lineitem->GetInt(r, orderkey_col);
    ASSERT_GE(okey, 0);
    ASSERT_LT(okey, db.orders->num_rows());
  }
  const auto custkey_col = *db.orders->schema().FindColumn("o_custkey");
  for (int64_t r = 0; r < db.orders->num_rows(); ++r) {
    ASSERT_LT(db.orders->GetInt(r, custkey_col), db.customer->num_rows());
  }
}

TEST(TpchGenTest, LineitemDatesAreConsistent) {
  TpchOptions opts;
  opts.physical_lineitem_rows = 1200;
  const TpchData db = GenerateTpch(opts);
  const Relation& li = *db.lineitem;
  const int ship = *li.schema().FindColumn("l_shipdate");
  const int receipt = *li.schema().FindColumn("l_receiptdate");
  const int okey = *li.schema().FindColumn("l_orderkey");
  const int odate = *db.orders->schema().FindColumn("o_orderdate");
  for (int64_t r = 0; r < li.num_rows(); ++r) {
    EXPECT_GT(li.GetInt(r, ship), db.orders->GetInt(li.GetInt(r, okey),
                                                    odate));
    EXPECT_GT(li.GetInt(r, receipt), li.GetInt(r, ship));
  }
}

TEST(TpchGenTest, LineitemInstancesShareOrders) {
  TpchOptions opts;
  opts.physical_lineitem_rows = 800;
  opts.num_lineitem_instances = 3;
  const TpchData db = GenerateTpch(opts);
  ASSERT_EQ(db.lineitem_samples.size(), 3u);
  // Same FK structure, different attribute draws.
  const int qty = *db.lineitem->schema().FindColumn("l_quantity");
  int diffs = 0;
  for (int64_t r = 0; r < 800; ++r) {
    EXPECT_EQ(db.lineitem_samples[0]->GetInt(r, 0),
              db.lineitem_samples[1]->GetInt(r, 0));  // same l_orderkey
    diffs += db.lineitem_samples[0]->GetInt(r, qty) !=
             db.lineitem_samples[1]->GetInt(r, qty);
  }
  EXPECT_GT(diffs, 700);
}

TEST(TpchQueryTest, Table3Structure) {
  TpchOptions opts;
  opts.physical_lineitem_rows = 800;
  const TpchData db = GenerateTpch(opts);
  // Q7: 5 relations, 8 conditions, {<=, >=}.
  const auto q7 = BuildTpchQuery(7, db);
  ASSERT_TRUE(q7.ok());
  EXPECT_EQ(q7->num_relations(), 5);
  EXPECT_EQ(q7->num_conditions(), 8);
  EXPECT_EQ(InequalityOps(*q7),
            (std::set<ThetaOp>{ThetaOp::kLe, ThetaOp::kGe}));
  // Q17: 3 relations, 4 conditions, {<=}.
  const auto q17 = BuildTpchQuery(17, db);
  ASSERT_TRUE(q17.ok());
  EXPECT_EQ(q17->num_relations(), 3);
  EXPECT_EQ(q17->num_conditions(), 4);
  EXPECT_EQ(InequalityOps(*q17), (std::set<ThetaOp>{ThetaOp::kLe}));
  // Q18: 4 relations, 4 conditions, {>=}.
  const auto q18 = BuildTpchQuery(18, db);
  ASSERT_TRUE(q18.ok());
  EXPECT_EQ(q18->num_relations(), 4);
  EXPECT_EQ(q18->num_conditions(), 4);
  EXPECT_EQ(InequalityOps(*q18), (std::set<ThetaOp>{ThetaOp::kGe}));
  // Q21: 6 relations, 8 conditions, {>=, <>}.
  const auto q21 = BuildTpchQuery(21, db);
  ASSERT_TRUE(q21.ok());
  EXPECT_EQ(q21->num_relations(), 6);
  EXPECT_EQ(q21->num_conditions(), 8);
  EXPECT_EQ(InequalityOps(*q21),
            (std::set<ThetaOp>{ThetaOp::kGe, ThetaOp::kNe}));
  EXPECT_FALSE(BuildTpchQuery(1, db).ok());
}

TEST(TpchQueryTest, QueriesValidate) {
  TpchOptions opts;
  opts.physical_lineitem_rows = 800;
  const TpchData db = GenerateTpch(opts);
  for (int which : {7, 17, 18, 21}) {
    const auto q = BuildTpchQuery(which, db);
    ASSERT_TRUE(q.ok());
    EXPECT_TRUE(q->Validate().ok()) << "Q" << which;
  }
}

TEST(FlightsTest, LegsAreConsistent) {
  FlightLegOptions opts;
  opts.physical_rows = 300;
  RelationPtr leg = GenerateFlightLeg(0, opts);
  EXPECT_EQ(leg->num_rows(), 300);
  const int dt = *leg->schema().FindColumn("dt");
  const int at = *leg->schema().FindColumn("at");
  for (int64_t r = 0; r < leg->num_rows(); ++r) {
    EXPECT_GE(leg->GetInt(r, at) - leg->GetInt(r, dt), opts.min_duration);
    EXPECT_LE(leg->GetInt(r, at) - leg->GetInt(r, dt), opts.max_duration);
  }
}

TEST(FlightsTest, ItineraryQueryShape) {
  FlightLegOptions opts;
  opts.physical_rows = 50;
  std::vector<RelationPtr> legs = {GenerateFlightLeg(0, opts),
                                   GenerateFlightLeg(1, opts),
                                   GenerateFlightLeg(2, opts)};
  const auto q = BuildItineraryQuery(legs, {StayOver{60, 240},
                                            StayOver{30, 120}});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_relations(), 3);
  EXPECT_EQ(q->num_conditions(), 4);  // two per stop-over
  EXPECT_TRUE(q->Validate().ok());
  // All conditions are strict inequalities with offsets.
  for (const auto& c : q->conditions()) {
    EXPECT_TRUE(c.op == ThetaOp::kLt || c.op == ThetaOp::kGt);
    EXPECT_NE(c.offset, 0.0);
  }
}

TEST(TpchGenTest, LineitemKeySkewKnob) {
  TpchOptions uniform;
  uniform.physical_lineitem_rows = 8000;
  TpchOptions skewed = uniform;
  skewed.lineitem_key_skew = 1.2;
  const TpchData u = GenerateTpch(uniform);
  const TpchData s = GenerateTpch(skewed);
  auto top_partkey_freq = [](const Relation& lineitem) {
    std::map<int64_t, int64_t> counts;
    for (int64_t r = 0; r < lineitem.num_rows(); ++r) {
      counts[lineitem.GetInt(r, 1)]++;  // l_partkey
    }
    int64_t top = 0;
    for (const auto& [k, c] : counts) top = std::max(top, c);
    return static_cast<double>(top) /
           static_cast<double>(lineitem.num_rows());
  };
  // Uniform draw: no part dominates. Zipf(1.2): the top part carries a
  // double-digit share — the heavy hitter the skew subsystem must absorb.
  EXPECT_LT(top_partkey_freq(*u.lineitem), 0.02);
  EXPECT_GT(top_partkey_freq(*s.lineitem), 0.10);
  // The knob must not perturb the FK structure.
  for (int64_t r = 0; r < s.lineitem->num_rows(); ++r) {
    ASSERT_LT(s.lineitem->GetInt(r, 1), s.part->num_rows());
    ASSERT_LT(s.lineitem->GetInt(r, 2), s.supplier->num_rows());
  }
}

TEST(FlightsTest, ItineraryValidatesArguments) {
  FlightLegOptions opts;
  opts.physical_rows = 10;
  std::vector<RelationPtr> one = {GenerateFlightLeg(0, opts)};
  EXPECT_FALSE(BuildItineraryQuery(one, {}).ok());
  std::vector<RelationPtr> two = {GenerateFlightLeg(0, opts),
                                  GenerateFlightLeg(1, opts)};
  EXPECT_FALSE(BuildItineraryQuery(two, {}).ok());  // missing stay-over
}

}  // namespace
}  // namespace mrtheta
