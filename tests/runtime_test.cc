// Tests for the in-process multi-threaded runtime (src/runtime): the
// thread pool, the DAG scheduler, and — most importantly — the determinism
// contract of ParallelJobRunner: for every join operator and every thread
// count, output rows (including order) and all JobMeasurement metrics must
// be bit-identical to the single-threaded reference RunJobPhysically.

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/baselines/baseline_planners.h"
#include "src/common/rng.h"
#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/cost/calibration.h"
#include "src/exec/hilbert_join.h"
#include "src/exec/merge_join.h"
#include "src/exec/naive_join.h"
#include "src/exec/pairwise_join.h"
#include "src/mapreduce/job_runner.h"
#include "src/mem/memory_budget.h"
#include "src/mem/spill.h"
#include "src/runtime/dag_scheduler.h"
#include "src/runtime/parallel_job_runner.h"
#include "src/runtime/thread_pool.h"

namespace mrtheta {
namespace {

// ---- ThreadPool ----

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    constexpr int64_t kTasks = 2000;
    std::vector<int> hits(kTasks, 0);
    pool.ParallelFor(kTasks, [&](int64_t i) { ++hits[i]; });
    for (int64_t i = 0; i < kTasks; ++i) {
      ASSERT_EQ(hits[i], 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, HandlesEmptyAndSingleBatches) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SequentialBatchesReuseWorkers) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(17, [&](int64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50 * 17);
}

TEST(ThreadPoolTest, ConcurrentCallersShareThePool) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  auto burst = [&] {
    for (int round = 0; round < 20; ++round) {
      pool.ParallelFor(31, [&](int64_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
    }
  };
  std::thread a(burst), b(burst);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2 * 20 * 31);
}

// ---- DagScheduler ----

TEST(DagSchedulerTest, EveryNodeRunsAfterItsDeps) {
  // Diamond with a tail: 0 -> {1, 2} -> 3 -> 4, plus the isolated 5.
  const std::vector<std::vector<int>> deps = {{}, {0}, {0}, {1, 2}, {3}, {}};
  for (int threads : {1, 2, 4}) {
    std::mutex mu;
    std::vector<bool> finished(deps.size(), false);
    const Status status = RunDag(deps, threads, [&](int node) {
      std::lock_guard<std::mutex> lock(mu);
      for (int d : deps[node]) {
        EXPECT_TRUE(finished[d])
            << "node " << node << " ran before dep " << d;
      }
      finished[node] = true;
      return Status::OK();
    });
    ASSERT_TRUE(status.ok()) << status.ToString();
    for (size_t i = 0; i < deps.size(); ++i) EXPECT_TRUE(finished[i]);
  }
}

TEST(DagSchedulerTest, SequentialOrderIsLowestIndexFirst) {
  const std::vector<std::vector<int>> deps = {{}, {}, {0}, {}, {2}};
  std::vector<int> order;
  ASSERT_TRUE(RunDag(deps, 1, [&](int node) {
                order.push_back(node);
                return Status::OK();
              }).ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(DagSchedulerTest, ReportsLowestIndexFailureAndStopsScheduling) {
  // 0 and 1 are independent and both fail; 2 depends on 1 and must not run.
  const std::vector<std::vector<int>> deps = {{}, {}, {1}};
  for (int threads : {1, 2, 4}) {
    std::atomic<bool> ran2{false};
    const Status status = RunDag(deps, threads, [&](int node) -> Status {
      if (node == 2) {
        ran2 = true;
        return Status::OK();
      }
      return Status::Internal("node " + std::to_string(node) + " failed");
    });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(), "node 0 failed") << "threads=" << threads;
    EXPECT_FALSE(ran2.load());
  }
}

TEST(DagSchedulerTest, ConcurrentFailuresReportLowestNodeDeterministically) {
  // Regression: four independent nodes all fail *while concurrently
  // in-flight* (a barrier makes sure no node finishes before every node
  // has started, so completion order is genuinely racy). The reported
  // error must be node 0's on every repetition.
  const std::vector<std::vector<int>> deps = {{}, {}, {}, {}};
  for (int rep = 0; rep < 20; ++rep) {
    std::atomic<int> started{0};
    const Status status = RunDag(deps, 4, [&](int node) -> Status {
      started.fetch_add(1);
      while (started.load() < 4) std::this_thread::yield();
      return Status::Internal("node " + std::to_string(node) + " failed");
    });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(), "node 0 failed") << "rep=" << rep;
  }
}

TEST(DagSchedulerTest, CancelledNodeNeverMasksTheRealFailure) {
  // Node 0 reports kCancelled (it observed a cancellation token), node 1
  // fails for real; a barrier keeps both in flight so both statuses are
  // recorded. Despite node 0's lower index, the real failure must surface
  // — a cancellation is a consequence, not a root cause.
  const std::vector<std::vector<int>> deps = {{}, {}};
  for (int rep = 0; rep < 20; ++rep) {
    std::atomic<int> started{0};
    const Status status = RunDag(deps, 2, [&](int node) -> Status {
      started.fetch_add(1);
      while (started.load() < 2) std::this_thread::yield();
      if (node == 0) return Status::Cancelled("node 0 cancelled");
      return Status::Aborted("node 1 exhausted its retries");
    });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kAborted) << "rep=" << rep;
    EXPECT_EQ(status.message(), "node 1 exhausted its retries");
  }
  // All-cancelled: the lowest-index cancellation surfaces.
  std::atomic<int> started{0};
  const Status all_cancelled = RunDag(deps, 2, [&](int node) -> Status {
    started.fetch_add(1);
    while (started.load() < 2) std::this_thread::yield();
    return Status::Cancelled("node " + std::to_string(node) + " cancelled");
  });
  ASSERT_FALSE(all_cancelled.ok());
  EXPECT_EQ(all_cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(all_cancelled.message(), "node 0 cancelled");
}

TEST(DagSchedulerTest, RejectsCyclesAndBadDeps) {
  auto noop = [](int) { return Status::OK(); };
  EXPECT_FALSE(RunDag({{1}, {0}}, 2, noop).ok());          // 2-cycle
  EXPECT_FALSE(RunDag({{}, {1}}, 2, noop).ok());           // self-dep
  EXPECT_FALSE(RunDag({{7}}, 2, noop).ok());               // out of range
  EXPECT_FALSE(RunDag({{}, {2}, {1}}, 2, noop).ok());      // cycle + root
  EXPECT_TRUE(RunDag({}, 2, noop).ok());                   // empty dag
}

// ---- ParallelJobRunner differential suite ----

RelationPtr MakeRel(const char* name, int64_t rows, int64_t key_range,
                    uint64_t seed) {
  auto rel = std::make_shared<Relation>(
      name, Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    rel->AppendIntRow({static_cast<int64_t>(rng.Uniform(key_range)),
                       static_cast<int64_t>(rng.Uniform(10))});
  }
  return rel;
}

// Order-sensitive equality: the runtime's contract is identical rows in
// identical order, strictly stronger than the row-set equality the
// operator tests use.
::testing::AssertionResult IdenticalRelations(const Relation& a,
                                              const Relation& b) {
  if (a.num_rows() != b.num_rows()) {
    return ::testing::AssertionFailure()
           << "row count " << a.num_rows() << " vs " << b.num_rows();
  }
  if (a.schema().num_columns() != b.schema().num_columns()) {
    return ::testing::AssertionFailure() << "column count differs";
  }
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.schema().num_columns(); ++c) {
      if (a.Get(r, c).ToString() != b.Get(r, c).ToString()) {
        return ::testing::AssertionFailure()
               << "cell (" << r << ", " << c << "): "
               << a.Get(r, c).ToString() << " vs " << b.Get(r, c).ToString();
      }
    }
  }
  if (a.logical_rows() != b.logical_rows()) {
    return ::testing::AssertionFailure()
           << "logical rows " << a.logical_rows() << " vs "
           << b.logical_rows();
  }
  return ::testing::AssertionSuccess();
}

// Exact equality on every JobMeasurement field; doubles must match to the
// bit (same values accumulated in the same order).
::testing::AssertionResult IdenticalMetrics(const JobMeasurement& a,
                                            const JobMeasurement& b) {
  if (a.input_bytes_logical != b.input_bytes_logical ||
      a.input_bytes_physical != b.input_bytes_physical) {
    return ::testing::AssertionFailure() << "input bytes differ";
  }
  if (a.map_output_bytes_logical != b.map_output_bytes_logical) {
    return ::testing::AssertionFailure()
           << "map output bytes " << a.map_output_bytes_logical << " vs "
           << b.map_output_bytes_logical;
  }
  if (a.map_output_records_physical != b.map_output_records_physical) {
    return ::testing::AssertionFailure() << "map output records differ";
  }
  if (a.reduce_input_bytes_logical != b.reduce_input_bytes_logical) {
    return ::testing::AssertionFailure() << "reduce input bytes differ";
  }
  if (a.reduce_comparisons_logical != b.reduce_comparisons_logical) {
    return ::testing::AssertionFailure() << "reduce comparisons differ";
  }
  if (a.output_rows_physical != b.output_rows_physical ||
      a.output_rows_logical != b.output_rows_logical ||
      a.output_bytes_logical != b.output_bytes_logical) {
    return ::testing::AssertionFailure() << "output accounting differs";
  }
  return ::testing::AssertionSuccess();
}

// Runs `spec` through the sequential reference and through the parallel
// runner at several pool sizes; every run must match the reference exactly.
// Small splits force multi-split merges even on the tests' tiny inputs.
// Every spec then re-runs under a 1-byte memory budget (maximal spill
// pressure, docs/MEMORY.md) at {1, 4} threads: spilling may only change
// where records live, never rows or metrics.
void ExpectParallelMatchesSequential(const MapReduceJobSpec& spec,
                                     const std::string& label) {
  const StatusOr<PhysicalJobResult> reference = RunJobPhysically(spec);
  ASSERT_TRUE(reference.ok()) << label << ": " << reference.status().ToString();
  ParallelRunnerOptions options;
  options.min_split_rows = 16;
  options.splits_per_thread = 3;
  for (int threads : {1, 2, 3, 4, 8}) {
    ThreadPool pool(threads);
    const StatusOr<PhysicalJobResult> parallel =
        RunJobParallel(spec, pool, options);
    ASSERT_TRUE(parallel.ok())
        << label << " threads=" << threads << ": "
        << parallel.status().ToString();
    EXPECT_TRUE(IdenticalRelations(*reference->output, *parallel->output))
        << label << " threads=" << threads;
    EXPECT_TRUE(IdenticalMetrics(reference->metrics, parallel->metrics))
        << label << " threads=" << threads;
  }
  SpillDirectory spill_dir;
  ParallelRunnerOptions budgeted = options;
  budgeted.mem_budget_bytes = 1;
  budgeted.spill_dir = &spill_dir;
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    const StatusOr<PhysicalJobResult> spilled =
        RunJobParallel(spec, pool, budgeted);
    ASSERT_TRUE(spilled.ok())
        << label << " budgeted threads=" << threads << ": "
        << spilled.status().ToString();
    EXPECT_TRUE(IdenticalRelations(*reference->output, *spilled->output))
        << label << " budgeted threads=" << threads;
    EXPECT_TRUE(IdenticalMetrics(reference->metrics, spilled->metrics))
        << label << " budgeted threads=" << threads;
  }
}

TEST(ParallelRunnerDifferentialTest, HilbertMultiwayJoin) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(5000 + seed);
    const int num_rels = 2 + static_cast<int>(rng.Uniform(2));
    std::vector<RelationPtr> bases;
    MultiwayJoinJobSpec spec;
    for (int i = 0; i < num_rels; ++i) {
      bases.push_back(
          MakeRel("r", 40 + rng.Uniform(80), 25, 500 + seed * 17 + i));
      spec.inputs.push_back(JoinSide::ForBase(bases.back(), i));
    }
    spec.base_relations = bases;
    for (int i = 0; i + 1 < num_rels; ++i) {
      spec.conditions.push_back(
          {{i, static_cast<int>(rng.Uniform(2))},
           static_cast<ThetaOp>(rng.Uniform(6)),
           {i + 1, static_cast<int>(rng.Uniform(2))},
           0.0,
           i});
    }
    spec.num_reduce_tasks = 1 + static_cast<int>(rng.Uniform(16));
    spec.seed = 900 + seed;
    const auto job = BuildHilbertJoinJob(spec);
    ASSERT_TRUE(job.ok());
    ExpectParallelMatchesSequential(*job,
                                    "hilbert seed=" + std::to_string(seed));
  }
}

TEST(ParallelRunnerDifferentialTest, EquiJoin) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(6000 + seed);
    RelationPtr a = MakeRel("a", 80 + rng.Uniform(120), 25, 600 + seed);
    RelationPtr b = MakeRel("b", 80 + rng.Uniform(120), 25, 700 + seed);
    PairwiseJoinJobSpec spec;
    spec.left = JoinSide::ForBase(a, 0);
    spec.right = JoinSide::ForBase(b, 1);
    spec.base_relations = {a, b};
    spec.conditions = {{{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0}};
    if (rng.Bernoulli(0.5)) {
      spec.conditions.push_back({{0, 1}, ThetaOp::kLe, {1, 1}, 0.0, 1});
    }
    spec.num_reduce_tasks = 1 + static_cast<int>(rng.Uniform(8));
    const auto job = BuildEquiJoinJob(spec);
    ASSERT_TRUE(job.ok());
    ExpectParallelMatchesSequential(*job, "equi seed=" + std::to_string(seed));
  }
}

TEST(ParallelRunnerDifferentialTest, OneBucketTheta) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(7000 + seed);
    RelationPtr a = MakeRel("a", 60 + rng.Uniform(100), 25, 800 + seed);
    RelationPtr b = MakeRel("b", 60 + rng.Uniform(100), 25, 900 + seed);
    PairwiseJoinJobSpec spec;
    spec.left = JoinSide::ForBase(a, 0);
    spec.right = JoinSide::ForBase(b, 1);
    spec.base_relations = {a, b};
    spec.conditions = {
        {{0, 0}, static_cast<ThetaOp>(rng.Uniform(6)), {1, 0}, 0.0, 0}};
    spec.num_reduce_tasks = 1 + static_cast<int>(rng.Uniform(12));
    spec.seed = 40 + seed;
    const auto job = BuildOneBucketThetaJob(spec);
    ASSERT_TRUE(job.ok());
    ExpectParallelMatchesSequential(*job,
                                    "1bucket seed=" + std::to_string(seed));
  }
}

TEST(ParallelRunnerDifferentialTest, MergeJoin) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    RelationPtr a = MakeRel("a", 70, 15, 1000 + seed);
    RelationPtr b = MakeRel("b", 70, 15, 1100 + seed);
    RelationPtr c = MakeRel("c", 70, 15, 1200 + seed);
    const std::vector<RelationPtr> bases = {a, b, c};
    auto run_pair = [&](JoinSide l, JoinSide r, JoinCondition cond) {
      PairwiseJoinJobSpec spec;
      spec.left = l;
      spec.right = r;
      spec.base_relations = bases;
      spec.conditions = {cond};
      spec.num_reduce_tasks = 4;
      const auto job = cond.op == ThetaOp::kEq
                           ? BuildEquiJoinJob(spec)
                           : BuildOneBucketThetaJob(spec);
      EXPECT_TRUE(job.ok());
      return RunJobPhysically(*job)->output;
    };
    auto ab = run_pair(JoinSide::ForBase(a, 0), JoinSide::ForBase(b, 1),
                       {{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0});
    auto bc = run_pair(JoinSide::ForBase(b, 1), JoinSide::ForBase(c, 2),
                       {{1, 1}, ThetaOp::kLe, {2, 1}, 0.0, 1});
    MergeJobSpec merge;
    merge.left = JoinSide::ForIntermediate(ab, {0, 1});
    merge.right = JoinSide::ForIntermediate(bc, {1, 2});
    merge.base_relations = bases;
    merge.num_reduce_tasks = 4;
    const auto job = BuildMergeJob(merge);
    ASSERT_TRUE(job.ok());
    ExpectParallelMatchesSequential(*job, "merge seed=" + std::to_string(seed));
  }
}

// ---- Bounded-memory spill differential (docs/MEMORY.md) ----

// A job big enough that a tight budget *must* spill — both in the map
// emitters (full pages) and in the shuffle spool (sorted runs) — so the
// differential is not vacuously in-memory.
MapReduceJobSpec LargeEquiJoinSpec() {
  RelationPtr a = MakeRel("a", 3000, 40, 2400);
  RelationPtr b = MakeRel("b", 3000, 40, 2401);
  PairwiseJoinJobSpec spec;
  spec.left = JoinSide::ForBase(a, 0);
  spec.right = JoinSide::ForBase(b, 1);
  spec.base_relations = {a, b};
  spec.conditions = {{{0, 0}, ThetaOp::kEq, {1, 0}, 0.0, 0}};
  spec.num_reduce_tasks = 4;
  const auto job = BuildEquiJoinJob(spec);
  EXPECT_TRUE(job.ok());
  return *job;
}

TEST(SpillDifferentialTest, TightBudgetSpillsAndStaysByteIdentical) {
  const MapReduceJobSpec spec = LargeEquiJoinSpec();
  const auto reference = RunJobPhysically(spec);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference->spill_bytes, 0);  // the sequential runner never spills
  SpillDirectory spill_dir;
  for (int threads : {1, 4}) {
    for (int64_t budget : {int64_t{0}, int64_t{1}}) {
      ThreadPool pool(threads);
      ParallelRunnerOptions options;
      options.mem_budget_bytes = budget;
      options.spill_dir = budget > 0 ? &spill_dir : nullptr;
      const auto result = RunJobParallel(spec, pool, options);
      const std::string at = "threads=" + std::to_string(threads) +
                             " budget=" + std::to_string(budget);
      ASSERT_TRUE(result.ok()) << at << ": " << result.status().ToString();
      EXPECT_TRUE(IdenticalRelations(*reference->output, *result->output))
          << at;
      EXPECT_TRUE(IdenticalMetrics(reference->metrics, result->metrics))
          << at;
      if (budget > 0) {
        EXPECT_GT(result->spill_bytes, 0) << at;
        EXPECT_GT(result->spill_files, 0) << at;
      } else {
        EXPECT_EQ(result->spill_bytes, 0) << at;
      }
    }
  }
}

TEST(SpillDifferentialTest, CombinerComposesWithSpilling) {
  // A duplicate-heavy group-count with the dedup combiner, run unbudgeted
  // and under maximal spill pressure: identical rows and metrics, and the
  // combiner keeps working at the row boundary while pages spill.
  auto rel = std::make_shared<Relation>(
      "t", Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}));
  for (int64_t i = 0; i < 4000; ++i) rel->AppendIntRow({i % 64, i});
  MapReduceJobSpec spec;
  spec.name = "dup-count";
  spec.inputs.push_back({rel, 1.0});
  spec.num_reduce_tasks = 4;
  spec.output_schema =
      Schema({{"key", ValueType::kInt64}, {"count", ValueType::kInt64}});
  spec.map = [](int tag, const Relation& r, int64_t row, MapEmitter& out) {
    // Three identical emissions per row; the combiner keeps one.
    for (int rep = 0; rep < 3; ++rep) {
      out.Emit(r.GetInt(row, 0), tag, row, row, 16);
    }
  };
  spec.combine = MakeDedupCombiner();
  spec.reduce = [](const ReduceContext& ctx, ReduceCollector& out) {
    out.Emit({Value(ctx.key),
              Value(static_cast<int64_t>(ctx.records(0).size()))});
  };
  const auto reference = RunJobPhysically(spec);
  ASSERT_TRUE(reference.ok());
  // Combined: one record per row survives.
  EXPECT_EQ(reference->metrics.map_output_records_physical, 4000);
  SpillDirectory spill_dir;
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    ParallelRunnerOptions options;
    options.mem_budget_bytes = 1;
    options.spill_dir = &spill_dir;
    const auto result = RunJobParallel(spec, pool, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(IdenticalRelations(*reference->output, *result->output))
        << "threads=" << threads;
    EXPECT_TRUE(IdenticalMetrics(reference->metrics, result->metrics))
        << "threads=" << threads;
  }
}

// ---- Executor-level parity ----

class RuntimeExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<SimCluster>(ClusterConfig{});
    const auto calib = CalibrateCostModel(*cluster_);
    ASSERT_TRUE(calib.ok());
    params_ = calib->params;
  }

  Query ChainQuery() {
    Query q;
    std::vector<RelationPtr> rels = {MakeRel("r0", 90, 20, 1300),
                                     MakeRel("r1", 90, 20, 1301),
                                     MakeRel("r2", 90, 20, 1302)};
    for (const RelationPtr& r : rels) q.AddRelation(r);
    EXPECT_TRUE(q.AddCondition(0, "a", ThetaOp::kLe, 1, "a").ok());
    EXPECT_TRUE(q.AddCondition(1, "b", ThetaOp::kEq, 2, "b").ok());
    EXPECT_TRUE(q.AddOutput(2, "a").ok());
    return q;
  }

  std::unique_ptr<SimCluster> cluster_;
  CostModelParams params_;
};

TEST_F(RuntimeExecutorTest, ParallelPlanExecutionMatchesSequential) {
  const Query q = ChainQuery();
  // "ours" gives a single-MRJ plan; hive-style gives a cascade whose
  // merge-free prefix jobs have disjoint deps — the DAG-overlap case.
  Planner planner(cluster_.get(), params_);
  std::vector<StatusOr<QueryPlan>> plans = {planner.Plan(q),
                                            PlanHiveStyle(q, *cluster_)};
  for (const auto& plan : plans) {
    ASSERT_TRUE(plan.ok());
    Executor sequential(cluster_.get());
    const auto ref = sequential.Execute(q, *plan);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    for (int threads : {2, 4, 8}) {
      ExecutorOptions options;
      options.num_threads = threads;
      Executor executor(cluster_.get(), options);
      const auto result = executor.Execute(q, *plan);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      // Simulated accounting must be byte-identical: same makespan, same
      // per-job metrics, same outputs in the same order.
      EXPECT_EQ(result->makespan, ref->makespan) << "threads=" << threads;
      EXPECT_GT(result->measured_seconds, 0.0);
      ASSERT_EQ(result->jobs.size(), ref->jobs.size());
      for (size_t j = 0; j < ref->jobs.size(); ++j) {
        EXPECT_TRUE(IdenticalMetrics(ref->jobs[j].metrics,
                                     result->jobs[j].metrics))
            << "job " << j << " threads=" << threads;
        EXPECT_GE(result->jobs[j].wall_seconds, 0.0);
      }
      EXPECT_TRUE(
          IdenticalRelations(*ref->result_ids, *result->result_ids))
          << "threads=" << threads;
      ASSERT_NE(result->projected, nullptr);
      EXPECT_TRUE(IdenticalRelations(*ref->projected, *result->projected));
    }
  }
}

TEST_F(RuntimeExecutorTest, BudgetedExecutionMatchesUnbudgeted) {
  // ExecutorOptions::mem_budget_bytes = 1 puts every job of the plan under
  // maximal spill pressure; simulated accounting and rows must not move.
  // At one thread this also exercises the routing rule: budgeted plans run
  // through the parallel runner (the only spill-capable one) even when
  // num_threads == 1.
  const Query q = ChainQuery();
  Planner planner(cluster_.get(), params_);
  const auto plan = planner.Plan(q);
  ASSERT_TRUE(plan.ok());
  Executor sequential(cluster_.get());
  const auto ref = sequential.Execute(q, *plan);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  // (No spill assertion on the reference: under a $MRTHETA_MEM_BUDGET CI
  // leg even the default-options executor is budgeted and may spill.)
  for (int threads : {1, 4}) {
    ExecutorOptions options;
    options.num_threads = threads;
    options.mem_budget_bytes = 1;
    Executor executor(cluster_.get(), options);
    const auto result = executor.Execute(q, *plan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->makespan, ref->makespan) << "threads=" << threads;
    ASSERT_EQ(result->jobs.size(), ref->jobs.size());
    for (size_t j = 0; j < ref->jobs.size(); ++j) {
      EXPECT_TRUE(
          IdenticalMetrics(ref->jobs[j].metrics, result->jobs[j].metrics))
          << "job " << j << " threads=" << threads;
    }
    EXPECT_TRUE(IdenticalRelations(*ref->result_ids, *result->result_ids))
        << "threads=" << threads;
    // The ledger saw the run: the process high-water mark is non-zero.
    EXPECT_GT(result->peak_mem_bytes, 0) << "threads=" << threads;
  }
}

TEST_F(RuntimeExecutorTest, SortKernelGateSweepPreservesResults) {
  const Query q = ChainQuery();
  Planner planner(cluster_.get(), params_);
  const auto plan = PlanHiveStyle(q, *cluster_);  // pairwise jobs use the gate
  ASSERT_TRUE(plan.ok());
  Executor reference(cluster_.get());
  const auto ref = reference.Execute(q, *plan);
  ASSERT_TRUE(ref.ok());
  for (int64_t gate : {int64_t{1}, int64_t{64}, int64_t{1} << 40}) {
    ExecutorOptions options;
    options.sort_kernel_min_pairs = gate;
    options.num_threads = 2;
    Executor executor(cluster_.get(), options);
    const auto result = executor.Execute(q, *plan);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->makespan, ref->makespan) << "gate=" << gate;
    const Relation sorted_ref = SortedByRows(*ref->result_ids);
    const Relation sorted_got = SortedByRows(*result->result_ids);
    EXPECT_TRUE(IdenticalRelations(sorted_ref, sorted_got)) << "gate=" << gate;
  }
}

}  // namespace
}  // namespace mrtheta
