// Session-API tests: the ThetaEngine facade must be byte-identical to the
// hand-wired cluster/calibrate/plan/execute pipeline it replaces, amortize
// calibration and statistics across queries, and serve concurrent Submits
// with the same answers as sequential execution. Plus QueryBuilder
// lowering/error-reporting and EngineOptions validation.

#include <chrono>
#include <future>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "src/api/theta_engine.h"
#include "src/common/rng.h"
#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/cost/calibration.h"
#include "src/exec/naive_join.h"
#include "src/workload/flights.h"
#include "src/workload/mobile.h"
#include "src/workload/tpch.h"

namespace mrtheta {
namespace {

// The legacy pipeline the facade replaces, exactly as quickstart.cpp and
// the benches used to wire it: default cluster, fresh calibration, fresh
// planner stats, sequential executor, seed 42.
StatusOr<ExecutionResult> RunLegacyPipeline(const Query& query) {
  SimCluster cluster{ClusterConfig{}};
  StatusOr<CalibrationReport> calib = CalibrateCostModel(cluster);
  if (!calib.ok()) return calib.status();
  Planner planner(&cluster, calib->params);
  StatusOr<QueryPlan> plan = planner.Plan(query);
  if (!plan.ok()) return plan.status();
  Executor executor(&cluster);
  return executor.Execute(query, *plan, /*seed=*/42);
}

void ExpectIdenticalRows(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.schema().num_columns(), b.schema().num_columns());
  int64_t mismatches = 0;
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.schema().num_columns(); ++c) {
      mismatches += a.GetInt(r, c) != b.GetInt(r, c);
    }
  }
  EXPECT_EQ(mismatches, 0);
}

// Facade results must be byte-identical to the legacy pipeline: same rows
// in the same order, same simulated makespan, same per-job measurements.
void CheckFacadeMatchesLegacy(const Query& query) {
  const StatusOr<ExecutionResult> legacy = RunLegacyPipeline(query);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

  ThetaEngine engine;
  const StatusOr<QueryResult> facade = engine.Execute(query);
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();

  EXPECT_EQ(facade->makespan(), legacy->makespan);
  EXPECT_EQ(facade->selectivity(), legacy->result_selectivity);
  ExpectIdenticalRows(*facade->execution().result_ids, *legacy->result_ids);
  ASSERT_EQ(facade->jobs().size(), legacy->jobs.size());
  for (size_t i = 0; i < legacy->jobs.size(); ++i) {
    const JobExecution& fj = facade->jobs()[i];
    const JobExecution& lj = legacy->jobs[i];
    EXPECT_EQ(fj.name, lj.name);
    EXPECT_EQ(fj.kernel, lj.kernel);
    EXPECT_EQ(fj.reduce_tasks, lj.reduce_tasks);
    EXPECT_EQ(fj.metrics.input_bytes_logical, lj.metrics.input_bytes_logical);
    EXPECT_EQ(fj.metrics.map_output_bytes_logical,
              lj.metrics.map_output_bytes_logical);
    EXPECT_EQ(fj.metrics.output_rows_logical, lj.metrics.output_rows_logical);
    EXPECT_EQ(fj.timing.release, lj.timing.release);
    EXPECT_EQ(fj.timing.finish, lj.timing.finish);
  }
  if (legacy->projected != nullptr) {
    ASSERT_TRUE(facade->has_projection());
    ASSERT_EQ(facade->rows().num_rows(), legacy->projected->num_rows());
  }
}

TEST(ThetaEngineTest, MatchesLegacyPipelineOnMobile) {
  MobileDataOptions options;
  options.physical_rows = 120;
  options.logical_bytes = 4 * kGiB;
  const auto query = BuildMobileQuery(1, options);
  ASSERT_TRUE(query.ok());
  CheckFacadeMatchesLegacy(*query);
}

TEST(ThetaEngineTest, MatchesLegacyPipelineOnTpch) {
  TpchOptions options;
  options.scale_factor = 50;
  options.physical_lineitem_rows = 600;
  const TpchData db = GenerateTpch(options);
  const auto query = BuildTpchQuery(17, db);
  ASSERT_TRUE(query.ok());
  CheckFacadeMatchesLegacy(*query);
}

TEST(ThetaEngineTest, MatchesLegacyPipelineOnFlights) {
  FlightLegOptions options;
  options.physical_rows = 150;
  options.logical_rows = kGiB / 28;
  std::vector<RelationPtr> legs = {GenerateFlightLeg(0, options),
                                   GenerateFlightLeg(1, options),
                                   GenerateFlightLeg(2, options)};
  const auto query = BuildItineraryQuery(
      legs, {StayOver{60, 240}, StayOver{120, 360}});
  ASSERT_TRUE(query.ok());
  CheckFacadeMatchesLegacy(*query);
}

TEST(ThetaEngineTest, CalibrationAndStatsComputedOnceAcrossExecutes) {
  MobileDataOptions options;
  options.physical_rows = 100;
  options.logical_bytes = 2 * kGiB;
  const auto query = BuildMobileQuery(1, options);
  ASSERT_TRUE(query.ok());

  ThetaEngine engine;
  StatusOr<QueryResult> first = engine.Execute(*query);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 2; ++i) {
    const StatusOr<QueryResult> again = engine.Execute(*query);
    ASSERT_TRUE(again.ok());
    // Determinism contract: repeated Execute is byte-identical.
    EXPECT_EQ(again->makespan(), first->makespan());
    ExpectIdenticalRows(*again->execution().result_ids,
                        *first->execution().result_ids);
  }

  const EngineMetrics metrics = engine.metrics();
  EXPECT_EQ(metrics.calibrations, 1);
  // Q1 has three distinct relation instances; the first Execute builds
  // their stats and plans once, and both re-executions hit the plan cache
  // — skipping planning AND the stats lookup entirely.
  EXPECT_EQ(metrics.stats_builds, 3);
  EXPECT_EQ(metrics.stats_cache_hits, 0);
  EXPECT_EQ(metrics.plans, 1);
  EXPECT_EQ(metrics.plan_cache_misses, 1);
  EXPECT_EQ(metrics.plan_cache_hits, 2);
  EXPECT_EQ(metrics.executions, 3);
}

TEST(ThetaEngineTest, DisabledPlanCachePreservesLegacyCounting) {
  MobileDataOptions options;
  options.physical_rows = 100;
  options.logical_bytes = 2 * kGiB;
  const auto query = BuildMobileQuery(1, options);
  ASSERT_TRUE(query.ok());

  EngineOptions engine_options;
  engine_options.plan_cache_capacity = 0;  // serving layer opt-out
  ThetaEngine engine(engine_options);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(engine.Execute(*query).ok());

  // Every Execute replans from (cached) stats, exactly as before the plan
  // cache existed.
  const EngineMetrics metrics = engine.metrics();
  EXPECT_EQ(metrics.plans, 3);
  EXPECT_EQ(metrics.plan_cache_hits, 0);
  EXPECT_EQ(metrics.plan_cache_misses, 0);
  EXPECT_EQ(metrics.stats_builds, 3);
  EXPECT_EQ(metrics.stats_cache_hits, 6);
}

TEST(ThetaEngineTest, ConcurrentSubmitsMatchSequentialExecution) {
  MobileDataOptions mobile_options;
  mobile_options.physical_rows = 100;
  mobile_options.logical_bytes = 2 * kGiB;
  const auto mobile = BuildMobileQuery(1, mobile_options);
  ASSERT_TRUE(mobile.ok());

  FlightLegOptions leg_options;
  leg_options.physical_rows = 120;
  std::vector<RelationPtr> legs = {GenerateFlightLeg(0, leg_options),
                                   GenerateFlightLeg(1, leg_options),
                                   GenerateFlightLeg(2, leg_options)};
  const auto flights = BuildItineraryQuery(legs, {StayOver{}, StayOver{}});
  ASSERT_TRUE(flights.ok());

  // Sequential reference on its own session.
  ThetaEngine sequential;
  const auto seq_mobile = sequential.Execute(*mobile);
  const auto seq_flights = sequential.Execute(*flights);
  ASSERT_TRUE(seq_mobile.ok());
  ASSERT_TRUE(seq_flights.ok());

  // Concurrent submissions on a multi-thread engine share the pool and
  // overlap; answers must not change.
  EngineOptions options;
  options.executor.num_threads = 2;
  ThetaEngine engine(options);
  std::future<StatusOr<QueryResult>> f_mobile = engine.Submit(*mobile);
  std::future<StatusOr<QueryResult>> f_flights = engine.Submit(*flights);
  const StatusOr<QueryResult> par_mobile = f_mobile.get();
  const StatusOr<QueryResult> par_flights = f_flights.get();
  ASSERT_TRUE(par_mobile.ok()) << par_mobile.status().ToString();
  ASSERT_TRUE(par_flights.ok()) << par_flights.status().ToString();

  EXPECT_EQ(par_mobile->makespan(), seq_mobile->makespan());
  EXPECT_EQ(par_flights->makespan(), seq_flights->makespan());
  ExpectIdenticalRows(*par_mobile->execution().result_ids,
                      *seq_mobile->execution().result_ids);
  ExpectIdenticalRows(*par_flights->execution().result_ids,
                      *seq_flights->execution().result_ids);
  EXPECT_EQ(engine.metrics().calibrations, 1);
}

TEST(ThetaEngineTest, StatsCacheInvalidatedWhenRelationGrows) {
  auto make = [](const char* name, uint64_t seed, int rows) {
    auto rel = std::make_shared<Relation>(
        name, Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
    Rng rng(seed);
    for (int i = 0; i < rows; ++i) {
      rel->AppendIntRow({rng.UniformInt(0, 49), rng.UniformInt(0, 9)});
    }
    return rel;
  };
  // Mutable handles: queries hold shared_ptr<const Relation>, but a
  // session's caller may keep the writable owner and grow the table
  // between queries.
  std::shared_ptr<Relation> r1 = make("r1", 21, 60);
  std::shared_ptr<Relation> r2 = make("r2", 22, 60);
  QueryBuilder builder;
  builder.From("r", r1).From("s", r2).Where(Col("r.a") <= Col("s.a"));
  const auto query = builder.Build();
  ASSERT_TRUE(query.ok());

  ThetaEngine engine;
  ASSERT_TRUE(engine.Execute(*query).ok());
  EXPECT_EQ(engine.metrics().stats_builds, 2);

  // Growing a relation must invalidate its cached stats (and only its).
  Rng rng(23);
  for (int i = 0; i < 40; ++i) {
    r1->AppendIntRow({rng.UniformInt(0, 49), rng.UniformInt(0, 9)});
  }
  const auto grown = engine.Execute(*query);
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(engine.metrics().stats_builds, 3);
  EXPECT_EQ(engine.metrics().stats_cache_hits, 1);

  // The warm session must match a fresh one over the grown data.
  ThetaEngine fresh;
  const auto cold = fresh.Execute(*query);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(grown->makespan(), cold->makespan());
  ExpectIdenticalRows(*grown->execution().result_ids,
                      *cold->execution().result_ids);
}

TEST(ThetaEngineTest, StatsCacheDetectsInPlaceMutationAtSameCardinality) {
  // Regression for the stale-stats cache bug: the old cache key was
  // (Relation*, num_rows, logical_rows), so a relation mutated IN PLACE —
  // same row count, different content — kept serving its old statistics.
  // The generation-counter key must rebuild instead.
  auto r1 = std::make_shared<Relation>(
      "r1", Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  auto r2 = std::make_shared<Relation>(
      "r2", Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  Rng rng(31);
  for (int i = 0; i < 80; ++i) {
    r1->AppendIntRow({rng.UniformInt(0, 9), rng.UniformInt(0, 9)});
    r2->AppendIntRow({rng.UniformInt(0, 9), rng.UniformInt(0, 9)});
  }
  QueryBuilder builder;
  builder.From("r", r1).From("s", r2).Where(Col("r.a") <= Col("s.a"));
  const auto query = builder.Build();
  ASSERT_TRUE(query.ok());

  ThetaEngine engine;
  const auto before = engine.Explain(*query);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(engine.metrics().stats_builds, 2);

  // Shift every r1.a far outside its old [0, 9] domain — cardinality
  // unchanged, content (and any honest ColumnStats) completely different.
  const int64_t rows_before = r1->num_rows();
  for (int64_t row = 0; row < r1->num_rows(); ++row) {
    ASSERT_TRUE(
        r1->SetCell(row, 0, Value(r1->GetInt(row, 0) + 1000)).ok());
  }
  ASSERT_EQ(r1->num_rows(), rows_before);
  ASSERT_EQ(r1->logical_rows(), rows_before);

  const auto after = engine.Explain(*query);
  ASSERT_TRUE(after.ok());
  // r1's stats were rebuilt (not served stale); r2's entry still hits.
  EXPECT_EQ(engine.metrics().stats_builds, 3);
  EXPECT_EQ(engine.metrics().stats_cache_hits, 1);
  // The fresh stats must actually see the shifted domain.
  EXPECT_GE(after->stats[0].column(0).min, 1000.0);
  EXPECT_LT(before->stats[0].column(0).max, 1000.0);

  // And the warm session plans exactly like a cold one over the new data.
  ThetaEngine fresh;
  const auto cold = fresh.Explain(*query);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(after->plan.ToString(), cold->plan.ToString());
}

TEST(ThetaEngineTest, StatsCacheEvictsExpiredRelations) {
  auto keep = std::make_shared<Relation>(
      "keep", Schema({{"a", ValueType::kInt64}}));
  Rng rng(33);
  for (int i = 0; i < 50; ++i) keep->AppendIntRow({rng.UniformInt(0, 9)});

  ThetaEngine engine;
  {
    auto dying = std::make_shared<Relation>(
        "dying", Schema({{"a", ValueType::kInt64}}));
    for (int i = 0; i < 50; ++i) dying->AppendIntRow({rng.UniformInt(0, 9)});
    QueryBuilder b;
    b.From("k", keep).From("d", dying).Where(Col("k.a") <= Col("d.a"));
    const auto q = b.Build();
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(engine.Explain(*q).ok());
    EXPECT_EQ(engine.metrics().stats_builds, 2);
  }  // `dying` destroyed: the engine must not keep it alive (no pin) and
     // must drop its entry so a recycled address can never alias it.

  QueryBuilder b2;
  b2.From("k1", keep).From("k2", keep).Where(Col("k1.a") <= Col("k2.a"));
  const auto q2 = b2.Build();
  ASSERT_TRUE(q2.ok());
  ASSERT_TRUE(engine.Explain(*q2).ok());
  EXPECT_EQ(engine.metrics().stats_evictions, 1);
  // `keep` was served from cache (self-join: both aliases share the entry).
  EXPECT_EQ(engine.metrics().stats_builds, 2);
}

// ---- Plan cache & serving ----

TEST(PlanCacheTest, InvalidatedByInPlaceMutationAndGrowth) {
  auto r1 = std::make_shared<Relation>(
      "r1", Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  auto r2 = std::make_shared<Relation>(
      "r2", Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  Rng rng(51);
  for (int i = 0; i < 80; ++i) {
    r1->AppendIntRow({rng.UniformInt(0, 9), rng.UniformInt(0, 9)});
    r2->AppendIntRow({rng.UniformInt(0, 9), rng.UniformInt(0, 9)});
  }
  QueryBuilder builder;
  builder.From("r", r1).From("s", r2).Where(Col("r.a") <= Col("s.a"));
  const auto query = builder.Build();
  ASSERT_TRUE(query.ok());

  ThetaEngine engine;
  ASSERT_TRUE(engine.Execute(*query).ok());
  ASSERT_TRUE(engine.Execute(*query).ok());
  EXPECT_EQ(engine.metrics().plan_cache_hits, 1);

  // In-place edit at unchanged cardinality: the generation in the cache
  // key moves, so the stale plan must NOT be served.
  for (int64_t row = 0; row < r1->num_rows(); ++row) {
    ASSERT_TRUE(r1->SetCell(row, 0, Value(r1->GetInt(row, 0) + 1000)).ok());
  }
  const auto after_edit = engine.Execute(*query);
  ASSERT_TRUE(after_edit.ok());
  EXPECT_EQ(engine.metrics().plan_cache_misses, 2);
  EXPECT_EQ(engine.metrics().plans, 2);
  // The replan really recollected stats for the mutated input.
  EXPECT_EQ(engine.metrics().stats_builds, 3);

  // Growth invalidates too, and the warm engine matches a cold one.
  Rng grow(52);
  for (int i = 0; i < 40; ++i) {
    r2->AppendIntRow({grow.UniformInt(0, 9), grow.UniformInt(0, 9)});
  }
  const auto grown = engine.Execute(*query);
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(engine.metrics().plan_cache_misses, 3);
  ThetaEngine fresh;
  const auto cold = fresh.Execute(*query);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(grown->makespan(), cold->makespan());
  ExpectIdenticalRows(*grown->execution().result_ids,
                      *cold->execution().result_ids);
}

TEST(PlanCacheTest, LruEvictsAtCapacity) {
  MobileDataOptions options;
  options.physical_rows = 80;
  const auto q1 = BuildMobileQuery(1, options);
  options.physical_rows = 90;  // distinct inputs -> distinct cache key
  const auto q1_other = BuildMobileQuery(1, options);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q1_other.ok());

  EngineOptions engine_options;
  engine_options.plan_cache_capacity = 1;
  ThetaEngine engine(engine_options);
  ASSERT_TRUE(engine.Execute(*q1).ok());        // miss, cached
  ASSERT_TRUE(engine.Execute(*q1_other).ok());  // miss, evicts q1
  ASSERT_TRUE(engine.Execute(*q1).ok());        // miss again, evicts other
  ASSERT_TRUE(engine.Execute(*q1).ok());        // hit

  const EngineMetrics metrics = engine.metrics();
  EXPECT_EQ(metrics.plan_cache_misses, 3);
  EXPECT_EQ(metrics.plan_cache_evictions, 2);
  EXPECT_EQ(metrics.plan_cache_hits, 1);
}

TEST(PlanCacheTest, ConcurrentSubmitStormPlansOneShapeOnce) {
  MobileDataOptions options;
  options.physical_rows = 80;
  options.logical_bytes = 2 * kGiB;
  const auto query = BuildMobileQuery(1, options);
  ASSERT_TRUE(query.ok());

  EngineOptions engine_options;
  engine_options.executor.num_threads = 2;
  ThetaEngine engine(engine_options);
  constexpr int kStorm = 8;
  std::vector<std::future<StatusOr<QueryResult>>> futures;
  futures.reserve(kStorm);
  for (int i = 0; i < kStorm; ++i) futures.push_back(engine.Submit(*query));

  std::vector<StatusOr<QueryResult>> results;
  for (auto& future : futures) results.push_back(future.get());
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectIdenticalRows(*result->execution().result_ids,
                        *results.front()->execution().result_ids);
  }

  // The whole miss path runs under one lock hold, so a storm of one new
  // shape plans exactly once no matter how the submissions interleave.
  const EngineMetrics metrics = engine.metrics();
  EXPECT_EQ(metrics.plan_cache_misses, 1);
  EXPECT_EQ(metrics.plan_cache_hits, kStorm - 1);
  EXPECT_EQ(metrics.plans, 1);
  EXPECT_EQ(metrics.executions, kStorm);
}

TEST(PreparedQueryTest, PinSkipsPlanningAndSurvivesMutation) {
  auto r1 = std::make_shared<Relation>(
      "r1", Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  auto r2 = std::make_shared<Relation>(
      "r2", Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  Rng rng(61);
  for (int i = 0; i < 80; ++i) {
    r1->AppendIntRow({rng.UniformInt(0, 9), rng.UniformInt(0, 9)});
    r2->AppendIntRow({rng.UniformInt(0, 9), rng.UniformInt(0, 9)});
  }
  QueryBuilder builder;
  builder.From("r", r1).From("s", r2).Where(Col("r.a") <= Col("s.a"));

  ThetaEngine engine;
  StatusOr<PreparedQuery> prepared = engine.Prepare(builder);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_FALSE(prepared->plan().jobs.empty());
  EXPECT_EQ(engine.metrics().plans, 1);

  const auto first = prepared->Execute();
  const auto second = prepared->Execute();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectIdenticalRows(*first->execution().result_ids,
                      *second->execution().result_ids);
  // Both executions reused the pin; nothing replanned.
  EXPECT_EQ(engine.metrics().plans, 1);
  EXPECT_EQ(engine.metrics().plan_cache_hits, 2);
  EXPECT_TRUE(first->plan_cache_hit());

  // Submit goes through the same pin (and the admission machinery).
  auto submitted = prepared->Submit();
  const auto async_result = submitted.get();
  ASSERT_TRUE(async_result.ok()) << async_result.status().ToString();
  ExpectIdenticalRows(*async_result->execution().result_ids,
                      *first->execution().result_ids);
  EXPECT_EQ(engine.metrics().plans, 1);

  // ExplainAnalyze reports the reuse.
  const auto profile = prepared->ExplainAnalyze();
  ASSERT_TRUE(profile.ok());
  EXPECT_TRUE(profile->plan_cache_hit);

  // Mutating an input makes the pin stale: the next Execute transparently
  // replans (never serves a wrong plan) and matches a cold engine.
  Rng grow(62);
  for (int i = 0; i < 40; ++i) {
    r1->AppendIntRow({grow.UniformInt(0, 9), grow.UniformInt(0, 9)});
  }
  const auto after = prepared->Execute();
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->plan_cache_hit());
  EXPECT_EQ(engine.metrics().plans, 2);
  ThetaEngine fresh;
  const auto query = builder.Build();
  ASSERT_TRUE(query.ok());
  const auto cold = fresh.Execute(*query);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(after->makespan(), cold->makespan());
  ExpectIdenticalRows(*after->execution().result_ids,
                      *cold->execution().result_ids);

  // A default-constructed handle fails loudly, not with a crash.
  PreparedQuery empty;
  EXPECT_EQ(empty.Execute().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(empty.Submit().get().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(empty.ExplainAnalyze().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AdmissionControlTest, RejectsBeyondQueueDepth) {
  EngineOptions options;
  options.executor.num_threads = 2;
  options.max_inflight_queries = 1;
  options.max_queue_depth = 0;  // no queue: reject the moment we're full
  // Every task's first attempt stalls, so the first submission is still
  // occupying the one slot when the second arrives.
  options.executor.fault_plan = FaultPlan{};
  options.executor.fault_plan.seed = 71;
  options.executor.fault_plan.straggler_rate = 1.0;
  options.executor.fault_plan.straggler_delay_ms = 300.0;
  options.executor.speculation.enabled = false;
  ThetaEngine engine(options);
  MobileDataOptions data;
  data.physical_rows = 80;
  data.logical_bytes = 2 * kGiB;
  const auto query = BuildMobileQuery(1, data);
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(engine.Explain(*query).ok());  // warm plan cache

  // Admission is decided synchronously in the submitter's thread, so this
  // sequence is deterministic: first admitted, second rejected.
  auto admitted = engine.Submit(*query);
  auto rejected = engine.Submit(*query);
  const auto rejected_result = rejected.get();
  ASSERT_FALSE(rejected_result.ok());
  EXPECT_EQ(rejected_result.status().code(),
            StatusCode::kResourceExhausted)
      << rejected_result.status().ToString();
  EXPECT_EQ(engine.metrics().admission_rejections, 1);

  const auto admitted_result = admitted.get();
  ASSERT_TRUE(admitted_result.ok()) << admitted_result.status().ToString();
  EXPECT_EQ(engine.metrics().admission_rejections, 1);
}

TEST(AdmissionControlTest, QueuedSubmissionsRunFifoAndRecordWait) {
  EngineOptions options;
  options.executor.num_threads = 2;
  options.max_inflight_queries = 1;
  options.max_queue_depth = 8;
  ThetaEngine engine(options);
  MobileDataOptions data;
  data.physical_rows = 80;
  data.logical_bytes = 2 * kGiB;
  const auto query = BuildMobileQuery(1, data);
  ASSERT_TRUE(query.ok());

  const auto reference = engine.Execute(*query);
  ASSERT_TRUE(reference.ok());

  // One slot: the second and third submissions must queue, wait their
  // turn, and still produce byte-identical answers.
  std::vector<std::future<StatusOr<QueryResult>>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(engine.Submit(*query));
  for (auto& future : futures) {
    const auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectIdenticalRows(*result->execution().result_ids,
                        *reference->execution().result_ids);
  }

  EXPECT_EQ(engine.metrics().admission_rejections, 0);
  // Every queued admission records its wait in the serving histogram; at
  // least the two submissions behind the head must have queued.
  MetricHistogram* wait = engine.metrics_registry().GetHistogram(
      "engine_queue_wait_seconds", {}, 1e-6);
  EXPECT_GE(wait->count(), 2);
}

TEST(ThetaEngineTest, DiscardedSubmitFutureNeitherBlocksNorLeaks) {
  MobileDataOptions options;
  options.physical_rows = 60;
  const auto query = BuildMobileQuery(1, options);
  ASSERT_TRUE(query.ok());
  {
    EngineOptions engine_options;
    engine_options.executor.num_threads = 2;
    ThetaEngine engine(engine_options);
    engine.Submit(*query);  // future discarded: must not block here
    engine.Submit(*query);
  }  // the destructor drains both in-flight submissions
  SUCCEED();
}

TEST(ThetaEngineTest, ExplainReportsPlanAndCachedStats) {
  MobileDataOptions options;
  options.physical_rows = 100;
  options.logical_bytes = 2 * kGiB;
  const auto query = BuildMobileQuery(1, options);
  ASSERT_TRUE(query.ok());

  ThetaEngine engine;
  const auto report = engine.Explain(*query);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->plan.jobs.empty());
  ASSERT_EQ(report->stats.size(), 3u);
  EXPECT_GT(report->stats[0].logical_rows, 0);
  EXPECT_FALSE(report->ToString().empty());
  // Explain plans but never executes.
  EXPECT_EQ(engine.metrics().plans, 1);
  EXPECT_EQ(engine.metrics().executions, 0);
}

TEST(ThetaEngineTest, InvalidOptionsSurfaceOnEveryEntryPoint) {
  EngineOptions options;
  options.executor.num_threads = 0;
  ThetaEngine engine(options);
  MobileDataOptions data;
  data.physical_rows = 50;
  const auto query = BuildMobileQuery(1, data);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(engine.Execute(*query).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Calibration().status().code(),
            StatusCode::kInvalidArgument);

  EngineOptions bad_lambda;
  bad_lambda.planner.lambda = 1.5;
  EXPECT_EQ(bad_lambda.Validate().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(EngineOptions{}.Validate().ok());
}

// ---- Fault accounting on non-OK executions ----

// Regression: the session metrics used to count faults only on the
// success path (the executor merged per-job FaultReports after the last
// job committed), so a failed or cancelled execution reported
// injected_faults == 0 even though it burned retries for seconds. The
// fix routes every exit path through ExecutorOptions::fault_report; the
// engine folds that into its registry unconditionally.
TEST(EngineMetricsTest, FaultCountersSurviveFailedExecution) {
  EngineOptions options;
  options.executor.num_threads = 2;
  options.executor.fault_plan = FaultPlan{};  // env-proof baseline
  options.executor.fault_plan.seed = 17;
  options.executor.fault_plan.map_failure_rate = 1.0;
  options.executor.retry.max_attempts = 2;
  options.executor.retry.backoff_base_ms = 0.05;
  options.executor.retry.backoff_max_ms = 0.5;
  ThetaEngine engine(options);
  MobileDataOptions data;
  data.physical_rows = 100;
  data.logical_bytes = 2 * kGiB;
  const auto query = BuildMobileQuery(1, data);
  ASSERT_TRUE(query.ok());

  const auto result = engine.Execute(*query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted)
      << result.status().ToString();

  const EngineMetrics metrics = engine.metrics();
  EXPECT_EQ(metrics.failed_executions, 1);
  EXPECT_EQ(metrics.executions, 0);
  EXPECT_GT(metrics.injected_faults, 0);
  EXPECT_GT(metrics.task_retries, 0);
  EXPECT_GT(metrics.wasted_task_seconds, 0.0);

  // Per-phase retry attribution (registry labels): every retry of this
  // all-map-failures plan is a map retry.
  MetricsRegistry& registry = engine.metrics_registry();
  const int64_t map_retries =
      registry.GetCounter("engine_task_retries", {{"phase", "map"}})->value();
  const int64_t reduce_retries =
      registry.GetCounter("engine_task_retries", {{"phase", "reduce"}})
          ->value();
  EXPECT_EQ(map_retries + reduce_retries, metrics.task_retries);
  EXPECT_EQ(reduce_retries, 0);
  EXPECT_GT(map_retries, 0);
}

TEST(EngineMetricsTest, FaultCountersSurviveCancelledExecution) {
  EngineOptions options;
  options.executor.num_threads = 2;
  options.executor.fault_plan = FaultPlan{};  // env-proof baseline
  // Every first attempt stalls; nothing else intervenes, so the Submit
  // below is still mid-flight when CancelInflight fires.
  options.executor.fault_plan.seed = 31;
  options.executor.fault_plan.straggler_rate = 1.0;
  options.executor.fault_plan.straggler_delay_ms = 500.0;
  options.executor.speculation.enabled = false;
  ThetaEngine engine(options);
  MobileDataOptions data;
  data.physical_rows = 100;
  data.logical_bytes = 2 * kGiB;
  const auto query = BuildMobileQuery(1, data);
  ASSERT_TRUE(query.ok());
  // Warm planning caches so the submission spends its time executing.
  ASSERT_TRUE(engine.Explain(*query).ok());

  auto future = engine.Submit(*query);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.CancelInflight();
  ASSERT_EQ(future.wait_for(std::chrono::seconds(60)),
            std::future_status::ready);
  const auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();

  // The cancelled attempts were injected stragglers whose burned time
  // must still be accounted.
  const EngineMetrics metrics = engine.metrics();
  EXPECT_EQ(metrics.failed_executions, 1);
  EXPECT_GT(metrics.injected_faults, 0);
  EXPECT_GT(metrics.wasted_task_seconds, 0.0);
}

// ---- QueryBuilder ----

RelationPtr MakeRel(const char* name, uint64_t seed) {
  auto rel = std::make_shared<Relation>(
      name, Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  Rng rng(seed);
  for (int i = 0; i < 50; ++i) {
    rel->AppendIntRow({rng.UniformInt(0, 99), rng.UniformInt(0, 9)});
  }
  return rel;
}

TEST(QueryBuilderTest, LowersToTheEquivalentLegacyQuery) {
  RelationPtr r1 = MakeRel("r1", 1);
  RelationPtr r2 = MakeRel("r2", 2);

  Query legacy;
  const int a = legacy.AddRelation(r1);
  const int b = legacy.AddRelation(r2);
  ASSERT_TRUE(legacy.AddCondition(a, "a", ThetaOp::kLe, b, "a", 5.0).ok());
  ASSERT_TRUE(legacy.AddCondition(a, "b", ThetaOp::kNe, b, "b").ok());
  ASSERT_TRUE(legacy.AddOutput(b, "b").ok());

  QueryBuilder builder;
  builder.From("r", r1)
      .From("s", r2)
      .Where(Col("r.a") + 5 <= Col("s.a"))
      .Where(Col("r.b") != Col("s.b"))
      .Select("s.b");
  const StatusOr<Query> built = builder.Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  ASSERT_EQ(built->num_relations(), legacy.num_relations());
  ASSERT_EQ(built->num_conditions(), legacy.num_conditions());
  for (int i = 0; i < legacy.num_conditions(); ++i) {
    const JoinCondition& lc = legacy.conditions()[i];
    const JoinCondition& bc = built->conditions()[i];
    EXPECT_EQ(bc.lhs, lc.lhs);
    EXPECT_EQ(bc.rhs, lc.rhs);
    EXPECT_EQ(bc.op, lc.op);
    EXPECT_EQ(bc.offset, lc.offset);
    EXPECT_EQ(bc.id, lc.id);
  }
  ASSERT_EQ(built->outputs().size(), legacy.outputs().size());
  EXPECT_EQ(built->outputs()[0].base, legacy.outputs()[0].base);
  EXPECT_EQ(built->outputs()[0].column, legacy.outputs()[0].column);
  EXPECT_EQ(built->ToString(), legacy.ToString());
}

TEST(QueryBuilderTest, OffsetsOnBothSidesFoldToTheLeft) {
  QueryBuilder builder;
  builder.From("r", MakeRel("r", 3))
      .From("s", MakeRel("s", 4))
      // (r.a + 7) < (s.a + 4)  ⇔  (r.a + 3) < s.a
      .Where(Col("r.a") + 7 < Col("s.a") + 4);
  const auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->conditions()[0].offset, 3.0);
  EXPECT_EQ(built->conditions()[0].op, ThetaOp::kLt);
}

TEST(QueryBuilderTest, ReportsUnknownAlias) {
  QueryBuilder builder;
  builder.From("r", MakeRel("r", 5))
      .From("s", MakeRel("s", 6))
      .Where(Col("r.a") <= Col("t.a"));
  const auto built = builder.Build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kNotFound);
  EXPECT_NE(built.status().message().find("unknown alias 't'"),
            std::string::npos);
  EXPECT_NE(built.status().message().find("r, s"), std::string::npos);
}

TEST(QueryBuilderTest, ReportsUnknownColumn) {
  QueryBuilder builder;
  builder.From("r", MakeRel("r", 7))
      .From("s", MakeRel("s", 8))
      .Where(Col("r.a") <= Col("s.zz"));
  const auto built = builder.Build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kNotFound);
  EXPECT_NE(built.status().message().find("unknown column 'zz'"),
            std::string::npos);

  QueryBuilder select_bad;
  select_bad.From("r", MakeRel("r", 9))
      .From("s", MakeRel("s", 10))
      .Where(Col("r.a") <= Col("s.a"))
      .Select("r.nope");
  EXPECT_EQ(select_bad.Build().status().code(), StatusCode::kNotFound);
}

TEST(QueryBuilderTest, ReportsDuplicateAlias) {
  QueryBuilder builder;
  builder.From("r", MakeRel("r", 11))
      .From("r", MakeRel("r2", 12))
      .Where(Col("r.a") <= Col("r.a"));
  const auto built = builder.Build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().message().find("duplicate alias 'r'"),
            std::string::npos);
}

TEST(QueryBuilderTest, ReportsMalformedReferenceWithItsSpelling) {
  QueryBuilder builder;
  builder.From("r", MakeRel("r", 13))
      .From("s", MakeRel("s", 14))
      .Where(Col("ra") <= Col("s.a"));
  const auto built = builder.Build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().message().find("'ra'"), std::string::npos);
}

TEST(QueryBuilderTest, AggregatesEveryErrorIntoOneStatus) {
  // Three independent mistakes: Build must report all of them at once,
  // numbered in clause order, carrying the first error's code — one
  // round-trip to fix a broken query spec, not three.
  QueryBuilder builder;
  builder.From("r", MakeRel("r", 19))
      .From("s", MakeRel("s", 20))
      .Where(Col("r.a") <= Col("t.a"))   // [1] unknown alias
      .Where(Col("r.zz") <= Col("s.a"))  // [2] unknown column
      .Select("ra");                     // [3] malformed reference
  const auto built = builder.Build();
  ASSERT_FALSE(built.ok());
  const std::string& message = built.status().message();
  EXPECT_EQ(built.status().code(), StatusCode::kNotFound);  // first error's
  EXPECT_NE(message.find("3 errors"), std::string::npos) << message;
  EXPECT_NE(message.find("[1]"), std::string::npos) << message;
  EXPECT_NE(message.find("unknown alias 't'"), std::string::npos) << message;
  EXPECT_NE(message.find("[2]"), std::string::npos) << message;
  EXPECT_NE(message.find("unknown column 'zz'"), std::string::npos)
      << message;
  EXPECT_NE(message.find("[3]"), std::string::npos) << message;
  EXPECT_NE(message.find("'ra'"), std::string::npos) << message;

  // A single mistake keeps the old single-error shape.
  QueryBuilder one;
  one.From("r", MakeRel("r", 21))
      .From("s", MakeRel("s", 22))
      .Where(Col("r.a") <= Col("t.a"));
  const auto single = one.Build();
  ASSERT_FALSE(single.ok());
  EXPECT_EQ(single.status().message().find("errors"), std::string::npos);
}

// ---- Column pruning: plan-level differential ----

// Executes the engine-planned (annotated) plan and its full-width copy at
// 1 and 4 threads: projected rows byte-identical everywhere, simulated
// shuffle/makespan strictly better with pruning, physical row counts and
// job structure untouched.
TEST(ColumnPruningPlanTest, PrunedPlanMatchesFullWidthAcrossThreads) {
  TpchOptions options;
  options.scale_factor = 50;
  options.physical_lineitem_rows = 800;
  const TpchData db = GenerateTpch(options);
  const auto query = BuildTpchQuery(17, db);
  ASSERT_TRUE(query.ok());

  EngineOptions engine_options;
  engine_options.executor.num_threads = 4;
  ThetaEngine engine(engine_options);
  const auto plan = engine.PlanQuery(*query);
  ASSERT_TRUE(plan.ok());
  // The default planner annotates every job with its required columns.
  for (const PlanJob& job : plan->jobs) {
    EXPECT_FALSE(job.output_columns.empty()) << job.name;
  }
  QueryPlan full_width = *plan;
  for (PlanJob& job : full_width.jobs) job.output_columns.clear();

  for (int threads : {1, 4}) {
    ExecutorOptions exec = engine.options().executor;
    exec.num_threads = threads;
    const auto pruned = engine.ExecutePlan(*query, *plan, exec, 42);
    const auto full = engine.ExecutePlan(*query, full_width, exec, 42);
    ASSERT_TRUE(pruned.ok());
    ASSERT_TRUE(full.ok());

    // Byte-identical projected rows (content AND order).
    ASSERT_TRUE(pruned->has_projection());
    ExpectIdenticalRows(pruned->rows(), full->rows());
    ExpectIdenticalRows(*pruned->execution().result_ids,
                        *full->execution().result_ids);

    // Identical structure and physical work, smaller simulated volumes.
    ASSERT_EQ(pruned->jobs().size(), full->jobs().size());
    for (size_t i = 0; i < full->jobs().size(); ++i) {
      const JobMeasurement& pm = pruned->jobs()[i].metrics;
      const JobMeasurement& fm = full->jobs()[i].metrics;
      // Base scans are identical; jobs reading a pruned INTERMEDIATE
      // legitimately read fewer logical bytes.
      EXPECT_LE(pm.input_bytes_logical, fm.input_bytes_logical);
      EXPECT_EQ(pm.map_output_records_physical,
                fm.map_output_records_physical);
      EXPECT_EQ(pm.output_rows_physical, fm.output_rows_physical);
      EXPECT_LE(pm.map_output_bytes_logical, fm.map_output_bytes_logical);
    }
    EXPECT_LT(pruned->sim_shuffle_bytes(), full->sim_shuffle_bytes());
    EXPECT_LE(pruned->makespan(), full->makespan());
    // The acceptance target: Q17 sheds >= 25% of its shuffle volume.
    EXPECT_LT(static_cast<double>(pruned->sim_shuffle_bytes()),
              0.75 * static_cast<double>(full->sim_shuffle_bytes()));
  }
}

// ---- Selection pushdown through the facade ----

TEST(FilterQueryTest, FilteredQueryMatchesOracleAndShrinksShuffle) {
  TpchOptions options;
  options.scale_factor = 20;
  options.physical_lineitem_rows = 600;
  const TpchData db = GenerateTpch(options);
  const auto plain = BuildTpchQuery(17, db);
  const auto filtered = BuildTpchQuery17Filtered(db, /*quantity_cap=*/20);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(filtered.ok());
  ASSERT_EQ(filtered->filters().size(), 2u);

  ThetaEngine engine;
  const auto plain_result = engine.Execute(*plain);
  const auto filtered_result = engine.Execute(*filtered);
  ASSERT_TRUE(plain_result.ok());
  ASSERT_TRUE(filtered_result.ok()) << filtered_result.status().ToString();

  // The filter bites and the shuffle shrinks with it.
  EXPECT_LT(filtered_result->num_rows(), plain_result->num_rows());
  EXPECT_LT(filtered_result->sim_shuffle_bytes(),
            plain_result->sim_shuffle_bytes());

  // Exact answer: the rid multiset must equal the filtered oracle's.
  std::vector<int> all_bases(filtered->num_relations());
  for (int i = 0; i < filtered->num_relations(); ++i) all_bases[i] = i;
  const auto oracle =
      NaiveMultiwayJoin(filtered->relations(), all_bases,
                        filtered->conditions(), filtered->filters());
  ASSERT_TRUE(oracle.ok());
  const Relation sorted_ids =
      SortedByRows(*filtered_result->execution().result_ids);
  ExpectIdenticalRows(sorted_ids, *oracle);
}

TEST(FilterQueryTest, FilterValidationRejectsBadShapes) {
  RelationPtr r1 = MakeRel("r1", 41);
  RelationPtr r2 = MakeRel("r2", 42);

  Query q;
  const int a = q.AddRelation(r1);
  q.AddRelation(r2);
  // Unknown column / out-of-range relation.
  EXPECT_FALSE(q.AddFilter(a, "zz", ThetaOp::kLe, Value(int64_t{3})).ok());
  EXPECT_FALSE(q.AddFilter(7, "a", ThetaOp::kLe, Value(int64_t{3})).ok());
  // String literal against a numeric column.
  EXPECT_FALSE(
      q.AddFilter(a, "a", ThetaOp::kEq, Value(std::string("x"))).ok());
  // Valid numeric filter.
  EXPECT_TRUE(q.AddFilter(a, "a", ThetaOp::kLe, Value(int64_t{3})).ok());
}

TEST(QueryBuilderTest, FilterLowersAndReportsAliasMismatch) {
  RelationPtr r1 = MakeRel("r1", 43);
  RelationPtr r2 = MakeRel("r2", 44);

  QueryBuilder good;
  good.From("r", r1)
      .From("s", r2)
      .Where(Col("r.a") <= Col("s.a"))
      .Filter("r", Col("r.b") + 1 <= 5)
      .Filter("s", Col("s.b") != 3);
  const auto built = good.Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_EQ(built->filters().size(), 2u);
  EXPECT_EQ(built->filters()[0].col, (ColumnRef{0, 1}));
  EXPECT_EQ(built->filters()[0].op, ThetaOp::kLe);
  EXPECT_EQ(built->filters()[0].offset, 1.0);
  EXPECT_EQ(built->filters()[1].op, ThetaOp::kNe);

  // The filtered alias must own the predicate column.
  QueryBuilder mismatch;
  mismatch.From("r", r1)
      .From("s", r2)
      .Where(Col("r.a") <= Col("s.a"))
      .Filter("r", Col("s.b") <= 5);
  const auto bad = mismatch.Build();
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("'s.b'"), std::string::npos);

  // Unknown alias in the predicate surfaces with its spelling.
  QueryBuilder unknown;
  unknown.From("r", r1)
      .From("s", r2)
      .Where(Col("r.a") <= Col("s.a"))
      .Filter("t", Col("t.b") <= 5);
  EXPECT_EQ(unknown.Build().status().code(), StatusCode::kNotFound);
}

TEST(QueryBuilderTest, BuildRunsQueryValidate) {
  // A builder query with a disconnected join graph fails at Build, not at
  // plan time.
  QueryBuilder builder;
  builder.From("a", MakeRel("a", 15))
      .From("b", MakeRel("b", 16))
      .From("c", MakeRel("c", 17))
      .From("d", MakeRel("d", 18))
      .Where(Col("a.a") <= Col("b.a"))
      .Where(Col("c.a") <= Col("d.a"));
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace mrtheta
