// Tests for the MapReduce substrate: physical job execution, the
// discrete-event engine, the timing model, the load models, and the
// bounded-memory emit/spill machinery (docs/MEMORY.md).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/mapreduce/load_model.h"
#include "src/mapreduce/sim_cluster.h"
#include "src/mem/memory_budget.h"
#include "src/mem/shuffle_spool.h"
#include "src/mem/spill.h"

namespace mrtheta {
namespace {

RelationPtr MakeInts(int64_t rows, int64_t logical_rows = 0) {
  auto rel = std::make_shared<Relation>(
      "t", Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}));
  for (int64_t i = 0; i < rows; ++i) rel->AppendIntRow({i % 10, i});
  if (logical_rows > 0) rel->set_logical_rows(logical_rows);
  return rel;
}

// A group-count job: key = k, reduce emits (key, count).
MapReduceJobSpec CountJob(RelationPtr rel, int reducers) {
  MapReduceJobSpec spec;
  spec.name = "count";
  spec.inputs.push_back({rel, 1.0});
  spec.num_reduce_tasks = reducers;
  spec.output_schema = Schema({{"key", ValueType::kInt64},
                               {"count", ValueType::kInt64}});
  spec.map = [](int tag, const Relation& r, int64_t row, MapEmitter& out) {
    out.Emit(r.GetInt(row, 0), tag, row, row, 16);
  };
  spec.reduce = [](const ReduceContext& ctx, ReduceCollector& out) {
    out.Emit({Value(ctx.key),
              Value(static_cast<int64_t>(ctx.records(0).size()))});
  };
  return spec;
}

TEST(JobRunnerTest, GroupCountIsExact) {
  const auto result = RunJobPhysically(CountJob(MakeInts(1000), 4));
  ASSERT_TRUE(result.ok());
  const Relation& out = *result->output;
  ASSERT_EQ(out.num_rows(), 10);
  int64_t total = 0;
  for (int64_t r = 0; r < out.num_rows(); ++r) total += out.GetInt(r, 1);
  EXPECT_EQ(total, 1000);
  for (int64_t r = 0; r < out.num_rows(); ++r) {
    EXPECT_EQ(out.GetInt(r, 1), 100);
  }
}

TEST(JobRunnerTest, KeysArriveSortedWithinTask) {
  auto rel = MakeInts(100);
  MapReduceJobSpec spec = CountJob(rel, 1);
  std::vector<int64_t> seen;
  spec.reduce = [&seen](const ReduceContext& ctx, ReduceCollector& out) {
    seen.push_back(ctx.key);
    out.Emit({Value(ctx.key), Value(int64_t{0})});
  };
  ASSERT_TRUE(RunJobPhysically(spec).ok());
  ASSERT_EQ(seen.size(), 10u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(JobRunnerTest, MetricsScaleWithLogicalVolume) {
  // 100 physical rows representing 10000 logical rows: shuffle volume
  // scales by 100x.
  auto rel = MakeInts(100, 10000);
  MapReduceJobSpec spec = CountJob(rel, 2);
  spec.inputs[0].scale = 100.0;
  const auto result = RunJobPhysically(spec);
  ASSERT_TRUE(result.ok());
  const JobMeasurement& m = result->metrics;
  EXPECT_EQ(m.input_bytes_logical, rel->logical_bytes());
  EXPECT_EQ(m.map_output_records_physical, 100);
  EXPECT_EQ(m.map_output_bytes_logical, 100 * 16 * 100);
  int64_t reduce_total = 0;
  for (int64_t b : m.reduce_input_bytes_logical) reduce_total += b;
  EXPECT_EQ(reduce_total, m.map_output_bytes_logical);
}

TEST(JobRunnerTest, OutputRowScale) {
  MapReduceJobSpec spec = CountJob(MakeInts(100), 1);
  spec.output_row_scale = 7.0;
  const auto result = RunJobPhysically(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.output_rows_physical, 10);
  EXPECT_EQ(result->metrics.output_rows_logical, 70.0);
  EXPECT_EQ(result->output->logical_rows(), 70);
}

TEST(JobRunnerTest, ValidatesSpec) {
  MapReduceJobSpec empty;
  EXPECT_FALSE(RunJobPhysically(empty).ok());
  MapReduceJobSpec no_reduce = CountJob(MakeInts(10), 1);
  no_reduce.reduce = nullptr;
  EXPECT_FALSE(RunJobPhysically(no_reduce).ok());
  MapReduceJobSpec bad_n = CountJob(MakeInts(10), 0);
  EXPECT_FALSE(RunJobPhysically(bad_n).ok());
}

TEST(JobRunnerTest, CustomPartitioner) {
  MapReduceJobSpec spec = CountJob(MakeInts(100), 2);
  spec.partition = [](int64_t key, int n) {
    return static_cast<int>(key % n);
  };
  const auto result = RunJobPhysically(spec);
  ASSERT_TRUE(result.ok());
  // Keys 0,2,4,6,8 -> task 0; 1,3,5,7,9 -> task 1: both get 5*100*16 bytes.
  EXPECT_EQ(result->metrics.reduce_input_bytes_logical[0],
            result->metrics.reduce_input_bytes_logical[1]);
}

TEST(HashPartitionTest, InRangeAndSpreads) {
  std::vector<int> hits(16, 0);
  for (int64_t k = 0; k < 1600; ++k) {
    const int t = HashPartition(k, 16);
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 16);
    hits[t]++;
  }
  for (int h : hits) EXPECT_GT(h, 50);
}

// ---- Memory budget / paged emit / spill (docs/MEMORY.md) ----

TEST(MemoryBudgetTest, ParseByteSizeAcceptsSuffixesRejectsJunk) {
  EXPECT_EQ(*MemoryBudget::ParseByteSize("0"), 0);
  EXPECT_EQ(*MemoryBudget::ParseByteSize("1024"), 1024);
  EXPECT_EQ(*MemoryBudget::ParseByteSize("64K"), 64 * 1024);
  EXPECT_EQ(*MemoryBudget::ParseByteSize("64k"), 64 * 1024);
  EXPECT_EQ(*MemoryBudget::ParseByteSize("2M"), 2 * 1024 * 1024);
  EXPECT_EQ(*MemoryBudget::ParseByteSize("1G"), int64_t{1} << 30);
  EXPECT_FALSE(MemoryBudget::ParseByteSize("").ok());
  EXPECT_FALSE(MemoryBudget::ParseByteSize("-1").ok());
  EXPECT_FALSE(MemoryBudget::ParseByteSize("64Q").ok());
  EXPECT_FALSE(MemoryBudget::ParseByteSize("1.5M").ok());
  EXPECT_FALSE(MemoryBudget::ParseByteSize("64K ").ok());
  EXPECT_FALSE(MemoryBudget::ParseByteSize("999999999999999G").ok());
}

TEST(MemoryBudgetTest, PagesAndChargesDriveTheLedgerAndPeak) {
  MemoryBudget& budget = MemoryBudget::Global();
  const int64_t base = budget.in_use_bytes();
  budget.ResetPeak();
  auto page = budget.AcquirePage();
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(budget.in_use_bytes(), base + MemoryBudget::kPageBytes);
  {
    ScopedCharge charge(1000);
    EXPECT_EQ(budget.in_use_bytes(), base + MemoryBudget::kPageBytes + 1000);
    EXPECT_GE(budget.peak_bytes(), base + MemoryBudget::kPageBytes + 1000);
  }
  budget.ReleasePage(*std::move(page));
  EXPECT_EQ(budget.in_use_bytes(), base);
  // OverBudget is a threshold test on a caller-supplied limit; 0 never.
  EXPECT_FALSE(budget.OverBudget(0));
  EXPECT_TRUE(budget.OverBudget(1) == (budget.in_use_bytes() > 1));
}

TEST(MapEmitterTest, PagedEmitRoundTripsInOrderAcrossPages) {
  MapEmitter emitter;
  emitter.SetPartitioner(HashPartition, 8);
  const int64_t n = 3 * MapEmitter::kRecordsPerPage + 7;
  for (int64_t i = 0; i < n; ++i) {
    emitter.Emit(i, static_cast<int32_t>(i % 3), i * 2, i * 3, 16);
    emitter.EndRow();
  }
  ASSERT_TRUE(emitter.status().ok()) << emitter.status().ToString();
  EXPECT_EQ(emitter.size(), n);
  EXPECT_EQ(emitter.spilled_bytes(), 0);
  int64_t i = 0;
  const Status walk = emitter.ForEach([&](const MapOutputRecord& rec) {
    ASSERT_EQ(rec.key, i);
    ASSERT_EQ(rec.tag, static_cast<int32_t>(i % 3));
    ASSERT_EQ(rec.target, HashPartition(i, 8));
    ASSERT_EQ(rec.row, i * 2);
    ASSERT_EQ(rec.rec_id, i * 3);
    ++i;
  });
  ASSERT_TRUE(walk.ok()) << walk.ToString();
  EXPECT_EQ(i, n);
}

TEST(MapEmitterTest, ReserveFailureLatchesResourceExhausted) {
  MapEmitter emitter;
  emitter.SetPartitioner(HashPartition, 4);
  emitter.Emit(1, 0, 0, 0, 16);
  // An absurd reservation must latch kResourceExhausted, not abort.
  emitter.Reserve(static_cast<size_t>(int64_t{1} << 60));
  EXPECT_EQ(emitter.status().code(), StatusCode::kResourceExhausted)
      << emitter.status().ToString();
  // Latched: later emits are dropped, the first error survives.
  emitter.Emit(2, 0, 0, 0, 16);
  EXPECT_EQ(emitter.status().code(), StatusCode::kResourceExhausted);
}

TEST(MapEmitterTest, SpilledEmitterStreamsIdenticallyToInMemory) {
  // The same emit sequence through an unbudgeted emitter and through one
  // spilling under a 1-byte limit must stream back identically.
  MapEmitter plain;
  plain.SetPartitioner(HashPartition, 4);
  SpillDirectory dir;
  MapEmitter spilling;
  spilling.SetPartitioner(HashPartition, 4);
  spilling.EnableSpill(1, &dir);
  const int64_t rows = 4000;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t e = 0; e < 2; ++e) {
      plain.Emit(r % 97, static_cast<int32_t>(e), r, r, 16);
      spilling.Emit(r % 97, static_cast<int32_t>(e), r, r, 16);
    }
    plain.EndRow();
    spilling.EndRow();
  }
  ASSERT_TRUE(plain.status().ok());
  ASSERT_TRUE(spilling.status().ok()) << spilling.status().ToString();
  EXPECT_GT(spilling.spilled_bytes(), 0);
  EXPECT_EQ(spilling.spill_files(), 1);
  EXPECT_EQ(spilling.size(), plain.size());
  std::vector<MapOutputRecord> a, b;
  ASSERT_TRUE(plain.ForEach([&](const MapOutputRecord& r) {
    a.push_back(r);
  }).ok());
  ASSERT_TRUE(spilling.ForEach([&](const MapOutputRecord& r) {
    b.push_back(r);
  }).ok());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].key, b[i].key) << i;
    ASSERT_EQ(a[i].tag, b[i].tag) << i;
    ASSERT_EQ(a[i].target, b[i].target) << i;
    ASSERT_EQ(a[i].row, b[i].row) << i;
    ASSERT_EQ(a[i].rec_id, b[i].rec_id) << i;
    ASSERT_EQ(a[i].bytes, b[i].bytes) << i;
  }
  // Clear removes the spill file and resets the emitter.
  spilling.Clear();
  EXPECT_EQ(spilling.size(), 0);
  EXPECT_EQ(spilling.spilled_bytes(), 0);
}

TEST(CombinerTest, DedupCombinerDropsDuplicatesWithinARow) {
  MapEmitter emitter;
  emitter.SetPartitioner(HashPartition, 4);
  emitter.set_combine(MakeDedupCombiner());
  // Row 0: 3 distinct records each emitted twice -> 3 survive.
  for (int rep = 0; rep < 2; ++rep) {
    for (int64_t k = 0; k < 3; ++k) emitter.Emit(k, 0, 7, 7, 16);
  }
  emitter.EndRow();
  EXPECT_EQ(emitter.size(), 3);
  // Row 1: all distinct -> no-op.
  for (int64_t k = 0; k < 4; ++k) emitter.Emit(k, 1, 8, 8, 16);
  emitter.EndRow();
  EXPECT_EQ(emitter.size(), 7);
  // Duplicates across *different* rows are preserved: the row boundary is
  // the combine scope (the thread-count-invariant unit).
  emitter.Emit(0, 0, 7, 7, 16);
  emitter.EndRow();
  EXPECT_EQ(emitter.size(), 8);
}

TEST(CombinerTest, CombinedJobKeepsExactResults) {
  // CountJob never emits duplicate records, so the dedup combiner must be
  // a perfect no-op: same rows, same metrics.
  MapReduceJobSpec plain = CountJob(MakeInts(1000), 4);
  const auto reference = RunJobPhysically(plain);
  ASSERT_TRUE(reference.ok());
  MapReduceJobSpec combined = CountJob(MakeInts(1000), 4);
  combined.combine = MakeDedupCombiner();
  const auto result = RunJobPhysically(combined);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.map_output_records_physical,
            reference->metrics.map_output_records_physical);
  EXPECT_EQ(result->metrics.map_output_bytes_logical,
            reference->metrics.map_output_bytes_logical);
  ASSERT_EQ(result->output->num_rows(), reference->output->num_rows());
  for (int64_t r = 0; r < reference->output->num_rows(); ++r) {
    EXPECT_EQ(result->output->GetInt(r, 0), reference->output->GetInt(r, 0));
    EXPECT_EQ(result->output->GetInt(r, 1), reference->output->GetInt(r, 1));
  }

  // A genuinely duplicating map: every record emitted twice. The combiner
  // halves the shuffle; the reduce output is identical to the single-emit
  // job's.
  MapReduceJobSpec doubled = CountJob(MakeInts(1000), 4);
  doubled.map = [](int tag, const Relation& r, int64_t row, MapEmitter& out) {
    out.Emit(r.GetInt(row, 0), tag, row, row, 16);
    out.Emit(r.GetInt(row, 0), tag, row, row, 16);
  };
  doubled.combine = MakeDedupCombiner();
  const auto deduped = RunJobPhysically(doubled);
  ASSERT_TRUE(deduped.ok());
  EXPECT_EQ(deduped->metrics.map_output_records_physical,
            reference->metrics.map_output_records_physical);
  ASSERT_EQ(deduped->output->num_rows(), reference->output->num_rows());
  for (int64_t r = 0; r < reference->output->num_rows(); ++r) {
    EXPECT_EQ(deduped->output->GetInt(r, 1),
              reference->output->GetInt(r, 1));
  }
}

TEST(ShuffleSpoolTest, SpilledRunsMergeBackSorted) {
  // Push enough records through a 2-task spool under a 1-byte limit that
  // several sorted runs hit the shared spill file, then materialize: every
  // record comes back, sorted by (key, tag, row), twice in a row (the
  // chaos-retry path re-materializes).
  ScopedMemoryBudget tiny(1);
  SpillDirectory dir;
  ShuffleSpool spool(2, 1, &dir);
  const int64_t n = 20000;
  for (int64_t i = 0; i < n; ++i) {
    MapOutputRecord rec;
    rec.key = (i * 2654435761u) % 1000;
    rec.tag = static_cast<int32_t>(i % 2);
    rec.target = static_cast<int32_t>(i % 2);
    rec.row = i;
    rec.rec_id = i;
    rec.bytes = 16;
    spool.Append(rec.target, rec);
  }
  ASSERT_TRUE(spool.status().ok()) << spool.status().ToString();
  ASSERT_TRUE(spool.FinishWrites().ok());
  EXPECT_GT(spool.spill_bytes(), 0);
  EXPECT_EQ(spool.spill_files(), 1);
  int64_t total = 0;
  for (int task = 0; task < 2; ++task) {
    for (int pass = 0; pass < 2; ++pass) {
      const auto got = spool.MaterializeTask(task);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(got->sorted);
      for (size_t i = 0; i + 1 < got->records.size(); ++i) {
        const MapOutputRecord& a = got->records[i];
        const MapOutputRecord& b = got->records[i + 1];
        const bool le = a.key < b.key ||
                        (a.key == b.key &&
                         (a.tag < b.tag ||
                          (a.tag == b.tag && a.row <= b.row)));
        ASSERT_TRUE(le) << "task " << task << " index " << i;
      }
      if (pass == 0) total += static_cast<int64_t>(got->records.size());
    }
    spool.ReleaseTask(task);
  }
  EXPECT_EQ(total, n);
}

// ---- Discrete-event engine ----

ClusterConfig TestConfig(int workers) {
  ClusterConfig cfg;
  cfg.num_workers = workers;
  cfg.job_startup_sec = 0.0;
  return cfg;
}

SimJobSpec SimpleJob(int maps, double map_sec, int reduces,
                     double reduce_sec) {
  SimJobSpec job;
  job.num_map_tasks = maps;
  job.map_task_duration = FromSeconds(map_sec);
  for (int i = 0; i < reduces; ++i) {
    SimReduceTask t;
    t.compute = FromSeconds(reduce_sec);
    job.reduces.push_back(t);
  }
  return job;
}

TEST(SimEngineTest, SingleWaveTiming) {
  // 4 maps on 8 slots: one wave. No fetch. 2 reduces in parallel.
  const auto report =
      RunSimulation(TestConfig(8), {SimpleJob(4, 10.0, 2, 5.0)});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(ToSeconds(report->jobs[0].maps_done), 10.0);
  EXPECT_EQ(ToSeconds(report->makespan), 15.0);
}

TEST(SimEngineTest, MapWavesEmergeFromSlotLimit) {
  // 10 maps on 4 slots: ceil(10/4)=3 waves.
  const auto report =
      RunSimulation(TestConfig(4), {SimpleJob(10, 10.0, 1, 0.0)});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(ToSeconds(report->jobs[0].maps_done), 30.0);
}

TEST(SimEngineTest, StartupDelaysMaps) {
  SimJobSpec job = SimpleJob(1, 5.0, 1, 1.0);
  job.startup = FromSeconds(20.0);
  const auto report = RunSimulation(TestConfig(4), {job});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(ToSeconds(report->jobs[0].maps_done), 25.0);
}

TEST(SimEngineTest, FetchOverlapsMapWaves) {
  // Eq. 6 case analysis: with several map waves, copying overlaps all but
  // the tail; with one wave nothing overlaps.
  ClusterConfig cfg = TestConfig(1);  // 4 maps => 4 sequential waves
  SimJobSpec job = SimpleJob(4, 10.0, 1, 0.0);
  job.reduces[0].fetch_bytes = static_cast<int64_t>(
      20.0 * cfg.network_mb_per_sec * kMiB);  // 20s of copying
  const auto report = RunSimulation(cfg, {job});
  ASSERT_TRUE(report.ok());
  // Map span 40s, overlap window 30s => 20s fetch has 0 tail after wave
  // overlap larger than fetch? overlap = 40-10 = 30 >= 20 -> ready at 40.
  EXPECT_EQ(ToSeconds(report->jobs[0].finish), 40.0);

  // One wave: overlap = 0, the full 20s fetch trails the map phase.
  ClusterConfig wide = TestConfig(8);
  const auto report2 = RunSimulation(wide, {job});
  ASSERT_TRUE(report2.ok());
  EXPECT_EQ(ToSeconds(report2->jobs[0].finish), 30.0);
}

TEST(SimEngineTest, DependenciesSequence) {
  SimJobSpec a = SimpleJob(2, 10.0, 1, 5.0);
  SimJobSpec b = SimpleJob(2, 10.0, 1, 5.0);
  b.deps = {0};
  const auto report = RunSimulation(TestConfig(8), {a, b});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(ToSeconds(report->jobs[0].finish), 15.0);
  EXPECT_EQ(ToSeconds(report->jobs[1].release), 15.0);
  EXPECT_EQ(ToSeconds(report->makespan), 30.0);
}

TEST(SimEngineTest, IndependentJobsCompeteForSlots) {
  // Two jobs of 4 maps each on 4 slots: serial-ish FIFO => ~2x single.
  SimJobSpec a = SimpleJob(4, 10.0, 1, 0.0);
  const auto solo = RunSimulation(TestConfig(4), {a});
  const auto both = RunSimulation(TestConfig(4), {a, a});
  ASSERT_TRUE(solo.ok());
  ASSERT_TRUE(both.ok());
  EXPECT_GE(both->makespan, 2 * solo->jobs[0].maps_done);
}

TEST(SimEngineTest, RejectsCyclesAndBadSpecs) {
  SimJobSpec a = SimpleJob(1, 1.0, 1, 1.0);
  SimJobSpec b = a;
  a.deps = {1};
  b.deps = {0};
  EXPECT_FALSE(RunSimulation(TestConfig(2), {a, b}).ok());
  SimJobSpec no_reduce = SimpleJob(1, 1.0, 0, 0.0);
  EXPECT_FALSE(RunSimulation(TestConfig(2), {no_reduce}).ok());
  SimJobSpec bad_dep = SimpleJob(1, 1.0, 1, 1.0);
  bad_dep.deps = {5};
  EXPECT_FALSE(RunSimulation(TestConfig(2), {bad_dep}).ok());
}

TEST(SimEngineTest, SkewedReducerDominates) {
  SimJobSpec job = SimpleJob(1, 1.0, 4, 1.0);
  job.reduces[3].compute = FromSeconds(50.0);
  const auto report = RunSimulation(TestConfig(8), {job});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(ToSeconds(report->makespan), 51.0);
}

// ---- SimCluster glue ----

TEST(SimClusterTest, NumMapTasks) {
  SimCluster cluster(ClusterConfig{});
  EXPECT_EQ(cluster.NumMapTasks(1), 1);
  EXPECT_EQ(cluster.NumMapTasks(64 * kMiB), 1);
  EXPECT_EQ(cluster.NumMapTasks(64 * kMiB + 1), 2);
  EXPECT_EQ(cluster.NumMapTasks(kGiB), 16);
}

TEST(SimClusterTest, BuildSimJobReflectsVolumes) {
  SimCluster cluster(ClusterConfig{});
  MapReduceJobSpec spec;
  spec.name = "x";
  spec.num_reduce_tasks = 4;
  JobMeasurement m;
  m.input_bytes_logical = kGiB;
  m.map_output_bytes_logical = kGiB / 2;
  m.reduce_input_bytes_logical = {kGiB / 8, kGiB / 8, kGiB / 8, kGiB / 8};
  m.reduce_comparisons_logical = {0, 0, 0, 0};
  m.output_bytes_logical = kGiB / 4;
  const SimJobSpec sim = cluster.BuildSimJob(spec, m);
  EXPECT_EQ(sim.num_map_tasks, 16);
  EXPECT_EQ(sim.reduces.size(), 4u);
  EXPECT_GT(sim.map_task_duration, 0);
  EXPECT_GT(sim.reduces[0].compute, 0);
  EXPECT_EQ(sim.reduces[0].fetch_bytes, kGiB / 8);
  EXPECT_EQ(ToSeconds(sim.startup), cluster.config().job_startup_sec);
}

TEST(SimClusterTest, TextSerdeCostsMore) {
  SimCluster cluster(ClusterConfig{});
  MapReduceJobSpec spec;
  spec.num_reduce_tasks = 2;
  JobMeasurement m;
  m.input_bytes_logical = kGiB;
  m.map_output_bytes_logical = kGiB;
  m.reduce_input_bytes_logical = {kGiB / 2, kGiB / 2};
  m.output_bytes_logical = kGiB;
  const SimJobSpec binary = cluster.BuildSimJob(spec, m);
  spec.text_serde = true;
  const SimJobSpec text = cluster.BuildSimJob(spec, m);
  EXPECT_GT(text.map_task_duration, binary.map_task_duration);
  EXPECT_GT(text.reduces[0].compute, binary.reduces[0].compute);
  EXPECT_GT(text.reduces[0].fetch_bytes, binary.reduces[0].fetch_bytes);
}

TEST(SimClusterTest, ComparisonCpuChargedOnlyWhenEnabled) {
  ClusterConfig cfg;
  SimCluster off(cfg);
  cfg.charge_comparison_cpu = true;
  SimCluster on(cfg);
  MapReduceJobSpec spec;
  spec.num_reduce_tasks = 1;
  JobMeasurement m;
  m.input_bytes_logical = kMiB;
  m.map_output_bytes_logical = kMiB;
  m.reduce_input_bytes_logical = {kMiB};
  m.reduce_comparisons_logical = {1e9};
  const SimTime without = off.BuildSimJob(spec, m).reduces[0].compute;
  const SimTime with = on.BuildSimJob(spec, m).reduces[0].compute;
  EXPECT_GT(with, without);
}

TEST(SimClusterTest, RunJobEndToEnd) {
  SimCluster cluster(ClusterConfig{});
  auto rel = MakeInts(1000, 4000000);  // represents ~100 MB
  const auto result = cluster.RunJob(CountJob(rel, 8));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output->num_rows(), 10);
  EXPECT_GT(result->duration, 0);
  EXPECT_GE(result->timing.finish, result->timing.maps_done);
}

// ---- Load model (Fig. 11) ----

TEST(LoadModelTest, OrderingMatchesThePaper) {
  // Ours >= Hive >= plain upload, converging in ratio at large volumes.
  LoadModel model;
  ClusterConfig cfg;
  for (int64_t gb : {1, 10, 100, 500}) {
    const int64_t bytes = gb * kGiB;
    const SimTime plain = model.PlainUpload(cfg, bytes);
    const SimTime hive = model.HiveLoad(cfg, bytes);
    const SimTime ours = model.OurLoad(cfg, bytes);
    EXPECT_LT(plain, hive) << gb;
    EXPECT_LT(hive, ours) << gb;
  }
  // Relative overhead of ours vs hive shrinks with volume.
  const double small_ratio =
      static_cast<double>(model.OurLoad(cfg, kGiB)) /
      static_cast<double>(model.HiveLoad(cfg, kGiB));
  const double big_ratio =
      static_cast<double>(model.OurLoad(cfg, 500 * kGiB)) /
      static_cast<double>(model.HiveLoad(cfg, 500 * kGiB));
  EXPECT_LT(big_ratio, small_ratio);
}

TEST(LoadModelTest, ScalesLinearly) {
  LoadModel model;
  ClusterConfig cfg;
  const SimTime one = model.PlainUpload(cfg, 10 * kGiB);
  const SimTime ten = model.PlainUpload(cfg, 100 * kGiB);
  EXPECT_NEAR(static_cast<double>(ten) / one, 10.0, 0.01);
}

}  // namespace
}  // namespace mrtheta
