// Tests for the MapReduce substrate: physical job execution, the
// discrete-event engine, the timing model and the load models.

#include <memory>

#include <gtest/gtest.h>

#include "src/mapreduce/load_model.h"
#include "src/mapreduce/sim_cluster.h"

namespace mrtheta {
namespace {

RelationPtr MakeInts(int64_t rows, int64_t logical_rows = 0) {
  auto rel = std::make_shared<Relation>(
      "t", Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}));
  for (int64_t i = 0; i < rows; ++i) rel->AppendIntRow({i % 10, i});
  if (logical_rows > 0) rel->set_logical_rows(logical_rows);
  return rel;
}

// A group-count job: key = k, reduce emits (key, count).
MapReduceJobSpec CountJob(RelationPtr rel, int reducers) {
  MapReduceJobSpec spec;
  spec.name = "count";
  spec.inputs.push_back({rel, 1.0});
  spec.num_reduce_tasks = reducers;
  spec.output_schema = Schema({{"key", ValueType::kInt64},
                               {"count", ValueType::kInt64}});
  spec.map = [](int tag, const Relation& r, int64_t row, MapEmitter& out) {
    out.Emit(r.GetInt(row, 0), tag, row, row, 16);
  };
  spec.reduce = [](const ReduceContext& ctx, ReduceCollector& out) {
    out.Emit({Value(ctx.key),
              Value(static_cast<int64_t>(ctx.records(0).size()))});
  };
  return spec;
}

TEST(JobRunnerTest, GroupCountIsExact) {
  const auto result = RunJobPhysically(CountJob(MakeInts(1000), 4));
  ASSERT_TRUE(result.ok());
  const Relation& out = *result->output;
  ASSERT_EQ(out.num_rows(), 10);
  int64_t total = 0;
  for (int64_t r = 0; r < out.num_rows(); ++r) total += out.GetInt(r, 1);
  EXPECT_EQ(total, 1000);
  for (int64_t r = 0; r < out.num_rows(); ++r) {
    EXPECT_EQ(out.GetInt(r, 1), 100);
  }
}

TEST(JobRunnerTest, KeysArriveSortedWithinTask) {
  auto rel = MakeInts(100);
  MapReduceJobSpec spec = CountJob(rel, 1);
  std::vector<int64_t> seen;
  spec.reduce = [&seen](const ReduceContext& ctx, ReduceCollector& out) {
    seen.push_back(ctx.key);
    out.Emit({Value(ctx.key), Value(int64_t{0})});
  };
  ASSERT_TRUE(RunJobPhysically(spec).ok());
  ASSERT_EQ(seen.size(), 10u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(JobRunnerTest, MetricsScaleWithLogicalVolume) {
  // 100 physical rows representing 10000 logical rows: shuffle volume
  // scales by 100x.
  auto rel = MakeInts(100, 10000);
  MapReduceJobSpec spec = CountJob(rel, 2);
  spec.inputs[0].scale = 100.0;
  const auto result = RunJobPhysically(spec);
  ASSERT_TRUE(result.ok());
  const JobMeasurement& m = result->metrics;
  EXPECT_EQ(m.input_bytes_logical, rel->logical_bytes());
  EXPECT_EQ(m.map_output_records_physical, 100);
  EXPECT_EQ(m.map_output_bytes_logical, 100 * 16 * 100);
  int64_t reduce_total = 0;
  for (int64_t b : m.reduce_input_bytes_logical) reduce_total += b;
  EXPECT_EQ(reduce_total, m.map_output_bytes_logical);
}

TEST(JobRunnerTest, OutputRowScale) {
  MapReduceJobSpec spec = CountJob(MakeInts(100), 1);
  spec.output_row_scale = 7.0;
  const auto result = RunJobPhysically(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.output_rows_physical, 10);
  EXPECT_EQ(result->metrics.output_rows_logical, 70.0);
  EXPECT_EQ(result->output->logical_rows(), 70);
}

TEST(JobRunnerTest, ValidatesSpec) {
  MapReduceJobSpec empty;
  EXPECT_FALSE(RunJobPhysically(empty).ok());
  MapReduceJobSpec no_reduce = CountJob(MakeInts(10), 1);
  no_reduce.reduce = nullptr;
  EXPECT_FALSE(RunJobPhysically(no_reduce).ok());
  MapReduceJobSpec bad_n = CountJob(MakeInts(10), 0);
  EXPECT_FALSE(RunJobPhysically(bad_n).ok());
}

TEST(JobRunnerTest, CustomPartitioner) {
  MapReduceJobSpec spec = CountJob(MakeInts(100), 2);
  spec.partition = [](int64_t key, int n) {
    return static_cast<int>(key % n);
  };
  const auto result = RunJobPhysically(spec);
  ASSERT_TRUE(result.ok());
  // Keys 0,2,4,6,8 -> task 0; 1,3,5,7,9 -> task 1: both get 5*100*16 bytes.
  EXPECT_EQ(result->metrics.reduce_input_bytes_logical[0],
            result->metrics.reduce_input_bytes_logical[1]);
}

TEST(HashPartitionTest, InRangeAndSpreads) {
  std::vector<int> hits(16, 0);
  for (int64_t k = 0; k < 1600; ++k) {
    const int t = HashPartition(k, 16);
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 16);
    hits[t]++;
  }
  for (int h : hits) EXPECT_GT(h, 50);
}

// ---- Discrete-event engine ----

ClusterConfig TestConfig(int workers) {
  ClusterConfig cfg;
  cfg.num_workers = workers;
  cfg.job_startup_sec = 0.0;
  return cfg;
}

SimJobSpec SimpleJob(int maps, double map_sec, int reduces,
                     double reduce_sec) {
  SimJobSpec job;
  job.num_map_tasks = maps;
  job.map_task_duration = FromSeconds(map_sec);
  for (int i = 0; i < reduces; ++i) {
    SimReduceTask t;
    t.compute = FromSeconds(reduce_sec);
    job.reduces.push_back(t);
  }
  return job;
}

TEST(SimEngineTest, SingleWaveTiming) {
  // 4 maps on 8 slots: one wave. No fetch. 2 reduces in parallel.
  const auto report =
      RunSimulation(TestConfig(8), {SimpleJob(4, 10.0, 2, 5.0)});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(ToSeconds(report->jobs[0].maps_done), 10.0);
  EXPECT_EQ(ToSeconds(report->makespan), 15.0);
}

TEST(SimEngineTest, MapWavesEmergeFromSlotLimit) {
  // 10 maps on 4 slots: ceil(10/4)=3 waves.
  const auto report =
      RunSimulation(TestConfig(4), {SimpleJob(10, 10.0, 1, 0.0)});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(ToSeconds(report->jobs[0].maps_done), 30.0);
}

TEST(SimEngineTest, StartupDelaysMaps) {
  SimJobSpec job = SimpleJob(1, 5.0, 1, 1.0);
  job.startup = FromSeconds(20.0);
  const auto report = RunSimulation(TestConfig(4), {job});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(ToSeconds(report->jobs[0].maps_done), 25.0);
}

TEST(SimEngineTest, FetchOverlapsMapWaves) {
  // Eq. 6 case analysis: with several map waves, copying overlaps all but
  // the tail; with one wave nothing overlaps.
  ClusterConfig cfg = TestConfig(1);  // 4 maps => 4 sequential waves
  SimJobSpec job = SimpleJob(4, 10.0, 1, 0.0);
  job.reduces[0].fetch_bytes = static_cast<int64_t>(
      20.0 * cfg.network_mb_per_sec * kMiB);  // 20s of copying
  const auto report = RunSimulation(cfg, {job});
  ASSERT_TRUE(report.ok());
  // Map span 40s, overlap window 30s => 20s fetch has 0 tail after wave
  // overlap larger than fetch? overlap = 40-10 = 30 >= 20 -> ready at 40.
  EXPECT_EQ(ToSeconds(report->jobs[0].finish), 40.0);

  // One wave: overlap = 0, the full 20s fetch trails the map phase.
  ClusterConfig wide = TestConfig(8);
  const auto report2 = RunSimulation(wide, {job});
  ASSERT_TRUE(report2.ok());
  EXPECT_EQ(ToSeconds(report2->jobs[0].finish), 30.0);
}

TEST(SimEngineTest, DependenciesSequence) {
  SimJobSpec a = SimpleJob(2, 10.0, 1, 5.0);
  SimJobSpec b = SimpleJob(2, 10.0, 1, 5.0);
  b.deps = {0};
  const auto report = RunSimulation(TestConfig(8), {a, b});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(ToSeconds(report->jobs[0].finish), 15.0);
  EXPECT_EQ(ToSeconds(report->jobs[1].release), 15.0);
  EXPECT_EQ(ToSeconds(report->makespan), 30.0);
}

TEST(SimEngineTest, IndependentJobsCompeteForSlots) {
  // Two jobs of 4 maps each on 4 slots: serial-ish FIFO => ~2x single.
  SimJobSpec a = SimpleJob(4, 10.0, 1, 0.0);
  const auto solo = RunSimulation(TestConfig(4), {a});
  const auto both = RunSimulation(TestConfig(4), {a, a});
  ASSERT_TRUE(solo.ok());
  ASSERT_TRUE(both.ok());
  EXPECT_GE(both->makespan, 2 * solo->jobs[0].maps_done);
}

TEST(SimEngineTest, RejectsCyclesAndBadSpecs) {
  SimJobSpec a = SimpleJob(1, 1.0, 1, 1.0);
  SimJobSpec b = a;
  a.deps = {1};
  b.deps = {0};
  EXPECT_FALSE(RunSimulation(TestConfig(2), {a, b}).ok());
  SimJobSpec no_reduce = SimpleJob(1, 1.0, 0, 0.0);
  EXPECT_FALSE(RunSimulation(TestConfig(2), {no_reduce}).ok());
  SimJobSpec bad_dep = SimpleJob(1, 1.0, 1, 1.0);
  bad_dep.deps = {5};
  EXPECT_FALSE(RunSimulation(TestConfig(2), {bad_dep}).ok());
}

TEST(SimEngineTest, SkewedReducerDominates) {
  SimJobSpec job = SimpleJob(1, 1.0, 4, 1.0);
  job.reduces[3].compute = FromSeconds(50.0);
  const auto report = RunSimulation(TestConfig(8), {job});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(ToSeconds(report->makespan), 51.0);
}

// ---- SimCluster glue ----

TEST(SimClusterTest, NumMapTasks) {
  SimCluster cluster(ClusterConfig{});
  EXPECT_EQ(cluster.NumMapTasks(1), 1);
  EXPECT_EQ(cluster.NumMapTasks(64 * kMiB), 1);
  EXPECT_EQ(cluster.NumMapTasks(64 * kMiB + 1), 2);
  EXPECT_EQ(cluster.NumMapTasks(kGiB), 16);
}

TEST(SimClusterTest, BuildSimJobReflectsVolumes) {
  SimCluster cluster(ClusterConfig{});
  MapReduceJobSpec spec;
  spec.name = "x";
  spec.num_reduce_tasks = 4;
  JobMeasurement m;
  m.input_bytes_logical = kGiB;
  m.map_output_bytes_logical = kGiB / 2;
  m.reduce_input_bytes_logical = {kGiB / 8, kGiB / 8, kGiB / 8, kGiB / 8};
  m.reduce_comparisons_logical = {0, 0, 0, 0};
  m.output_bytes_logical = kGiB / 4;
  const SimJobSpec sim = cluster.BuildSimJob(spec, m);
  EXPECT_EQ(sim.num_map_tasks, 16);
  EXPECT_EQ(sim.reduces.size(), 4u);
  EXPECT_GT(sim.map_task_duration, 0);
  EXPECT_GT(sim.reduces[0].compute, 0);
  EXPECT_EQ(sim.reduces[0].fetch_bytes, kGiB / 8);
  EXPECT_EQ(ToSeconds(sim.startup), cluster.config().job_startup_sec);
}

TEST(SimClusterTest, TextSerdeCostsMore) {
  SimCluster cluster(ClusterConfig{});
  MapReduceJobSpec spec;
  spec.num_reduce_tasks = 2;
  JobMeasurement m;
  m.input_bytes_logical = kGiB;
  m.map_output_bytes_logical = kGiB;
  m.reduce_input_bytes_logical = {kGiB / 2, kGiB / 2};
  m.output_bytes_logical = kGiB;
  const SimJobSpec binary = cluster.BuildSimJob(spec, m);
  spec.text_serde = true;
  const SimJobSpec text = cluster.BuildSimJob(spec, m);
  EXPECT_GT(text.map_task_duration, binary.map_task_duration);
  EXPECT_GT(text.reduces[0].compute, binary.reduces[0].compute);
  EXPECT_GT(text.reduces[0].fetch_bytes, binary.reduces[0].fetch_bytes);
}

TEST(SimClusterTest, ComparisonCpuChargedOnlyWhenEnabled) {
  ClusterConfig cfg;
  SimCluster off(cfg);
  cfg.charge_comparison_cpu = true;
  SimCluster on(cfg);
  MapReduceJobSpec spec;
  spec.num_reduce_tasks = 1;
  JobMeasurement m;
  m.input_bytes_logical = kMiB;
  m.map_output_bytes_logical = kMiB;
  m.reduce_input_bytes_logical = {kMiB};
  m.reduce_comparisons_logical = {1e9};
  const SimTime without = off.BuildSimJob(spec, m).reduces[0].compute;
  const SimTime with = on.BuildSimJob(spec, m).reduces[0].compute;
  EXPECT_GT(with, without);
}

TEST(SimClusterTest, RunJobEndToEnd) {
  SimCluster cluster(ClusterConfig{});
  auto rel = MakeInts(1000, 4000000);  // represents ~100 MB
  const auto result = cluster.RunJob(CountJob(rel, 8));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output->num_rows(), 10);
  EXPECT_GT(result->duration, 0);
  EXPECT_GE(result->timing.finish, result->timing.maps_done);
}

// ---- Load model (Fig. 11) ----

TEST(LoadModelTest, OrderingMatchesThePaper) {
  // Ours >= Hive >= plain upload, converging in ratio at large volumes.
  LoadModel model;
  ClusterConfig cfg;
  for (int64_t gb : {1, 10, 100, 500}) {
    const int64_t bytes = gb * kGiB;
    const SimTime plain = model.PlainUpload(cfg, bytes);
    const SimTime hive = model.HiveLoad(cfg, bytes);
    const SimTime ours = model.OurLoad(cfg, bytes);
    EXPECT_LT(plain, hive) << gb;
    EXPECT_LT(hive, ours) << gb;
  }
  // Relative overhead of ours vs hive shrinks with volume.
  const double small_ratio =
      static_cast<double>(model.OurLoad(cfg, kGiB)) /
      static_cast<double>(model.HiveLoad(cfg, kGiB));
  const double big_ratio =
      static_cast<double>(model.OurLoad(cfg, 500 * kGiB)) /
      static_cast<double>(model.HiveLoad(cfg, 500 * kGiB));
  EXPECT_LT(big_ratio, small_ratio);
}

TEST(LoadModelTest, ScalesLinearly) {
  LoadModel model;
  ClusterConfig cfg;
  const SimTime one = model.PlainUpload(cfg, 10 * kGiB);
  const SimTime ten = model.PlainUpload(cfg, 100 * kGiB);
  EXPECT_NEAR(static_cast<double>(ten) / one, 10.0, 0.01);
}

}  // namespace
}  // namespace mrtheta
