// The corrected twin of thread_safety_violation.cc: same shape, locks
// held properly everywhere. scripts/check_thread_safety.sh compiles this
// expecting SUCCESS — so a failure of the violation file provably comes
// from the thread-safety analysis, not from an unrelated build break
// (a missing header would fail both files and the gate notices).

#include "src/common/thread_annotations.h"

namespace {

class Account {
 public:
  int64_t LockedRead() const {
    mrtheta::MutexLock lock(&mu_);
    return balance_;
  }

  void LockedWrite(int64_t v) {
    mrtheta::MutexLock lock(&mu_);
    balance_ = v;
  }

  void BalancedLock() {
    mu_.Lock();
    balance_ += 1;
    mu_.Unlock();
  }

  void CallWithLock() {
    mrtheta::MutexLock lock(&mu_);
    AddLocked(1);
  }

 private:
  void AddLocked(int64_t v) MRTHETA_REQUIRES(mu_) { balance_ += v; }

  mutable mrtheta::Mutex mu_;
  int64_t balance_ MRTHETA_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.LockedWrite(7);
  account.BalancedLock();
  account.CallWithLock();
  return static_cast<int>(account.LockedRead());
}
