// Negative-compile sample: deliberately mis-locked code that MUST fail
// under clang's -Werror=thread-safety. scripts/check_thread_safety.sh
// compiles this file expecting FAILURE (and its _ok twin expecting
// success) — proving the annotation plumbing in
// src/common/thread_annotations.h actually rejects lock-discipline bugs,
// not just that a clean build stays clean. If a refactor ever neuters the
// macros (say, the __clang__ gate breaks), this gate trips.
//
// Outside the tests/*_test.cc GLOB on purpose: never part of any cmake
// target.

#include "src/common/thread_annotations.h"

namespace {

class Account {
 public:
  // VIOLATION 1: reads a guarded member without holding the lock.
  int64_t UnlockedRead() const { return balance_; }

  // VIOLATION 2: writes a guarded member under no lock.
  void UnlockedWrite(int64_t v) { balance_ = v; }

  // VIOLATION 3: returns with the lock still held (Lock without Unlock).
  void LeakLock() {
    mu_.Lock();
    balance_ += 1;
  }

  // VIOLATION 4: calls a REQUIRES(mu_) function without the lock.
  void CallWithoutLock() { AddLocked(1); }

 private:
  void AddLocked(int64_t v) MRTHETA_REQUIRES(mu_) { balance_ += v; }

  mutable mrtheta::Mutex mu_;
  int64_t balance_ MRTHETA_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.UnlockedWrite(7);
  account.LeakLock();
  account.CallWithoutLock();
  return static_cast<int>(account.UnlockedRead());
}
