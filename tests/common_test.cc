// Unit tests for src/common: Status/StatusOr, Rng, units, TablePrinter.

#include <cmath>
#include <map>
#include <sstream>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"

namespace mrtheta {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arg");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad arg");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value(), 7);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = *std::move(r);
  EXPECT_EQ(*v, 5);
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto fails = []() { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    MRTHETA_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) differences += a.Next() != b.Next();
  EXPECT_GT(differences, 12);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(17);
  std::map<uint64_t, int> hist;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hist[rng.Zipf(100, 0.0)]++;
  EXPECT_EQ(hist.size(), 100u);
  for (const auto& [k, c] : hist) {
    EXPECT_NEAR(c, n / 100, n / 100);  // within 100% of expectation
  }
}

TEST(RngTest, ZipfRanksAreBounded) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Zipf(50, 1.2), 50u);
  }
}

TEST(RngTest, ZipfHeadMassMatchesTheory) {
  // For s=1 over n=1000, P(rank 0) = 1/H(1000) ≈ 0.133.
  Rng rng(23);
  const int n = 100000;
  int rank0 = 0;
  for (int i = 0; i < n; ++i) rank0 += rng.Zipf(1000, 1.0) == 0;
  double h = 0;
  for (int k = 1; k <= 1000; ++k) h += 1.0 / k;
  EXPECT_NEAR(static_cast<double>(rank0) / n, 1.0 / h, 0.01);
}

TEST(RngTest, ZipfIsMonotoneDecreasingInRank) {
  Rng rng(29);
  std::map<uint64_t, int> hist;
  for (int i = 0; i < 200000; ++i) hist[rng.Zipf(100, 0.8)]++;
  EXPECT_GT(hist[0], hist[9]);
  EXPECT_GT(hist[9], hist[49]);
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(31);
  EXPECT_EQ(rng.Zipf(1, 1.0), 0u);
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(MiB(2.0), 2 * kMiB);
  EXPECT_EQ(GiB(1.0), kGiB);
  EXPECT_EQ(ToSeconds(FromSeconds(1.5)), 1.5);
  EXPECT_EQ(FromSeconds(2.0), 2 * kMicrosPerSecond);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2 * kKiB), "2.00 KB");
  EXPECT_EQ(FormatBytes(3 * kMiB), "3.00 MB");
  EXPECT_EQ(FormatBytes(5 * kGiB), "5.00 GB");
}

TEST(UnitsTest, FormatSimTime) {
  EXPECT_EQ(FormatSimTime(FromSeconds(1.5)), "1.500 s");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, NumAndIntFormatting) {
  EXPECT_EQ(TablePrinter::Num(1.2345, 2), "1.23");
  EXPECT_EQ(TablePrinter::Int(42), "42");
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"x"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("| x |"), std::string::npos);
}

}  // namespace
}  // namespace mrtheta
